// Package bounded implements the bounded-space variant of the Naderibeni-
// Ruppert wait-free queue (paper Section 6 and Appendix B).
//
// Each ordering-tree node stores its blocks in a persistent balanced search
// tree instead of an infinite array; a Refresh builds the next tree
// functionally and installs it with one CAS on the node's tree pointer.
// Every G-th block added to a node triggers a garbage-collection phase: the
// process determines the oldest block still needed (via the shared last
// array), helps every pending dequeue that has reached the root compute its
// response, and then splits the obsolete prefix off the tree. Live blocks
// per node stay O(q_max + p^2 log p) (Theorem 31) and amortized step
// complexity is O(log p log(p+q_max)) per operation (Theorem 32).
package bounded

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/pbst"
)

// ErrBadProcs reports an invalid process count passed to New.
var ErrBadProcs = errors.New("bounded: process count must be at least 1")

// errDiscarded is returned (internally) when a search fails because garbage
// collection removed a needed block. Per Lemma 28 this implies the
// operation's result is already available: an enqueue may simply terminate
// and a dequeue reads its helped response.
var errDiscarded = errors.New("bounded: block discarded by GC")

// blockTree is the persistent tree of blocks each node stores.
type blockTree[T any] = pbst.Tree[*block[T]]

// node is one node of the static ordering tree.
type node[T any] struct {
	left, right, parent *node[T]

	// blocks points at the node's current persistent block tree. Updated
	// only by CAS; readers operate on an immutable snapshot.
	blocks atomic.Pointer[blockTree[T]]

	leafID int

	// Pad to 128 bytes (two cache lines): the hot tree pointer above takes
	// a CAS from every Refresh, and without padding nodes allocated
	// back-to-back false-share under concurrent propagation. 3 pointers +
	// atomic.Pointer + int = 40 bytes.
	_ [128 - 40]byte
}

func (n *node[T]) isLeaf() bool { return n.left == nil }

func (n *node[T]) isRoot() bool { return n.parent == nil }

func (n *node[T]) childDir() direction {
	if n.parent.left == n {
		return left
	}
	return right
}

func (n *node[T]) sibling() *node[T] {
	if n.parent.left == n {
		return n.parent.right
	}
	return n.parent.left
}

// Queue is the bounded-space wait-free FIFO queue.
type Queue[T any] struct {
	root   *node[T]
	leaves []*node[T]
	// last[k] is the largest root-block index process k has observed to
	// contain a null dequeue or an enqueue whose value was dequeued; GC uses
	// the maximum entry to find the oldest block still needed (Appendix B).
	last    []atomic.Int64
	handles []Handle[T]
	procs   int
	gcEvery int64

	// arena recycles never-published Refresh candidate blocks across
	// handles; see pool.go.
	arena sync.Pool
}

// Option configures a Queue.
type Option func(*config)

type config struct {
	gcEvery int64
}

// WithGCInterval overrides the garbage-collection interval G (a GC phase
// runs when a block whose index is a multiple of G is added to a node). The
// default is the paper's G = p^2 * ceil(log2 p). Small values stress GC in
// tests; non-positive values are rejected.
func WithGCInterval(g int64) Option {
	return func(c *config) { c.gcEvery = g }
}

// New creates a bounded-space queue for up to procs processes.
func New[T any](procs int, opts ...Option) (*Queue[T], error) {
	if procs < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadProcs, procs)
	}
	cfg := config{gcEvery: defaultGCInterval(procs)}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.gcEvery < 1 {
		return nil, fmt.Errorf("bounded: GC interval must be positive (got %d)", cfg.gcEvery)
	}
	numLeaves := nextPow2(procs)
	if numLeaves < 2 {
		numLeaves = 2
	}
	root, leaves := buildTree[T](numLeaves)
	q := &Queue[T]{
		root:    root,
		leaves:  leaves,
		last:    make([]atomic.Int64, procs),
		procs:   procs,
		gcEvery: cfg.gcEvery,
	}
	q.handles = make([]Handle[T], procs)
	for i := 0; i < procs; i++ {
		q.handles[i] = Handle[T]{queue: q, leaf: leaves[i], id: i}
	}
	return q, nil
}

// defaultGCInterval is the paper's G = p^2 ceil(log2 p), floored at 16: the
// formula targets large p and degenerates to G <= 4 for p <= 2, where a GC
// phase per couple of operations would dominate the cost without any space
// benefit (the bound already includes a +G slack).
func defaultGCInterval(procs int) int64 {
	logP := int64(bits.Len(uint(procs - 1)))
	g := int64(procs) * int64(procs) * logP
	if g < 16 {
		g = 16
	}
	return g
}

// buildTree constructs a complete binary tree with numLeaves leaves, each
// node's tree initialized with the empty block at index 0.
func buildTree[T any](numLeaves int) (*node[T], []*node[T]) {
	mk := func() *node[T] {
		n := &node[T]{leafID: -1}
		var t *blockTree[T]
		t = t.Insert(0, &block[T]{})
		n.blocks.Store(t)
		return n
	}
	level := make([]*node[T], 0, numLeaves)
	for i := 0; i < numLeaves; i++ {
		leaf := mk()
		leaf.leafID = i
		level = append(level, leaf)
	}
	leaves := level
	for len(level) > 1 {
		next := make([]*node[T], 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			parent := mk()
			parent.left = level[i]
			parent.right = level[i+1]
			level[i].parent = parent
			level[i+1].parent = parent
			next = append(next, parent)
		}
		level = next
	}
	return level[0], leaves
}

// Procs returns the process count the queue was built for.
func (q *Queue[T]) Procs() int { return q.procs }

// GCInterval returns the configured GC interval G.
func (q *Queue[T]) GCInterval() int64 { return q.gcEvery }

// Handle returns the handle for process i, 0 <= i < Procs(). At most one
// goroutine may use a handle at a time.
func (q *Queue[T]) Handle(i int) (*Handle[T], error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("bounded: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// MustHandle is Handle for statically valid indices.
func (q *Queue[T]) MustHandle(i int) *Handle[T] {
	h, err := q.Handle(i)
	if err != nil {
		panic(err)
	}
	return h
}

// Len returns the queue's size as of the last block propagated to the root;
// see core.Queue.Len for the caveat on concurrent use.
func (q *Queue[T]) Len() int {
	_, b, ok := q.root.blocks.Load().Max()
	if !ok {
		return 0
	}
	return int(b.size)
}

// BlockCounts returns the number of live blocks in each tree node's block
// tree, in preorder. It drives the Theorem 31 space experiments.
func (q *Queue[T]) BlockCounts() []int64 {
	var out []int64
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		out = append(out, n.blocks.Load().Size())
		if !n.isLeaf() {
			walk(n.left)
			walk(n.right)
		}
	}
	walk(q.root)
	return out
}

// TotalBlocks returns the total number of live blocks across all nodes.
func (q *Queue[T]) TotalBlocks() int64 {
	var sum int64
	for _, c := range q.BlockCounts() {
		sum += c
	}
	return sum
}

// Handle is a process's capability to operate on the queue.
type Handle[T any] struct {
	queue   *Queue[T]
	leaf    *node[T]
	id      int
	counter *metrics.Counter

	// spare stacks recycled candidate blocks private to this handle; see
	// pool.go.
	spare []*block[T]
}

// SetCounter attaches a step/CAS counter to the handle (nil disables).
func (h *Handle[T]) SetCounter(c *metrics.Counter) { h.counter = c }

// Counter returns the handle's current counter (possibly nil).
func (h *Handle[T]) Counter() *metrics.Counter { return h.counter }

// nextPow2 returns the smallest power of two >= n, for n >= 1.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
