package bounded

// Block arena for the bounded variant, mirroring internal/core/pool.go with
// one structural difference: no bump slab. The bounded queue's GC
// repeatedly discards old blocks, and carving blocks out of shared 64-block
// slabs would pin a whole slab in memory for as long as any one of its
// blocks is live — exactly the space behaviour Theorem 31 bounds. Blocks
// are therefore individual heap objects, recycled through a per-handle
// spare stack and a per-queue sync.Pool.
//
// Only never-published blocks are recycled: a Refresh candidate whose
// casTree lost stays private (the losing t2 tree is the only structure
// referencing it and is discarded), so reuse cannot race with helpers or
// searches. Blocks that were published are reclaimed by the Go GC once the
// paper's GC phase drops them from every live tree — delegating that
// reclamation to the runtime is what makes it safe without epochs or
// hazard pointers.

// newBlock returns a zeroed block from the spare stack, the shared pool, or
// the heap, in that order.
func (h *Handle[T]) newBlock() *block[T] {
	if n := len(h.spare) - 1; n >= 0 {
		b := h.spare[n]
		h.spare[n] = nil
		h.spare = h.spare[:n]
		b.reset()
		return b
	}
	if b, _ := h.queue.arena.Get().(*block[T]); b != nil {
		b.reset()
		return b
	}
	return &block[T]{}
}

// recycle takes back a block obtained from newBlock that was never
// published (never reachable from a tree installed by storeTree/casTree).
func (h *Handle[T]) recycle(b *block[T]) {
	if len(h.spare) < spareCap {
		h.spare = append(h.spare, b)
		return
	}
	h.queue.arena.Put(b)
}

// spareCap bounds the per-handle spare stack before spilling to the pool.
const spareCap = 16

// reset zeroes a recycled block field by field; a struct-literal assignment
// would copy the atomic response field and trip go vet's copylocks check.
// The block is private here, so the plain stores are race-free.
func (b *block[T]) reset() {
	var zero T
	b.index = 0
	b.sumEnq, b.sumDeq = 0, 0
	b.endLeft, b.endRight = 0, 0
	b.size = 0
	b.element = zero
	b.elems = nil
	b.isDeq = false
	b.deqCount = 0
	b.response.Store(nil)
}
