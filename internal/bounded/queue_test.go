package bounded

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0); err == nil {
		t.Error("New(0) succeeded")
	}
	if _, err := New[int](2, WithGCInterval(0)); err == nil {
		t.Error("New with GC interval 0 succeeded")
	}
	q, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	if q.GCInterval() != 32 { // p^2 * ceil(log2 p) = 16*2
		t.Errorf("default GC interval = %d, want 32", q.GCInterval())
	}
}

func TestFIFOSingleHandle(t *testing.T) {
	q, _ := New[int](2)
	h := q.MustHandle(0)
	for i := 0; i < 200; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < 200; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("queue not empty after drain")
	}
}

func TestEmptyDequeue(t *testing.T) {
	q, _ := New[string](2)
	h := q.MustHandle(1)
	if v, ok := h.Dequeue(); ok || v != "" {
		t.Fatalf("Dequeue on empty = (%q, %v)", v, ok)
	}
}

func TestRandomAgainstModelSequentialSmallG(t *testing.T) {
	// A tiny GC interval forces constant garbage collection, exercising the
	// discarded-block paths under a deterministic sequential schedule.
	for _, g := range []int64{2, 3, 5, 64} {
		for _, procs := range []int{1, 2, 3, 8} {
			g, procs := g, procs
			t.Run(fmt.Sprintf("G=%d/procs=%d", g, procs), func(t *testing.T) {
				q, err := New[int](procs, WithGCInterval(g))
				if err != nil {
					t.Fatal(err)
				}
				var model []int
				rng := rand.New(rand.NewSource(int64(g)*100 + int64(procs)))
				next := 0
				for step := 0; step < 4000; step++ {
					h := q.MustHandle(rng.Intn(procs))
					if rng.Intn(2) == 0 {
						h.Enqueue(next)
						model = append(model, next)
						next++
						continue
					}
					got, gotOK := h.Dequeue()
					var want int
					wantOK := len(model) > 0
					if wantOK {
						want, model = model[0], model[1:]
					}
					if gotOK != wantOK || (gotOK && got != want) {
						t.Fatalf("step %d: Dequeue = (%d, %v), model (%d, %v)",
							step, got, gotOK, want, wantOK)
					}
				}
			})
		}
	}
}

func TestMatchesUnboundedOnIdenticalSchedule(t *testing.T) {
	// Replay one pseudo-random schedule of operations on both queue
	// variants; being deterministic sequentially, they must agree exactly.
	const procs = 5
	bq, err := New[int](procs, WithGCInterval(7))
	if err != nil {
		t.Fatal(err)
	}
	uq, err := core.New[int](procs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	next := 0
	for step := 0; step < 6000; step++ {
		p := rng.Intn(procs)
		bh := bq.MustHandle(p)
		uh := uq.MustHandle(p)
		if rng.Intn(3) == 0 {
			bh.Enqueue(next)
			uh.Enqueue(next)
			next++
			continue
		}
		bv, bok := bh.Dequeue()
		uv, uok := uh.Dequeue()
		if bv != uv || bok != uok {
			t.Fatalf("step %d: bounded (%d,%v) vs unbounded (%d,%v)", step, bv, bok, uv, uok)
		}
	}
	if bq.Len() != uq.Len() {
		t.Fatalf("Len mismatch: bounded %d, unbounded %d", bq.Len(), uq.Len())
	}
}

func TestSpaceStaysBounded(t *testing.T) {
	// Run far more operations than the space bound and verify trees do not
	// grow with the operation count (Theorem 31: O(q_max + p^2 log p + G)
	// blocks per node; with queue size <= qmax and fixed p, block counts
	// must plateau).
	const procs = 4
	const g = 16
	q, err := New[int](procs, WithGCInterval(g))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	const qmax = 8
	var worst int64
	for round := 0; round < 3000; round++ {
		for i := 0; i < qmax; i++ {
			h.Enqueue(round*qmax + i)
		}
		for i := 0; i < qmax; i++ {
			if _, ok := h.Dequeue(); !ok {
				t.Fatalf("round %d: unexpected empty", round)
			}
		}
		if round%100 == 0 {
			if total := q.TotalBlocks(); total > worst {
				worst = total
			}
		}
	}
	// 3000*8 = 24000 enqueues total. Without GC the leaf alone would hold
	// ~48000 blocks. The bound for these parameters is a few hundred.
	if worst > 2000 {
		t.Fatalf("block count grew to %d; GC is not bounding space", worst)
	}
	t.Logf("worst-case total live blocks: %d (after %d ops)", worst, 3000*qmax*2)
}

func TestConcurrentMultisetWithGC(t *testing.T) {
	const procs = 8
	const perHandle = 1500
	q, err := New[int64](procs, WithGCInterval(8))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([][]int64, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.MustHandle(i)
			rng := rand.New(rand.NewSource(int64(i)))
			enq := int64(0)
			for enq < perHandle {
				if rng.Intn(2) == 0 {
					h.Enqueue(int64(i)*1_000_000 + enq)
					enq++
				} else if v, ok := h.Dequeue(); ok {
					got[i] = append(got[i], v)
				}
			}
		}(i)
	}
	wg.Wait()
	h := q.MustHandle(0)
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		got[0] = append(got[0], v)
	}
	seen := make(map[int64]bool)
	for _, vs := range got {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != procs*perHandle {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), procs*perHandle)
	}
}

func TestConcurrentProducerConsumerFIFO(t *testing.T) {
	const producers, consumers = 4, 4
	const perProducer = 2000
	q, err := New[int64](producers+consumers, WithGCInterval(32))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([][]int64, consumers)
	var mu sync.Mutex
	totalConsumed := 0
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.MustHandle(i)
			for s := int64(0); s < perProducer; s++ {
				h.Enqueue(int64(i)*1_000_000 + s)
			}
		}(i)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.MustHandle(producers + c)
			for {
				mu.Lock()
				done := totalConsumed >= producers*perProducer
				mu.Unlock()
				if done {
					return
				}
				if v, ok := h.Dequeue(); ok {
					results[c] = append(results[c], v)
					mu.Lock()
					totalConsumed++
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < consumers; c++ {
		last := map[int64]int64{}
		for _, v := range results[c] {
			prod, seq := v/1_000_000, v%1_000_000
			if prev, ok := last[prod]; ok && seq < prev {
				t.Fatalf("consumer %d: producer %d out of order (%d after %d)", c, prod, seq, prev)
			}
			last[prod] = seq
		}
	}
}

func TestLenTracksSize(t *testing.T) {
	q, _ := New[int](2, WithGCInterval(4))
	h := q.MustHandle(0)
	for i := 0; i < 30; i++ {
		h.Enqueue(i)
	}
	if got := q.Len(); got != 30 {
		t.Fatalf("Len = %d", got)
	}
	for i := 0; i < 12; i++ {
		h.Dequeue()
	}
	if got := q.Len(); got != 18 {
		t.Fatalf("Len = %d", got)
	}
}

func TestBoundedStepComplexityBound(t *testing.T) {
	// Numeric guardrail from Theorem 32: with this implementation's
	// constants, amortized steps per operation stay under
	// 40*(lg p + 1)*(lg(p+q) + 1) + 60 on a pairs workload (q stays O(p)).
	// A regression that made GC or searches linear in p or in history
	// length would blow far past it.
	for _, procs := range []int{2, 4, 8, 16, 32} {
		q, err := New[int64](procs)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		counters := make([]*metrics.Counter, procs)
		for p := 0; p < procs; p++ {
			counters[p] = &metrics.Counter{}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := q.MustHandle(p)
				h.SetCounter(counters[p])
				for s := int64(0); s < 500; s++ {
					h.Enqueue(s)
					h.Dequeue()
				}
			}(p)
		}
		wg.Wait()
		sum := metrics.Summarize(counters...)
		lg := 1.0
		for 1<<int(lg) < procs {
			lg++
		}
		bound := 40*(lg+1)*(lg+1) + 60
		if sum.StepsPerOp > bound {
			t.Errorf("procs=%d: %.1f steps/op exceeds guardrail %.0f", procs, sum.StepsPerOp, bound)
		}
	}
}
