package bounded

// Deterministic schedule exploration for the bounded-space queue, mirroring
// internal/core's exploration but additionally exercising garbage
// collection: tiny GC intervals make the explored schedules constantly
// discard blocks, stressing the persistent-tree searches, the miss
// (errDiscarded) paths and the helping machinery under adversarial
// interleavings of appends and refreshes.
//
// The hooks (stepAppend/stepRefresh) are test-only methods defined here;
// they follow exactly the same protocol as the full operations.

import (
	"math/rand"
	"testing"
)

// stepAppendEnq appends an enqueue block to the handle's leaf without
// propagating. Returns the block.
func (h *Handle[T]) stepAppendEnq(e T) *block[T] {
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := &block[T]{
		index:   prev.index + 1,
		element: e,
		sumEnq:  prev.sumEnq + 1,
		sumDeq:  prev.sumDeq,
	}
	t2 := h.addBlock(h.leaf, t, prev, b)
	h.storeTree(h.leaf, t2)
	return b
}

// stepAppendDeq appends a dequeue block without propagating or resolving.
func (h *Handle[T]) stepAppendDeq() *block[T] {
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := &block[T]{
		index:    prev.index + 1,
		isDeq:    true,
		deqCount: 1,
		sumEnq:   prev.sumEnq,
		sumDeq:   prev.sumDeq + 1,
	}
	t2 := h.addBlock(h.leaf, t, prev, b)
	h.storeTree(h.leaf, t2)
	return b
}

// stepFinish resolves a previously appended dequeue (must be propagated).
func (h *Handle[T]) stepFinish(b *block[T]) (T, bool) {
	res, err := h.completeDeqN(h.leaf, b.index, 1)
	if err != nil {
		res = h.awaitResponse(b)
	}
	return res.val, res.ok
}

type boundedSchedOp struct {
	proc  int
	isEnq bool
	value int
	block *block[int]
}

func TestBoundedScheduleExploration(t *testing.T) {
	const trials = 600
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		procs := 2 + rng.Intn(3)
		opsPerProc := 2 + rng.Intn(3)
		g := int64(2 + rng.Intn(6))
		exploreBoundedSchedule(t, rng, procs, opsPerProc, g, trial)
		if t.Failed() {
			return
		}
	}
}

func exploreBoundedSchedule(t *testing.T, rng *rand.Rand, procs, opsPerProc int, g int64, trial int) {
	t.Helper()
	q, err := New[int](procs, WithGCInterval(g))
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle[int], procs)
	for i := range handles {
		handles[i] = q.MustHandle(i)
	}

	// Script operations.
	var script [][]*boundedSchedOp
	var all []*boundedSchedOp
	nextVal := 1
	for p := 0; p < procs; p++ {
		var ops []*boundedSchedOp
		for s := 0; s < opsPerProc; s++ {
			op := &boundedSchedOp{proc: p, isEnq: rng.Intn(2) == 0, value: nextVal}
			nextVal++
			ops = append(ops, op)
			all = append(all, op)
		}
		script = append(script, ops)
	}

	// Internal nodes for refresh actions.
	var internals []*node[int]
	var walk func(n *node[int])
	walk = func(n *node[int]) {
		if n.isLeaf() {
			return
		}
		internals = append(internals, n)
		walk(n.left)
		walk(n.right)
	}
	walk(q.root)

	appended := make([]int, procs)
	pending := procs * opsPerProc
	stall := 0
	for pending > 0 {
		if stall > 60 {
			p := rng.Intn(procs)
			handles[p].propagate(q.leaves[p].parent)
			stall = 0
			continue
		}
		if rng.Intn(3) == 0 {
			handles[rng.Intn(procs)].refresh(internals[rng.Intn(len(internals))])
			continue
		}
		p := rng.Intn(procs)
		if appended[p] == len(script[p]) {
			stall++
			continue
		}
		if appended[p] > 0 {
			prev := script[p][appended[p]-1]
			if !handles[p].propagated(q.leaves[p], prev.block.index) {
				stall++
				continue
			}
			// Resolve the previous dequeue before starting the next op, as
			// a real process would (its response affects last[] and GC).
			if !prev.isEnq && prev.block.response.Load() == nil {
				if res, err := handles[p].completeDeqN(q.leaves[p], prev.block.index, 1); err == nil {
					prev.block.response.CompareAndSwap(nil, &res)
				}
			}
		}
		op := script[p][appended[p]]
		if op.isEnq {
			op.block = handles[p].stepAppendEnq(op.value)
		} else {
			op.block = handles[p].stepAppendDeq()
		}
		appended[p]++
		pending--
		stall = 0
	}
	for p := 0; p < procs; p++ {
		handles[p].propagate(q.leaves[p].parent)
	}

	// Resolve every dequeue and validate against a sequential replay of the
	// linearization reconstructed from a full drain.
	//
	// Unlike the unbounded queue we cannot expand the root (blocks may be
	// GC'd), so validate semantically: resolve all scripted dequeues, then
	// drain; the multiset of (dequeued + drained) values must equal the
	// enqueued ones, with per-process dequeue responses FIFO-consistent.
	got := map[int]int{} // value -> count
	enqueued := map[int]bool{}
	for _, op := range all {
		if op.isEnq {
			enqueued[op.value] = true
			continue
		}
		v, ok := handles[op.proc].stepFinish(op.block)
		if ok {
			got[v]++
		}
	}
	h := handles[0]
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		got[v]++
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("trial %d (G=%d): value %d seen %d times", trial, g, v, c)
		}
		if !enqueued[v] {
			t.Fatalf("trial %d (G=%d): value %d dequeued but never enqueued", trial, g, v)
		}
	}
	if len(got) != len(enqueued) {
		t.Fatalf("trial %d (G=%d): %d values recovered, %d enqueued", trial, g, len(got), len(enqueued))
	}
}

// TestHelpCompletesPendingDequeue constructs the helping scenario
// deterministically: process A's dequeue is appended and propagated but not
// resolved; process B's operations eventually trigger a GC phase whose Help
// pass must compute and publish A's response (Appendix B).
func TestHelpCompletesPendingDequeue(t *testing.T) {
	q, err := New[int](2, WithGCInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	a, b := q.MustHandle(0), q.MustHandle(1)
	b.Enqueue(7)

	blk := a.stepAppendDeq()
	a.propagate(q.leaves[0].parent)
	if !a.propagated(q.leaves[0], blk.index) {
		t.Fatal("dequeue block did not propagate")
	}
	if blk.response.Load() != nil {
		t.Fatal("response set before any helping")
	}

	// B's traffic triggers GC (every 4th block per node) whose Help must
	// complete A's pending dequeue.
	for i := 0; blk.response.Load() == nil && i < 200; i++ {
		b.Enqueue(100 + i)
		b.Dequeue()
	}
	res := blk.response.Load()
	if res == nil {
		t.Fatal("help never published the pending dequeue's response")
	}
	if !res.ok || res.val != 7 {
		t.Fatalf("helped response = (%d, %v), want (7, true)", res.val, res.ok)
	}
	// A's own completion path agrees.
	v, ok := a.stepFinish(blk)
	if !ok || v != 7 {
		t.Fatalf("owner completion = (%d, %v), want (7, true)", v, ok)
	}
}
