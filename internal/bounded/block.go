package bounded

import "sync/atomic"

// block is one entry of a node's persistent block tree (Figure 5 of the
// paper). Compared with the unbounded version it carries an explicit index
// (its position in the conceptual blocks array, which is also its tree key)
// and drops the super field: superblocks are found by searching the parent's
// tree on endleft/endright. Leaf blocks representing a dequeue additionally
// carry a response slot so that helpers can complete the operation during
// garbage collection (Appendix B).
type block[T any] struct {
	index int64

	// sumEnq and sumDeq are the prefix sums of Invariant 7: operations in
	// the node's blocks 1..index.
	sumEnq int64
	sumDeq int64

	// endLeft and endRight delimit direct subblocks (internal nodes only).
	endLeft  int64
	endRight int64

	// size is the queue length after this block's operations (root only).
	size int64

	// element is the enqueued value (leaf blocks carrying a single
	// enqueue). Multi-op enqueue blocks store their values in elems, so the
	// single-op hot path never pays a slice allocation.
	element T

	// elems are the enqueued values of a multi-op leaf block (batch
	// append), in enqueue order. nil for single-op and dequeue blocks.
	elems []T

	// isDeq marks a leaf block that represents a dequeue. (The paper marks
	// dequeues with element = null; an explicit flag avoids reserving a
	// sentinel value of T.)
	isDeq bool

	// deqCount is the number of dequeues a leaf dequeue block carries (1
	// for singles, the batch size for DequeueBatch blocks). GC helpers need
	// it to compute the whole batch's response before discarding blocks.
	deqCount int64

	// response is the dequeue's result, written once by whoever computes it
	// first (the owner or a GC helper). nil means not yet computed.
	response atomic.Pointer[response[T]]
}

// response is a dequeue result: ok is false for a null dequeue. For batch
// dequeue blocks, vals holds the values of every successful dequeue of the
// batch (always a prefix of the block's dequeues, since the batch occupies
// one root block) and val/ok mirror the first; single-op responses leave
// vals nil.
type response[T any] struct {
	val  T
	ok   bool
	vals []T
}

// enqAt returns the i-th (1-based) enqueue argument of a leaf block, which
// must contain at least i enqueues.
func (b *block[T]) enqAt(i int64) T {
	if b.elems != nil {
		return b.elems[i-1]
	}
	return b.element
}

// end returns endLeft or endRight according to dir.
func (b *block[T]) end(dir direction) int64 {
	if dir == left {
		return b.endLeft
	}
	return b.endRight
}

// direction distinguishes the two children of an internal node.
type direction int

const (
	left direction = iota + 1
	right
)
