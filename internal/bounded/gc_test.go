package bounded

// White-box tests for the garbage-collection machinery: block discarding,
// the errDiscarded miss paths, helping, and the finished-block invariant
// (Invariant 27).

import (
	"math/rand"
	"sync"
	"testing"
)

// TestGCDiscardsOldBlocks drives enough operations through a tiny-G queue
// that every node must have dropped its oldest blocks.
func TestGCDiscardsOldBlocks(t *testing.T) {
	q, err := New[int](2, WithGCInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	for i := 0; i < 500; i++ {
		h.Enqueue(i)
		if _, ok := h.Dequeue(); !ok {
			t.Fatalf("op %d: unexpected empty", i)
		}
	}
	leaf := q.leaves[0]
	tr := leaf.blocks.Load()
	minIdx, _, ok := tr.Min()
	if !ok {
		t.Fatal("leaf tree empty")
	}
	if minIdx == 0 {
		t.Fatalf("leaf still holds block 0 after 1000 ops with G=4 (no GC happened)")
	}
	if tr.Size() > 64 {
		t.Fatalf("leaf holds %d blocks; GC ineffective", tr.Size())
	}
}

// TestCompleteDeqOnDiscardedBlocksReturnsError exercises the miss path
// directly: after GC has discarded a finished dequeue's blocks, recomputing
// its response must fail with errDiscarded rather than produce a wrong
// answer.
func TestCompleteDeqOnDiscardedBlocksReturnsError(t *testing.T) {
	q, err := New[int](2, WithGCInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	// First operation pair: dequeue block lands at leaf index 2.
	h.Enqueue(100)
	if v, ok := h.Dequeue(); !ok || v != 100 {
		t.Fatalf("dequeue = (%d, %v)", v, ok)
	}
	oldDeqIdx := int64(2)
	// Age the queue until the old blocks are gone from the leaf.
	for i := 0; i < 400; i++ {
		h.Enqueue(i)
		h.Dequeue()
	}
	if _, ok := q.leaves[0].blocks.Load().Get(oldDeqIdx); ok {
		t.Skip("old block unexpectedly still present; GC pacing changed")
	}
	if _, err := h.completeDeqN(q.leaves[0], oldDeqIdx, 1); err == nil {
		t.Fatal("completeDeq on discarded blocks succeeded; want errDiscarded")
	}
}

// TestMinBlockAlwaysFinished checks the observable core of Invariant 27 on
// a quiesced queue: for every node, all blocks below the minimum retained
// index must be unnecessary — equivalently, re-running every retained
// dequeue must still compute a response (directly or via its recorded
// response).
func TestMinBlockAlwaysFinished(t *testing.T) {
	q, err := New[int](3, WithGCInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	type deqRec struct {
		proc int
		idx  int64
		val  int
		ok   bool
	}
	var deqs []deqRec
	for i := 0; i < 600; i++ {
		p := rng.Intn(3)
		h := q.MustHandle(p)
		if rng.Intn(2) == 0 {
			h.Enqueue(i)
			continue
		}
		t2 := h.loadTree(h.leaf)
		_, prev := h.treeMax(t2)
		v, ok := h.Dequeue()
		deqs = append(deqs, deqRec{proc: p, idx: prev.index + 1, val: v, ok: ok})
	}
	// Recompute every dequeue's response; a miss means the blocks are gone,
	// which per Invariant 27 requires the response to have been recorded or
	// the op to have completed (it did — we ran it synchronously). For hits
	// the recomputation must agree with the original answer.
	for _, d := range deqs {
		h := q.MustHandle(d.proc)
		res, err := h.completeDeqN(q.leaves[d.proc], d.idx, 1)
		if err != nil {
			continue // discarded: fine, the operation long finished
		}
		if res.ok != d.ok || (res.ok && res.val != d.val) {
			t.Fatalf("proc %d deq@%d recomputed (%d,%v), original (%d,%v)",
				d.proc, d.idx, res.val, res.ok, d.val, d.ok)
		}
	}
}

// TestHelpWritesResponses verifies helping end to end: with G=2 and heavy
// concurrent churn, helpers must sometimes publish responses for other
// processes' dequeues; correctness of the published values is implied by
// the model agreement, and here we check the mechanism engages at all.
func TestHelpWritesResponses(t *testing.T) {
	q, err := New[int](4, WithGCInterval(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.MustHandle(p)
			for s := 0; s < 1500; s++ {
				if s%2 == 0 {
					h.Enqueue(p*10_000 + s)
				} else {
					h.Dequeue()
				}
			}
		}(p)
	}
	wg.Wait()
	// Count leaf dequeue blocks with a published response: helping (or the
	// paper's line-303 write) must have fired at least once across 3000
	// dequeues with GC every 2 blocks.
	helped := 0
	for _, leaf := range q.leaves {
		tr := leaf.blocks.Load()
		tr.Ascend(func(_ int64, b *block[int]) bool {
			if b.isDeq && b.response.Load() != nil {
				helped++
			}
			return true
		})
	}
	if helped == 0 {
		t.Log("no helped responses observed on retained blocks (may be GC'd); checking was best-effort")
	}
}

// TestLastArrayMonotone checks the single-writer last[] protocol.
func TestLastArrayMonotone(t *testing.T) {
	q, err := New[int](2, WithGCInterval(8))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	var prev int64
	for i := 0; i < 300; i++ {
		h.Enqueue(i)
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("unexpected empty")
		}
		cur := q.last[0].Load()
		if cur < prev {
			t.Fatalf("last[0] went backwards: %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev == 0 {
		t.Fatal("last[0] never advanced despite non-null dequeues")
	}
}
