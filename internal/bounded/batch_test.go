package bounded

// Batch-path tests for the bounded-space queue. Tiny GC intervals force the
// collection/helping machinery to run constantly under the batch blocks, so
// these exercise exactly the interactions the unbounded variant cannot:
// batch responses published by helpers, and op-counted GC triggers.

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBatchSequentialFIFOWithGC(t *testing.T) {
	q, err := New[int](2, WithGCInterval(3))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		es := make([]int, 5)
		for i := range es {
			es[i] = next
			next++
		}
		h.EnqueueBatch(es)
		h.Enqueue(next)
		next++
		vs, n := h.DequeueBatch(4)
		if n != 4 {
			t.Fatalf("round %d: DequeueBatch(4) count = %d", round, n)
		}
		for _, v := range vs {
			if v != want {
				t.Fatalf("round %d: dequeued %d, want %d", round, v, want)
			}
			want++
		}
	}
	for want < next {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("drain: Dequeue = (%d,%v), want %d", v, ok, want)
		}
		want++
	}
	if _, n := h.DequeueBatch(8); n != 0 {
		t.Fatalf("DequeueBatch on empty returned %d values", n)
	}
}

func TestBatchSpaceStaysBounded(t *testing.T) {
	q, err := New[int](2, WithGCInterval(16))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	es := make([]int, 8)
	var maxBlocks int64
	for round := 0; round < 2000; round++ {
		h.EnqueueBatch(es)
		h.DequeueBatch(8)
		if tb := q.TotalBlocks(); tb > maxBlocks {
			maxBlocks = tb
		}
	}
	// The op-counted trigger must keep live blocks independent of the total
	// operation count (32000 ops here); allow generous constant slack.
	if maxBlocks > 400 {
		t.Fatalf("live blocks reached %d across 32000 batched ops; GC not keeping up", maxBlocks)
	}
}

func TestBatchConcurrentConservationWithGC(t *testing.T) {
	const procs = 5
	const perProc = 600
	q, err := New[int64](procs, WithGCInterval(7))
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.MustHandle(p)
			rng := rand.New(rand.NewSource(int64(p) + 41))
			enq := int64(0)
			for enq < perProc {
				m := 1 + rng.Intn(6)
				if rng.Intn(2) == 0 {
					es := make([]int64, 0, m)
					for i := 0; i < m && enq < perProc; i++ {
						es = append(es, int64(p)*1_000_000+enq)
						enq++
					}
					h.EnqueueBatch(es)
				} else {
					vs, _ := h.DequeueBatch(m)
					got[p] = append(got[p], vs...)
				}
			}
		}(p)
	}
	wg.Wait()
	h := q.MustHandle(0)
	for {
		vs, n := h.DequeueBatch(32)
		if n == 0 {
			break
		}
		got[0] = append(got[0], vs...)
	}
	seen := make(map[int64]bool, procs*perProc)
	for c, vs := range got {
		last := map[int64]int64{}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			prod, seq := v/1_000_000, v%1_000_000
			if prev, ok := last[prod]; ok && seq < prev {
				t.Fatalf("consumer %d: producer %d out of order (%d after %d)", c, prod, seq, prev)
			}
			last[prod] = seq
		}
	}
	if len(seen) != procs*perProc {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), procs*perProc)
	}
}
