package bounded

// This file implements the dequeue read path of the bounded-space queue
// (Figure 5 lines 206-217 and 268-297, Figure 6): CompleteDeq, IndexDequeue,
// FindResponse, GetEnqueue and Propagated. All block-array accesses of the
// original algorithm become searches of persistent trees; any search that
// misses because garbage collection discarded the block returns
// errDiscarded, which by Invariant 27 / Lemma 28 means the operation's
// response has already been computed and published by a helper.

// completeDeqN computes the response of the n-dequeue batch block stored in
// leaf.blocks[idx], which must have been propagated to the root
// (CompleteDeq, lines 212-217, generalized to multi-op blocks). The batch
// is located in the root once; each op rank then resolves with its own
// FindResponse. n == 1 responses carry the value inline (no slice); batch
// responses collect the successful prefix into vals.
func (h *Handle[T]) completeDeqN(leaf *node[T], idx, n int64) (response[T], error) {
	b, i, err := h.indexDequeue(leaf, idx, 1)
	if err != nil {
		return response[T]{}, err
	}
	if n == 1 {
		return h.findResponse(b, i)
	}
	var res response[T]
	for j := int64(0); j < n; j++ {
		r, err := h.findResponse(b, i+j)
		if err != nil {
			return response[T]{}, err
		}
		if !r.ok {
			break // within one root block, nulls are a suffix
		}
		res.vals = append(res.vals, r.val)
	}
	if len(res.vals) > 0 {
		res.val, res.ok = res.vals[0], true
	}
	return res, nil
}

// indexDequeue returns (b', i') such that the i-th dequeue of
// D(v.blocks[b]) is the (i')-th dequeue of D(root.blocks[b']) (IndexDequeue,
// lines 281-297). The superblock at each level is found by searching the
// parent's tree: endleft/endright are non-decreasing in block index
// (Lemma 4'), so the superblock of block b is the lowest-indexed parent
// block whose end(dir) reaches b.
func (h *Handle[T]) indexDequeue(v *node[T], b, i int64) (int64, int64, error) {
	for !v.isRoot() {
		dir := v.childDir()
		pt := h.loadTree(v.parent)
		sup, ok := h.treeFindFirst(pt, func(x *block[T]) bool { return x.end(dir) >= b })
		if !ok {
			return 0, 0, errDiscarded
		}
		supPrev, ok := h.treeFindLast(pt, func(x *block[T]) bool { return x.end(dir) < b })
		if !ok || supPrev.index != sup.index-1 {
			// The true superblock or its predecessor was discarded; the
			// prefix-only removal of GC means everything older is gone too
			// and the operation has been helped.
			return 0, 0, errDiscarded
		}

		vt := h.loadTree(v)
		prevB, err := h.treeGet(vt, b-1)
		if err != nil {
			return 0, 0, err
		}
		endPrev, err := h.treeGet(vt, supPrev.end(dir))
		if err != nil {
			return 0, 0, err
		}
		// Dequeues in v's earlier subblocks of the superblock (line 291).
		i += prevB.sumDeq - endPrev.sumDeq
		if dir == right {
			// Subblocks contributed by the left sibling precede ours in
			// D(superblock) (line 293; as in the unbounded version, the
			// sums come from the sibling's blocks).
			sib := v.sibling()
			st := h.loadTree(sib)
			lastL, err := h.treeGet(st, sup.endLeft)
			if err != nil {
				return 0, 0, err
			}
			prevL, err := h.treeGet(st, supPrev.endLeft)
			if err != nil {
				return 0, 0, err
			}
			i += lastL.sumDeq - prevL.sumDeq
		}
		v, b = v.parent, sup.index
	}
	return b, i, nil
}

// findResponse computes the response of the i-th dequeue in
// D(root.blocks[b]) and records progress in the last array (FindResponse,
// lines 325-341).
func (h *Handle[T]) findResponse(b, i int64) (response[T], error) {
	rt := h.loadTree(h.queue.root)
	blkB, err := h.treeGet(rt, b)
	if err != nil {
		return response[T]{}, err
	}
	prevB, err := h.treeGet(rt, b-1)
	if err != nil {
		return response[T]{}, err
	}
	numEnq := blkB.sumEnq - prevB.sumEnq
	if prevB.size+numEnq < i {
		// Null dequeue: the queue is empty at the linearization point.
		h.updateLast(b)
		return response[T]{ok: false}, nil
	}
	// Rank (among all enqueues) of the enqueue to return (line 333).
	e := i + prevB.sumEnq - prevB.size
	beBlk, ok := h.treeFindFirst(rt, func(x *block[T]) bool { return x.sumEnq >= e })
	if !ok {
		return response[T]{}, errDiscarded
	}
	bePrev, err := h.treeGet(rt, beBlk.index-1)
	if err != nil {
		return response[T]{}, err
	}
	if bePrev.sumEnq >= e {
		// The true block holding the e-th enqueue was discarded and the
		// search slid to a later block.
		return response[T]{}, errDiscarded
	}
	ie := e - bePrev.sumEnq
	val, err := h.getEnqueue(h.queue.root, beBlk, bePrev, ie)
	if err != nil {
		return response[T]{}, err
	}
	h.updateLast(beBlk.index)
	return response[T]{val: val, ok: true}, nil
}

// getEnqueue returns the argument of the i-th enqueue in E(blkB), where
// blkB and prevB are consecutive blocks of node v (GetEnqueue, Figure 6).
func (h *Handle[T]) getEnqueue(v *node[T], blkB, prevB *block[T], i int64) (T, error) {
	var zero T
	for !v.isLeaf() {
		lt := h.loadTree(v.left)
		lastL, err := h.treeGet(lt, blkB.endLeft)
		if err != nil {
			return zero, err
		}
		prevL, err := h.treeGet(lt, prevB.endLeft)
		if err != nil {
			return zero, err
		}
		fromLeft := lastL.sumEnq - prevL.sumEnq

		var (
			child     *node[T]
			childT    *blockTree[T]
			prevChild int64
		)
		if i <= fromLeft {
			child, childT, prevChild = v.left, lt, prevL.sumEnq
		} else {
			i -= fromLeft
			rt := h.loadTree(v.right)
			prevR, err := h.treeGet(rt, prevB.endRight)
			if err != nil {
				return zero, err
			}
			child, childT, prevChild = v.right, rt, prevR.sumEnq
		}

		// The direct subblock holding the enqueue is the lowest-indexed
		// block reaching i+prevChild enqueues (line 356); sumEnq is
		// monotone in index (Invariant 7), so a tree search finds it. The
		// predecessor check detects a discarded true target: if the found
		// block's predecessor already reaches the target, the search slid
		// past a GC'd block.
		target := i + prevChild
		cand, ok := h.treeFindFirst(childT, func(x *block[T]) bool { return x.sumEnq >= target })
		if !ok {
			return zero, errDiscarded
		}
		candPrev, err := h.treeGet(childT, cand.index-1)
		if err != nil {
			return zero, err
		}
		if candPrev.sumEnq >= target {
			return zero, errDiscarded
		}
		i -= candPrev.sumEnq - prevChild
		v, blkB, prevB = child, cand, candPrev
	}
	// A leaf block carries one enqueue (element) or a whole batch (elems);
	// i survived the descent as the rank within this block.
	return blkB.enqAt(i), nil
}

// propagated reports whether v.blocks[b] has been propagated to the root
// (Propagated, lines 268-280).
func (h *Handle[T]) propagated(v *node[T], b int64) bool {
	for !v.isRoot() {
		pt := h.loadTree(v.parent)
		dir := v.childDir()
		_, maxB := h.treeMax(pt)
		if maxB.end(dir) < b {
			return false
		}
		sup, ok := h.treeFindFirst(pt, func(x *block[T]) bool { return x.end(dir) >= b })
		if !ok {
			return false
		}
		v, b = v.parent, sup.index
	}
	return true
}

// updateLast raises this process's entry in the last array to idx. Each
// entry has a single writer (its process), so a load-check-store suffices.
func (h *Handle[T]) updateLast(idx int64) {
	slot := &h.queue.last[h.id]
	h.counter.Read(1)
	if idx > slot.Load() {
		h.counter.Write()
		slot.Store(idx)
	}
}
