package bounded

// This file implements the write path of the bounded-space queue: Enqueue,
// Dequeue, Append, Propagate, Refresh, CreateBlock and AddBlock (Figure 5,
// lines 201-267 and 307-324). Garbage collection and helping live in gc.go,
// the dequeue read path in search.go.

import (
	"math/bits"
	"runtime"

	"repro/internal/metrics"
)

// Enqueue adds e to the back of the queue.
func (h *Handle[T]) Enqueue(e T) {
	h.counter.BeginOp()
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := &block[T]{
		index:   prev.index + 1,
		element: e,
		sumEnq:  prev.sumEnq + 1,
		sumDeq:  prev.sumDeq,
	}
	h.append(t, b)
	h.counter.EndOp(metrics.OpEnqueue)
}

// Dequeue removes and returns the element at the front of the queue; ok is
// false if the queue was empty at the linearization point.
func (h *Handle[T]) Dequeue() (T, bool) {
	h.counter.BeginOp()
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := &block[T]{
		index:  prev.index + 1,
		isDeq:  true,
		sumEnq: prev.sumEnq,
		sumDeq: prev.sumDeq + 1,
	}
	h.append(t, b)

	res, err := h.completeDeq(h.leaf, b.index)
	if err != nil {
		// A needed block was garbage collected, which (Invariant 27 /
		// Lemma 28) implies a helper already computed our response and
		// wrote it into our leaf block. The loop guards against the
		// tiny window between the GC's helping pass and its tree install
		// becoming visible to us.
		res = h.awaitResponse(b)
	}
	if res.ok {
		h.counter.EndOp(metrics.OpDequeue)
	} else {
		h.counter.EndOp(metrics.OpNullDequeue)
	}
	return res.val, res.ok
}

// awaitResponse fetches the dequeue response written by a helper. By
// Invariant 27 the response is written before any tree missing our blocks is
// installed, so the fast path is a single load; the bounded spin tolerates
// nothing and exists purely to convert an algorithmic bug into a clear
// failure rather than a wrong answer.
func (h *Handle[T]) awaitResponse(b *block[T]) response[T] {
	for spin := 0; ; spin++ {
		h.counter.Read(1)
		if r := b.response.Load(); r != nil {
			return *r
		}
		if spin > 1<<26 {
			panic("bounded: dequeue response missing after GC discarded its blocks (invariant violation)")
		}
		runtime.Gosched()
	}
}

// append installs b as the next block of the handle's leaf (single writer)
// and propagates it to the root (Append, lines 218-221). t is the leaf tree
// the block was built against.
func (h *Handle[T]) append(t *blockTree[T], b *block[T]) {
	t2 := h.addBlock(h.leaf, t, b)
	h.storeTree(h.leaf, t2)
	h.propagate(h.leaf.parent)
}

// propagate ensures blocks in v's children reach the root via double
// Refresh (Propagate, lines 249-257).
func (h *Handle[T]) propagate(v *node[T]) {
	for v != nil {
		if !h.refresh(v) {
			h.refresh(v)
		}
		v = v.parent
	}
}

// refresh tries to install a new block tree on v containing one new block
// that represents the children's unpropagated operations (Refresh, lines
// 258-267).
func (h *Handle[T]) refresh(v *node[T]) bool {
	t := h.loadTree(v)
	_, last := h.treeMax(t)
	b := h.createBlock(v, t, last)
	if b == nil {
		return true
	}
	t2 := h.addBlock(v, t, b)
	return h.casTree(v, t, t2)
}

// createBlock builds the candidate block with index last.index+1
// (CreateBlock, lines 307-324). It returns nil if the children hold no new
// operations. Each child's tree is loaded once so the max lookup and the
// prefix-sum reads see one consistent snapshot.
func (h *Handle[T]) createBlock(v *node[T], t *blockTree[T], prev *block[T]) *block[T] {
	lt := h.loadTree(v.left)
	rt := h.loadTree(v.right)
	_, lastLeft := h.treeMax(lt)
	_, lastRight := h.treeMax(rt)
	b := &block[T]{
		index:    prev.index + 1,
		endLeft:  lastLeft.index,
		endRight: lastRight.index,
		sumEnq:   lastLeft.sumEnq + lastRight.sumEnq,
		sumDeq:   lastLeft.sumDeq + lastRight.sumDeq,
	}
	numEnq := b.sumEnq - prev.sumEnq
	numDeq := b.sumDeq - prev.sumDeq
	if v.isRoot() {
		b.size = prev.size + numEnq - numDeq
		if b.size < 0 {
			b.size = 0
		}
	}
	if numEnq+numDeq == 0 {
		return nil
	}
	return b
}

// addBlock inserts b into t, first running a garbage-collection phase if
// b.index is a multiple of G (AddBlock, lines 222-233).
func (h *Handle[T]) addBlock(v *node[T], t *blockTree[T], b *block[T]) *blockTree[T] {
	if b.index%h.queue.gcEvery == 0 {
		s := h.splitIndex(v)
		h.help()
		t = h.treeDropBelow(t, s)
	}
	return h.treeInsert(t, b)
}

// --- instrumented shared-memory / tree accessors ---
//
// Tree searches, inserts and splits are charged ceil(log2(size))+1 steps:
// the number of tree-node reads a balanced-BST operation performs, matching
// the cost model of Theorem 32.

func treeOpCost[T any](t *blockTree[T]) int64 {
	return int64(bits.Len64(uint64(t.Size()))) + 1
}

// loadTree reads v's current block tree pointer.
func (h *Handle[T]) loadTree(v *node[T]) *blockTree[T] {
	h.counter.Read(1)
	return v.blocks.Load()
}

// storeTree publishes t on the handle's own leaf (single writer).
func (h *Handle[T]) storeTree(v *node[T], t *blockTree[T]) {
	h.counter.Write()
	v.blocks.Store(t)
}

// casTree tries to swing v's tree pointer from old to new.
func (h *Handle[T]) casTree(v *node[T], old, new *blockTree[T]) bool {
	ok := v.blocks.CompareAndSwap(old, new)
	h.counter.CAS(ok)
	return ok
}

// treeMax returns the block with the largest index (never absent: trees
// always contain at least one block, Corollary 25).
func (h *Handle[T]) treeMax(t *blockTree[T]) (int64, *block[T]) {
	h.counter.Read(1)
	k, b, ok := t.Max()
	if !ok {
		panic("bounded: empty block tree (invariant violation)")
	}
	return k, b
}

// treeMin returns the block with the smallest index.
func (h *Handle[T]) treeMin(t *blockTree[T]) (int64, *block[T]) {
	h.counter.Read(1)
	k, b, ok := t.Min()
	if !ok {
		panic("bounded: empty block tree (invariant violation)")
	}
	return k, b
}

// treeGet looks up the block with the given index; a miss means GC
// discarded it.
func (h *Handle[T]) treeGet(t *blockTree[T], index int64) (*block[T], error) {
	h.counter.Read(treeOpCost(t))
	b, ok := t.Get(index)
	if !ok {
		return nil, errDiscarded
	}
	return b, nil
}

// treeInsert returns t with b added.
func (h *Handle[T]) treeInsert(t *blockTree[T], b *block[T]) *blockTree[T] {
	h.counter.Read(treeOpCost(t))
	return t.Insert(b.index, b)
}

// treeDropBelow returns t without blocks of index < bound (the paper's
// Split).
func (h *Handle[T]) treeDropBelow(t *blockTree[T], bound int64) *blockTree[T] {
	h.counter.Read(treeOpCost(t))
	return t.DropBelow(bound)
}

// treeFindFirst returns the lowest-indexed block satisfying the monotone
// predicate.
func (h *Handle[T]) treeFindFirst(t *blockTree[T], pred func(*block[T]) bool) (*block[T], bool) {
	h.counter.Read(treeOpCost(t))
	_, b, ok := t.FindFirst(func(_ int64, b *block[T]) bool { return pred(b) })
	return b, ok
}

// treeFindLast returns the highest-indexed block satisfying the monotone
// predicate.
func (h *Handle[T]) treeFindLast(t *blockTree[T], pred func(*block[T]) bool) (*block[T], bool) {
	h.counter.Read(treeOpCost(t))
	_, b, ok := t.FindLast(func(_ int64, b *block[T]) bool { return pred(b) })
	return b, ok
}
