package bounded

// This file implements the write path of the bounded-space queue: Enqueue,
// Dequeue, Append, Propagate, Refresh, CreateBlock and AddBlock (Figure 5,
// lines 201-267 and 307-324). Garbage collection and helping live in gc.go,
// the dequeue read path in search.go.

import (
	"math/bits"
	"runtime"

	"repro/internal/metrics"
)

// Enqueue adds e to the back of the queue. It is the m=1 case of
// EnqueueBatch: both install one leaf block through the same append path.
// The block is built inline (no transient slice) and drawn from the arena.
func (h *Handle[T]) Enqueue(e T) {
	h.counter.BeginOp()
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := h.newBlock()
	b.index = prev.index + 1
	b.sumEnq = prev.sumEnq + 1
	b.sumDeq = prev.sumDeq
	b.element = e
	h.append(t, prev, b)
	h.counter.EndOp(metrics.OpEnqueue)
}

// EnqueueBatch adds the elements of es to the back of the queue as one
// multi-op leaf block: all len(es) enqueues share a single append,
// propagation pass, and (amortized) GC phase. The elements are linearized
// consecutively in slice order. es is copied; the caller keeps ownership.
func (h *Handle[T]) EnqueueBatch(es []T) {
	if len(es) == 0 {
		return
	}
	h.counter.BeginOp()
	h.enqueueBlock(es)
	h.counter.EndBatch(int64(len(es)), 0, 0)
}

// enqueueBlock installs one leaf block carrying the len(es) >= 1 enqueues
// of es and propagates it to the root.
func (h *Handle[T]) enqueueBlock(es []T) {
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := h.newBlock()
	b.index = prev.index + 1
	b.sumEnq = prev.sumEnq + int64(len(es))
	b.sumDeq = prev.sumDeq
	if len(es) == 1 {
		b.element = es[0]
	} else {
		b.elems = append([]T(nil), es...)
	}
	h.append(t, prev, b)
}

// Dequeue removes and returns the element at the front of the queue; ok is
// false if the queue was empty at the linearization point. It is the n=1
// case of DequeueBatch.
func (h *Handle[T]) Dequeue() (T, bool) {
	h.counter.BeginOp()
	res := h.dequeueBlock(1)
	if res.ok {
		h.counter.EndOp(metrics.OpDequeue)
	} else {
		h.counter.EndOp(metrics.OpNullDequeue)
	}
	return res.val, res.ok
}

// DequeueBatch removes up to n elements from the front of the queue in one
// multi-op leaf block and one propagation pass, returning them in FIFO
// order with their count. A count below n means the queue was empty when
// the (count+1)-th dequeue of the batch took effect. All n dequeues
// linearize consecutively (one leaf block lands in one root block), so the
// batch's null dequeues are always a suffix.
func (h *Handle[T]) DequeueBatch(n int) ([]T, int) {
	if n <= 0 {
		return nil, 0
	}
	h.counter.BeginOp()
	res := h.dequeueBlock(int64(n))
	vals := res.vals
	if vals == nil && res.ok {
		vals = []T{res.val} // n == 1 responses carry the value inline
	}
	h.counter.EndBatch(0, int64(len(vals)), int64(n-len(vals)))
	return vals, len(vals)
}

// DequeueBatchAppend is DequeueBatch appending into dst. The response's
// value slice may be helper-published shared storage, so the elements are
// copied into dst — never handed out by reference — and the (possibly
// grown) slice is returned with the count appended.
func (h *Handle[T]) DequeueBatchAppend(dst []T, n int) ([]T, int) {
	if n <= 0 {
		return dst, 0
	}
	h.counter.BeginOp()
	res := h.dequeueBlock(int64(n))
	got := 0
	switch {
	case res.vals != nil:
		dst = append(dst, res.vals...)
		got = len(res.vals)
	case res.ok:
		dst = append(dst, res.val) // n == 1 responses carry the value inline
		got = 1
	}
	h.counter.EndBatch(0, int64(got), int64(n-got))
	return dst, got
}

// dequeueBlock installs one leaf block carrying n dequeues, propagates it,
// and computes the batch's response (falling back to the GC helpers'
// published response when the needed blocks were already discarded).
func (h *Handle[T]) dequeueBlock(n int64) response[T] {
	t := h.loadTree(h.leaf)
	_, prev := h.treeMax(t)
	b := h.newBlock()
	b.index = prev.index + 1
	b.isDeq = true
	b.deqCount = n
	b.sumEnq = prev.sumEnq
	b.sumDeq = prev.sumDeq + n
	h.append(t, prev, b)

	res, err := h.completeDeqN(h.leaf, b.index, n)
	if err != nil {
		// A needed block was garbage collected, which (Invariant 27 /
		// Lemma 28) implies a helper already computed our response and
		// wrote it into our leaf block. The loop guards against the
		// tiny window between the GC's helping pass and its tree install
		// becoming visible to us.
		res = h.awaitResponse(b)
	}
	return res
}

// awaitResponse fetches the dequeue response written by a helper. By
// Invariant 27 the response is written before any tree missing our blocks is
// installed, so the fast path is a single load; the bounded spin tolerates
// nothing and exists purely to convert an algorithmic bug into a clear
// failure rather than a wrong answer.
func (h *Handle[T]) awaitResponse(b *block[T]) response[T] {
	for spin := 0; ; spin++ {
		h.counter.Read(1)
		if r := b.response.Load(); r != nil {
			return *r
		}
		if spin > 1<<26 {
			panic("bounded: dequeue response missing after GC discarded its blocks (invariant violation)")
		}
		runtime.Gosched()
	}
}

// append installs b as the next block of the handle's leaf (single writer)
// and propagates it to the root (Append, lines 218-221). t is the leaf tree
// the block was built against, prev its current max block.
func (h *Handle[T]) append(t *blockTree[T], prev, b *block[T]) {
	t2 := h.addBlock(h.leaf, t, prev, b)
	h.storeTree(h.leaf, t2)
	h.propagate(h.leaf.parent)
}

// propagate ensures blocks in v's children reach the root via double
// Refresh (Propagate, lines 249-257).
func (h *Handle[T]) propagate(v *node[T]) {
	for v != nil {
		if !h.refresh(v) {
			h.refresh(v)
		}
		v = v.parent
	}
}

// refresh tries to install a new block tree on v containing one new block
// that represents the children's unpropagated operations (Refresh, lines
// 258-267).
func (h *Handle[T]) refresh(v *node[T]) bool {
	t := h.loadTree(v)
	_, last := h.treeMax(t)
	b := h.createBlock(v, t, last)
	if b == nil {
		return true
	}
	t2 := h.addBlock(v, t, last, b)
	if h.casTree(v, t, t2) {
		return true
	}
	// The candidate was only reachable from t2, which just lost the CAS
	// and is discarded along with it — b is still private and recyclable.
	h.recycle(b)
	return false
}

// createBlock builds the candidate block with index last.index+1
// (CreateBlock, lines 307-324). It returns nil if the children hold no new
// operations. Each child's tree is loaded once so the max lookup and the
// prefix-sum reads see one consistent snapshot.
func (h *Handle[T]) createBlock(v *node[T], t *blockTree[T], prev *block[T]) *block[T] {
	lt := h.loadTree(v.left)
	rt := h.loadTree(v.right)
	_, lastLeft := h.treeMax(lt)
	_, lastRight := h.treeMax(rt)
	sumEnq := lastLeft.sumEnq + lastRight.sumEnq
	sumDeq := lastLeft.sumDeq + lastRight.sumDeq
	// Decide before allocating: the frequent nothing-to-propagate case must
	// not touch the arena at all.
	if sumEnq == prev.sumEnq && sumDeq == prev.sumDeq {
		return nil
	}
	b := h.newBlock()
	b.index = prev.index + 1
	b.endLeft = lastLeft.index
	b.endRight = lastRight.index
	b.sumEnq = sumEnq
	b.sumDeq = sumDeq
	if v.isRoot() {
		b.size = prev.size + (sumEnq - prev.sumEnq) - (sumDeq - prev.sumDeq)
		if b.size < 0 {
			b.size = 0
		}
	}
	return b
}

// addBlock inserts b into t, first running a garbage-collection phase when
// the insert crosses a multiple of G in the node's cumulative *operation*
// count (AddBlock, lines 222-233). The paper triggers on every G-th block;
// with multi-op batch blocks that would stretch the collection interval by
// the batch size and let live space grow proportionally, so the trigger
// counts operations (sumEnq+sumDeq) instead. For single-op histories the
// two rules coincide at the leaves (index == op count there), and the
// Theorem 31 space bound keeps the same +G slack either way.
func (h *Handle[T]) addBlock(v *node[T], t *blockTree[T], prev, b *block[T]) *blockTree[T] {
	g := h.queue.gcEvery
	if (b.sumEnq+b.sumDeq)/g > (prev.sumEnq+prev.sumDeq)/g {
		s := h.splitIndex(v)
		h.help()
		t = h.treeDropBelow(t, s)
	}
	return h.treeInsert(t, b)
}

// --- instrumented shared-memory / tree accessors ---
//
// Tree searches, inserts and splits are charged ceil(log2(size))+1 steps:
// the number of tree-node reads a balanced-BST operation performs, matching
// the cost model of Theorem 32.

func treeOpCost[T any](t *blockTree[T]) int64 {
	return int64(bits.Len64(uint64(t.Size()))) + 1
}

// loadTree reads v's current block tree pointer.
func (h *Handle[T]) loadTree(v *node[T]) *blockTree[T] {
	h.counter.Read(1)
	return v.blocks.Load()
}

// storeTree publishes t on the handle's own leaf (single writer).
func (h *Handle[T]) storeTree(v *node[T], t *blockTree[T]) {
	h.counter.Write()
	v.blocks.Store(t)
}

// casTree tries to swing v's tree pointer from old to new.
func (h *Handle[T]) casTree(v *node[T], old, new *blockTree[T]) bool {
	ok := v.blocks.CompareAndSwap(old, new)
	h.counter.CAS(ok)
	return ok
}

// treeMax returns the block with the largest index (never absent: trees
// always contain at least one block, Corollary 25).
func (h *Handle[T]) treeMax(t *blockTree[T]) (int64, *block[T]) {
	h.counter.Read(1)
	k, b, ok := t.Max()
	if !ok {
		panic("bounded: empty block tree (invariant violation)")
	}
	return k, b
}

// treeMin returns the block with the smallest index.
func (h *Handle[T]) treeMin(t *blockTree[T]) (int64, *block[T]) {
	h.counter.Read(1)
	k, b, ok := t.Min()
	if !ok {
		panic("bounded: empty block tree (invariant violation)")
	}
	return k, b
}

// treeGet looks up the block with the given index; a miss means GC
// discarded it.
func (h *Handle[T]) treeGet(t *blockTree[T], index int64) (*block[T], error) {
	h.counter.Read(treeOpCost(t))
	b, ok := t.Get(index)
	if !ok {
		return nil, errDiscarded
	}
	return b, nil
}

// treeInsert returns t with b added.
func (h *Handle[T]) treeInsert(t *blockTree[T], b *block[T]) *blockTree[T] {
	h.counter.Read(treeOpCost(t))
	return t.Insert(b.index, b)
}

// treeDropBelow returns t without blocks of index < bound (the paper's
// Split).
func (h *Handle[T]) treeDropBelow(t *blockTree[T], bound int64) *blockTree[T] {
	h.counter.Read(treeOpCost(t))
	return t.DropBelow(bound)
}

// treeFindFirst returns the lowest-indexed block satisfying the monotone
// predicate.
func (h *Handle[T]) treeFindFirst(t *blockTree[T], pred func(*block[T]) bool) (*block[T], bool) {
	h.counter.Read(treeOpCost(t))
	_, b, ok := t.FindFirst(func(_ int64, b *block[T]) bool { return pred(b) })
	return b, ok
}

// treeFindLast returns the highest-indexed block satisfying the monotone
// predicate.
func (h *Handle[T]) treeFindLast(t *blockTree[T], pred func(*block[T]) bool) (*block[T], bool) {
	h.counter.Read(treeOpCost(t))
	_, b, ok := t.FindLast(func(_ int64, b *block[T]) bool { return pred(b) })
	return b, ok
}
