package bounded

// Allocation regression gates for the bounded variant's block arena
// (pool.go). Unlike internal/core, the bounded queue allocates persistent-
// BST path copies on every tree insert — O(log n) pbst nodes per level per
// op, ~57 allocs per Enqueue+Dequeue pair at p=4 — which is inherent to the
// functional-tree design the paper's GC needs and is charged by the
// Theorem 32 cost model. The arena's job here is the *block* allocations:
// the recycled path (Refresh candidates) allocates zero blocks per op in
// steady state. The AllocsPerRun gate is therefore a calibrated ceiling
// that catches per-op block allocation creeping back in (or a pbst
// regression), and the white-box test checks recycling fires at all.

import (
	"sync"
	"testing"
)

func TestAllocsBoundedPair(t *testing.T) {
	q, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	for i := 0; i < 300; i++ {
		h.Enqueue(i)
		h.Dequeue()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Enqueue(7)
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	})
	// Measured 57/pair with the arena (all pbst path copies); without the
	// arena the blocks add ~6 more. The ceiling is tight enough to catch
	// that delta while tolerating pbst rebalancing noise.
	if avg > 62.0 {
		t.Errorf("allocs per bounded Enqueue+Dequeue pair = %.2f, want <= 62", avg)
	}
}

// TestAllocsArenaReuse checks the arena mechanics deterministically:
// recycled blocks are reused, fully reset, and overflow the spare stack
// into the shared pool.
func TestAllocsArenaReuse(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	b1 := h.newBlock()
	b1.index = 9
	b1.sumEnq = 5
	b1.isDeq = true
	b1.deqCount = 3
	b1.elems = []int{1}
	b1.response.Store(&response[int]{ok: true})
	h.recycle(b1)
	b2 := h.newBlock()
	if b2 != b1 {
		t.Fatal("recycled block not reused")
	}
	if b2.index != 0 || b2.sumEnq != 0 || b2.isDeq || b2.deqCount != 0 ||
		b2.elems != nil || b2.response.Load() != nil {
		t.Fatalf("recycled block not reset: index=%d sumEnq=%d isDeq=%v deqCount=%d",
			b2.index, b2.sumEnq, b2.isDeq, b2.deqCount)
	}
	// Overflow: beyond spareCap the excess must reach the shared pool.
	for i := 0; i < spareCap+4; i++ {
		h.recycle(&block[int]{index: int64(i)})
	}
	if len(h.spare) != spareCap {
		t.Fatalf("spare stack holds %d blocks, want %d", len(h.spare), spareCap)
	}
	if q.arena.Get() == nil {
		t.Fatal("spare overflow did not reach the shared pool")
	}
}

// TestAllocsRefreshFailureRecycles drives refresh's CAS-failure path, which
// uniprocessor scheduling essentially never hits naturally: a handle reads
// the root tree, another handle's operation swings the pointer, and the
// first handle's candidate must come back through the arena instead of
// becoming garbage.
func TestAllocsRefreshFailureRecycles(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := q.MustHandle(0), q.MustHandle(1)
	h0.Enqueue(1) // seed so both root children have history

	var wg sync.WaitGroup
	spares := len(h0.spare)
	// Stage the race: h1 appends at its leaf but we pause it before root
	// refresh by doing the steps manually — bounded has no stepper, so
	// instead make h0's view stale: load the root tree, let h1 run a full
	// op (which refreshes the root), then run h0's refresh from the stale
	// continuation. refresh reloads internally, so replicate its body with
	// the stale snapshot to exercise createBlock/addBlock/casTree/recycle
	// exactly as a preempted refresh would execute them.
	root := q.root
	tStale := h0.loadTree(root)
	_, lastStale := h0.treeMax(tStale)
	wg.Add(1)
	go func() {
		defer wg.Done()
		h1.Enqueue(2)
	}()
	wg.Wait()
	b := h0.createBlock(root, tStale, lastStale)
	if b == nil {
		t.Fatal("staged refresh found nothing to propagate")
	}
	t2 := h0.addBlock(root, tStale, lastStale, b)
	if h0.casTree(root, tStale, t2) {
		t.Fatal("stale CAS unexpectedly succeeded")
	}
	h0.recycle(b)
	if len(h0.spare) != spares+1 {
		t.Fatalf("candidate not recycled: spare %d, want %d", len(h0.spare), spares+1)
	}
	// The queue must still be fully functional with the recycled candidate
	// back in circulation.
	h0.Enqueue(3)
	for _, want := range []int{1, 2, 3} {
		v, ok := h0.Dequeue()
		if !ok || v != want {
			t.Fatalf("dequeue = (%d, %v), want %d", v, ok, want)
		}
	}
}
