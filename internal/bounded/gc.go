package bounded

// Garbage collection (paper Section 6, Appendix B): every G-th block added
// to a node triggers a GC phase that (1) determines the oldest block the
// node must keep, by tracing the last array's maximum down from the root
// along endleft/endright indices, (2) helps every pending propagated dequeue
// compute its response so discarded blocks can no longer be needed, and
// (3) splits the obsolete prefix off the node's tree (done by the caller,
// addBlock).

// splitIndex returns the index of the oldest block node v must keep; blocks
// with smaller indices are discarded by the caller (SplitBlock, lines
// 234-248, which returns the block whose index the caller splits at).
func (h *Handle[T]) splitIndex(v *node[T]) int64 {
	return h.splitBlock(v).index
}

// splitBlock walks up to the root to find the most recent certainly-finished
// root block, then maps it back down to v via end(dir) indices. If any
// lookup on the way finds the block already discarded by another GC phase,
// the node's oldest surviving block is used instead (line 247): that GC
// already determined everything older is disposable.
func (h *Handle[T]) splitBlock(v *node[T]) *block[T] {
	t := h.loadTree(v)
	if v.isRoot() {
		var m int64
		for k := range h.queue.last {
			h.counter.Read(1)
			if x := h.queue.last[k].Load(); x > m {
				m = x
			}
		}
		if m < 1 {
			_, mb := h.treeMin(t)
			return mb
		}
		b, err := h.treeGet(t, m-1)
		if err != nil {
			_, mb := h.treeMin(t)
			return mb
		}
		return b
	}
	sup := h.splitBlock(v.parent)
	dir := v.childDir()
	b, err := h.treeGet(t, sup.end(dir))
	if err != nil {
		_, mb := h.treeMin(t)
		return mb
	}
	return b
}

// help completes every pending dequeue that has been propagated to the root
// by computing its response and publishing it on the leaf block (Help, lines
// 298-306). Only each leaf's newest block can be pending: earlier blocks
// belong to operations their process finished before invoking the next one.
// A batch dequeue block is helped as a unit: all deqCount of its responses
// are computed before any of its blocks may be discarded, so the owner can
// always recover the whole batch from the published response.
func (h *Handle[T]) help() {
	for _, leaf := range h.queue.leaves {
		t := h.loadTree(leaf)
		_, b := h.treeMax(t)
		if !b.isDeq || b.index == 0 || !h.propagated(leaf, b.index) {
			continue
		}
		res, err := h.completeDeqN(leaf, b.index, b.deqCount)
		if err != nil {
			// Another GC already discarded this dequeue's blocks, so its
			// response was published then.
			continue
		}
		h.counter.CAS(b.response.CompareAndSwap(nil, &res))
	}
}
