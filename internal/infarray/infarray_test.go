package infarray

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestLocateBijective(t *testing.T) {
	// The (level, offset) pair must be unique per index and stay within the
	// level's bounds.
	seen := make(map[[2]int64]int64)
	for i := int64(0); i < 1<<16; i++ {
		level, offset := locate(i)
		if level < 0 || level >= maxLevels {
			t.Fatalf("index %d: level %d out of range", i, level)
		}
		size := int64(1) << (defaultBaseBits + level)
		if offset < 0 || offset >= size {
			t.Fatalf("index %d: offset %d out of level size %d", i, offset, size)
		}
		key := [2]int64{int64(level), offset}
		if prev, ok := seen[key]; ok {
			t.Fatalf("indices %d and %d map to same slot %v", prev, i, key)
		}
		seen[key] = i
	}
}

func TestLocateContiguous(t *testing.T) {
	// Consecutive indices inside one level must map to consecutive offsets,
	// and level boundaries must be crossed exactly when the previous level
	// fills up.
	prevLevel, prevOffset := locate(0)
	if prevLevel != 0 || prevOffset != 0 {
		t.Fatalf("locate(0) = (%d, %d), want (0, 0)", prevLevel, prevOffset)
	}
	for i := int64(1); i < 1<<15; i++ {
		level, offset := locate(i)
		switch {
		case level == prevLevel:
			if offset != prevOffset+1 {
				t.Fatalf("index %d: offset %d does not follow %d", i, offset, prevOffset)
			}
		case level == prevLevel+1:
			if offset != 0 {
				t.Fatalf("index %d: new level %d starts at offset %d", i, level, offset)
			}
			prevSize := int64(1) << (defaultBaseBits + prevLevel)
			if prevOffset != prevSize-1 {
				t.Fatalf("index %d: left level %d before it filled (offset %d of %d)", i, prevLevel, prevOffset, prevSize)
			}
		default:
			t.Fatalf("index %d: jumped from level %d to %d", i, prevLevel, level)
		}
		prevLevel, prevOffset = level, offset
	}
}

func TestLocateProperty(t *testing.T) {
	f := func(raw uint32) bool {
		i := int64(raw)
		level, offset := locate(i)
		// Reconstruct the logical index from (level, offset): the level's
		// first logical index is base*(2^level - 1).
		start := int64(1)<<(defaultBaseBits+level) - int64(1)<<defaultBaseBits
		return start+offset == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGetBeforeStore(t *testing.T) {
	a := New[int]()
	for _, i := range []int64{0, 1, 63, 64, 100, 1 << 20, 1 << 40} {
		if got := a.Get(i); got != nil {
			t.Errorf("Get(%d) = %v before any store, want nil", i, got)
		}
	}
}

func TestStoreGetRoundTrip(t *testing.T) {
	a := New[int]()
	vals := make([]*int, 0, 2000)
	for i := 0; i < 2000; i++ {
		v := i * 7
		vals = append(vals, &v)
		a.Store(int64(i), &v)
	}
	for i, want := range vals {
		if got := a.Get(int64(i)); got != want {
			t.Fatalf("Get(%d) = %p, want %p", i, got, want)
		}
	}
}

func TestCompareAndSwapOnce(t *testing.T) {
	a := New[string]()
	first, second := "first", "second"
	if !a.CompareAndSwap(5, nil, &first) {
		t.Fatal("initial CAS failed on empty slot")
	}
	if a.CompareAndSwap(5, nil, &second) {
		t.Fatal("second CAS from nil succeeded on occupied slot")
	}
	if got := a.Get(5); got != &first {
		t.Fatalf("Get(5) = %v, want pointer to %q", got, first)
	}
}

func TestSparseIndices(t *testing.T) {
	a := New[int]()
	// Levels are allocated whole on first touch (sized for append-dominated
	// use), so sparse probes stay below 1<<22 to keep allocations modest.
	idx := []int64{0, 1, 2, 1000, 1 << 18, 1 << 21}
	for k, i := range idx {
		v := k
		a.Store(i, &v)
	}
	for k, i := range idx {
		got := a.Get(i)
		if got == nil || *got != k {
			t.Fatalf("Get(%d) = %v, want %d", i, got, k)
		}
	}
}

func TestConcurrentCASSingleWinner(t *testing.T) {
	// Many goroutines race to install into the same fresh slots, including
	// slots on never-before-touched levels; exactly one must win each slot.
	const goroutines = 16
	const slots = 512
	a := New[int]()
	wins := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for s := 0; s < slots; s++ {
				// Mix dense and sparse indices to force level allocation races.
				i := int64(s)
				if s%7 == 0 {
					i = int64(s) << 12
				}
				v := g
				if a.CompareAndSwap(i, nil, &v) {
					wins[g] = append(wins[g], i)
				}
				_ = rng.Int()
			}
		}(g)
	}
	wg.Wait()
	total := 0
	seen := make(map[int64]bool)
	for _, w := range wins {
		for _, i := range w {
			if seen[i] {
				t.Fatalf("slot %d won twice", i)
			}
			seen[i] = true
			total++
		}
	}
	wantSlots := make(map[int64]bool)
	for s := 0; s < slots; s++ {
		i := int64(s)
		if s%7 == 0 {
			i = int64(s) << 12
		}
		wantSlots[i] = true
	}
	if total != len(wantSlots) {
		t.Fatalf("won %d slots, want %d", total, len(wantSlots))
	}
}

func TestConcurrentReadersSeeWrites(t *testing.T) {
	a := New[int64]()
	const n = 4096
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; i++ {
			v := i
			a.Store(i, &v)
		}
	}()
	go func() {
		defer wg.Done()
		// Readers may observe nil (not yet written) but never a torn or
		// wrong value.
		for pass := 0; pass < 4; pass++ {
			for i := int64(0); i < n; i++ {
				if got := a.Get(i); got != nil && *got != i {
					t.Errorf("Get(%d) = %d", i, *got)
					return
				}
			}
		}
	}()
	wg.Wait()
}

func BenchmarkGet(b *testing.B) {
	a := New[int]()
	v := 42
	a.Store(1<<18, &v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Get(1<<18) == nil {
			b.Fatal("missing value")
		}
	}
}

func BenchmarkStoreSequential(b *testing.B) {
	a := New[int]()
	v := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Store(int64(i), &v)
	}
}
