// Package infarray provides a lock-free, unbounded, append-friendly array.
//
// The paper's ordering-tree nodes each own an "infinite array of blocks"
// (Section 3.3, Figure 3). This package realizes that abstraction: a logical
// array of pointers, all initially nil, supporting O(1) random access and a
// single-slot compare-and-swap from nil. Storage is a fixed 64-entry level
// directory where level l holds base<<l contiguous slots, so capacity grows
// exponentially while lookups stay O(1) (one bits.Len64 plus two indexed
// loads). Levels are allocated on first touch and installed with CAS, so the
// structure as a whole remains lock-free and all published slots are stable
// for the lifetime of the array.
package infarray

import (
	"math/bits"
	"sync/atomic"
)

// defaultBaseBits sizes level 0 at 1<<defaultBaseBits slots. Level l then has
// 1<<(defaultBaseBits+l) slots; with 48 usable levels the logical capacity
// exceeds 2^60 slots, which is unbounded for any practical execution.
const defaultBaseBits = 6

// maxLevels bounds the level directory. It is sized so that index arithmetic
// can never overflow int64.
const maxLevels = 58 - defaultBaseBits

// Array is a lock-free unbounded array of pointers to T. The zero value is
// not usable; construct with New.
//
// All slots are logically nil until a Store or CompareAndSwap publishes a
// value. Published values are immutable from the array's point of view: a
// slot transitions nil -> non-nil at most once when accessed only through
// CompareAndSwap, matching the paper's write-once blocks arrays.
type Array[T any] struct {
	levels [maxLevels]atomic.Pointer[[]atomic.Pointer[T]]
}

// New returns an empty array with its first level pre-allocated so that the
// hot low indices never pay an allocation CAS.
func New[T any]() *Array[T] {
	a := &Array[T]{}
	lvl := make([]atomic.Pointer[T], 1<<defaultBaseBits)
	a.levels[0].Store(&lvl)
	return a
}

// locate maps a logical index to (level, offset). The mapping follows the
// classic jagged-array scheme: shifting the index by the base size makes the
// high bit select the level and the remaining bits the offset, so level l
// covers logical indices [base·(2^l − 1), base·(2^(l+1) − 1)).
func locate(i int64) (level int, offset int64) {
	pos := uint64(i) + (1 << defaultBaseBits)
	hi := bits.Len64(pos) - 1
	return hi - defaultBaseBits, int64(pos) - (1 << hi)
}

// slot returns the atomic cell for index i, allocating the containing level
// if needed. Allocation uses CAS so concurrent callers agree on one level
// slice; the loser's allocation is discarded.
func (a *Array[T]) slot(i int64) *atomic.Pointer[T] {
	level, offset := locate(i)
	lp := a.levels[level].Load()
	if lp == nil {
		fresh := make([]atomic.Pointer[T], int64(1)<<(defaultBaseBits+level))
		if a.levels[level].CompareAndSwap(nil, &fresh) {
			lp = &fresh
		} else {
			lp = a.levels[level].Load()
		}
	}
	return &(*lp)[offset]
}

// Get returns the value at index i, or nil if no value has been published
// there. i must be non-negative.
func (a *Array[T]) Get(i int64) *T {
	// Read through the level directory without allocating: an unallocated
	// level means every slot in it is still logically nil.
	level, offset := locate(i)
	lp := a.levels[level].Load()
	if lp == nil {
		return nil
	}
	return (*lp)[offset].Load()
}

// CompareAndSwap atomically installs val at index i if the slot currently
// holds old (typically nil). It reports whether the swap happened.
func (a *Array[T]) CompareAndSwap(i int64, old, val *T) bool {
	return a.slot(i).CompareAndSwap(old, val)
}

// Store unconditionally publishes val at index i. It exists for
// single-writer slots (a process's own leaf, per Append in the paper) where
// no CAS is needed.
func (a *Array[T]) Store(i int64, val *T) {
	a.slot(i).Store(val)
}
