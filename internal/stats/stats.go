// Package stats provides the small statistics kit the experiment harness
// uses: summary statistics and least-squares fits against the growth shapes
// the paper's theorems predict (log p, log^2 p, linear p), so experiments can
// report which curve best explains the measurements.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNotEnoughData reports a fit or summary over too few points.
var ErrNotEnoughData = errors.New("stats: not enough data points")

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the q-th percentile (0 <= q <= 100) using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Stddev returns the sample standard deviation of xs (n-1 denominator;
// 0 for fewer than two points).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Agg summarizes repeated measurements of one metric across seeds. It is
// the unit the BENCH_*.json variance block records per numeric cell.
type Agg struct {
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CV     float64 `json:"cv"` // coefficient of variation: stddev/|mean| (0 when mean is 0)
	N      int     `json:"n"`  // number of runs aggregated
}

// Aggregate computes the Agg summary of xs.
func Aggregate(xs []float64) Agg {
	a := Agg{
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		N:      len(xs),
	}
	if a.Mean != 0 {
		a.CV = a.Stddev / math.Abs(a.Mean)
	}
	return a
}

// Band returns the two-sided relative tolerance band around a baseline
// aggregate: the caller's tolerance widened by twice the baseline's
// coefficient of variation, so noisy metrics get proportionally more slack
// than stable ones. A metric recorded with CV 0.05 at tolerance 0.15 may
// drift 25% before it counts as a regression; an exactly-reproducible
// metric gets the bare 15%.
func (a Agg) Band(tolerance float64) float64 {
	return tolerance + 2*a.CV
}

// WithinBand reports whether current is consistent with the baseline
// aggregate under the given relative tolerance. For a zero-mean baseline
// (e.g. lost or duplicated element counts) the relative test is undefined,
// so the check degrades to an absolute one: |current| <= 2*stddev, which
// for an exactly-zero baseline demands exactly zero.
func (a Agg) WithinBand(current, tolerance float64) bool {
	if a.Mean == 0 {
		return math.Abs(current) <= 2*a.Stddev
	}
	rel := math.Abs(current-a.Mean) / math.Abs(a.Mean)
	return rel <= a.Band(tolerance)
}

// Fit is the result of a one-basis least-squares fit y = a + b*f(x).
type Fit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// FitAgainst fits y = a + b*f(x) by least squares and returns the fit with
// its R^2. It needs at least three points.
func FitAgainst(xs, ys []float64, f func(float64) float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, errors.New("stats: mismatched series lengths")
	}
	if len(xs) < 3 {
		return Fit{}, ErrNotEnoughData
	}
	fx := make([]float64, len(xs))
	for i, x := range xs {
		fx[i] = f(x)
	}
	mx, my := Mean(fx), Mean(ys)
	var sxy, sxx, syy float64
	for i := range fx {
		dx, dy := fx[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: basis function is constant over inputs")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 0.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	} else {
		r2 = 1 // all y equal and perfectly explained by the constant term
	}
	return Fit{Intercept: a, Slope: b, R2: r2}, nil
}

// Basis functions for the shapes the paper's analysis predicts.

// Log2 returns log2(x) (0 for x <= 1).
func Log2(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// Log2Squared returns log2(x)^2.
func Log2Squared(x float64) float64 {
	l := Log2(x)
	return l * l
}

// Linear returns x.
func Linear(x float64) float64 { return x }

// GrowthRatios reports ys[i+1]/ys[i] for consecutive points: the doubling
// test used by step-complexity experiments (a logarithmic curve adds a
// constant when x doubles, so the differences, not the ratios, are flat; a
// linear curve doubles).
func GrowthRatios(ys []float64) []float64 {
	if len(ys) < 2 {
		return nil
	}
	out := make([]float64, 0, len(ys)-1)
	for i := 1; i < len(ys); i++ {
		if ys[i-1] == 0 {
			out = append(out, math.Inf(1))
			continue
		}
		out = append(out, ys[i]/ys[i-1])
	}
	return out
}

// BestBasis fits ys against each named basis and returns the name of the
// best fit by R^2 plus all fits.
func BestBasis(xs, ys []float64) (string, map[string]Fit, error) {
	bases := map[string]func(float64) float64{
		"log2(x)":   Log2,
		"log2^2(x)": Log2Squared,
		"x":         Linear,
	}
	fits := make(map[string]Fit, len(bases))
	bestName, bestR2 := "", math.Inf(-1)
	for name, f := range bases {
		fit, err := FitAgainst(xs, ys, f)
		if err != nil {
			return "", nil, err
		}
		fits[name] = fit
		if fit.R2 > bestR2 {
			bestName, bestR2 = name, fit.R2
		}
	}
	return bestName, fits, nil
}
