package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {20, 1}, {50, 3}, {100, 5}, {99, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestMax(t *testing.T) {
	if got := Max([]float64{3, 9, 1}); got != 9 {
		t.Errorf("Max = %v", got)
	}
}

func TestFitRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := FitAgainst(xs, ys, Linear)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Intercept, 3, 1e-9) || !almostEqual(fit.Slope, 2, 1e-9) {
		t.Errorf("fit = %+v, want a=3 b=2", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitRecoversLogCurve(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32, 64, 128}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 + 7*math.Log2(x)
	}
	fit, err := FitAgainst(xs, ys, Log2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 7, 1e-9) || !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitAgainst([]float64{1, 2}, []float64{1, 2}, Linear); err == nil {
		t.Error("fit with 2 points succeeded")
	}
	if _, err := FitAgainst([]float64{1, 2, 3}, []float64{1, 2}, Linear); err == nil {
		t.Error("mismatched lengths succeeded")
	}
	if _, err := FitAgainst([]float64{5, 5, 5}, []float64{1, 2, 3}, Linear); err == nil {
		t.Error("constant basis succeeded")
	}
}

func TestBestBasisSelectsCorrectShape(t *testing.T) {
	xs := []float64{2, 4, 8, 16, 32, 64, 128, 256}
	mk := func(f func(float64) float64) []float64 {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 1 + 3*f(x)
		}
		return ys
	}
	cases := []struct {
		name string
		f    func(float64) float64
	}{
		{"x", Linear},
		{"log2(x)", Log2},
		{"log2^2(x)", Log2Squared},
	}
	for _, c := range cases {
		best, fits, err := BestBasis(xs, mk(c.f))
		if err != nil {
			t.Fatal(err)
		}
		if best != c.name {
			t.Errorf("BestBasis for %s data picked %s (fits: %v)", c.name, best, fits)
		}
	}
}

func TestGrowthRatios(t *testing.T) {
	got := GrowthRatios([]float64{1, 2, 4})
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Errorf("GrowthRatios = %v", got)
	}
	if GrowthRatios([]float64{1}) != nil {
		t.Error("single point should give nil")
	}
	inf := GrowthRatios([]float64{0, 5})
	if !math.IsInf(inf[0], 1) {
		t.Errorf("ratio from zero = %v", inf[0])
	}
}

func TestPercentileWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if math.IsNaN(x) {
				return true
			}
		}
		q = math.Mod(math.Abs(q), 100)
		p := Percentile(raw, q)
		lo, hi := raw[0], raw[0]
		for _, x := range raw {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return p >= lo && p <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	a := Aggregate([]float64{2, 4, 6})
	if a.Mean != 4 || a.Min != 2 || a.Max != 6 || a.N != 3 {
		t.Fatalf("Aggregate = %+v", a)
	}
	if math.Abs(a.Stddev-2) > 1e-12 {
		t.Errorf("Stddev = %v, want 2", a.Stddev)
	}
	if math.Abs(a.CV-0.5) > 1e-12 {
		t.Errorf("CV = %v, want 0.5", a.CV)
	}
	one := Aggregate([]float64{7})
	if one.Mean != 7 || one.Stddev != 0 || one.CV != 0 || one.N != 1 {
		t.Errorf("single-point Aggregate = %+v", one)
	}
	zero := Aggregate(nil)
	if zero.N != 0 || zero.Mean != 0 || zero.CV != 0 {
		t.Errorf("empty Aggregate = %+v", zero)
	}
	negMean := Aggregate([]float64{-2, -4, -6})
	if math.Abs(negMean.CV-0.5) > 1e-12 {
		t.Errorf("negative-mean CV = %v, want 0.5", negMean.CV)
	}
}

func TestWithinBand(t *testing.T) {
	// CV = 0.5/10 = 0.05 -> band at tolerance 0.1 is 0.1 + 2*0.05 = 0.2.
	a := Agg{Mean: 10, Stddev: 0.5, CV: 0.05, N: 3}
	if b := a.Band(0.1); math.Abs(b-0.2) > 1e-12 {
		t.Fatalf("Band = %v, want 0.2", b)
	}
	cases := []struct {
		current float64
		want    bool
	}{
		{10, true},
		{11.9, true},  // +19% inside the 20% band
		{12.1, false}, // +21% outside
		{8.1, true},   // -19% inside (two-sided)
		{7.9, false},  // -21% outside
	}
	for _, c := range cases {
		if got := a.WithinBand(c.current, 0.1); got != c.want {
			t.Errorf("WithinBand(%v) = %v, want %v", c.current, got, c.want)
		}
	}
}

func TestWithinBandZeroMean(t *testing.T) {
	exact := Agg{Mean: 0, Stddev: 0, N: 3}
	if !exact.WithinBand(0, 0.15) {
		t.Error("exact-zero baseline should accept 0")
	}
	if exact.WithinBand(1, 0.15) {
		t.Error("exact-zero baseline must reject any nonzero current")
	}
	noisy := Agg{Mean: 0, Stddev: 2, N: 3}
	if !noisy.WithinBand(3, 0.15) || noisy.WithinBand(5, 0.15) {
		t.Error("zero-mean baseline should accept |x| <= 2*stddev only")
	}
}
