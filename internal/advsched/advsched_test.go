package advsched

import (
	"fmt"
	"testing"
)

func TestMSEnqueueDequeueSequential(t *testing.T) {
	q := NewMSQueue()
	for i := int64(0); i < 5; i++ {
		m := NewMSEnqueue(q, i)
		for !m.Step() {
		}
	}
	got := q.Drain()
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("Drain[%d] = %d", i, v)
		}
	}
	for i := int64(0); i < 5; i++ {
		d := NewMSDequeue(q)
		for !d.Step() {
		}
		if !d.OK || d.Val != i {
			t.Fatalf("dequeue %d = (%d, %v)", i, d.Val, d.OK)
		}
	}
	d := NewMSDequeue(q)
	for !d.Step() {
	}
	if d.OK {
		t.Fatal("dequeue on empty queue returned a value")
	}
}

func TestRoundRobinCompletesAll(t *testing.T) {
	q := NewMSQueue()
	ms := make([]Machine, 8)
	for i := range ms {
		ms[i] = NewMSEnqueue(q, int64(i))
	}
	total := Run(ms, &RoundRobin{})
	if total <= 0 {
		t.Fatal("no steps executed")
	}
	if got := len(q.Drain()); got != 8 {
		t.Fatalf("%d values enqueued, want 8", got)
	}
}

// TestCASStormQuadratic verifies the CAS retry problem: p concurrent
// enqueues under the storm adversary cost Theta(p^2) total steps, i.e.
// Theta(p) amortized — the paper's lower-bound scenario for the MS-queue.
func TestCASStormQuadratic(t *testing.T) {
	stepsAt := func(p int) int {
		q := NewMSQueue()
		ms := make([]Machine, p)
		for i := range ms {
			ms[i] = NewMSEnqueue(q, int64(i))
		}
		total := StormRun(ms)
		if got := len(q.Drain()); got != p {
			t.Fatalf("p=%d: %d values enqueued", p, got)
		}
		return total
	}
	for _, p := range []int{4, 8, 16, 32} {
		small, big := stepsAt(p), stepsAt(2*p)
		ratio := float64(big) / float64(small)
		// Quadratic growth doubles amortized cost when p doubles: the total
		// should grow ~4x (allow slack for lower-order terms).
		if ratio < 3.0 {
			t.Errorf("p=%d->%d: total steps %d -> %d (ratio %.2f), want ~4x for Theta(p^2)",
				p, 2*p, small, big, ratio)
		}
		perOp := float64(small) / float64(p)
		if perOp < float64(p)/2 {
			t.Errorf("p=%d: %.1f steps/op, want Omega(p)", p, perOp)
		}
	}
}

func TestStormPreservesFIFOPerMachineOrder(t *testing.T) {
	// All values must be present exactly once after the storm.
	q := NewMSQueue()
	const p = 10
	ms := make([]Machine, p)
	for i := range ms {
		ms[i] = NewMSEnqueue(q, int64(i))
	}
	StormRun(ms)
	seen := map[int64]bool{}
	for _, v := range q.Drain() {
		if seen[v] {
			t.Fatalf("value %d enqueued twice", v)
		}
		seen[v] = true
	}
	if len(seen) != p {
		t.Fatalf("%d values, want %d", len(seen), p)
	}
}

func TestStormDequeues(t *testing.T) {
	q := NewMSQueue()
	const n = 16
	for i := int64(0); i < n; i++ {
		m := NewMSEnqueue(q, i)
		for !m.Step() {
		}
	}
	ms := make([]Machine, n)
	for i := range ms {
		ms[i] = NewMSDequeue(q)
	}
	StormRun(ms)
	seen := map[int64]bool{}
	for _, m := range ms {
		d := m.(*MSDequeue)
		if !d.OK {
			t.Fatal("dequeue returned empty on full queue")
		}
		if seen[d.Val] {
			t.Fatalf("value %d dequeued twice", d.Val)
		}
		seen[d.Val] = true
	}
	if len(q.Drain()) != 0 {
		t.Fatal("queue not drained")
	}
}

func TestMixedRoundRobinLinearizable(t *testing.T) {
	// Interleave enqueues and dequeues under round robin; the multiset of
	// dequeued + remaining values must equal the enqueued ones.
	for _, p := range []int{2, 6, 12} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			q := NewMSQueue()
			ms := make([]Machine, 0, 2*p)
			for i := 0; i < p; i++ {
				ms = append(ms, NewMSEnqueue(q, int64(i)))
				ms = append(ms, NewMSDequeue(q))
			}
			Run(ms, &RoundRobin{})
			got := map[int64]int{}
			for _, v := range q.Drain() {
				got[v]++
			}
			for _, m := range ms {
				if d, ok := m.(*MSDequeue); ok && d.OK {
					got[d.Val]++
				}
			}
			for i := 0; i < p; i++ {
				if got[int64(i)] != 1 {
					t.Fatalf("value %d seen %d times", i, got[int64(i)])
				}
			}
		})
	}
}

func TestFAASequential(t *testing.T) {
	q := NewFAAQueue(4)
	for i := int64(0); i < 20; i++ {
		m := NewFAAEnqueue(q, i)
		for !m.Step() {
		}
	}
	got := q.Drain()
	if len(got) != 20 {
		t.Fatalf("drained %d values", len(got))
	}
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("Drain[%d] = %d", i, v)
		}
	}
}

// TestFAAFastPathImmuneToStorm: with large segments the FAA fast path never
// retries, so the storm costs O(1) amortized — the paper's point about why
// fetch&add queues are fast in the common case.
func TestFAAFastPathImmuneToStorm(t *testing.T) {
	const p = 32
	q := NewFAAQueue(1024)
	ms := make([]Machine, p)
	for i := range ms {
		ms[i] = NewFAAEnqueue(q, int64(i))
	}
	total := StormRun(ms)
	if perOp := float64(total) / p; perOp > 6 {
		t.Fatalf("fast path cost %.1f steps/op under storm, want O(1)", perOp)
	}
	if len(q.Drain()) != p {
		t.Fatal("lost values")
	}
}

// TestFAASlowPathQuadraticUnderStorm: with segment size 1 every enqueue
// takes the slow path and the CAS retry problem reappears (Section 2).
func TestFAASlowPathQuadraticUnderStorm(t *testing.T) {
	stepsAt := func(p int) int {
		q := NewFAAQueue(1)
		ms := make([]Machine, p)
		for i := range ms {
			ms[i] = NewFAAEnqueue(q, int64(i))
		}
		total := StormRun(ms)
		if got := len(q.Drain()); got != p {
			t.Fatalf("p=%d: drained %d values", p, got)
		}
		return total
	}
	for _, p := range []int{8, 16, 32} {
		small, big := stepsAt(p), stepsAt(2*p)
		if ratio := float64(big) / float64(small); ratio < 3.0 {
			t.Errorf("p=%d->%d: steps %d -> %d (ratio %.2f), want ~4x", p, 2*p, small, big, ratio)
		}
	}
}
