// Package advsched builds the worst-case executions the paper's complexity
// claims quantify over.
//
// Lock-free step-complexity bounds are statements about adversarial
// schedules: the MS-queue's Theta(p) amortized cost arises when an adversary
// lets p processes read the same tail pointer and then releases them one at
// a time, so each successful CAS invalidates everyone else's attempt (the
// CAS retry problem, paper Sections 1-2). Real multicore scheduling only
// approximates this; on any machine the adversary can be simulated exactly
// by running each operation as an explicit step machine under a
// deterministic scheduler. This package provides that simulator together
// with step machines for the Michael-Scott queue, and the CAS-storm
// adversary used by experiment T4b.
package advsched

// Machine is one virtual process's current operation as a resumable
// sequence of shared-memory steps. Step executes exactly one shared-memory
// operation and reports whether the operation has completed.
type Machine interface {
	Step() (done bool)
	// Steps returns the number of steps executed so far by this operation.
	Steps() int
}

// Scheduler orders steps of a set of machines deterministically.
type Scheduler interface {
	// Next picks the index of the machine to step among live ones; machines
	// report done through Run.
	Next(live []int) int
}

// Run drives all machines to completion under the scheduler and returns the
// total number of steps executed.
func Run(ms []Machine, s Scheduler) int {
	live := make([]int, 0, len(ms))
	for i := range ms {
		live = append(live, i)
	}
	total := 0
	for len(live) > 0 {
		pick := s.Next(live)
		m := ms[live[pick]]
		total++
		if m.Step() {
			live = append(live[:pick], live[pick+1:]...)
		}
	}
	return total
}

// RoundRobin steps machines in rotation: the fairest schedule.
type RoundRobin struct{ i int }

// Next implements Scheduler.
func (r *RoundRobin) Next(live []int) int {
	r.i++
	return r.i % len(live)
}

// stormMachine is implemented by machines that know when their next step is
// a CAS attempt.
type stormMachine interface {
	AtCAS() bool
}

// StormRun drives machines with the CAS-storm adversary — the schedule
// behind the CAS retry problem. It repeatedly (1) advances every machine to
// the brink of its CAS (machines expose that boundary via AtCAS), (2)
// releases exactly one machine, whose CAS succeeds, and (3) fires everyone
// else's now-doomed CAS. Machines that do not implement AtCAS are simply run
// to completion. The return value is the total number of steps executed.
func StormRun(ms []Machine) int {
	live := make([]int, 0, len(ms))
	for i := range ms {
		live = append(live, i)
	}
	total := 0
	for len(live) > 0 {
		// Phase 1: advance every live machine until it is poised at a CAS
		// (or finishes outright).
		progressed := true
		for progressed {
			progressed = false
			for k := 0; k < len(live); {
				m := ms[live[k]]
				sm, ok := m.(stormMachine)
				if ok && sm.AtCAS() {
					k++
					continue
				}
				total++
				progressed = true
				if m.Step() {
					live = append(live[:k], live[k+1:]...)
					continue
				}
				k++
			}
		}
		if len(live) == 0 {
			break
		}
		// Phase 2: release exactly one poised machine; its CAS succeeds and
		// everyone else's pending attempt is now doomed.
		total++
		if ms[live[0]].Step() {
			live = live[1:]
		}
		// Phase 3: fire every other poised machine's doomed CAS. Each fails
		// and falls back to re-reading, which the next round's phase 1
		// charges — this is precisely the CAS retry problem: one success
		// invalidates p-1 concurrent attempts.
		for k := 0; k < len(live); {
			m := ms[live[k]]
			sm, ok := m.(stormMachine)
			if !ok || !sm.AtCAS() {
				k++
				continue
			}
			total++
			if m.Step() {
				live = append(live[:k], live[k+1:]...)
				continue
			}
			k++
		}
	}
	return total
}
