package advsched

// Step machines for the Michael-Scott queue. The shared state is the same
// linked structure as internal/baseline/msqueue, but every shared-memory
// access is a separate Step so a deterministic adversary can interleave at
// the granularity the paper's lower-bound arguments use. No atomics are
// needed: the simulator is single-threaded by construction.
type msNode struct {
	value int64
	next  *msNode
}

// MSQueue is the simulated Michael-Scott queue state.
type MSQueue struct {
	head *msNode
	tail *msNode
}

// NewMSQueue creates an empty simulated MS-queue.
func NewMSQueue() *MSQueue {
	dummy := &msNode{}
	return &MSQueue{head: dummy, tail: dummy}
}

// Drain returns the queue's contents (for test verification).
func (q *MSQueue) Drain() []int64 {
	var out []int64
	for n := q.head.next; n != nil; n = n.next {
		out = append(out, n.value)
	}
	return out
}

// Enqueue phases.
const (
	msEnqReadTail = iota
	msEnqReadNext
	msEnqCASNext // the linearizing CAS
	msEnqCASTail
	msEnqDone
)

// MSEnqueue is one enqueue operation as a step machine.
type MSEnqueue struct {
	q     *MSQueue
	node  *msNode
	phase int
	steps int

	tail *msNode // local snapshot from msEnqReadTail
	next *msNode // local snapshot from msEnqReadNext
}

// NewMSEnqueue prepares an Enqueue(v) machine on q.
func NewMSEnqueue(q *MSQueue, v int64) *MSEnqueue {
	return &MSEnqueue{q: q, node: &msNode{value: v}}
}

// Steps implements Machine.
func (m *MSEnqueue) Steps() int { return m.steps }

// AtCAS reports whether the next step is the linearizing CAS attempt.
func (m *MSEnqueue) AtCAS() bool { return m.phase == msEnqCASNext }

// Step implements Machine: one shared-memory operation of the MS enqueue
// loop.
func (m *MSEnqueue) Step() bool {
	m.steps++
	switch m.phase {
	case msEnqReadTail:
		m.tail = m.q.tail
		m.phase = msEnqReadNext
	case msEnqReadNext:
		m.next = m.tail.next
		if m.next != nil {
			// Tail lagging: help swing it, then retry from the top. The
			// help itself is a CAS; charge it to this step.
			if m.q.tail == m.tail {
				m.q.tail = m.next
			}
			m.phase = msEnqReadTail
		} else {
			m.phase = msEnqCASNext
		}
	case msEnqCASNext:
		if m.tail.next == m.next { // CAS(tail.next, nil, node)
			m.tail.next = m.node
			m.phase = msEnqCASTail
		} else {
			m.phase = msEnqReadTail // failed CAS: retry
		}
	case msEnqCASTail:
		if m.q.tail == m.tail { // CAS(q.tail, tail, node)
			m.q.tail = m.node
		}
		m.phase = msEnqDone
	}
	return m.phase == msEnqDone
}

// Dequeue phases.
const (
	msDeqReadHead = iota
	msDeqReadNext
	msDeqCASHead
	msDeqDone
)

// MSDequeue is one dequeue operation as a step machine.
type MSDequeue struct {
	q     *MSQueue
	phase int
	steps int

	head *msNode
	next *msNode

	// Val and OK hold the response once the machine completes.
	Val int64
	OK  bool
}

// NewMSDequeue prepares a Dequeue machine on q.
func NewMSDequeue(q *MSQueue) *MSDequeue {
	return &MSDequeue{q: q}
}

// Steps implements Machine.
func (m *MSDequeue) Steps() int { return m.steps }

// AtCAS reports whether the next step is the linearizing CAS attempt.
func (m *MSDequeue) AtCAS() bool { return m.phase == msDeqCASHead }

// Step implements Machine.
func (m *MSDequeue) Step() bool {
	m.steps++
	switch m.phase {
	case msDeqReadHead:
		m.head = m.q.head
		m.phase = msDeqReadNext
	case msDeqReadNext:
		m.next = m.head.next
		if m.next == nil {
			m.OK = false
			m.phase = msDeqDone
		} else {
			m.phase = msDeqCASHead
		}
	case msDeqCASHead:
		if m.q.head == m.head { // CAS(q.head, head, next)
			m.q.head = m.next
			m.Val, m.OK = m.next.value, true
			m.phase = msDeqDone
		} else {
			m.phase = msDeqReadHead // failed CAS: retry
		}
	}
	return m.phase == msDeqDone
}
