package advsched

// Step machine for the fetch&add segment queue's enqueue, with a
// configurable segment size. With large segments the FAA fast path never
// retries; with segment size 1 every operation takes the slow path (append
// a new segment with CAS), where the CAS retry problem reappears — exactly
// the behaviour the paper describes for the LCRQ family (Section 2,
// "Array-Based Queues").

// FAASegment is one simulated segment.
type FAASegment struct {
	cells  []int64
	filled []bool
	enqIdx int
	next   *FAASegment
}

// FAAQueue is the simulated segment-queue state.
type FAAQueue struct {
	segSize int
	head    *FAASegment
	tail    *FAASegment
}

// NewFAAQueue creates an empty simulated FAA queue with the given segment
// size (>= 1).
func NewFAAQueue(segSize int) *FAAQueue {
	if segSize < 1 {
		segSize = 1
	}
	seg := &FAASegment{cells: make([]int64, segSize), filled: make([]bool, segSize)}
	return &FAAQueue{segSize: segSize, head: seg, tail: seg}
}

// Drain returns the enqueued values in order (for test verification).
func (q *FAAQueue) Drain() []int64 {
	var out []int64
	for s := q.head; s != nil; s = s.next {
		for i := 0; i < s.enqIdx && i < q.segSize; i++ {
			if s.filled[i] {
				out = append(out, s.cells[i])
			}
		}
	}
	return out
}

// Enqueue phases.
const (
	faaReadTail = iota
	faaFAA
	faaWriteCell
	faaReadNext
	faaCASNext // slow path: the contended CAS
	faaCASTail
	faaDone
)

// FAAEnqueue is one enqueue as a step machine.
type FAAEnqueue struct {
	q     *FAAQueue
	value int64
	phase int
	steps int

	tail *FAASegment
	idx  int
	next *FAASegment
	seg  *FAASegment // prepared replacement segment
}

// NewFAAEnqueue prepares an Enqueue(v) machine on q.
func NewFAAEnqueue(q *FAAQueue, v int64) *FAAEnqueue {
	return &FAAEnqueue{q: q, value: v}
}

// Steps implements Machine.
func (m *FAAEnqueue) Steps() int { return m.steps }

// AtCAS reports whether the next step is the slow path's contended CAS.
func (m *FAAEnqueue) AtCAS() bool { return m.phase == faaCASNext }

// Step implements Machine.
func (m *FAAEnqueue) Step() bool {
	m.steps++
	switch m.phase {
	case faaReadTail:
		m.tail = m.q.tail
		m.phase = faaFAA
	case faaFAA:
		// fetch&add claims a cell index; never retried on the fast path.
		m.idx = m.tail.enqIdx
		m.tail.enqIdx++
		if m.idx < m.q.segSize {
			m.phase = faaWriteCell
		} else {
			m.phase = faaReadNext
		}
	case faaWriteCell:
		m.tail.cells[m.idx] = m.value
		m.tail.filled[m.idx] = true
		m.phase = faaDone
	case faaReadNext:
		m.next = m.tail.next
		if m.next != nil {
			// Segment already replaced; help swing tail and retry.
			if m.q.tail == m.tail {
				m.q.tail = m.next
			}
			m.phase = faaReadTail
		} else {
			// Prepare a fresh segment carrying our value in cell 0.
			m.seg = &FAASegment{
				cells:  make([]int64, m.q.segSize),
				filled: make([]bool, m.q.segSize),
				enqIdx: 1,
			}
			m.seg.cells[0] = m.value
			m.seg.filled[0] = true
			m.phase = faaCASNext
		}
	case faaCASNext:
		if m.tail.next == nil { // CAS(tail.next, nil, seg)
			m.tail.next = m.seg
			m.phase = faaCASTail
		} else {
			m.phase = faaReadTail // failed CAS: the retry problem
		}
	case faaCASTail:
		if m.q.tail == m.tail {
			m.q.tail = m.seg
		}
		m.phase = faaDone
	}
	return m.phase == faaDone
}
