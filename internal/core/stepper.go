package core

// Deterministic scheduling hooks.
//
// A normal Enqueue/Dequeue appends a block to the process's leaf and
// immediately propagates it to the root. For reproducing worked examples
// from the paper (Figures 1 and 2 show a mid-execution tree state), for
// schedule-exploration tests, and for the treedump tool, these hooks expose
// the two phases separately: StepEnqueue/StepDequeue append to the leaf
// without propagating, and StepRefresh performs a single Refresh on a chosen
// internal node. They obey exactly the same protocol as the full operations,
// so any state reachable through them is a reachable state of the queue.

import "fmt"

// StepEnqueue appends an enqueue block for e to the handle's leaf without
// propagating it. A later StepRefresh (or any full operation by any handle)
// can propagate it. The block's position in the leaf is returned.
func (h *Handle[T]) StepEnqueue(e T) int64 {
	hd := h.readHead(h.leaf)
	prev := h.readBlock(h.leaf, hd-1)
	b := h.newBlock()
	b.element = e
	b.sumEnq = prev.sumEnq + 1
	b.sumDeq = prev.sumDeq
	h.storeBlock(h.leaf, hd, b)
	h.advance(h.leaf, hd)
	return hd
}

// StepDequeue appends a dequeue block to the handle's leaf without
// propagating it and without computing the dequeue's response. The block's
// position in the leaf is returned; StepFinishDequeue completes it.
func (h *Handle[T]) StepDequeue() int64 {
	hd := h.readHead(h.leaf)
	prev := h.readBlock(h.leaf, hd-1)
	b := h.newBlock()
	b.sumEnq = prev.sumEnq
	b.sumDeq = prev.sumDeq + 1
	h.storeBlock(h.leaf, hd, b)
	h.advance(h.leaf, hd)
	return hd
}

// StepFinishDequeue computes the response of the dequeue previously appended
// at position idx of the handle's leaf. The dequeue must have been
// propagated to the root (e.g. via StepRefresh calls or a full Propagate).
func (h *Handle[T]) StepFinishDequeue(idx int64) (T, bool) {
	b, i := h.indexDequeue(h.leaf, idx, 1)
	return h.findResponse(b, i)
}

// StepPropagate runs the standard double-Refresh propagation from the
// handle's leaf to the root, completing any pending appends.
func (h *Handle[T]) StepPropagate() {
	h.propagate(h.leaf >> 1)
}

// StepRefresh performs a single Refresh on the internal node identified by
// path: "" is the root and each 'L'/'R' character descends to a child (so
// "L" is the root's left child). It reports whether the Refresh succeeded
// (installed a block or found nothing to propagate). The handle's counter is
// charged as usual.
func (q *Queue[T]) StepRefresh(h *Handle[T], path string) (bool, error) {
	v, err := q.nodeAt(path)
	if err != nil {
		return false, err
	}
	if q.isLeaf(v) {
		return false, fmt.Errorf("core: StepRefresh target %q is a leaf", path)
	}
	return h.refresh(v), nil
}

// nodeAt resolves a path of 'L'/'R' steps from the root to a heap index.
func (q *Queue[T]) nodeAt(path string) (int, error) {
	v := rootIdx
	for i := 0; i < len(path); i++ {
		if q.isLeaf(v) {
			return 0, fmt.Errorf("core: path %q descends past a leaf", path)
		}
		switch path[i] {
		case 'L':
			v = 2 * v
		case 'R':
			v = 2*v + 1
		default:
			return 0, fmt.Errorf("core: path %q contains invalid step %q", path, path[i])
		}
	}
	return v, nil
}
