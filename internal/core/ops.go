package core

// This file implements the write path of the queue: Enqueue, Dequeue,
// Append, Propagate, Refresh, CreateBlock and Advance (Figure 4 of the
// paper, lines 1-64).
//
// Tree nodes are heap indices into Queue.nodes (see node.go): parent is
// v>>1, children are 2v and 2v+1, the root is rootIdx.
//
// All shared-memory accesses go through the small helpers at the bottom of
// the file so that step counting (the paper's cost model) is exact and
// uniform.

import "repro/internal/metrics"

// Enqueue adds e to the back of the queue. It completes in O(log p)
// shared-memory steps and O(log p) CAS instructions regardless of
// scheduling. Enqueue is the m=1 case of EnqueueBatch: both install one
// leaf block through the same append/propagate path. The block comes from
// the handle's arena and the element is stored inline, so the allocation-
// free fast path of pool.go applies.
func (h *Handle[T]) Enqueue(e T) {
	h.counter.BeginOp()
	prev := h.readBlock(h.leaf, h.readHead(h.leaf)-1)
	b := h.newBlock()
	b.sumEnq = prev.sumEnq + 1
	b.sumDeq = prev.sumDeq
	b.element = e
	h.append(b)
	h.counter.EndOp(metrics.OpEnqueue)
}

// EnqueueBatch adds the elements of es to the back of the queue as one
// multi-op leaf block: all len(es) enqueues ride a single append and a
// single O(log p) propagation pass, so the tree walk and its CAS traffic
// are amortized over the batch (the paper's blocks carry operation *sets*;
// this exposes that capacity to callers). The elements are linearized
// consecutively in slice order. es is copied; the caller keeps ownership.
func (h *Handle[T]) EnqueueBatch(es []T) {
	if len(es) == 0 {
		return
	}
	h.counter.BeginOp()
	h.enqueueBlock(es)
	h.counter.EndBatch(int64(len(es)), 0, 0)
}

// enqueueBlock installs one leaf block carrying the len(es) >= 1 enqueues
// of es and propagates it to the root.
func (h *Handle[T]) enqueueBlock(es []T) {
	prev := h.readBlock(h.leaf, h.readHead(h.leaf)-1)
	b := h.newBlock()
	b.sumEnq = prev.sumEnq + int64(len(es))
	b.sumDeq = prev.sumDeq
	if len(es) == 1 {
		b.element = es[0]
	} else {
		b.elems = append([]T(nil), es...)
	}
	h.append(b)
}

// Dequeue removes and returns the element at the front of the queue. The
// second result is false if the queue was empty at the dequeue's
// linearization point (the paper's "null dequeue"), in which case the first
// result is the zero value of T. Dequeue is the n=1 case of DequeueBatch.
func (h *Handle[T]) Dequeue() (T, bool) {
	h.counter.BeginOp()
	rootBlk, rank := h.dequeueBlock(1)
	v, ok := h.findResponse(rootBlk, rank)
	if ok {
		h.counter.EndOp(metrics.OpDequeue)
	} else {
		h.counter.EndOp(metrics.OpNullDequeue)
	}
	return v, ok
}

// DequeueBatch removes up to n elements from the front of the queue in one
// multi-op leaf block and one propagation pass. It returns the removed
// elements in FIFO order and their count; a count below n means the queue
// was empty when the (count+1)-th dequeue of the batch took effect.
//
// All n dequeues linearize consecutively (they are one block, so they land
// in one root block), which has two useful consequences: the batch's null
// dequeues are always a suffix, and response resolution can locate the
// batch in the root once (one IndexDequeue walk) and then resolve each op
// rank with its own doubling search.
func (h *Handle[T]) DequeueBatch(n int) ([]T, int) {
	return h.DequeueBatchAppend(nil, n)
}

// DequeueBatchAppend is DequeueBatch appending into dst, so a caller that
// batch-dequeues in a loop can reuse one result slice instead of paying a
// fresh allocation per batch. Returns the (possibly grown) slice and the
// count appended.
func (h *Handle[T]) DequeueBatchAppend(dst []T, n int) ([]T, int) {
	if n <= 0 {
		return dst, 0
	}
	h.counter.BeginOp()
	rootBlk, rank := h.dequeueBlock(int64(n))
	base := len(dst)
	out := dst
	for j := int64(0); j < int64(n); j++ {
		v, ok := h.findResponse(rootBlk, rank+j)
		if !ok {
			break // within one root block, nulls are a suffix
		}
		if out == nil {
			out = make([]T, 0, n)
		}
		out = append(out, v)
	}
	got := len(out) - base
	h.counter.EndBatch(0, int64(got), int64(n-got))
	return out, got
}

// dequeueBlock installs one leaf block carrying n dequeues, propagates it,
// and returns the root location (block index, dequeue rank) of the batch's
// first dequeue. The i-th dequeue of the batch is rank+i-1 in the same
// root block: IndexDequeue's walk is independent of the rank argument,
// which only accumulates additive offsets.
func (h *Handle[T]) dequeueBlock(n int64) (int64, int64) {
	hd := h.readHead(h.leaf)
	prev := h.readBlock(h.leaf, hd-1)
	b := h.newBlock()
	b.sumEnq = prev.sumEnq
	b.sumDeq = prev.sumDeq + n
	h.append(b)
	return h.indexDequeue(h.leaf, hd, 1)
}

// append installs b in the next slot of the handle's leaf and propagates it
// to the root (Append, lines 11-15). The leaf is single-writer, so a plain
// store suffices for the install; the head advance still goes through
// advance so that the block's super field is set before the head moves past
// it, which Invariant 3 and Lemma 12 rely on.
func (h *Handle[T]) append(b *block[T]) {
	leaf := h.leaf
	hd := h.readHead(leaf)
	h.storeBlock(leaf, hd, b)
	h.advance(leaf, hd)
	h.propagate(leaf >> 1)
}

// propagate ensures all blocks present in v's children are propagated to the
// root (Propagate, lines 16-23). If the first Refresh fails, a second one is
// enough: any Refresh that succeeded in between has propagated our block
// (Lemma 10).
func (h *Handle[T]) propagate(v int) {
	spin := h.queue.spinningRefresh
	for v >= rootIdx {
		if spin {
			// Ablation: naive retry loop (lock-free, not wait-free).
			for !h.refresh(v) {
			}
		} else if !h.refresh(v) {
			h.refresh(v)
		}
		v >>= 1
	}
}

// refresh tries to append to v a new block representing all blocks in v's
// children not yet in v (Refresh, lines 24-39). It returns true if no new
// block was needed or its CAS succeeded. A candidate whose CAS lost is
// still private — advance operates on whichever block actually got
// installed — so it goes back to the arena.
func (h *Handle[T]) refresh(v int) bool {
	hd := h.readHead(v)
	// Help advance a child whose head lags behind an installed block, so
	// that createBlock sees up-to-date child heads (lines 26-31).
	for child := 2 * v; child <= 2*v+1; child++ {
		childHead := h.readHead(child)
		if h.readBlockOrNil(child, childHead) != nil {
			h.advance(child, childHead)
		}
	}
	b := h.createBlock(v, hd)
	if b == nil {
		return true
	}
	ok := h.casBlock(v, hd, b)
	if !ok {
		h.recycle(b)
	}
	h.advance(v, hd)
	return ok
}

// createBlock builds the block a Refresh will try to install in v.blocks[i]
// (CreateBlock, lines 40-57). It returns nil if the children contain no
// operations that are not already in v. The child sums are read *before*
// any block is allocated so the frequent nothing-to-do case touches the
// arena not at all.
func (h *Handle[T]) createBlock(v int, i int64) *block[T] {
	endLeft := h.readHead(2*v) - 1
	endRight := h.readHead(2*v+1) - 1
	lastLeft := h.readBlock(2*v, endLeft)
	lastRight := h.readBlock(2*v+1, endRight)
	sumEnq := lastLeft.sumEnq + lastRight.sumEnq
	sumDeq := lastLeft.sumDeq + lastRight.sumDeq
	prev := h.readBlock(v, i-1)
	if sumEnq == prev.sumEnq && sumDeq == prev.sumDeq {
		return nil
	}
	b := h.newBlock()
	b.endLeft = endLeft
	b.endRight = endRight
	b.sumEnq = sumEnq
	b.sumDeq = sumDeq
	if v == rootIdx {
		b.size = prev.size + (sumEnq - prev.sumEnq) - (sumDeq - prev.sumDeq)
		if b.size < 0 {
			b.size = 0
		}
	}
	return b
}

// advance sets v.blocks[hd].super (so the block can be traced to its
// superblock) and then moves v.head from hd to hd+1 (Advance, lines 58-64).
// Both CASes are idempotent: concurrent helpers agree on the transition.
func (h *Handle[T]) advance(v int, hd int64) {
	if v != rootIdx {
		parentHead := h.readHead(v >> 1)
		b := h.readBlock(v, hd)
		h.casSuper(b, parentHead)
	}
	h.casHead(v, hd)
}

// --- instrumented shared-memory accessors ---
//
// Each helper performs exactly one shared-memory operation and charges it to
// the handle's counter, implementing the paper's step-complexity cost model.

// readHead loads nodes[v].head.
func (h *Handle[T]) readHead(v int) int64 {
	h.counter.Read(1)
	return h.nodes[v].head.Load()
}

// readBlock loads nodes[v].blocks[i], which the caller asserts is non-nil
// (Invariant 3 guarantees this for all i < v.head).
func (h *Handle[T]) readBlock(v int, i int64) *block[T] {
	h.counter.Read(1)
	return h.nodes[v].blocks.Get(i)
}

// readBlockOrNil loads nodes[v].blocks[i] where nil is an expected outcome.
func (h *Handle[T]) readBlockOrNil(v int, i int64) *block[T] {
	h.counter.Read(1)
	return h.nodes[v].blocks.Get(i)
}

// storeBlock publishes b at nodes[v].blocks[i]. Only used on the handle's
// own leaf, which has a single writer.
func (h *Handle[T]) storeBlock(v int, i int64, b *block[T]) {
	h.counter.Write()
	h.nodes[v].blocks.Store(i, b)
}

// casBlock tries to install b at nodes[v].blocks[i], expecting the slot to
// be nil.
func (h *Handle[T]) casBlock(v int, i int64, b *block[T]) bool {
	ok := h.nodes[v].blocks.CompareAndSwap(i, nil, b)
	h.counter.CAS(ok)
	return ok
}

// casHead tries to advance nodes[v].head from hd to hd+1.
func (h *Handle[T]) casHead(v int, hd int64) {
	ok := h.nodes[v].head.CompareAndSwap(hd, hd+1)
	h.counter.CAS(ok)
}

// casSuper sets b.super from 0 to val once.
func (h *Handle[T]) casSuper(b *block[T], val int64) {
	ok := b.super.CompareAndSwap(0, val)
	h.counter.CAS(ok)
}

// readSuper loads b.super.
func (h *Handle[T]) readSuper(b *block[T]) int64 {
	h.counter.Read(1)
	return b.super.Load()
}
