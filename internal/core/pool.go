package core

import "sync"

// Block arena.
//
// The original implementation allocated a fresh &block[T]{} for every append
// and for every Refresh candidate — O(log p) allocations per operation, which
// T10 showed dominates per-op cost well before root contention does. The
// arena removes almost all of them with a three-level scheme, fastest first:
//
//  1. per-handle spare stack: recycled candidate blocks that were never
//     published (a Refresh whose CAS lost, or was never attempted). Single
//     owner, no synchronization.
//  2. per-queue sync.Pool: overflow from spare stacks, so a handle that
//     mostly loses CASes feeds one that mostly wins, and recycled capacity
//     survives handle churn (the pool belongs to the queue, not the handle).
//  3. per-handle slab: a bump allocator over a 64-block chunk, refilled from
//     make when exhausted. This turns the worst case — nothing recyclable —
//     into 1 allocation per 64 blocks instead of 1 per block.
//
// Only never-published blocks are ever recycled. A block becomes shared the
// instant casBlock/storeBlock installs it; from then on concurrent readers
// may hold a reference indefinitely (the paper's searches walk arbitrarily
// old blocks), so published blocks are immortal here exactly as in the
// paper's GC'd-memory model. Because recycled blocks were never reachable by
// any other process, reuse cannot cause ABA: no CAS anywhere compares
// against a pointer to a block that was never published. (The pairing fast
// path in internal/shard is where pointer reuse *would* be an ABA hazard;
// there, reclamation is delegated to the Go GC — see exchange.go.)
const (
	slabBlocks = 64 // blocks per bump-allocator chunk
	spareCap   = 16 // max blocks parked on a handle before spilling to the pool
)

// blockArena is the per-queue level of the scheme: a sync.Pool of
// never-published blocks shared by all handles.
type blockArena[T any] struct {
	pool sync.Pool // holds *block[T]
}

// newBlock returns a block whose fields are all zero, drawn from the spare
// stack, the shared pool, or the bump slab, in that order.
func (h *Handle[T]) newBlock() *block[T] {
	if n := len(h.spare) - 1; n >= 0 {
		b := h.spare[n]
		h.spare[n] = nil
		h.spare = h.spare[:n]
		b.reset()
		return b
	}
	if b, _ := h.queue.arena.pool.Get().(*block[T]); b != nil {
		b.reset()
		return b
	}
	if len(h.slab) == 0 {
		h.slab = make([]block[T], slabBlocks)
	}
	b := &h.slab[0]
	h.slab = h.slab[1:]
	return b
}

// recycle takes back a block obtained from newBlock that was never
// published (never passed to storeBlock or casBlock, whether the CAS won or
// lost — a lost casBlock leaves the candidate private: advance works on the
// block that actually got installed). Publishing a block and then recycling
// it would hand a live shared block to a future writer; don't.
func (h *Handle[T]) recycle(b *block[T]) {
	if len(h.spare) < spareCap {
		h.spare = append(h.spare, b)
		return
	}
	h.queue.arena.pool.Put(b)
}

// reset zeroes a recycled block field by field. A struct-literal assignment
// would copy the atomic super field and trip go vet's copylocks check; the
// Store is fine because the block is private to the caller here.
func (b *block[T]) reset() {
	var zero T
	b.sumEnq, b.sumDeq = 0, 0
	b.endLeft, b.endRight = 0, 0
	b.size = 0
	b.element = zero
	b.elems = nil
	b.super.Store(0)
}
