package core

// Allocation regression gates for the block arena (pool.go). CI runs these
// via `go test -run TestAllocs`: a change that reintroduces per-op block
// allocation shows up as allocs/op jumping from ~0.1 back to ~depth.

import (
	"sync"
	"testing"
)

func TestAllocsEnqueueDequeue(t *testing.T) {
	q, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	// Warm up: let the infarray directories and the first slab settle.
	for i := 0; i < 300; i++ {
		h.Enqueue(i)
		h.Dequeue()
	}
	avg := testing.AllocsPerRun(2000, func() {
		h.Enqueue(7)
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	})
	// One Enqueue+Dequeue pair appends 2 leaf blocks and installs O(depth)
	// internal blocks, all drawn from the 64-block bump slab: ~3 blocks per
	// pair is one malloc every ~21 pairs, plus amortized infarray segment
	// growth. Anything near 1.0 means blocks are being heap-allocated
	// per op again.
	if avg > 1.0 {
		t.Errorf("allocs per Enqueue+Dequeue pair = %.2f, want <= 1", avg)
	}
}

func TestAllocsEnqueueBatch(t *testing.T) {
	q, err := New[int](4)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	buf := make([]int, 16)
	for i := 0; i < 100; i++ {
		h.EnqueueBatch(buf)
		h.DequeueBatch(len(buf))
	}
	avg := testing.AllocsPerRun(500, func() {
		h.EnqueueBatch(buf)
		if _, n := h.DequeueBatch(len(buf)); n != len(buf) {
			t.Fatalf("drained %d of %d", n, len(buf))
		}
	})
	// A batch pair inherently allocates the defensive elems copy and the
	// DequeueBatch result slice (2 allocs); the gate catches the return of
	// per-block or per-element allocation on top of that.
	if avg > 4.0 {
		t.Errorf("allocs per EnqueueBatch+DequeueBatch pair = %.2f, want <= 4", avg)
	}
}

// TestAllocsArenaRecyclesCandidates checks the recycling path directly:
// under contention, failed Refresh CAS candidates must be reused, keeping
// steady-state allocations bounded well below one block per op.
func TestAllocsArenaRecyclesCandidates(t *testing.T) {
	const procs = 4
	q, err := New[int](procs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.MustHandle(p)
			for i := 0; i < 3000; i++ {
				h.Enqueue(i)
				h.Dequeue()
			}
		}(p)
	}
	wg.Wait()
	// The workload installed ~4 blocks per op across the 3-level tree.
	// With recycling, total block allocations are bounded by installs (the
	// immortal published blocks) plus one slab round-up per handle —
	// crucially, NOT by installs + one candidate per Refresh attempt. We
	// can't count mallocs retroactively, so assert the observable proxy:
	// the queue still works and spare stacks didn't corrupt blocks.
	for i := 0; i < 10; i++ {
		q.MustHandle(0).Enqueue(100 + i)
	}
	for i := 0; i < 10; i++ {
		v, ok := q.MustHandle(1).Dequeue()
		if !ok || v != 100+i {
			t.Fatalf("post-churn dequeue %d = (%d, %v)", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue length %d after balanced ops", q.Len())
	}
}
