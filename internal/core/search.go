package core

// This file implements the read path of a dequeue: locating the dequeue's
// block in the root (IndexDequeue, task T2), deciding emptiness and the rank
// of the enqueue to return (FindResponse, task T3), and tracing that enqueue
// down to the leaf that stores it (GetEnqueue, task T4). Lines 65-118 of
// Figure 4 in the paper. Tree nodes are heap indices (node.go): parent v>>1,
// children 2v/2v+1, sibling v^1.

// indexDequeue returns (b', i') such that the i-th dequeue of
// D(v.blocks[b]) is the (i')-th dequeue of D(root.blocks[b']).
//
// Preconditions: v.blocks[b] is non-nil, has been propagated to the root,
// and contains at least i dequeues.
func (h *Handle[T]) indexDequeue(v int, b, i int64) (int64, int64) {
	for v != rootIdx {
		dir := childDir(v)
		parent := v >> 1
		blk := h.readBlock(v, b)
		// super may undershoot the true superblock index by one (Lemma 12);
		// checking whether block b is within the candidate's range resolves
		// the ambiguity (line 73).
		sup := h.readSuper(blk)
		supBlk := h.readBlock(parent, sup)
		if b > supBlk.end(dir) {
			sup++
			supBlk = h.readBlock(parent, sup)
		}
		prevSup := h.readBlock(parent, sup-1)

		// Dequeues contributed by earlier subblocks of the superblock that
		// live in v (line 76): blocks prevSup.end(dir)+1 .. b-1.
		i += h.readBlock(v, b-1).sumDeq - h.readBlock(v, prevSup.end(dir)).sumDeq
		if dir == right {
			// All of the superblock's subblocks from the left sibling also
			// precede our dequeue in D(superblock) by equation (3.1)
			// (line 78; the paper's pseudocode has a typo reading these
			// sums from v rather than from the left sibling).
			sib := v ^ 1
			i += h.readBlock(sib, supBlk.endLeft).sumDeq -
				h.readBlock(sib, prevSup.endLeft).sumDeq
		}
		v, b = parent, sup
	}
	return b, i
}

// findResponse computes the response of the i-th dequeue in
// D(root.blocks[b]) (lines 83-96). The boolean result is false for a null
// dequeue (queue empty at its linearization point).
func (h *Handle[T]) findResponse(b, i int64) (T, bool) {
	blkB := h.readBlock(rootIdx, b)
	prevB := h.readBlock(rootIdx, b-1)
	numEnq := blkB.numEnqueues(prevB)
	if prevB.size+numEnq < i {
		// The queue is empty when this dequeue takes effect: within a block
		// all enqueues are linearized before all dequeues, so the i-th
		// dequeue sees prevB.size+numEnq elements at most.
		var zero T
		return zero, false
	}
	// e is the rank (among all enqueues in L) of the enqueue whose value we
	// must return: prevB.sumEnq - prevB.size counts the non-null dequeues in
	// blocks 1..b-1 (line 89).
	e := i + prevB.sumEnq - prevB.size
	be := h.searchRootForEnqueue(b, e)
	ie := e - h.readBlock(rootIdx, be-1).sumEnq
	return h.getEnqueue(rootIdx, be, ie), true
}

// searchRootForEnqueue finds the minimum index be <= b with
// root.blocks[be].sumEnq >= e (line 91). A doubling search from b bounds the
// range in O(log(b-be)) probes — which Lemma 20 shows is O(log(q_e + q_d)) —
// before the binary search.
func (h *Handle[T]) searchRootForEnqueue(b, e int64) int64 {
	lo := int64(0)
	if !h.queue.plainRootSearch {
		// Walk lo through b-1, b-2, b-4, ... until blocks[lo] has fewer
		// than e enqueues. blocks[0] has zero enqueues and e >= 1, so
		// lo == 0 works as a final fallback without a read.
		lo = b - 1
		delta := int64(1)
		for lo > 0 && h.readBlock(rootIdx, lo).sumEnq >= e {
			delta <<= 1
			lo = b - delta
			if lo < 0 {
				lo = 0
			}
		}
	}
	// Invariant: sumEnq(lo) < e <= sumEnq(hi); find the boundary.
	hi := b
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if h.readBlock(rootIdx, mid).sumEnq >= e {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// getEnqueue returns the argument of the i-th enqueue in E(v.blocks[b])
// (lines 97-118).
//
// Preconditions: i >= 1, v.blocks[b] is non-nil and contains at least i
// enqueues.
func (h *Handle[T]) getEnqueue(v int, b, i int64) T {
	for !h.queue.isLeaf(v) {
		lc, rc := 2*v, 2*v+1
		blkB := h.readBlock(v, b)
		prevB := h.readBlock(v, b-1)
		// Number of enqueues of E(blkB) contributed by the left child: the
		// left child's subblocks span prevB.endLeft+1 .. blkB.endLeft.
		sumLeft := h.readBlock(lc, blkB.endLeft).sumEnq
		prevLeft := h.readBlock(lc, prevB.endLeft).sumEnq

		var (
			child        int
			prevChild    int64 // enqueues in child.blocks[1..range start-1]
			loIdx, hiIdx int64 // subblock index range in child
		)
		if i <= sumLeft-prevLeft {
			child = lc
			prevChild = prevLeft
			loIdx, hiIdx = prevB.endLeft+1, blkB.endLeft
		} else {
			i -= sumLeft - prevLeft
			child = rc
			prevChild = h.readBlock(rc, prevB.endRight).sumEnq
			loIdx, hiIdx = prevB.endRight+1, blkB.endRight
		}

		// Binary search the direct subblocks for the minimum b' with
		// child.blocks[b'].sumEnq >= i + prevChild (line 114). The range has
		// at most c <= p blocks (Lemma 21), giving O(log c) probes.
		target := i + prevChild
		lo, hi := loIdx-1, hiIdx
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if h.readBlock(child, mid).sumEnq >= target {
				hi = mid
			} else {
				lo = mid
			}
		}
		bp := hi
		i -= h.readBlock(child, bp-1).sumEnq - prevChild
		v, b = child, bp
	}
	// A leaf block carries one enqueue (element) or a whole batch (elems);
	// i survived the descent as the rank within this block.
	return h.readBlock(v, b).enqAt(i)
}
