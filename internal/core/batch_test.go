package core

// Tests for the multi-op batch path: one leaf block carrying m operations,
// one propagation pass, responses resolved per op rank.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestBatchSequentialFIFO(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	next := 0
	enq := func(m int) []int {
		es := make([]int, m)
		for i := range es {
			es[i] = next
			next++
		}
		return es
	}
	h.EnqueueBatch(enq(5))
	h.Enqueue(next)
	next++
	h.EnqueueBatch(enq(3))

	want := 0
	vs, got := h.DequeueBatch(4)
	if got != 4 {
		t.Fatalf("DequeueBatch(4) count = %d", got)
	}
	for _, v := range vs {
		if v != want {
			t.Fatalf("dequeued %d, want %d", v, want)
		}
		want++
	}
	for i := 0; i < 2; i++ {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want %d", v, ok, want)
		}
		want++
	}
	// Oversized batch dequeue: the tail is null, count is partial.
	vs, got = h.DequeueBatch(100)
	if got != next-want {
		t.Fatalf("final DequeueBatch count = %d, want %d", got, next-want)
	}
	for _, v := range vs {
		if v != want {
			t.Fatalf("dequeued %d, want %d", v, want)
		}
		want++
	}
	if _, got := h.DequeueBatch(3); got != 0 {
		t.Fatalf("DequeueBatch on empty returned %d values", got)
	}
}

func TestBatchDegenerateSizes(t *testing.T) {
	q, err := New[int](1)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	h.EnqueueBatch(nil)
	h.EnqueueBatch([]int{})
	if vs, n := h.DequeueBatch(0); n != 0 || vs != nil {
		t.Fatalf("DequeueBatch(0) = (%v,%d)", vs, n)
	}
	if vs, n := h.DequeueBatch(-3); n != 0 || vs != nil {
		t.Fatalf("DequeueBatch(-3) = (%v,%d)", vs, n)
	}
	h.EnqueueBatch([]int{7}) // m=1 batch takes the single-element representation
	if v, ok := h.Dequeue(); !ok || v != 7 {
		t.Fatalf("Dequeue = (%d,%v)", v, ok)
	}
}

// TestBatchCallerKeepsSlice verifies EnqueueBatch copies its argument: the
// caller mutating the slice afterwards must not corrupt queued values.
func TestBatchCallerKeepsSlice(t *testing.T) {
	q, err := New[int](1)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	es := []int{1, 2, 3}
	h.EnqueueBatch(es)
	es[0], es[1], es[2] = 100, 200, 300
	vs, n := h.DequeueBatch(3)
	if n != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Fatalf("dequeued %v, want [1 2 3]", vs)
	}
}

// TestBatchAmortizesBlocks checks the point of the whole exercise: batches
// install strictly fewer blocks per operation than singles.
func TestBatchAmortizesBlocks(t *testing.T) {
	const total = 1024
	blocksPerOp := func(m int) float64 {
		q, err := New[int](4)
		if err != nil {
			t.Fatal(err)
		}
		h := q.MustHandle(0)
		for i := 0; i < total/m; i++ {
			es := make([]int, m)
			h.EnqueueBatch(es)
			h.DequeueBatch(m)
		}
		return float64(q.BlocksInstalled()) / float64(2*total)
	}
	b1, b16 := blocksPerOp(1), blocksPerOp(16)
	if b16 >= b1 {
		t.Errorf("blocks/op did not shrink with batching: m=1 %.3f, m=16 %.3f", b1, b16)
	}
}

// TestBatchConcurrentConservation hammers the batch path from many handles
// under the race detector and checks exact conservation plus per-producer
// FIFO order of the dequeued values.
func TestBatchConcurrentConservation(t *testing.T) {
	const procs = 6
	const perProc = 900 // ops per handle, mixed batch sizes
	q, err := New[int64](procs)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.MustHandle(p)
			rng := rand.New(rand.NewSource(int64(p) + 77))
			enq := int64(0)
			for enq < perProc {
				m := 1 + rng.Intn(8)
				if rng.Intn(2) == 0 {
					es := make([]int64, 0, m)
					for i := 0; i < m && enq < perProc; i++ {
						es = append(es, int64(p)*1_000_000+enq)
						enq++
					}
					h.EnqueueBatch(es)
				} else {
					vs, _ := h.DequeueBatch(m)
					got[p] = append(got[p], vs...)
				}
			}
		}(p)
	}
	wg.Wait()
	h := q.MustHandle(0)
	for {
		vs, n := h.DequeueBatch(64)
		if n == 0 {
			break
		}
		got[0] = append(got[0], vs...)
	}
	seen := make(map[int64]bool, procs*perProc)
	for c, vs := range got {
		last := map[int64]int64{}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			prod, seq := v/1_000_000, v%1_000_000
			if prev, ok := last[prod]; ok && seq < prev {
				t.Fatalf("consumer %d: producer %d out of order (%d after %d)", c, prod, seq, prev)
			}
			last[prod] = seq
		}
	}
	if len(seen) != procs*perProc {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), procs*perProc)
	}
}

// TestBatchCounterAccounting: a batch is one BeginOp/EndBatch unit whose
// ops all land in the counter, with steps attributed once.
func TestBatchCounterAccounting(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	c := &metrics.Counter{}
	h.SetCounter(c)
	h.EnqueueBatch([]int{1, 2, 3, 4})
	if c.Enqueues != 4 {
		t.Fatalf("Enqueues = %d, want 4", c.Enqueues)
	}
	vs, n := h.DequeueBatch(6)
	if n != 4 || len(vs) != 4 {
		t.Fatalf("DequeueBatch = (%v,%d)", vs, n)
	}
	if c.Dequeues != 4 || c.NullDeqs != 2 {
		t.Fatalf("Dequeues=%d NullDeqs=%d, want 4 and 2", c.Dequeues, c.NullDeqs)
	}
	if c.TotalOps() != 10 || c.TotalSteps() == 0 {
		t.Fatalf("TotalOps=%d TotalSteps=%d", c.TotalOps(), c.TotalSteps())
	}
}
