package core
