// Package core implements the unbounded-space wait-free FIFO queue of
// Naderibeni and Ruppert, "A Wait-free Queue with Polylogarithmic Step
// Complexity" (PODC 2023), Sections 3-5.
//
// The queue supports p concurrent processes, each bound to its own leaf of a
// static binary ordering tree. Operations are appended to the process's leaf
// and cooperatively propagated to the root with double-Refresh; the root's
// block sequence defines the linearization. Enqueue and empty Dequeue run in
// O(log p) shared-memory steps; a successful Dequeue runs in O(log^2 p +
// log q) steps; every operation issues O(log p) CAS instructions
// (Proposition 19, Theorem 22).
//
// Usage:
//
//	q, err := core.New[int](numGoroutines)
//	h, err := q.Handle(i)   // one handle per goroutine, i in [0, p)
//	h.Enqueue(42)
//	v, ok := h.Dequeue()    // ok == false means the queue was empty
//
// A Handle must be used by at most one goroutine at a time; the Queue as a
// whole is safe for concurrent use through distinct handles.
package core

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/metrics"
)

// ErrBadProcs reports an invalid process count passed to New.
var ErrBadProcs = errors.New("core: process count must be at least 1")

// Queue is a linearizable wait-free FIFO queue for a fixed set of processes.
type Queue[T any] struct {
	// nodes holds the ordering tree flat in 1-indexed heap order; see
	// node.go for the layout. nodes[0] is unused.
	nodes     []node[T]
	numLeaves int
	handles   []Handle[T]
	procs     int
	arena     blockArena[T]

	// Ablation switches (see Option). Both default to the paper's design.
	plainRootSearch bool
	spinningRefresh bool
}

// Handle is a process's capability to operate on the queue. Each handle owns
// one leaf of the ordering tree. A handle may be used by only one goroutine
// at a time.
type Handle[T any] struct {
	queue *Queue[T]
	// nodes aliases queue.nodes so the hot accessors skip one indirection.
	nodes   []node[T]
	leaf    int // heap index of this handle's leaf
	counter *metrics.Counter

	// Block arena state private to this handle; see pool.go.
	slab  []block[T]
	spare []*block[T]
}

// Option configures a Queue; the zero configuration is the paper's design.
// Options exist to ablate individual design decisions in experiments.
type Option func(*options)

type options struct {
	plainRootSearch bool
	spinningRefresh bool
}

// WithPlainRootSearch replaces FindResponse's doubling search (line 91,
// Lemma 20) with a plain binary search over the entire root history. The
// ablation shows why the doubling search matters: the plain search costs
// O(log(total operations ever)) instead of O(log q).
func WithPlainRootSearch() Option {
	return func(o *options) { o.plainRootSearch = true }
}

// WithSpinningRefresh replaces Propagate's double-Refresh (lines 17-19,
// Lemma 10) with retry-until-success. The result is still linearizable and
// lock-free but no longer wait-free: a process can fail its CAS arbitrarily
// often under contention. The ablation quantifies the CAS traffic the
// double-Refresh rule saves.
func WithSpinningRefresh() Option {
	return func(o *options) { o.spinningRefresh = true }
}

// New creates a queue for up to procs processes. procs must be at least 1.
func New[T any](procs int, opts ...Option) (*Queue[T], error) {
	if procs < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadProcs, procs)
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	numLeaves := nextPow2(procs)
	if numLeaves < 2 {
		numLeaves = 2
	}
	q := &Queue[T]{
		nodes:           newTree[T](numLeaves),
		numLeaves:       numLeaves,
		procs:           procs,
		plainRootSearch: o.plainRootSearch,
		spinningRefresh: o.spinningRefresh,
	}
	q.handles = make([]Handle[T], procs)
	for i := 0; i < procs; i++ {
		q.handles[i] = Handle[T]{queue: q, nodes: q.nodes, leaf: numLeaves + i}
	}
	return q, nil
}

// Procs returns the process count the queue was built for.
func (q *Queue[T]) Procs() int { return q.procs }

// Handle returns the handle for process i, 0 <= i < Procs(). The same handle
// value is returned on every call; it is the caller's responsibility that at
// most one goroutine uses it at a time.
func (q *Queue[T]) Handle(i int) (*Handle[T], error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("core: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// MustHandle is Handle for callers with a statically valid index; it panics
// only on programmer error (index out of range).
func (q *Queue[T]) MustHandle(i int) *Handle[T] {
	h, err := q.Handle(i)
	if err != nil {
		panic(err)
	}
	return h
}

// Len returns the queue's size as of the last block propagated to the root.
// It is a linearizable-read-free estimate intended for monitoring: the value
// was exact at some recent moment but may lag concurrent operations.
func (q *Queue[T]) Len() int {
	root := &q.nodes[rootIdx]
	h := root.head.Load()
	// blocks[h-1] is always non-nil (Invariant 3).
	return int(root.blocks.Get(h - 1).size)
}

// BlocksInstalled returns the total number of blocks installed across all
// tree nodes since construction (excluding the per-node dummy blocks). The
// unbounded queue never reclaims blocks, so this grows with the operation
// count — the quantity the bounded variant's garbage collection caps
// (compare Queue.TotalBlocks in package bounded).
func (q *Queue[T]) BlocksInstalled() int64 {
	var total int64
	for v := rootIdx; v < len(q.nodes); v++ {
		total += q.nodes[v].head.Load() - 1
	}
	return total
}

// SetCounter attaches a step/CAS counter to the handle. A nil counter
// disables accounting. The counter must not be shared with another live
// handle.
func (h *Handle[T]) SetCounter(c *metrics.Counter) { h.counter = c }

// Counter returns the handle's current counter (possibly nil).
func (h *Handle[T]) Counter() *metrics.Counter { return h.counter }

// nextPow2 returns the smallest power of two >= n, for n >= 1.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
