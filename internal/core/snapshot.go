package core

// Snapshot support: a structural dump of the ordering tree used by the
// treeviz renderer, the Figure 1/2 reproduction, and white-box tests. A
// snapshot is not atomic with respect to concurrent operations; take it
// while the queue is quiescent for exact results.

// BlockKind classifies what a leaf block represents.
type BlockKind int

// Block kinds. Internal and root blocks are KindInternal.
const (
	KindDummy BlockKind = iota + 1
	KindEnqueue
	KindDequeue
	KindInternal
)

// BlockSnapshot is an immutable copy of one block's fields.
type BlockSnapshot struct {
	Index    int64
	SumEnq   int64
	SumDeq   int64
	EndLeft  int64
	EndRight int64
	Size     int64
	Super    int64
	Kind     BlockKind
	Element  any
}

// NodeSnapshot is a copy of one tree node's observable state.
type NodeSnapshot struct {
	// Path locates the node: "" is the root, then "L"/"R" steps, e.g. "LR".
	Path   string
	IsLeaf bool
	IsRoot bool
	LeafID int // -1 for internal nodes
	Head   int64
	Blocks []BlockSnapshot
}

// TreeSnapshot is a full structural dump of the ordering tree, in preorder.
type TreeSnapshot struct {
	Procs int
	Nodes []NodeSnapshot
}

// Snapshot captures the current state of every node's blocks array. Blocks
// are read up to and including any block installed at the head position.
// The walk descends the flat heap layout (children 2v/2v+1) in preorder so
// the Path strings match the pointer-tree era exactly.
func (q *Queue[T]) Snapshot() TreeSnapshot {
	snap := TreeSnapshot{Procs: q.procs}
	var walk func(v int, path string)
	walk = func(v int, path string) {
		n := &q.nodes[v]
		leafID := -1
		if q.isLeaf(v) {
			leafID = v - q.numLeaves
		}
		ns := NodeSnapshot{
			Path:   path,
			IsLeaf: q.isLeaf(v),
			IsRoot: v == rootIdx,
			LeafID: leafID,
			Head:   n.head.Load(),
		}
		// Read past head while blocks exist: a block may be installed at
		// head before any advance runs.
		for i := int64(0); ; i++ {
			b := n.blocks.Get(i)
			if b == nil {
				break
			}
			bs := BlockSnapshot{
				Index:    i,
				SumEnq:   b.sumEnq,
				SumDeq:   b.sumDeq,
				EndLeft:  b.endLeft,
				EndRight: b.endRight,
				Size:     b.size,
				Super:    b.super.Load(),
			}
			switch {
			case i == 0:
				bs.Kind = KindDummy
			case !q.isLeaf(v):
				bs.Kind = KindInternal
			default:
				prev := n.blocks.Get(i - 1)
				if b.sumEnq > prev.sumEnq {
					bs.Kind = KindEnqueue
					if b.elems != nil {
						// Multi-op batch block: expose the whole value set.
						bs.Element = b.elems
					} else {
						bs.Element = b.element
					}
				} else {
					bs.Kind = KindDequeue
				}
			}
			ns.Blocks = append(ns.Blocks, bs)
		}
		snap.Nodes = append(snap.Nodes, ns)
		if !q.isLeaf(v) {
			walk(2*v, path+"L")
			walk(2*v+1, path+"R")
		}
	}
	walk(rootIdx, "")
	return snap
}
