package core

// White-box tests that check the paper's stated invariants directly on tree
// states produced by live concurrent runs (the proofs of Section 4 rely on
// exactly these properties):
//
//   Invariant 3:  blocks[i] non-nil iff i < head (head may lag one install);
//                 super set for all installed blocks below head.
//   Lemma 4:      endleft/endright are non-decreasing along a blocks array.
//   Invariant 7:  sumenq/sumdeq equal the sizes of the expanded sequences
//                 E(B), D(B) accumulated over the blocks array.
//   Lemma 12:     a block's super field is within 1 of its true superblock
//                 index.
//   Lemma 16:     root size fields follow the max(0, ...) recurrence.
//   Corollary 6:  every leaf operation is contained in exactly one block of
//                 each ancestor.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// runConcurrent produces a quiesced queue after a random concurrent
// workload.
func runConcurrent(t *testing.T, procs, opsPerProc int, seed int64) *Queue[int] {
	t.Helper()
	q, err := New[int](procs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.MustHandle(p)
			rng := rand.New(rand.NewSource(seed + int64(p)))
			for s := 0; s < opsPerProc; s++ {
				if rng.Intn(2) == 0 {
					h.Enqueue(p*1_000_000 + s)
				} else {
					h.Dequeue()
				}
			}
		}(p)
	}
	wg.Wait()
	return q
}

// forEachNode visits every tree node by heap index.
func forEachNode[T any](q *Queue[T], fn func(v int, n *node[T])) {
	for v := rootIdx; v < len(q.nodes); v++ {
		fn(v, &q.nodes[v])
	}
}

func TestInvariant3HeadAndSuper(t *testing.T) {
	q := runConcurrent(t, 7, 800, 3)
	forEachNode(q, func(v int, n *node[int]) {
		head := n.head.Load()
		for i := int64(0); i < head; i++ {
			if n.blocks.Get(i) == nil {
				t.Fatalf("blocks[%d] nil below head %d", i, head)
			}
		}
		// After quiescence head may lag at most one installed block.
		if n.blocks.Get(head+1) != nil && n.blocks.Get(head) == nil {
			t.Fatalf("hole at head %d", head)
		}
		if v != rootIdx {
			for i := int64(1); i < head; i++ {
				if n.blocks.Get(i).super.Load() == 0 {
					t.Fatalf("blocks[%d].super unset below head %d", i, head)
				}
			}
		}
	})
}

func TestLemma4EndsNonDecreasing(t *testing.T) {
	q := runConcurrent(t, 8, 800, 4)
	forEachNode(q, func(v int, n *node[int]) {
		if q.isLeaf(v) {
			return
		}
		for i := int64(1); ; i++ {
			cur := n.blocks.Get(i)
			if cur == nil {
				break
			}
			prev := n.blocks.Get(i - 1)
			if cur.endLeft < prev.endLeft || cur.endRight < prev.endRight {
				t.Fatalf("block %d ends (%d,%d) below previous (%d,%d)",
					i, cur.endLeft, cur.endRight, prev.endLeft, prev.endRight)
			}
		}
	})
}

// expandCounts recursively counts the enqueues and dequeues represented by
// block b of node v — the |E(B)| and |D(B)| of equation (3.1).
func expandCounts[T any](q *Queue[T], v int, b int64) (enqs, deqs int64) {
	n := &q.nodes[v]
	blk := n.blocks.Get(b)
	if b == 0 {
		return 0, 0
	}
	if q.isLeaf(v) {
		prev := n.blocks.Get(b - 1)
		return blk.sumEnq - prev.sumEnq, blk.sumDeq - prev.sumDeq
	}
	prev := n.blocks.Get(b - 1)
	for i := prev.endLeft + 1; i <= blk.endLeft; i++ {
		e, d := expandCounts(q, 2*v, i)
		enqs += e
		deqs += d
	}
	for i := prev.endRight + 1; i <= blk.endRight; i++ {
		e, d := expandCounts(q, 2*v+1, i)
		enqs += e
		deqs += d
	}
	return enqs, deqs
}

func TestInvariant7PrefixSums(t *testing.T) {
	q := runConcurrent(t, 6, 600, 5)
	forEachNode(q, func(v int, n *node[int]) {
		var sumE, sumD int64
		for i := int64(1); ; i++ {
			blk := n.blocks.Get(i)
			if blk == nil {
				break
			}
			e, d := expandCounts(q, v, i)
			if e+d == 0 {
				t.Fatalf("block %d represents no operations (violates Corollary 8)", i)
			}
			sumE += e
			sumD += d
			if blk.sumEnq != sumE || blk.sumDeq != sumD {
				t.Fatalf("block %d sums (%d,%d), expanded (%d,%d)",
					i, blk.sumEnq, blk.sumDeq, sumE, sumD)
			}
		}
	})
}

func TestLemma12SuperAccuracy(t *testing.T) {
	q := runConcurrent(t, 8, 600, 6)
	forEachNode(q, func(v int, n *node[int]) {
		if v == rootIdx {
			return
		}
		dir := childDir(v)
		parent := &q.nodes[v>>1]
		for b := int64(1); ; b++ {
			blk := n.blocks.Get(b)
			if blk == nil {
				break
			}
			// True superblock: first parent block whose end(dir) >= b.
			var trueSup int64 = -1
			for s := int64(1); ; s++ {
				pb := parent.blocks.Get(s)
				if pb == nil {
					break
				}
				if pb.end(dir) >= b {
					trueSup = s
					break
				}
			}
			if trueSup < 0 {
				continue // not yet propagated (possible only for the newest block)
			}
			sup := blk.super.Load()
			if sup == 0 {
				continue // not yet advanced past; Invariant 3 checks cover the rest
			}
			if sup != trueSup && sup != trueSup-1 {
				t.Fatalf("node path? block %d: super=%d, true superblock %d", b, sup, trueSup)
			}
		}
	})
}

func TestLemma16RootSizes(t *testing.T) {
	q := runConcurrent(t, 5, 700, 7)
	root := &q.nodes[rootIdx]
	var size int64
	for i := int64(1); ; i++ {
		blk := root.blocks.Get(i)
		if blk == nil {
			break
		}
		prev := root.blocks.Get(i - 1)
		size = prev.size + blk.numEnqueues(prev) - blk.numDequeues(prev)
		if size < 0 {
			size = 0
		}
		if blk.size != size {
			t.Fatalf("root block %d size %d, recurrence gives %d", i, blk.size, size)
		}
	}
}

func TestCorollary6EachOpInOneRootBlock(t *testing.T) {
	q := runConcurrent(t, 6, 500, 8)
	// Count how many times each (leaf, index) appears as a subblock of a
	// root block.
	type key struct {
		leaf int
		idx  int64
	}
	counts := map[key]int{}
	var collect func(v int, b int64)
	collect = func(v int, b int64) {
		if b == 0 {
			return
		}
		n := &q.nodes[v]
		if q.isLeaf(v) {
			counts[key{v - q.numLeaves, b}]++
			return
		}
		blk := n.blocks.Get(b)
		prev := n.blocks.Get(b - 1)
		for i := prev.endLeft + 1; i <= blk.endLeft; i++ {
			collect(2*v, i)
		}
		for i := prev.endRight + 1; i <= blk.endRight; i++ {
			collect(2*v+1, i)
		}
	}
	root := &q.nodes[rootIdx]
	for b := int64(1); ; b++ {
		if root.blocks.Get(b) == nil {
			break
		}
		collect(rootIdx, b)
	}
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("leaf %d block %d appears in %d root blocks", k.leaf, k.idx, c)
		}
	}
	// Every completed leaf operation must be present (Lemma 11).
	for li := 0; li < q.numLeaves; li++ {
		head := q.nodes[q.numLeaves+li].head.Load()
		for i := int64(1); i < head; i++ {
			if counts[key{li, i}] != 1 {
				t.Fatalf("leaf %d block %d not contained in exactly one root block", li, i)
			}
		}
	}
}

func TestStepComplexityBound(t *testing.T) {
	// Concrete numeric guardrail derived from Theorem 22: with the
	// measured constants of this implementation, steps per operation stay
	// under 25*(ceil(lg p)+1)^2 + 2*lg(q)+40 for every operation in a pairs
	// workload. A regression that made costs linear in p would blow far
	// past it.
	for _, procs := range []int{2, 4, 8, 16, 32} {
		q, err := New[int](procs)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		worst := make([]int64, procs)
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := q.MustHandle(p)
				c := &metrics.Counter{}
				h.SetCounter(c)
				for s := 0; s < 400; s++ {
					h.Enqueue(s)
					h.Dequeue()
				}
				worst[p] = c.MaxOpSteps
			}(p)
		}
		wg.Wait()
		logP := int64(1)
		for 1<<logP < procs {
			logP++
		}
		bound := 25*(logP+1)*(logP+1) + 40
		for p, w := range worst {
			if w > bound {
				t.Errorf("procs=%d handle %d: worst op %d steps exceeds bound %d",
					procs, p, w, bound)
			}
		}
	}
}

func TestStepperInvalidPaths(t *testing.T) {
	q, _ := New[int](4)
	h := q.MustHandle(0)
	if _, err := q.StepRefresh(h, "X"); err == nil {
		t.Error("invalid path step accepted")
	}
	if _, err := q.StepRefresh(h, "LL"); err == nil {
		t.Error("leaf refresh accepted")
	}
	if _, err := q.StepRefresh(h, "LLL"); err == nil {
		t.Error("past-leaf path accepted")
	}
	if ok, err := q.StepRefresh(h, "L"); err != nil || !ok {
		t.Errorf("valid refresh = (%v, %v)", ok, err)
	}
}

func TestStepOperationsComposeWithFullOps(t *testing.T) {
	// Mixing step-granular and full operations must preserve semantics.
	q, _ := New[int](2)
	h0, h1 := q.MustHandle(0), q.MustHandle(1)
	h0.StepEnqueue(1)
	h1.Enqueue(2) // full op propagates h0's pending block too
	v, ok := h0.Dequeue()
	if !ok || v != 1 {
		t.Fatalf("first dequeue = (%d, %v), want 1", v, ok)
	}
	v, ok = h1.Dequeue()
	if !ok || v != 2 {
		t.Fatalf("second dequeue = (%d, %v), want 2", v, ok)
	}
	idx := h0.StepDequeue()
	h0.StepPropagate()
	if _, ok := h0.StepFinishDequeue(idx); ok {
		t.Fatal("dequeue on empty queue returned a value")
	}
}
