package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0); err == nil {
		t.Error("New(0) succeeded, want error")
	}
	if _, err := New[int](-3); err == nil {
		t.Error("New(-3) succeeded, want error")
	}
	for _, p := range []int{1, 2, 3, 4, 5, 8, 9, 64} {
		q, err := New[int](p)
		if err != nil {
			t.Fatalf("New(%d): %v", p, err)
		}
		if got := q.Procs(); got != p {
			t.Errorf("Procs() = %d, want %d", got, p)
		}
	}
}

func TestHandleRange(t *testing.T) {
	q, err := New[int](3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Handle(i); err != nil {
			t.Errorf("Handle(%d): %v", i, err)
		}
	}
	for _, i := range []int{-1, 3, 100} {
		if _, err := q.Handle(i); err == nil {
			t.Errorf("Handle(%d) succeeded, want error", i)
		}
	}
}

func TestEmptyDequeue(t *testing.T) {
	q, _ := New[string](2)
	h := q.MustHandle(0)
	v, ok := h.Dequeue()
	if ok {
		t.Fatalf("Dequeue on empty queue returned (%q, true)", v)
	}
	if v != "" {
		t.Fatalf("null dequeue returned non-zero value %q", v)
	}
}

func TestFIFOSingleHandle(t *testing.T) {
	q, _ := New[int](4)
	h := q.MustHandle(0)
	for i := 0; i < 100; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		v, ok := h.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d: queue unexpectedly empty", i)
		}
		if v != i {
			t.Fatalf("dequeue %d returned %d", i, v)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("queue should be empty after draining")
	}
}

func TestInterleavedEmptiness(t *testing.T) {
	q, _ := New[int](2)
	h := q.MustHandle(0)
	for round := 0; round < 50; round++ {
		if _, ok := h.Dequeue(); ok {
			t.Fatalf("round %d: dequeue on empty queue succeeded", round)
		}
		h.Enqueue(round)
		v, ok := h.Dequeue()
		if !ok || v != round {
			t.Fatalf("round %d: got (%d, %v)", round, v, ok)
		}
	}
}

func TestTwoHandlesAlternating(t *testing.T) {
	// Sequential use of two different leaves: exercises propagation and
	// merge ordering without concurrency.
	q, _ := New[int](2)
	a, b := q.MustHandle(0), q.MustHandle(1)
	a.Enqueue(1)
	b.Enqueue(2)
	a.Enqueue(3)
	b.Enqueue(4)
	want := []int{1, 2, 3, 4}
	for i, w := range want {
		v, ok := b.Dequeue()
		if !ok || v != w {
			t.Fatalf("dequeue %d = (%d, %v), want %d", i, v, ok, w)
		}
	}
}

// modelQueue is the sequential reference implementation.
type modelQueue struct{ items []int }

func (m *modelQueue) enqueue(v int) { m.items = append(m.items, v) }

func (m *modelQueue) dequeue() (int, bool) {
	if len(m.items) == 0 {
		return 0, false
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v, true
}

func TestRandomAgainstModelSequential(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 7, 16} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			q, _ := New[int](procs)
			model := &modelQueue{}
			rng := rand.New(rand.NewSource(int64(procs) * 17))
			next := 0
			for step := 0; step < 5000; step++ {
				h := q.MustHandle(rng.Intn(procs))
				if rng.Intn(2) == 0 {
					h.Enqueue(next)
					model.enqueue(next)
					next++
				} else {
					got, gotOK := h.Dequeue()
					want, wantOK := model.dequeue()
					if gotOK != wantOK || (gotOK && got != want) {
						t.Fatalf("step %d: Dequeue = (%d, %v), model = (%d, %v)",
							step, got, gotOK, want, wantOK)
					}
				}
			}
		})
	}
}

func TestLenTracksSize(t *testing.T) {
	q, _ := New[int](2)
	h := q.MustHandle(0)
	if got := q.Len(); got != 0 {
		t.Fatalf("empty queue Len() = %d", got)
	}
	for i := 0; i < 10; i++ {
		h.Enqueue(i)
	}
	if got := q.Len(); got != 10 {
		t.Fatalf("Len() = %d after 10 enqueues", got)
	}
	for i := 0; i < 4; i++ {
		h.Dequeue()
	}
	if got := q.Len(); got != 6 {
		t.Fatalf("Len() = %d after 4 dequeues", got)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	const procs = 8
	const perProducer = 2000
	q, _ := New[int](procs)

	// Handles 0-3 produce, 4-7 consume. Values encode producer and sequence
	// so FIFO-per-producer can be validated.
	var wg sync.WaitGroup
	results := make([][]int, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.MustHandle(i)
			if i < 4 {
				for s := 0; s < perProducer; s++ {
					h.Enqueue(i*1_000_000 + s)
				}
				return
			}
			for {
				v, ok := h.Dequeue()
				if !ok {
					if len(results[i]) >= perProducer {
						return
					}
					continue
				}
				results[i] = append(results[i], v)
				if len(results[i]) == perProducer {
					return
				}
			}
		}(i)
	}
	wg.Wait()

	seen := make(map[int]bool)
	lastSeq := map[int]int{0: -1, 1: -1, 2: -1, 3: -1}
	perConsumerLast := make(map[int]map[int]int) // consumer -> producer -> last seq
	total := 0
	for c := 4; c < procs; c++ {
		perConsumerLast[c] = map[int]int{}
		for _, v := range results[c] {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			total++
			prod, seq := v/1_000_000, v%1_000_000
			if last, ok := perConsumerLast[c][prod]; ok && seq < last {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", c, prod, seq, last)
			}
			perConsumerLast[c][prod] = seq
			_ = lastSeq
		}
	}
	if total != 4*perProducer {
		t.Fatalf("dequeued %d values, want %d", total, 4*perProducer)
	}
}

func TestConcurrentAllRoles(t *testing.T) {
	// Every handle both enqueues and dequeues; at the end, drain and verify
	// the multiset of values.
	const procs = 6
	const perHandle = 1000
	q, _ := New[int](procs)
	var wg sync.WaitGroup
	dequeued := make([][]int, procs)
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := q.MustHandle(i)
			rng := rand.New(rand.NewSource(int64(i)))
			enq := 0
			for enq < perHandle {
				if rng.Intn(2) == 0 {
					h.Enqueue(i*1_000_000 + enq)
					enq++
				} else if v, ok := h.Dequeue(); ok {
					dequeued[i] = append(dequeued[i], v)
				}
			}
		}(i)
	}
	wg.Wait()

	// Drain the remainder.
	h := q.MustHandle(0)
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		dequeued[0] = append(dequeued[0], v)
	}

	seen := make(map[int]bool)
	total := 0
	for _, ds := range dequeued {
		for _, v := range ds {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != procs*perHandle {
		t.Fatalf("dequeued %d values, want %d", total, procs*perHandle)
	}
	for i := 0; i < procs; i++ {
		for s := 0; s < perHandle; s++ {
			if !seen[i*1_000_000+s] {
				t.Fatalf("value from handle %d seq %d never dequeued", i, s)
			}
		}
	}
}

func TestAblationVariantsStillCorrect(t *testing.T) {
	// Both ablation variants must preserve FIFO semantics; only their cost
	// profile changes.
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"plain-root-search", []Option{WithPlainRootSearch()}},
		{"spinning-refresh", []Option{WithSpinningRefresh()}},
		{"both", []Option{WithPlainRootSearch(), WithSpinningRefresh()}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			q, err := New[int](3, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			var model []int
			rng := rand.New(rand.NewSource(11))
			next := 0
			for step := 0; step < 3000; step++ {
				h := q.MustHandle(rng.Intn(3))
				if rng.Intn(2) == 0 {
					h.Enqueue(next)
					model = append(model, next)
					next++
					continue
				}
				got, gotOK := h.Dequeue()
				var want int
				wantOK := len(model) > 0
				if wantOK {
					want, model = model[0], model[1:]
				}
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("step %d: (%d,%v) vs model (%d,%v)", step, got, gotOK, want, wantOK)
				}
			}
		})
	}
}

func TestAblationVariantsConcurrent(t *testing.T) {
	for _, opts := range [][]Option{
		{WithPlainRootSearch()},
		{WithSpinningRefresh()},
	} {
		q, err := New[int](4, opts...)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		seen := make([]map[int]bool, 4)
		for p := 0; p < 4; p++ {
			seen[p] = map[int]bool{}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := q.MustHandle(p)
				for s := 0; s < 800; s++ {
					h.Enqueue(p*10_000 + s)
					if v, ok := h.Dequeue(); ok {
						seen[p][v] = true
					}
				}
			}(p)
		}
		wg.Wait()
		total := 0
		union := map[int]bool{}
		for p := range seen {
			for v := range seen[p] {
				if union[v] {
					t.Fatalf("value %d dequeued twice", v)
				}
				union[v] = true
				total++
			}
		}
		h := q.MustHandle(0)
		for {
			if _, ok := h.Dequeue(); !ok {
				break
			}
			total++
		}
		if total != 4*800 {
			t.Fatalf("dequeued %d values, want %d", total, 4*800)
		}
	}
}
