package core

import (
	"sync/atomic"

	"repro/internal/infarray"
)

// The static ordering tree is stored flat: one contiguous slice of nodes in
// 1-indexed heap order. Node v's parent is v/2, its children are 2v and
// 2v+1, its sibling is v^1, and the leaves occupy indices
// [numLeaves, 2*numLeaves) with leaf i at numLeaves+i. Index 0 is unused.
//
// Flattening replaces the three pointer dereferences per level of a
// pointer-linked tree (parent/left/right) with shift-and-add arithmetic on
// the node index, and keeps every node of the tree in one allocation so the
// root-ward walk of Propagate touches a predictable ascending/descending
// address sequence instead of arbitrary heap addresses. The tree is built
// once at queue construction and never changes shape; only the blocks
// arrays and head indices evolve.
const rootIdx = 1

// childDir reports which child of its parent node v is: left children have
// even indices (2u), right children odd (2u+1). Must not be called on the
// root.
func childDir(v int) direction {
	if v&1 == 0 {
		return left
	}
	return right
}

// node is one node of the static ordering tree.
type node[T any] struct {
	// blocks is the node's logically infinite array of blocks. blocks[0] is
	// a pre-installed empty block whose integer fields are all zero, so the
	// code never needs an index-zero special case. The index-zero blocks
	// come from a construction-time slab that is never handed to the block
	// arena, so no amount of pooling or recycling can ever reuse (and
	// rewrite) a dummy block out from under a reader that relies on its
	// all-zero sums.
	blocks *infarray.Array[block[T]]

	// head is the position to use for the next append attempt: blocks[i] is
	// non-nil for all i < head, and blocks[i] is nil for all i > head
	// (Invariant 3). head only moves forward, via CAS in advance.
	head atomic.Int64

	// Pad each node to two cache lines (the adjacent-line prefetcher's
	// granularity) so one node's hot head atomic never false-shares with a
	// neighbouring node's: in the flat layout, tree neighbours are array
	// neighbours, which is exactly the adjacency that used to be broken up
	// by separate heap allocations.
	_ [128 - 16]byte
}

// isLeaf reports whether index v names a leaf of q's tree.
func (q *Queue[T]) isLeaf(v int) bool { return v >= q.numLeaves }

// newTree builds the flat node slice for a complete binary tree with
// numLeaves leaves (a power of two, at least two). Using at least two leaves
// removes any root==leaf special case; extra leaves beyond p simply never
// receive blocks and contribute zero sums.
func newTree[T any](numLeaves int) []node[T] {
	nodes := make([]node[T], 2*numLeaves)
	// One shared slab for the index-zero dummy blocks; see the blocks field
	// comment for why these must never enter the arena.
	dummies := make([]block[T], len(nodes))
	for v := rootIdx; v < len(nodes); v++ {
		nodes[v].blocks = infarray.New[block[T]]()
		nodes[v].blocks.Store(0, &dummies[v])
		nodes[v].head.Store(1)
	}
	return nodes
}
