package core

import (
	"sync/atomic"

	"repro/internal/infarray"
)

// node is one node of the static ordering tree. The tree is built once at
// queue construction and never changes shape; only the blocks arrays and
// head indices evolve.
type node[T any] struct {
	left, right, parent *node[T]

	// blocks is the node's logically infinite array of blocks. blocks[0] is
	// a pre-installed empty block whose integer fields are all zero, so the
	// code never needs an index-zero special case.
	blocks *infarray.Array[block[T]]

	// head is the position to use for the next append attempt: blocks[i] is
	// non-nil for all i < head, and blocks[i] is nil for all i > head
	// (Invariant 3). head only moves forward, via CAS in advance.
	head atomic.Int64

	// leafID is the process index for leaves, -1 for internal nodes.
	leafID int
}

func (n *node[T]) isLeaf() bool { return n.left == nil }

func (n *node[T]) isRoot() bool { return n.parent == nil }

// childDir reports which child of n's parent n is. Must not be called on the
// root.
func (n *node[T]) childDir() direction {
	if n.parent.left == n {
		return left
	}
	return right
}

// sibling returns the other child of n's parent. Must not be called on the
// root.
func (n *node[T]) sibling() *node[T] {
	if n.parent.left == n {
		return n.parent.right
	}
	return n.parent.left
}

// newNode allocates a node with its empty block installed and head set to 1.
func newNode[T any]() *node[T] {
	n := &node[T]{
		blocks: infarray.New[block[T]](),
		leafID: -1,
	}
	n.blocks.Store(0, &block[T]{})
	n.head.Store(1)
	return n
}

// buildTree constructs a complete binary tree with numLeaves leaves (a power
// of two, at least two) and returns the root plus the leaves in left-to-right
// order. Using at least two leaves removes any root==leaf special case; extra
// leaves beyond p simply never receive blocks and contribute zero sums.
func buildTree[T any](numLeaves int) (root *node[T], leaves []*node[T]) {
	level := make([]*node[T], 0, numLeaves)
	for i := 0; i < numLeaves; i++ {
		leaf := newNode[T]()
		leaf.leafID = i
		level = append(level, leaf)
	}
	leaves = level
	for len(level) > 1 {
		next := make([]*node[T], 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			parent := newNode[T]()
			parent.left = level[i]
			parent.right = level[i+1]
			level[i].parent = parent
			level[i+1].parent = parent
			next = append(next, parent)
		}
		level = next
	}
	return level[0], leaves
}
