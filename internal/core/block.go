package core

import "sync/atomic"

// block is one entry of a node's blocks array (Figure 3 of the paper). A
// block implicitly represents a sequence of enqueues E(B) and dequeues D(B)
// via prefix sums and child indices rather than storing operations
// explicitly, which is what makes Refresh constant-time (task T1).
//
// All fields except super are immutable after the block is published to a
// blocks array. super is written exactly once, by a CAS in advance, from the
// parent's head field; 0 means "not yet set" (valid indices are >= 1 because
// every head field starts at 1).
//
// Lifecycle under the block arena (pool.go): blocks are drawn from a
// per-handle arena, and only blocks that were *never published* are ever
// recycled (a Refresh candidate whose CAS lost, or that was abandoned
// before the CAS). Once published a block is immortal: concurrent searches
// may read arbitrarily old blocks, matching the paper's garbage-collected
// memory model. The per-node dummy at blocks[0] comes from a separate
// construction-time slab that never enters the arena, so the all-zero
// prefix sums that every search bottoms out on can never be recycled and
// rewritten — pre-installation survives pooling by construction, not by
// luck.
type block[T any] struct {
	// sumEnq and sumDeq are the number of enqueues and dequeues contained in
	// this node's blocks[1..i] where i is this block's index (Invariant 7).
	sumEnq int64
	sumDeq int64

	// endLeft and endRight are the indices of the block's last direct
	// subblock in the left and right child (internal nodes only). Together
	// with the previous block's fields they delimit the direct subblocks,
	// equation (3.3).
	endLeft  int64
	endRight int64

	// size is the number of elements in the queue after all operations up to
	// and including this block have been applied in linearization order
	// (root blocks only).
	size int64

	// element is the enqueued value (leaf blocks representing a single
	// enqueue). Multi-op enqueue blocks store their values in elems instead,
	// so the single-op hot path never pays a slice allocation.
	element T

	// elems are the enqueued values of a multi-op leaf block (batch append),
	// in enqueue order. nil for single-op blocks and dequeue blocks; when
	// set, element is unused.
	elems []T

	// super is the approximate index of this block's superblock in the
	// parent's blocks array; it may be one less than the true index
	// (Lemma 12). 0 means unset.
	super atomic.Int64
}

// enqAt returns the i-th (1-based) enqueue argument of a leaf block, which
// must contain at least i enqueues.
func (b *block[T]) enqAt(i int64) T {
	if b.elems != nil {
		return b.elems[i-1]
	}
	return b.element
}

// numEnqueues returns |E(B)| given the previous block in the same node.
func (b *block[T]) numEnqueues(prev *block[T]) int64 {
	return b.sumEnq - prev.sumEnq
}

// numDequeues returns |D(B)| given the previous block in the same node.
func (b *block[T]) numDequeues(prev *block[T]) int64 {
	return b.sumDeq - prev.sumDeq
}

// end returns endLeft or endRight according to dir.
func (b *block[T]) end(dir direction) int64 {
	if dir == left {
		return b.endLeft
	}
	return b.endRight
}

// direction distinguishes the two children of an internal node.
type direction int

const (
	left direction = iota + 1
	right
)
