package core

// Deterministic tests of null-dequeue semantics inside a single block: the
// paper linearizes each block's enqueues before its dequeues, so when a
// block carries more dequeues than the queue holds, the size field clamps
// at zero (line 50) and FindResponse classifies exactly the right dequeues
// as null (lines 86-87). These boundary cases are scheduled explicitly with
// the step hooks, so the block composition is exact.

import "testing"

// TestNullDequeueWithinBlock groups one enqueue and three dequeues from
// different processes into a single root block on an empty queue: within
// the block the enqueue linearizes first, so exactly one dequeue succeeds.
func TestNullDequeueWithinBlock(t *testing.T) {
	q, err := New[string](4)
	if err != nil {
		t.Fatal(err)
	}
	h := make([]*Handle[string], 4)
	for i := range h {
		h[i] = q.MustHandle(i)
	}
	h[0].StepEnqueue("only")
	d1 := h[1].StepDequeue()
	d2 := h[2].StepDequeue()
	d3 := h[3].StepDequeue()
	// One refresh per internal level groups everything into one root block.
	for _, path := range []string{"L", "R", ""} {
		if ok, err := q.StepRefresh(h[0], path); err != nil || !ok {
			t.Fatalf("refresh %q = (%v, %v)", path, ok, err)
		}
	}
	root := &q.nodes[rootIdx]
	if got := root.head.Load(); got != 2 {
		t.Fatalf("root head = %d, want 2 (single block)", got)
	}
	blk := root.blocks.Get(1)
	if blk.numEnqueues(root.blocks.Get(0)) != 1 || blk.numDequeues(root.blocks.Get(0)) != 3 {
		t.Fatalf("root block has (%d enq, %d deq), want (1, 3)",
			blk.numEnqueues(root.blocks.Get(0)), blk.numDequeues(root.blocks.Get(0)))
	}
	if blk.size != 0 {
		t.Fatalf("block size = %d, want 0 (clamped)", blk.size)
	}

	// D(B) orders leaves left to right: P1's dequeue is first and wins.
	v, ok := h[1].StepFinishDequeue(d1)
	if !ok || v != "only" {
		t.Fatalf("first dequeue in block = (%q, %v), want the enqueued value", v, ok)
	}
	if _, ok := h[2].StepFinishDequeue(d2); ok {
		t.Fatal("second dequeue in block should be null")
	}
	if _, ok := h[3].StepFinishDequeue(d3); ok {
		t.Fatal("third dequeue in block should be null")
	}
}

// TestSizeClampRecovery drives size to zero with surplus dequeues, then
// verifies subsequent enqueues are dequeued correctly (the clamp must not
// corrupt the non-null dequeue ranking of line 89).
func TestSizeClampRecovery(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := q.MustHandle(0), q.MustHandle(1)
	// Surplus dequeues grouped with one enqueue.
	a.StepEnqueue(10)
	d1 := a.StepDequeue()
	a.StepPropagate()
	d2 := b.StepDequeue()
	b.StepPropagate()
	if v, ok := a.StepFinishDequeue(d1); !ok || v != 10 {
		t.Fatalf("d1 = (%d, %v)", v, ok)
	}
	if _, ok := b.StepFinishDequeue(d2); ok {
		t.Fatal("d2 should be null")
	}
	// Recovery: normal FIFO behaviour afterwards.
	for i := 0; i < 20; i++ {
		a.Enqueue(100 + i)
	}
	for i := 0; i < 20; i++ {
		v, ok := b.Dequeue()
		if !ok || v != 100+i {
			t.Fatalf("recovery dequeue %d = (%d, %v)", i, v, ok)
		}
	}
}

// TestInterleavedNullAndRealDequeues alternates null and successful
// dequeues across blocks, checking the non-null rank bookkeeping
// (sumenq - size) across a long history.
func TestInterleavedNullAndRealDequeues(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	for round := 0; round < 60; round++ {
		if _, ok := h.Dequeue(); ok {
			t.Fatalf("round %d: dequeue on empty succeeded", round)
		}
		h.Enqueue(round * 2)
		h.Enqueue(round*2 + 1)
		v1, ok1 := h.Dequeue()
		v2, ok2 := h.Dequeue()
		if !ok1 || !ok2 || v1 != round*2 || v2 != round*2+1 {
			t.Fatalf("round %d: (%d,%v) (%d,%v)", round, v1, ok1, v2, ok2)
		}
	}
}
