package core

// Deterministic schedule exploration. Goroutine scheduling only samples a
// narrow band of interleavings; these tests instead drive the queue's
// phases (leaf appends and per-node Refreshes) under explicit random
// schedules, reaching block-boundary configurations that are hard to hit
// live. For every explored schedule the induced root linearization L must
//
//   - contain every appended operation exactly once, in per-process order,
//   - yield, when replayed sequentially, exactly the responses the queue's
//     own IndexDequeue/FindResponse machinery computes for each dequeue.
//
// This is the strongest correctness check in the package: it verifies the
// full implicit-representation pipeline (prefix sums, end indices, super
// tracing, size fields, binary searches) against first-principles replay on
// thousands of adversarial schedules.

import (
	"fmt"
	"math/rand"
	"testing"
)

// schedOp is one scripted operation.
type schedOp struct {
	proc  int
	isEnq bool
	value int
	idx   int64 // leaf block index once appended
}

// expandLeafOps expands block b of node v into leaf-operation references in
// linearization order (enqueues and dequeues separately).
func expandLeafOps[T any](q *Queue[T], v int, b int64) (enqs, deqs [][2]int64) {
	if b == 0 {
		return nil, nil
	}
	n := &q.nodes[v]
	blk := n.blocks.Get(b)
	if q.isLeaf(v) {
		prev := n.blocks.Get(b - 1)
		ref := [2]int64{int64(v - q.numLeaves), b}
		if blk.sumEnq > prev.sumEnq {
			return [][2]int64{ref}, nil
		}
		return nil, [][2]int64{ref}
	}
	prev := n.blocks.Get(b - 1)
	for i := prev.endLeft + 1; i <= blk.endLeft; i++ {
		e, d := expandLeafOps(q, 2*v, i)
		enqs = append(enqs, e...)
		deqs = append(deqs, d...)
	}
	for i := prev.endRight + 1; i <= blk.endRight; i++ {
		e, d := expandLeafOps(q, 2*v+1, i)
		enqs = append(enqs, e...)
		deqs = append(deqs, d...)
	}
	return enqs, deqs
}

func TestScheduleExploration(t *testing.T) {
	const trials = 1500
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		procs := 2 + rng.Intn(3) // 2..4
		opsPerProc := 2 + rng.Intn(3)
		exploreSchedule(t, rng, procs, opsPerProc, trial)
		if t.Failed() {
			return
		}
	}
}

func exploreSchedule(t *testing.T, rng *rand.Rand, procs, opsPerProc, trial int) {
	t.Helper()
	q, err := New[int](procs)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle[int], procs)
	for i := range handles {
		handles[i] = q.MustHandle(i)
	}

	// Script the operations.
	var script [][]*schedOp
	nextVal := 1
	var all []*schedOp
	for p := 0; p < procs; p++ {
		var ops []*schedOp
		for s := 0; s < opsPerProc; s++ {
			op := &schedOp{proc: p, isEnq: rng.Intn(2) == 0, value: nextVal}
			nextVal++
			ops = append(ops, op)
			all = append(all, op)
		}
		script = append(script, ops)
	}

	// Enumerate internal-node paths for refresh actions.
	var paths []string
	var walkPaths func(v int, path string)
	walkPaths = func(v int, path string) {
		if q.isLeaf(v) {
			return
		}
		paths = append(paths, path)
		walkPaths(2*v, path+"L")
		walkPaths(2*v+1, path+"R")
	}
	walkPaths(rootIdx, "")

	// Random schedule: interleave appends with refreshes of random nodes.
	// Protocol constraint: a process may invoke its next operation only
	// after the previous one completed, i.e. was propagated to the root
	// (otherwise one block could absorb two operations of the same process,
	// a state unreachable in real executions — Lemma 21).
	appended := make([]int, procs)
	pendingAppends := procs * opsPerProc
	stall := 0
	for pendingAppends > 0 {
		if stall > 50 {
			// Random refreshes are not making progress; run a full
			// propagation for some process with a pending previous op.
			p := rng.Intn(procs)
			handles[p].StepPropagate()
			stall = 0
			continue
		}
		if rng.Intn(3) == 0 { // refresh a random node
			path := paths[rng.Intn(len(paths))]
			if _, err := q.StepRefresh(handles[rng.Intn(procs)], path); err != nil {
				t.Fatalf("trial %d: refresh: %v", trial, err)
			}
			continue
		}
		p := rng.Intn(procs)
		if appended[p] == len(script[p]) {
			stall++
			continue
		}
		if appended[p] > 0 {
			prev := script[p][appended[p]-1]
			if !propagatedToRoot(q, q.numLeaves+p, prev.idx) {
				stall++
				continue
			}
		}
		op := script[p][appended[p]]
		if op.isEnq {
			op.idx = handles[p].StepEnqueue(op.value)
		} else {
			op.idx = handles[p].StepDequeue()
		}
		appended[p]++
		pendingAppends--
		stall = 0
	}
	// A few more random refreshes mid-state.
	for k := 0; k < rng.Intn(6); k++ {
		path := paths[rng.Intn(len(paths))]
		if _, err := q.StepRefresh(handles[rng.Intn(procs)], path); err != nil {
			t.Fatal(err)
		}
	}
	// Final full propagation so every operation reaches the root.
	for p := 0; p < procs; p++ {
		handles[p].StepPropagate()
	}

	// Extract the linearization from the root.
	root := &q.nodes[rootIdx]
	opByRef := map[[2]int64]*schedOp{}
	for _, op := range all {
		opByRef[[2]int64{int64(op.proc), op.idx}] = op
	}
	seen := map[[2]int64]bool{}
	lastIdx := make(map[int]int64)
	var queueState []int
	wantResp := map[*schedOp]struct {
		val int
		ok  bool
	}{}
	for b := int64(1); root.blocks.Get(b) != nil; b++ {
		enqs, deqs := expandLeafOps(q, rootIdx, b)
		for _, ref := range enqs {
			op := opByRef[ref]
			if op == nil || !op.isEnq {
				t.Fatalf("trial %d: root block %d lists unknown/wrong enqueue %v", trial, b, ref)
			}
			if seen[ref] {
				t.Fatalf("trial %d: op %v appears twice", trial, ref)
			}
			seen[ref] = true
			if ref[1] <= lastIdx[op.proc] {
				t.Fatalf("trial %d: per-process order violated for proc %d", trial, op.proc)
			}
			lastIdx[op.proc] = ref[1]
			queueState = append(queueState, op.value)
		}
		for _, ref := range deqs {
			op := opByRef[ref]
			if op == nil || op.isEnq {
				t.Fatalf("trial %d: root block %d lists unknown/wrong dequeue %v", trial, b, ref)
			}
			if seen[ref] {
				t.Fatalf("trial %d: op %v appears twice", trial, ref)
			}
			seen[ref] = true
			if ref[1] <= lastIdx[op.proc] {
				t.Fatalf("trial %d: per-process order violated for proc %d", trial, op.proc)
			}
			lastIdx[op.proc] = ref[1]
			if len(queueState) == 0 {
				wantResp[op] = struct {
					val int
					ok  bool
				}{0, false}
			} else {
				wantResp[op] = struct {
					val int
					ok  bool
				}{queueState[0], true}
				queueState = queueState[1:]
			}
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("trial %d: linearization has %d ops, appended %d", trial, len(seen), len(all))
	}

	// The queue's own response machinery must agree with the replay.
	for _, op := range all {
		if op.isEnq {
			continue
		}
		want := wantResp[op]
		got, ok := handles[op.proc].StepFinishDequeue(op.idx)
		if ok != want.ok || (ok && got != want.val) {
			t.Fatalf("trial %d: proc %d dequeue #%d = (%d, %v), replay gives (%d, %v)\nschedule: %s",
				trial, op.proc, op.idx, got, ok, want.val, want.ok, describe(script))
		}
	}
}

func describe(script [][]*schedOp) string {
	out := ""
	for p, ops := range script {
		out += fmt.Sprintf("P%d:", p)
		for _, op := range ops {
			if op.isEnq {
				out += fmt.Sprintf(" Enq(%d)", op.value)
			} else {
				out += " Deq"
			}
		}
		out += "; "
	}
	return out
}

// propagatedToRoot reports whether leaf block b is contained in some block
// of the root, by following end indices upward.
func propagatedToRoot[T any](q *Queue[T], v int, b int64) bool {
	for v != rootIdx {
		dir := childDir(v)
		parent := &q.nodes[v>>1]
		found := int64(-1)
		for s := int64(1); parent.blocks.Get(s) != nil; s++ {
			if parent.blocks.Get(s).end(dir) >= b {
				found = s
				break
			}
		}
		if found < 0 {
			return false
		}
		v, b = v>>1, found
	}
	return true
}
