package mutexqueue_test

import (
	"testing"

	"repro/internal/baseline/mutexqueue"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
)

func TestConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "mutex",
		New:  func(p int) (queues.Queue, error) { return mutexqueue.New(p) },
	})
}
