// Package mutexqueue implements the simplest correct shared queue: a growable
// ring buffer guarded by a single mutex. It is the floor baseline: trivially
// linearizable, blocking, and fully serialized.
package mutexqueue

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/queues"
)

// Queue is a mutex-guarded ring-buffer FIFO queue.
type Queue struct {
	mu      sync.Mutex
	buf     []int64
	start   int // index of front element
	n       int // number of elements
	procs   int
	handles []Handle
}

var _ queues.Queue = (*Queue)(nil)

// New creates a queue with procs handles.
func New(procs int) (*Queue, error) {
	if procs < 1 {
		return nil, fmt.Errorf("mutexqueue: process count must be at least 1 (got %d)", procs)
	}
	q := &Queue{procs: procs, buf: make([]int64, 16)}
	q.handles = make([]Handle, procs)
	for i := range q.handles {
		q.handles[i] = Handle{queue: q}
	}
	return q, nil
}

// Name implements queues.Queue.
func (q *Queue) Name() string { return "mutex" }

// Procs implements queues.Queue.
func (q *Queue) Procs() int { return q.procs }

// Handle implements queues.Queue.
func (q *Queue) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("mutexqueue: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// grow doubles the buffer. Caller holds the mutex.
func (q *Queue) grow() {
	bigger := make([]int64, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		bigger[i] = q.buf[(q.start+i)%len(q.buf)]
	}
	q.buf = bigger
	q.start = 0
}

// Handle is one process's instrumented access point.
type Handle struct {
	queue   *Queue
	counter *metrics.Counter
}

var _ queues.Handle = (*Handle)(nil)

// SetCounter implements queues.Handle.
func (h *Handle) SetCounter(c *metrics.Counter) { h.counter = c }

// Enqueue implements queues.Handle.
func (h *Handle) Enqueue(v int64) {
	h.counter.BeginOp()
	q := h.queue
	h.counter.CAS(true) // lock acquisition
	q.mu.Lock()
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.start+q.n)%len(q.buf)] = v
	q.n++
	h.counter.Write()
	h.counter.Write()
	q.mu.Unlock()
	h.counter.Write()
	h.counter.EndOp(metrics.OpEnqueue)
}

// Dequeue implements queues.Handle.
func (h *Handle) Dequeue() (int64, bool) {
	h.counter.BeginOp()
	q := h.queue
	h.counter.CAS(true)
	q.mu.Lock()
	if q.n == 0 {
		q.mu.Unlock()
		h.counter.Read(1)
		h.counter.Write()
		h.counter.EndOp(metrics.OpNullDequeue)
		return 0, false
	}
	v := q.buf[q.start]
	q.start = (q.start + 1) % len(q.buf)
	q.n--
	h.counter.Read(2)
	h.counter.Write()
	h.counter.Write()
	q.mu.Unlock()
	h.counter.Write()
	h.counter.EndOp(metrics.OpDequeue)
	return v, true
}
