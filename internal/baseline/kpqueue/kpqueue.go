// Package kpqueue implements the wait-free queue of Kogan and Petrank
// ("Wait-free queues with multiple enqueuers and dequeuers", PPoPP 2011) —
// the canonical wait-free baseline the paper discusses in Section 2. It
// makes the MS-queue wait-free with Herlihy-style helping: every operation
// announces itself in a per-process state array with a monotone phase
// number, and each operation helps all pending operations with phases at
// most its own before returning. Helping scans the whole state array, so
// the step complexity is Omega(p) per operation even without contention —
// the cost the Naderibeni-Ruppert queue eliminates.
package kpqueue

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/queues"
)

type node struct {
	value  int64
	next   atomic.Pointer[node]
	enqTid int32
	deqTid atomic.Int32
}

func newNode(value int64, enqTid int32) *node {
	n := &node{value: value, enqTid: enqTid}
	n.deqTid.Store(-1)
	return n
}

// opDesc announces one process's pending or completed operation. Descriptors
// are immutable; the state array is updated by CAS to a fresh descriptor.
type opDesc struct {
	phase   int64
	pending bool
	enqueue bool
	node    *node
}

// Queue is a Kogan-Petrank wait-free FIFO queue.
type Queue struct {
	head    atomic.Pointer[node]
	tail    atomic.Pointer[node]
	state   []atomic.Pointer[opDesc]
	procs   int
	handles []Handle
}

var _ queues.Queue = (*Queue)(nil)

// New creates a queue with procs handles.
func New(procs int) (*Queue, error) {
	if procs < 1 {
		return nil, fmt.Errorf("kpqueue: process count must be at least 1 (got %d)", procs)
	}
	dummy := newNode(0, -1)
	q := &Queue{procs: procs, state: make([]atomic.Pointer[opDesc], procs)}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	for i := range q.state {
		q.state[i].Store(&opDesc{phase: -1, pending: false})
	}
	q.handles = make([]Handle, procs)
	for i := range q.handles {
		q.handles[i] = Handle{queue: q, tid: int32(i)}
	}
	return q, nil
}

// Name implements queues.Queue.
func (q *Queue) Name() string { return "kp-queue" }

// Procs implements queues.Queue.
func (q *Queue) Procs() int { return q.procs }

// Handle implements queues.Queue.
func (q *Queue) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("kpqueue: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// Handle is one process's instrumented access point.
type Handle struct {
	queue   *Queue
	tid     int32
	counter *metrics.Counter
}

var _ queues.Handle = (*Handle)(nil)

// SetCounter implements queues.Handle.
func (h *Handle) SetCounter(c *metrics.Counter) { h.counter = c }

// maxPhase scans the state array for the largest announced phase.
func (h *Handle) maxPhase() int64 {
	var max int64 = -1
	for i := range h.queue.state {
		h.counter.Read(1)
		if p := h.queue.state[i].Load().phase; p > max {
			max = p
		}
	}
	return max
}

func (h *Handle) isStillPending(tid int32, phase int64) bool {
	h.counter.Read(1)
	desc := h.queue.state[tid].Load()
	return desc.pending && desc.phase <= phase
}

// Enqueue implements queues.Handle.
func (h *Handle) Enqueue(v int64) {
	h.counter.BeginOp()
	phase := h.maxPhase() + 1
	h.counter.Write()
	h.queue.state[h.tid].Store(&opDesc{
		phase: phase, pending: true, enqueue: true, node: newNode(v, h.tid),
	})
	h.help(phase)
	h.helpFinishEnq()
	h.counter.EndOp(metrics.OpEnqueue)
}

// Dequeue implements queues.Handle.
func (h *Handle) Dequeue() (int64, bool) {
	h.counter.BeginOp()
	phase := h.maxPhase() + 1
	h.counter.Write()
	h.queue.state[h.tid].Store(&opDesc{
		phase: phase, pending: true, enqueue: false, node: nil,
	})
	h.help(phase)
	h.helpFinishDeq()
	h.counter.Read(1)
	node := h.queue.state[h.tid].Load().node
	if node == nil {
		h.counter.EndOp(metrics.OpNullDequeue)
		return 0, false
	}
	h.counter.Read(2)
	v := node.next.Load().value
	h.counter.EndOp(metrics.OpDequeue)
	return v, true
}

// help assists every pending operation with phase at most the caller's —
// the Herlihy helping loop that guarantees wait-freedom at Omega(p) cost.
func (h *Handle) help(phase int64) {
	for i := range h.queue.state {
		h.counter.Read(1)
		desc := h.queue.state[i].Load()
		if desc.pending && desc.phase <= phase {
			if desc.enqueue {
				h.helpEnq(int32(i), phase)
			} else {
				h.helpDeq(int32(i), phase)
			}
		}
	}
}

func (h *Handle) helpEnq(tid int32, phase int64) {
	for h.isStillPending(tid, phase) {
		h.counter.Read(2)
		last := h.queue.tail.Load()
		next := last.next.Load()
		h.counter.Read(1)
		if last != h.queue.tail.Load() {
			continue
		}
		if next != nil {
			h.helpFinishEnq()
			continue
		}
		if !h.isStillPending(tid, phase) {
			return
		}
		h.counter.Read(1)
		node := h.queue.state[tid].Load().node
		if node == nil {
			return
		}
		if ok := last.next.CompareAndSwap(nil, node); ok {
			h.counter.CAS(true)
			h.helpFinishEnq()
			return
		}
		h.counter.CAS(false)
	}
}

func (h *Handle) helpFinishEnq() {
	h.counter.Read(2)
	last := h.queue.tail.Load()
	next := last.next.Load()
	if next == nil {
		return
	}
	tid := next.enqTid
	if tid < 0 {
		// The dummy node is never a pending enqueue's node; just swing tail.
		h.counter.CAS(h.queue.tail.CompareAndSwap(last, next))
		return
	}
	h.counter.Read(2)
	curDesc := h.queue.state[tid].Load()
	if last != h.queue.tail.Load() {
		return
	}
	if curDesc.node == next {
		newDesc := &opDesc{phase: curDesc.phase, pending: false, enqueue: true, node: next}
		h.counter.CAS(h.queue.state[tid].CompareAndSwap(curDesc, newDesc))
	}
	h.counter.CAS(h.queue.tail.CompareAndSwap(last, next))
}

func (h *Handle) helpDeq(tid int32, phase int64) {
	for h.isStillPending(tid, phase) {
		h.counter.Read(3)
		first := h.queue.head.Load()
		last := h.queue.tail.Load()
		next := first.next.Load()
		h.counter.Read(1)
		if first != h.queue.head.Load() {
			continue
		}
		if first == last {
			if next == nil {
				// Queue empty: record a null response.
				h.counter.Read(2)
				curDesc := h.queue.state[tid].Load()
				if last != h.queue.tail.Load() {
					continue
				}
				if !h.isStillPending(tid, phase) {
					return
				}
				newDesc := &opDesc{phase: curDesc.phase, pending: false, enqueue: false, node: nil}
				h.counter.CAS(h.queue.state[tid].CompareAndSwap(curDesc, newDesc))
				continue
			}
			// Tail lagging behind a concurrent enqueue.
			h.helpFinishEnq()
			continue
		}
		h.counter.Read(1)
		curDesc := h.queue.state[tid].Load()
		node := curDesc.node
		if !h.isStillPending(tid, phase) {
			return
		}
		if node != first {
			h.counter.Read(1)
			if first != h.queue.head.Load() {
				continue
			}
			newDesc := &opDesc{phase: curDesc.phase, pending: true, enqueue: false, node: first}
			if ok := h.queue.state[tid].CompareAndSwap(curDesc, newDesc); !ok {
				h.counter.CAS(false)
				continue
			}
			h.counter.CAS(true)
		}
		h.counter.CAS(first.deqTid.CompareAndSwap(-1, tid))
		h.helpFinishDeq()
	}
}

func (h *Handle) helpFinishDeq() {
	h.counter.Read(3)
	first := h.queue.head.Load()
	next := first.next.Load()
	tid := first.deqTid.Load()
	if tid == -1 {
		return
	}
	h.counter.Read(2)
	curDesc := h.queue.state[tid].Load()
	if first != h.queue.head.Load() || next == nil {
		return
	}
	newDesc := &opDesc{phase: curDesc.phase, pending: false, enqueue: false, node: curDesc.node}
	h.counter.CAS(h.queue.state[tid].CompareAndSwap(curDesc, newDesc))
	h.counter.CAS(h.queue.head.CompareAndSwap(first, next))
}
