package kpqueue_test

import (
	"testing"

	"repro/internal/baseline/kpqueue"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
)

func TestConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "kp-queue",
		New:  func(p int) (queues.Queue, error) { return kpqueue.New(p) },
	})
}
