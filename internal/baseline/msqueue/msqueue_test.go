package msqueue_test

import (
	"testing"

	"repro/internal/baseline/msqueue"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
)

func TestConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "ms-queue",
		New:  func(p int) (queues.Queue, error) { return msqueue.New(p) },
	})
}
