// Package msqueue implements the classic Michael-Scott lock-free queue
// (PODC 1996), the baseline the paper positions itself against. It is
// linearizable and lock-free but suffers the CAS retry problem: under p-way
// contention a successful CAS on the tail (or head) can make the other p-1
// processes retry, so amortized step complexity is Theta(p) per operation in
// worst-case executions (paper, Sections 1-2).
package msqueue

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/queues"
)

type node struct {
	value int64
	next  atomic.Pointer[node]
}

// Queue is a Michael-Scott lock-free FIFO queue.
type Queue struct {
	head    atomic.Pointer[node] // points at the dummy node
	tail    atomic.Pointer[node]
	procs   int
	handles []Handle
}

var _ queues.Queue = (*Queue)(nil)

// New creates a queue with procs handles.
func New(procs int) (*Queue, error) {
	if procs < 1 {
		return nil, fmt.Errorf("msqueue: process count must be at least 1 (got %d)", procs)
	}
	dummy := &node{}
	q := &Queue{procs: procs}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	q.handles = make([]Handle, procs)
	for i := range q.handles {
		q.handles[i] = Handle{queue: q}
	}
	return q, nil
}

// Name implements queues.Queue.
func (q *Queue) Name() string { return "ms-queue" }

// Procs implements queues.Queue.
func (q *Queue) Procs() int { return q.procs }

// Handle implements queues.Queue.
func (q *Queue) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("msqueue: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// Handle is one process's instrumented access point.
type Handle struct {
	queue   *Queue
	counter *metrics.Counter
}

var _ queues.Handle = (*Handle)(nil)

// SetCounter implements queues.Handle.
func (h *Handle) SetCounter(c *metrics.Counter) { h.counter = c }

// Enqueue implements queues.Handle (the MS-queue enqueue loop).
func (h *Handle) Enqueue(v int64) {
	h.counter.BeginOp()
	n := &node{value: v}
	for {
		h.counter.Read(2)
		tail := h.queue.tail.Load()
		next := tail.next.Load()
		if next != nil {
			// Tail is lagging; help swing it and retry.
			h.counter.CAS(h.queue.tail.CompareAndSwap(tail, next))
			continue
		}
		if ok := tail.next.CompareAndSwap(nil, n); ok {
			h.counter.CAS(true)
			h.counter.CAS(h.queue.tail.CompareAndSwap(tail, n))
			break
		}
		h.counter.CAS(false)
	}
	h.counter.EndOp(metrics.OpEnqueue)
}

// Dequeue implements queues.Handle (the MS-queue dequeue loop).
func (h *Handle) Dequeue() (int64, bool) {
	for {
		h.counter.BeginOp()
		h.counter.Read(3)
		head := h.queue.head.Load()
		tail := h.queue.tail.Load()
		next := head.next.Load()
		if head == tail {
			if next == nil {
				h.counter.EndOp(metrics.OpNullDequeue)
				return 0, false
			}
			// Tail lagging behind a half-finished enqueue; help.
			h.counter.CAS(h.queue.tail.CompareAndSwap(tail, next))
			continue
		}
		// Read the value before the CAS: after the CAS another dequeuer
		// could recycle the node (Go's GC makes the read safe regardless).
		h.counter.Read(1)
		v := next.value
		if ok := h.queue.head.CompareAndSwap(head, next); ok {
			h.counter.CAS(true)
			h.counter.EndOp(metrics.OpDequeue)
			return v, true
		}
		h.counter.CAS(false)
	}
}
