package faaqueue_test

import (
	"testing"

	"repro/internal/baseline/faaqueue"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
)

func TestConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "faa-seg",
		New:  func(p int) (queues.Queue, error) { return faaqueue.New(p) },
	})
}
