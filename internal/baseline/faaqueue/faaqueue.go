// Package faaqueue implements a segmented fetch&add queue in the LCRQ family
// (Morrison-Afek 2013; the specific shape follows the FAA-array queue of
// Ramalhete and Correia). Operations claim cells with fetch&add on per-segment
// indices; when a segment is exhausted, processes fall back to a CAS on the
// segment list — the slow path where the CAS retry problem reappears, which
// is exactly the behaviour the paper describes for this family (Section 2,
// "Array-Based Queues").
package faaqueue

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/queues"
)

// segSize is the number of cells per segment. Large enough to make the FAA
// fast path dominate, small enough to exercise segment transitions in tests.
const segSize = 256

// taken is the sentinel installed by dequeuers; a poisoned or consumed cell
// points at it.
var taken int64

type segment struct {
	cells  [segSize]atomic.Pointer[int64]
	enqIdx atomic.Int64
	deqIdx atomic.Int64
	next   atomic.Pointer[segment]
}

// Queue is a segmented FAA queue.
type Queue struct {
	head    atomic.Pointer[segment]
	tail    atomic.Pointer[segment]
	procs   int
	handles []Handle
}

var _ queues.Queue = (*Queue)(nil)

// New creates a queue with procs handles.
func New(procs int) (*Queue, error) {
	if procs < 1 {
		return nil, fmt.Errorf("faaqueue: process count must be at least 1 (got %d)", procs)
	}
	seg := &segment{}
	q := &Queue{procs: procs}
	q.head.Store(seg)
	q.tail.Store(seg)
	q.handles = make([]Handle, procs)
	for i := range q.handles {
		q.handles[i] = Handle{queue: q}
	}
	return q, nil
}

// Name implements queues.Queue.
func (q *Queue) Name() string { return "faa-seg" }

// Procs implements queues.Queue.
func (q *Queue) Procs() int { return q.procs }

// Handle implements queues.Queue.
func (q *Queue) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("faaqueue: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// Handle is one process's instrumented access point.
type Handle struct {
	queue   *Queue
	counter *metrics.Counter
}

var _ queues.Handle = (*Handle)(nil)

// SetCounter implements queues.Handle.
func (h *Handle) SetCounter(c *metrics.Counter) { h.counter = c }

// Enqueue implements queues.Handle.
func (h *Handle) Enqueue(v int64) {
	h.counter.BeginOp()
	q := h.queue
	val := &v
	for {
		h.counter.Read(1)
		tail := q.tail.Load()
		// Fetch&add claims a cell; count it as one CAS-class RMW.
		h.counter.CAS(true)
		idx := tail.enqIdx.Add(1) - 1
		if idx >= segSize {
			// Segment full: slow path, append a fresh segment.
			h.counter.Read(1)
			if q.tail.Load() != tail {
				continue
			}
			h.counter.Read(1)
			next := tail.next.Load()
			if next == nil {
				seg := &segment{}
				seg.cells[0].Store(val)
				seg.enqIdx.Store(1)
				if ok := tail.next.CompareAndSwap(nil, seg); ok {
					h.counter.CAS(true)
					h.counter.CAS(q.tail.CompareAndSwap(tail, seg))
					h.counter.EndOp(metrics.OpEnqueue)
					return
				}
				h.counter.CAS(false)
			} else {
				h.counter.CAS(q.tail.CompareAndSwap(tail, next))
			}
			continue
		}
		if ok := tail.cells[idx].CompareAndSwap(nil, val); ok {
			h.counter.CAS(true)
			h.counter.EndOp(metrics.OpEnqueue)
			return
		}
		// Cell was poisoned by a racing dequeuer; try another cell.
		h.counter.CAS(false)
	}
}

// Dequeue implements queues.Handle.
func (h *Handle) Dequeue() (int64, bool) {
	q := h.queue
	h.counter.BeginOp()
	for {
		h.counter.Read(3)
		head := q.head.Load()
		if head.deqIdx.Load() >= head.enqIdx.Load() && head.next.Load() == nil {
			h.counter.EndOp(metrics.OpNullDequeue)
			return 0, false
		}
		h.counter.CAS(true)
		idx := head.deqIdx.Add(1) - 1
		if idx >= segSize {
			// Segment drained: advance to the next one.
			h.counter.Read(1)
			next := head.next.Load()
			if next == nil {
				h.counter.EndOp(metrics.OpNullDequeue)
				return 0, false
			}
			h.counter.CAS(q.head.CompareAndSwap(head, next))
			continue
		}
		h.counter.CAS(true) // the swap below is one RMW
		old := head.cells[idx].Swap(&taken)
		if old != nil && old != &taken {
			h.counter.EndOp(metrics.OpDequeue)
			return *old, true
		}
		// Poisoned an in-flight enqueue's cell; take the next index.
	}
}
