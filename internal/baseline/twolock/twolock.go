// Package twolock implements Michael and Scott's two-lock queue: a linked
// list with a dummy node, one mutex guarding the head and another guarding
// the tail, so an enqueue and a dequeue can run in parallel. It is blocking
// (not lock-free) and serves as a low-tech baseline in the experiments.
package twolock

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/queues"
)

// node.next is atomic: when the queue is empty, head and tail point at the
// same dummy node, so an enqueue's next-write under the tail lock races a
// dequeue's next-read under the head lock. Michael and Scott's algorithm
// assumes that word is read/written atomically; in Go that means
// atomic.Pointer.
type node struct {
	value int64
	next  atomic.Pointer[node]
}

// Queue is a two-lock Michael-Scott queue.
type Queue struct {
	headMu  sync.Mutex
	head    *node // dummy node
	tailMu  sync.Mutex
	tail    *node
	procs   int
	handles []Handle
}

var _ queues.Queue = (*Queue)(nil)

// New creates a queue with procs handles.
func New(procs int) (*Queue, error) {
	if procs < 1 {
		return nil, fmt.Errorf("twolock: process count must be at least 1 (got %d)", procs)
	}
	dummy := &node{}
	q := &Queue{head: dummy, tail: dummy, procs: procs}
	q.handles = make([]Handle, procs)
	for i := range q.handles {
		q.handles[i] = Handle{queue: q}
	}
	return q, nil
}

// Name implements queues.Queue.
func (q *Queue) Name() string { return "two-lock" }

// Procs implements queues.Queue.
func (q *Queue) Procs() int { return q.procs }

// Handle implements queues.Queue.
func (q *Queue) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= q.procs {
		return nil, fmt.Errorf("twolock: handle index %d out of range [0,%d)", i, q.procs)
	}
	return &q.handles[i], nil
}

// Handle is one process's instrumented access point.
type Handle struct {
	queue   *Queue
	counter *metrics.Counter
}

var _ queues.Handle = (*Handle)(nil)

// SetCounter implements queues.Handle.
func (h *Handle) SetCounter(c *metrics.Counter) { h.counter = c }

// Enqueue implements queues.Handle.
func (h *Handle) Enqueue(v int64) {
	h.counter.BeginOp()
	n := &node{value: v}
	q := h.queue
	// A lock acquisition is at least one atomic RMW; charge it as one CAS.
	h.counter.CAS(true)
	q.tailMu.Lock()
	q.tail.next.Store(n)
	q.tail = n
	h.counter.Write()
	h.counter.Write()
	q.tailMu.Unlock()
	h.counter.Write() // unlock release store
	h.counter.EndOp(metrics.OpEnqueue)
}

// Dequeue implements queues.Handle.
func (h *Handle) Dequeue() (int64, bool) {
	h.counter.BeginOp()
	q := h.queue
	h.counter.CAS(true)
	q.headMu.Lock()
	next := q.head.next.Load()
	h.counter.Read(2)
	if next == nil {
		q.headMu.Unlock()
		h.counter.Write()
		h.counter.EndOp(metrics.OpNullDequeue)
		return 0, false
	}
	v := next.value
	q.head = next
	h.counter.Read(1)
	h.counter.Write()
	q.headMu.Unlock()
	h.counter.Write()
	h.counter.EndOp(metrics.OpDequeue)
	return v, true
}
