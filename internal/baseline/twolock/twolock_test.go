package twolock_test

import (
	"testing"

	"repro/internal/baseline/twolock"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
)

func TestConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "two-lock",
		New:  func(p int) (queues.Queue, error) { return twolock.New(p) },
	})
}
