package queues

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// nrQueue adapts core.Queue[int64] (the paper's unbounded-space queue) to
// the Queue interface. The core handle's method set already matches Handle
// semantically; the wrapper only fixes up the interface types.
type nrQueue struct {
	q *core.Queue[int64]
}

var _ Queue = nrQueue{}

// NewNR wraps a fresh unbounded-space NR-queue for procs processes.
func NewNR(procs int) (Queue, error) {
	q, err := core.New[int64](procs)
	if err != nil {
		return nil, err
	}
	return nrQueue{q: q}, nil
}

// Name implements Queue.
func (n nrQueue) Name() string { return "nr-queue" }

// Procs implements Queue.
func (n nrQueue) Procs() int { return n.q.Procs() }

// Handle implements Queue.
func (n nrQueue) Handle(i int) (Handle, error) {
	h, err := n.q.Handle(i)
	if err != nil {
		return nil, err
	}
	return nrHandle{h: h}, nil
}

type nrHandle struct {
	h *core.Handle[int64]
}

var _ BatchHandle = nrHandle{}

// Enqueue implements Handle.
func (n nrHandle) Enqueue(v int64) { n.h.Enqueue(v) }

// EnqueueBatch implements BatchHandle.
func (n nrHandle) EnqueueBatch(vs []int64) { n.h.EnqueueBatch(vs) }

// Dequeue implements Handle.
func (n nrHandle) Dequeue() (int64, bool) { return n.h.Dequeue() }

// DequeueBatch implements BatchHandle.
func (n nrHandle) DequeueBatch(k int) ([]int64, int) { return n.h.DequeueBatch(k) }

// SetCounter implements Handle.
func (n nrHandle) SetCounter(c *metrics.Counter) { n.h.SetCounter(c) }
