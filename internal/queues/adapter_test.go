package queues_test

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
	"repro/internal/shard"
)

func TestNRConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{Name: "nr-queue", New: queues.NewNR})
}

func TestBoundedConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{Name: "nr-bounded", New: queues.NewBounded})
}

func TestBoundedTinyGCConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "nr-bounded-g2",
		New:  func(p int) (queues.Queue, error) { return queues.NewBoundedGC(p, 2) },
	})
}

// TestShardedConformance runs the full FIFO conformance suite against a
// single-shard fabric: at k=1 the cross-shard relaxation vanishes, so the
// fabric must behave exactly like the queue it wraps. (At k>1 the suite's
// global-FIFO sequential model does not apply; the fabric's own relaxed
// semantics are tested in internal/shard.)
func TestShardedConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "sharded-1(core)",
		New:  func(p int) (queues.Queue, error) { return queues.NewSharded(p, 1, shard.BackendCore) },
	})
}

func TestShardedBoundedConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "sharded-1(bounded)",
		New:  func(p int) (queues.Queue, error) { return queues.NewSharded(p, 1, shard.BackendBounded) },
	})
}

// TestShardedResizeConformance runs the full conformance suite while the
// fabric's topology cycles through a k=1 -> k=2 -> k=1 resize schedule
// mid-stream (one step every 512 operations). All handles share home
// shard 0 across the whole schedule, so strict FIFO must hold at every
// epoch — any breakage in the topology swap, handle refresh, or shrink
// migration surfaces as an ordering or conservation failure.
func TestShardedResizeConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "sharded-elastic(core)",
		New: func(p int) (queues.Queue, error) {
			return queues.NewShardedResizing(p, []int{2, 1}, 512, shard.BackendCore)
		},
	})
}

func TestShardedResizeBoundedConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "sharded-elastic(bounded)",
		New: func(p int) (queues.Queue, error) {
			return queues.NewShardedResizing(p, []int{2, 1}, 512, shard.BackendBounded)
		},
	})
}

func TestCounterPassthrough(t *testing.T) {
	// SetCounter must thread through every adapter so step accounting works.
	for _, f := range []queues.Factory{
		{Name: "nr-queue", New: queues.NewNR},
		{Name: "nr-bounded", New: queues.NewBounded},
		{Name: "sharded", New: func(p int) (queues.Queue, error) {
			return queues.NewSharded(p, 4, shard.BackendCore)
		}},
	} {
		q, err := f.New(2)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		h, err := q.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		c := &metrics.Counter{}
		h.SetCounter(c)
		h.Enqueue(1)
		if _, ok := h.Dequeue(); !ok {
			t.Fatalf("%s: dequeue failed", f.Name)
		}
		if c.TotalOps() != 2 || c.TotalSteps() == 0 {
			t.Errorf("%s: counter not threaded: ops=%d steps=%d", f.Name, c.TotalOps(), c.TotalSteps())
		}
	}
}

func TestQueueNames(t *testing.T) {
	nr, _ := queues.NewNR(1)
	if nr.Name() != "nr-queue" {
		t.Errorf("Name = %q", nr.Name())
	}
	b, _ := queues.NewBounded(1)
	if b.Name() != "nr-bounded" {
		t.Errorf("Name = %q", b.Name())
	}
	s, _ := queues.NewSharded(1, 8, shard.BackendCore)
	if s.Name() != "sharded-8(core)" {
		t.Errorf("Name = %q", s.Name())
	}
}
