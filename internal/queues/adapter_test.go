package queues_test

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
)

func TestNRConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{Name: "nr-queue", New: queues.NewNR})
}

func TestBoundedConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{Name: "nr-bounded", New: queues.NewBounded})
}

func TestBoundedTinyGCConformance(t *testing.T) {
	queuetest.Run(t, queues.Factory{
		Name: "nr-bounded-g2",
		New:  func(p int) (queues.Queue, error) { return queues.NewBoundedGC(p, 2) },
	})
}

func TestCounterPassthrough(t *testing.T) {
	// SetCounter must thread through every adapter so step accounting works.
	for _, f := range []queues.Factory{
		{Name: "nr-queue", New: queues.NewNR},
		{Name: "nr-bounded", New: queues.NewBounded},
	} {
		q, err := f.New(2)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		h, err := q.Handle(0)
		if err != nil {
			t.Fatal(err)
		}
		c := &metrics.Counter{}
		h.SetCounter(c)
		h.Enqueue(1)
		if _, ok := h.Dequeue(); !ok {
			t.Fatalf("%s: dequeue failed", f.Name)
		}
		if c.TotalOps() != 2 || c.TotalSteps() == 0 {
			t.Errorf("%s: counter not threaded: ops=%d steps=%d", f.Name, c.TotalOps(), c.TotalSteps())
		}
	}
}

func TestQueueNames(t *testing.T) {
	nr, _ := queues.NewNR(1)
	if nr.Name() != "nr-queue" {
		t.Errorf("Name = %q", nr.Name())
	}
	b, _ := queues.NewBounded(1)
	if b.Name() != "nr-bounded" {
		t.Errorf("Name = %q", b.Name())
	}
}
