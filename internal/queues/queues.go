// Package queues defines the common interface every queue implementation in
// this repository satisfies, so benchmarks, stress tests and the
// linearizability checker can treat the paper's queue and all baselines
// uniformly.
//
// The interface mirrors the paper's model: a fixed set of p processes, each
// operating through its own handle. Implementations that do not need
// per-process state (e.g. the mutex queue) still hand out handles so that
// step accounting is attributed per process.
package queues

import "repro/internal/metrics"

// Queue is a multi-producer multi-consumer FIFO queue of int64 values
// accessed through per-process handles.
type Queue interface {
	// Name identifies the implementation in reports.
	Name() string
	// Procs returns the number of handles the queue was created with.
	Procs() int
	// Handle returns the handle for process i, 0 <= i < Procs(). Each handle
	// may be used by one goroutine at a time.
	Handle(i int) (Handle, error)
}

// Handle is one process's access point to a queue.
type Handle interface {
	// Enqueue adds v to the back of the queue.
	Enqueue(v int64)
	// Dequeue removes the front element. ok is false if the queue was
	// empty at the operation's linearization point.
	Dequeue() (v int64, ok bool)
	// SetCounter attaches a step/CAS counter (nil disables accounting).
	// Implementations count shared-memory operations per the paper's cost
	// model; coarse-grained baselines count lock acquisitions as single
	// steps plus their memory traffic.
	SetCounter(c *metrics.Counter)
}

// BatchHandle is the optional batch extension of Handle: implementations
// whose leaf blocks can carry several operations (the paper's queue and
// everything layered on it) expose it; coarse-grained baselines need not.
// Callers discover support with a type assertion.
type BatchHandle interface {
	Handle
	// EnqueueBatch adds all of vs to the queue as one multi-op block,
	// linearized consecutively in slice order.
	EnqueueBatch(vs []int64)
	// DequeueBatch removes up to n elements in one multi-op block,
	// returning them in FIFO order with their count; a short count means
	// the queue was empty when the batch's remaining dequeues took effect.
	DequeueBatch(n int) ([]int64, int)
}

// Factory constructs a queue for a given process count.
type Factory struct {
	Name string
	New  func(procs int) (Queue, error)
}
