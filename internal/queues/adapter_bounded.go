package queues

import (
	"repro/internal/bounded"
	"repro/internal/metrics"
)

// boundedQueue adapts bounded.Queue[int64] (the space-bounded variant of the
// paper's queue, Section 6) to the Queue interface.
type boundedQueue struct {
	q *bounded.Queue[int64]
}

var _ Queue = boundedQueue{}

// NewBounded wraps a fresh bounded-space NR-queue for procs processes with
// the paper's default GC interval.
func NewBounded(procs int) (Queue, error) {
	q, err := bounded.New[int64](procs)
	if err != nil {
		return nil, err
	}
	return boundedQueue{q: q}, nil
}

// NewBoundedGC wraps a bounded-space NR-queue with an explicit GC interval,
// used by tests and space experiments.
func NewBoundedGC(procs int, gcInterval int64) (Queue, error) {
	q, err := bounded.New[int64](procs, bounded.WithGCInterval(gcInterval))
	if err != nil {
		return nil, err
	}
	return boundedQueue{q: q}, nil
}

// Name implements Queue.
func (b boundedQueue) Name() string { return "nr-bounded" }

// Procs implements Queue.
func (b boundedQueue) Procs() int { return b.q.Procs() }

// Handle implements Queue.
func (b boundedQueue) Handle(i int) (Handle, error) {
	h, err := b.q.Handle(i)
	if err != nil {
		return nil, err
	}
	return boundedHandle{h: h}, nil
}

// Unwrap exposes the underlying bounded queue for space diagnostics.
func (b boundedQueue) Unwrap() *bounded.Queue[int64] { return b.q }

type boundedHandle struct {
	h *bounded.Handle[int64]
}

var _ BatchHandle = boundedHandle{}

// Enqueue implements Handle.
func (b boundedHandle) Enqueue(v int64) { b.h.Enqueue(v) }

// EnqueueBatch implements BatchHandle.
func (b boundedHandle) EnqueueBatch(vs []int64) { b.h.EnqueueBatch(vs) }

// Dequeue implements Handle.
func (b boundedHandle) Dequeue() (int64, bool) { return b.h.Dequeue() }

// DequeueBatch implements BatchHandle.
func (b boundedHandle) DequeueBatch(n int) ([]int64, int) { return b.h.DequeueBatch(n) }

// SetCounter implements Handle.
func (b boundedHandle) SetCounter(c *metrics.Counter) { b.h.SetCounter(c) }
