package queues

import (
	"fmt"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/shard"
)

// shardedQueue adapts shard.Queue[int64] (the sharded fabric) to the Queue
// interface. The fabric's registry is dynamic, but the harness model is a
// fixed set of numbered processes, so the adapter pre-leases every slot at
// construction and hands out lease i as Handle(i).
//
// Note the fabric relaxes cross-shard FIFO order: it must not be run through
// checks that assume a single linearizable FIFO (lincheck, queuetest's
// ordering tests) except with a single shard, where the relaxation vanishes.
type shardedQueue struct {
	q       *shard.Queue[int64]
	handles []*shard.Handle[int64]
	name    string
}

var _ Queue = (*shardedQueue)(nil)

// NewSharded wraps a sharded fabric of the given shard count and backend
// with exactly procs leasable handles, all pre-leased for harness use.
// Extra fabric options (e.g. shard.WithPairing(false)) are appended after
// the adapter's own.
func NewSharded(procs, shards int, backend shard.Backend, opts ...shard.Option) (Queue, error) {
	q, err := shard.New[int64](shards,
		append([]shard.Option{
			shard.WithBackend(backend),
			shard.WithMaxHandles(procs),
		}, opts...)...)
	if err != nil {
		return nil, err
	}
	s := &shardedQueue{
		q:       q,
		handles: make([]*shard.Handle[int64], procs),
		name:    fmt.Sprintf("sharded-%d(%s)", shards, backend),
	}
	for range s.handles {
		h, err := q.Acquire()
		if err != nil {
			return nil, err
		}
		// The registry leases lowest slots first, so lease i is slot i.
		s.handles[h.Slot()] = h
	}
	return s, nil
}

// Name implements Queue.
func (s *shardedQueue) Name() string { return s.name }

// Procs implements Queue.
func (s *shardedQueue) Procs() int { return len(s.handles) }

// Handle implements Queue.
func (s *shardedQueue) Handle(i int) (Handle, error) {
	if i < 0 || i >= len(s.handles) {
		return nil, fmt.Errorf("sharded: handle index %d out of range [0,%d)", i, len(s.handles))
	}
	return shardedHandle{h: s.handles[i]}, nil
}

// Unwrap exposes the underlying fabric for shard-level diagnostics.
func (s *shardedQueue) Unwrap() *shard.Queue[int64] { return s.q }

type shardedHandle struct {
	h *shard.Handle[int64]
}

var _ BatchHandle = shardedHandle{}

// Enqueue implements Handle. The adapter never closes the fabric, so an
// ErrClosed here is an invariant violation, not an expected condition.
func (s shardedHandle) Enqueue(v int64) {
	if err := s.h.Enqueue(v); err != nil {
		panic(fmt.Sprintf("sharded adapter: %v", err))
	}
}

// EnqueueBatch implements BatchHandle.
func (s shardedHandle) EnqueueBatch(vs []int64) {
	if err := s.h.EnqueueBatch(vs); err != nil {
		panic(fmt.Sprintf("sharded adapter: %v", err))
	}
}

// Dequeue implements Handle.
func (s shardedHandle) Dequeue() (int64, bool) { return s.h.Dequeue() }

// DequeueBatch implements BatchHandle.
func (s shardedHandle) DequeueBatch(n int) ([]int64, int) { return s.h.DequeueBatch(n) }

// SetCounter implements Handle.
func (s shardedHandle) SetCounter(c *metrics.Counter) { s.h.SetCounter(c) }

// resizeDriver replays a shard-count schedule against a fabric as the
// harness operates on it: every `every` completed operations, the next
// schedule entry is applied with Resize (cycling). It makes the epoch
// swap machinery part of every conformance check instead of a dedicated
// test's concern.
type resizeDriver struct {
	q        *shard.Queue[int64]
	schedule []int
	every    int64
	ops      atomic.Int64
	next     atomic.Int64
}

func (d *resizeDriver) tick() {
	if d.ops.Add(1)%d.every != 0 {
		return
	}
	i := int((d.next.Add(1) - 1) % int64(len(d.schedule)))
	if err := d.q.Resize(d.schedule[i]); err != nil {
		panic(fmt.Sprintf("sharded adapter: resize to %d: %v", d.schedule[i], err))
	}
}

// resizingQueue is shardedQueue plus a resize schedule woven through the
// operation stream.
type resizingQueue struct {
	*shardedQueue
	d *resizeDriver
}

// NewShardedResizing wraps a single-shard fabric whose topology is driven
// through schedule (shard counts, cycled) every `every` operations while
// the suite runs. All handles are pre-leased on the 1-shard fabric, so
// they share home shard 0 and keep it across every grow (homes are stable
// until their shard is retired) — the fabric must therefore behave
// exactly like a strict FIFO queue at every point of the schedule, which
// lets the full conformance suite (sequential models included) run across
// live resizes.
func NewShardedResizing(procs int, schedule []int, every int64, backend shard.Backend) (Queue, error) {
	if len(schedule) == 0 || every < 1 {
		return nil, fmt.Errorf("sharded: resize schedule must be nonempty with every >= 1")
	}
	// Elimination pairs linearize at the hand-off, which is sound for the
	// fabric's relaxed cross-shard order but not for the strict sequential
	// FIFO this adapter certifies against (a racing enqueue can reach a
	// root between the emptiness check and the hand-off), so it is off here.
	q, err := NewSharded(procs, 1, backend, shard.WithPairing(false))
	if err != nil {
		return nil, err
	}
	sq := q.(*shardedQueue)
	sq.name = fmt.Sprintf("sharded-elastic(%s)", backend)
	return &resizingQueue{
		shardedQueue: sq,
		d:            &resizeDriver{q: sq.q, schedule: schedule, every: every},
	}, nil
}

// Handle implements Queue, wrapping each operation with the schedule tick.
func (r *resizingQueue) Handle(i int) (Handle, error) {
	h, err := r.shardedQueue.Handle(i)
	if err != nil {
		return nil, err
	}
	return resizingHandle{h: h.(shardedHandle), d: r.d}, nil
}

type resizingHandle struct {
	h shardedHandle
	d *resizeDriver
}

var _ BatchHandle = resizingHandle{}

// The tick runs after the wrapped operation completes, so a triggered
// Resize (and its grace wait) never overlaps this handle's own in-flight
// operation.
func (r resizingHandle) Enqueue(v int64)         { r.h.Enqueue(v); r.d.tick() }
func (r resizingHandle) EnqueueBatch(vs []int64) { r.h.EnqueueBatch(vs); r.d.tick() }
func (r resizingHandle) Dequeue() (int64, bool)  { v, ok := r.h.Dequeue(); r.d.tick(); return v, ok }
func (r resizingHandle) DequeueBatch(n int) ([]int64, int) {
	vs, got := r.h.DequeueBatch(n)
	r.d.tick()
	return vs, got
}
func (r resizingHandle) SetCounter(c *metrics.Counter) { r.h.SetCounter(c) }
