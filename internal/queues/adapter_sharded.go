package queues

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/shard"
)

// shardedQueue adapts shard.Queue[int64] (the sharded fabric) to the Queue
// interface. The fabric's registry is dynamic, but the harness model is a
// fixed set of numbered processes, so the adapter pre-leases every slot at
// construction and hands out lease i as Handle(i).
//
// Note the fabric relaxes cross-shard FIFO order: it must not be run through
// checks that assume a single linearizable FIFO (lincheck, queuetest's
// ordering tests) except with a single shard, where the relaxation vanishes.
type shardedQueue struct {
	q       *shard.Queue[int64]
	handles []*shard.Handle[int64]
	name    string
}

var _ Queue = (*shardedQueue)(nil)

// NewSharded wraps a sharded fabric of the given shard count and backend
// with exactly procs leasable handles, all pre-leased for harness use.
func NewSharded(procs, shards int, backend shard.Backend) (Queue, error) {
	q, err := shard.New[int64](shards,
		shard.WithBackend(backend),
		shard.WithMaxHandles(procs))
	if err != nil {
		return nil, err
	}
	s := &shardedQueue{
		q:       q,
		handles: make([]*shard.Handle[int64], procs),
		name:    fmt.Sprintf("sharded-%d(%s)", shards, backend),
	}
	for range s.handles {
		h, err := q.Acquire()
		if err != nil {
			return nil, err
		}
		// The registry leases lowest slots first, so lease i is slot i.
		s.handles[h.Slot()] = h
	}
	return s, nil
}

// Name implements Queue.
func (s *shardedQueue) Name() string { return s.name }

// Procs implements Queue.
func (s *shardedQueue) Procs() int { return len(s.handles) }

// Handle implements Queue.
func (s *shardedQueue) Handle(i int) (Handle, error) {
	if i < 0 || i >= len(s.handles) {
		return nil, fmt.Errorf("sharded: handle index %d out of range [0,%d)", i, len(s.handles))
	}
	return shardedHandle{h: s.handles[i]}, nil
}

// Unwrap exposes the underlying fabric for shard-level diagnostics.
func (s *shardedQueue) Unwrap() *shard.Queue[int64] { return s.q }

type shardedHandle struct {
	h *shard.Handle[int64]
}

var _ BatchHandle = shardedHandle{}

// Enqueue implements Handle. The adapter never closes the fabric, so an
// ErrClosed here is an invariant violation, not an expected condition.
func (s shardedHandle) Enqueue(v int64) {
	if err := s.h.Enqueue(v); err != nil {
		panic(fmt.Sprintf("sharded adapter: %v", err))
	}
}

// EnqueueBatch implements BatchHandle.
func (s shardedHandle) EnqueueBatch(vs []int64) {
	if err := s.h.EnqueueBatch(vs); err != nil {
		panic(fmt.Sprintf("sharded adapter: %v", err))
	}
}

// Dequeue implements Handle.
func (s shardedHandle) Dequeue() (int64, bool) { return s.h.Dequeue() }

// DequeueBatch implements BatchHandle.
func (s shardedHandle) DequeueBatch(n int) ([]int64, int) { return s.h.DequeueBatch(n) }

// SetCounter implements Handle.
func (s shardedHandle) SetCounter(c *metrics.Counter) { s.h.SetCounter(c) }
