// Package queuetest provides a reusable conformance suite run against every
// queue implementation in this repository (the paper's queue and all
// baselines), so semantic checks are written once and applied uniformly.
package queuetest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/queues"
)

// Run executes the full conformance suite against queues built by factory.
func Run(t *testing.T, factory queues.Factory) {
	t.Helper()
	t.Run("EmptyDequeue", func(t *testing.T) { testEmptyDequeue(t, factory) })
	t.Run("FIFOSingleProc", func(t *testing.T) { testFIFOSingleProc(t, factory) })
	t.Run("SequentialModel", func(t *testing.T) { testSequentialModel(t, factory) })
	t.Run("ConcurrentMultiset", func(t *testing.T) { testConcurrentMultiset(t, factory) })
	t.Run("ProducerConsumerFIFO", func(t *testing.T) { testProducerConsumerFIFO(t, factory) })
	t.Run("BadProcs", func(t *testing.T) { testBadProcs(t, factory) })
	t.Run("BadHandle", func(t *testing.T) { testBadHandle(t, factory) })
	// Batch/single interleaving checks; skipped for implementations whose
	// handles lack the optional queues.BatchHandle extension.
	runBatch(t, factory)
}

func mustQueue(t *testing.T, factory queues.Factory, procs int) queues.Queue {
	t.Helper()
	q, err := factory.New(procs)
	if err != nil {
		t.Fatalf("%s: New(%d): %v", factory.Name, procs, err)
	}
	return q
}

func mustHandle(t *testing.T, q queues.Queue, i int) queues.Handle {
	t.Helper()
	h, err := q.Handle(i)
	if err != nil {
		t.Fatalf("Handle(%d): %v", i, err)
	}
	return h
}

func testEmptyDequeue(t *testing.T, factory queues.Factory) {
	q := mustQueue(t, factory, 2)
	h := mustHandle(t, q, 0)
	for i := 0; i < 3; i++ {
		if v, ok := h.Dequeue(); ok {
			t.Fatalf("Dequeue on empty queue returned (%d, true)", v)
		}
	}
}

func testFIFOSingleProc(t *testing.T, factory queues.Factory) {
	q := mustQueue(t, factory, 1)
	h := mustHandle(t, q, 0)
	const n = 500
	for i := int64(0); i < n; i++ {
		h.Enqueue(i)
	}
	for i := int64(0); i < n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("queue not empty after drain")
	}
}

func testSequentialModel(t *testing.T, factory queues.Factory) {
	for _, procs := range []int{1, 2, 5, 8} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			q := mustQueue(t, factory, procs)
			handles := make([]queues.Handle, procs)
			for i := range handles {
				handles[i] = mustHandle(t, q, i)
			}
			var model []int64
			rng := rand.New(rand.NewSource(42 + int64(procs)))
			next := int64(0)
			for step := 0; step < 4000; step++ {
				h := handles[rng.Intn(procs)]
				if rng.Intn(2) == 0 {
					h.Enqueue(next)
					model = append(model, next)
					next++
					continue
				}
				got, gotOK := h.Dequeue()
				var want int64
				wantOK := len(model) > 0
				if wantOK {
					want, model = model[0], model[1:]
				}
				if gotOK != wantOK || (gotOK && got != want) {
					t.Fatalf("step %d: Dequeue = (%d, %v), model = (%d, %v)",
						step, got, gotOK, want, wantOK)
				}
			}
		})
	}
}

func testConcurrentMultiset(t *testing.T, factory queues.Factory) {
	const procs = 8
	const perHandle = 3000
	q := mustQueue(t, factory, procs)
	var wg sync.WaitGroup
	got := make([][]int64, procs)
	for i := 0; i < procs; i++ {
		h := mustHandle(t, q, i)
		wg.Add(1)
		go func(i int, h queues.Handle) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			enq := int64(0)
			for enq < perHandle {
				if rng.Intn(2) == 0 {
					h.Enqueue(int64(i)*1_000_000 + enq)
					enq++
				} else if v, ok := h.Dequeue(); ok {
					got[i] = append(got[i], v)
				}
			}
		}(i, h)
	}
	wg.Wait()
	h := mustHandle(t, q, 0)
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		got[0] = append(got[0], v)
	}
	seen := make(map[int64]bool, procs*perHandle)
	for _, vs := range got {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != procs*perHandle {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), procs*perHandle)
	}
}

func testProducerConsumerFIFO(t *testing.T, factory queues.Factory) {
	const producers, consumers = 4, 4
	const perProducer = 3000
	q := mustQueue(t, factory, producers+consumers)
	var wg sync.WaitGroup
	var consumed sync.Map // value -> consumer
	results := make([][]int64, consumers)
	var remaining sync.WaitGroup
	remaining.Add(producers * perProducer)

	for i := 0; i < producers; i++ {
		h := mustHandle(t, q, i)
		wg.Add(1)
		go func(i int, h queues.Handle) {
			defer wg.Done()
			for s := int64(0); s < perProducer; s++ {
				h.Enqueue(int64(i)*1_000_000 + s)
			}
		}(i, h)
	}
	done := make(chan struct{})
	go func() {
		remaining.Wait()
		close(done)
	}()
	for c := 0; c < consumers; c++ {
		h := mustHandle(t, q, producers+c)
		wg.Add(1)
		go func(c int, h queues.Handle) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok := h.Dequeue(); ok {
					results[c] = append(results[c], v)
					if _, dup := consumed.LoadOrStore(v, c); dup {
						t.Errorf("value %d consumed twice", v)
						return
					}
					remaining.Done()
				}
			}
		}(c, h)
	}
	wg.Wait()

	// Per-producer order must be preserved within each consumer (a FIFO
	// queue property that holds for any linearizable implementation).
	for c := 0; c < consumers; c++ {
		last := map[int64]int64{}
		for _, v := range results[c] {
			prod, seq := v/1_000_000, v%1_000_000
			if prevSeq, ok := last[prod]; ok && seq < prevSeq {
				t.Fatalf("consumer %d: producer %d out of order (%d after %d)", c, prod, seq, prevSeq)
			}
			last[prod] = seq
		}
	}
	total := 0
	for c := range results {
		total += len(results[c])
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d values, want %d", total, producers*perProducer)
	}
}

func testBadProcs(t *testing.T, factory queues.Factory) {
	for _, procs := range []int{0, -1} {
		if _, err := factory.New(procs); err == nil {
			t.Errorf("New(%d) succeeded, want error", procs)
		}
	}
}

func testBadHandle(t *testing.T, factory queues.Factory) {
	q := mustQueue(t, factory, 2)
	for _, i := range []int{-1, 2, 99} {
		if _, err := q.Handle(i); err == nil {
			t.Errorf("Handle(%d) succeeded, want error", i)
		}
	}
}
