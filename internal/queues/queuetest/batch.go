package queuetest

// Batch/single interleaving conformance: these tests run against every
// implementation whose handles expose the optional queues.BatchHandle
// extension (the paper's queue, its bounded variant, the sharded fabric,
// and the network service over loopback) and are skipped for baselines
// that only implement single operations.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/queues"
)

// runBatch executes the batch conformance subtests; Run wires it in.
func runBatch(t *testing.T, factory queues.Factory) {
	t.Helper()
	t.Run("BatchUnsupportedOrSupported", func(t *testing.T) { testBatchSupport(t, factory) })
	t.Run("BatchThenSingles", func(t *testing.T) { testBatchThenSingles(t, factory) })
	t.Run("SinglesThenBatch", func(t *testing.T) { testSinglesThenBatch(t, factory) })
	t.Run("BatchSequentialModel", func(t *testing.T) { testBatchSequentialModel(t, factory) })
	t.Run("BatchChurnConservation", func(t *testing.T) { testBatchChurnConservation(t, factory) })
}

// mustBatchHandle skips the test when the implementation has no batch
// support; otherwise it returns the batch surface of handle i.
func mustBatchHandle(t *testing.T, q queues.Queue, i int) queues.BatchHandle {
	t.Helper()
	h := mustHandle(t, q, i)
	bh, ok := h.(queues.BatchHandle)
	if !ok {
		t.Skipf("%s: handles do not implement queues.BatchHandle", q.Name())
	}
	return bh
}

// testBatchSupport only documents which side of the skip we are on, so a
// suite run shows batch coverage explicitly.
func testBatchSupport(t *testing.T, factory queues.Factory) {
	q := mustQueue(t, factory, 1)
	mustBatchHandle(t, q, 0)
}

// testBatchThenSingles: batch enqueue, then single dequeues must see the
// batch's elements in slice order before anything enqueued later.
func testBatchThenSingles(t *testing.T, factory queues.Factory) {
	q := mustQueue(t, factory, 1)
	h := mustBatchHandle(t, q, 0)
	h.EnqueueBatch([]int64{10, 11, 12, 13})
	h.Enqueue(14)
	for want := int64(10); want <= 14; want++ {
		v, ok := h.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want %d", v, ok, want)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("queue not empty after drain")
	}
}

// testSinglesThenBatch: single enqueues, then one batch dequeue returns
// them all in order; an oversized batch dequeue reports the short count.
func testSinglesThenBatch(t *testing.T, factory queues.Factory) {
	q := mustQueue(t, factory, 1)
	h := mustBatchHandle(t, q, 0)
	const n = 6
	for i := int64(0); i < n; i++ {
		h.Enqueue(i)
	}
	vs, got := h.DequeueBatch(n + 3)
	if got != n || len(vs) != n {
		t.Fatalf("DequeueBatch(%d) = (%v,%d), want %d values", n+3, vs, got, n)
	}
	for i, v := range vs {
		if v != int64(i) {
			t.Fatalf("vs[%d] = %d, want %d", i, v, i)
		}
	}
	if vs, got := h.DequeueBatch(4); got != 0 || len(vs) != 0 {
		t.Fatalf("DequeueBatch on empty = (%v,%d)", vs, got)
	}
}

// testBatchSequentialModel interleaves batch and single operations randomly
// against a model FIFO on a single handle and on several handles in turn.
func testBatchSequentialModel(t *testing.T, factory queues.Factory) {
	for _, procs := range []int{1, 3} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			q := mustQueue(t, factory, procs)
			handles := make([]queues.BatchHandle, procs)
			for i := range handles {
				handles[i] = mustBatchHandle(t, q, i)
			}
			var model []int64
			rng := rand.New(rand.NewSource(1234 + int64(procs)))
			next := int64(0)
			for step := 0; step < 1500; step++ {
				h := handles[rng.Intn(procs)]
				m := 1 + rng.Intn(5)
				switch rng.Intn(4) {
				case 0: // batch enqueue
					es := make([]int64, m)
					for i := range es {
						es[i] = next
						next++
					}
					h.EnqueueBatch(es)
					model = append(model, es...)
				case 1: // single enqueue
					h.Enqueue(next)
					model = append(model, next)
					next++
				case 2: // batch dequeue
					vs, got := h.DequeueBatch(m)
					want := m
					if len(model) < want {
						want = len(model)
					}
					if got != want {
						t.Fatalf("step %d: DequeueBatch(%d) count = %d, model has %d", step, m, got, len(model))
					}
					for i := 0; i < got; i++ {
						if vs[i] != model[i] {
							t.Fatalf("step %d: vs[%d] = %d, model %d", step, i, vs[i], model[i])
						}
					}
					model = model[got:]
				default: // single dequeue
					got, gotOK := h.Dequeue()
					wantOK := len(model) > 0
					var want int64
					if wantOK {
						want, model = model[0], model[1:]
					}
					if gotOK != wantOK || (gotOK && got != want) {
						t.Fatalf("step %d: Dequeue = (%d,%v), model (%d,%v)", step, got, gotOK, want, wantOK)
					}
				}
			}
		})
	}
}

// testBatchChurnConservation mixes concurrent batch producers and batch
// consumers (each goroutine doing both, plus a final drain) and verifies
// exact conservation and per-producer FIFO — the invariants that must
// survive any interleaving of batch and single operations. Run with -race
// in CI.
func testBatchChurnConservation(t *testing.T, factory queues.Factory) {
	const procs = 6
	const perProc = 600
	q := mustQueue(t, factory, procs)
	// Probe for support before spawning goroutines (Skip inside a goroutine
	// is illegal).
	mustBatchHandle(t, q, 0)
	got := make([][]int64, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		h := mustBatchHandle(t, q, p)
		wg.Add(1)
		go func(p int, h queues.BatchHandle) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 999))
			enq := int64(0)
			for enq < perProc {
				m := 1 + rng.Intn(6)
				switch rng.Intn(4) {
				case 0:
					es := make([]int64, 0, m)
					for i := 0; i < m && enq < perProc; i++ {
						es = append(es, int64(p)*1_000_000+enq)
						enq++
					}
					h.EnqueueBatch(es)
				case 1:
					h.Enqueue(int64(p)*1_000_000 + enq)
					enq++
				case 2:
					vs, _ := h.DequeueBatch(m)
					got[p] = append(got[p], vs...)
				default:
					if v, ok := h.Dequeue(); ok {
						got[p] = append(got[p], v)
					}
				}
			}
		}(p, h)
	}
	wg.Wait()
	h := mustBatchHandle(t, q, 0)
	for {
		vs, n := h.DequeueBatch(32)
		if n == 0 {
			break
		}
		got[0] = append(got[0], vs...)
	}
	seen := make(map[int64]bool, procs*perProc)
	for c, vs := range got {
		last := map[int64]int64{}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			prod, seq := v/1_000_000, v%1_000_000
			if prev, ok := last[prod]; ok && seq < prev {
				t.Fatalf("consumer %d: producer %d out of order (%d after %d)", c, prod, seq, prev)
			}
			last[prod] = seq
		}
	}
	if len(seen) != procs*perProc {
		t.Fatalf("dequeued %d distinct values, want %d", len(seen), procs*perProc)
	}
}
