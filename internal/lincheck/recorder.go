package lincheck

import (
	"sync/atomic"

	"repro/internal/queues"
)

// Recorder collects a concurrent history with a shared logical clock. Each
// process records into its own slice, so recording adds no synchronization
// beyond the clock increments that define the happens-before order being
// checked.
type Recorder struct {
	clock atomic.Int64
	procs [][]Event
}

// NewRecorder creates a recorder for procs processes.
func NewRecorder(procs int) *Recorder {
	return &Recorder{procs: make([][]Event, procs)}
}

// now advances and returns the logical clock.
func (r *Recorder) now() int64 { return r.clock.Add(1) }

// Wrap returns a queues.Handle that forwards to h and records every
// operation as process proc. The wrapped handle, like the underlying one,
// must be used by a single goroutine.
func (r *Recorder) Wrap(h queues.Handle, proc int) queues.Handle {
	return &recordingHandle{Handle: h, rec: r, proc: proc}
}

// Events returns all recorded events. Call only after the goroutines using
// wrapped handles have been joined.
func (r *Recorder) Events() []Event {
	var out []Event
	for _, evs := range r.procs {
		out = append(out, evs...)
	}
	return out
}

type recordingHandle struct {
	queues.Handle
	rec  *Recorder
	proc int
}

// Enqueue implements queues.Handle, recording the operation's interval.
func (h *recordingHandle) Enqueue(v int64) {
	start := h.rec.now()
	h.Handle.Enqueue(v)
	end := h.rec.now()
	h.rec.procs[h.proc] = append(h.rec.procs[h.proc], Event{
		Proc: h.proc, Kind: KindEnqueue, Value: v, Start: start, End: end,
	})
}

// Dequeue implements queues.Handle, recording the operation's interval.
func (h *recordingHandle) Dequeue() (int64, bool) {
	start := h.rec.now()
	v, ok := h.Handle.Dequeue()
	end := h.rec.now()
	h.rec.procs[h.proc] = append(h.rec.procs[h.proc], Event{
		Proc: h.proc, Kind: KindDequeue, Value: v, OK: ok, Start: start, End: end,
	})
	return v, ok
}
