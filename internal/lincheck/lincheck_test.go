package lincheck

import (
	"math/rand"
	"testing"
)

// enq/deq helpers build events tersely.
func enq(proc int, v, start, end int64) Event {
	return Event{Proc: proc, Kind: KindEnqueue, Value: v, Start: start, End: end}
}

func deq(proc int, v, start, end int64) Event {
	return Event{Proc: proc, Kind: KindDequeue, Value: v, OK: true, Start: start, End: end}
}

func deqEmpty(proc int, start, end int64) Event {
	return Event{Proc: proc, Kind: KindDequeue, OK: false, Start: start, End: end}
}

func hasPattern(vs []Violation, pattern string) bool {
	for _, v := range vs {
		if v.Pattern == pattern {
			return true
		}
	}
	return false
}

func TestCheckCleanSequentialHistory(t *testing.T) {
	events := []Event{
		enq(0, 1, 1, 2),
		enq(0, 2, 3, 4),
		deq(1, 1, 5, 6),
		deq(1, 2, 7, 8),
		deqEmpty(1, 9, 10),
	}
	if vs := Check(events); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
	if !CheckExhaustive(events) {
		t.Fatal("exhaustive checker rejected clean history")
	}
}

func TestCheckPhantomDequeue(t *testing.T) {
	events := []Event{deq(0, 99, 1, 2)}
	if vs := Check(events); !hasPattern(vs, "phantom-dequeue") {
		t.Fatalf("phantom dequeue not flagged: %v", vs)
	}
}

func TestCheckDuplicateDequeue(t *testing.T) {
	events := []Event{
		enq(0, 7, 1, 2),
		deq(1, 7, 3, 4),
		deq(2, 7, 5, 6),
	}
	if vs := Check(events); !hasPattern(vs, "duplicate-dequeue") {
		t.Fatalf("duplicate dequeue not flagged: %v", vs)
	}
}

func TestCheckFutureRead(t *testing.T) {
	events := []Event{
		deq(1, 5, 1, 2),
		enq(0, 5, 3, 4),
	}
	if vs := Check(events); !hasPattern(vs, "future-read") {
		t.Fatalf("future read not flagged: %v", vs)
	}
	if CheckExhaustive(events) {
		t.Fatal("exhaustive checker accepted future read")
	}
}

func TestCheckFIFOInversion(t *testing.T) {
	// a enqueued strictly before b, but b dequeued strictly before a.
	events := []Event{
		enq(0, 1, 1, 2), // a
		enq(0, 2, 3, 4), // b
		deq(1, 2, 5, 6), // deq(b) completes...
		deq(1, 1, 7, 8), // ...before deq(a) begins
	}
	if vs := Check(events); !hasPattern(vs, "fifo-inversion") {
		t.Fatalf("FIFO inversion not flagged: %v", vs)
	}
	if CheckExhaustive(events) {
		t.Fatal("exhaustive checker accepted FIFO inversion")
	}
}

func TestCheckFIFOInversionNotFlaggedWhenConcurrent(t *testing.T) {
	// Concurrent enqueues may linearize in either order: no violation.
	events := []Event{
		enq(0, 1, 1, 5),
		enq(1, 2, 2, 6),
		deq(2, 2, 7, 8),
		deq(2, 1, 9, 10),
	}
	if vs := Check(events); len(vs) != 0 {
		t.Fatalf("legal concurrent history flagged: %v", vs)
	}
	if !CheckExhaustive(events) {
		t.Fatal("exhaustive checker rejected legal history")
	}
}

func TestCheckImpossibleEmpty(t *testing.T) {
	events := []Event{
		enq(0, 1, 1, 2),
		deqEmpty(1, 3, 4), // 1 is in the queue for this whole interval
		deq(0, 1, 5, 6),
	}
	if vs := Check(events); !hasPattern(vs, "impossible-empty") {
		t.Fatalf("impossible empty not flagged: %v", vs)
	}
	if CheckExhaustive(events) {
		t.Fatal("exhaustive checker accepted impossible empty")
	}
}

func TestCheckEmptyOverlappingPendingDequeueAccepted(t *testing.T) {
	// The empty dequeue overlaps deq(1), so emptiness is possible.
	events := []Event{
		enq(0, 1, 1, 2),
		deq(0, 1, 3, 6),
		deqEmpty(1, 4, 7),
	}
	if vs := Check(events); len(vs) != 0 {
		t.Fatalf("legal history flagged: %v", vs)
	}
	if !CheckExhaustive(events) {
		t.Fatal("exhaustive checker rejected legal history")
	}
}

func TestCheckOverlappingProcOps(t *testing.T) {
	events := []Event{
		enq(0, 1, 1, 5),
		enq(0, 2, 3, 7), // same process, overlapping
	}
	if vs := Check(events); !hasPattern(vs, "malformed") {
		t.Fatalf("overlapping same-process ops not flagged: %v", vs)
	}
}

func TestCheckDistinctValuePrecondition(t *testing.T) {
	events := []Event{
		enq(0, 1, 1, 2),
		enq(0, 1, 3, 4),
	}
	if vs := Check(events); !hasPattern(vs, "precondition") {
		t.Fatalf("duplicate enqueue not flagged: %v", vs)
	}
}

// TestFastCheckerSoundnessVsExhaustive generates random small histories and
// verifies the fast checker never flags a history the exhaustive checker
// accepts (soundness of the bad patterns).
func TestFastCheckerSoundnessVsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	for trial := 0; trial < 3000; trial++ {
		events := randomHistory(rng)
		fast := Check(events)
		if len(fast) == 0 {
			continue
		}
		if CheckExhaustive(events) {
			t.Fatalf("trial %d: fast checker flagged linearizable history %v: %v",
				trial, events, fast)
		}
	}
}

// TestFastCheckerCatchesMostViolations measures that the bad patterns catch
// a healthy fraction of random non-linearizable histories. The patterns are
// not complete in theory for every adversarial interleaving, but on random
// histories they should catch the clear majority; a large miss rate would
// indicate a broken detector.
func TestFastCheckerCatchesMostViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nonLin, caught := 0, 0
	for trial := 0; trial < 3000; trial++ {
		events := randomHistory(rng)
		if CheckExhaustive(events) {
			continue
		}
		nonLin++
		if len(Check(events)) > 0 {
			caught++
		}
	}
	if nonLin == 0 {
		t.Skip("no non-linearizable histories generated")
	}
	if ratio := float64(caught) / float64(nonLin); ratio < 0.5 {
		t.Errorf("fast checker caught only %d/%d (%.0f%%) of violations", caught, nonLin, 100*ratio)
	}
}

// randomHistory builds a small random complete history over 2 processes:
// usually semantically plausible but with random interval structure, so both
// linearizable and non-linearizable cases occur.
func randomHistory(rng *rand.Rand) []Event {
	nOps := 4 + rng.Intn(5)
	var events []Event
	var clock int64
	procEnd := map[int]int64{}
	nextVal := int64(1)
	var pool []int64 // values enqueued so far
	for i := 0; i < nOps; i++ {
		proc := rng.Intn(2)
		start := procEnd[proc] + 1 + int64(rng.Intn(3))
		dur := 1 + int64(rng.Intn(6))
		end := start + dur
		clock = max64(clock, end)
		switch rng.Intn(3) {
		case 0: // enqueue
			events = append(events, enq(proc, nextVal, start, end))
			pool = append(pool, nextVal)
			nextVal++
		case 1: // dequeue of some enqueued value (possibly out of order)
			if len(pool) == 0 {
				events = append(events, deqEmpty(proc, start, end))
				break
			}
			k := rng.Intn(len(pool))
			v := pool[k]
			pool = append(pool[:k], pool[k+1:]...)
			events = append(events, deq(proc, v, start, end))
		default: // empty dequeue
			events = append(events, deqEmpty(proc, start, end))
		}
		procEnd[proc] = end
	}
	return events
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
