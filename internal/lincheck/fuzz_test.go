package lincheck

// Fuzz target cross-validating the fast bad-pattern checker against the
// exhaustive oracle on arbitrary small histories: the fast checker must
// never flag a history the oracle accepts (soundness).

import "testing"

func FuzzCheckSoundness(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 1, 1, 2, 2})
	f.Add([]byte{2, 0, 0, 1, 1, 2, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodeHistory(data)
		if len(events) == 0 || len(events) > 10 {
			return
		}
		if len(Check(events)) == 0 {
			return // nothing flagged: nothing to validate
		}
		if CheckExhaustive(events) {
			t.Fatalf("fast checker flagged linearizable history %v", events)
		}
	})
}

// decodeHistory turns fuzz bytes into a structurally well-formed history
// (per-process non-overlapping intervals, bounded values) so that the fuzz
// explores semantic violations rather than malformed input.
func decodeHistory(data []byte) []Event {
	var events []Event
	procEnd := map[int]int64{}
	nextVal := int64(1)
	var pool []int64
	for i := 0; i+2 < len(data); i += 3 {
		proc := int(data[i]) % 2
		kind := data[i+1] % 4
		gap := int64(data[i+2]%4) + 1
		start := procEnd[proc] + gap
		end := start + int64(data[i+2]%7) + 1
		procEnd[proc] = end
		switch kind {
		case 0, 1:
			events = append(events, Event{Proc: proc, Kind: KindEnqueue, Value: nextVal, Start: start, End: end})
			pool = append(pool, nextVal)
			nextVal++
		case 2:
			if len(pool) == 0 {
				events = append(events, Event{Proc: proc, Kind: KindDequeue, Start: start, End: end})
				continue
			}
			k := int(data[i+2]) % len(pool)
			v := pool[k]
			pool = append(pool[:k], pool[k+1:]...)
			events = append(events, Event{Proc: proc, Kind: KindDequeue, Value: v, OK: true, Start: start, End: end})
		default:
			events = append(events, Event{Proc: proc, Kind: KindDequeue, Start: start, End: end})
		}
	}
	return events
}
