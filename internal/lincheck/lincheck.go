// Package lincheck checks recorded concurrent queue histories for
// linearizability violations.
//
// The fast checker (Check) detects the bad patterns that characterize
// FIFO-queue linearizability for complete histories over distinct values,
// following the violation taxonomy of Bouajjani, Emmi, Enea and Hamza
// ("Verifying Concurrent Programs against Sequential Specifications"):
//
//   - value integrity: a dequeue returns a value never enqueued, or a value
//     is dequeued twice;
//   - future read: a dequeue completes before the enqueue of its value
//     begins;
//   - FIFO inversion: a was enqueued strictly before b, yet b was dequeued
//     strictly before a's dequeue began;
//   - impossible empty: a dequeue reports empty although some value was
//     enqueued before it started and not dequeued until after it finished.
//
// Each pattern check is sound (never flags a linearizable history). The
// exhaustive checker (CheckExhaustive) decides linearizability exactly by
// search and is intended for small histories in tests, including validating
// the fast checker against randomized schedules.
package lincheck

import (
	"fmt"
	"sort"
)

// Kind distinguishes operations in a history.
type Kind int

// Operation kinds.
const (
	KindEnqueue Kind = iota + 1
	KindDequeue
)

// Event is one completed operation in a history. Timestamps are logical:
// any strictly monotone global clock works. Start must be <= End, and two
// events of the same process must not overlap.
type Event struct {
	Proc  int
	Kind  Kind
	Value int64 // value enqueued, or returned by a non-empty dequeue
	OK    bool  // for dequeues: false means "queue empty"
	Start int64
	End   int64
}

func (e Event) String() string {
	switch {
	case e.Kind == KindEnqueue:
		return fmt.Sprintf("P%d.Enq(%d)@[%d,%d]", e.Proc, e.Value, e.Start, e.End)
	case e.OK:
		return fmt.Sprintf("P%d.Deq()=%d@[%d,%d]", e.Proc, e.Value, e.Start, e.End)
	default:
		return fmt.Sprintf("P%d.Deq()=empty@[%d,%d]", e.Proc, e.Start, e.End)
	}
}

// Violation describes one detected bad pattern.
type Violation struct {
	Pattern string
	Detail  string
}

func (v Violation) String() string { return v.Pattern + ": " + v.Detail }

// Check runs all bad-pattern detectors and returns every violation found
// (nil for a history that passes). Histories must be complete (every started
// operation finished) and enqueue values must be distinct; duplicate
// enqueues are reported as violations of the precondition.
func Check(events []Event) []Violation {
	var out []Violation
	out = append(out, checkWellFormed(events)...)
	enqOf, deqOf, vs := indexValues(events)
	out = append(out, checkValueIntegrity(events, enqOf)...)
	out = append(out, checkFutureRead(enqOf, deqOf, vs)...)
	out = append(out, checkFIFOInversion(enqOf, deqOf, vs)...)
	out = append(out, checkImpossibleEmpty(events, enqOf, deqOf, vs)...)
	return out
}

// checkWellFormed validates timestamps and per-process non-overlap.
func checkWellFormed(events []Event) []Violation {
	var out []Violation
	byProc := make(map[int][]Event)
	for _, e := range events {
		if e.Start > e.End {
			out = append(out, Violation{"malformed", fmt.Sprintf("%v has Start > End", e)})
		}
		byProc[e.Proc] = append(byProc[e.Proc], e)
	}
	for proc, evs := range byProc {
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
		for i := 1; i < len(evs); i++ {
			if evs[i].Start <= evs[i-1].End {
				out = append(out, Violation{"malformed",
					fmt.Sprintf("process %d operations overlap: %v and %v", proc, evs[i-1], evs[i])})
			}
		}
	}
	return out
}

// indexValues builds per-value enqueue/dequeue indices. vs lists values that
// have both an enqueue and a dequeue.
func indexValues(events []Event) (enqOf, deqOf map[int64]Event, vs []int64) {
	enqOf = make(map[int64]Event)
	deqOf = make(map[int64]Event)
	for _, e := range events {
		if e.Kind == KindEnqueue {
			enqOf[e.Value] = e
		}
	}
	for _, e := range events {
		if e.Kind == KindDequeue && e.OK {
			deqOf[e.Value] = e
		}
	}
	for v := range deqOf {
		if _, ok := enqOf[v]; ok {
			vs = append(vs, v)
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return enqOf, deqOf, vs
}

// checkValueIntegrity flags duplicate enqueues, duplicate dequeues, and
// dequeues of values never enqueued.
func checkValueIntegrity(events []Event, enqOf map[int64]Event) []Violation {
	var out []Violation
	seenEnq := make(map[int64]int)
	seenDeq := make(map[int64]int)
	for _, e := range events {
		switch {
		case e.Kind == KindEnqueue:
			seenEnq[e.Value]++
		case e.OK:
			seenDeq[e.Value]++
		}
	}
	for v, n := range seenEnq {
		if n > 1 {
			out = append(out, Violation{"precondition",
				fmt.Sprintf("value %d enqueued %d times (values must be distinct)", v, n)})
		}
	}
	for v, n := range seenDeq {
		if n > 1 {
			out = append(out, Violation{"duplicate-dequeue", fmt.Sprintf("value %d dequeued %d times", v, n)})
		}
		if _, ok := enqOf[v]; !ok {
			out = append(out, Violation{"phantom-dequeue", fmt.Sprintf("value %d dequeued but never enqueued", v)})
		}
	}
	return out
}

// checkFutureRead flags dequeues that finish before their enqueue starts.
func checkFutureRead(enqOf, deqOf map[int64]Event, vs []int64) []Violation {
	var out []Violation
	for _, v := range vs {
		if deqOf[v].End < enqOf[v].Start {
			out = append(out, Violation{"future-read",
				fmt.Sprintf("%v completed before %v began", deqOf[v], enqOf[v])})
		}
	}
	return out
}

// checkFIFOInversion detects a pair (a, b) with enq(a) happening strictly
// before enq(b) while deq(b) happens strictly before deq(a). It is a sweep
// over values ordered by enqueue start; among values whose enqueue finished
// before the current one started, it keeps the one whose dequeue starts
// latest, which is the only candidate that can witness an inversion.
func checkFIFOInversion(enqOf, deqOf map[int64]Event, vs []int64) []Violation {
	var out []Violation
	type rec struct {
		v                int64
		enqStart, enqEnd int64
		deqStart, deqEnd int64
	}
	recs := make([]rec, 0, len(vs))
	for _, v := range vs {
		recs = append(recs, rec{
			v:        v,
			enqStart: enqOf[v].Start, enqEnd: enqOf[v].End,
			deqStart: deqOf[v].Start, deqEnd: deqOf[v].End,
		})
	}
	// byEnd feeds the sweep with values whose enqueue completed earliest.
	byEnd := make([]rec, len(recs))
	copy(byEnd, recs)
	sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].enqEnd < byEnd[j].enqEnd })
	byStart := recs
	sort.Slice(byStart, func(i, j int) bool { return byStart[i].enqStart < byStart[j].enqStart })

	var maxDeqStart int64 = -1
	var witness rec
	feed := 0
	for _, b := range byStart {
		for feed < len(byEnd) && byEnd[feed].enqEnd < b.enqStart {
			if byEnd[feed].deqStart > maxDeqStart {
				maxDeqStart = byEnd[feed].deqStart
				witness = byEnd[feed]
			}
			feed++
		}
		if maxDeqStart >= 0 && b.deqEnd < maxDeqStart && witness.v != b.v {
			out = append(out, Violation{"fifo-inversion",
				fmt.Sprintf("%v happened before %v, yet %v completed before %v began",
					enqOf[witness.v], enqOf[b.v], deqOf[b.v], deqOf[witness.v])})
		}
	}
	return out
}

// checkImpossibleEmpty flags empty dequeues that overlap no moment at which
// the queue could have been empty: some value was enqueued entirely before
// the dequeue began and its own dequeue did not begin until after the empty
// dequeue finished.
func checkImpossibleEmpty(events []Event, enqOf, deqOf map[int64]Event, vs []int64) []Violation {
	var out []Violation
	type spanRec struct {
		v                int64
		enqEnd, deqStart int64
	}
	// Every enqueued value contributes a span [enqEnd, deqStart) during
	// which it is definitely present; undequeued values are present forever.
	const forever = int64(1) << 62
	spans := make([]spanRec, 0, len(enqOf))
	for v, e := range enqOf {
		ds := forever
		if d, ok := deqOf[v]; ok {
			ds = d.Start
		}
		spans = append(spans, spanRec{v: v, enqEnd: e.End, deqStart: ds})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].enqEnd < spans[j].enqEnd })

	var empties []Event
	for _, e := range events {
		if e.Kind == KindDequeue && !e.OK {
			empties = append(empties, e)
		}
	}
	sort.Slice(empties, func(i, j int) bool { return empties[i].Start < empties[j].Start })

	var maxDeqStart int64 = -1
	var witness spanRec
	feed := 0
	for _, e := range empties {
		for feed < len(spans) && spans[feed].enqEnd < e.Start {
			if spans[feed].deqStart > maxDeqStart {
				maxDeqStart = spans[feed].deqStart
				witness = spans[feed]
			}
			feed++
		}
		if maxDeqStart > e.End {
			out = append(out, Violation{"impossible-empty",
				fmt.Sprintf("%v reported empty but value %d was enqueued before it began (enq end %d) and not dequeued until after it finished (deq start %d)",
					e, witness.v, witness.enqEnd, witness.deqStart)})
		}
	}
	return out
}
