package lincheck

import (
	"sort"
	"strconv"
	"strings"
)

// CheckExhaustive decides linearizability of a small complete history by
// explicit search over linearization orders (Wing-Gong style), with
// memoization on (set of linearized ops, queue contents). It is exponential
// in the worst case and intended for histories of at most ~20 operations in
// tests; it reports whether the history is linearizable with respect to a
// sequential FIFO queue.
func CheckExhaustive(events []Event) bool {
	n := len(events)
	if n == 0 {
		return true
	}
	if n > 63 {
		// Bitmask representation limit; the exhaustive checker is a test
		// oracle for tiny histories only.
		panic("lincheck: CheckExhaustive limited to 63 events")
	}
	evs := make([]Event, n)
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })

	visited := make(map[string]bool)
	var dfs func(mask uint64, queue []int64) bool
	dfs = func(mask uint64, queue []int64) bool {
		if mask == (uint64(1)<<n)-1 {
			return true
		}
		key := stateKey(mask, queue)
		if visited[key] {
			return false
		}
		visited[key] = true

		// An operation may linearize next only if no unlinearized operation
		// finished before it started (otherwise that operation would have to
		// precede it).
		minEnd := int64(1)<<62 - 1
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 && evs[i].End < minEnd {
				minEnd = evs[i].End
			}
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 || evs[i].Start > minEnd {
				continue
			}
			e := evs[i]
			switch {
			case e.Kind == KindEnqueue:
				if dfs(mask|1<<i, append(queue[:len(queue):len(queue)], e.Value)) {
					return true
				}
			case e.OK:
				if len(queue) > 0 && queue[0] == e.Value {
					if dfs(mask|1<<i, queue[1:]) {
						return true
					}
				}
			default:
				if len(queue) == 0 {
					if dfs(mask|1<<i, queue) {
						return true
					}
				}
			}
		}
		return false
	}
	return dfs(0, nil)
}

// stateKey encodes the DFS memo key. Queue contents must be part of the key
// because different linearization prefixes with the same operation set can
// produce different queue orders.
func stateKey(mask uint64, queue []int64) string {
	var sb strings.Builder
	sb.WriteString(strconv.FormatUint(mask, 16))
	for _, v := range queue {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(v, 10))
	}
	return sb.String()
}
