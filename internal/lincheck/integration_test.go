package lincheck_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/baseline/faaqueue"
	"repro/internal/baseline/kpqueue"
	"repro/internal/baseline/msqueue"
	"repro/internal/baseline/mutexqueue"
	"repro/internal/baseline/twolock"
	"repro/internal/lincheck"
	"repro/internal/metrics"
	"repro/internal/queues"
)

// TestRealQueuesPassLinearizabilityCheck records concurrent histories from
// every queue implementation and runs the bad-pattern checker: the paper's
// queue (both variants) and all baselines must produce violation-free
// histories.
func TestRealQueuesPassLinearizabilityCheck(t *testing.T) {
	factories := []queues.Factory{
		{Name: "nr-queue", New: queues.NewNR},
		{Name: "nr-bounded", New: queues.NewBounded},
		{Name: "nr-bounded-g3", New: func(p int) (queues.Queue, error) { return queues.NewBoundedGC(p, 3) }},
		{Name: "ms-queue", New: func(p int) (queues.Queue, error) { return msqueue.New(p) }},
		{Name: "faa-seg", New: func(p int) (queues.Queue, error) { return faaqueue.New(p) }},
		{Name: "kp-queue", New: func(p int) (queues.Queue, error) { return kpqueue.New(p) }},
		{Name: "two-lock", New: func(p int) (queues.Queue, error) { return twolock.New(p) }},
		{Name: "mutex", New: func(p int) (queues.Queue, error) { return mutexqueue.New(p) }},
	}
	const procs = 6
	const opsPerProc = 2500
	for _, f := range factories {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			q, err := f.New(procs)
			if err != nil {
				t.Fatal(err)
			}
			rec := lincheck.NewRecorder(procs)
			var wg sync.WaitGroup
			for p := 0; p < procs; p++ {
				raw, err := q.Handle(p)
				if err != nil {
					t.Fatal(err)
				}
				h := rec.Wrap(raw, p)
				wg.Add(1)
				go func(p int, h queues.Handle) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p)))
					next := int64(0)
					for s := 0; s < opsPerProc; s++ {
						if rng.Intn(2) == 0 {
							h.Enqueue(int64(p)<<32 | next)
							next++
						} else {
							h.Dequeue()
						}
					}
				}(p, h)
			}
			wg.Wait()
			events := rec.Events()
			if len(events) != procs*opsPerProc {
				t.Fatalf("recorded %d events, want %d", len(events), procs*opsPerProc)
			}
			if vs := lincheck.Check(events); len(vs) > 0 {
				for i, v := range vs {
					if i >= 5 {
						t.Errorf("... and %d more", len(vs)-5)
						break
					}
					t.Errorf("violation: %v", v)
				}
			}
		})
	}
}

// TestCheckerCatchesBrokenQueue sanity-checks the whole pipeline by running
// it against a deliberately broken queue (a LIFO stack masquerading as a
// queue): the checker must flag the history.
func TestCheckerCatchesBrokenQueue(t *testing.T) {
	const procs = 4
	q := newBrokenStack(procs)
	rec := lincheck.NewRecorder(procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		raw, _ := q.Handle(p)
		h := rec.Wrap(raw, p)
		wg.Add(1)
		go func(p int, h queues.Handle) {
			defer wg.Done()
			for s := int64(0); s < 400; s++ {
				h.Enqueue(int64(p)<<32 | s)
				if s%2 == 1 {
					h.Dequeue()
					h.Dequeue()
				}
			}
		}(p, h)
	}
	wg.Wait()
	if vs := lincheck.Check(rec.Events()); len(vs) == 0 {
		t.Fatal("LIFO stack passed the FIFO linearizability check")
	}
}

// brokenStack is a mutex-guarded LIFO presented through the queues.Queue
// interface — a deliberately wrong "queue".
type brokenStack struct {
	mu      sync.Mutex
	items   []int64
	procs   int
	handles []brokenHandle
}

func newBrokenStack(procs int) *brokenStack {
	s := &brokenStack{procs: procs}
	s.handles = make([]brokenHandle, procs)
	for i := range s.handles {
		s.handles[i] = brokenHandle{s: s}
	}
	return s
}

func (s *brokenStack) Name() string { return "broken-stack" }
func (s *brokenStack) Procs() int   { return s.procs }

func (s *brokenStack) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= s.procs {
		return nil, fmt.Errorf("broken-stack: bad handle %d", i)
	}
	return &s.handles[i], nil
}

type brokenHandle struct {
	s *brokenStack
}

func (h *brokenHandle) Enqueue(v int64) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	h.s.items = append(h.s.items, v)
}

func (h *brokenHandle) Dequeue() (int64, bool) {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	if len(h.s.items) == 0 {
		return 0, false
	}
	v := h.s.items[len(h.s.items)-1] // LIFO: wrong end
	h.s.items = h.s.items[:len(h.s.items)-1]
	return v, true
}

func (h *brokenHandle) SetCounter(c *metrics.Counter) {}
