// Package pbst provides the persistent balanced search tree that the
// bounded-space queue (paper Section 6, Appendix B) stores each node's
// blocks in.
//
// The paper uses a red-black tree made persistent with Driscoll et al.'s
// node-copying; any balanced persistent BST with logarithmic insert, split
// and search preserves the construction and its complexity accounting. We
// use a treap with deterministic pseudo-random priorities derived from the
// key by a splitmix64 hash: split and join are a few lines each and easy to
// verify, updates copy only the search path (so existing trees are never
// mutated and a reader holding an old root sees a consistent snapshot), and
// expected depth is O(log n) — for the consecutive integer keys the queue
// uses, the hashed priorities are fixed and behave like random draws, so the
// depth bound is deterministic for any given size (and checked by tests).
//
// All operations are pure: they return a new *Tree and never modify the
// receiver. A nil *Tree is the empty tree.
package pbst

// Tree is an immutable ordered map from int64 keys to values of type V.
// The zero value of *Tree (nil) is an empty tree. Min and Max are O(1), as
// the bounded queue's MaxBlock/MinBlock require.
type Tree[V any] struct {
	root *treeNode[V]
	min  *treeNode[V]
	max  *treeNode[V]
}

type treeNode[V any] struct {
	key   int64
	val   V
	prio  uint64
	size  int64
	left  *treeNode[V]
	right *treeNode[V]
}

// splitmix64 is the standard SplitMix64 finalizer, used to derive a fixed
// pseudo-random priority from a key.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func size[V any](n *treeNode[V]) int64 {
	if n == nil {
		return 0
	}
	return n.size
}

func mkNode[V any](key int64, val V, left, right *treeNode[V]) *treeNode[V] {
	return &treeNode[V]{
		key:   key,
		val:   val,
		prio:  splitmix64(uint64(key)),
		size:  1 + size(left) + size(right),
		left:  left,
		right: right,
	}
}

// withChildren copies n with new children (path copying).
func (n *treeNode[V]) withChildren(left, right *treeNode[V]) *treeNode[V] {
	return &treeNode[V]{
		key:   n.key,
		val:   n.val,
		prio:  n.prio,
		size:  1 + size(left) + size(right),
		left:  left,
		right: right,
	}
}

// splitNode partitions n into keys < k and keys >= k.
func splitNode[V any](n *treeNode[V], k int64) (lt, ge *treeNode[V]) {
	if n == nil {
		return nil, nil
	}
	if n.key < k {
		l, r := splitNode(n.right, k)
		return n.withChildren(n.left, l), r
	}
	l, r := splitNode(n.left, k)
	return l, n.withChildren(r, n.right)
}

// joinNode merges l and r assuming every key in l is less than every key in
// r, choosing roots by priority (max-heap order).
func joinNode[V any](l, r *treeNode[V]) *treeNode[V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio:
		return l.withChildren(l.left, joinNode(l.right, r))
	default:
		return r.withChildren(joinNode(l, r.left), r.right)
	}
}

func minNode[V any](n *treeNode[V]) *treeNode[V] {
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

func maxNode[V any](n *treeNode[V]) *treeNode[V] {
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// wrap builds the Tree wrapper, locating min and max once so later calls are
// O(1).
func wrap[V any](root *treeNode[V]) *Tree[V] {
	if root == nil {
		return nil
	}
	return &Tree[V]{root: root, min: minNode(root), max: maxNode(root)}
}

// Size returns the number of entries.
func (t *Tree[V]) Size() int64 {
	if t == nil {
		return 0
	}
	return size(t.root)
}

// Insert returns a tree with key bound to val, replacing any existing
// binding. The receiver is unchanged.
func (t *Tree[V]) Insert(key int64, val V) *Tree[V] {
	var root *treeNode[V]
	if t != nil {
		root = t.root
	}
	lt, ge := splitNode(root, key)
	_, gt := splitNode(ge, key+1)
	return wrap(joinNode(lt, joinNode(mkNode(key, val, nil, nil), gt)))
}

// DropBelow returns a tree without the entries whose key is less than
// bound: the paper's Split(T, s) used by garbage collection.
func (t *Tree[V]) DropBelow(bound int64) *Tree[V] {
	if t == nil {
		return nil
	}
	_, ge := splitNode(t.root, bound)
	return wrap(ge)
}

// Get returns the value bound to key.
func (t *Tree[V]) Get(key int64) (V, bool) {
	var zero V
	if t == nil {
		return zero, false
	}
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	return zero, false
}

// Min returns the entry with the smallest key in O(1).
func (t *Tree[V]) Min() (key int64, val V, ok bool) {
	if t == nil {
		var zero V
		return 0, zero, false
	}
	return t.min.key, t.min.val, true
}

// Max returns the entry with the largest key in O(1).
func (t *Tree[V]) Max() (key int64, val V, ok bool) {
	if t == nil {
		var zero V
		return 0, zero, false
	}
	return t.max.key, t.max.val, true
}

// FindFirst returns the entry with the smallest key satisfying pred, which
// must be monotone in key order (false on a prefix, true on the rest) — the
// shape of all searches the queue performs (index, sumenq, endleft and
// endright are non-decreasing in a node's block sequence, Invariant 7 and
// Lemma 4').
func (t *Tree[V]) FindFirst(pred func(key int64, val V) bool) (key int64, val V, ok bool) {
	var zero V
	if t == nil {
		return 0, zero, false
	}
	var best *treeNode[V]
	n := t.root
	for n != nil {
		if pred(n.key, n.val) {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return 0, zero, false
	}
	return best.key, best.val, true
}

// FindLast returns the entry with the largest key satisfying pred, which
// must be monotone in key order (true on a prefix, false on the rest).
func (t *Tree[V]) FindLast(pred func(key int64, val V) bool) (key int64, val V, ok bool) {
	var zero V
	if t == nil {
		return 0, zero, false
	}
	var best *treeNode[V]
	n := t.root
	for n != nil {
		if pred(n.key, n.val) {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		return 0, zero, false
	}
	return best.key, best.val, true
}

// Ascend visits entries in increasing key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(key int64, val V) bool) {
	if t == nil {
		return
	}
	var walk func(n *treeNode[V]) bool
	walk = func(n *treeNode[V]) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key, n.val) && walk(n.right)
	}
	walk(t.root)
}

// Height returns the tree height (empty tree has height 0); exported for
// balance tests and space diagnostics.
func (t *Tree[V]) Height() int {
	if t == nil {
		return 0
	}
	var h func(n *treeNode[V]) int
	h = func(n *treeNode[V]) int {
		if n == nil {
			return 0
		}
		lh, rh := h(n.left), h(n.right)
		if lh > rh {
			return lh + 1
		}
		return rh + 1
	}
	return h(t.root)
}
