package pbst

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func collect(t *Tree[int]) (keys []int64, vals []int) {
	t.Ascend(func(k int64, v int) bool {
		keys = append(keys, k)
		vals = append(vals, v)
		return true
	})
	return keys, vals
}

func TestEmptyTree(t *testing.T) {
	var tr *Tree[int]
	if tr.Size() != 0 {
		t.Errorf("empty Size = %d", tr.Size())
	}
	if _, ok := tr.Get(1); ok {
		t.Error("Get on empty tree succeeded")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree succeeded")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree succeeded")
	}
	if tr.DropBelow(5) != nil {
		t.Error("DropBelow on empty tree returned non-nil")
	}
}

func TestInsertGet(t *testing.T) {
	var tr *Tree[int]
	for i := int64(0); i < 1000; i++ {
		tr = tr.Insert(i, int(i*2))
	}
	if tr.Size() != 1000 {
		t.Fatalf("Size = %d", tr.Size())
	}
	for i := int64(0); i < 1000; i++ {
		v, ok := tr.Get(i)
		if !ok || v != int(i*2) {
			t.Fatalf("Get(%d) = (%d, %v)", i, v, ok)
		}
	}
	if _, ok := tr.Get(1000); ok {
		t.Error("Get(1000) succeeded")
	}
}

func TestInsertReplaces(t *testing.T) {
	var tr *Tree[string]
	tr = tr.Insert(5, "a").Insert(5, "b")
	if tr.Size() != 1 {
		t.Fatalf("Size = %d after replacing insert", tr.Size())
	}
	if v, _ := tr.Get(5); v != "b" {
		t.Fatalf("Get(5) = %q", v)
	}
}

func TestPersistence(t *testing.T) {
	var versions []*Tree[int]
	var tr *Tree[int]
	versions = append(versions, tr)
	for i := int64(1); i <= 200; i++ {
		tr = tr.Insert(i, int(i))
		versions = append(versions, tr)
	}
	// Every old version must still hold exactly its own entries.
	for n, v := range versions {
		if v.Size() != int64(n) {
			t.Fatalf("version %d has size %d", n, v.Size())
		}
		keys, _ := collect(v)
		for j, k := range keys {
			if k != int64(j+1) {
				t.Fatalf("version %d key[%d] = %d", n, j, k)
			}
		}
	}
}

func TestPersistenceAcrossDropBelow(t *testing.T) {
	var tr *Tree[int]
	for i := int64(1); i <= 100; i++ {
		tr = tr.Insert(i, int(i))
	}
	before := tr
	after := tr.DropBelow(50)
	if before.Size() != 100 {
		t.Fatalf("original modified by DropBelow: size %d", before.Size())
	}
	if after.Size() != 51 {
		t.Fatalf("DropBelow(50) size = %d, want 51", after.Size())
	}
	if k, _, _ := after.Min(); k != 50 {
		t.Fatalf("min after DropBelow(50) = %d", k)
	}
	if k, _, _ := after.Max(); k != 100 {
		t.Fatalf("max after DropBelow(50) = %d", k)
	}
	if _, ok := before.Get(10); !ok {
		t.Fatal("original lost key 10")
	}
}

func TestMinMaxTracking(t *testing.T) {
	var tr *Tree[int]
	tr = tr.Insert(10, 1).Insert(5, 2).Insert(20, 3)
	if k, _, _ := tr.Min(); k != 5 {
		t.Errorf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 20 {
		t.Errorf("Max = %d", k)
	}
}

func TestFindFirst(t *testing.T) {
	var tr *Tree[int64]
	// val = key*10, monotone in key.
	for i := int64(0); i < 100; i++ {
		tr = tr.Insert(i, i*10)
	}
	for _, target := range []int64{0, 1, 15, 500, 990} {
		k, v, ok := tr.FindFirst(func(_ int64, val int64) bool { return val >= target })
		if !ok {
			t.Fatalf("FindFirst(>=%d) not found", target)
		}
		want := (target + 9) / 10
		if k != want || v != want*10 {
			t.Fatalf("FindFirst(>=%d) = (%d, %d), want key %d", target, k, v, want)
		}
	}
	if _, _, ok := tr.FindFirst(func(_ int64, val int64) bool { return val >= 991 }); ok {
		t.Error("FindFirst past max succeeded")
	}
}

func TestFindLast(t *testing.T) {
	var tr *Tree[int64]
	for i := int64(0); i < 100; i++ {
		tr = tr.Insert(i, i*10)
	}
	for _, target := range []int64{5, 10, 995} {
		k, _, ok := tr.FindLast(func(_ int64, val int64) bool { return val < target })
		if !ok {
			t.Fatalf("FindLast(<%d) not found", target)
		}
		want := (target - 1) / 10
		if target <= 0 {
			want = -1
		}
		if k != want {
			t.Fatalf("FindLast(<%d) = %d, want %d", target, k, want)
		}
	}
	if _, _, ok := tr.FindLast(func(_ int64, val int64) bool { return val < 0 }); ok {
		t.Error("FindLast below min succeeded")
	}
}

func TestAgainstSortedSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var tr *Tree[int]
	model := map[int64]int{}
	for step := 0; step < 20000; step++ {
		switch rng.Intn(10) {
		case 0: // DropBelow
			var keys []int64
			for k := range model {
				keys = append(keys, k)
			}
			if len(keys) == 0 {
				break
			}
			bound := keys[rng.Intn(len(keys))]
			tr = tr.DropBelow(bound)
			for k := range model {
				if k < bound {
					delete(model, k)
				}
			}
		default: // Insert
			k := int64(rng.Intn(5000))
			v := rng.Int()
			tr = tr.Insert(k, v)
			model[k] = v
		}
	}
	if tr.Size() != int64(len(model)) {
		t.Fatalf("size %d, model %d", tr.Size(), len(model))
	}
	keys, vals := collect(tr)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("Ascend order not sorted")
	}
	for i, k := range keys {
		if model[k] != vals[i] {
			t.Fatalf("key %d: val %d, model %d", k, vals[i], model[k])
		}
	}
}

func TestBalanceConsecutiveKeys(t *testing.T) {
	// The queue inserts consecutive indices; depth must stay logarithmic.
	var tr *Tree[int]
	const n = 1 << 16
	for i := int64(0); i < n; i++ {
		tr = tr.Insert(i, 0)
	}
	maxDepth := 4 * int(math.Log2(n+1))
	if h := tr.Height(); h > maxDepth {
		t.Fatalf("height %d for %d consecutive keys exceeds %d", h, n, maxDepth)
	}
}

func TestBalanceAfterDropBelow(t *testing.T) {
	var tr *Tree[int]
	const n = 1 << 14
	for i := int64(0); i < n; i++ {
		tr = tr.Insert(i, 0)
		if i%512 == 511 {
			tr = tr.DropBelow(i - 256)
		}
	}
	if h := tr.Height(); h > 40 {
		t.Fatalf("height %d after interleaved drops", h)
	}
}

func TestQuickInsertMembership(t *testing.T) {
	f := func(keys []int64) bool {
		var tr *Tree[int64]
		want := map[int64]int64{}
		for i, k := range keys {
			tr = tr.Insert(k, int64(i))
			want[k] = int64(i)
		}
		if tr.Size() != int64(len(want)) {
			return false
		}
		for k, v := range want {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDropBelowPartition(t *testing.T) {
	f := func(keys []int64, bound int64) bool {
		var tr *Tree[int64]
		for _, k := range keys {
			tr = tr.Insert(k, k)
		}
		dropped := tr.DropBelow(bound)
		ok := true
		dropped.Ascend(func(k int64, _ int64) bool {
			if k < bound {
				ok = false
			}
			return true
		})
		// Every original key >= bound must survive.
		for _, k := range keys {
			if k >= bound {
				if _, found := dropped.Get(k); !found {
					ok = false
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeapPropertyInternal(t *testing.T) {
	var tr *Tree[int]
	for i := int64(0); i < 4096; i++ {
		tr = tr.Insert(i*3%4096, 0)
	}
	var check func(n *treeNode[int]) bool
	check = func(n *treeNode[int]) bool {
		if n == nil {
			return true
		}
		if n.left != nil && n.left.prio > n.prio {
			return false
		}
		if n.right != nil && n.right.prio > n.prio {
			return false
		}
		if n.size != 1+size(n.left)+size(n.right) {
			return false
		}
		return check(n.left) && check(n.right)
	}
	if !check(tr.root) {
		t.Fatal("treap heap/size invariant violated")
	}
}

func BenchmarkInsertSequential(b *testing.B) {
	var tr *Tree[int]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr = tr.Insert(int64(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	var tr *Tree[int]
	for i := int64(0); i < 1<<16; i++ {
		tr = tr.Insert(i, int(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i) & (1<<16 - 1))
	}
}
