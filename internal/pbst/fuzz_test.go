package pbst

// Fuzz targets. Under plain `go test` they run their seed corpus; under
// `go test -fuzz=Fuzz...` they explore the operation space. The oracle is a
// map plus sorted iteration.

import (
	"bytes"
	"testing"
)

// FuzzTreeOps interprets data as a little program over {Insert, DropBelow,
// Get} and cross-checks the tree against a map oracle after every step.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{1, 5, 1, 9, 2, 6, 3, 5})
	f.Add([]byte{1, 0, 1, 1, 1, 2, 2, 1})
	f.Add(bytes.Repeat([]byte{1, 7}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr *Tree[int]
		model := map[int64]int{}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%3, int64(data[i+1])
			switch op {
			case 0, 1: // insert (twice as likely)
				tr = tr.Insert(arg, i)
				model[arg] = i
			case 2: // drop below
				tr = tr.DropBelow(arg)
				for k := range model {
					if k < arg {
						delete(model, k)
					}
				}
			}
			if tr.Size() != int64(len(model)) {
				t.Fatalf("step %d: size %d, model %d", i, tr.Size(), len(model))
			}
		}
		// Full content check with ordered iteration.
		var prev int64 = -1
		count := 0
		tr.Ascend(func(k int64, v int) bool {
			if k <= prev {
				t.Fatalf("iteration out of order: %d after %d", k, prev)
			}
			prev = k
			want, ok := model[k]
			if !ok || want != v {
				t.Fatalf("key %d: val %d, model (%d, %v)", k, v, want, ok)
			}
			count++
			return true
		})
		if count != len(model) {
			t.Fatalf("iterated %d entries, model has %d", count, len(model))
		}
		// Min/Max agree with iteration extremes.
		if len(model) > 0 {
			var lo, hi int64 = 1 << 62, -1
			for k := range model {
				if k < lo {
					lo = k
				}
				if k > hi {
					hi = k
				}
			}
			if k, _, _ := tr.Min(); k != lo {
				t.Fatalf("Min = %d, want %d", k, lo)
			}
			if k, _, _ := tr.Max(); k != hi {
				t.Fatalf("Max = %d, want %d", k, hi)
			}
		}
	})
}
