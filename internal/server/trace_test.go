package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestTracedEnqueueDequeue exercises the full trace loop against an
// obs-on server: the traced calls must behave exactly like their plain
// counterparts (values move) while returning a server-sampled stage
// decomposition whose arithmetic holds.
func TestTracedEnqueueDequeue(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)

	st, err := c.EnqueueTraced([]byte("traced-value"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.ServerSampled {
		t.Fatal("obs-on server did not sample the traced enqueue")
	}
	if st.Op != "enqueue" {
		t.Errorf("Op = %q, want enqueue", st.Op)
	}
	if st.RTTMs <= 0 {
		t.Errorf("RTTMs = %v, want > 0", st.RTTMs)
	}
	for name, v := range map[string]float64{
		"wait": st.WaitMs, "fabric": st.FabricMs, "reply": st.ReplyMs,
		"server": st.ServerMs, "net": st.NetMs,
	} {
		if v < 0 {
			t.Errorf("%s stage = %v ms, negative", name, v)
		}
	}
	// The three interior stages partition a subinterval of the server
	// window, so their sum cannot exceed it (tiny epsilon for float noise).
	if sum := st.WaitMs + st.FabricMs + st.ReplyMs; sum > st.ServerMs+1e-6 {
		t.Errorf("stage sum %.6f exceeds server window %.6f", sum, st.ServerMs)
	}

	v, ok, dst, err := c.DequeueTraced()
	if err != nil || !ok {
		t.Fatalf("DequeueTraced = (ok=%v, err=%v)", ok, err)
	}
	if string(v) != "traced-value" {
		t.Fatalf("traced dequeue returned %q", v)
	}
	if !dst.ServerSampled || dst.Op != "dequeue" {
		t.Errorf("dequeue stages = %+v", dst)
	}

	// An empty traced poll is a traced null-dequeue: stages still valid,
	// latency classed with the server's null_dequeue histogram.
	_, ok, nst, err := c.DequeueTraced()
	if err != nil || ok {
		t.Fatalf("empty DequeueTraced = (ok=%v, err=%v)", ok, err)
	}
	if !nst.ServerSampled || nst.Op != "null_dequeue" {
		t.Errorf("null-dequeue stages = %+v", nst)
	}
}

// TestTracedOnNamedQueue checks tracing composes with queue
// qualification: both flag bits set, both prefixes present, and the span
// lands attributed to the named queue.
func TestTracedOnNamedQueue(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	q, err := c.Open("jobs")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueTraced([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _, err := q.DequeueTraced(); err != nil || !ok {
		t.Fatalf("named DequeueTraced = (ok=%v, err=%v)", ok, err)
	}
	_, slow := srv.spans.Snapshot()
	if len(slow) == 0 {
		t.Fatal("no spans captured")
	}
	found := false
	for _, sp := range slow {
		found = found || sp.Queue == "jobs"
	}
	if !found {
		t.Errorf("no span attributed to the named queue: %+v", slow)
	}
}

// TestTracedOnObsOffServer checks graceful degradation: a traced frame
// against an observability-off server is served normally — the value
// moves — and answered plain, so the client reports the round trip with
// ServerSampled false rather than failing.
func TestTracedOnObsOffServer(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil, WithObservability(false))
	c := newTestClient(t, srv)

	st, err := c.EnqueueTraced([]byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if st.ServerSampled {
		t.Error("obs-off server claimed to sample the trace")
	}
	if st.RTTMs <= 0 {
		t.Errorf("RTTMs = %v, want > 0 (client-side timing needs no server)", st.RTTMs)
	}
	if st.WaitMs != 0 || st.FabricMs != 0 || st.ServerMs != 0 {
		t.Errorf("unsampled stages must be zero: %+v", st)
	}
	if v, ok, err := c.Dequeue(); err != nil || !ok || string(v) != "v" {
		t.Fatalf("traced enqueue did not land: (%q, %v, %v)", v, ok, err)
	}
}

// TestMalformedTracedFrame sends a trace-flagged frame whose payload is
// too short to hold the send stamp; the server must answer StatusErr on
// that frame and keep the session usable.
func TestMalformedTracedFrame(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, 1, OpEnqueue|OpTraceFlag, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// A well-formed plain frame behind it proves the session survived.
	if err := writeFrame(bw, 2, OpEnqueue, []byte("ok-value")); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	f, err := readFrame(br, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != 1 || f.kind != StatusErr {
		t.Fatalf("short traced frame answered (id=%d, kind=0x%02x), want (1, StatusErr)", f.id, f.kind)
	}
	f, err = readFrame(br, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != 2 || f.kind != StatusOK {
		t.Fatalf("follow-up frame answered (id=%d, kind=0x%02x), want (2, StatusOK)", f.id, f.kind)
	}
}

// TestSpanzHandler checks the exemplar endpoint: well-formed JSON,
// populated after traced traffic, slow exemplars sorted slowest first,
// recent spans in sequence order.
func TestSpanzHandler(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	for i := 0; i < 20; i++ {
		if _, err := c.EnqueueTraced([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	srv.SpanzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/spanz", nil))
	if rec.Code != 200 {
		t.Fatalf("spanz status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("spanz Content-Type = %q", ct)
	}
	var doc struct {
		Offered        int64          `json:"offered"`
		RecentCapacity int            `json:"recent_capacity"`
		SlowCapacity   int            `json:"slow_capacity"`
		Slow           []obs.SpanView `json:"slow"`
		Recent         []obs.SpanView `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("spanz JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Offered != 20 {
		t.Errorf("offered = %d, want 20", doc.Offered)
	}
	if doc.RecentCapacity != spanRecentCap || doc.SlowCapacity != spanSlowCap {
		t.Errorf("capacities = (%d, %d), want (%d, %d)",
			doc.RecentCapacity, doc.SlowCapacity, spanRecentCap, spanSlowCap)
	}
	if len(doc.Recent) != 20 || len(doc.Slow) == 0 {
		t.Fatalf("spanz holds %d recent, %d slow", len(doc.Recent), len(doc.Slow))
	}
	for i := 1; i < len(doc.Recent); i++ {
		if doc.Recent[i].Seq <= doc.Recent[i-1].Seq {
			t.Fatalf("recent spans out of order at %d", i)
		}
	}
	for i := 1; i < len(doc.Slow); i++ {
		if doc.Slow[i].ServerMs > doc.Slow[i-1].ServerMs {
			t.Fatalf("slow spans not slowest-first at %d: %v after %v",
				i, doc.Slow[i].ServerMs, doc.Slow[i-1].ServerMs)
		}
	}
	for _, sp := range doc.Recent {
		if sp.Op != "enqueue" || sp.Queue != DefaultQueueName || sp.ClientSendUnixNs == 0 {
			t.Fatalf("span view mangled: %+v", sp)
		}
	}

	// Obs-off server: empty but well-formed.
	srvOff, _ := newTestServer(t, 1, nil, WithObservability(false))
	rec = httptest.NewRecorder()
	srvOff.SpanzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/spanz", nil))
	if rec.Code != 200 {
		t.Fatalf("obs-off spanz status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Offered != 0 || len(doc.Recent) != 0 || len(doc.Slow) != 0 {
		t.Errorf("obs-off spanz not empty: %+v", doc)
	}
}

// TestSnapshotStageLatAndMetricsz checks that traced traffic surfaces in
// the snapshot's stage_lat block, the spans counter, and the /metricsz
// per-stage summary series.
func TestSnapshotStageLatAndMetricsz(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	for i := 0; i < 8; i++ {
		if _, err := c.EnqueueTraced([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	snap := srv.Snapshot()
	if snap.Obs == nil || snap.Obs.Spans != 8 {
		t.Fatalf("snapshot spans = %+v, want 8", snap.Obs)
	}
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		s, ok := snap.Obs.StageLat[st.String()]
		if !ok {
			t.Fatalf("stage_lat missing stage %q", st)
		}
		if s.Count != 8 {
			t.Errorf("stage %q count = %d, want 8", st, s.Count)
		}
	}

	rec := httptest.NewRecorder()
	srv.MetricszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE queued_spans_total counter",
		"queued_spans_total 8",
		"# TYPE queued_stage_latency_seconds summary",
		`queued_stage_latency_seconds{stage="wait",quantile="0.5"}`,
		`queued_stage_latency_seconds{stage="fabric",quantile="0.99"}`,
		`queued_stage_latency_seconds_count{stage="server"} 8`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q\n%s", want, body)
		}
	}
}

// TestTracezWraparoundOrdering is the regression test for the event-ring
// dump after wraparound: overfill the server's control-plane ring well
// past its capacity, then require the handler's events to be exactly the
// newest capacity-many, strictly seq-sorted, with the overwritten
// remainder reported as dropped.
func TestTracezWraparoundOrdering(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil)
	total := int64(traceRingCap + traceRingCap/2)
	base := srv.trace.Recorded() // lifecycle events already in the ring
	for i := int64(0); i < total; i++ {
		srv.trace.Add("wrap_tick", "q", map[string]any{"i": i})
	}

	rec := httptest.NewRecorder()
	srv.TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	var doc struct {
		Recorded int64       `json:"recorded"`
		Capacity int         `json:"capacity"`
		Dropped  int64       `json:"dropped"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Recorded != base+total {
		t.Errorf("recorded = %d, want %d", doc.Recorded, base+total)
	}
	if len(doc.Events) != traceRingCap {
		t.Fatalf("dump holds %d events, want the full ring %d", len(doc.Events), traceRingCap)
	}
	if doc.Dropped != base+total-int64(traceRingCap) {
		t.Errorf("dropped = %d, want %d", doc.Dropped, base+total-int64(traceRingCap))
	}
	for i := 1; i < len(doc.Events); i++ {
		if doc.Events[i].Seq <= doc.Events[i-1].Seq {
			t.Fatalf("post-wraparound dump out of order at %d: seq %d after %d",
				i, doc.Events[i].Seq, doc.Events[i-1].Seq)
		}
	}
	// The survivors are exactly the newest capacity-many, contiguous.
	if got, want := doc.Events[len(doc.Events)-1].Seq, uint64(base+total-1); got != want {
		t.Errorf("newest surviving seq = %d, want %d", got, want)
	}
	if got, want := doc.Events[0].Seq, uint64(base+total)-uint64(traceRingCap); got != want {
		t.Errorf("oldest surviving seq = %d, want %d", got, want)
	}
}

// TestMetricszHostileQueueName opens a queue whose name contains every
// character the Prometheus text format escapes — a double quote, a
// backslash, and a newline — and requires the exposition to stay
// parseable: every line intact (no raw newline smuggled into a label),
// the escaped name present, quotes balanced.
func TestMetricszHostileQueueName(t *testing.T) {
	hostile := "evil\"queue\\with\nnewline"
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	q, err := c.Open(hostile)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue([]byte("v")); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.MetricszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	body := rec.Body.String()

	escaped := `evil\"queue\\with\nnewline`
	if !strings.Contains(body, fmt.Sprintf(`queued_queue_len{queue="%s"}`, escaped)) {
		t.Errorf("metricsz missing the escaped hostile queue name\n%s", body)
	}
	if !strings.Contains(body, fmt.Sprintf(`queued_op_latency_seconds_count{queue="%s",op="enqueue"} 1`, escaped)) {
		t.Errorf("metricsz missing the hostile queue's latency summary\n%s", body)
	}
	// Line-level integrity: every non-comment line must look like
	// `name value` or `name{labels} value` with balanced quotes — a raw
	// newline inside a label value would split one sample into two
	// unparseable lines.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, `"`)-strings.Count(line, `\"`) != 0 &&
			(strings.Count(line, `"`)-strings.Count(line, `\"`))%2 != 0 {
			t.Errorf("unbalanced quotes in sample line %q", line)
		}
		rest := line
		if brace := strings.LastIndexByte(line, '}'); brace >= 0 {
			rest = line[brace+1:]
		} else {
			rest = line[strings.IndexByte(line, ' ')+1:]
		}
		if len(strings.Fields(rest)) != 1 {
			t.Errorf("sample line does not end in exactly one value: %q", line)
		}
	}
}

// TestLoadgenTraceEvery smoke-tests the generator's sampled tracing:
// conservation still holds, roughly one in TraceEvery acked enqueues
// comes back with a server-sampled decomposition, and the per-sample
// arithmetic (total = sched + rtt; stages within rtt) is consistent.
func TestLoadgenTraceEvery(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	res, err := RunLoad(srv.Addr().String(), LoadConfig{
		Rate:       2000,
		Duration:   500 * time.Millisecond,
		Producers:  2,
		Consumers:  2,
		TraceEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("conservation violated: lost=%d dup=%d", res.Lost, res.Dup)
	}
	if len(res.Traces) == 0 {
		t.Fatal("TraceEvery produced no trace samples")
	}
	// Every 4th frame is flagged; all acked flagged frames must close.
	if maxWant := res.Acked/4 + 2; int64(len(res.Traces)) > maxWant {
		t.Errorf("%d traces from %d acked enqueues at 1/4 sampling", len(res.Traces), res.Acked)
	}
	for i, s := range res.Traces {
		if !s.ServerSampled {
			t.Fatalf("trace %d not server-sampled against an obs-on server: %+v", i, s)
		}
		if s.Op != "enqueue" {
			t.Fatalf("trace %d op = %q", i, s.Op)
		}
		if s.TotalMs < s.RTTMs-1e-6 || s.TotalMs < s.SchedMs-1e-6 {
			t.Fatalf("trace %d total %.4f below its parts (sched %.4f, rtt %.4f)",
				i, s.TotalMs, s.SchedMs, s.RTTMs)
		}
		if sum := s.WaitMs + s.FabricMs + s.ReplyMs; sum > s.ServerMs+1e-6 {
			t.Fatalf("trace %d stage sum %.4f exceeds server window %.4f", i, sum, s.ServerMs)
		}
	}
	if snap := srv.Snapshot(); snap.Obs == nil || snap.Obs.Spans == 0 {
		t.Error("no spans landed in the server reservoir")
	}
}
