package server

import (
	"encoding/binary"
	"net"
	"runtime"
	"testing"

	"repro/internal/shard"
)

// rawConn is a minimal wire-speaking test driver: preencoded request
// bursts, in-place reply parsing, no per-frame allocation — so MemStats
// deltas taken around its loop charge the server, not the driver.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	buf  []byte
	r, w int
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn, buf: make([]byte, 1<<20)}
}

func (rc *rawConn) write(b []byte) {
	if _, err := rc.conn.Write(b); err != nil {
		rc.t.Fatal(err)
	}
}

func (rc *rawConn) fill(need int) {
	if rc.w-rc.r >= need {
		return
	}
	if rc.r > 0 {
		copy(rc.buf, rc.buf[rc.r:rc.w])
		rc.w -= rc.r
		rc.r = 0
	}
	for rc.w-rc.r < need {
		n, err := rc.conn.Read(rc.buf[rc.w:])
		if err != nil {
			rc.t.Fatalf("raw read: %v", err)
		}
		rc.w += n
	}
}

// reply reads one frame, returning its status (trace flag stripped) and
// payload (span block stripped; aliases the scan buffer).
func (rc *rawConn) reply() (byte, []byte) {
	rc.fill(4)
	n := int(binary.BigEndian.Uint32(rc.buf[rc.r:]))
	rc.fill(4 + n)
	body := rc.buf[rc.r+4 : rc.r+4+n]
	rc.r += 4 + n
	kind, payload := body[8], body[9:]
	if kind&OpTraceFlag != 0 {
		kind &^= OpTraceFlag
		payload = payload[traceBlockLen:]
	}
	return kind, payload
}

// allocsServer starts a pooled loopback server shaped for burst-W raw
// drivers.
func allocsServer(t *testing.T, w int) *Server {
	t.Helper()
	q, err := shard.New[[]byte](2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q,
		WithObservability(true), WithWindow(w), WithBatchMax(w))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// measureAllocsPerFrame runs round() (answering frames request frames per
// call) until warm, then measures process-wide allocations per answered
// frame over the measured calls, AllocsPerRun-style.
func measureAllocsPerFrame(t *testing.T, frames int, round func()) float64 {
	t.Helper()
	const warm, runs = 8, 24
	for i := 0; i < warm; i++ {
		round()
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		round()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(frames*runs)
}

// TestAllocsPerFrame pins the pooled hot path's per-frame allocation
// budget on a live loopback server, for the single-op, batch, and traced
// wire shapes. The ceilings are deliberately above the observed values
// (which include scheduler and GC jitter) but far below one allocation
// per value — the regression this test exists to catch is the return of
// per-frame ingress buffers, per-reply payload materialization, or
// per-value copies surviving delivery.
func TestAllocsPerFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is timing-sensitive; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the measured path; the CI allocation-gate step runs this without -race")
	}
	const (
		W  = 64
		vs = 128
	)
	cases := []struct {
		name    string
		m       int
		traced  bool
		ceiling float64 // allocs per answered frame (enq+deq averaged)
	}{
		// Observed steady state: ~0.02 (single untraced: pool hits all
		// around), ~0.65 (batch: the fabric's per-block element-header
		// copy), +1 on traced rows (one span record per sampled frame).
		// Ceilings sit ~3x above to absorb GC and scheduler jitter while
		// still failing hard if any per-frame or per-value allocation
		// returns to the path (each such regression adds >= 1).
		{"enq_deq", 1, false, 0.5},
		{"enq_deq_traced", 1, true, 1.8},
		{"batch8", 8, false, 1.5},
		{"batch64", 64, false, 1.5},
		{"batch64_traced", 64, true, 2.8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := allocsServer(t, W)
			rc := dialRaw(t, srv.Addr().String())
			enq, deq := buildBurst(tc.m, vs, W, tc.traced)
			round := func() {
				rc.write(enq)
				for i := 0; i < W; i++ {
					if kind, _ := rc.reply(); kind != StatusOK {
						t.Fatalf("enqueue reply status 0x%02x", kind)
					}
				}
				rc.write(deq)
				for i := 0; i < W; i++ {
					kind, _ := rc.reply()
					if kind != StatusOK && kind != StatusEmpty {
						t.Fatalf("dequeue reply status 0x%02x", kind)
					}
				}
			}
			got := measureAllocsPerFrame(t, 2*W, round)
			t.Logf("m=%d traced=%v: %.3f allocs/frame", tc.m, tc.traced, got)
			if got > tc.ceiling {
				t.Errorf("allocs/frame %.3f exceeds ceiling %.2f", got, tc.ceiling)
			}
		})
	}
}

// buildBurst preencodes W enqueue frames of m values and W matching
// dequeue frames.
func buildBurst(m, vs, w int, traced bool) (enq, deq []byte) {
	value := make([]byte, vs)
	stamp := make([]byte, traceStampLen)
	var cnt, lenw, req [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(m))
	binary.BigEndian.PutUint32(lenw[:], uint32(vs))
	binary.BigEndian.PutUint32(req[:], uint32(m))
	for i := 0; i < w; i++ {
		eop, dop := OpEnqueue, OpDequeue
		if m > 1 {
			eop, dop = OpEnqueueBatch, OpDequeueBatch
		}
		var eparts, dparts [][]byte
		if traced {
			eop |= OpTraceFlag
			dop |= OpTraceFlag
			eparts = append(eparts, stamp)
			dparts = append(dparts, stamp)
		}
		if m > 1 {
			eparts = append(eparts, cnt[:])
			for j := 0; j < m; j++ {
				eparts = append(eparts, lenw[:], value)
			}
			dparts = append(dparts, req[:])
		} else {
			eparts = append(eparts, value)
		}
		enq = appendFrame(enq, uint64(i+1), eop, eparts...)
		deq = appendFrame(deq, uint64(i+1), dop, dparts...)
	}
	return enq, deq
}
