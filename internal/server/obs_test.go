package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSnapshotObsBlock drives traffic through every op class and checks
// that the Snapshot's obs block and per-queue latency summaries account
// for it: present, counted, and round-trippable through the JSON the
// endpoints serve.
func TestSnapshotObsBlock(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)

	for i := 0; i < 10; i++ {
		if err := c.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := c.Dequeue(); err != nil || !ok {
			t.Fatalf("Dequeue %d = (ok=%v, err=%v)", i, ok, err)
		}
	}
	if _, ok, err := c.Dequeue(); err != nil || ok {
		t.Fatalf("empty Dequeue = (ok=%v, err=%v)", ok, err)
	}

	raw, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("Snapshot JSON: %v\n%s", err, raw)
	}
	if snap.Obs == nil {
		t.Fatal("Snapshot.Obs missing with observability on")
	}
	if snap.Obs.EnqueueLat.Count != 10 {
		t.Errorf("aggregate enqueue count = %d, want 10", snap.Obs.EnqueueLat.Count)
	}
	if snap.Obs.DequeueLat.Count != 10 {
		t.Errorf("aggregate dequeue count = %d, want 10", snap.Obs.DequeueLat.Count)
	}
	if snap.Obs.NullDequeueLat.Count != 1 {
		t.Errorf("aggregate null-dequeue count = %d, want 1", snap.Obs.NullDequeueLat.Count)
	}
	if s := snap.Obs.EnqueueLat; s.P50Ms < 0 || s.P50Ms > s.P99Ms || s.P99Ms > s.MaxMs || s.MaxMs <= 0 {
		t.Errorf("implausible enqueue ladder: %+v", s)
	}
	if len(snap.Queues) == 0 || snap.Queues[0].EnqueueLat == nil {
		t.Fatalf("default queue missing enqueue_lat: %+v", snap.Queues)
	}
	if snap.Queues[0].EnqueueLat.Count != 10 {
		t.Errorf("queue enqueue count = %d, want 10", snap.Queues[0].EnqueueLat.Count)
	}
	if snap.Obs.TraceCapacity == 0 || snap.Obs.TraceRecorded == 0 {
		t.Errorf("trace ring not recording: %+v", snap.Obs)
	}
}

// TestObservabilityOffRevertsShape checks the obs-off server: no obs
// block, no per-queue summaries, no trace events — the exact
// pre-observability JSON shape.
func TestObservabilityOffRevertsShape(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil, WithObservability(false))
	c := newTestClient(t, srv)
	if err := c.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Dequeue(); err != nil || !ok {
		t.Fatal(ok, err)
	}

	raw, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, present := doc["obs"]; present {
		t.Error("obs block present with observability off")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Queues[0].EnqueueLat != nil {
		t.Error("per-queue latency summary present with observability off")
	}

	rec := httptest.NewRecorder()
	srv.TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	var trace struct {
		Recorded int64       `json:"recorded"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Fatalf("tracez JSON: %v\n%s", err, rec.Body.String())
	}
	if trace.Recorded != 0 || len(trace.Events) != 0 {
		t.Errorf("tracez recorded events with observability off: %+v", trace)
	}
}

// TestTracezEvents checks that session and queue lifecycle land in the
// trace ring and come back through the handler in sequence order.
func TestTracezEvents(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	if _, err := c.Open("jobs"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// finishSession runs on the worker goroutine after Close; wait for the
	// session_close event rather than sleeping a fixed interval.
	deadline := time.Now().Add(2 * time.Second)
	types := map[string]int{}
	for {
		types = map[string]int{}
		for _, ev := range srv.trace.Events() {
			types[ev.Type]++
		}
		if types["session_close"] > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if types["session_open"] == 0 {
		t.Errorf("no session_open event: %v", types)
	}
	if types["queue_create"] == 0 {
		t.Errorf("no queue_create event: %v", types)
	}
	if types["session_close"] == 0 {
		t.Errorf("no session_close event: %v", types)
	}

	rec := httptest.NewRecorder()
	srv.TracezHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("tracez Content-Type = %q", ct)
	}
	var trace struct {
		Recorded int64       `json:"recorded"`
		Capacity int         `json:"capacity"`
		Events   []obs.Event `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	if trace.Capacity != traceRingCap || trace.Recorded == 0 {
		t.Errorf("tracez header = %+v", trace)
	}
	for i := 1; i < len(trace.Events); i++ {
		if trace.Events[i].Seq <= trace.Events[i-1].Seq {
			t.Fatalf("events out of order at %d: %+v", i, trace.Events)
		}
	}
}

// TestMetricszExposition checks the Prometheus text rendering: the content
// type, core series, and per-(queue, op) summary quantiles.
func TestMetricszExposition(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	for i := 0; i < 5; i++ {
		if err := c.Enqueue([]byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	srv.MetricszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metricsz Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE queued_requests_total counter",
		"queued_sessions_open 1",
		`queued_ops_total{op="enqueue"} 5`,
		`queued_queue_shards{queue="default"} 2`,
		"# TYPE queued_op_latency_seconds summary",
		`queued_op_latency_seconds{queue="default",op="enqueue",quantile="0.5"}`,
		`queued_op_latency_seconds_count{queue="default",op="enqueue"} 5`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q\n%s", want, body)
		}
	}
}

// TestHealthzAndVarz checks the liveness and identity endpoints.
func TestHealthzAndVarz(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)

	rec := httptest.NewRecorder()
	srv.HealthzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("healthz status = %d", rec.Code)
	}
	var health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz JSON: %v\n%s", err, rec.Body.String())
	}
	if health.Status != "ok" || health.UptimeSeconds < 0 {
		t.Errorf("healthz = %+v", health)
	}

	rec = httptest.NewRecorder()
	srv.VarzHandler(map[string]string{"backend": "core"}).
		ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	var varz struct {
		GoVersion string `json:"go_version"`
		Pid       int    `json:"pid"`
		Options   struct {
			Window        int  `json:"window"`
			Observability bool `json:"observability"`
		} `json:"options"`
		Flags map[string]string `json:"flags"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &varz); err != nil {
		t.Fatalf("varz JSON: %v\n%s", err, rec.Body.String())
	}
	if varz.GoVersion == "" || varz.Pid == 0 || varz.Options.Window != 64 || !varz.Options.Observability {
		t.Errorf("varz = %+v", varz)
	}
	if varz.Flags["backend"] != "core" {
		t.Errorf("varz flags = %+v", varz.Flags)
	}
}

// TestAutoscaleHoldEvent checks the rejected-branch trace: an autoscaler
// that decides not to resize a queue still records why, at the sampled
// cadence.
func TestAutoscaleHoldEvent(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithAutoscale(5*time.Millisecond))
	c := newTestClient(t, srv)
	if err := c.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		var hold *obs.Event
		for _, ev := range srv.trace.Events() {
			if ev.Type == "autoscale_hold" {
				hold = &ev
				break
			}
		}
		if hold != nil {
			if hold.Queue != DefaultQueueName {
				t.Errorf("hold event queue = %q", hold.Queue)
			}
			if _, ok := hold.Data["reason"]; !ok {
				t.Errorf("hold event missing reason: %+v", hold.Data)
			}
			if _, ok := hold.Data["rate_per_shard"]; !ok {
				t.Errorf("hold event missing watermark inputs: %+v", hold.Data)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no autoscale_hold event within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
