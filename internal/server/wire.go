// Package server turns the sharded queue fabric into a network service.
//
// The paper's central trick — amortizing contention by propagating batches
// of operations through the tree instead of one at a time — is applied here
// one layer up: a per-connection batcher coalesces pipelined client
// requests into a single pass over the leased fabric handle and a single
// socket flush, so a round-trip's fixed costs (syscalls, scheduling) are
// paid once per batch rather than once per operation.
//
// Four pieces make up the service:
//
//   - A length-prefixed binary wire protocol (this file) carrying
//     Enqueue/Dequeue/Len/Stats/Open/Delete/Resize requests and their replies,
//     each tagged with a client-chosen id so requests can be pipelined
//     and replies matched out of band. Data opcodes come in two flavors:
//     unqualified (targeting the default queue 0, wire-compatible with
//     pre-namespace clients) and queue-qualified (the payload leads with
//     a uint32 queue id from OPEN).
//   - A queue namespace (namespace.go): named queues inside one server,
//     created on first OPEN — each a full sharded fabric of its own, so
//     naming multiplies queues without weakening any per-queue guarantee
//     — deleted explicitly or torn down when idle and empty.
//   - A session manager (session.go): every accepted connection leases
//     fabric handles from the dynamic registries per (connection, queue)
//     — the default queue's at accept, named queues' on first use, all
//     released at teardown — and is reaped when idle, so a dead client
//     cannot pin handle slots forever.
//   - A per-connection batcher (server.go) with a bounded in-flight
//     window: requests beyond the window are answered with an immediate
//     BUSY reply instead of being buffered without bound, and once the
//     reply lane saturates the reader simply stops draining the socket,
//     converting overload into TCP backpressure.
//
// Client (client.go) and open-loop load generator (loadgen.go) speak the
// same protocol; Serve/Dial are re-exported at the repository root.
package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format: every message, in both directions, is one frame
//
//	uint32 length   big-endian, length of the rest of the frame (id + kind + payload)
//	uint64 id       client-chosen request id, echoed verbatim in the reply
//	uint8  kind     request opcode or response status
//	[]byte payload  kind-dependent
//
// Requests and responses draw kinds from disjoint ranges so a stray frame
// read in the wrong direction fails loudly instead of being misparsed.
const (
	// Request opcodes (client to server).
	OpEnqueue byte = 0x01 // payload: the value bytes
	OpDequeue byte = 0x02 // no payload
	OpLen     byte = 0x03 // no payload
	OpStats   byte = 0x04 // no payload

	// Batch opcodes: one frame carries a whole multi-op batch, which the
	// server hands to the fabric as a single multi-op leaf block.
	OpEnqueueBatch byte = 0x05 // payload: count-prefixed values (see encodeBatch)
	OpDequeueBatch byte = 0x06 // payload: uint32 max element count

	// Namespace opcodes: named queues inside one server process. OpOpen
	// creates the named queue on first use (each named queue is its own
	// sharded fabric) and replies with its uint32 queue id; OpDelete
	// removes it and closes its fabric. The default queue — the fabric the
	// server was started with — has the reserved id 0 and the reserved
	// name "default"; it cannot be deleted.
	OpOpen   byte = 0x07 // payload: queue name (1..MaxQueueName bytes); reply: uint32 queue id
	OpDelete byte = 0x08 // payload: queue name

	// OpResize asks the server to resize the target queue's fabric to k
	// shards (clamped to the server's shard bounds); the reply carries the
	// shard count actually applied. The resize is live: operations keep
	// flowing while the topology swaps and retired shards' residues are
	// migrated, so this is an administrative hint, not a fence.
	OpResize byte = 0x09 // payload: uint32 shard count; reply: uint32 applied count

	// OpQueueFlag marks the queue-qualified variant of a data opcode: the
	// payload begins with the uint32 queue id returned by OpOpen, followed
	// by the base opcode's payload. Unqualified opcodes keep their pre-
	// namespace meaning — they target the default queue 0 — so clients
	// that predate the namespace interoperate unchanged.
	OpQueueFlag byte = 0x10

	// Queue-qualified data opcodes (base opcode | OpQueueFlag).
	OpEnqueueQ      = OpEnqueue | OpQueueFlag      // 0x11: uint32 queue id + value bytes
	OpDequeueQ      = OpDequeue | OpQueueFlag      // 0x12: uint32 queue id
	OpLenQ          = OpLen | OpQueueFlag          // 0x13: uint32 queue id
	OpEnqueueBatchQ = OpEnqueueBatch | OpQueueFlag // 0x15: uint32 queue id + count-prefixed values
	OpDequeueBatchQ = OpDequeueBatch | OpQueueFlag // 0x16: uint32 queue id + uint32 max element count
	OpResizeQ       = OpResize | OpQueueFlag       // 0x19: uint32 queue id + uint32 shard count

	// OpTraceFlag marks the traced variant of a data opcode: the client asks
	// the server to record per-stage timestamps for this one frame and ship
	// them back in the reply. A traced request's payload begins with the
	// client's own send timestamp (int64 unix nanoseconds, the client's
	// clock), before any queue-id prefix; the flag composes with OpQueueFlag
	// (trace is stripped first, so ENQ|TRACE|QUEUE = 0x31 decodes as a
	// qualified traced enqueue). Only the four data opcodes that move values
	// are traceable — Enqueue, Dequeue, EnqueueBatch, DequeueBatch and their
	// qualified variants; any other flag-bearing byte stays unknown and is
	// rejected per request. Old clients never set the bit, old servers
	// reject it with a request-scoped ERR, so the flag is wire-compatible
	// in both directions.
	//
	// A successful reply to a traced request carries the same flag on its
	// status byte (StatusOK|OpTraceFlag = 0xA0, StatusEmpty|OpTraceFlag =
	// 0xA1) and prefixes the normal reply payload with a span block: five
	// int64 unix-nano stamps on the server's clock — socket read, batcher
	// admit, fabric call start, fabric call end, reply write (see
	// putSpanBlock). BUSY, error, and closed replies stay plain, as does
	// every reply from a server running with observability off — the client
	// treats a plain status to a traced request as "server declined to
	// sample" and still completes the call normally.
	OpTraceFlag byte = 0x20

	// Response statuses (server to client).
	StatusOK     byte = 0x80 // payload: dequeue value / 8-byte length / stats JSON
	StatusEmpty  byte = 0x81 // dequeue: fabric certified empty
	StatusBusy   byte = 0x82 // backpressure: in-flight window full, retry later
	StatusClosed byte = 0x83 // enqueue: queue closed
	StatusErr    byte = 0x84 // payload: error message
)

// Frame geometry.
const (
	frameHeader = 8 + 1 // id + kind, after the length prefix

	// DefaultMaxFrame bounds a frame's encoded size (and so an enqueued
	// value's size). It exists so one malformed or hostile length prefix
	// cannot make the peer allocate gigabytes.
	DefaultMaxFrame = 1 << 20

	// MaxBatchOps caps the element count of one OpDequeueBatch request.
	// Enqueue batches are implicitly capped by the frame size; a dequeue
	// batch request is 4 bytes however large its count, so without this cap
	// a hostile frame could demand a multi-gigabyte reply reservation.
	MaxBatchOps = 1 << 16

	// MaxQueueName caps a queue name's length in bytes. Names travel in
	// OpOpen/OpDelete payloads and in /statsz JSON; the cap keeps a hostile
	// client from parking megabytes in the namespace table.
	MaxQueueName = 255

	// queueIDLen is the size of the queue-id prefix a qualified opcode
	// carries (see OpQueueFlag).
	queueIDLen = 4

	// traceStampLen is the size of the client send-timestamp prefix a
	// traced request carries (see OpTraceFlag).
	traceStampLen = 8

	// traceBlockLen is the size of the span block prefixed to a traced
	// reply's payload: five int64 server-clock stamps (read, admit, fabric
	// start, fabric end, reply write).
	traceBlockLen = 5 * 8

	// batchReplyOverhead is the batch encoding's cost for shipping a lone
	// value: the count word plus the value's length word. Every value
	// admitted into the fabric must satisfy len <= maxFrame - frameHeader -
	// batchReplyOverhead (enforced at enqueue on both sides), so any value
	// a dequeue pulls out can always be shipped in a batch reply — without
	// this invariant a value within 8 bytes of the cap would fit its single
	// OpEnqueue frame but no DEQ_BATCH reply, and batch consumers would be
	// told "empty" forever while it sat in the session stash.
	batchReplyOverhead = 4 + 4
)

// Protocol-level errors.
var (
	ErrFrameTooLarge = errors.New("server: frame exceeds maximum size")
	ErrBadFrame      = errors.New("server: malformed frame")
)

// frame is one decoded wire message. at is the unix-nano timestamp the
// read loop stamped when it pulled the frame off the socket (0 when
// observability is off); the batch worker turns it into the frame's
// in-server latency sample at reply time.
type frame struct {
	id      uint64
	kind    byte
	payload []byte
	at      int64
}

// appendFrame appends one encoded frame — length prefix, id, kind, then
// the payload parts in order — to dst and returns the extended slice. It
// is the single frame encoder behind both sides' write paths: the parts
// are copied, so callers may reuse their buffers (stack prefix arrays,
// value scratch) the moment it returns.
func appendFrame(dst []byte, id uint64, kind byte, parts ...[]byte) []byte {
	n := frameHeader
	for _, p := range parts {
		n += len(p)
	}
	var hdr [4 + frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = kind
	dst = append(dst, hdr[:]...)
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// AppendWireFrame is appendFrame for callers outside the package that
// speak the raw wire format — the benchmark harness's zero-allocation
// drivers preencode request bursts with it.
func AppendWireFrame(dst []byte, id uint64, kind byte, parts ...[]byte) []byte {
	return appendFrame(dst, id, kind, parts...)
}

// writeFrame appends one frame to w. The caller owns flushing: the batcher
// writes a whole batch of replies and flushes once.
func writeFrame(w *bufio.Writer, id uint64, kind byte, payload []byte) error {
	var hdr [4 + frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(frameHeader+len(payload)))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameWriter is the server's reply egress: replies append into one
// per-session scratch buffer and the batch worker pushes the whole
// window's bytes with a single sized socket write, so frames-per-syscall
// scales with the drained window. With pooled false it emulates the
// pre-pooling egress for the T18 before-arm: per-reply payloads are
// materialized with fresh allocations (encodeBatch, putSpanBlock) exactly
// as the old encode helpers did, and the scratch is released after every
// flush instead of being retained.
type frameWriter struct {
	w      io.Writer
	buf    []byte
	pooled bool
}

const (
	// fwSpill bounds the scratch mid-window: a window whose replies
	// outgrow it is written out in more than one syscall rather than
	// buffering without bound (batch dequeue replies can reach the frame
	// cap each).
	fwSpill = 32 << 10
	// fwRetain caps the capacity kept across flushes; a rare giant window
	// must not pin its scratch forever.
	fwRetain = 64 << 10
)

func newFrameWriter(w io.Writer, pooled bool) *frameWriter {
	return &frameWriter{w: w, pooled: pooled}
}

// spill writes the buffered bytes out early when the scratch has outgrown
// its bound. A failed spill poisons the connection exactly like a failed
// flush — the caller's reply is reported undelivered.
func (fw *frameWriter) spill() error {
	if len(fw.buf) < fwSpill {
		return nil
	}
	return fw.flush()
}

// frame appends one reply frame built from parts (see appendFrame).
func (fw *frameWriter) frame(id uint64, kind byte, parts ...[]byte) error {
	if err := fw.spill(); err != nil {
		return err
	}
	fw.buf = appendFrame(fw.buf, id, kind, parts...)
	return nil
}

// batchFrame appends one batch-reply frame: an optional span-block prefix,
// the count word, then each value length-prefixed — encoded directly into
// the scratch, no intermediate payload buffer. In the unpooled arm it
// materializes the payload through the allocating helpers instead,
// reproducing the pre-pooling cost model.
func (fw *frameWriter) batchFrame(id uint64, kind byte, span []byte, vals [][]byte) error {
	if !fw.pooled {
		payload := encodeBatch(vals)
		if span != nil {
			payload = append(append(make([]byte, 0, len(span)+len(payload)), span...), payload...)
		}
		return fw.frame(id, kind, payload)
	}
	if err := fw.spill(); err != nil {
		return err
	}
	n := frameHeader + len(span) + encodedBatchSize(vals)
	var hdr [4 + frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = kind
	fw.buf = append(fw.buf, hdr[:]...)
	fw.buf = append(fw.buf, span...)
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], uint32(len(vals)))
	fw.buf = append(fw.buf, word[:]...)
	for _, v := range vals {
		binary.BigEndian.PutUint32(word[:], uint32(len(v)))
		fw.buf = append(fw.buf, word[:]...)
		fw.buf = append(fw.buf, v...)
	}
	return nil
}

// flush writes the buffered reply bytes in one socket write and resets the
// scratch, retaining up to fwRetain of capacity (none in the unpooled
// arm).
func (fw *frameWriter) flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	switch {
	case !fw.pooled:
		fw.buf = nil
	case cap(fw.buf) > fwRetain:
		fw.buf = make([]byte, 0, fwRetain)
	default:
		fw.buf = fw.buf[:0]
	}
	return err
}

// readFrame reads one frame from r. The header lands in a stack array —
// only the payload is heap-allocated, so payload-free frames (acks, polls)
// cost nothing. The payload is freshly allocated and escapes to the
// caller; the server's pooled ingress is readFrameBuf.
func readFrame(r *bufio.Reader, maxFrame int) (frame, error) {
	return readFrameAlloc(r, maxFrame, false)
}

// readFrameBuf is the server ingress: the payload is decoded into a pooled
// buffer, which the batch worker recycles (putBuf(f.payload)) once the
// frame's window is processed — by then every enqueue payload has been
// copied out at admit time and every reply byte copied into the egress
// scratch, so the body is dead. With pooled false each payload is a fresh
// allocation and recycling is a no-op, reproducing the pre-pooling read
// path.
func readFrameBuf(r *bufio.Reader, maxFrame int, pooled bool) (frame, error) {
	return readFrameAlloc(r, maxFrame, pooled)
}

func readFrameAlloc(r *bufio.Reader, maxFrame int, pooled bool) (frame, error) {
	// The header is parsed in place from the bufio window (Peek/Discard)
	// rather than copied into a local array: a local passed to io.ReadFull
	// escapes through the io.Reader interface, costing one heap allocation
	// per frame — on the hot path, for 13 bytes.
	hdr, err := r.Peek(4)
	if err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < frameHeader {
		return frame{}, fmt.Errorf("%w: length %d below header size", ErrBadFrame, n)
	}
	if int(n) > maxFrame {
		return frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	r.Discard(4)
	if hdr, err = r.Peek(frameHeader); err != nil {
		return frame{}, err
	}
	f := frame{
		id:   binary.BigEndian.Uint64(hdr[:8]),
		kind: hdr[8],
	}
	r.Discard(frameHeader)
	if m := int(n) - frameHeader; m > 0 {
		// The payload buffer is heap storage either way, so io.ReadFull's
		// escape costs nothing extra here.
		if pooled {
			f.payload = getBuf(m)
		} else {
			f.payload = make([]byte, m)
		}
		if _, err := io.ReadFull(r, f.payload); err != nil {
			if pooled {
				putBuf(f.payload)
			}
			return frame{}, err
		}
	}
	return f, nil
}

// decoded is a request frame with its queue addressing and trace context
// resolved: the base opcode (trace and queue flags stripped), the target
// queue id (0 for unqualified opcodes), and the payload with any trace and
// queue-id prefixes removed.
type decoded struct {
	op     byte   // base opcode, or the BUSY status marker injected by the read loop
	qid    uint32 // target queue id; 0 is the default queue
	rest   []byte // payload after the trace-stamp and queue-id prefixes, if any
	bad    bool   // a frame too short to carry its declared prefixes
	traced bool   // the client set OpTraceFlag on a traceable data opcode
	sendNs int64  // the traced frame's client send stamp (client clock)
}

// decodeOp resolves a frame's trace context and queue addressing. The
// trace flag is stripped first (consuming the 8-byte client send stamp),
// then the queue flag (consuming the uint32 queue-id prefix); unqualified
// opcodes target queue 0. Only the defined traced and qualified opcodes
// are rewritten — any other flag-bearing byte (0x14, 0x17, 0x23, ...)
// passes through untouched so it is rejected as unknown rather than
// silently aliasing a defined op. Status markers (>= 0x80) also pass
// through untouched.
func decodeOp(f frame) decoded {
	d := decoded{op: f.kind, rest: f.payload}
	if d.op&OpTraceFlag != 0 && d.op < StatusOK {
		switch d.op &^ OpTraceFlag {
		case OpEnqueue, OpDequeue, OpEnqueueBatch, OpDequeueBatch,
			OpEnqueueQ, OpDequeueQ, OpEnqueueBatchQ, OpDequeueBatchQ:
		default:
			return d // unknown opcode; rejected by the executor
		}
		if len(d.rest) < traceStampLen {
			d.bad = true
			return d
		}
		d.op &^= OpTraceFlag
		d.traced = true
		d.sendNs = int64(binary.BigEndian.Uint64(d.rest[:traceStampLen]))
		d.rest = d.rest[traceStampLen:]
	}
	switch d.op {
	case OpEnqueueQ, OpDequeueQ, OpLenQ, OpEnqueueBatchQ, OpDequeueBatchQ, OpResizeQ:
	default:
		return d
	}
	d.op &^= OpQueueFlag
	if len(d.rest) < queueIDLen {
		d.bad = true
		return d
	}
	d.qid = binary.BigEndian.Uint32(d.rest[:queueIDLen])
	d.rest = d.rest[queueIDLen:]
	return d
}

// qualify prepends a queue id to an op payload, producing the payload of
// the queue-qualified variant of the opcode.
func qualify(qid uint32, payload []byte) []byte {
	buf := make([]byte, queueIDLen+len(payload))
	binary.BigEndian.PutUint32(buf[:queueIDLen], qid)
	copy(buf[queueIDLen:], payload)
	return buf
}

// tracePrefix prepends a client send stamp to an op payload, producing the
// payload of the traced variant of the opcode. For a frame that is both
// traced and queue-qualified, compose as tracePrefix(ns, qualify(qid, p))
// — the trace stamp leads, matching decodeOp's stripping order.
func tracePrefix(sendNs int64, payload []byte) []byte {
	buf := make([]byte, traceStampLen+len(payload))
	binary.BigEndian.PutUint64(buf[:traceStampLen], uint64(sendNs))
	copy(buf[traceStampLen:], payload)
	return buf
}

// putSpanBlock prepends the traced reply's span block — five int64
// server-clock unix-nano stamps — to a reply payload.
func putSpanBlock(read, admit, fabricStart, fabricEnd, replyWrite int64, payload []byte) []byte {
	buf := make([]byte, traceBlockLen+len(payload))
	for i, ns := range [5]int64{read, admit, fabricStart, fabricEnd, replyWrite} {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(ns))
	}
	copy(buf[traceBlockLen:], payload)
	return buf
}

// splitTracedReply undoes putSpanBlock on the client side: given a reply
// frame, it strips the trace flag and span block if present, returning the
// normalized frame, the five server stamps, and whether the server
// actually sampled the request. A plain reply (server tracing off, or a
// BUSY/error path) passes through with sampled=false; a flagged reply too
// short for its span block is malformed.
func splitTracedReply(f frame) (frame, [5]int64, bool, error) {
	var stamps [5]int64
	if f.kind < StatusOK || f.kind&OpTraceFlag == 0 {
		return f, stamps, false, nil
	}
	if len(f.payload) < traceBlockLen {
		return f, stamps, false, fmt.Errorf("%w: traced reply %d bytes below span block", ErrBadFrame, len(f.payload))
	}
	for i := range stamps {
		stamps[i] = int64(binary.BigEndian.Uint64(f.payload[i*8:]))
	}
	f.kind &^= OpTraceFlag
	f.payload = f.payload[traceBlockLen:]
	if len(f.payload) == 0 {
		f.payload = nil
	}
	return f, stamps, true, nil
}

// Batch payload layout (OpEnqueueBatch requests and OpDequeueBatch StatusOK
// replies): uint32 count, then count x (uint32 length, value bytes), all
// big-endian. The layout is capped by the frame size like any other
// payload, so neither side ever allocates beyond its configured maxFrame.

// encodedBatchSize returns the payload size of a count-prefixed batch.
func encodedBatchSize(vals [][]byte) int {
	n := 4
	for _, v := range vals {
		n += 4 + len(v)
	}
	return n
}

// encodeBatch renders vals as a count-prefixed batch payload. The value
// bytes are copied, so callers may reuse their buffers immediately.
func encodeBatch(vals [][]byte) []byte {
	buf := make([]byte, 4, encodedBatchSize(vals))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(vals)))
	var lenBuf [4]byte
	for _, v := range vals {
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(v)))
		buf = append(buf, lenBuf[:]...)
		buf = append(buf, v...)
	}
	return buf
}

// decodeBatch parses a count-prefixed batch payload. The returned values
// alias payload — callers that outlive the payload's buffer (the server's
// pooled ingress) must use decodeBatchPooled instead; the client decodes
// replies it consumes before the next read, where aliasing is safe.
func decodeBatch(payload []byte) ([][]byte, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("%w: batch payload %d bytes", ErrBadFrame, len(payload))
	}
	count := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	// Every entry needs at least its 4-byte length, so a count beyond
	// len(payload)/4 is malformed however the rest parses.
	if count > uint32(len(payload)/4) {
		return nil, fmt.Errorf("%w: batch count %d exceeds payload", ErrBadFrame, count)
	}
	vals := make([][]byte, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: truncated batch entry %d", ErrBadFrame, i)
		}
		n := binary.BigEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint64(n) > uint64(len(payload)) {
			return nil, fmt.Errorf("%w: batch entry %d length %d exceeds payload", ErrBadFrame, i, n)
		}
		vals = append(vals, payload[:n:n])
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, len(payload))
	}
	return vals, nil
}

// decodeBatchPooled parses a count-prefixed batch payload, copying every
// value into its own pooled buffer and appending them to dst. Unlike
// decodeBatch, nothing in the result aliases payload — the frame body can
// be recycled the moment the window is processed, and each value's storage
// recycles independently when its dequeue reply ships. On a parse error
// the copies already made are returned to the pool and the original dst is
// handed back unchanged.
func decodeBatchPooled(payload []byte, dst [][]byte) ([][]byte, error) {
	base := len(dst)
	fail := func(err error) ([][]byte, error) {
		for _, v := range dst[base:] {
			putBuf(v)
		}
		return dst[:base], err
	}
	if len(payload) < 4 {
		return fail(fmt.Errorf("%w: batch payload %d bytes", ErrBadFrame, len(payload)))
	}
	count := binary.BigEndian.Uint32(payload[:4])
	payload = payload[4:]
	if count > uint32(len(payload)/4) {
		return fail(fmt.Errorf("%w: batch count %d exceeds payload", ErrBadFrame, count))
	}
	if need := base + int(count); cap(dst) < need {
		grown := make([][]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for i := uint32(0); i < count; i++ {
		if len(payload) < 4 {
			return fail(fmt.Errorf("%w: truncated batch entry %d", ErrBadFrame, i))
		}
		n := binary.BigEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint64(n) > uint64(len(payload)) {
			return fail(fmt.Errorf("%w: batch entry %d length %d exceeds payload", ErrBadFrame, i, n))
		}
		dst = append(dst, copyBuf(payload[:n]))
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return fail(fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, len(payload)))
	}
	return dst, nil
}
