package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestOpenDeleteBasics exercises the namespace handshake: ids are stable
// per name, create-on-first-use, never reused after delete, and the
// default queue is protected.
func TestOpenDeleteBasics(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)

	a, err := c.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() == 0 {
		t.Fatalf("named queue got the reserved id 0")
	}
	a2, err := c.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a2.ID() != a.ID() {
		t.Fatalf("re-open of %q: id %d, want %d", "alpha", a2.ID(), a.ID())
	}
	b, err := c.Open("beta")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID() == a.ID() {
		t.Fatalf("distinct names share id %d", b.ID())
	}

	// The reserved name binds queue 0.
	def, err := c.Open(DefaultQueueName)
	if err != nil {
		t.Fatal(err)
	}
	if def.ID() != 0 {
		t.Fatalf("Open(%q) = id %d, want 0", DefaultQueueName, def.ID())
	}
	if err := c.Delete(DefaultQueueName); err == nil {
		t.Fatal("deleting the default queue succeeded")
	}

	if err := c.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("alpha"); err == nil {
		t.Fatal("double delete succeeded")
	}
	// Stale ids must not resolve to the recreated queue: this session was
	// bound to the deleted tenant before the delete, so it sees the closed
	// fabric; a session binding the id fresh would see "unknown queue".
	// Either way the recreated queue must stay untouched.
	a3, err := c.Open("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if a3.ID() == a.ID() {
		t.Fatalf("recreated queue reused id %d", a.ID())
	}
	if err := a.Enqueue([]byte("stale")); err == nil {
		t.Fatal("enqueue via stale id succeeded")
	}
	if _, ok, err := a3.Dequeue(); err != nil || ok {
		t.Fatalf("recreated queue not empty after stale-id enqueue (ok=%v err=%v)", ok, err)
	}
	cFresh := newTestClient(t, srv)
	freshStale := &NamedQueue{c: cFresh, id: a.ID(), name: "alpha"}
	if err := freshStale.Enqueue([]byte("stale")); err == nil || !strings.Contains(err.Error(), "unknown queue") {
		t.Fatalf("fresh session, stale id: err = %v, want unknown queue", err)
	}

	if _, err := c.Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
	if _, err := c.Open(strings.Repeat("x", MaxQueueName+1)); err == nil {
		t.Fatal("oversized name succeeded")
	}
}

// TestNamedQueueIsolation checks that values never cross queues: two
// tenants plus the default queue, interleaved on one connection and read
// back from another.
func TestNamedQueueIsolation(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)

	jobs, err := c.Open("jobs")
	if err != nil {
		t.Fatal(err)
	}
	logs, err := c.Open("logs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := jobs.Enqueue([]byte(fmt.Sprintf("job-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := logs.Enqueue([]byte(fmt.Sprintf("log-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Enqueue([]byte(fmt.Sprintf("def-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := jobs.Len(); err != nil || n != 50 {
		t.Fatalf("jobs.Len = (%d, %v), want 50", n, err)
	}

	// A second connection sees the same queues under the same names, each
	// in per-producer FIFO order, with no cross-queue leakage.
	c2 := newTestClient(t, srv)
	jobs2, err := c2.Open("jobs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v, ok, err := jobs2.Dequeue()
		if err != nil || !ok {
			t.Fatalf("jobs dequeue %d: ok=%v err=%v", i, ok, err)
		}
		if want := fmt.Sprintf("job-%d", i); string(v) != want {
			t.Fatalf("jobs dequeue %d = %q, want %q", i, v, want)
		}
	}
	if _, ok, err := jobs2.Dequeue(); err != nil || ok {
		t.Fatalf("jobs not empty after 50 dequeues (ok=%v err=%v)", ok, err)
	}
	vs, err := c2.DequeueBatch(100) // default queue
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 50 {
		t.Fatalf("default queue held %d values, want 50", len(vs))
	}
	for _, v := range vs {
		if !bytes.HasPrefix(v, []byte("def-")) {
			t.Fatalf("default queue leaked foreign value %q", v)
		}
	}

	snap := srv.Snapshot()
	if snap.Server.QueuesOpen != 3 {
		t.Fatalf("QueuesOpen = %d, want 3", snap.Server.QueuesOpen)
	}
	byName := map[string]QueueStat{}
	for _, qs := range snap.Queues {
		byName[qs.Name] = qs
	}
	if qs := byName["jobs"]; qs.Enqueues != 50 || qs.Dequeues != 50 {
		t.Fatalf("jobs stats = %+v, want 50/50", qs)
	}
	if qs := byName["logs"]; qs.Enqueues != 50 || qs.Dequeues != 0 || qs.Len != 50 {
		t.Fatalf("logs stats = %+v, want enq 50, deq 0, len 50", qs)
	}
}

// TestMaxQueues verifies the named-queue cap and that deletion frees
// capacity.
func TestMaxQueues(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithMaxQueues(2))
	c := newTestClient(t, srv)
	if _, err := c.Open("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("c"); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("third open: err = %v, want limit error", err)
	}
	if err := c.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("c"); err != nil {
		t.Fatalf("open after delete: %v", err)
	}
}

// TestQueueIdleTeardown verifies the idle reaper: a named queue with no
// bound session and no backlog is torn down and recreated fresh, while a
// queue still holding values survives.
func TestQueueIdleTeardown(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithQueueIdleTimeout(50*time.Millisecond))
	c := newTestClient(t, srv)
	empty, err := c.Open("empty")
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.Open("full")
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Enqueue([]byte("keep me")); err != nil {
		t.Fatal(err)
	}
	emptyID, fullID := empty.ID(), full.ID()
	c.Close() // unbind both; their idle clocks start now

	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.ns.reapIdle(time.Now().Add(-50*time.Millisecond)) > 0 || srv.Snapshot().Server.QueuesExpired > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle queue never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}

	c2 := newTestClient(t, srv)
	reopened, err := c2.Open("empty")
	if err != nil {
		t.Fatal(err)
	}
	if reopened.ID() == emptyID {
		t.Fatalf("idle-expired queue kept its id %d", emptyID)
	}
	survivor, err := c2.Open("full")
	if err != nil {
		t.Fatal(err)
	}
	if survivor.ID() != fullID {
		t.Fatalf("non-empty queue was reaped (id %d -> %d)", fullID, survivor.ID())
	}
	if v, ok, err := survivor.Dequeue(); err != nil || !ok || string(v) != "keep me" {
		t.Fatalf("survivor value = (%q, %v, %v)", v, ok, err)
	}
}

// TestOpenDeleteChurnConservation churns the namespace under -race: every
// worker owns a private queue (strict per-queue conservation) while all
// workers fight over a shared queue that is repeatedly deleted and
// recreated. Private queues must conserve exactly; the shared queue's
// deletions are explicit data loss and only sanity-checked.
func TestOpenDeleteChurnConservation(t *testing.T) {
	const (
		workers = 6
		rounds  = 4
		perConn = 60
	)
	srv, _ := newTestServer(t, 2, nil, WithMaxQueues(workers+4))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("private-%d", w)
			for r := 0; r < rounds; r++ {
				c, err := Dial(srv.Addr().String())
				if err != nil {
					t.Error(err)
					return
				}
				q, err := c.Open(name)
				if err != nil {
					t.Errorf("worker %d open: %v", w, err)
					c.Close()
					return
				}
				seen := make(map[string]int)
				for i := 0; i < perConn; i++ {
					key := fmt.Sprintf("w%d-r%d-i%d", w, r, i)
					if err := q.Enqueue([]byte(key)); err != nil {
						t.Errorf("worker %d enqueue: %v", w, err)
						c.Close()
						return
					}
					// Interleave churn on the shared queue. Deletion racing
					// an open is fine; racing ops surface as request-scoped
					// errors ("unknown queue" / closed), never as corruption.
					if i%20 == 10 {
						if sq, err := c.Open("shared"); err == nil {
							sq.Enqueue([]byte("noise"))
							if w%2 == 0 {
								sq.Delete()
							}
						}
					}
				}
				// Drain the private queue completely: exact conservation.
				for len(seen) < perConn {
					v, ok, err := q.Dequeue()
					if err != nil {
						t.Errorf("worker %d dequeue: %v", w, err)
						c.Close()
						return
					}
					if !ok {
						t.Errorf("worker %d: queue empty with %d/%d values seen", w, len(seen), perConn)
						c.Close()
						return
					}
					if !strings.HasPrefix(string(v), fmt.Sprintf("w%d-", w)) {
						t.Errorf("worker %d: foreign value %q in private queue", w, v)
					}
					seen[string(v)]++
				}
				for k, n := range seen {
					if n != 1 {
						t.Errorf("worker %d: value %q seen %d times", w, k, n)
					}
				}
				c.Close()
			}
		}(w)
	}
	wg.Wait()

	// Session teardown is asynchronous to Client.Close; wait for the
	// server to finish before asserting every lease was returned.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Server.SessionsOpen > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions never drained: %d open", srv.Snapshot().Server.SessionsOpen)
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := srv.Snapshot()
	for _, qs := range snap.Queues {
		if qs.Sessions != 0 {
			t.Errorf("queue %q still has %d bound sessions", qs.Name, qs.Sessions)
		}
	}
	if snap.Server.QueuesDeleted == 0 {
		t.Error("shared-queue churn produced no deletions")
	}
}

// TestQualifiedCoalescing pipelines many qualified enqueues on one
// connection and checks they were coalesced into multi-op fabric batches,
// i.e. the batch worker treats same-queue runs like default-queue runs.
func TestQualifiedCoalescing(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithWindow(512))
	c := newTestClient(t, srv)
	q, err := c.Open("bulk")
	if err != nil {
		t.Fatal(err)
	}
	const n = 256
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := q.Enqueue(u64(uint64(i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := make(map[uint64]bool)
	for {
		v, ok, err := q.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got[binary.BigEndian.Uint64(v)] = true
	}
	if len(got) != n {
		t.Fatalf("drained %d distinct values, want %d", len(got), n)
	}
	st := srv.Snapshot().Server
	if st.FabricBatches == 0 {
		t.Error("no multi-op fabric calls recorded for qualified traffic")
	}
	if st.OpsPerBatch <= 1.0 {
		t.Errorf("ops/batch = %.2f; pipelined qualified enqueues never coalesced", st.OpsPerBatch)
	}
}

// TestUndefinedQualifiedOpcodes sends flag-bearing bytes that are NOT
// defined qualified opcodes (0x14 would alias STATS, 0x17 OPEN, 0x18
// DELETE if the flag were stripped blindly): each must be rejected as
// unknown, and in particular 0x17 must not create a queue.
func TestUndefinedQualifiedOpcodes(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	payload := append([]byte{0, 0, 0, 1}, []byte("ghost")...) // plausible qid + name
	for i, kind := range []byte{0x14, 0x17, 0x18, 0x1f} {
		if err := writeFrame(bw, uint64(i+1), kind, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	for i := 0; i < 4; i++ {
		f, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if f.kind != StatusErr || !strings.Contains(string(f.payload), "unknown opcode") {
			t.Fatalf("reply %d = kind 0x%02x %q, want unknown-opcode ERR", i, f.kind, f.payload)
		}
	}
	if n := srv.Snapshot().Server.QueuesOpen; n != 1 {
		t.Fatalf("undefined opcode created a queue: %d open, want 1", n)
	}
}

// TestSnapshotQueueJSONRoundTrip pins the per-queue stats JSON encoding:
// /statsz consumers parse these fields by name.
func TestSnapshotQueueJSONRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	q, err := c.Open("audit")
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	data, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Queues) != 2 {
		t.Fatalf("snapshot holds %d queues, want 2", len(snap.Queues))
	}
	if snap.Queues[0].ID != 0 || snap.Queues[0].Name != DefaultQueueName {
		t.Fatalf("queue 0 = %+v, want the default queue first", snap.Queues[0])
	}
	audit := snap.Queues[1]
	if audit.Name != "audit" || audit.Enqueues != 1 || audit.Len != 1 || audit.Sessions != 1 {
		t.Fatalf("audit stats = %+v", audit)
	}
	if snap.Server.QueuesOpened != 1 {
		t.Fatalf("QueuesOpened = %d, want 1", snap.Server.QueuesOpened)
	}
	// Elastic-topology state rides every per-queue entry: fresh fabrics
	// report their initial epoch and shard count with zero resize history.
	if audit.Shards != 2 || audit.Epoch != 1 || audit.Grows != 0 || audit.Shrinks != 0 {
		t.Fatalf("audit elastic stats = %+v, want 2 shards at epoch 1, no resizes", audit)
	}
	// The raw JSON must use the stable field names.
	for _, key := range []string{`"queues_open"`, `"queues_opened"`, `"queues_deleted"`, `"queues_expired"`,
		`"queues"`, `"sessions"`, `"shards"`, `"epoch"`, `"grows"`, `"shrinks"`, `"migrated"`,
		`"empty_dequeues"`, `"autoscale_grows"`, `"autoscale_shrinks"`, `"wire_resizes"`,
		`"min_shards"`, `"max_shards"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("stats JSON lacks %s", key)
		}
	}
}

// TestNamedHandleExhaustion checks that an exhausted per-queue registry is
// a request-scoped error on that queue only — the session and its other
// queues keep working.
func TestNamedHandleExhaustion(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithQueueFactory(func() (*shard.Queue[[]byte], error) {
		return shard.New[[]byte](1, shard.WithMaxHandles(1))
	}))
	c1 := newTestClient(t, srv)
	q1, err := c1.Open("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := q1.Enqueue([]byte("v")); err != nil { // takes the only slot
		t.Fatal(err)
	}
	c2 := newTestClient(t, srv)
	q2, err := c2.Open("tiny") // open succeeds: no lease needed yet
	if err != nil {
		t.Fatal(err)
	}
	if err := q2.Enqueue([]byte("w")); err == nil || !strings.Contains(err.Error(), "leased") {
		t.Fatalf("enqueue on exhausted queue: err = %v, want lease exhaustion", err)
	}
	if err := c2.Enqueue([]byte("default still works")); err != nil {
		t.Fatalf("default queue broken by named exhaustion: %v", err)
	}
	// Releasing the first session frees the slot for the second.
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := q2.Enqueue([]byte("w")); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
