package server

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/queues"
	"repro/internal/queues/queuetest"
	"repro/internal/shard"
)

// netQueue adapts a server-backed set of clients to the queues.Queue
// interface so the repository's conformance suite can run over loopback.
// The backing fabric has a single shard, where the relaxed cross-shard
// order vanishes and the service must behave as one linearizable FIFO.
type netQueue struct {
	handles []wireQueue
	name    string
}

func (q *netQueue) Name() string { return q.name }
func (q *netQueue) Procs() int   { return len(q.handles) }
func (q *netQueue) Handle(i int) (queues.Handle, error) {
	if i < 0 || i >= len(q.handles) {
		return nil, fmt.Errorf("net: handle index %d out of range [0,%d)", i, len(q.handles))
	}
	return netHandle{c: q.handles[i]}, nil
}

// wireQueue is the operation surface netHandle needs; both *Client (the
// default queue) and *NamedQueue (a named tenant) provide it.
type wireQueue interface {
	Enqueue(v []byte) error
	Dequeue() ([]byte, bool, error)
	EnqueueBatch(vs [][]byte) error
	DequeueBatch(n int) ([][]byte, error)
}

// netHandle is one client connection as a queues.Handle. Wire values are
// the int64's big-endian bytes.
type netHandle struct{ c wireQueue }

func (h netHandle) Enqueue(v int64) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(v))
	if err := h.c.Enqueue(buf[:]); err != nil {
		panic(fmt.Sprintf("net enqueue: %v", err))
	}
}

func (h netHandle) Dequeue() (int64, bool) {
	v, ok, err := h.c.Dequeue()
	if err != nil {
		panic(fmt.Sprintf("net dequeue: %v", err))
	}
	if !ok {
		return 0, false
	}
	if len(v) != 8 {
		panic(fmt.Sprintf("net dequeue: %d-byte value", len(v)))
	}
	return int64(binary.BigEndian.Uint64(v)), true
}

// EnqueueBatch ships the batch as one native ENQ_BATCH frame.
func (h netHandle) EnqueueBatch(vs []int64) {
	bs := make([][]byte, len(vs))
	for i, v := range vs {
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, uint64(v))
		bs[i] = buf
	}
	if err := h.c.EnqueueBatch(bs); err != nil {
		panic(fmt.Sprintf("net enqueue batch: %v", err))
	}
}

// DequeueBatch ships one native DEQ_BATCH frame. The tiny 8-byte values of
// the conformance suite never hit the reply frame cap, so a short count
// here means the fabric certified empty, as the suite expects.
func (h netHandle) DequeueBatch(n int) ([]int64, int) {
	bs, err := h.c.DequeueBatch(n)
	if err != nil {
		panic(fmt.Sprintf("net dequeue batch: %v", err))
	}
	out := make([]int64, len(bs))
	for i, b := range bs {
		if len(b) != 8 {
			panic(fmt.Sprintf("net dequeue batch: %d-byte value", len(b)))
		}
		out[i] = int64(binary.BigEndian.Uint64(b))
	}
	return out, len(out)
}

// SetCounter is a no-op: the cost model counts shared-memory steps, which
// happen on the server side of the wire.
func (h netHandle) SetCounter(*metrics.Counter) {}

// TestLoopbackConformance runs the full FIFO/conservation conformance
// suite against the service over localhost: every check that holds for the
// in-process queue must survive the wire, the session layer, and the
// batcher.
func TestLoopbackConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback conformance pays a round trip per op")
	}
	factory := queues.Factory{
		Name: "net(sharded-1)",
		New: func(procs int) (queues.Queue, error) {
			if procs < 1 {
				return nil, fmt.Errorf("net: procs %d must be at least 1", procs)
			}
			q, err := shard.New[[]byte](1, shard.WithMaxHandles(procs))
			if err != nil {
				return nil, err
			}
			srv, err := Serve("127.0.0.1:0", q)
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { srv.Close() })
			nq := &netQueue{name: "net(sharded-1)"}
			for i := 0; i < procs; i++ {
				c, err := Dial(srv.Addr().String())
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { c.Close() })
				nq.handles = append(nq.handles, c)
			}
			return nq, nil
		},
	}
	queuetest.Run(t, factory)
}

// TestNamedLoopbackConformance runs the same suite against a *named*
// queue: every connection Opens the same name and operates through
// queue-qualified frames, so the whole namespace path — OPEN handshake,
// per-(connection, queue) leases, qualified coalescing — must preserve
// the single-queue FIFO and conservation semantics at k=1. The default
// queue of the serving fabric is left untouched; any value leaking
// between queue 0 and the named tenant fails the suite.
func TestNamedLoopbackConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("loopback conformance pays a round trip per op")
	}
	factory := queues.Factory{
		Name: "net(named-1)",
		New: func(procs int) (queues.Queue, error) {
			if procs < 1 {
				return nil, fmt.Errorf("net: procs %d must be at least 1", procs)
			}
			q, err := shard.New[[]byte](1, shard.WithMaxHandles(procs))
			if err != nil {
				return nil, err
			}
			srv, err := Serve("127.0.0.1:0", q, WithQueueFactory(func() (*shard.Queue[[]byte], error) {
				return shard.New[[]byte](1, shard.WithMaxHandles(procs))
			}))
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { srv.Close() })
			nq := &netQueue{name: "net(named-1)"}
			for i := 0; i < procs; i++ {
				c, err := Dial(srv.Addr().String())
				if err != nil {
					return nil, err
				}
				t.Cleanup(func() { c.Close() })
				named, err := c.Open("conformance")
				if err != nil {
					return nil, err
				}
				nq.handles = append(nq.handles, named)
			}
			return nq, nil
		},
	}
	queuetest.Run(t, factory)
}

// TestConnectionChurnConservation churns sessions under load: many
// goroutines repeatedly connect, push a batch, pull what they can, and
// disconnect, so handle leases are acquired and released continuously
// while values flow. Every acknowledged value must come back exactly once,
// and every lease must be returned.
func TestConnectionChurnConservation(t *testing.T) {
	const (
		workers   = 8
		conns     = 6   // sequential connections per worker
		perConn   = 120 // enqueues per connection
		maxLeases = 5   // fewer slots than workers: denials must occur and recover
	)
	q, err := shard.New[[]byte](4, shard.WithMaxHandles(maxLeases))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, WithWindow(16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		enqueued = make(map[uint64]bool)
		got      = make(map[uint64]int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for conn := 0; conn < conns; conn++ {
				var (
					mine []uint64
					seen []uint64
				)
				// A denied session (registry full) is expected with
				// workers > maxLeases; retry until a lease frees up.
				for {
					c, err := Dial(srv.Addr().String())
					if err != nil {
						t.Error(err)
						return
					}
					key0 := uint64(w)<<32 | uint64(conn)<<16
					if err := c.Enqueue(u64(key0)); err != nil {
						c.Close()
						time.Sleep(time.Millisecond)
						continue
					}
					mine = append(mine, key0)
					for i := 1; i < perConn; i++ {
						key := key0 | uint64(i)
						if err := c.Enqueue(u64(key)); err != nil {
							t.Errorf("worker %d conn %d enqueue %d: %v", w, conn, i, err)
							c.Close()
							return
						}
						mine = append(mine, key)
						if i%3 == 0 {
							if v, ok, err := c.Dequeue(); err != nil {
								t.Errorf("worker %d dequeue: %v", w, err)
								c.Close()
								return
							} else if ok {
								seen = append(seen, binary.BigEndian.Uint64(v))
							}
						}
					}
					c.Close()
					break
				}
				mu.Lock()
				for _, k := range mine {
					enqueued[k] = true
				}
				for _, k := range seen {
					got[k]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Drain the residue through one final session.
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for {
		v, ok, err := c.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got[binary.BigEndian.Uint64(v)]++
	}

	for k, n := range got {
		if n > 1 {
			t.Errorf("value %#x dequeued %d times", k, n)
		}
		if !enqueued[k] {
			t.Errorf("phantom value %#x dequeued", k)
		}
	}
	for k := range enqueued {
		if got[k] == 0 {
			t.Errorf("value %#x lost", k)
		}
	}
	if want := workers * conns * perConn; len(enqueued) != want {
		t.Errorf("enqueued %d distinct values, want %d", len(enqueued), want)
	}

	if inUse := q.RegistryStats().InUse; inUse != 1 { // the drain client's lease
		t.Errorf("InUse after churn = %d, want 1", inUse)
	}
	st := srv.Snapshot()
	if st.Fabric.Registry.Acquires < int64(workers*conns) {
		t.Errorf("lease churn %d below session churn %d", st.Fabric.Registry.Acquires, workers*conns)
	}
}

func u64(v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return buf[:]
}
