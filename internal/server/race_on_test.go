//go:build race

package server

// raceEnabled reports whether the test binary was built with the race
// detector, whose instrumentation allocates on paths that are
// allocation-free in normal builds — allocation-gate tests skip under it.
const raceEnabled = true
