package server

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"repro/internal/shard"
)

// TestWireResize covers the manual RESIZE path: default queue, named
// queue, bound clamping, and unknown-queue failure.
func TestWireResize(t *testing.T) {
	srv, q := newTestServer(t, 2, nil, WithShardBounds(1, 8))
	c := newTestClient(t, srv)

	// Named queue first: the default factory clones the default queue's
	// shape at creation time, so this fabric starts at 2 shards.
	nq, err := c.Open("elastic")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := nq.Resize(3); err != nil || got != 3 {
		t.Fatalf("NamedQueue.Resize(3) = (%d, %v), want (3, nil)", got, err)
	}
	// Enqueue across the next resize: data must survive the topology swap.
	for i := 0; i < 20; i++ {
		if err := nq.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := nq.Resize(1); err != nil || got != 1 {
		t.Fatalf("NamedQueue.Resize(1) = (%d, %v), want (1, nil)", got, err)
	}
	for i := 0; i < 20; i++ {
		v, ok, err := nq.Dequeue()
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("dequeue %d after shrink = (%v, %v, %v)", i, v, ok, err)
		}
	}

	got, err := c.Resize(4)
	if err != nil || got != 4 {
		t.Fatalf("Resize(4) = (%d, %v), want (4, nil)", got, err)
	}
	if q.Shards() != 4 {
		t.Fatalf("default fabric has %d shards after wire resize, want 4", q.Shards())
	}
	// Beyond the bounds: clamped, not refused.
	if got, err = c.Resize(100); err != nil || got != 8 {
		t.Fatalf("Resize(100) = (%d, %v), want clamped (8, nil)", got, err)
	}

	// The per-queue stats must report the resize history.
	data, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	var st QueueStat
	for _, qs := range snap.Queues {
		if qs.Name == "elastic" {
			st = qs
		}
	}
	if st.Shards != 1 || st.Epoch != 3 || st.Grows != 1 || st.Shrinks != 1 {
		t.Fatalf("elastic queue stats = %+v, want 1 shard at epoch 3 after 1 grow + 1 shrink", st)
	}
	if snap.Server.WireResizes != 4 {
		t.Fatalf("WireResizes = %d, want 4", snap.Server.WireResizes)
	}

	if err := c.Delete("elastic"); err != nil {
		t.Fatal(err)
	}
	if _, err := nq.Resize(2); err == nil {
		t.Fatal("Resize against a deleted queue id succeeded")
	}
}

// TestAutoscaleGrowShrink drives the autoscaler through a full cycle:
// sustained load grows the default queue's fabric toward the upper bound,
// and going idle shrinks it back to the lower bound — all while a
// conservation check rides along (every enqueued value dequeued exactly
// once, in producer order, across every autoscaler-initiated migration).
func TestAutoscaleGrowShrink(t *testing.T) {
	srv, q := newTestServer(t, 1, nil,
		WithAutoscale(20*time.Millisecond),
		WithShardBounds(1, 4),
		WithAutoscaleWatermarks(50, 400))
	c := newTestClient(t, srv)

	awaitShards := func(want int, during func() error) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for q.Shards() != want {
			if time.Now().After(deadline) {
				t.Fatalf("fabric stuck at %d shards, want %d", q.Shards(), want)
			}
			if during != nil {
				if err := during(); err != nil {
					t.Fatal(err)
				}
			} else {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}

	seq, next := 0, 0
	burst := func() error { // well above 400 ops/s/shard while it runs
		for i := 0; i < 64; i++ {
			if err := c.Enqueue([]byte(fmt.Sprintf("%08d", seq))); err != nil {
				return err
			}
			seq++
			v, ok, err := c.Dequeue()
			if err != nil {
				return err
			}
			if ok {
				if got := string(v); got != fmt.Sprintf("%08d", next) {
					return fmt.Errorf("dequeued %q, want seq %08d (FIFO broken across autoscale)", got, next)
				}
				next++
			}
		}
		return nil
	}
	awaitShards(4, burst)

	// Null dequeues at a trickle rate: capacity is provably idle, so the
	// scaler must halve its way back to the lower bound.
	awaitShards(1, func() error {
		_, _, err := c.Dequeue()
		time.Sleep(2 * time.Millisecond)
		return err
	})

	// Drain the remainder: conservation and order must have survived the
	// grow and every shrink migration.
	for next < seq {
		v, ok, err := c.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if got := string(v); got != fmt.Sprintf("%08d", next) {
			t.Fatalf("dequeued %q, want seq %08d", got, next)
		}
		next++
	}

	snap := srv.Snapshot()
	if snap.Server.AutoscaleGrows < 2 || snap.Server.AutoscaleShrinks < 2 {
		t.Errorf("autoscaler counters = %d grows / %d shrinks, want >= 2 each (1 -> 4 -> 1 by doubling/halving)",
			snap.Server.AutoscaleGrows, snap.Server.AutoscaleShrinks)
	}
	if snap.Fabric.Resize.Epoch < 5 {
		t.Errorf("fabric epoch = %d, want >= 5 after a 1->2->4->2->1 cycle", snap.Fabric.Resize.Epoch)
	}
}

// TestAutoscaleBoundsClamp: a queue that starts outside the configured
// shard envelope is pulled inside it unconditionally, without waiting for
// the load-signal arms to fire.
func TestAutoscaleBoundsClamp(t *testing.T) {
	_, q := newTestServer(t, 6, nil,
		WithAutoscale(15*time.Millisecond),
		WithShardBounds(1, 2))
	deadline := time.Now().Add(10 * time.Second)
	for q.Shards() > 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue stuck at %d shards, want <= 2 (bounds clamp never fired)", q.Shards())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAutoscaleValidation pins the option validation.
func TestAutoscaleValidation(t *testing.T) {
	q, err := shard.New[[]byte](2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Serve("127.0.0.1:0", q, WithShardBounds(0, 4)); err == nil {
		t.Error("Serve accepted min shards 0")
	}
	if _, err := Serve("127.0.0.1:0", q, WithShardBounds(4, 2)); err == nil {
		t.Error("Serve accepted max < min shard bounds")
	}
	if _, err := Serve("127.0.0.1:0", q, WithAutoscale(time.Second),
		WithAutoscaleWatermarks(500, 100)); err == nil {
		t.Error("Serve accepted high watermark below low")
	}
}
