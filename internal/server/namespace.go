package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Namespace errors, shipped to clients as StatusErr payload text.
var (
	// ErrUnknownQueue reports an operation against a queue id or name the
	// namespace does not hold (never created, deleted, or idle-expired).
	ErrUnknownQueue = errors.New("server: unknown queue")
	// ErrTooManyQueues reports an OpOpen that would exceed the server's
	// named-queue cap.
	ErrTooManyQueues = errors.New("server: named queue limit reached")
	// ErrBadQueueName reports an empty or oversized queue name.
	ErrBadQueueName = errors.New("server: queue name must be 1..255 bytes")
	// errDefaultQueue reports an OpDelete aimed at the default queue.
	errDefaultQueue = errors.New("server: the default queue cannot be deleted")
)

// DefaultQueueName is the reserved name of queue 0, the fabric the server
// was started with. Opening it returns id 0; deleting it is refused.
const DefaultQueueName = "default"

// tenant is one queue in the server's namespace: the default fabric
// (id 0) or a named fabric created on first OpOpen. Each tenant owns an
// entire ShardedQueue, so every per-queue guarantee — per-producer FIFO,
// wait-freedom, conservation — is exactly the single-queue guarantee;
// the namespace multiplies queues, it does not weaken them.
type tenant struct {
	id      uint32
	name    string
	q       *shard.Queue[[]byte]
	created time.Time

	// refs counts sessions currently bound to this queue; lastUse is the
	// time of the last bind/unbind transition. Both are guarded by the
	// namespace mutex. The idle clock only matters while refs == 0.
	refs    int
	lastUse time.Time

	// Per-queue operation tallies, counted at the service layer when ops
	// are acknowledged (values, not frames). Atomics: bumped by batch
	// workers without the namespace lock. emptyDeqs and deqPolls count
	// per *request frame* — one batch frame is one poll however many
	// values it moves — so emptyDeqs/deqPolls is the autoscaler's
	// null-dequeue rate in consistent units: the fraction of dequeue
	// requests that found the queue empty.
	enqueues  atomic.Int64
	dequeues  atomic.Int64
	emptyDeqs atomic.Int64
	deqPolls  atomic.Int64

	// hists holds this queue's per-opcode latency histograms; nil when the
	// server runs with observability off, which also turns every Record
	// call site into a skipped branch.
	hists *obs.OpHists
}

// namespace is the server's queue registry: name -> tenant and id ->
// tenant, with create-on-first-open, an upper bound on named queues, and
// idle teardown for queues no session is bound to. Ids are never reused,
// so a client holding the id of a deleted queue gets ErrUnknownQueue
// rather than another tenant's data.
type namespace struct {
	mu      sync.Mutex
	byName  map[string]*tenant
	byID    map[uint32]*tenant
	nextID  uint32
	max     int // cap on named queues (the default queue is not counted)
	factory func() (*shard.Queue[[]byte], error)

	opened  atomic.Int64 // named queues created
	dropped atomic.Int64 // named queues removed by OpDelete
	expired atomic.Int64 // named queues removed by the idle reaper

	// obsOn decides whether new tenants get latency histograms; trace is
	// the server's control-plane event ring (nil when tracing is off —
	// Ring.Add is a nil-safe no-op).
	obsOn bool
	trace *obs.Ring
}

// init seeds the namespace with the default queue as tenant 0.
func (ns *namespace) init(def *shard.Queue[[]byte], maxQueues int, factory func() (*shard.Queue[[]byte], error), obsOn bool, trace *obs.Ring) {
	ns.obsOn = obsOn
	ns.trace = trace
	t := &tenant{id: 0, name: DefaultQueueName, q: def, created: time.Now(), lastUse: time.Now()}
	if obsOn {
		t.hists = obs.NewOpHists()
	}
	ns.byName = map[string]*tenant{t.name: t}
	ns.byID = map[uint32]*tenant{0: t}
	ns.max = maxQueues
	ns.factory = factory
}

// open returns the tenant for name, instantiating its fabric on first use.
// When bind is set the calling session is counted as bound (refs) under
// the same lock, so a concurrent idle reap cannot tear the queue down
// between creation and first use.
func (ns *namespace) open(name string, bind bool) (*tenant, error) {
	if len(name) == 0 || len(name) > MaxQueueName {
		return nil, ErrBadQueueName
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	t, ok := ns.byName[name]
	if !ok {
		if len(ns.byName)-1 >= ns.max {
			return nil, fmt.Errorf("%w (max %d)", ErrTooManyQueues, ns.max)
		}
		q, err := ns.factory()
		if err != nil {
			return nil, err
		}
		ns.nextID++
		t = &tenant{id: ns.nextID, name: name, q: q, created: time.Now(), lastUse: time.Now()}
		if ns.obsOn {
			t.hists = obs.NewOpHists()
		}
		ns.byName[name] = t
		ns.byID[t.id] = t
		ns.opened.Add(1)
		ns.trace.Add("queue_create", name, map[string]any{
			"id": t.id, "shards": q.Shards()})
	}
	if bind {
		t.refs++
		t.lastUse = time.Now()
	}
	return t, nil
}

// bind resolves a queue id and counts the calling session as bound.
func (ns *namespace) bind(qid uint32) (*tenant, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	t, ok := ns.byID[qid]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownQueue, qid)
	}
	t.refs++
	t.lastUse = time.Now()
	return t, nil
}

// unbind reverses one bind; the queue's idle clock starts when the last
// session unbinds.
func (ns *namespace) unbind(t *tenant) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	t.refs--
	t.lastUse = time.Now()
}

// lookup resolves a queue id without binding (for OpLen, which needs no
// handle lease).
func (ns *namespace) lookup(qid uint32) (*tenant, bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	t, ok := ns.byID[qid]
	return t, ok
}

// remove deletes a named queue: it disappears from the namespace at once
// (subsequent opens create a fresh queue under a fresh id) and its fabric
// is closed, so bound sessions' enqueues start failing StatusClosed while
// their dequeues may drain the remainder. Values still inside the fabric
// are dropped with it — deletion is the owner's explicit choice, exactly
// like closing a local fabric that still holds elements.
func (ns *namespace) remove(name string) error {
	ns.mu.Lock()
	t, ok := ns.byName[name]
	if !ok {
		ns.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownQueue, name)
	}
	if t.id == 0 {
		ns.mu.Unlock()
		return errDefaultQueue
	}
	delete(ns.byName, name)
	delete(ns.byID, t.id)
	ns.dropped.Add(1)
	ns.mu.Unlock()
	ns.trace.Add("queue_delete", name, map[string]any{
		"id": t.id, "len_at_delete": t.q.Len()})
	t.q.Close()
	return nil
}

// reapIdle removes named queues that have had no bound session since
// cutoff and are empty, closing their fabrics, and reports how many it
// removed. Emptiness is part of the predicate: an idle queue still
// holding a backlog is someone's data and survives until drained or
// explicitly deleted.
func (ns *namespace) reapIdle(cutoff time.Time) int {
	ns.mu.Lock()
	var victims []*tenant
	for _, t := range ns.byID {
		if t.id == 0 || t.refs > 0 || t.lastUse.After(cutoff) {
			continue
		}
		if t.q.Len() > 0 {
			continue
		}
		victims = append(victims, t)
	}
	for _, t := range victims {
		delete(ns.byName, t.name)
		delete(ns.byID, t.id)
		ns.expired.Add(1)
	}
	ns.mu.Unlock()
	for _, t := range victims {
		ns.trace.Add("queue_expire", t.name, map[string]any{"id": t.id})
		t.q.Close()
	}
	return len(victims)
}

// tenants snapshots the live tenants so the autoscaler can walk them
// without holding the namespace lock across Resize migrations.
func (ns *namespace) tenants() []*tenant {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	out := make([]*tenant, 0, len(ns.byID))
	for _, t := range ns.byID {
		out = append(out, t)
	}
	return out
}

// count returns the number of live queues, including the default queue.
func (ns *namespace) count() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.byID)
}

// QueueStat is a point-in-time view of one queue in the namespace, part
// of the stable /statsz JSON encoding. Enqueues/Dequeues count values
// acknowledged at the service layer (a batch frame carrying m values adds
// m), so per-queue conservation is auditable from the outside: for a
// quiescent queue, Enqueues - Dequeues == Len.
type QueueStat struct {
	ID       uint32 `json:"id"`
	Name     string `json:"name"`
	Sessions int    `json:"sessions"` // sessions currently bound to this queue
	Len      int    `json:"len"`      // fabric backlog estimate
	Enqueues int64  `json:"enqueues"` // values acknowledged enqueued
	Dequeues int64  `json:"dequeues"` // values delivered by dequeue replies

	// Elastic-topology state of this queue's fabric: the current shard
	// count, its topology epoch, lifetime grow/shrink counts (autoscaler
	// and wire-level Resize combined), elements moved by shrink
	// migrations, and the null-dequeue tally the autoscaler shrinks on.
	Shards        int    `json:"shards"`
	Epoch         uint64 `json:"epoch"`
	Grows         int64  `json:"grows"`
	Shrinks       int64  `json:"shrinks"`
	Migrated      int64  `json:"migrated"`
	EmptyDequeues int64  `json:"empty_dequeues"`

	// In-server latency summaries per operation class, measured from the
	// moment a request frame is read off the socket to the moment its
	// reply is written (so window queueing is included). Present only when
	// the server runs with observability on.
	EnqueueLat     *obs.LatencySummary `json:"enqueue_lat,omitempty"`
	DequeueLat     *obs.LatencySummary `json:"dequeue_lat,omitempty"`
	BatchLat       *obs.LatencySummary `json:"batch_lat,omitempty"`
	NullDequeueLat *obs.LatencySummary `json:"null_dequeue_lat,omitempty"`
}

// queueStats snapshots every live queue, ordered by id (the default queue
// first).
func (ns *namespace) queueStats() []QueueStat {
	ns.mu.Lock()
	out := make([]QueueStat, 0, len(ns.byID))
	for _, t := range ns.byID {
		rs := t.q.ResizeStats()
		qs := QueueStat{
			ID:            t.id,
			Name:          t.name,
			Sessions:      t.refs,
			Len:           t.q.Len(),
			Enqueues:      t.enqueues.Load(),
			Dequeues:      t.dequeues.Load(),
			Shards:        t.q.Shards(),
			Epoch:         rs.Epoch,
			Grows:         rs.Grows,
			Shrinks:       rs.Shrinks,
			Migrated:      rs.Migrated,
			EmptyDequeues: t.emptyDeqs.Load(),
		}
		if t.hists != nil {
			for op, dst := range map[obs.Op]**obs.LatencySummary{
				obs.OpEnqueue:     &qs.EnqueueLat,
				obs.OpDequeue:     &qs.DequeueLat,
				obs.OpBatch:       &qs.BatchLat,
				obs.OpNullDequeue: &qs.NullDequeueLat,
			} {
				if s := t.hists.Summary(op); s.Count > 0 {
					c := s
					*dst = &c
				}
			}
		}
		out = append(out, qs)
	}
	ns.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// aggregateLat merges every live queue's histograms into one summary per
// op class, for the server-wide obs block in Snapshot and /metricsz.
func (ns *namespace) aggregateLat() [obs.NumOps]obs.LatencySummary {
	var accums [obs.NumOps]obs.Accum
	for _, t := range ns.tenants() {
		if t.hists == nil {
			continue
		}
		for op := obs.Op(0); op < obs.NumOps; op++ {
			t.hists.Hist(op).CollectInto(&accums[op])
		}
	}
	var out [obs.NumOps]obs.LatencySummary
	for op := obs.Op(0); op < obs.NumOps; op++ {
		out[op] = accums[op].Summary()
	}
	return out
}
