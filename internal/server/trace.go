package server

import (
	"encoding/binary"
	"time"
)

// Client-side request tracing: the traced variants of the data operations
// set OpTraceFlag on the wire, carry the client's send timestamp, and
// close the span the server stamped with the reply's receive time. See
// OpTraceFlag in wire.go for the frame layout and obs.Span for the
// server-side record.

// TraceStages is the client's clock-skew-free decomposition of one traced
// operation. Client-clock and server-clock stamps are never subtracted
// from each other: RTTMs is a client-clock interval, the stage columns are
// server-clock intervals, and NetMs is the difference of the two
// intervals — everything the RTT spent outside the server's read-to-reply
// window (network both ways, the server's socket flush, and the client's
// read path). The server-side flush stage itself cannot ride the reply it
// precedes; /spanz has that split.
type TraceStages struct {
	Op string `json:"op"` // latency class of the traced frame

	// ServerSampled is false when the server answered plain — it runs with
	// observability off, predates tracing, or the traced reply could not
	// fit the frame cap. Only RTTMs is meaningful then.
	ServerSampled bool `json:"server_sampled"`

	RTTMs    float64 `json:"rtt_ms"`    // client send to client receive (client clock)
	WaitMs   float64 `json:"wait_ms"`   // socket read to batcher admit
	FabricMs float64 `json:"fabric_ms"` // the queue operation
	ReplyMs  float64 `json:"reply_ms"`  // fabric end to reply write
	ServerMs float64 `json:"server_ms"` // socket read to reply write (sum of the above + read-side slack)
	NetMs    float64 `json:"net_ms"`    // RTTMs - ServerMs: network + server flush + client read
}

// traceStagesFrom closes a span on the client: sendNs/recvNs are the
// client's own stamps, stamps the server's five (read, admit, fabric
// start, fabric end, reply write). Stage durations are clamped at zero
// like Span.StageNs.
func traceStagesFrom(op string, sendNs, recvNs int64, stamps [5]int64, sampledByServer bool) TraceStages {
	ms := func(ns int64) float64 {
		if ns < 0 {
			return 0
		}
		return float64(ns) / 1e6
	}
	st := TraceStages{Op: op, RTTMs: ms(recvNs - sendNs)}
	if !sampledByServer {
		return st
	}
	st.ServerSampled = true
	read, admit, fabStart, fabEnd, replyWrite := stamps[0], stamps[1], stamps[2], stamps[3], stamps[4]
	st.WaitMs = ms(admit - read)
	st.FabricMs = ms(fabEnd - fabStart)
	st.ReplyMs = ms(replyWrite - fabEnd)
	st.ServerMs = ms(replyWrite - read)
	st.NetMs = ms(int64((st.RTTMs - st.ServerMs) * 1e6))
	return st
}

// tracedRoundTrip issues one traced request synchronously: the base op
// gains the queue and trace flags, the payload its prefixes, and the
// reply is normalized back to its plain form with the closed stages
// alongside.
func (c *Client) tracedRoundTrip(baseOp byte, opName string, qid uint32, payload []byte) (frame, TraceStages, error) {
	// The trace stamp leads, then the queue id — matching decodeOp's
	// stripping order — in one stack prefix array, so a traced qualified
	// frame costs no more encode allocations than a plain one.
	op := baseOp | OpTraceFlag
	var prefix [traceStampLen + queueIDLen]byte
	sendNs := time.Now().UnixNano()
	binary.BigEndian.PutUint64(prefix[:traceStampLen], uint64(sendNs))
	pre := prefix[:traceStampLen]
	if qid != 0 {
		op |= OpQueueFlag
		binary.BigEndian.PutUint32(prefix[traceStampLen:], qid)
		pre = prefix[:]
	}
	cl, err := c.startParts(op, nil, nil, pre, payload)
	if err != nil {
		return frame{}, TraceStages{}, err
	}
	if err := c.flush(); err != nil {
		return frame{}, TraceStages{}, err
	}
	<-cl.done
	rf, cerr, recvNs := cl.f, cl.err, cl.recvNs
	putCall(cl)
	if cerr != nil {
		return frame{}, TraceStages{}, cerr
	}
	if recvNs == 0 {
		recvNs = time.Now().UnixNano() // plain reply: the read loop didn't stamp
	}
	f, stamps, sampledByServer, err := splitTracedReply(rf)
	if err != nil {
		return frame{}, TraceStages{}, err
	}
	return f, traceStagesFrom(opName, sendNs, recvNs, stamps, sampledByServer), nil
}

// EnqueueTraced is Enqueue with request tracing: the frame is flagged for
// per-stage timing, the server (when observability is on) records a span
// — visible on /spanz and in the stage histograms — and the returned
// TraceStages decompose this one call's latency. Use it to sample, not to
// wrap every call: a traced frame pays extra clock reads and a 40-byte
// reply prefix.
func (c *Client) EnqueueTraced(v []byte) (TraceStages, error) { return c.enqueueTraced(0, v) }

func (c *Client) enqueueTraced(qid uint32, v []byte) (TraceStages, error) {
	if len(v)+frameHeader+batchReplyOverhead > c.maxFrame {
		return TraceStages{}, errValueTooLarge(len(v), c.maxFrame)
	}
	f, st, err := c.tracedRoundTrip(OpEnqueue, "enqueue", qid, v)
	if err != nil {
		return TraceStages{}, err
	}
	if f.kind != StatusOK {
		return TraceStages{}, statusErr(f)
	}
	return st, nil
}

// DequeueTraced is Dequeue with request tracing (see EnqueueTraced). The
// stages are valid whether or not a value was delivered — an empty poll is
// a traced null-dequeue.
func (c *Client) DequeueTraced() ([]byte, bool, TraceStages, error) { return c.dequeueTraced(0) }

func (c *Client) dequeueTraced(qid uint32) ([]byte, bool, TraceStages, error) {
	f, st, err := c.tracedRoundTrip(OpDequeue, "dequeue", qid, nil)
	if err != nil {
		return nil, false, TraceStages{}, err
	}
	switch f.kind {
	case StatusOK:
		return f.payload, true, st, nil
	case StatusEmpty:
		st.Op = "null_dequeue" // match the server's latency class
		return nil, false, st, nil
	default:
		return nil, false, TraceStages{}, statusErr(f)
	}
}

// EnqueueTraced appends v to the named queue with request tracing (see
// Client.EnqueueTraced).
func (q *NamedQueue) EnqueueTraced(v []byte) (TraceStages, error) {
	return q.c.enqueueTraced(q.id, v)
}

// DequeueTraced removes an element from the named queue with request
// tracing (see Client.DequeueTraced).
func (q *NamedQueue) DequeueTraced() ([]byte, bool, TraceStages, error) {
	return q.c.dequeueTraced(q.id)
}
