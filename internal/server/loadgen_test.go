package server

import (
	"testing"
	"time"

	"repro/internal/stats"
)

func TestRunLoadConfigValidation(t *testing.T) {
	if _, err := RunLoad("127.0.0.1:1", LoadConfig{Rate: 0, Duration: time.Second}); err == nil {
		t.Error("Rate 0 accepted")
	}
	if _, err := RunLoad("127.0.0.1:1", LoadConfig{Rate: 100}); err == nil {
		t.Error("Duration 0 accepted")
	}
}

func TestOpenLoopConservation(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	cfg := LoadConfig{
		Rate:         4000,
		Duration:     300 * time.Millisecond,
		Producers:    2,
		Consumers:    2,
		ValueSize:    64,
		Burst:        4,
		Window:       16,
		DrainTimeout: 5 * time.Second,
	}
	res, err := RunLoad(srv.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Acked == 0 {
		t.Fatalf("no load offered: %+v", res)
	}
	if !res.Conserved() {
		t.Fatalf("conservation violated: lost=%d dup=%d", res.Lost, res.Dup)
	}
	if res.Foreign != 0 {
		t.Errorf("foreign values on a fresh fabric: %d", res.Foreign)
	}
	if res.Consumed != res.Acked {
		t.Errorf("consumed %d != acked %d", res.Consumed, res.Acked)
	}
	if len(res.EnqLatMs) != int(res.Acked) {
		t.Errorf("%d enqueue latencies for %d acks", len(res.EnqLatMs), res.Acked)
	}
	if len(res.E2ELatMs) != int(res.Acked) {
		t.Errorf("%d e2e latencies for %d acks", len(res.E2ELatMs), res.Acked)
	}
	p50 := stats.Percentile(res.E2ELatMs, 50)
	p99 := stats.Percentile(res.E2ELatMs, 99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("implausible latency percentiles p50=%v p99=%v", p50, p99)
	}
	if res.AchievedRate() <= 0 {
		t.Errorf("achieved rate %v", res.AchievedRate())
	}
}

// TestOpenLoopBackpressure overloads a deliberately tiny window so the
// generator observes BUSY rejections — and the run must still conserve
// every *acknowledged* value.
func TestOpenLoopBackpressure(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithWindow(1), WithBatchMax(1))
	cfg := LoadConfig{
		Rate:         20000,
		Duration:     200 * time.Millisecond,
		Producers:    1,
		Consumers:    1,
		Burst:        32,
		Window:       64,
		DrainTimeout: 5 * time.Second,
	}
	res, err := RunLoad(srv.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("conservation violated under backpressure: lost=%d dup=%d", res.Lost, res.Dup)
	}
	t.Logf("offered=%d acked=%d busy=%d", res.Offered, res.Acked, res.Busy)
}

// TestOpenLoopNamedQueues runs two concurrent loads against two named
// queues on one server — single-op frames on one, native batch frames on
// the other — and requires exact per-queue conservation with zero
// cross-queue traffic. The default queue must stay empty throughout.
func TestOpenLoopNamedQueues(t *testing.T) {
	srv, q := newTestServer(t, 2, nil)
	base := LoadConfig{
		Rate:         2000,
		Duration:     300 * time.Millisecond,
		Producers:    1,
		Consumers:    1,
		DrainTimeout: 5 * time.Second,
	}
	type out struct {
		res *LoadResult
		err error
	}
	outs := make(chan out, 2)
	for _, cfg := range []LoadConfig{
		func() LoadConfig { c := base; c.Queue = "tenant-a"; return c }(),
		func() LoadConfig { c := base; c.Queue = "tenant-b"; c.Batch = 4; return c }(),
	} {
		go func(cfg LoadConfig) {
			res, err := RunLoad(srv.Addr().String(), cfg)
			outs <- out{res, err}
		}(cfg)
	}
	for i := 0; i < 2; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.res.Acked == 0 {
			t.Fatalf("tenant %q: nothing acknowledged", o.res.Config.Queue)
		}
		if !o.res.Conserved() {
			t.Fatalf("tenant %q: lost=%d dup=%d", o.res.Config.Queue, o.res.Lost, o.res.Dup)
		}
		if o.res.Foreign != 0 {
			t.Errorf("tenant %q: %d foreign values crossed queues", o.res.Config.Queue, o.res.Foreign)
		}
	}
	if n := q.Len(); n != 0 {
		t.Errorf("default queue picked up %d values from named-queue runs", n)
	}
}

// TestOpenLoopForeignBacklog plants values from "a previous run" before
// the load starts: the run must report them Foreign and still certify
// conservation for its own values.
func TestOpenLoopForeignBacklog(t *testing.T) {
	srv, q := newTestServer(t, 1, nil)
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	const leftovers = 40
	stale := make([]byte, MinValueSize) // plausible key/nonce from another run
	for i := 0; i < leftovers; i++ {
		if err := h.Enqueue(stale); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Enqueue([]byte("runt")); err != nil { // malformed short value
		t.Fatal(err)
	}
	h.Release()

	res, err := RunLoad(srv.Addr().String(), LoadConfig{
		Rate:         2000,
		Duration:     200 * time.Millisecond,
		Producers:    1,
		Consumers:    1,
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatalf("foreign backlog broke conservation: lost=%d dup=%d", res.Lost, res.Dup)
	}
	if res.Foreign != leftovers+1 {
		t.Errorf("Foreign = %d, want %d", res.Foreign, leftovers+1)
	}
	if res.Consumed != res.Acked+leftovers+1 {
		t.Errorf("Consumed = %d, want acked %d + foreign %d", res.Consumed, res.Acked, leftovers+1)
	}
}
