package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig parameterizes one open-loop run against a queue service.
//
// The generator is open-loop in the standard sense: enqueue send times are
// scheduled from the target rate alone, independent of how fast the
// service answers, and every latency is measured from the op's *scheduled*
// time. When the service falls behind, queueing delay therefore shows up
// in the percentiles instead of silently throttling the offered load —
// the coordinated-omission-free methodology.
type LoadConfig struct {
	Rate      int           // offered enqueue rate, ops/s across all producers (> 0)
	Duration  time.Duration // producing phase length
	Producers int           // producer connections (default 2)
	Consumers int           // consumer connections (default 2)
	ValueSize int           // payload bytes; floored at MinValueSize
	Burst     int           // frames sent per scheduling tick per producer (default 1; larger = burstier arrivals at the same average rate)
	Batch     int           // values per enqueue frame (default 1; >1 uses the native batch opcodes on both sides)
	Window    int           // max in-flight request frames per producer connection (default 32)

	// Queue names the target queue. Empty drives the default queue 0;
	// otherwise every producer and consumer connection Opens the named
	// queue and all traffic rides the queue-qualified opcodes, so several
	// RunLoad calls with distinct names load independent tenants of one
	// server — each with its own exact conservation check (a value of one
	// queue surfacing in another would be reported Foreign there and Lost
	// here).
	Queue string

	// TraceEvery samples every Nth enqueue frame per producer for request
	// tracing (0, the default, disables it). A traced frame carries the
	// wire trace flag and its send timestamp: the server (observability
	// on) stamps its stages — feeding /spanz and the stage histograms —
	// and the client-closed decomposition is collected into
	// LoadResult.Traces. Tracing rides the normal open-loop schedule, so
	// the samples are a true cross-section of the offered load.
	TraceEvery int

	// DrainTimeout bounds how long consumers may chase the acked backlog
	// after producers stop (default 10s). Values still unconsumed at the
	// deadline are reported Lost.
	DrainTimeout time.Duration
}

// MinValueSize fits the conservation key, the schedule timestamp, and the
// run nonce that separates this run's values from a previous run's
// leftover backlog on a long-lived server.
const MinValueSize = 24

func (cfg *LoadConfig) setDefaults() error {
	if cfg.Rate <= 0 {
		return errors.New("loadgen: Rate must be positive")
	}
	if cfg.Duration <= 0 {
		return errors.New("loadgen: Duration must be positive")
	}
	if cfg.Producers <= 0 {
		cfg.Producers = 2
	}
	if cfg.Consumers <= 0 {
		cfg.Consumers = 2
	}
	if cfg.ValueSize < MinValueSize {
		cfg.ValueSize = MinValueSize
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 1
	}
	if batchBytes := 4 + cfg.Batch*(4+cfg.ValueSize); batchBytes+frameHeader > DefaultMaxFrame {
		return fmt.Errorf("loadgen: batch of %d %d-byte values (%d bytes encoded) exceeds the %d-byte frame cap",
			cfg.Batch, cfg.ValueSize, batchBytes, DefaultMaxFrame)
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if len(cfg.Queue) > MaxQueueName {
		return fmt.Errorf("loadgen: queue name %d bytes exceeds the %d-byte cap", len(cfg.Queue), MaxQueueName)
	}
	return nil
}

// openTarget resolves cfg.Queue on a fresh connection: queue id 0 for the
// default queue, else an OpOpen round trip.
func openTarget(c *Client, cfg LoadConfig) (uint32, error) {
	if cfg.Queue == "" {
		return 0, nil
	}
	nq, err := c.Open(cfg.Queue)
	if err != nil {
		return 0, err
	}
	return nq.ID(), nil
}

// LoadResult is the outcome of one open-loop run.
type LoadResult struct {
	Config  LoadConfig    `json:"config"`
	Elapsed time.Duration `json:"elapsed"`

	Offered int64 `json:"offered"` // enqueues scheduled and sent
	Acked   int64 `json:"acked"`   // enqueues acknowledged StatusOK
	Busy    int64 `json:"busy"`    // enqueues rejected StatusBusy (backpressure)
	Errors  int64 `json:"errors"`  // enqueues failing any other way

	Consumed int64 `json:"consumed"` // values dequeued by the consumers
	Foreign  int64 `json:"foreign"`  // dequeued values not produced by this run (pre-existing backlog)
	Lost     int64 `json:"lost"`     // acked values never dequeued within DrainTimeout
	Dup      int64 `json:"dup"`      // values dequeued more than once

	EnqLatMs []float64 `json:"-"` // scheduled-send to enqueue-ack, ms
	E2ELatMs []float64 `json:"-"` // scheduled-send to consumer-dequeue, ms

	Traces []TraceSample `json:"-"` // closed spans of the traced enqueue frames (TraceEvery > 0)
}

// TraceSample is one traced enqueue frame's closed span from the load
// generator's vantage: the client-side stage decomposition plus the
// open-loop schedule stamp, so the sample decomposes the same
// scheduled-send-to-ack metric the EnqLatMs percentiles report —
// TotalMs = SchedMs (client pacing + window wait) + RTTMs, and RTTMs
// itself splits into the server stages + NetMs.
type TraceSample struct {
	TraceStages
	SchedMs float64 `json:"sched_ms"` // scheduled send to actual send
	TotalMs float64 `json:"total_ms"` // scheduled send to ack receive
}

// AchievedRate returns acknowledged enqueues per second over the producing
// phase.
func (r *LoadResult) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Acked) / r.Elapsed.Seconds()
}

// Conserved reports whether the run kept the queue's conservation
// invariant observable from outside: nothing acknowledged was lost and
// nothing was delivered twice.
func (r *LoadResult) Conserved() bool { return r.Lost == 0 && r.Dup == 0 }

// enqMeta tags an in-flight enqueue frame with its identity and schedule
// slot. A batch frame covers the count consecutive sequences starting at
// seq; its one ack (or rejection) covers them all. Metas live in a
// fixed per-producer slab that doubles as the in-flight window: the
// producer takes one to send a frame (blocking when all are out), the
// collector returns it once the frame's fate is recorded — so pacing
// allocates no per-frame metadata and boxes no interface values.
type enqMeta struct {
	seq    int64
	count  int
	sched  time.Time
	traced bool  // the frame carries the wire trace flag
	sendNs int64 // the traced frame's actual send stamp
}

// producerState accumulates one producer connection's outcome. The
// collector goroutine owns the mutable fields until runProducer returns.
type producerState struct {
	acked    []atomic.Bool // seq -> acknowledged
	latMs    []float64
	traces   []TraceSample
	offered  int64
	ackCount int64
	busy     int64
	errs     int64
}

// consumerOut is one consumer connection's haul.
type consumerOut struct {
	keys    []uint64 // keys of this run's values, in dequeue order
	latMs   []float64
	foreign int64 // dequeued values not stamped with this run's nonce
}

// RunLoad drives one open-loop run against the queue service at addr.
//
// Producers pace enqueues at the configured rate; each value carries a
// (producer, sequence) key, its schedule timestamp, and a per-run nonce
// (so leftover backlog from an earlier run reads as Foreign, not as this
// run's values). Consumers dequeue
// concurrently and, after the producing phase, chase the acknowledged
// backlog until it is fully consumed or DrainTimeout expires. The result
// reports exact conservation: every acknowledged value must be dequeued
// exactly once.
func RunLoad(addr string, cfg LoadConfig) (*LoadResult, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}

	// Generous over-allocation of the per-producer sequence space: pacing
	// can only fire the planned number of bursts (catch-up bursts replace
	// skipped slots, they do not add any). One tick carries Burst frames of
	// Batch values each, so the tick gap scales with both.
	perProducer := float64(cfg.Rate) / float64(cfg.Producers)
	gap := time.Duration(float64(cfg.Burst*cfg.Batch) / perProducer * float64(time.Second))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	maxSeq := int64(perProducer*cfg.Duration.Seconds()) + int64(2*cfg.Burst*cfg.Batch) + 16

	// The nonce stamps every value this run produces. Without it, a second
	// qload run against a server still holding an interrupted run's backlog
	// would mistake the leftovers for its own keys and report phantom
	// duplicates.
	nonce := uint64(time.Now().UnixNano())

	var (
		prodWG, consWG sync.WaitGroup
		prods          = make([]*producerState, cfg.Producers)
		runErr         = make(chan error, cfg.Producers+cfg.Consumers)
		ackedTotal     atomic.Int64 // final once producers join
		consumedOurs   atomic.Int64 // this run's values seen by consumers
		stopConsumers  = make(chan struct{})
		consumedCh     = make(chan consumerOut, cfg.Consumers)
	)

	ours := func(key, vnonce uint64) bool {
		p, seq := int(key>>40), int64(key&(1<<40-1))
		return vnonce == nonce && p < cfg.Producers && seq < maxSeq
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)

	for p := 0; p < cfg.Producers; p++ {
		// Latency samples are preallocated at the sequence-space bound (one
		// sample per acked value) so the hot ack path never grows the slice:
		// a measurement harness that allocates per sample would smear its own
		// GC over the latencies it reports.
		ps := &producerState{
			acked: make([]atomic.Bool, maxSeq),
			latMs: make([]float64, 0, maxSeq),
		}
		if cfg.TraceEvery > 0 {
			ps.traces = make([]TraceSample, 0, maxSeq/int64(cfg.Batch*cfg.TraceEvery)+1)
		}
		prods[p] = ps
		prodWG.Add(1)
		go func(p int, ps *producerState) {
			defer prodWG.Done()
			if err := runProducer(addr, cfg, p, ps, nonce, deadline, gap, &ackedTotal); err != nil {
				runErr <- fmt.Errorf("producer %d: %w", p, err)
			}
		}(p, ps)
	}

	for c := 0; c < cfg.Consumers; c++ {
		consWG.Add(1)
		go func(c int) {
			defer consWG.Done()
			out, err := runConsumer(addr, cfg, stopConsumers, ours, &consumedOurs)
			if err != nil {
				runErr <- fmt.Errorf("consumer %d: %w", c, err)
				return
			}
			consumedCh <- out
		}(c)
	}

	prodWG.Wait()
	producing := time.Since(start)

	// Producers are done, so ackedTotal is final: give the consumers until
	// DrainTimeout to account for every acknowledged value.
	drainDeadline := time.Now().Add(cfg.DrainTimeout)
	for consumedOurs.Load() < ackedTotal.Load() && time.Now().Before(drainDeadline) {
		time.Sleep(time.Millisecond)
	}
	close(stopConsumers)
	consWG.Wait()
	close(consumedCh)
	close(runErr)

	for err := range runErr {
		return nil, err
	}

	res := &LoadResult{Config: cfg, Elapsed: producing}
	seen := make(map[uint64]int)
	for out := range consumedCh {
		res.Consumed += int64(len(out.keys)) + out.foreign
		res.Foreign += out.foreign
		res.E2ELatMs = append(res.E2ELatMs, out.latMs...)
		for _, k := range out.keys {
			seen[k]++
		}
	}
	for p, ps := range prods {
		res.Offered += ps.offered
		res.Acked += ps.ackCount
		res.Busy += ps.busy
		res.Errors += ps.errs
		res.EnqLatMs = append(res.EnqLatMs, ps.latMs...)
		res.Traces = append(res.Traces, ps.traces...)
		for seq := int64(0); seq < ps.offered; seq++ {
			if !ps.acked[seq].Load() {
				continue
			}
			n := seen[loadKey(p, seq)]
			if n == 0 {
				res.Lost++
			} else if n > 1 {
				res.Dup += int64(n - 1)
			}
			delete(seen, loadKey(p, seq))
		}
	}
	// Whatever remains carries this run's nonce but was never acknowledged
	// to a producer: an ack lost to a connection failure. Report it with
	// the foreign backlog rather than as a conservation violation.
	for _, n := range seen {
		res.Foreign += int64(n)
	}
	return res, nil
}

// loadKey packs a producer index and sequence number into the value key.
func loadKey(producer int, seq int64) uint64 {
	return uint64(producer)<<40 | uint64(seq)
}

// runProducer paces enqueues open-loop until deadline.
func runProducer(addr string, cfg LoadConfig, p int, ps *producerState, nonce uint64,
	deadline time.Time, gap time.Duration, ackedTotal *atomic.Int64) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	qid, err := openTarget(c, cfg)
	if err != nil {
		return err
	}

	// Completions arrive on one shared channel; the meta slab bounds the
	// in-flight window (the producer blocks taking a meta when all Window
	// of them are out). done's capacity exceeds the window so the client's
	// read loop can never block delivering a completion.
	done := make(chan *call, cfg.Window+1)
	tokens := make(chan *enqMeta, cfg.Window)
	for i := 0; i < cfg.Window; i++ {
		tokens <- new(enqMeta)
	}
	var collectorWG sync.WaitGroup
	collectorWG.Add(1)
	go func() {
		defer collectorWG.Done()
		for cl := range done {
			meta := cl.tag.(*enqMeta)
			n := int64(meta.count)
			f := cl.f
			if meta.traced && cl.err == nil {
				// Normalize the traced reply and close the span. A parse
				// failure degrades the frame to an error below rather than
				// aborting the run.
				nf, stamps, sampledByServer, perr := splitTracedReply(cl.f)
				if perr != nil {
					f = frame{id: cl.f.id, kind: StatusErr}
				} else {
					f = nf
					if f.kind == StatusOK {
						recv := cl.recvNs
						if recv == 0 {
							recv = time.Now().UnixNano() // plain reply: unstamped
						}
						opName := "enqueue"
						if meta.count > 1 {
							opName = "batch"
						}
						st := traceStagesFrom(opName, meta.sendNs, recv, stamps, sampledByServer)
						sched := float64(meta.sendNs-meta.sched.UnixNano()) / 1e6
						if sched < 0 {
							sched = 0
						}
						ps.traces = append(ps.traces, TraceSample{
							TraceStages: st,
							SchedMs:     sched,
							TotalMs:     sched + st.RTTMs,
						})
					}
				}
			}
			switch {
			case cl.err != nil:
				ps.errs += n
			case f.kind == StatusOK:
				lat := float64(time.Since(meta.sched)) / float64(time.Millisecond)
				for k := int64(0); k < n; k++ {
					ps.acked[meta.seq+k].Store(true)
					ps.latMs = append(ps.latMs, lat)
				}
				ps.ackCount += n
				ackedTotal.Add(n)
			case f.kind == StatusBusy:
				ps.busy += n
			default:
				ps.errs += n
			}
			putCall(cl)
			tokens <- meta // frees the window slot; the meta is reused
		}
	}()

	seq, broken := int64(0), false
	frames := int64(0) // frames sent, for the TraceEvery sampling stride
	// One value buffer per batch slot, reused across frames: both the
	// single-op path (the client copies into its write buffer) and
	// encodeBatch copy the bytes out before start returns.
	values := make([][]byte, cfg.Batch)
	for i := range values {
		values[i] = make([]byte, cfg.ValueSize)
		binary.BigEndian.PutUint64(values[i][16:24], nonce)
	}
	// prefixBuf holds the frame's wire prefixes — trace stamp first, then
	// queue id, matching decodeOp's stripping order — assembled in place so
	// a traced qualified frame costs no more encode allocations than a
	// plain one (the client copies the parts into its own scratch).
	var prefixBuf [traceStampLen + queueIDLen]byte
	next := time.Now()
pacing:
	for time.Now().Before(deadline) && seq+int64(cfg.Burst*cfg.Batch) < int64(len(ps.acked)) {
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		sched := next
		for b := 0; b < cfg.Burst; b++ {
			meta := <-tokens // blocks when the window is full; the delay lands in the latency
			for k := range values {
				binary.BigEndian.PutUint64(values[k][0:8], loadKey(p, seq+int64(k)))
				binary.BigEndian.PutUint64(values[k][8:16], uint64(sched.UnixNano()))
			}
			*meta = enqMeta{seq: seq, count: cfg.Batch, sched: sched}
			op := OpEnqueue
			if cfg.Batch > 1 {
				op = OpEnqueueBatch
			}
			pre := prefixBuf[:0]
			if cfg.TraceEvery > 0 && frames%int64(cfg.TraceEvery) == 0 {
				meta.traced = true
				meta.sendNs = time.Now().UnixNano()
				op |= OpTraceFlag
				pre = binary.BigEndian.AppendUint64(pre, uint64(meta.sendNs))
			}
			if qid != 0 {
				op |= OpQueueFlag
				pre = binary.BigEndian.AppendUint32(pre, qid)
			}
			frames++
			var err error
			if cfg.Batch == 1 {
				_, err = c.startParts(op, done, meta, pre, values[0])
			} else {
				_, err = c.startBatch(op, pre, values, done, meta)
			}
			if err != nil {
				tokens <- meta
				ps.errs += int64(cfg.Batch)
				broken = true
				break pacing
			}
			ps.offered += int64(cfg.Batch)
			seq += int64(cfg.Batch)
		}
		if err := c.flush(); err != nil {
			ps.errs += int64(cfg.Batch)
			broken = true
			break
		}
		next = next.Add(gap)
	}
	if broken {
		// Force the read loop down so every pending call completes with an
		// error; otherwise the window drain below could wait forever on
		// replies that will never come.
		c.Close()
	}

	// Reclaiming the whole meta slab proves the pipeline is empty; then the
	// collector can be retired.
	for i := 0; i < cfg.Window; i++ {
		<-tokens
	}
	close(done)
	collectorWG.Wait()
	return nil
}

// runConsumer dequeues until told to stop, recording end-to-end latency
// (scheduled enqueue time to dequeue completion) for values of this run.
func runConsumer(addr string, cfg LoadConfig, stop <-chan struct{},
	ours func(key, nonce uint64) bool, consumedOurs *atomic.Int64) (consumerOut, error) {
	var out consumerOut
	// Seeded with room for a fair share of the backlog so the recording
	// path mostly appends in place; growth past this is amortized doubling.
	out.keys = make([]uint64, 0, 4096)
	out.latMs = make([]float64, 0, 4096)
	c, err := Dial(addr)
	if err != nil {
		return out, err
	}
	defer c.Close()
	qid, err := openTarget(c, cfg)
	if err != nil {
		return out, err
	}
	record := func(v []byte) {
		if len(v) < MinValueSize {
			out.foreign++ // malformed for this run's layout: not ours
			return
		}
		key := binary.BigEndian.Uint64(v[0:8])
		if !ours(key, binary.BigEndian.Uint64(v[16:24])) {
			out.foreign++
			return
		}
		out.keys = append(out.keys, key)
		sched := time.Unix(0, int64(binary.BigEndian.Uint64(v[8:16])))
		out.latMs = append(out.latMs, float64(time.Since(sched))/float64(time.Millisecond))
		consumedOurs.Add(1)
	}
	for {
		var (
			got int
			err error
		)
		if cfg.Batch > 1 {
			var vs [][]byte
			vs, err = c.dequeueBatch(qid, cfg.Batch)
			for _, v := range vs {
				record(v)
			}
			got = len(vs)
		} else {
			var v []byte
			var ok bool
			v, ok, err = c.dequeue(qid)
			if ok {
				record(v)
				got = 1
			}
		}
		if err != nil {
			return out, err
		}
		if got == 0 {
			select {
			case <-stop:
				return out, nil
			default:
				// The fabric certified empty: producers are pacing slower
				// than we drain. Back off briefly instead of spinning.
				time.Sleep(200 * time.Microsecond)
				continue
			}
		}
	}
}
