package server

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// session is one accepted connection and the fabric handle leased to it.
// The lease spans the connection's lifetime: Acquire at accept, Release at
// teardown, so the paper's per-process handle becomes a per-client
// capability and registry churn mirrors connection churn.
type session struct {
	id   uint64
	conn net.Conn
	h    *shard.Handle[[]byte]
	srv  *Server

	// reqCh is the bounded in-flight window between the connection's read
	// loop and its batch worker. Its capacity is the window size W: a
	// request that arrives while W requests are pending is answered BUSY.
	reqCh chan frame

	// stash holds values already dequeued from the fabric but not yet
	// shipped, because fitting them into the current reply would have
	// pushed it past the frame cap. The batch worker owns it exclusively
	// and serves it before touching the fabric again, preserving the
	// session's dequeue order; teardown re-enqueues any remainder so no
	// value is lost when a client disconnects mid-overflow.
	stash [][]byte

	// lastActive is the unix-nano time of the last frame read from the
	// connection; the reaper closes sessions idle past the idle timeout.
	lastActive atomic.Int64

	// closeConn guards against double-closing the connection: teardown can
	// be triggered by a read error, server shutdown, or the idle reaper.
	closeConn sync.Once
}

// touch records activity for the idle reaper.
func (s *session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// shutdown closes the connection (idempotently). The read loop then fails
// out, closes reqCh, and the worker finishes teardown.
func (s *session) shutdown() {
	s.closeConn.Do(func() { s.conn.Close() })
}

// sessionTable tracks live sessions for shutdown, reaping, and stats.
// Session setup and teardown are cold paths next to the per-frame work, so
// a plain mutex-guarded map is enough.
type sessionTable struct {
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*session
}

func (t *sessionTable) init() { t.live = make(map[uint64]*session) }

// add registers a session and assigns its id.
func (t *sessionTable) add(s *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s.id = t.nextID
	t.live[s.id] = s
}

// remove drops a session; it reports whether the session was still present
// (false means a concurrent remover already took it).
func (t *sessionTable) remove(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.live[id]; !ok {
		return false
	}
	delete(t.live, id)
	return true
}

// snapshot copies the live sessions so callers can act on them without
// holding the table lock across conn operations.
func (t *sessionTable) snapshot() []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*session, 0, len(t.live))
	for _, s := range t.live {
		out = append(out, s)
	}
	return out
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// reapLoop closes sessions that have been idle longer than timeout. It
// wakes at half the timeout so a session is reaped at most 1.5x the
// timeout after its last frame.
func (srv *Server) reapLoop(timeout time.Duration) {
	defer srv.wg.Done()
	tick := time.NewTicker(timeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-srv.done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-timeout).UnixNano()
		for _, s := range srv.sessions.snapshot() {
			if s.lastActive.Load() < cutoff {
				srv.stats.reaped.Add(1)
				s.shutdown()
			}
		}
	}
}
