package server

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// session is one accepted connection and the fabric handles leased to it.
// Leases are per (connection, queue): the default queue's handle is
// acquired at accept (so a full registry refuses the connection up
// front), named queues' handles are acquired lazily on the first
// operation that targets them, and every lease is released at teardown —
// the paper's per-process handle becomes a per-client-per-queue
// capability and registry churn mirrors connection churn.
type session struct {
	id   uint64
	conn net.Conn
	srv  *Server

	// stripe is this session's latency-histogram stripe affinity, derived
	// from id at accept. Each batch worker records into its own stripe so
	// concurrent sessions never contend on a histogram cache line;
	// obs.Record masks it into range.
	stripe int

	// bindings maps queue id -> this session's lease on that queue. The
	// batch worker owns it exclusively (the default binding is installed
	// before the worker starts), so no lock is needed; cross-session
	// bookkeeping (tenant refcounts) lives in the namespace.
	bindings map[uint32]*binding

	// reqCh is the bounded in-flight window between the connection's read
	// loop and its batch worker. Its capacity is the window size W: a
	// request that arrives while W requests are pending is answered BUSY.
	reqCh chan frame

	// decs is the batch worker's scratch for the current window's decoded
	// queue addressing, reused across passes.
	decs []decoded

	// vals is the batch worker's value-header scratch, reused across the
	// coalesced-run, batch-decode, and batch-dequeue paths (they execute
	// strictly one after another within a window pass). Only slice headers
	// live here — the value bytes are pooled buffers (or, unpooled, frame
	// bodies) whose ownership moves to the fabric, the egress scratch, or
	// the binding's stash before the scratch is reused. Worker-owned.
	vals [][]byte

	// admitNs is the batch worker's admit stamp for the current window,
	// taken once per pass and only when the window carries a sampled traced
	// frame; every span the pass produces shares it. Worker-owned.
	admitNs int64

	// winSpans parks the current window's traced spans between their reply
	// write and the pass's socket flush, which closes their last stage
	// (completeSpans publishes them and resets the slice). Worker-owned.
	winSpans []*obs.Span

	// lastActive is the unix-nano time of the last frame read from the
	// connection; the reaper closes sessions idle past the idle timeout.
	lastActive atomic.Int64

	// closeConn guards against double-closing the connection: teardown can
	// be triggered by a read error, server shutdown, or the idle reaper.
	closeConn sync.Once
}

// binding is one session's attachment to one queue: the tenant (refs
// counted in the namespace), the handle leased from that queue's fabric,
// and the session's per-queue overflow stash.
type binding struct {
	t *tenant

	// h is the handle leased from the tenant's fabric. It is nil between
	// OpOpen and the first data operation: opening a queue reserves it
	// (refs keep the idle reaper away) without spending a registry slot.
	h *shard.Handle[[]byte]

	// stash holds values already dequeued from this queue's fabric but not
	// yet shipped, because fitting them into the current reply would have
	// pushed it past the frame cap. The batch worker owns it exclusively
	// and serves it before touching the fabric again, preserving the
	// session's per-queue dequeue order; teardown re-enqueues any
	// remainder into the same queue so no value is lost when a client
	// disconnects mid-overflow.
	stash [][]byte
}

// bind resolves the session's binding for a queue id, creating it (and
// leasing a handle from the queue's fabric) on first use. A failure is
// request-scoped — the reply is StatusErr — never connection-scoped: an
// unknown id or an exhausted per-queue registry must not kill a session
// that is happily using other queues.
func (s *session) bind(qid uint32) (*binding, error) {
	if b, ok := s.bindings[qid]; ok {
		if b.h == nil {
			h, err := b.t.q.Acquire()
			if err != nil {
				return nil, err // not cached: a slot may free up later
			}
			b.h = h
		}
		return b, nil
	}
	t, err := s.srv.ns.bind(qid)
	if err != nil {
		return nil, err
	}
	h, err := t.q.Acquire()
	if err != nil {
		s.srv.ns.unbind(t)
		return nil, err
	}
	b := &binding{t: t, h: h}
	s.bindings[qid] = b
	return b, nil
}

// touch records activity for the idle reaper.
func (s *session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

// shutdown closes the connection (idempotently). The read loop then fails
// out, closes reqCh, and the worker finishes teardown.
func (s *session) shutdown() {
	s.closeConn.Do(func() { s.conn.Close() })
}

// sessionTable tracks live sessions for shutdown, reaping, and stats.
// Session setup and teardown are cold paths next to the per-frame work, so
// a plain mutex-guarded map is enough.
type sessionTable struct {
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*session
}

func (t *sessionTable) init() { t.live = make(map[uint64]*session) }

// add registers a session and assigns its id.
func (t *sessionTable) add(s *session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s.id = t.nextID
	t.live[s.id] = s
}

// remove drops a session; it reports whether the session was still present
// (false means a concurrent remover already took it).
func (t *sessionTable) remove(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.live[id]; !ok {
		return false
	}
	delete(t.live, id)
	return true
}

// snapshot copies the live sessions so callers can act on them without
// holding the table lock across conn operations.
func (t *sessionTable) snapshot() []*session {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*session, 0, len(t.live))
	for _, s := range t.live {
		out = append(out, s)
	}
	return out
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.live)
}

// reapLoop closes sessions that have been idle longer than timeout. It
// wakes at half the timeout so a session is reaped at most 1.5x the
// timeout after its last frame.
func (srv *Server) reapLoop(timeout time.Duration) {
	defer srv.wg.Done()
	tick := time.NewTicker(timeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-srv.done:
			return
		case <-tick.C:
		}
		cutoff := time.Now().Add(-timeout).UnixNano()
		for _, s := range srv.sessions.snapshot() {
			if s.lastActive.Load() < cutoff {
				srv.stats.reaped.Add(1)
				srv.trace.Add("session_reaped", "", map[string]any{
					"session": s.id,
					"idle_ms": (time.Now().UnixNano() - s.lastActive.Load()) / 1e6,
				})
				s.shutdown()
			}
		}
	}
}

// queueReapLoop tears down named queues that have been empty and unbound
// longer than timeout, so a tenant that opened a queue, drained it, and
// went away does not pin a whole fabric forever. It wakes at half the
// timeout, mirroring the session reaper's cadence.
func (srv *Server) queueReapLoop(timeout time.Duration) {
	defer srv.wg.Done()
	tick := time.NewTicker(timeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-srv.done:
			return
		case <-tick.C:
		}
		srv.ns.reapIdle(time.Now().Add(-timeout))
	}
}
