package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// Option configures Serve.
type Option func(*options)

type options struct {
	window      int
	batchMax    int
	idleTimeout time.Duration
	maxFrame    int
}

// WithWindow sets the per-connection in-flight window W (default 64): the
// number of parsed-but-unanswered requests a connection may have before
// further requests are answered BUSY.
func WithWindow(w int) Option {
	return func(o *options) { o.window = w }
}

// WithBatchMax caps how many pending requests one batch pass executes
// before flushing replies (default: the window size).
func WithBatchMax(n int) Option {
	return func(o *options) { o.batchMax = n }
}

// WithIdleTimeout sets how long a session may go without sending a frame
// before the reaper closes it and recycles its handle lease (default 2m;
// 0 disables reaping).
func WithIdleTimeout(d time.Duration) Option {
	return func(o *options) { o.idleTimeout = d }
}

// WithMaxFrame bounds the size of a single request frame, and so of an
// enqueued value (default DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(o *options) { o.maxFrame = n }
}

// serverStats are the service-level counters exported through Snapshot.
type serverStats struct {
	sessionsTotal  atomic.Int64 // accepted connections that got a lease
	sessionsDenied atomic.Int64 // accepted connections denied for want of a handle
	reaped         atomic.Int64 // sessions closed by the idle reaper
	requests       atomic.Int64 // frames parsed off sockets
	busy           atomic.Int64 // requests answered StatusBusy
	enqueues       atomic.Int64 // StatusOK enqueue replies
	dequeues       atomic.Int64 // StatusOK dequeue replies
	emptyDeqs      atomic.Int64 // StatusEmpty dequeue replies
	batches        atomic.Int64 // batch passes (one socket flush each)
	batchedOps     atomic.Int64 // requests executed across all batch passes
}

// Server is a TCP queue service fronting one sharded fabric.
type Server struct {
	q        *shard.Queue[[]byte]
	ln       net.Listener
	opts     options
	sessions sessionTable
	stats    serverStats
	wg       sync.WaitGroup
	done     chan struct{}
	closed   sync.Once
}

// Serve listens on addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// serves q until Close. Each accepted connection leases one fabric handle
// for its lifetime; when the registry is exhausted the connection is
// refused with a StatusErr frame so clients can distinguish "service full"
// from a network failure.
func Serve(addr string, q *shard.Queue[[]byte], opts ...Option) (*Server, error) {
	o := options{
		window:      64,
		idleTimeout: 2 * time.Minute,
		maxFrame:    DefaultMaxFrame,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.batchMax <= 0 {
		o.batchMax = o.window
	}
	if o.window < 1 {
		return nil, fmt.Errorf("server: window must be at least 1 (got %d)", o.window)
	}
	if o.maxFrame < frameHeader {
		return nil, fmt.Errorf("server: max frame %d below header size", o.maxFrame)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		q:    q,
		ln:   ln,
		opts: o,
		done: make(chan struct{}),
	}
	srv.sessions.init()
	srv.wg.Add(1)
	go srv.acceptLoop()
	if o.idleTimeout > 0 {
		srv.wg.Add(1)
		go srv.reapLoop(o.idleTimeout)
	}
	return srv, nil
}

// Addr returns the listener's address (with the ephemeral port resolved).
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

// Queue returns the fabric this server fronts.
func (srv *Server) Queue() *shard.Queue[[]byte] { return srv.q }

// Close stops accepting, closes every live session (releasing its handle
// lease), and waits for all connection goroutines to finish. It does not
// close the underlying fabric; that remains the owner's decision.
func (srv *Server) Close() error {
	srv.closed.Do(func() {
		close(srv.done)
		srv.ln.Close()
		for _, s := range srv.sessions.snapshot() {
			s.shutdown()
		}
	})
	srv.wg.Wait()
	return nil
}

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			select {
			case <-srv.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (e.g. EMFILE): back off briefly
			// rather than spinning the accept loop hot.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		srv.startSession(conn)
	}
}

// startSession leases a handle for conn and spawns its read loop + batch
// worker pair.
func (srv *Server) startSession(conn net.Conn) {
	h, err := srv.q.Acquire()
	if err != nil {
		// Tell the client why before hanging up. Frame id 0 marks a
		// connection-level (not request-level) failure.
		srv.stats.sessionsDenied.Add(1)
		bw := bufio.NewWriter(conn)
		writeFrame(bw, 0, StatusErr, []byte(err.Error()))
		bw.Flush()
		conn.Close()
		return
	}
	s := &session{
		conn:  conn,
		h:     h,
		srv:   srv,
		reqCh: make(chan frame, srv.opts.window),
	}
	s.touch()
	srv.sessions.add(s)
	// Close() closes done before it snapshots the session table, so a
	// session registered concurrently with Close either lands in the
	// snapshot (Close shuts it down) or observes done closed here.
	select {
	case <-srv.done:
		s.shutdown()
	default:
	}
	srv.stats.sessionsTotal.Add(1)
	srv.wg.Add(2)
	go srv.readLoop(s)
	go srv.batchWorker(s)
}

// readLoop parses frames off the socket and feeds the worker through the
// bounded window. When the window is full the request is converted into a
// BUSY marker, and the (blocking) handoff of that marker is what pauses
// reading — overload degrades into explicit rejections first and TCP
// backpressure second, never into unbounded buffering.
func (srv *Server) readLoop(s *session) {
	defer srv.wg.Done()
	// The worker drains reqCh until it is closed, so close it only after
	// the last send.
	defer close(s.reqCh)
	br := bufio.NewReader(s.conn)
	for {
		f, err := readFrame(br, srv.opts.maxFrame)
		if err != nil {
			return
		}
		s.touch()
		srv.stats.requests.Add(1)
		select {
		case s.reqCh <- f:
		default:
			// Window full: reject this request. The BUSY marker still
			// takes a window slot, so this send blocks until the worker
			// frees one — pausing the read loop is the backpressure.
			srv.stats.busy.Add(1)
			s.reqCh <- frame{id: f.id, kind: StatusBusy}
		}
	}
}

// batchWorker owns the session's write side: it waits for one pending
// request, greedily drains whatever else has accumulated (up to batchMax),
// executes the whole batch against the leased handle, and flushes all the
// replies with a single socket write — the fabric's batch-propagation idea
// applied to the network layer. It also owns teardown: when reqCh closes,
// the handle lease is released and the session unregistered.
func (srv *Server) batchWorker(s *session) {
	defer srv.wg.Done()
	defer srv.finishSession(s)
	bw := bufio.NewWriter(s.conn)
	for {
		f, ok := <-s.reqCh
		if !ok {
			return
		}
		n := 1
		err := srv.execute(s, f, bw)
	drain:
		for err == nil && n < srv.opts.batchMax {
			select {
			case f, ok = <-s.reqCh:
				if !ok {
					// Connection is gone; the flush below is best-effort.
					break drain
				}
				err = srv.execute(s, f, bw)
				n++
			default:
				break drain
			}
		}
		srv.stats.batches.Add(1)
		srv.stats.batchedOps.Add(int64(n))
		if err != nil || bw.Flush() != nil {
			// The socket is broken; unblock the read loop (it may be
			// mid-read or mid-send), then drain reqCh until its close
			// lands so no sender is left stranded.
			s.shutdown()
			for range s.reqCh {
			}
			return
		}
		if !ok {
			bw.Flush()
			return
		}
	}
}

// execute runs one request against the session's leased handle and writes
// (but does not flush) the reply.
func (srv *Server) execute(s *session, f frame, bw *bufio.Writer) error {
	switch f.kind {
	case StatusBusy: // BUSY marker injected by the read loop
		return writeFrame(bw, f.id, StatusBusy, nil)
	case OpEnqueue:
		if err := s.h.Enqueue(f.payload); err != nil {
			return writeFrame(bw, f.id, StatusClosed, nil)
		}
		srv.stats.enqueues.Add(1)
		return writeFrame(bw, f.id, StatusOK, nil)
	case OpDequeue:
		v, ok := s.h.Dequeue()
		if !ok {
			srv.stats.emptyDeqs.Add(1)
			return writeFrame(bw, f.id, StatusEmpty, nil)
		}
		srv.stats.dequeues.Add(1)
		return writeFrame(bw, f.id, StatusOK, v)
	case OpLen:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(srv.q.Len()))
		return writeFrame(bw, f.id, StatusOK, buf[:])
	case OpStats:
		data, err := json.Marshal(srv.Snapshot())
		if err != nil {
			return writeFrame(bw, f.id, StatusErr, []byte(err.Error()))
		}
		return writeFrame(bw, f.id, StatusOK, data)
	default:
		return writeFrame(bw, f.id, StatusErr,
			[]byte(fmt.Sprintf("unknown opcode 0x%02x", f.kind)))
	}
}

// finishSession releases the session's handle lease and unregisters it.
func (srv *Server) finishSession(s *session) {
	s.shutdown()
	if srv.sessions.remove(s.id) {
		s.h.Release()
	}
}

// Stats is the service-level half of a Snapshot.
type Stats struct {
	SessionsOpen   int     `json:"sessions_open"`
	SessionsTotal  int64   `json:"sessions_total"`
	SessionsDenied int64   `json:"sessions_denied"`
	SessionsReaped int64   `json:"sessions_reaped"`
	Requests       int64   `json:"requests"`
	Busy           int64   `json:"busy"`
	Enqueues       int64   `json:"enqueues"`
	Dequeues       int64   `json:"dequeues"`
	EmptyDequeues  int64   `json:"empty_dequeues"`
	Batches        int64   `json:"batches"`
	OpsPerBatch    float64 `json:"ops_per_batch"`
	Window         int     `json:"window"`
	BatchMax       int     `json:"batch_max"`
}

// Snapshot is the stable JSON document served by /statsz and OpStats:
// service counters plus the fabric's own snapshot (per-shard routing
// traffic, registry lease churn, optional cost-model summaries).
type Snapshot struct {
	Server Stats          `json:"server"`
	Fabric shard.Snapshot `json:"fabric"`
}

// Snapshot captures the server and fabric statistics.
func (srv *Server) Snapshot() Snapshot {
	st := Stats{
		SessionsOpen:   srv.sessions.count(),
		SessionsTotal:  srv.stats.sessionsTotal.Load(),
		SessionsDenied: srv.stats.sessionsDenied.Load(),
		SessionsReaped: srv.stats.reaped.Load(),
		Requests:       srv.stats.requests.Load(),
		Busy:           srv.stats.busy.Load(),
		Enqueues:       srv.stats.enqueues.Load(),
		Dequeues:       srv.stats.dequeues.Load(),
		EmptyDequeues:  srv.stats.emptyDeqs.Load(),
		Batches:        srv.stats.batches.Load(),
		Window:         srv.opts.window,
		BatchMax:       srv.opts.batchMax,
	}
	if st.Batches > 0 {
		st.OpsPerBatch = float64(srv.stats.batchedOps.Load()) / float64(st.Batches)
	}
	return Snapshot{Server: st, Fabric: srv.q.Snapshot()}
}

// StatszHandler serves the Snapshot as JSON — mount it at /statsz.
func (srv *Server) StatszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(srv.Snapshot())
	})
}
