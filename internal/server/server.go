package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// Option configures Serve.
type Option func(*options)

type options struct {
	window      int
	batchMax    int
	idleTimeout time.Duration
	maxFrame    int
}

// WithWindow sets the per-connection in-flight window W (default 64): the
// number of parsed-but-unanswered requests a connection may have before
// further requests are answered BUSY.
func WithWindow(w int) Option {
	return func(o *options) { o.window = w }
}

// WithBatchMax caps how many pending requests one batch pass executes
// before flushing replies (default: the window size).
func WithBatchMax(n int) Option {
	return func(o *options) { o.batchMax = n }
}

// WithIdleTimeout sets how long a session may go without sending a frame
// before the reaper closes it and recycles its handle lease (default 2m;
// 0 disables reaping).
func WithIdleTimeout(d time.Duration) Option {
	return func(o *options) { o.idleTimeout = d }
}

// WithMaxFrame bounds the size of a single request frame, and so of an
// enqueued value (default DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(o *options) { o.maxFrame = n }
}

// serverStats are the service-level counters exported through Snapshot.
// enqueues/dequeues count operations (values), not frames: a batch frame
// carrying m values adds m.
type serverStats struct {
	sessionsTotal  atomic.Int64 // accepted connections that got a lease
	sessionsDenied atomic.Int64 // accepted connections denied for want of a handle
	reaped         atomic.Int64 // sessions closed by the idle reaper
	requests       atomic.Int64 // frames parsed off sockets
	busy           atomic.Int64 // requests answered StatusBusy
	enqueues       atomic.Int64 // values acknowledged enqueued
	dequeues       atomic.Int64 // values delivered by dequeue replies
	emptyDeqs      atomic.Int64 // StatusEmpty dequeue replies
	batches        atomic.Int64 // batch passes (one socket flush each)
	frames         atomic.Int64 // request frames answered by batch passes
	batchedOps     atomic.Int64 // queue ops executed by batch passes (batch frames count each op they carry)
	fabricBatches  atomic.Int64 // multi-op fabric calls (coalesced runs + native batch frames)
	fabricBatchOps atomic.Int64 // queue ops carried by multi-op fabric calls
}

// Server is a TCP queue service fronting one sharded fabric.
type Server struct {
	q        *shard.Queue[[]byte]
	ln       net.Listener
	opts     options
	sessions sessionTable
	stats    serverStats
	wg       sync.WaitGroup
	done     chan struct{}
	closed   sync.Once
}

// Serve listens on addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// serves q until Close. Each accepted connection leases one fabric handle
// for its lifetime; when the registry is exhausted the connection is
// refused with a StatusErr frame so clients can distinguish "service full"
// from a network failure.
func Serve(addr string, q *shard.Queue[[]byte], opts ...Option) (*Server, error) {
	o := options{
		window:      64,
		idleTimeout: 2 * time.Minute,
		maxFrame:    DefaultMaxFrame,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.batchMax <= 0 {
		o.batchMax = o.window
	}
	if o.window < 1 {
		return nil, fmt.Errorf("server: window must be at least 1 (got %d)", o.window)
	}
	if o.maxFrame < frameHeader {
		return nil, fmt.Errorf("server: max frame %d below header size", o.maxFrame)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		q:    q,
		ln:   ln,
		opts: o,
		done: make(chan struct{}),
	}
	srv.sessions.init()
	srv.wg.Add(1)
	go srv.acceptLoop()
	if o.idleTimeout > 0 {
		srv.wg.Add(1)
		go srv.reapLoop(o.idleTimeout)
	}
	return srv, nil
}

// Addr returns the listener's address (with the ephemeral port resolved).
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

// Queue returns the fabric this server fronts.
func (srv *Server) Queue() *shard.Queue[[]byte] { return srv.q }

// Close stops accepting, closes every live session (releasing its handle
// lease), and waits for all connection goroutines to finish. It does not
// close the underlying fabric; that remains the owner's decision.
func (srv *Server) Close() error {
	srv.closed.Do(func() {
		close(srv.done)
		srv.ln.Close()
		for _, s := range srv.sessions.snapshot() {
			s.shutdown()
		}
	})
	srv.wg.Wait()
	return nil
}

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			select {
			case <-srv.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (e.g. EMFILE): back off briefly
			// rather than spinning the accept loop hot.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		srv.startSession(conn)
	}
}

// startSession leases a handle for conn and spawns its read loop + batch
// worker pair.
func (srv *Server) startSession(conn net.Conn) {
	h, err := srv.q.Acquire()
	if err != nil {
		// Tell the client why before hanging up. Frame id 0 marks a
		// connection-level (not request-level) failure.
		srv.stats.sessionsDenied.Add(1)
		bw := bufio.NewWriter(conn)
		writeFrame(bw, 0, StatusErr, []byte(err.Error()))
		bw.Flush()
		conn.Close()
		return
	}
	s := &session{
		conn:  conn,
		h:     h,
		srv:   srv,
		reqCh: make(chan frame, srv.opts.window),
	}
	s.touch()
	srv.sessions.add(s)
	// Close() closes done before it snapshots the session table, so a
	// session registered concurrently with Close either lands in the
	// snapshot (Close shuts it down) or observes done closed here.
	select {
	case <-srv.done:
		s.shutdown()
	default:
	}
	srv.stats.sessionsTotal.Add(1)
	srv.wg.Add(2)
	go srv.readLoop(s)
	go srv.batchWorker(s)
}

// readLoop parses frames off the socket and feeds the worker through the
// bounded window. When the window is full the request is converted into a
// BUSY marker, and the (blocking) handoff of that marker is what pauses
// reading — overload degrades into explicit rejections first and TCP
// backpressure second, never into unbounded buffering.
func (srv *Server) readLoop(s *session) {
	defer srv.wg.Done()
	// The worker drains reqCh until it is closed, so close it only after
	// the last send.
	defer close(s.reqCh)
	br := bufio.NewReader(s.conn)
	for {
		f, err := readFrame(br, srv.opts.maxFrame)
		if err != nil {
			return
		}
		s.touch()
		srv.stats.requests.Add(1)
		select {
		case s.reqCh <- f:
		default:
			// Window full: reject this request. The BUSY marker still
			// takes a window slot, so this send blocks until the worker
			// frees one — pausing the read loop is the backpressure.
			srv.stats.busy.Add(1)
			s.reqCh <- frame{id: f.id, kind: StatusBusy}
		}
	}
}

// batchWorker owns the session's write side: it waits for one pending
// request, greedily drains whatever else has accumulated (up to batchMax),
// executes the whole window against the leased handle — partitioning it
// into multi-op fabric batch calls wherever adjacent requests are the same
// operation — and flushes all the replies with a single socket write: the
// paper's batch propagation applied at the network layer, now all the way
// down (a coalesced run of m pipelined enqueues becomes one m-op leaf
// block and one tree walk). It also owns teardown: when reqCh closes, the
// handle lease is released and the session unregistered.
func (srv *Server) batchWorker(s *session) {
	defer srv.wg.Done()
	defer srv.finishSession(s)
	bw := bufio.NewWriter(s.conn)
	window := make([]frame, 0, srv.opts.batchMax)
	for {
		f, ok := <-s.reqCh
		if !ok {
			return
		}
		window = append(window[:0], f)
	drain:
		for len(window) < srv.opts.batchMax {
			select {
			case f, more := <-s.reqCh:
				if !more {
					ok = false // connection gone; flushes become best-effort
					break drain
				}
				window = append(window, f)
			default:
				break drain
			}
		}
		err := srv.processWindow(s, window, bw)
		srv.stats.batches.Add(1)
		srv.stats.frames.Add(int64(len(window)))
		if err != nil || bw.Flush() != nil {
			// The socket is broken; unblock the read loop (it may be
			// mid-read or mid-send), then drain reqCh until its close
			// lands so no sender is left stranded.
			s.shutdown()
			for range s.reqCh {
			}
			return
		}
		if !ok {
			bw.Flush()
			return
		}
	}
}

// processWindow executes one drained window. Runs of adjacent single-op
// enqueue (resp. dequeue) frames are coalesced into one fabric batch call;
// everything else executes frame by frame. Coalescing preserves the
// session's request order — runs never reorder across a frame of a
// different kind — so pipelined enqueue-then-dequeue sequences observe
// exactly the single-op semantics.
func (srv *Server) processWindow(s *session, window []frame, bw *bufio.Writer) error {
	for i := 0; i < len(window); {
		kind := window[i].kind
		j := i + 1
		if kind == OpEnqueue || kind == OpDequeue {
			for j < len(window) && window[j].kind == kind {
				j++
			}
		}
		run := window[i:j]
		var err error
		switch {
		case len(run) > 1 && kind == OpEnqueue:
			err = srv.executeEnqueueRun(s, run, bw)
		case len(run) > 1 && kind == OpDequeue:
			err = srv.executeDequeueRun(s, run, bw)
		default:
			err = srv.execute(s, run[0], bw)
		}
		if err != nil {
			return err
		}
		i = j
	}
	return nil
}

// executeEnqueueRun installs a coalesced run of single-enqueue frames as
// one fabric batch and writes each frame's reply. Oversized values (ones a
// batch reply could not ship back) are rare enough that the whole run
// falls back to frame-by-frame execution, where they are rejected
// individually.
func (srv *Server) executeEnqueueRun(s *session, run []frame, bw *bufio.Writer) error {
	vals := make([][]byte, len(run))
	for i, f := range run {
		if !srv.enqueueFits(f.payload) {
			for _, f := range run {
				if err := srv.execute(s, f, bw); err != nil {
					return err
				}
			}
			return nil
		}
		vals[i] = f.payload
	}
	err := s.h.EnqueueBatch(vals)
	if err == nil {
		srv.noteFabricBatch(int64(len(run)))
		srv.stats.enqueues.Add(int64(len(run)))
		srv.stats.batchedOps.Add(int64(len(run)))
	}
	for _, f := range run {
		status := StatusOK
		if err != nil {
			status = StatusClosed
		}
		if werr := writeFrame(bw, f.id, status, nil); werr != nil {
			return werr
		}
	}
	return nil
}

// executeDequeueRun serves a coalesced run of single-dequeue frames from
// one fabric batch call (stash first — see session.stash), assigning the
// values to the frames in order; frames beyond the values get StatusEmpty.
// A reply that fails to write was not delivered (the client cannot parse a
// truncated length-prefixed frame), so its value and everything after it
// go back to the stash for teardown to re-enqueue.
func (srv *Server) executeDequeueRun(s *session, run []frame, bw *bufio.Writer) error {
	vals, fromFabric := s.takeValues(len(run))
	if fromFabric > 0 {
		srv.noteFabricBatch(fromFabric)
	}
	srv.stats.batchedOps.Add(int64(len(run)))
	for i, f := range run {
		if i < len(vals) {
			if err := writeFrame(bw, f.id, StatusOK, vals[i]); err != nil {
				s.stash = append(s.stash, vals[i:]...)
				return err
			}
			srv.stats.dequeues.Add(1)
			continue
		}
		srv.stats.emptyDeqs.Add(1)
		if err := writeFrame(bw, f.id, StatusEmpty, nil); err != nil {
			return err
		}
	}
	return nil
}

// takeValues returns up to n dequeued values — the session's stash first
// (values dequeued earlier that overflowed a reply), then one fabric batch
// call for the remainder — and how many of them came from the fabric call.
func (s *session) takeValues(n int) (vals [][]byte, fromFabric int64) {
	if len(s.stash) > 0 {
		k := min(n, len(s.stash))
		vals = append(vals, s.stash[:k]...)
		s.stash = s.stash[k:]
		if len(s.stash) == 0 {
			s.stash = nil
		}
	}
	if len(vals) < n {
		vs, got := s.h.DequeueBatch(n - len(vals))
		vals = append(vals, vs...)
		fromFabric = int64(got)
	}
	return vals, fromFabric
}

// enqueueFits reports whether an enqueued value of this size can always be
// shipped back, whatever reply type a dequeuer uses (see
// batchReplyOverhead).
func (srv *Server) enqueueFits(v []byte) bool {
	return len(v)+frameHeader+batchReplyOverhead <= srv.opts.maxFrame
}

// noteFabricBatch records one multi-op fabric call of n ops.
func (srv *Server) noteFabricBatch(n int64) {
	srv.stats.fabricBatches.Add(1)
	srv.stats.fabricBatchOps.Add(n)
}

// execute runs one request against the session's leased handle and writes
// (but does not flush) the reply.
func (srv *Server) execute(s *session, f frame, bw *bufio.Writer) error {
	switch f.kind {
	case StatusBusy: // BUSY marker injected by the read loop
		return writeFrame(bw, f.id, StatusBusy, nil)
	case OpEnqueue:
		if !srv.enqueueFits(f.payload) {
			return writeFrame(bw, f.id, StatusErr,
				[]byte(fmt.Sprintf("value of %d bytes cannot fit a reply within the %d-byte frame cap",
					len(f.payload), srv.opts.maxFrame)))
		}
		if err := s.h.Enqueue(f.payload); err != nil {
			return writeFrame(bw, f.id, StatusClosed, nil)
		}
		srv.stats.enqueues.Add(1)
		srv.stats.batchedOps.Add(1)
		return writeFrame(bw, f.id, StatusOK, nil)
	case OpDequeue:
		var v []byte
		ok := false
		if len(s.stash) > 0 { // ship overflow values before new fabric pulls
			v, ok = s.popStash(), true
		} else {
			v, ok = s.h.Dequeue()
		}
		srv.stats.batchedOps.Add(1)
		if !ok {
			srv.stats.emptyDeqs.Add(1)
			return writeFrame(bw, f.id, StatusEmpty, nil)
		}
		if err := writeFrame(bw, f.id, StatusOK, v); err != nil {
			s.stash = append(s.stash, v) // undelivered: teardown re-enqueues
			return err
		}
		srv.stats.dequeues.Add(1)
		return nil
	case OpEnqueueBatch:
		vals, err := decodeBatch(f.payload)
		if err != nil {
			return writeFrame(bw, f.id, StatusErr, []byte(err.Error()))
		}
		if len(vals) == 0 {
			return writeFrame(bw, f.id, StatusOK, nil)
		}
		if err := s.h.EnqueueBatch(vals); err != nil {
			return writeFrame(bw, f.id, StatusClosed, nil)
		}
		srv.noteFabricBatch(int64(len(vals)))
		srv.stats.enqueues.Add(int64(len(vals)))
		srv.stats.batchedOps.Add(int64(len(vals)))
		return writeFrame(bw, f.id, StatusOK, nil)
	case OpDequeueBatch:
		if len(f.payload) != 4 {
			return writeFrame(bw, f.id, StatusErr,
				[]byte(fmt.Sprintf("dequeue batch payload %d bytes, want 4", len(f.payload))))
		}
		n := int(binary.BigEndian.Uint32(f.payload))
		if n > MaxBatchOps {
			n = MaxBatchOps
		}
		return srv.executeDequeueBatch(s, f.id, n, bw)
	case OpLen:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(srv.q.Len()))
		return writeFrame(bw, f.id, StatusOK, buf[:])
	case OpStats:
		data, err := json.Marshal(srv.Snapshot())
		if err != nil {
			return writeFrame(bw, f.id, StatusErr, []byte(err.Error()))
		}
		return writeFrame(bw, f.id, StatusOK, data)
	default:
		return writeFrame(bw, f.id, StatusErr,
			[]byte(fmt.Sprintf("unknown opcode 0x%02x", f.kind)))
	}
}

// executeDequeueBatch serves one OpDequeueBatch request: up to n values,
// stash first, then the fabric, capped so the encoded reply never exceeds
// the frame limit. Values that were pulled from the fabric but would
// overflow the reply go to the session's stash and are shipped by the next
// dequeue request instead — the frame cap must bound every frame the
// server emits, not only the ones it reads.
func (srv *Server) executeDequeueBatch(s *session, id uint64, n int, bw *bufio.Writer) error {
	budget := srv.opts.maxFrame - frameHeader - 4 // payload bytes after the count word
	var out [][]byte
	take := func(v []byte) bool {
		if 4+len(v) > budget {
			return false
		}
		budget -= 4 + len(v)
		out = append(out, v)
		return true
	}
	full := false
	for len(s.stash) > 0 && len(out) < n && !full {
		if take(s.stash[0]) {
			s.popStash()
		} else {
			full = true
		}
	}
	for !full && len(out) < n {
		want := n - len(out)
		vs, got := s.h.DequeueBatch(want)
		if got > 0 {
			srv.noteFabricBatch(int64(got))
		}
		for i, v := range vs {
			if take(v) {
				continue
			}
			// Reply full: everything already pulled is owed to this session.
			s.stash = append(s.stash, vs[i:]...)
			full = true
			break
		}
		if got < want {
			break // fabric certified empty
		}
	}
	if len(out) == 0 {
		srv.stats.batchedOps.Add(1) // the empty reply still answers one op
		srv.stats.emptyDeqs.Add(1)
		return writeFrame(bw, id, StatusEmpty, nil)
	}
	srv.stats.batchedOps.Add(int64(len(out)))
	if err := writeFrame(bw, id, StatusOK, encodeBatch(out)); err != nil {
		// The reply never reached the client as a parseable frame; keep its
		// values for teardown to re-enqueue.
		s.stash = append(s.stash, out...)
		return err
	}
	srv.stats.dequeues.Add(int64(len(out)))
	return nil
}

// popStash removes and returns the stash head; the stash must be nonempty.
func (s *session) popStash() []byte {
	v := s.stash[0]
	s.stash = s.stash[1:]
	if len(s.stash) == 0 {
		s.stash = nil
	}
	return v
}

// finishSession releases the session's handle lease and unregisters it.
// Stashed values (dequeued from the fabric but never shipped) are returned
// to the fabric first, so a client disconnecting between an overflowing
// batch dequeue and the next request cannot lose values; the re-enqueue
// appends them behind the current backlog, trading their FIFO position for
// conservation. Only a fabric closed by its owner can make this fail, and
// then the loss is the owner's explicit choice.
func (srv *Server) finishSession(s *session) {
	s.shutdown()
	if srv.sessions.remove(s.id) {
		if len(s.stash) > 0 {
			s.h.EnqueueBatch(s.stash)
			s.stash = nil
		}
		s.h.Release()
	}
}

// Stats is the service-level half of a Snapshot. Operation counters count
// queue operations (values), not wire frames: a batch frame carrying m
// values contributes m to Enqueues/Dequeues/BatchedOps and 1 to Frames, so
// BatchedOps/Frames is the wire-level amortization and
// FabricBatchOps/FabricBatches the fabric-level one.
type Stats struct {
	SessionsOpen   int     `json:"sessions_open"`
	SessionsTotal  int64   `json:"sessions_total"`
	SessionsDenied int64   `json:"sessions_denied"`
	SessionsReaped int64   `json:"sessions_reaped"`
	Requests       int64   `json:"requests"`
	Busy           int64   `json:"busy"`
	Enqueues       int64   `json:"enqueues"`
	Dequeues       int64   `json:"dequeues"`
	EmptyDequeues  int64   `json:"empty_dequeues"`
	Batches        int64   `json:"batches"`
	Frames         int64   `json:"frames"`           // request frames answered by batch passes
	BatchedOps     int64   `json:"batched_ops"`      // queue ops executed by batch passes
	FabricBatches  int64   `json:"fabric_batches"`   // multi-op fabric calls
	FabricBatchOps int64   `json:"fabric_batch_ops"` // queue ops carried by multi-op fabric calls
	OpsPerBatch    float64 `json:"ops_per_batch"`    // BatchedOps / Batches
	Window         int     `json:"window"`
	BatchMax       int     `json:"batch_max"`
}

// Snapshot is the stable JSON document served by /statsz and OpStats:
// service counters plus the fabric's own snapshot (per-shard routing
// traffic, registry lease churn, optional cost-model summaries).
type Snapshot struct {
	Server Stats          `json:"server"`
	Fabric shard.Snapshot `json:"fabric"`
}

// Snapshot captures the server and fabric statistics.
func (srv *Server) Snapshot() Snapshot {
	st := Stats{
		SessionsOpen:   srv.sessions.count(),
		SessionsTotal:  srv.stats.sessionsTotal.Load(),
		SessionsDenied: srv.stats.sessionsDenied.Load(),
		SessionsReaped: srv.stats.reaped.Load(),
		Requests:       srv.stats.requests.Load(),
		Busy:           srv.stats.busy.Load(),
		Enqueues:       srv.stats.enqueues.Load(),
		Dequeues:       srv.stats.dequeues.Load(),
		EmptyDequeues:  srv.stats.emptyDeqs.Load(),
		Batches:        srv.stats.batches.Load(),
		Frames:         srv.stats.frames.Load(),
		BatchedOps:     srv.stats.batchedOps.Load(),
		FabricBatches:  srv.stats.fabricBatches.Load(),
		FabricBatchOps: srv.stats.fabricBatchOps.Load(),
		Window:         srv.opts.window,
		BatchMax:       srv.opts.batchMax,
	}
	if st.Batches > 0 {
		st.OpsPerBatch = float64(st.BatchedOps) / float64(st.Batches)
	}
	return Snapshot{Server: st, Fabric: srv.q.Snapshot()}
}

// StatszHandler serves the Snapshot as JSON — mount it at /statsz.
func (srv *Server) StatszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(srv.Snapshot())
	})
}
