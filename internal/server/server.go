package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

// Option configures Serve.
type Option func(*options)

type options struct {
	window      int
	batchMax    int
	idleTimeout time.Duration
	maxFrame    int
	maxQueues   int
	queueIdle   time.Duration
	factory     func() (*shard.Queue[[]byte], error)

	autoscale     time.Duration // autoscaler tick interval; 0 disables
	minShards     int
	maxShards     int
	lowWatermark  float64 // served ops/s per shard below which a queue shrinks
	highWatermark float64 // served ops/s per shard above which a queue grows

	obs bool // per-(queue, op) latency histograms + control-plane trace ring

	netPool bool // pooled ingress buffers + retained reply scratch (see pool.go)
}

// WithWindow sets the per-connection in-flight window W (default 64): the
// number of parsed-but-unanswered requests a connection may have before
// further requests are answered BUSY.
func WithWindow(w int) Option {
	return func(o *options) { o.window = w }
}

// WithBatchMax caps how many pending requests one batch pass executes
// before flushing replies (default: the window size).
func WithBatchMax(n int) Option {
	return func(o *options) { o.batchMax = n }
}

// WithIdleTimeout sets how long a session may go without sending a frame
// before the reaper closes it and recycles its handle lease (default 2m;
// 0 disables reaping).
func WithIdleTimeout(d time.Duration) Option {
	return func(o *options) { o.idleTimeout = d }
}

// WithMaxFrame bounds the size of a single request frame, and so of an
// enqueued value (default DefaultMaxFrame).
func WithMaxFrame(n int) Option {
	return func(o *options) { o.maxFrame = n }
}

// WithMaxQueues caps how many named queues the server will hold at once
// (default DefaultMaxQueues; the default queue 0 is not counted). An
// OpOpen beyond the cap is answered StatusErr.
func WithMaxQueues(n int) Option {
	return func(o *options) { o.maxQueues = n }
}

// WithQueueIdleTimeout sets how long a named queue may sit with no bound
// session — and no backlog — before its fabric is torn down (default 5m;
// 0 disables teardown). A torn-down name is recreated fresh on the next
// OpOpen.
func WithQueueIdleTimeout(d time.Duration) Option {
	return func(o *options) { o.queueIdle = d }
}

// WithQueueFactory overrides how named queues' fabrics are built. The
// default clones the default queue's shape: same shard count, backend,
// and handle-slot count.
func WithQueueFactory(f func() (*shard.Queue[[]byte], error)) Option {
	return func(o *options) { o.factory = f }
}

// WithAutoscale starts the per-queue shard autoscaler with the given tick
// interval (0, the default, disables it). Every tick, each queue's fabric
// is grown or shrunk — live, with exact conservation — from its served
// ops/sec, occupancy, and null-dequeue rate, between the WithShardBounds
// limits and around the WithAutoscaleWatermarks rates.
func WithAutoscale(interval time.Duration) Option {
	return func(o *options) { o.autoscale = interval }
}

// WithShardBounds bounds the per-queue shard count the autoscaler — and
// the wire-level manual RESIZE — will apply (defaults DefaultMinShards,
// DefaultMaxShards). A default queue or factory outside the bounds is
// admitted as-is and pulled inside them at the first autoscale decision.
func WithShardBounds(min, max int) Option {
	return func(o *options) { o.minShards, o.maxShards = min, max }
}

// WithAutoscaleWatermarks sets the served-rate watermarks (ops/s per
// shard): a queue grows above high and shrinks below low (defaults
// DefaultLowWatermark, DefaultHighWatermark). Keep low well under high —
// the gap is the scaler's hysteresis.
func WithAutoscaleWatermarks(low, high float64) Option {
	return func(o *options) { o.lowWatermark, o.highWatermark = low, high }
}

// WithObservability toggles the server's observability layer (default
// on): per-(queue, op) latency histograms recorded on the hot path —
// each request frame's read-to-reply in-server latency, bucketed as
// enqueue / dequeue / batch / null-dequeue — the bounded control-plane
// event trace served by /tracez, and request tracing (per-stage
// timestamps, the span exemplar reservoir served by /spanz, and the
// per-stage histograms) for frames a client flags with OpTraceFlag. Off,
// the read loop stops stamping frames, no histogram is touched, traced
// requests are served normally but answered plain (the client reads that
// as "server declined to sample"), and Snapshot reverts to the
// pre-observability shape; the /healthz, /varz, and /metricsz endpoints
// keep working (exposing counters only).
func WithObservability(on bool) Option {
	return func(o *options) { o.obs = on }
}

// WithNetPooling toggles the server's network memory system (default on):
// request frames decode into size-classed pooled buffers recycled after
// each window, enqueue payloads are copied out of their frame at admit
// time into pooled storage recycled when a dequeue reply ships them, and
// replies append into a retained per-session egress scratch flushed with
// one sized write. Off, the server reproduces the pre-pooling cost model —
// a fresh buffer per frame and per encode helper — which is what the T18
// netwall experiment's before-arm measures; correctness is identical
// either way.
func WithNetPooling(on bool) Option {
	return func(o *options) { o.netPool = on }
}

// DefaultMaxQueues is the default cap on named queues per server.
const DefaultMaxQueues = 64

// Observability constants: the trace ring's capacity, the sampling
// strides that keep hot control-plane event sources (BUSY replies,
// autoscaler hold decisions) from flooding it, and the span reservoir's
// shape (the recent ring for coverage, the slow table for the exemplars
// worth explaining — see obs.Reservoir).
const (
	traceRingCap    = 1024
	busySampleEvery = 1024 // trace the 1st, 1025th, ... BUSY reply
	holdSampleEvery = 16   // trace every 16th per-queue autoscaler hold
	spanRecentCap   = 128  // most recent traced spans kept by /spanz
	spanSlowCap     = 32   // slowest traced spans kept by /spanz
)

// serverStats are the service-level counters exported through Snapshot.
// enqueues/dequeues count operations (values), not frames: a batch frame
// carrying m values adds m.
type serverStats struct {
	sessionsTotal  atomic.Int64 // accepted connections that got a lease
	sessionsDenied atomic.Int64 // accepted connections denied for want of a handle
	reaped         atomic.Int64 // sessions closed by the idle reaper
	requests       atomic.Int64 // frames parsed off sockets
	busy           atomic.Int64 // requests answered StatusBusy
	enqueues       atomic.Int64 // values acknowledged enqueued
	dequeues       atomic.Int64 // values delivered by dequeue replies
	emptyDeqs      atomic.Int64 // StatusEmpty dequeue replies
	batches        atomic.Int64 // batch passes (one socket flush each)
	frames         atomic.Int64 // request frames answered by batch passes
	batchedOps     atomic.Int64 // queue ops executed by batch passes (batch frames count each op they carry)
	fabricBatches  atomic.Int64 // multi-op fabric calls (coalesced runs + native batch frames)
	fabricBatchOps atomic.Int64 // queue ops carried by multi-op fabric calls
	autoGrows      atomic.Int64 // queue fabrics grown by the autoscaler
	autoShrinks    atomic.Int64 // queue fabrics shrunk by the autoscaler
	wireResizes    atomic.Int64 // RESIZE requests applied over the wire
}

// Server is a TCP queue service fronting a namespace of sharded fabrics:
// the default queue it was started with (id 0) plus any named queues
// clients open.
type Server struct {
	q        *shard.Queue[[]byte]
	ln       net.Listener
	opts     options
	ns       namespace
	sessions sessionTable
	stats    serverStats
	trace    *obs.Ring // control-plane event ring; nil when observability is off
	// Request-tracing state, nil when observability is off: the exemplar
	// reservoir behind /spanz and the per-stage histograms behind the
	// stage_lat snapshot block. Both are fed only by frames the client
	// flagged with OpTraceFlag, so untraced traffic pays nothing for them.
	spans      *obs.Reservoir
	stageHists *obs.StageHists
	start      time.Time
	wg         sync.WaitGroup
	done       chan struct{}
	closed     sync.Once
}

// Serve listens on addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// serves q — as the namespace's default queue 0 — until Close. Each
// accepted connection leases one handle of q for its lifetime; when the
// registry is exhausted the connection is refused with a StatusErr frame
// so clients can distinguish "service full" from a network failure.
// Handles of named queues are leased per (connection, queue) on first
// use.
func Serve(addr string, q *shard.Queue[[]byte], opts ...Option) (*Server, error) {
	o := options{
		window:        64,
		idleTimeout:   2 * time.Minute,
		maxFrame:      DefaultMaxFrame,
		maxQueues:     DefaultMaxQueues,
		queueIdle:     5 * time.Minute,
		minShards:     DefaultMinShards,
		maxShards:     DefaultMaxShards,
		lowWatermark:  DefaultLowWatermark,
		highWatermark: DefaultHighWatermark,
		obs:           true,
		netPool:       true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.batchMax <= 0 {
		o.batchMax = o.window
	}
	if o.minShards < 1 || o.maxShards < o.minShards {
		return nil, fmt.Errorf("server: shard bounds [%d, %d] invalid (want 1 <= min <= max)",
			o.minShards, o.maxShards)
	}
	if o.autoscale > 0 && (o.lowWatermark < 0 || o.highWatermark <= o.lowWatermark) {
		return nil, fmt.Errorf("server: autoscale watermarks low %.0f / high %.0f invalid (want 0 <= low < high)",
			o.lowWatermark, o.highWatermark)
	}
	if o.window < 1 {
		return nil, fmt.Errorf("server: window must be at least 1 (got %d)", o.window)
	}
	if o.maxFrame < frameHeader {
		return nil, fmt.Errorf("server: max frame %d below header size", o.maxFrame)
	}
	if o.maxQueues < 0 {
		return nil, fmt.Errorf("server: max queues must not be negative (got %d)", o.maxQueues)
	}
	if o.factory == nil {
		// Named queues inherit the default fabric's shape. Each named queue
		// is its own ShardedQueue, so its guarantees are per-queue exact.
		o.factory = func() (*shard.Queue[[]byte], error) {
			return shard.New[[]byte](q.Shards(),
				shard.WithBackend(q.Backend()),
				shard.WithMaxHandles(q.MaxHandles()))
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		q:     q,
		ln:    ln,
		opts:  o,
		start: time.Now(),
		done:  make(chan struct{}),
	}
	if o.obs {
		srv.trace = obs.NewRing(traceRingCap)
		srv.spans = obs.NewReservoir(spanRecentCap, spanSlowCap)
		srv.stageHists = obs.NewStageHists()
	}
	srv.ns.init(q, o.maxQueues, o.factory, o.obs, srv.trace)
	srv.sessions.init()
	srv.wg.Add(1)
	go srv.acceptLoop()
	if o.idleTimeout > 0 {
		srv.wg.Add(1)
		go srv.reapLoop(o.idleTimeout)
	}
	if o.queueIdle > 0 {
		srv.wg.Add(1)
		go srv.queueReapLoop(o.queueIdle)
	}
	if o.autoscale > 0 {
		srv.wg.Add(1)
		go srv.autoscaleLoop(o.autoscale)
	}
	return srv, nil
}

// Addr returns the listener's address (with the ephemeral port resolved).
func (srv *Server) Addr() net.Addr { return srv.ln.Addr() }

// Queue returns the namespace's default queue 0, the fabric this server
// was started with. Named queues' fabrics are server-owned and reachable
// only through the wire protocol and Snapshot.
func (srv *Server) Queue() *shard.Queue[[]byte] { return srv.q }

// Close stops accepting, closes every live session (releasing its handle
// lease), and waits for all connection goroutines to finish. It does not
// close the underlying fabric; that remains the owner's decision.
func (srv *Server) Close() error {
	srv.closed.Do(func() {
		close(srv.done)
		srv.ln.Close()
		for _, s := range srv.sessions.snapshot() {
			s.shutdown()
		}
	})
	srv.wg.Wait()
	return nil
}

func (srv *Server) acceptLoop() {
	defer srv.wg.Done()
	for {
		conn, err := srv.ln.Accept()
		if err != nil {
			select {
			case <-srv.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (e.g. EMFILE): back off briefly
			// rather than spinning the accept loop hot.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		srv.startSession(conn)
	}
}

// startSession leases a default-queue handle for conn and spawns its read
// loop + batch worker pair.
func (srv *Server) startSession(conn net.Conn) {
	h, err := srv.q.Acquire()
	if err != nil {
		// Tell the client why before hanging up. Frame id 0 marks a
		// connection-level (not request-level) failure.
		srv.stats.sessionsDenied.Add(1)
		srv.trace.Add("session_denied", "", map[string]any{
			"remote": conn.RemoteAddr().String(), "error": err.Error()})
		bw := bufio.NewWriter(conn)
		writeFrame(bw, 0, StatusErr, []byte(err.Error()))
		bw.Flush()
		conn.Close()
		return
	}
	def, err := srv.ns.bind(0)
	if err != nil { // unreachable: tenant 0 always exists
		h.Release()
		conn.Close()
		return
	}
	s := &session{
		conn:     conn,
		srv:      srv,
		bindings: map[uint32]*binding{0: {t: def, h: h}},
		reqCh:    make(chan frame, srv.opts.window),
	}
	s.touch()
	srv.sessions.add(s)
	s.stripe = int(s.id) // histogram stripe affinity; Record masks it
	// Close() closes done before it snapshots the session table, so a
	// session registered concurrently with Close either lands in the
	// snapshot (Close shuts it down) or observes done closed here.
	select {
	case <-srv.done:
		s.shutdown()
	default:
	}
	srv.stats.sessionsTotal.Add(1)
	srv.trace.Add("session_open", "", map[string]any{
		"session": s.id, "remote": conn.RemoteAddr().String()})
	srv.wg.Add(2)
	go srv.readLoop(s)
	go srv.batchWorker(s)
}

// readLoop parses frames off the socket and feeds the worker through the
// bounded window. When the window is full the request is converted into a
// BUSY marker, and the (blocking) handoff of that marker is what pauses
// reading — overload degrades into explicit rejections first and TCP
// backpressure second, never into unbounded buffering.
func (srv *Server) readLoop(s *session) {
	defer srv.wg.Done()
	// The worker drains reqCh until it is closed, so close it only after
	// the last send.
	defer close(s.reqCh)
	br := bufio.NewReader(s.conn)
	for {
		f, err := readFrameBuf(br, srv.opts.maxFrame, srv.opts.netPool)
		if err != nil {
			return
		}
		// One clock read serves both the idle reaper and the frame's
		// observability stamp, so histograms cost the hot read path no
		// extra time.Now.
		now := time.Now().UnixNano()
		s.lastActive.Store(now)
		if srv.opts.obs {
			f.at = now
		}
		srv.stats.requests.Add(1)
		select {
		case s.reqCh <- f:
		default:
			// Window full: reject this request. The BUSY marker still
			// takes a window slot, so this send blocks until the worker
			// frees one — pausing the read loop is the backpressure. The
			// rejected frame's body dies here: the marker carries only the
			// id, so the buffer recycles immediately.
			if srv.opts.netPool {
				putBuf(f.payload)
			}
			if n := srv.stats.busy.Add(1); (n-1)%busySampleEvery == 0 {
				srv.trace.Add("busy", "", map[string]any{
					"session": s.id, "busy_total": n})
			}
			s.reqCh <- frame{id: f.id, kind: StatusBusy}
		}
	}
}

// batchWorker owns the session's write side: it waits for one pending
// request, greedily drains whatever else has accumulated (up to batchMax),
// executes the whole window against the leased handle — partitioning it
// into multi-op fabric batch calls wherever adjacent requests are the same
// operation — and flushes all the replies with a single socket write: the
// paper's batch propagation applied at the network layer, now all the way
// down (a coalesced run of m pipelined enqueues becomes one m-op leaf
// block and one tree walk). It also owns teardown: when reqCh closes, the
// handle lease is released and the session unregistered.
func (srv *Server) batchWorker(s *session) {
	defer srv.wg.Done()
	defer srv.finishSession(s)
	pooled := srv.opts.netPool
	fw := newFrameWriter(s.conn, pooled)
	window := make([]frame, 0, srv.opts.batchMax)
	// recycleWindow returns the window's frame bodies to the pool. By the
	// time it runs, every reference into them is gone: enqueue payloads
	// were copied out at admit time, reply bytes were copied into the
	// egress scratch, error strings were materialized by Sprintf/string(),
	// and spans carry timestamps only.
	recycleWindow := func() {
		if !pooled {
			return
		}
		for i := range window {
			putBuf(window[i].payload)
			window[i].payload = nil
		}
	}
	for {
		f, ok := <-s.reqCh
		if !ok {
			return
		}
		window = append(window[:0], f)
	drain:
		for len(window) < srv.opts.batchMax {
			select {
			case f, more := <-s.reqCh:
				if !more {
					ok = false // connection gone; flushes become best-effort
					break drain
				}
				window = append(window, f)
			default:
				break drain
			}
		}
		err := srv.processWindow(s, window, fw)
		srv.stats.batches.Add(1)
		srv.stats.frames.Add(int64(len(window)))
		recycleWindow()
		if err == nil {
			err = fw.flush()
		}
		if err != nil {
			// The socket is broken; unblock the read loop (it may be
			// mid-read or mid-send), then drain reqCh until its close
			// lands so no sender is left stranded. Spans from the failed
			// window never got their flush stamp and are dropped with it.
			s.winSpans = s.winSpans[:0]
			s.shutdown()
			for f := range s.reqCh {
				if pooled {
					putBuf(f.payload)
				}
			}
			return
		}
		// The flush landed: close the window's spans with its timestamp and
		// publish them (one clock read per window, and only for windows that
		// carried a traced frame).
		srv.completeSpans(s)
		if !ok {
			return
		}
	}
}

// processWindow executes one drained window. Runs of adjacent single-op
// enqueue (resp. dequeue) frames targeting the same queue are coalesced
// into one fabric batch call; everything else executes frame by frame.
// Coalescing preserves the session's request order — runs never reorder
// across a frame of a different kind or queue — so pipelined
// enqueue-then-dequeue sequences observe exactly the single-op semantics.
func (srv *Server) processWindow(s *session, window []frame, fw *frameWriter) error {
	decs := s.decs[:0]
	for _, f := range window {
		decs = append(decs, decodeOp(f))
	}
	s.decs = decs
	// One admit stamp covers the whole window, taken only when the window
	// carries a sampled traced frame — untraced windows pay no clock read.
	for i := range decs {
		if decs[i].traced && window[i].at != 0 {
			s.admitNs = time.Now().UnixNano()
			break
		}
	}
	for i := 0; i < len(window); {
		d := decs[i]
		j := i + 1
		if !d.bad && (d.op == OpEnqueue || d.op == OpDequeue) {
			for j < len(window) && !decs[j].bad && decs[j].op == d.op && decs[j].qid == d.qid {
				j++
			}
		}
		run := window[i:j]
		var err error
		switch {
		case len(run) > 1 && d.op == OpEnqueue:
			err = srv.executeEnqueueRun(s, d.qid, run, decs[i:j], fw)
		case len(run) > 1 && d.op == OpDequeue:
			err = srv.executeDequeueRun(s, d.qid, run, decs[i:j], fw)
		default:
			err = srv.execute(s, run[0], d, fw)
		}
		if err != nil {
			return err
		}
		i = j
	}
	return nil
}

// refuseRun answers every frame of a run with the same request-scoped
// error (unknown queue, per-queue registry exhausted).
func (srv *Server) refuseRun(run []frame, err error, fw *frameWriter) error {
	for _, f := range run {
		if werr := fw.frame(f.id, StatusErr, []byte(err.Error())); werr != nil {
			return werr
		}
	}
	return nil
}

// executeEnqueueRun installs a coalesced run of single-enqueue frames as
// one fabric batch on the run's queue and writes each frame's reply.
// Oversized values (ones a batch reply could not ship back) are rare
// enough that the whole run falls back to frame-by-frame execution, where
// they are rejected individually.
func (srv *Server) executeEnqueueRun(s *session, qid uint32, run []frame, decs []decoded, fw *frameWriter) error {
	b, berr := s.bind(qid)
	if berr != nil {
		return srv.refuseRun(run, berr, fw)
	}
	pooled := srv.opts.netPool
	vals := s.vals[:0]
	for _, d := range decs {
		if !srv.enqueueFits(d.rest) {
			if pooled {
				for _, v := range vals {
					putBuf(v)
				}
			}
			for k, f := range run {
				if err := srv.execute(s, f, decs[k], fw); err != nil {
					return err
				}
			}
			return nil
		}
		if pooled {
			// Admit-time copy: the fabric's reference must be independent
			// of the (recyclable) frame body.
			vals = append(vals, copyBuf(d.rest))
		} else {
			vals = append(vals, d.rest)
		}
	}
	// A sampled run pays two clock reads bounding the fabric call; the
	// stamps are shared by every traced frame it carries.
	var fabricStart, fabricEnd int64
	traced := runSampled(run, decs)
	if traced {
		fabricStart = time.Now().UnixNano()
	}
	err := b.h.EnqueueBatch(vals)
	if traced {
		fabricEnd = time.Now().UnixNano()
	}
	if err == nil {
		srv.noteFabricBatch(int64(len(run)))
		srv.stats.enqueues.Add(int64(len(run)))
		srv.stats.batchedOps.Add(int64(len(run)))
		b.t.enqueues.Add(int64(len(run)))
	} else if pooled {
		for _, v := range vals { // rejected (closed): the copies die here
			putBuf(v)
		}
	}
	s.vals = vals[:0] // EnqueueBatch copies the headers; the scratch is ours again
	for k, f := range run {
		status := StatusOK
		if err != nil {
			status = StatusClosed
		}
		if werr := srv.writeReply(s, b, f, decs[k], status, nil, nil,
			obs.OpEnqueue, 1, fabricStart, fabricEnd, fw); werr != nil {
			return werr
		}
	}
	if h := b.t.hists; h != nil && err == nil {
		// One clock read prices the whole run; each frame's sample is its
		// read-to-reply in-server latency.
		now := time.Now().UnixNano()
		for _, f := range run {
			if f.at != 0 {
				h.Record(obs.OpEnqueue, s.stripe, time.Duration(now-f.at))
			}
		}
	}
	return nil
}

// executeDequeueRun serves a coalesced run of single-dequeue frames from
// one fabric batch call on the run's queue (stash first — see
// binding.stash), assigning the values to the frames in order; frames
// beyond the values get StatusEmpty. A reply that fails to write was not
// delivered (the client cannot parse a truncated length-prefixed frame),
// so its value and everything after it go back to the stash for teardown
// to re-enqueue.
func (srv *Server) executeDequeueRun(s *session, qid uint32, run []frame, decs []decoded, fw *frameWriter) error {
	b, berr := s.bind(qid)
	if berr != nil {
		return srv.refuseRun(run, berr, fw)
	}
	pooled := srv.opts.netPool
	b.t.deqPolls.Add(int64(len(run)))
	var fabricStart, fabricEnd int64
	traced := runSampled(run, decs)
	if traced {
		fabricStart = time.Now().UnixNano()
	}
	vals, fromFabric := b.takeValues(s.vals[:0], len(run))
	if traced {
		fabricEnd = time.Now().UnixNano()
	}
	if fromFabric > 0 {
		srv.noteFabricBatch(fromFabric)
	}
	srv.stats.batchedOps.Add(int64(len(run)))
	for i, f := range run {
		if i < len(vals) {
			if err := srv.writeReply(s, b, f, decs[i], StatusOK, vals[i], nil,
				obs.OpDequeue, 1, fabricStart, fabricEnd, fw); err != nil {
				// Undelivered values go back to the stash, which owns its
				// bytes until teardown re-enqueues them — never recycled.
				b.stash = append(b.stash, vals[i:]...)
				s.vals = vals[:0]
				return err
			}
			if pooled {
				putBuf(vals[i]) // reply bytes are in the egress scratch now
			}
			srv.stats.dequeues.Add(1)
			b.t.dequeues.Add(1)
			continue
		}
		srv.stats.emptyDeqs.Add(1)
		b.t.emptyDeqs.Add(1)
		if err := srv.writeReply(s, b, f, decs[i], StatusEmpty, nil, nil,
			obs.OpNullDequeue, 0, fabricStart, fabricEnd, fw); err != nil {
			s.vals = vals[:0]
			return err
		}
	}
	s.vals = vals[:0]
	if h := b.t.hists; h != nil {
		now := time.Now().UnixNano()
		for i, f := range run {
			if f.at == 0 {
				continue
			}
			op := obs.OpDequeue
			if i >= len(vals) {
				op = obs.OpNullDequeue
			}
			h.Record(op, s.stripe, time.Duration(now-f.at))
		}
	}
	return nil
}

// takeValues appends up to n dequeued values to dst — the binding's stash
// first (values dequeued earlier that overflowed a reply), then one fabric
// batch call for the remainder — and returns the result with how many
// values came from the fabric call.
func (b *binding) takeValues(dst [][]byte, n int) (vals [][]byte, fromFabric int64) {
	vals = dst
	if len(b.stash) > 0 {
		k := min(n, len(b.stash))
		vals = append(vals, b.stash[:k]...)
		b.stash = b.stash[k:]
		if len(b.stash) == 0 {
			b.stash = nil
		}
	}
	if len(vals) < n {
		var got int
		vals, got = b.h.DequeueBatchAppend(vals, n-len(vals))
		fromFabric = int64(got)
	}
	return vals, fromFabric
}

// enqueueFits reports whether an enqueued value of this size can always be
// shipped back, whatever reply type a dequeuer uses (see
// batchReplyOverhead).
func (srv *Server) enqueueFits(v []byte) bool {
	return len(v)+frameHeader+batchReplyOverhead <= srv.opts.maxFrame
}

// noteFabricBatch records one multi-op fabric call of n ops.
func (srv *Server) noteFabricBatch(n int64) {
	srv.stats.fabricBatches.Add(1)
	srv.stats.fabricBatchOps.Add(n)
}

// execute runs one request against its target queue's session lease and
// writes (but does not flush) the reply. Queue resolution failures —
// unknown id, per-queue registry exhausted, bad name — are request-scoped
// StatusErr replies, never connection failures.
func (srv *Server) execute(s *session, f frame, d decoded, fw *frameWriter) error {
	if d.bad {
		return fw.frame(f.id, StatusErr,
			[]byte(fmt.Sprintf("opcode 0x%02x payload %d bytes, too short for its trace/queue prefix",
				f.kind, len(f.payload))))
	}
	pooled := srv.opts.netPool
	switch d.op {
	case StatusBusy: // BUSY marker injected by the read loop
		return fw.frame(f.id, StatusBusy)
	case OpEnqueue:
		if !srv.enqueueFits(d.rest) {
			return fw.frame(f.id, StatusErr,
				[]byte(fmt.Sprintf("value of %d bytes cannot fit a reply within the %d-byte frame cap",
					len(d.rest), srv.opts.maxFrame)))
		}
		b, err := s.bind(d.qid)
		if err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		v := d.rest
		if pooled {
			v = copyBuf(d.rest) // admit-time copy; the frame body recycles
		}
		var fabricStart, fabricEnd int64
		if sampled(f, d) {
			fabricStart = time.Now().UnixNano()
		}
		enqErr := b.h.Enqueue(v)
		if sampled(f, d) {
			fabricEnd = time.Now().UnixNano()
		}
		if enqErr != nil {
			if pooled {
				putBuf(v) // rejected (closed): the copy dies here
			}
			return fw.frame(f.id, StatusClosed)
		}
		srv.stats.enqueues.Add(1)
		srv.stats.batchedOps.Add(1)
		b.t.enqueues.Add(1)
		err = srv.writeReply(s, b, f, d, StatusOK, nil, nil,
			obs.OpEnqueue, 1, fabricStart, fabricEnd, fw)
		recordOp(b, s.stripe, f, obs.OpEnqueue)
		return err
	case OpDequeue:
		b, err := s.bind(d.qid)
		if err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		var v []byte
		ok := false
		b.t.deqPolls.Add(1)
		var fabricStart, fabricEnd int64
		if sampled(f, d) {
			fabricStart = time.Now().UnixNano()
		}
		if len(b.stash) > 0 { // ship overflow values before new fabric pulls
			v, ok = b.popStash(), true
		} else {
			v, ok = b.h.Dequeue()
		}
		if sampled(f, d) {
			fabricEnd = time.Now().UnixNano()
		}
		srv.stats.batchedOps.Add(1)
		if !ok {
			srv.stats.emptyDeqs.Add(1)
			b.t.emptyDeqs.Add(1)
			err = srv.writeReply(s, b, f, d, StatusEmpty, nil, nil,
				obs.OpNullDequeue, 0, fabricStart, fabricEnd, fw)
			recordOp(b, s.stripe, f, obs.OpNullDequeue)
			return err
		}
		if err := srv.writeReply(s, b, f, d, StatusOK, v, nil,
			obs.OpDequeue, 1, fabricStart, fabricEnd, fw); err != nil {
			b.stash = append(b.stash, v) // undelivered: teardown re-enqueues
			return err
		}
		if pooled {
			putBuf(v) // reply bytes are in the egress scratch now
		}
		srv.stats.dequeues.Add(1)
		b.t.dequeues.Add(1)
		recordOp(b, s.stripe, f, obs.OpDequeue)
		return nil
	case OpEnqueueBatch:
		var vals [][]byte
		var err error
		if pooled {
			// Copy-at-decode: each value gets its own pooled buffer, so
			// nothing the fabric holds aliases the recyclable frame body.
			vals, err = decodeBatchPooled(d.rest, s.vals[:0])
		} else {
			vals, err = decodeBatch(d.rest)
		}
		if err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		if len(vals) == 0 {
			return fw.frame(f.id, StatusOK)
		}
		release := func() {
			if pooled {
				for _, v := range vals {
					putBuf(v)
				}
				s.vals = vals[:0]
			}
		}
		b, berr := s.bind(d.qid)
		if berr != nil {
			release()
			return fw.frame(f.id, StatusErr, []byte(berr.Error()))
		}
		var fabricStart, fabricEnd int64
		if sampled(f, d) {
			fabricStart = time.Now().UnixNano()
		}
		enqErr := b.h.EnqueueBatch(vals)
		if sampled(f, d) {
			fabricEnd = time.Now().UnixNano()
		}
		if enqErr != nil {
			release()
			return fw.frame(f.id, StatusClosed)
		}
		if pooled {
			s.vals = vals[:0] // fabric copied the headers and owns the values
		}
		srv.noteFabricBatch(int64(len(vals)))
		srv.stats.enqueues.Add(int64(len(vals)))
		srv.stats.batchedOps.Add(int64(len(vals)))
		b.t.enqueues.Add(int64(len(vals)))
		err = srv.writeReply(s, b, f, d, StatusOK, nil, nil,
			obs.OpBatch, len(vals), fabricStart, fabricEnd, fw)
		recordOp(b, s.stripe, f, obs.OpBatch)
		return err
	case OpDequeueBatch:
		if len(d.rest) != 4 {
			return fw.frame(f.id, StatusErr,
				[]byte(fmt.Sprintf("dequeue batch payload %d bytes, want 4", len(d.rest))))
		}
		n := int(binary.BigEndian.Uint32(d.rest))
		if n > MaxBatchOps {
			n = MaxBatchOps
		}
		b, err := s.bind(d.qid)
		if err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		return srv.executeDequeueBatch(s, b, f, d, n, fw)
	case OpLen:
		t, ok := srv.ns.lookup(d.qid)
		if !ok {
			return fw.frame(f.id, StatusErr,
				[]byte(fmt.Sprintf("%s: id %d", ErrUnknownQueue.Error(), d.qid)))
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(t.q.Len()))
		return fw.frame(f.id, StatusOK, buf[:])
	case OpStats:
		data, err := json.Marshal(srv.Snapshot())
		if err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		return fw.frame(f.id, StatusOK, data)
	case OpResize:
		if len(d.rest) != 4 {
			return fw.frame(f.id, StatusErr,
				[]byte(fmt.Sprintf("resize payload %d bytes, want 4", len(d.rest))))
		}
		k := int(binary.BigEndian.Uint32(d.rest))
		t, ok := srv.ns.lookup(d.qid)
		if !ok {
			return fw.frame(f.id, StatusErr,
				[]byte(fmt.Sprintf("%s: id %d", ErrUnknownQueue.Error(), d.qid)))
		}
		// Manual resizes obey the same bounds as the autoscaler, so a
		// client cannot push a queue outside the operator's envelope. The
		// reply carries the clamped count this request applied, not a
		// re-read of the fabric — a concurrent autoscaler tick could have
		// already moved it again.
		k = min(max(k, srv.opts.minShards), srv.opts.maxShards)
		from := t.q.Shards()
		if err := t.q.Resize(k); err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		srv.stats.wireResizes.Add(1)
		srv.trace.Add("wire_resize", t.name, map[string]any{
			"from": from, "to": k, "epoch": t.q.ResizeStats().Epoch})
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(k))
		return fw.frame(f.id, StatusOK, buf[:])
	case OpOpen:
		t, err := srv.openQueue(s, string(d.rest))
		if err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		var buf [queueIDLen]byte
		binary.BigEndian.PutUint32(buf[:], t.id)
		return fw.frame(f.id, StatusOK, buf[:])
	case OpDelete:
		if err := srv.ns.remove(string(d.rest)); err != nil {
			return fw.frame(f.id, StatusErr, []byte(err.Error()))
		}
		return fw.frame(f.id, StatusOK)
	default:
		return fw.frame(f.id, StatusErr,
			[]byte(fmt.Sprintf("unknown opcode 0x%02x", f.kind)))
	}
}

// openQueue resolves OpOpen for one session: the named queue is created
// on first use (its fabric instantiated then, not before), and the
// session binds to it so the idle reaper leaves it alone while the
// session lives. Creation and binding happen under one namespace lock,
// so the reaper cannot tear a pre-existing idle queue down between the
// two; a re-open of a queue this session already holds undoes the extra
// ref. The handle lease itself stays lazy — opening a queue reserves no
// registry slot until the first data operation.
func (srv *Server) openQueue(s *session, name string) (*tenant, error) {
	t, err := srv.ns.open(name, true)
	if err != nil {
		return nil, err
	}
	if _, ok := s.bindings[t.id]; ok {
		srv.ns.unbind(t) // already bound: one ref per (session, queue)
	} else {
		s.bindings[t.id] = &binding{t: t}
	}
	return t, nil
}

// executeDequeueBatch serves one OpDequeueBatch request against one
// queue binding: up to n values, stash first, then the fabric, capped so
// the encoded reply never exceeds the frame limit. Values that were
// pulled from the fabric but would overflow the reply go to the binding's
// stash and are shipped by the next dequeue request instead — the frame
// cap must bound every frame the server emits, not only the ones it
// reads.
func (srv *Server) executeDequeueBatch(s *session, b *binding, f frame, d decoded, n int, fw *frameWriter) error {
	pooled := srv.opts.netPool
	b.t.deqPolls.Add(1)
	budget := srv.opts.maxFrame - frameHeader - 4 // payload bytes after the count word
	if sampled(f, d) {
		// A traced reply carries the span block too; shrink the budget so
		// the traced frame still fits the cap.
		budget -= traceBlockLen
	}
	out := s.vals[:0]
	var fabricStart, fabricEnd int64
	if sampled(f, d) {
		fabricStart = time.Now().UnixNano()
	}
	full := false
	for len(b.stash) > 0 && len(out) < n && !full {
		if v := b.stash[0]; 4+len(v) <= budget {
			budget -= 4 + len(v)
			out = append(out, v)
			b.popStash()
		} else {
			full = true
		}
	}
	for !full && len(out) < n {
		want := n - len(out)
		base := len(out)
		var got int
		out, got = b.h.DequeueBatchAppend(out, want)
		if got > 0 {
			srv.noteFabricBatch(int64(got))
		}
		for i := base; i < len(out); i++ {
			if 4+len(out[i]) <= budget {
				budget -= 4 + len(out[i])
				continue
			}
			// Reply full: everything already pulled is owed to this session.
			b.stash = append(b.stash, out[i:]...)
			out = out[:i]
			full = true
			break
		}
		if got < want {
			break // fabric certified empty
		}
	}
	if sampled(f, d) {
		fabricEnd = time.Now().UnixNano()
	}
	if len(out) == 0 {
		s.vals = out
		srv.stats.batchedOps.Add(1) // the empty reply still answers one op
		srv.stats.emptyDeqs.Add(1)
		b.t.emptyDeqs.Add(1)
		err := srv.writeReply(s, b, f, d, StatusEmpty, nil, nil,
			obs.OpNullDequeue, 0, fabricStart, fabricEnd, fw)
		recordOp(b, s.stripe, f, obs.OpNullDequeue)
		return err
	}
	srv.stats.batchedOps.Add(int64(len(out)))
	if err := srv.writeReply(s, b, f, d, StatusOK, nil, out,
		obs.OpBatch, len(out), fabricStart, fabricEnd, fw); err != nil {
		// The reply never reached the client as a parseable frame; keep its
		// values for teardown to re-enqueue.
		b.stash = append(b.stash, out...)
		s.vals = out[:0]
		return err
	}
	if pooled {
		for _, v := range out { // reply bytes are in the egress scratch now
			putBuf(v)
		}
	}
	s.vals = out[:0]
	srv.stats.dequeues.Add(int64(len(out)))
	b.t.dequeues.Add(int64(len(out)))
	recordOp(b, s.stripe, f, obs.OpBatch)
	return nil
}

// recordOp samples one frame's in-server latency (read-loop stamp to
// reply) into the binding's queue histograms. A zero stamp (observability
// off) or a tenant without histograms makes it a no-op, so call sites
// need no guard.
func recordOp(b *binding, stripe int, f frame, op obs.Op) {
	if h := b.t.hists; h != nil && f.at != 0 {
		h.Record(op, stripe, time.Duration(time.Now().UnixNano()-f.at))
	}
}

// sampled reports whether a request frame is a live trace sample: the
// client set the trace flag and the read loop stamped the frame (i.e.
// observability is on). A traced frame on an obs-off server is served
// normally but answered plain — the client reads that as "declined".
func sampled(f frame, d decoded) bool {
	return d.traced && f.at != 0
}

// runSampled reports whether any frame of a coalesced run is a live trace
// sample, deciding whether the run pays for fabric-boundary clock reads.
func runSampled(run []frame, decs []decoded) bool {
	for i := range run {
		if sampled(run[i], decs[i]) {
			return true
		}
	}
	return false
}

// writeReply writes one reply frame, upgrading it to the traced form —
// status|OpTraceFlag with a span-block payload prefix — when the request
// was a live trace sample and the reply is a terminal success (OK or
// Empty). The span itself is parked on the session until the window's
// flush lands (completeSpans), which closes its last stage. The reply body
// is either payload (a single value or fixed-size answer) or bvals (a
// batch reply, encoded straight into the egress scratch) — never both. ops
// is how many values the frame moved; fabricStart/fabricEnd bound the
// queue operation that served it (shared by every frame of a coalesced
// run). A traced reply that would overflow the frame cap falls back to the
// plain form — the span is still captured server-side.
func (srv *Server) writeReply(s *session, b *binding, f frame, d decoded, status byte,
	payload []byte, bvals [][]byte, op obs.Op, ops int, fabricStart, fabricEnd int64, fw *frameWriter) error {
	if !sampled(f, d) || srv.spans == nil || (status != StatusOK && status != StatusEmpty) {
		if bvals != nil {
			return fw.batchFrame(f.id, status, nil, bvals)
		}
		return fw.frame(f.id, status, payload)
	}
	replyWrite := time.Now().UnixNano()
	sp := &obs.Span{
		Queue:       b.t.name,
		Op:          op.String(),
		Session:     s.id,
		ReqID:       f.id,
		Ops:         ops,
		ClientSend:  d.sendNs,
		Read:        f.at,
		Admit:       s.admitNs,
		FabricStart: fabricStart,
		FabricEnd:   fabricEnd,
		ReplyWrite:  replyWrite,
	}
	s.winSpans = append(s.winSpans, sp)
	bodyLen := len(payload)
	if bvals != nil {
		bodyLen = encodedBatchSize(bvals)
	}
	if frameHeader+traceBlockLen+bodyLen > srv.opts.maxFrame {
		if bvals != nil {
			return fw.batchFrame(f.id, status, nil, bvals)
		}
		return fw.frame(f.id, status, payload)
	}
	if !fw.pooled {
		// Legacy-arm fidelity: materialize the span block (and a batch
		// payload) through the allocating helpers, as the pre-pooling
		// encoder did.
		body := payload
		if bvals != nil {
			body = encodeBatch(bvals)
		}
		return fw.frame(f.id, status|OpTraceFlag,
			putSpanBlock(f.at, s.admitNs, fabricStart, fabricEnd, replyWrite, body))
	}
	var block [traceBlockLen]byte
	for i, ns := range [5]int64{f.at, s.admitNs, fabricStart, fabricEnd, replyWrite} {
		binary.BigEndian.PutUint64(block[i*8:], uint64(ns))
	}
	if bvals != nil {
		return fw.batchFrame(f.id, status|OpTraceFlag, block[:], bvals)
	}
	return fw.frame(f.id, status|OpTraceFlag, block[:], payload)
}

// completeSpans closes the window's parked spans with the flush timestamp
// that just landed, prices their stages into the per-stage histograms, and
// publishes them to the exemplar reservoir.
func (srv *Server) completeSpans(s *session) {
	if len(s.winSpans) == 0 {
		return
	}
	now := time.Now().UnixNano()
	for i, sp := range s.winSpans {
		sp.Flush = now
		srv.stageHists.RecordSpan(s.stripe, sp)
		srv.spans.Offer(sp)
		s.winSpans[i] = nil
	}
	s.winSpans = s.winSpans[:0]
}

// popStash removes and returns the stash head; the stash must be nonempty.
func (b *binding) popStash() []byte {
	v := b.stash[0]
	b.stash = b.stash[1:]
	if len(b.stash) == 0 {
		b.stash = nil
	}
	return v
}

// finishSession releases every queue lease the session holds and
// unregisters it. Per queue, stashed values (dequeued from that queue's
// fabric but never shipped) are returned to the same fabric first, so a
// client disconnecting between an overflowing batch dequeue and the next
// request cannot lose values; the re-enqueue appends them behind the
// current backlog, trading their FIFO position for conservation. Only a
// fabric closed by its owner — or a named queue its owner deleted — can
// make this fail, and then the loss is the owner's explicit choice.
func (srv *Server) finishSession(s *session) {
	s.shutdown()
	if srv.sessions.remove(s.id) {
		srv.trace.Add("session_close", "", map[string]any{
			"session": s.id, "queues_bound": len(s.bindings)})
		for _, b := range s.bindings {
			if b.h != nil {
				if len(b.stash) > 0 {
					b.h.EnqueueBatch(b.stash)
					b.stash = nil
				}
				b.h.Release()
			}
			srv.ns.unbind(b.t)
		}
	}
}

// Stats is the service-level half of a Snapshot. Operation counters count
// queue operations (values), not wire frames: a batch frame carrying m
// values contributes m to Enqueues/Dequeues/BatchedOps and 1 to Frames, so
// BatchedOps/Frames is the wire-level amortization and
// FabricBatchOps/FabricBatches the fabric-level one.
type Stats struct {
	SessionsOpen   int     `json:"sessions_open"`
	SessionsTotal  int64   `json:"sessions_total"`
	SessionsDenied int64   `json:"sessions_denied"`
	SessionsReaped int64   `json:"sessions_reaped"`
	Requests       int64   `json:"requests"`
	Busy           int64   `json:"busy"`
	Enqueues       int64   `json:"enqueues"`
	Dequeues       int64   `json:"dequeues"`
	EmptyDequeues  int64   `json:"empty_dequeues"`
	Batches        int64   `json:"batches"`
	Frames         int64   `json:"frames"`           // request frames answered by batch passes
	BatchedOps     int64   `json:"batched_ops"`      // queue ops executed by batch passes
	FabricBatches  int64   `json:"fabric_batches"`   // multi-op fabric calls
	FabricBatchOps int64   `json:"fabric_batch_ops"` // queue ops carried by multi-op fabric calls
	OpsPerBatch    float64 `json:"ops_per_batch"`    // BatchedOps / Batches
	Window         int     `json:"window"`
	BatchMax       int     `json:"batch_max"`

	// Namespace counters: live queue count (default queue included) and
	// named-queue lifecycle churn.
	QueuesOpen    int   `json:"queues_open"`
	QueuesOpened  int64 `json:"queues_opened"`  // named queues created by OpOpen
	QueuesDeleted int64 `json:"queues_deleted"` // named queues removed by OpDelete
	QueuesExpired int64 `json:"queues_expired"` // named queues torn down by the idle reaper

	// Elasticity counters and envelope: per-queue resize activity split by
	// initiator (the autoscaler vs wire-level RESIZE requests), plus the
	// configured autoscale cadence and shard bounds.
	AutoscaleGrows   int64   `json:"autoscale_grows"`
	AutoscaleShrinks int64   `json:"autoscale_shrinks"`
	WireResizes      int64   `json:"wire_resizes"`
	AutoscaleMs      float64 `json:"autoscale_ms"` // tick interval in ms; 0 = autoscaler off
	MinShards        int     `json:"min_shards"`
	MaxShards        int     `json:"max_shards"`
}

// ObsStats is the server-wide observability block of a Snapshot: trace
// ring occupancy plus latency summaries per operation class aggregated
// across every live queue. In-server latency is measured per request
// frame, from the read loop's socket read to the reply write, so window
// queueing is part of the measured interval.
type ObsStats struct {
	TraceRecorded int64 `json:"trace_recorded"` // events ever added to the ring
	TraceCapacity int   `json:"trace_capacity"`

	EnqueueLat     obs.LatencySummary `json:"enqueue_lat"`
	DequeueLat     obs.LatencySummary `json:"dequeue_lat"`
	BatchLat       obs.LatencySummary `json:"batch_lat"`
	NullDequeueLat obs.LatencySummary `json:"null_dequeue_lat"`

	// Request-tracing block: spans ever captured by the exemplar reservoir
	// (see /spanz) and per-stage latency summaries over traced frames only
	// — wait (read to batcher admit), fabric (queue operation), reply
	// (fabric end to reply write), flush (reply write to socket flush),
	// server (the whole read-to-flush interval).
	Spans    int64                         `json:"spans"`
	StageLat map[string]obs.LatencySummary `json:"stage_lat,omitempty"`
}

// Snapshot is the stable JSON document served by /statsz and OpStats:
// service counters, the default fabric's own snapshot (per-shard routing
// traffic, registry lease churn, optional cost-model summaries), one
// entry per live queue in the namespace, and — when observability is on —
// the aggregate latency/trace block.
type Snapshot struct {
	Server Stats          `json:"server"`
	Fabric shard.Snapshot `json:"fabric"`
	Queues []QueueStat    `json:"queues"`
	Obs    *ObsStats      `json:"obs,omitempty"`
}

// Snapshot captures the server and fabric statistics.
func (srv *Server) Snapshot() Snapshot {
	st := Stats{
		SessionsOpen:   srv.sessions.count(),
		SessionsTotal:  srv.stats.sessionsTotal.Load(),
		SessionsDenied: srv.stats.sessionsDenied.Load(),
		SessionsReaped: srv.stats.reaped.Load(),
		Requests:       srv.stats.requests.Load(),
		Busy:           srv.stats.busy.Load(),
		Enqueues:       srv.stats.enqueues.Load(),
		Dequeues:       srv.stats.dequeues.Load(),
		EmptyDequeues:  srv.stats.emptyDeqs.Load(),
		Batches:        srv.stats.batches.Load(),
		Frames:         srv.stats.frames.Load(),
		BatchedOps:     srv.stats.batchedOps.Load(),
		FabricBatches:  srv.stats.fabricBatches.Load(),
		FabricBatchOps: srv.stats.fabricBatchOps.Load(),
		Window:         srv.opts.window,
		BatchMax:       srv.opts.batchMax,
		QueuesOpen:     srv.ns.count(),
		QueuesOpened:   srv.ns.opened.Load(),
		QueuesDeleted:  srv.ns.dropped.Load(),
		QueuesExpired:  srv.ns.expired.Load(),

		AutoscaleGrows:   srv.stats.autoGrows.Load(),
		AutoscaleShrinks: srv.stats.autoShrinks.Load(),
		WireResizes:      srv.stats.wireResizes.Load(),
		AutoscaleMs:      float64(srv.opts.autoscale) / float64(time.Millisecond),
		MinShards:        srv.opts.minShards,
		MaxShards:        srv.opts.maxShards,
	}
	if st.Batches > 0 {
		st.OpsPerBatch = float64(st.BatchedOps) / float64(st.Batches)
	}
	snap := Snapshot{Server: st, Fabric: srv.q.Snapshot(), Queues: srv.ns.queueStats()}
	if srv.opts.obs {
		agg := srv.ns.aggregateLat()
		stageLat := make(map[string]obs.LatencySummary, obs.NumStages)
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			stageLat[st.String()] = srv.stageHists.Summary(st)
		}
		snap.Obs = &ObsStats{
			TraceRecorded:  srv.trace.Recorded(),
			TraceCapacity:  srv.trace.Capacity(),
			EnqueueLat:     agg[obs.OpEnqueue],
			DequeueLat:     agg[obs.OpDequeue],
			BatchLat:       agg[obs.OpBatch],
			NullDequeueLat: agg[obs.OpNullDequeue],
			Spans:          srv.spans.Offered(),
			StageLat:       stageLat,
		}
	}
	return snap
}

// StatszHandler serves the Snapshot as JSON — mount it at /statsz.
func (srv *Server) StatszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(srv.Snapshot())
	})
}
