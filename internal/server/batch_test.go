package server

// Tests for the native batch wire path: codec, end-to-end batch ops,
// window coalescing into fabric batch calls, frame-cap overflow stashing,
// and the frames-vs-ops accounting split.

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/shard"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{},
		{[]byte("a")},
		{[]byte(""), []byte("bc"), bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, vals := range cases {
		enc := encodeBatch(vals)
		if len(enc) != encodedBatchSize(vals) {
			t.Fatalf("encoded %d bytes, size computed %d", len(enc), encodedBatchSize(vals))
		}
		dec, err := decodeBatch(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("decoded %d values, want %d", len(dec), len(vals))
		}
		for i := range vals {
			if !bytes.Equal(dec[i], vals[i]) {
				t.Fatalf("value %d = %q, want %q", i, dec[i], vals[i])
			}
		}
	}
}

func TestBatchCodecRejectsMalformed(t *testing.T) {
	for name, payload := range map[string][]byte{
		"short":         {1, 2},
		"hugeCount":     {0xFF, 0xFF, 0xFF, 0xFF},
		"truncatedVal":  {0, 0, 0, 1, 0, 0, 0, 9, 'x'},
		"trailingBytes": append(encodeBatch([][]byte{{'a'}}), 0),
	} {
		if _, err := decodeBatch(payload); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func startTestServer(t *testing.T, opts ...Option) (*Server, *Client) {
	t.Helper()
	q, err := shard.New[[]byte](1, shard.WithMaxHandles(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

func TestClientBatchRoundTrip(t *testing.T) {
	srv, c := startTestServer(t)
	vals := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	if err := c.EnqueueBatch(vals); err != nil {
		t.Fatal(err)
	}
	if err := c.EnqueueBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	got, err := c.DequeueBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("DequeueBatch returned %d values, want 3", len(got))
	}
	for i := range vals {
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("value %d = %q, want %q (FIFO within a session)", i, got[i], vals[i])
		}
	}
	if got, err := c.DequeueBatch(4); err != nil || got != nil {
		t.Fatalf("DequeueBatch on empty = (%v,%v)", got, err)
	}
	st := srv.Snapshot().Server
	if st.Enqueues != 3 || st.Dequeues != 3 {
		t.Errorf("op counters enq=%d deq=%d, want 3 and 3 (ops, not frames)", st.Enqueues, st.Dequeues)
	}
	if st.FabricBatches < 2 || st.FabricBatchOps < 6 {
		t.Errorf("fabric batch counters = (%d,%d), want >= (2,6)", st.FabricBatches, st.FabricBatchOps)
	}
}

// TestBatchDequeueRespectsFrameCap enqueues values that cannot all fit one
// reply frame and asks for them in a single oversized batch: the server
// must split the delivery across requests via its stash instead of either
// overrunning the cap or losing values.
func TestBatchDequeueRespectsFrameCap(t *testing.T) {
	const maxFrame = 4096
	q, err := shard.New[[]byte](1, shard.WithMaxHandles(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, WithMaxFrame(maxFrame))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialMaxFrame(srv.Addr().String(), maxFrame)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 10
	value := bytes.Repeat([]byte{'v'}, 1000) // ~4 values per 4096-byte frame
	for i := 0; i < n; i++ {
		v := append([]byte{byte(i)}, value...)
		if err := c.Enqueue(v); err != nil {
			t.Fatal(err)
		}
	}
	var got [][]byte
	for len(got) < n {
		vs, err := c.DequeueBatch(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			t.Fatalf("fabric empty after %d of %d values", len(got), n)
		}
		if sz := encodedBatchSize(vs) + frameHeader; sz > maxFrame {
			t.Fatalf("reply frame %d bytes exceeds cap %d", sz, maxFrame)
		}
		got = append(got, vs...)
	}
	for i, v := range got {
		if v[0] != byte(i) {
			t.Fatalf("value %d out of order (got prefix %d)", i, v[0])
		}
	}
}

// TestNearCapValueStaysBatchDequeueable pins the invariant behind
// batchReplyOverhead: a value within 8 bytes of the frame cap would fit
// its own single enqueue frame but no batch reply, so the server must
// reject it at enqueue — otherwise a batch consumer would be told "empty"
// forever while the value sat in the session stash. The largest admissible
// value must round-trip through DequeueBatch.
func TestNearCapValueStaysBatchDequeueable(t *testing.T) {
	const maxFrame = 4096
	q, err := shard.New[[]byte](1, shard.WithMaxHandles(4))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, WithMaxFrame(maxFrame))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Dial with a larger client cap so the client-side check does not mask
	// the server-side rejection.
	c, err := DialMaxFrame(srv.Addr().String(), 2*maxFrame)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	gapValue := make([]byte, maxFrame-frameHeader) // fits the request frame, not a batch reply
	if err := c.Enqueue(gapValue); err == nil {
		t.Fatal("server accepted a value that no batch reply can ship")
	}
	biggest := make([]byte, maxFrame-frameHeader-batchReplyOverhead)
	biggest[0] = 0x5A
	if err := c.Enqueue(biggest); err != nil {
		t.Fatalf("largest admissible value rejected: %v", err)
	}
	vs, err := c.DequeueBatch(4)
	if err != nil || len(vs) != 1 || len(vs[0]) != len(biggest) || vs[0][0] != 0x5A {
		t.Fatalf("DequeueBatch = (%d values, %v), want the near-cap value back", len(vs), err)
	}

	// The client-side guard agrees with the server's.
	c2, err := DialMaxFrame(srv.Addr().String(), maxFrame)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Enqueue(gapValue); err == nil {
		t.Fatal("client accepted a value that no batch reply can ship")
	}
}

// TestWindowCoalescing pipelines many single-op enqueues, then dequeues,
// and checks the worker actually executed multi-op fabric calls (runs of
// adjacent same-kind frames) rather than per-frame sub-operations.
func TestWindowCoalescing(t *testing.T) {
	srv, c := startTestServer(t, WithWindow(64))
	const n = 32
	done := make(chan *call, n+1)
	var calls []*call
	for i := 0; i < n; i++ {
		cl, err := c.start(OpEnqueue, []byte{byte(i)}, done, nil)
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, cl)
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	for range calls {
		cl := <-done
		if cl.err != nil || cl.f.kind != StatusOK {
			t.Fatalf("pipelined enqueue reply = (%v, 0x%02x)", cl.err, cl.f.kind)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := c.Dequeue()
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("dequeue %d = (%v,%v,%v)", i, v, ok, err)
		}
	}
	st := srv.Snapshot().Server
	if st.FabricBatches == 0 || st.FabricBatchOps == 0 {
		t.Errorf("no fabric batch calls recorded for %d pipelined enqueues: %+v", n, st)
	}
	if st.Frames == 0 || st.BatchedOps < int64(2*n) {
		t.Errorf("frames=%d batchedOps=%d, want frames > 0 and ops >= %d", st.Frames, st.BatchedOps, 2*n)
	}
}

// TestStatsJSONRoundTrip pins the Snapshot's stable JSON encoding,
// including the new frames-vs-ops accounting fields.
func TestStatsJSONRoundTrip(t *testing.T) {
	srv, c := startTestServer(t)
	if err := c.EnqueueBatch([][]byte{[]byte("x"), []byte("y")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DequeueBatch(2); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(srv.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Server != srv.Snapshot().Server {
		// Counters may tick between the two snapshots only if traffic runs;
		// none does here.
		t.Errorf("server stats did not survive the round trip:\n got %+v\nwant %+v",
			back.Server, srv.Snapshot().Server)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	serverRaw := raw["server"].(map[string]any)
	for _, key := range []string{"frames", "batched_ops", "fabric_batches", "fabric_batch_ops", "ops_per_batch"} {
		if _, ok := serverRaw[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
}

// TestLoadgenBatchConservation runs the open-loop generator in batch mode
// against an in-process server and requires exact conservation.
func TestLoadgenBatchConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a timed load phase")
	}
	q, err := shard.New[[]byte](2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := RunLoad(srv.Addr().String(), LoadConfig{
		Rate:      4000,
		Duration:  300 * 1e6, // 300ms
		Producers: 2,
		Consumers: 2,
		Batch:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked == 0 {
		t.Fatal("no enqueues acknowledged")
	}
	if !res.Conserved() {
		t.Fatalf("conservation violated: lost=%d dup=%d", res.Lost, res.Dup)
	}
	st := srv.Snapshot().Server
	if st.FabricBatches == 0 {
		t.Error("batch-mode load produced no fabric batch calls")
	}
	if st.BatchedOps <= st.Frames {
		t.Errorf("batchedOps=%d frames=%d: batch mode should execute more ops than frames",
			st.BatchedOps, st.Frames)
	}
}
