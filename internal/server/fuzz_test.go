package server

// Wire-protocol robustness: FuzzFrame drives arbitrary bytes through the
// pure parsing layers (frame framing, opcode/prefix resolution, batch
// codec, traced-reply splitting), which must reject malformed input with
// errors — never a panic, hang, or unbounded allocation. The companion
// live-server test replays the malformed seed corpus over real TCP and
// checks the server answers each with a request-scoped ERR or a clean
// connection teardown, stays fully serviceable afterwards, and leaks no
// goroutines.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/shard"
)

// fuzzMaxFrame keeps the fuzzer from spending its budget allocating huge
// well-formed frames; the framing logic is identical at any cap.
const fuzzMaxFrame = 1 << 16

// rawFrame builds a wire frame (length prefix included) by hand so seeds
// can lie about lengths in ways writeFrame never would.
func rawFrame(id uint64, kind byte, payload []byte) []byte {
	buf := make([]byte, 4+frameHeader+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(frameHeader+len(payload)))
	binary.BigEndian.PutUint64(buf[4:12], id)
	buf[12] = kind
	copy(buf[13:], payload)
	return buf
}

// malformedSeeds is the checked-in seed corpus: every frame shape the
// parser must reject (or survive), including the traced-flag and
// queue-qualified truncations called out in the protocol comments.
func malformedSeeds() map[string][]byte {
	qidPrefix := []byte{0, 0, 0, 7}
	stamp := bytes.Repeat([]byte{0x11}, traceStampLen)
	return map[string][]byte{
		"empty":          {},
		"shortLenPrefix": {0x00, 0x00},
		// Declared length below the id+kind header.
		"lengthBelowHeader": {0x00, 0x00, 0x00, 0x05, 1, 2, 3, 4, 5},
		// Hostile length prefix far beyond maxFrame.
		"lengthHuge": {0xFF, 0xFF, 0xFF, 0xFF},
		// Declared length larger than the bytes that follow (truncated body).
		"truncatedBody": {0x00, 0x00, 0x00, 0x20, 0, 0, 0, 0, 0, 0, 0, 1, byte(OpEnqueue), 'x'},
		// Traced enqueue whose payload is shorter than the 8-byte stamp.
		"tracedShortStamp": rawFrame(1, OpEnqueue|OpTraceFlag, []byte{1, 2, 3}),
		// Queue-qualified enqueue with a truncated queue id.
		"qualifiedShortQid": rawFrame(2, OpEnqueueQ, []byte{0, 7}),
		// Traced + qualified with a full stamp but truncated queue id.
		"tracedQualifiedShortQid": rawFrame(3, OpEnqueueQ|OpTraceFlag, append(append([]byte{}, stamp...), 0, 7)),
		// Batch enqueue declaring 2^32-1 entries with no bodies.
		"batchHugeCount": rawFrame(4, OpEnqueueBatch, []byte{0xFF, 0xFF, 0xFF, 0xFF}),
		// Batch enqueue whose last entry's length overruns the payload.
		"batchTruncatedEntry": rawFrame(5, OpEnqueueBatch, []byte{0, 0, 0, 1, 0, 0, 0, 9, 'x'}),
		// Batch enqueue with trailing garbage after the declared entries.
		"batchTrailing": rawFrame(6, OpEnqueueBatch, append(encodeBatch([][]byte{{'a'}}), 0xEE)),
		// Dequeue batch demanding more elements than MaxBatchOps allows.
		"deqBatchAbsurd": rawFrame(7, OpDequeueBatch, []byte{0x7F, 0xFF, 0xFF, 0xFF}),
		// Dequeue batch with a truncated count word.
		"deqBatchShort": rawFrame(8, OpDequeueBatch, []byte{0x01}),
		// Qualified dequeue batch with qid but truncated count.
		"deqBatchQualifiedShort": rawFrame(9, OpDequeueBatchQ, append(append([]byte{}, qidPrefix...), 0x01)),
		// Unknown opcode, and an opcode with an undefined flag combination.
		"unknownOp":     rawFrame(10, 0x55, []byte("???")),
		"undefinedFlag": rawFrame(11, OpLen|OpTraceFlag, stamp),
		// A response status arriving as a request.
		"statusAsRequest": rawFrame(12, StatusOK, nil),
		// Traced status reply shorter than its span block (client-side parse).
		"tracedReplyShort": rawFrame(13, StatusOK|OpTraceFlag, []byte{1, 2, 3}),
		// Resize with a truncated shard-count word.
		"resizeShort": rawFrame(14, OpResize, []byte{0x02}),
		// Open with an empty name and with an oversized declared name.
		"openEmptyName": rawFrame(15, OpOpen, nil),
		"openLongName":  rawFrame(16, OpOpen, bytes.Repeat([]byte{'n'}, MaxQueueName+1)),
		// A perfectly valid frame, so the fuzzer starts from the happy path too.
		"validEnqueue": rawFrame(17, OpEnqueue, []byte("hello")),
		"validBatch":   rawFrame(18, OpEnqueueBatch, encodeBatch([][]byte{[]byte("a"), []byte("bc")})),
		// A frame whose body fills the frame cap exactly: the largest
		// admissible allocation, landing in the pool's top size class.
		"maxFrameBody": rawFrame(19, OpEnqueueBatch, maxBatchPayload()),
		// A large frame followed by a batch of zero-length entries on the
		// same connection: the second frame reuses the first's recycled
		// pool buffer, and its empty values must decode as empty — never
		// alias the stale large-frame bytes still in the buffer.
		"zeroLenBatchAfterLargeFrame": append(
			rawFrame(20, OpEnqueue, bytes.Repeat([]byte{0xAB}, fuzzMaxFrame/2)),
			rawFrame(21, OpEnqueueBatch, encodeBatch([][]byte{{}, {}, {}}))...),
	}
}

// maxBatchPayload builds a batch-enqueue payload that makes the whole
// frame exactly fuzzMaxFrame bytes: one entry absorbing all the room the
// framing and batch headers leave.
func maxBatchPayload() []byte {
	return encodeBatch([][]byte{make([]byte, fuzzMaxFrame-frameHeader-8)})
}

// FuzzFrame feeds arbitrary bytes through every pure parser on the frame
// path. All errors are acceptable outcomes; panics and hangs are not.
func FuzzFrame(f *testing.F) {
	for _, seed := range malformedSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bufio.NewReader(bytes.NewReader(data)), fuzzMaxFrame)
		if err != nil {
			return // rejected at the framing layer: fine
		}
		d := decodeOp(fr)
		if !d.bad {
			switch d.op {
			case OpEnqueueBatch:
				// The batch codec must reject anything inconsistent
				// without overreading; decoded values must alias inside
				// the payload.
				if vals, err := decodeBatch(d.rest); err == nil {
					var total int
					for _, v := range vals {
						total += len(v)
					}
					if total > len(d.rest) {
						t.Fatalf("decodeBatch returned %d bytes from a %d-byte payload", total, len(d.rest))
					}
				}
			case OpDequeueBatch:
				// Count word parse; the executor clamps against
				// MaxBatchOps, the parser only needs the 4 bytes.
				if len(d.rest) >= 4 {
					_ = binary.BigEndian.Uint32(d.rest[:4])
				}
			}
		}
		// The same bytes interpreted as a reply must also never panic.
		if _, _, _, err := splitTracedReply(fr); err != nil {
			return
		}
	})
}

// TestDecodeOpTruncatedPrefixes pins the exact prefix-truncation semantics
// the fuzz seeds probe: flagged opcodes whose payloads cannot carry their
// declared prefixes must come back bad, never misaddressed.
func TestDecodeOpTruncatedPrefixes(t *testing.T) {
	stamp := bytes.Repeat([]byte{9}, traceStampLen)
	cases := []struct {
		name    string
		kind    byte
		payload []byte
		wantBad bool
	}{
		{"tracedNoStamp", OpEnqueue | OpTraceFlag, nil, true},
		{"tracedShortStamp", OpDequeue | OpTraceFlag, []byte{1}, true},
		{"qualifiedNoQid", OpEnqueueQ, nil, true},
		{"qualifiedShortQid", OpDequeueBatchQ, []byte{1, 2}, true},
		{"tracedQualifiedShortQid", OpEnqueueQ | OpTraceFlag, append(append([]byte{}, stamp...), 1), true},
		{"tracedQualifiedOK", OpEnqueueQ | OpTraceFlag, append(append([]byte{}, stamp...), 0, 0, 0, 7, 'v'), false},
	}
	for _, c := range cases {
		d := decodeOp(frame{kind: c.kind, payload: c.payload})
		if d.bad != c.wantBad {
			t.Errorf("%s: bad = %v, want %v", c.name, d.bad, c.wantBad)
		}
		if c.name == "tracedQualifiedOK" && !d.bad {
			if !d.traced || d.qid != 7 || string(d.rest) != "v" {
				t.Errorf("tracedQualifiedOK decoded to %+v", d)
			}
		}
	}
}

// TestMalformedFramesNoPanicNoLeak replays the malformed seed corpus
// against a live server over TCP. Every connection must end in either a
// request-scoped reply or a clean server-side close; afterwards the server
// must still serve a fresh client, and the goroutine count must return to
// its pre-corpus baseline (no reader/batcher leaked by a poisoned
// connection).
func TestMalformedFramesNoPanicNoLeak(t *testing.T) {
	q, err := shard.New[[]byte](1, shard.WithMaxHandles(64))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, WithMaxFrame(fuzzMaxFrame))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	roundTrip := func() error {
		c, err := Dial(addr)
		if err != nil {
			return err
		}
		defer c.Close()
		if err := c.Enqueue([]byte("ping")); err != nil {
			return err
		}
		_, _, err = c.Dequeue()
		return err
	}
	if err := roundTrip(); err != nil {
		t.Fatalf("pre-corpus round trip: %v", err)
	}
	// settle polls until the goroutine count stops falling (or a deadline),
	// giving closed connections' readers and batchers time to exit.
	settle := func(target int) int {
		deadline := time.Now().Add(3 * time.Second)
		n := runtime.NumGoroutine()
		for time.Now().Before(deadline) {
			if target > 0 && n <= target {
				return n
			}
			time.Sleep(20 * time.Millisecond)
			next := runtime.NumGoroutine()
			if target <= 0 && next == n {
				return n
			}
			n = next
		}
		return n
	}
	baseline := settle(0)

	for name, payload := range malformedSeeds() {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		if _, err := conn.Write(payload); err == nil {
			// Follow with a valid Len probe: if the malformed frame was
			// request-scoped the server must still answer on this
			// connection; if it poisoned the framing the server must
			// close, surfacing as an error or EOF here — both fine.
			conn.Write(rawFrame(99, OpLen, nil))
		}
		// One read resolves the connection's fate: a reply (request-scoped
		// rejection), EOF (server-side close), or a short deadline (server
		// legitimately blocked waiting for the rest of a declared frame —
		// closing below must still tear its goroutines down).
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		buf := make([]byte, 4096)
		conn.Read(buf)
		conn.Close()
	}

	if err := roundTrip(); err != nil {
		t.Fatalf("post-corpus round trip: %v", err)
	}
	after := settle(baseline + 3)
	// Allow a little scheduler slack; a leak would hold one reader plus
	// one batcher per poisoned connection (~2x corpus size over baseline).
	if after > baseline+3 {
		t.Fatalf("goroutines %d after corpus, baseline %d: leaked connection goroutines", after, baseline)
	}
}
