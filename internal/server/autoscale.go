package server

import (
	"time"
)

// Autoscaler defaults; override with WithShardBounds and
// WithAutoscaleWatermarks.
const (
	// DefaultMinShards / DefaultMaxShards bound the per-queue shard count
	// the autoscaler (and the wire-level manual Resize) will apply.
	DefaultMinShards = 1
	DefaultMaxShards = 16

	// DefaultHighWatermark is the served-operation rate per shard (ops/s,
	// enqueues + dequeues) above which a queue's fabric grows, and
	// DefaultLowWatermark the rate below which it shrinks. The gap between
	// them (together with doubling/halving steps) is the hysteresis that
	// keeps the scaler from flapping around a steady rate.
	DefaultHighWatermark = 8000.0
	DefaultLowWatermark  = 1000.0

	// autoscaleBacklogPerShard is the occupancy watermark: a queue whose
	// backlog exceeds this many elements per shard grows even when its
	// served rate is below the high watermark (consumers are not keeping
	// up, and more shards widen the dequeue path).
	autoscaleBacklogPerShard = 4096
)

// scalerSample is the per-queue counter state one autoscale tick compares
// the next tick against, so decisions are made on rate deltas rather than
// lifetime totals. ticks counts decisions made for this queue, pacing the
// sampled hold-decision trace events.
type scalerSample struct {
	enq, deq, empty, polls int64
	ticks                  int64
}

// autoscaleLoop periodically walks the namespace and resizes each queue's
// fabric from its per-queue service counters: served ops/sec, occupancy,
// and null-dequeue rate, between the configured low/high watermarks. One
// goroutine serves all queues — Resize migrations are synchronous and
// serialized per fabric, so a scaler fleet would only contend.
func (srv *Server) autoscaleLoop(interval time.Duration) {
	defer srv.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := make(map[uint32]scalerSample)
	lastPass := time.Now()
	for {
		select {
		case <-srv.done:
			return
		case <-tick.C:
		}
		// Rates divide by the measured gap between passes, not the nominal
		// interval: a delayed tick (scheduler stall, GC pause, a slow
		// migration in the previous pass) would otherwise inflate the
		// apparent rate and trigger spurious grows.
		now := time.Now()
		elapsed := now.Sub(lastPass)
		lastPass = now
		if elapsed <= 0 {
			continue
		}
		live := make(map[uint32]bool)
		for _, t := range srv.ns.tenants() {
			live[t.id] = true
			srv.autoscaleQueue(t, prev, elapsed)
		}
		for id := range prev { // forget deleted/expired queues
			if !live[id] {
				delete(prev, id)
			}
		}
	}
}

// autoscaleQueue makes one scaling decision for one queue. The served rate
// is (enqueue + dequeue acks)/interval — offered load that the service
// actually carried — and the null-dequeue rate is the fraction of dequeue
// attempts that found the queue empty, a direct signal that consumers have
// spare capacity.
//
//   - grow (double, clamped to max) when the served rate per shard exceeds
//     the high watermark, or the backlog exceeds the occupancy watermark;
//   - shrink (halve, clamped to min) when the served rate per shard is
//     under the low watermark, the backlog is small, and dequeues mostly
//     come up empty — capacity is provably idle, so retiring shards (and
//     migrating their residue) is safe and cheap.
func (srv *Server) autoscaleQueue(t *tenant, prev map[uint32]scalerSample, elapsed time.Duration) {
	cur := scalerSample{
		enq:   t.enqueues.Load(),
		deq:   t.dequeues.Load(),
		empty: t.emptyDeqs.Load(),
		polls: t.deqPolls.Load(),
	}
	last, seen := prev[t.id]
	cur.ticks = last.ticks + 1
	prev[t.id] = cur
	if !seen {
		return // first sight of this queue: no rate window yet
	}
	k := t.q.Shards()
	rate := float64(cur.enq-last.enq+cur.deq-last.deq) / elapsed.Seconds()
	backlog := t.q.Len()
	// Null-dequeue rate in per-request units: empty replies and polls both
	// count one per dequeue request frame (a 64-value batch is one poll),
	// so batch-heavy consumers do not dilute the idle signal.
	attempts := cur.polls - last.polls
	nullRate := 0.0
	if attempts > 0 {
		nullRate = float64(cur.empty-last.empty) / float64(attempts)
	}

	target := k
	switch {
	// A queue outside the configured envelope (started that way, or the
	// bounds are tighter than the factory's shape) is pulled inside it
	// unconditionally — the bounds are the operator's contract, not a
	// suggestion the load signals may veto.
	case k > srv.opts.maxShards:
		target = srv.opts.maxShards
	case k < srv.opts.minShards:
		target = srv.opts.minShards
	case k < srv.opts.maxShards &&
		(rate/float64(k) > srv.opts.highWatermark || backlog > autoscaleBacklogPerShard*k):
		target = min(2*k, srv.opts.maxShards)
	case k > srv.opts.minShards &&
		rate/float64(k) < srv.opts.lowWatermark &&
		backlog <= autoscaleBacklogPerShard &&
		(attempts == 0 || nullRate > 0.5):
		target = max(k/2, srv.opts.minShards)
	}
	// inputs snapshots the signals this decision was made on; every
	// autoscale trace event carries them so a dumped /tracez explains each
	// resize (and each sampled refusal) without replaying the counters.
	inputs := func() map[string]any {
		return map[string]any{
			"k": k, "rate": rate, "rate_per_shard": rate / float64(k),
			"backlog": backlog, "null_rate": nullRate,
			"low": srv.opts.lowWatermark, "high": srv.opts.highWatermark,
		}
	}
	if target == k {
		// The rejected branch, sampled: every holdSampleEvery-th tick per
		// queue records why the autoscaler did NOT resize, so a trace dump
		// distinguishes "stable by choice" from "blocked at a bound".
		if srv.trace != nil && cur.ticks%holdSampleEvery == 1 {
			ev := inputs()
			ev["reason"] = holdReason(srv, k, rate, backlog, attempts, nullRate)
			srv.trace.Add("autoscale_hold", t.name, ev)
		}
		return
	}
	// A tenant deleted between the walk and here has a closed fabric;
	// Resize refuses it and the queue is dropped from tracking next tick.
	if err := t.q.Resize(target); err != nil {
		return
	}
	typ := "autoscale_grow"
	if target > k {
		srv.stats.autoGrows.Add(1)
	} else {
		srv.stats.autoShrinks.Add(1)
		typ = "autoscale_shrink"
	}
	if srv.trace != nil {
		rs := t.q.ResizeStats()
		ev := inputs()
		ev["target"] = target
		ev["epoch"] = rs.Epoch
		ev["migrated"] = rs.Migrated
		srv.trace.Add(typ, t.name, ev)
	}
}

// holdReason names the branch that kept a queue at its current shard
// count — the input the operator needs when asking "why is this queue
// still at k shards".
func holdReason(srv *Server, k int, rate float64, backlog int, attempts int64, nullRate float64) string {
	perShard := rate / float64(k)
	wantGrow := perShard > srv.opts.highWatermark || backlog > autoscaleBacklogPerShard*k
	switch {
	case wantGrow && k >= srv.opts.maxShards:
		return "grow-blocked-at-max-shards"
	case perShard >= srv.opts.lowWatermark:
		return "rate-between-watermarks"
	case k <= srv.opts.minShards:
		return "shrink-blocked-at-min-shards"
	case backlog > autoscaleBacklogPerShard:
		return "shrink-blocked-by-backlog"
	case attempts > 0 && nullRate <= 0.5:
		return "shrink-blocked-by-null-rate"
	default:
		return "stable"
	}
}
