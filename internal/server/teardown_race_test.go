package server

// Conformance tests for the binding-stash seam: values pulled from a
// queue's fabric but not yet shipped (a batch reply hit the frame cap)
// are session-owned, and the two teardown paths that can interrupt them —
// the owner deleting the queue mid-dequeue, and the idle reaper closing
// the session — must keep them conserved: delivered at most once, never
// invented, and re-enqueued behind the backlog when the session dies with
// the queue still alive.

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// stashValue builds a ~1KB value tagged by i in its first byte, so a
// 4096-byte frame cap fits about four per batch reply and the remainder
// of a larger pull lands in the binding stash.
func stashValue(i int) []byte {
	return append([]byte{byte(i)}, bytes.Repeat([]byte{'v'}, 1000)...)
}

// TestDequeueBatchRacesQueueDelete drives batch dequeues against a named
// queue while another client deletes it. The fabric closes under the
// dequeuer mid-stream; the server must never panic or wedge, must never
// deliver a value twice (stash and fabric both feeding replies during the
// swap is the hazard), and must stay fully serviceable on other queues.
// Values still inside the fabric at delete time may drop — that loss is
// the deleting owner's documented choice — but stash-held values are
// already the session's and keep flowing.
func TestDequeueBatchRacesQueueDelete(t *testing.T) {
	const maxFrame = 4096
	srv, admin := startTestServer(t, WithMaxFrame(maxFrame))
	consumer, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()

	nq, err := consumer.Open("doomed")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := nq.Enqueue(stashValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Prime the stash: one oversized pull ships ~4 values and parks the
	// rest of what it pulled server-side.
	first, err := nq.DequeueBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("primer batch came back empty")
	}

	seen := make(map[byte]int, n)
	for _, v := range first {
		seen[v[0]]++
	}
	var wg sync.WaitGroup
	wg.Add(1)
	deleted := make(chan struct{})
	go func() {
		defer wg.Done()
		if err := admin.Delete("doomed"); err != nil {
			t.Errorf("delete: %v", err)
		}
		close(deleted)
	}()

	// Keep dequeuing through the delete. Termination: an empty reply after
	// the delete has landed means stash and fabric remainder are drained.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("dequeue loop did not terminate after delete")
		}
		vs, err := nq.DequeueBatch(8)
		if err != nil {
			// The deleted queue's id may start refusing outright; that is a
			// valid terminal answer too, but only once the delete happened.
			<-deleted
			break
		}
		for _, v := range vs {
			seen[v[0]]++
		}
		if len(vs) == 0 {
			select {
			case <-deleted:
			default:
				continue // queue still live, genuinely drained early: retry
			}
			break
		}
	}
	wg.Wait()

	// At-most-once, nothing invented: every tag seen is one of ours and
	// was delivered exactly once. (Exactly-n would overclaim: fabric-held
	// values at delete time are legitimately dropped.)
	for tag, count := range seen {
		if int(tag) >= n {
			t.Errorf("received value with unknown tag %d", tag)
		}
		if count != 1 {
			t.Errorf("tag %d delivered %d times", tag, count)
		}
	}
	if len(seen) < len(first) {
		t.Errorf("lost already-delivered values: seen %d < primer %d", len(seen), len(first))
	}

	// The name is free again and must map to a fresh, empty queue under a
	// new id — not the closed fabric.
	nq2, err := admin.Open("doomed")
	if err != nil {
		t.Fatalf("reopen after delete: %v", err)
	}
	if nq2.ID() == nq.ID() {
		t.Errorf("reopened queue reused id %d", nq.ID())
	}
	if l, err := nq2.Len(); err != nil || l != 0 {
		t.Errorf("reopened queue len = %d, %v; want 0, nil", l, err)
	}

	// The consumer's session still holds a binding (and possibly a stash
	// remnant) for the dead queue; closing it runs finishSession's
	// re-enqueue against the closed fabric, which must be a quiet no-op.
	consumer.Close()
	if err := admin.Enqueue([]byte("alive")); err != nil {
		t.Fatalf("server unserviceable after race: %v", err)
	}
	if v, ok, err := admin.Dequeue(); err != nil || !ok || string(v) != "alive" {
		t.Fatalf("default queue round trip after race: %q %v %v", v, ok, err)
	}
}

// TestIdleReapReEnqueuesStash parks values in a session's stash, lets the
// idle reaper tear the session down, and checks conservation end to end:
// the stashed values reappear in the fabric (behind the backlog, order
// traded for conservation) and a second consumer drains exactly the
// values the first one never received — the full set, no loss, no dup.
func TestIdleReapReEnqueuesStash(t *testing.T) {
	const maxFrame = 4096
	q, err := shard.New[[]byte](1, shard.WithMaxHandles(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, WithMaxFrame(maxFrame), WithIdleTimeout(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	victim, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	const n = 40
	for i := 0; i < n; i++ {
		if err := victim.Enqueue(stashValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	// One pull for everything: ~4 ship, the rest is stash. The fabric is
	// now empty — every undelivered value lives only in the session.
	got, err := victim.DequeueBatch(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= n {
		t.Fatalf("primer delivered %d of %d values; need a strict subset to exercise the stash", len(got), n)
	}
	stashed := n - len(got)

	// Go silent and wait for the reaper: the stash must land back in the
	// fabric, visible as the queue's length recovering to the stash size.
	deadline := time.Now().Add(5 * time.Second)
	for q.Len() != stashed {
		if time.Now().After(deadline) {
			t.Fatalf("fabric len %d, want %d re-enqueued after idle reap", q.Len(), stashed)
		}
		time.Sleep(10 * time.Millisecond)
	}

	heir, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer heir.Close()
	seen := make(map[byte]int, n)
	for _, v := range got {
		seen[v[0]]++
	}
	for drained := 0; drained < stashed; {
		vs, err := heir.DequeueBatch(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) == 0 {
			t.Fatalf("fabric dry after %d of %d re-enqueued values", drained, stashed)
		}
		for _, v := range vs {
			seen[v[0]]++
			drained++
		}
	}
	if len(seen) != n {
		t.Fatalf("conservation broken: %d distinct values across both consumers, want %d", len(seen), n)
	}
	for tag, count := range seen {
		if count != 1 {
			t.Errorf("tag %d delivered %d times across reap", tag, count)
		}
	}
}
