package server

import "sync"

// Network memory pool: size-classed recycled byte buffers for the server's
// frame hot path. Two kinds of storage cycle through it:
//
//   - ingress frame bodies: readFrameBuf decodes each request payload into
//     a pooled buffer, which the batch worker returns once its window is
//     processed (every reply byte has been copied into the egress scratch
//     and every enqueue payload copied out at admit time, so the body is
//     provably dead);
//   - value copies: enqueue payloads are copied out of their frame body
//     into pooled buffers before entering the fabric, and recycled when a
//     dequeue reply ships them (the reply encoder copies the bytes into
//     the egress scratch, so the value is dead the moment its reply frame
//     is buffered).
//
// The lifetime rule that makes recycling sound: a buffer is returned to
// the pool only by the goroutine that holds its sole reference, only after
// the last read of its bytes. Values that could not be delivered (a write
// error mid-window) go to the session stash instead — the stash owns its
// bytes until teardown re-enqueues them, at which point the fabric owns
// them again. Nothing is ever recycled from the stash path.
//
// Ownership contract: a value enqueued into a served fabric is transferred
// to the service — callers must not read or reuse the slice afterwards
// (the fabric already forbids reuse; serving additionally allows the
// server to recycle the storage once the value has been delivered).
//
// Buffers are grouped into power-of-four-ish size classes; Get returns a
// buffer from the smallest class that fits, so steady-state traffic of any
// frame size recycles without per-class tuning. Requests beyond the
// largest class fall back to plain allocation and are never pooled — a
// one-off giant frame must not pin megabytes in the pool.
var bufClasses = [...]int{64, 256, 1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20}

// byteBuf is the pooled wrapper. sync.Pool stores interface values, and
// boxing a slice header allocates where boxing a pointer does not — so the
// pools hold *byteBuf and the empty shells recirculate through shellPool.
type byteBuf struct{ b []byte }

var bufPools [len(bufClasses)]sync.Pool

// shellPool recycles empty byteBuf wrappers between putBuf (which needs
// one) and getBuf (which frees one), so steady-state Get/Put pairs
// allocate nothing.
var shellPool = sync.Pool{New: func() any { return new(byteBuf) }}

// classFor returns the smallest class index whose buffers hold n bytes, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	for c, size := range bufClasses {
		if n <= size {
			return c
		}
	}
	return -1
}

// classOf returns the largest class index whose size a buffer of this
// capacity satisfies, or -1 when the capacity is below the smallest class.
// A buffer filed under class c always has cap >= bufClasses[c], which is
// what lets getBuf hand it out for any request of at most that size.
func classOf(capacity int) int {
	class := -1
	for c, size := range bufClasses {
		if capacity < size {
			break
		}
		class = c
	}
	return class
}

// getBuf returns a buffer of length n, recycled when a pooled one of the
// right class is available. The contents are unspecified — callers
// overwrite the full length.
func getBuf(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, n)
	}
	w, _ := bufPools[c].Get().(*byteBuf)
	if w == nil {
		return make([]byte, n, bufClasses[c])
	}
	b := w.b
	w.b = nil
	shellPool.Put(w)
	if cap(b) < n { // defensive; classOf filing makes this unreachable
		return make([]byte, n, bufClasses[c])
	}
	return b[:n]
}

// putBuf recycles a buffer for a later getBuf. Buffers below the smallest
// class (or nil) are dropped; oversized buffers are filed under the
// largest class they cover. The caller must hold the only reference.
func putBuf(b []byte) {
	c := classOf(cap(b))
	if c < 0 {
		return
	}
	w := shellPool.Get().(*byteBuf)
	w.b = b[:0]
	bufPools[c].Put(w)
}

// copyBuf copies v into a pooled buffer: the admit-time copy that makes an
// enqueue payload independent of its (recyclable) frame body.
func copyBuf(v []byte) []byte {
	b := getBuf(len(v))
	copy(b, v)
	return b
}
