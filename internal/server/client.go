package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client-visible errors.
var (
	// ErrBusy reports that the server's in-flight window was full and the
	// request was rejected; retry after draining some pending replies.
	ErrBusy = errors.New("server: busy, in-flight window full")
	// ErrClosedQueue reports an enqueue against a closed fabric.
	ErrClosedQueue = errors.New("server: queue is closed")
	// ErrClientClosed reports use of a Client after Close (or after its
	// connection failed).
	ErrClientClosed = errors.New("server: client closed")
)

// call is one in-flight request. The reply is delivered on done (for
// synchronous calls a dedicated buffered channel; pipelined callers may
// share one completion channel sized so the reader never blocks). tag is
// opaque caller context carried through the pipeline (e.g. the load
// generator's per-op schedule metadata).
type call struct {
	f    frame
	err  error
	done chan *call
	tag  any

	// recvNs is the read loop's receive stamp, taken only for traced
	// replies (the flag on the status byte marks them); it closes the span
	// on the client's clock. 0 for plain replies.
	recvNs int64

	// own is the call's private completion channel, created once and kept
	// across pool cycles for synchronous round trips (pipelined callers
	// pass their own shared channel instead).
	own chan *call
}

// callPool recycles call structs between putCall and getCall, so
// steady-state traffic allocates no per-request bookkeeping.
var callPool = sync.Pool{New: func() any { return new(call) }}

// getCall returns a reset call completing on done (or on its private
// channel when done is nil).
func getCall(done chan *call, tag any) *call {
	cl := callPool.Get().(*call)
	cl.f = frame{}
	cl.err = nil
	cl.tag = tag
	cl.recvNs = 0
	if done == nil {
		if cl.own == nil {
			cl.own = make(chan *call, 1)
		}
		done = cl.own
	}
	cl.done = done
	return cl
}

// putCall recycles a completed call. Callers must have copied everything
// they need out of it — the reply frame, the error, the tag — and must be
// the sole holder (a call is completed exactly once, so the receiver of
// that completion is).
func putCall(cl *call) {
	cl.f = frame{}
	cl.err = nil
	cl.done = nil
	cl.tag = nil
	callPool.Put(cl)
}

// Client speaks the wire protocol over one TCP connection. All methods are
// safe for concurrent use; requests issued concurrently are pipelined on
// the single connection and matched to replies by id. A Client holds one
// server-side session — and so one fabric handle lease — for its lifetime.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes writers on bw
	bw  *bufio.Writer
	enc []byte // reusable frame-encode scratch, guarded by wmu

	mu      sync.Mutex // guards pending, nextID, err
	pending map[uint64]*call
	nextID  uint64
	err     error // terminal error, set once the read loop exits

	readerDone chan struct{}
	maxFrame   int
}

// Dial connects to a queue server at addr with the default frame-size cap
// (DefaultMaxFrame, matching a default-configured server).
func Dial(addr string) (*Client, error) {
	return DialMaxFrame(addr, DefaultMaxFrame)
}

// DialMaxFrame is Dial with an explicit frame-size cap. Match it to the
// server's -max-frame: a client cap below the server's silently truncates
// nothing but kills the connection on the first oversized reply — after
// the value has already left the queue.
func DialMaxFrame(addr string, maxFrame int) (*Client, error) {
	if maxFrame < frameHeader {
		return nil, fmt.Errorf("server: max frame %d below header size", maxFrame)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		bw:         bufio.NewWriter(conn),
		pending:    make(map[uint64]*call),
		readerDone: make(chan struct{}),
		maxFrame:   maxFrame,
	}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; the server releases the session's
// handle lease. In-flight calls fail with ErrClientClosed.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// readLoop matches reply frames to pending calls. A frame with id 0 is a
// connection-level failure (e.g. the handle registry was exhausted at
// accept); it poisons the whole client.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	br := bufio.NewReader(c.conn)
	for {
		f, err := readFrame(br, c.maxFrame)
		if err == nil && f.id == 0 {
			err = fmt.Errorf("server refused session: %s", f.payload)
		}
		if err != nil {
			c.fail(err)
			return
		}
		var recvNs int64
		if f.kind&OpTraceFlag != 0 {
			// Traced replies carry a span block; stamp receive time here —
			// before pipeline dispatch — so the client-side close of the
			// span excludes the waiter's scheduling delay.
			recvNs = time.Now().UnixNano()
		}
		c.mu.Lock()
		call := c.pending[f.id]
		delete(c.pending, f.id)
		c.mu.Unlock()
		if call != nil {
			call.f = f
			call.recvNs = recvNs
			call.done <- call
		}
	}
}

// fail marks the client dead and completes every pending call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if errors.Is(err, net.ErrClosed) {
			err = ErrClientClosed
		}
		c.err = err
	}
	stranded := c.pending
	c.pending = make(map[uint64]*call)
	err = c.err
	c.mu.Unlock()
	for _, call := range stranded {
		call.err = err
		call.done <- call
	}
}

// start registers a new call and writes its request frame (without
// flushing — see flush).
func (c *Client) start(op byte, payload []byte, done chan *call, tag any) (*call, error) {
	return c.startParts(op, done, tag, payload)
}

// register enters cl into the pending table under a fresh id.
func (c *Client) register(cl *call) (uint64, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	c.nextID++ // ids start at 1; id 0 is reserved for connection errors
	id := c.nextID
	c.pending[id] = cl
	c.mu.Unlock()
	return id, nil
}

// unregister removes a call whose request frame never made it onto the
// wire. The call itself is not recycled: a concurrent fail may already
// hold a reference from its pending-table snapshot.
func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// trimEnc bounds the retained encode scratch (wmu held). Mirrors the
// server's frameWriter retention policy.
func (c *Client) trimEnc() {
	if cap(c.enc) > fwRetain {
		c.enc = nil
	}
}

// startParts is start with the request payload in pieces: the parts are
// concatenated into the client's reusable encode scratch, so pipelined
// senders pay no per-frame encode allocation — a trace stamp or queue-id
// prefix can live in a caller's stack array.
func (c *Client) startParts(op byte, done chan *call, tag any, parts ...[]byte) (*call, error) {
	cl := getCall(done, tag)
	id, err := c.register(cl)
	if err != nil {
		putCall(cl)
		return nil, err
	}
	c.wmu.Lock()
	c.enc = appendFrame(c.enc[:0], id, op, parts...)
	_, werr := c.bw.Write(c.enc)
	c.trimEnc()
	c.wmu.Unlock()
	if werr != nil {
		c.unregister(id)
		return nil, werr
	}
	return cl, nil
}

// startBatch is startParts for batch-encoded requests: prefix (trace
// stamp and/or queue id, possibly empty) then the batch encoding of vals,
// all built in the encode scratch — the callers' equivalent of the
// server's batchFrame, avoiding encodeBatch's intermediate allocation.
func (c *Client) startBatch(op byte, prefix []byte, vals [][]byte, done chan *call, tag any) (*call, error) {
	cl := getCall(done, tag)
	id, err := c.register(cl)
	if err != nil {
		putCall(cl)
		return nil, err
	}
	n := frameHeader + len(prefix) + encodedBatchSize(vals)
	c.wmu.Lock()
	buf := c.enc[:0]
	var hdr [4 + frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = op
	buf = append(buf, hdr[:]...)
	buf = append(buf, prefix...)
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], uint32(len(vals)))
	buf = append(buf, word[:]...)
	for _, v := range vals {
		binary.BigEndian.PutUint32(word[:], uint32(len(v)))
		buf = append(buf, word[:]...)
		buf = append(buf, v...)
	}
	c.enc = buf
	_, werr := c.bw.Write(buf)
	c.trimEnc()
	c.wmu.Unlock()
	if werr != nil {
		c.unregister(id)
		return nil, werr
	}
	return cl, nil
}

// flush pushes buffered request frames onto the wire. Pipelined callers
// write several requests and flush once, mirroring the server's batched
// replies.
func (c *Client) flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.bw.Flush()
}

// roundTrip issues one request synchronously.
func (c *Client) roundTrip(op byte, payload []byte) (frame, error) {
	return c.roundTripParts(op, payload)
}

// roundTripParts issues one request synchronously from payload parts. The
// completed call is recycled: its frame (whose payload the caller may
// keep — reply payloads are never pooled on the client) is copied out
// first.
func (c *Client) roundTripParts(op byte, parts ...[]byte) (frame, error) {
	cl, err := c.startParts(op, nil, nil, parts...)
	if err != nil {
		return frame{}, err
	}
	if err := c.flush(); err != nil {
		return frame{}, err // call still pending; completed later by reply or fail
	}
	<-cl.done
	f, cerr := cl.f, cl.err
	putCall(cl)
	if cerr != nil {
		return frame{}, cerr
	}
	return f, nil
}

// roundTripBatch issues one batch-encoded request synchronously (see
// startBatch).
func (c *Client) roundTripBatch(op byte, prefix []byte, vals [][]byte) (frame, error) {
	cl, err := c.startBatch(op, prefix, vals, nil, nil)
	if err != nil {
		return frame{}, err
	}
	if err := c.flush(); err != nil {
		return frame{}, err
	}
	<-cl.done
	f, cerr := cl.f, cl.err
	putCall(cl)
	if cerr != nil {
		return frame{}, cerr
	}
	return f, nil
}

// statusErr maps non-OK reply statuses shared by all ops to errors.
func statusErr(f frame) error {
	switch f.kind {
	case StatusBusy:
		return ErrBusy
	case StatusClosed:
		return ErrClosedQueue
	case StatusErr:
		return fmt.Errorf("server: %s", f.payload)
	default:
		return fmt.Errorf("server: unexpected reply status 0x%02x", f.kind)
	}
}

// Enqueue appends v to the remote default queue (routed to the session's
// home shard, so one client's enqueues stay FIFO-ordered). Values that
// cannot fit a reply frame — including the batch reply's 8-byte overhead,
// so any enqueued value remains deliverable to batch dequeuers — are
// rejected locally: sending one would only get a server-side rejection
// anyway.
func (c *Client) Enqueue(v []byte) error { return c.enqueue(0, v) }

// errValueTooLarge rejects an enqueue value locally before it is sent:
// the server would only reject it anyway (see enqueueFits).
func errValueTooLarge(n, maxFrame int) error {
	return fmt.Errorf("%w: %d-byte value exceeds the %d-byte frame cap (less batch reply headroom)",
		ErrFrameTooLarge, n, maxFrame)
}

func (c *Client) enqueue(qid uint32, v []byte) error {
	if len(v)+frameHeader+batchReplyOverhead > c.maxFrame {
		return errValueTooLarge(len(v), c.maxFrame)
	}
	var f frame
	var err error
	if qid != 0 {
		var q [queueIDLen]byte
		binary.BigEndian.PutUint32(q[:], qid)
		f, err = c.roundTripParts(OpEnqueueQ, q[:], v)
	} else {
		f, err = c.roundTripParts(OpEnqueue, v)
	}
	if err != nil {
		return err
	}
	if f.kind != StatusOK {
		return statusErr(f)
	}
	return nil
}

// EnqueueBatch appends all of vs to the remote fabric as one wire frame
// and one multi-op fabric batch: the frame's values are installed in a
// single leaf block of the session's home shard, so they stay contiguous
// in FIFO order and the tree walk is paid once for the whole batch.
// Enqueueing is all-or-nothing (ErrClosedQueue rejects the entire batch).
// The encoded batch must fit the frame cap; oversized batches are rejected
// locally — split them instead of raising the cap blindly, the server
// enforces its own limit.
func (c *Client) EnqueueBatch(vs [][]byte) error { return c.enqueueBatch(0, vs) }

func (c *Client) enqueueBatch(qid uint32, vs [][]byte) error {
	if len(vs) == 0 {
		return nil
	}
	prefix := 0
	if qid != 0 {
		prefix = queueIDLen // qualified frames spend 4 payload bytes on the queue id
	}
	if encodedBatchSize(vs)+frameHeader+prefix > c.maxFrame {
		return fmt.Errorf("%w: %d-byte batch exceeds the %d-byte frame cap",
			ErrFrameTooLarge, encodedBatchSize(vs), c.maxFrame)
	}
	var f frame
	var err error
	if qid != 0 {
		var q [queueIDLen]byte
		binary.BigEndian.PutUint32(q[:], qid)
		f, err = c.roundTripBatch(OpEnqueueBatchQ, q[:], vs)
	} else {
		f, err = c.roundTripBatch(OpEnqueueBatch, nil, vs)
	}
	if err != nil {
		return err
	}
	if f.kind != StatusOK {
		return statusErr(f)
	}
	return nil
}

// DequeueBatch removes up to n elements from the remote fabric with one
// wire round trip. An empty (nil) result with a nil error means the fabric
// certified empty. The server may return fewer than n values even when
// more exist, if shipping them would exceed the frame cap; it holds the
// overflow for this session's next dequeue, so simply call again.
func (c *Client) DequeueBatch(n int) ([][]byte, error) { return c.dequeueBatch(0, n) }

func (c *Client) dequeueBatch(qid uint32, n int) ([][]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	var req [queueIDLen + 4]byte
	binary.BigEndian.PutUint32(req[queueIDLen:], uint32(min(n, MaxBatchOps)))
	var f frame
	var err error
	if qid != 0 {
		binary.BigEndian.PutUint32(req[:queueIDLen], qid)
		f, err = c.roundTripParts(OpDequeueBatchQ, req[:])
	} else {
		f, err = c.roundTripParts(OpDequeueBatch, req[queueIDLen:])
	}
	if err != nil {
		return nil, err
	}
	switch f.kind {
	case StatusOK:
		return decodeBatch(f.payload)
	case StatusEmpty:
		return nil, nil
	default:
		return nil, statusErr(f)
	}
}

// Dequeue removes an element from the remote default queue. ok is false
// when the fabric certified empty at the server.
func (c *Client) Dequeue() ([]byte, bool, error) { return c.dequeue(0) }

func (c *Client) dequeue(qid uint32) ([]byte, bool, error) {
	var f frame
	var err error
	if qid != 0 {
		var q [queueIDLen]byte
		binary.BigEndian.PutUint32(q[:], qid)
		f, err = c.roundTripParts(OpDequeueQ, q[:])
	} else {
		f, err = c.roundTripParts(OpDequeue)
	}
	if err != nil {
		return nil, false, err
	}
	switch f.kind {
	case StatusOK:
		return f.payload, true, nil
	case StatusEmpty:
		return nil, false, nil
	default:
		return nil, false, statusErr(f)
	}
}

// Len returns the default queue's backlog estimate.
func (c *Client) Len() (int, error) { return c.length(0) }

func (c *Client) length(qid uint32) (int, error) {
	var f frame
	var err error
	if qid != 0 {
		var q [queueIDLen]byte
		binary.BigEndian.PutUint32(q[:], qid)
		f, err = c.roundTripParts(OpLenQ, q[:])
	} else {
		f, err = c.roundTripParts(OpLen)
	}
	if err != nil {
		return 0, err
	}
	if f.kind != StatusOK {
		return 0, statusErr(f)
	}
	if len(f.payload) != 8 {
		return 0, fmt.Errorf("%w: len payload %d bytes", ErrBadFrame, len(f.payload))
	}
	return int(binary.BigEndian.Uint64(f.payload)), nil
}

// Resize asks the server to resize the default queue's fabric to k shards
// and returns the shard count actually applied (the request is clamped to
// the server's shard bounds). The resize is live — pipelined operations
// keep flowing while the topology swaps — and conservation-preserving:
// retired shards' residual elements are migrated into the survivors.
func (c *Client) Resize(k int) (int, error) { return c.resize(0, k) }

func (c *Client) resize(qid uint32, k int) (int, error) {
	if k < 1 || k > 1<<31-1 {
		return 0, fmt.Errorf("server: shard count %d out of range", k)
	}
	var req [queueIDLen + 4]byte
	binary.BigEndian.PutUint32(req[queueIDLen:], uint32(k))
	var f frame
	var err error
	if qid != 0 {
		binary.BigEndian.PutUint32(req[:queueIDLen], qid)
		f, err = c.roundTripParts(OpResizeQ, req[:])
	} else {
		f, err = c.roundTripParts(OpResize, req[queueIDLen:])
	}
	if err != nil {
		return 0, err
	}
	if f.kind != StatusOK {
		return 0, statusErr(f)
	}
	if len(f.payload) != 4 {
		return 0, fmt.Errorf("%w: resize reply payload %d bytes, want 4", ErrBadFrame, len(f.payload))
	}
	return int(binary.BigEndian.Uint32(f.payload)), nil
}

// Stats returns the server's Snapshot as raw JSON (the same document the
// /statsz endpoint serves).
func (c *Client) Stats() ([]byte, error) {
	f, err := c.roundTrip(OpStats, nil)
	if err != nil {
		return nil, err
	}
	if f.kind != StatusOK {
		return nil, statusErr(f)
	}
	return f.payload, nil
}

// Open binds this client to the named queue, creating the queue on first
// use (each named queue is its own server-side sharded fabric, so its
// FIFO and conservation guarantees are exactly the single-queue ones).
// The returned NamedQueue shares this client's connection and session;
// its operations ride the same pipeline as the client's default-queue
// operations. Opening the reserved name "default" binds queue 0.
func (c *Client) Open(name string) (*NamedQueue, error) {
	if len(name) == 0 || len(name) > MaxQueueName {
		return nil, fmt.Errorf("server: queue name must be 1..%d bytes (got %d)", MaxQueueName, len(name))
	}
	f, err := c.roundTrip(OpOpen, []byte(name))
	if err != nil {
		return nil, err
	}
	if f.kind != StatusOK {
		return nil, statusErr(f)
	}
	if len(f.payload) != queueIDLen {
		return nil, fmt.Errorf("%w: open reply payload %d bytes, want %d", ErrBadFrame, len(f.payload), queueIDLen)
	}
	return &NamedQueue{c: c, id: binary.BigEndian.Uint32(f.payload), name: name}, nil
}

// Delete removes the named queue from the server: the name disappears at
// once (a subsequent Open creates a fresh queue), its fabric is closed,
// and values still inside are dropped — deletion is explicit data loss,
// exactly like closing a local fabric that still holds elements. The
// default queue cannot be deleted.
func (c *Client) Delete(name string) error {
	f, err := c.roundTrip(OpDelete, []byte(name))
	if err != nil {
		return err
	}
	if f.kind != StatusOK {
		return statusErr(f)
	}
	return nil
}

// NamedQueue is a client-side binding to one named queue, obtained with
// Client.Open. It shares the parent client's connection: methods are safe
// for concurrent use and pipeline with other requests on the same
// session. All enqueues through one NamedQueue stay FIFO-ordered among
// themselves (one session leases one handle per queue, and a handle's
// enqueues all route to its home shard).
type NamedQueue struct {
	c    *Client
	id   uint32
	name string
}

// ID returns the server-assigned queue id. Ids are never reused within a
// server's lifetime: after a Delete, a stale id fails with an "unknown
// queue" error instead of touching a new tenant's data.
func (q *NamedQueue) ID() uint32 { return q.id }

// Name returns the queue's name.
func (q *NamedQueue) Name() string { return q.name }

// Enqueue appends v to the named queue.
func (q *NamedQueue) Enqueue(v []byte) error { return q.c.enqueue(q.id, v) }

// EnqueueBatch appends all of vs to the named queue as one wire frame and
// one multi-op fabric batch (all-or-nothing, like Client.EnqueueBatch).
func (q *NamedQueue) EnqueueBatch(vs [][]byte) error { return q.c.enqueueBatch(q.id, vs) }

// Dequeue removes an element from the named queue. ok is false when its
// fabric certified empty at the server.
func (q *NamedQueue) Dequeue() ([]byte, bool, error) { return q.c.dequeue(q.id) }

// DequeueBatch removes up to n elements from the named queue with one
// wire round trip, with the same frame-cap overflow contract as
// Client.DequeueBatch.
func (q *NamedQueue) DequeueBatch(n int) ([][]byte, error) { return q.c.dequeueBatch(q.id, n) }

// Len returns the named queue's backlog estimate.
func (q *NamedQueue) Len() (int, error) { return q.c.length(q.id) }

// Resize asks the server to resize this queue's fabric to k shards and
// returns the applied count (see Client.Resize for semantics).
func (q *NamedQueue) Resize(k int) (int, error) { return q.c.resize(q.id, k) }

// Delete removes this queue from the server (see Client.Delete).
func (q *NamedQueue) Delete() error { return q.c.Delete(q.name) }
