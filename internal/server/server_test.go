package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/shard"
)

// newTestServer starts a server over a fresh fabric and tears both down
// with the test.
func newTestServer(t *testing.T, shards int, qopts []shard.Option, sopts ...Option) (*Server, *shard.Queue[[]byte]) {
	t.Helper()
	q, err := shard.New[[]byte](shards, qopts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q, sopts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, q
}

func newTestClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBasicRoundTrips(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)

	if _, ok, err := c.Dequeue(); err != nil || ok {
		t.Fatalf("Dequeue on empty = (ok=%v, err=%v)", ok, err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatalf("Enqueue %d: %v", i, err)
		}
	}
	if n, err := c.Len(); err != nil || n != 100 {
		t.Fatalf("Len = (%d, %v), want 100", n, err)
	}
	// One client leases one handle with one home shard, so its own
	// enqueues come back FIFO even on a multi-shard fabric.
	for i := 0; i < 100; i++ {
		v, ok, err := c.Dequeue()
		if err != nil || !ok || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("Dequeue %d = (%v, %v, %v)", i, v, ok, err)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(stats, &snap); err != nil {
		t.Fatalf("Stats JSON: %v\n%s", err, stats)
	}
	if snap.Server.SessionsOpen != 1 || snap.Server.Enqueues != 100 || snap.Server.Dequeues != 100 {
		t.Errorf("stats = %+v", snap.Server)
	}
	if snap.Fabric.Registry.Acquires != 1 || snap.Fabric.Registry.InUse != 1 {
		t.Errorf("fabric registry = %+v", snap.Fabric.Registry)
	}
}

func TestEmptyValueRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil)
	c := newTestClient(t, srv)
	if err := c.Enqueue(nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Dequeue()
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value round trip = (%v, %v, %v)", v, ok, err)
	}
}

func TestClosedQueue(t *testing.T) {
	srv, q := newTestServer(t, 1, nil)
	c := newTestClient(t, srv)
	if err := c.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := c.Enqueue([]byte("y")); !errors.Is(err, ErrClosedQueue) {
		t.Fatalf("Enqueue after Close = %v, want ErrClosedQueue", err)
	}
	// Dequeue keeps draining the backlog after Close.
	if v, ok, err := c.Dequeue(); err != nil || !ok || string(v) != "x" {
		t.Fatalf("Dequeue after Close = (%q, %v, %v)", v, ok, err)
	}
}

func TestSessionDeniedWhenRegistryExhausted(t *testing.T) {
	srv, _ := newTestServer(t, 1, []shard.Option{shard.WithMaxHandles(1)})
	c1 := newTestClient(t, srv)
	if err := c1.Enqueue([]byte("x")); err != nil { // forces c1's lease to exist
		t.Fatal(err)
	}
	c2, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err) // TCP accept succeeds; denial arrives as a frame
	}
	defer c2.Close()
	if err := c2.Enqueue([]byte("y")); err == nil ||
		!strings.Contains(err.Error(), "refused") {
		t.Fatalf("second session error = %v, want refused-session", err)
	}
	if denied := srv.Snapshot().Server.SessionsDenied; denied != 1 {
		t.Errorf("SessionsDenied = %d, want 1", denied)
	}
}

func TestIdleSessionReaped(t *testing.T) {
	srv, q := newTestServer(t, 1, nil, WithIdleTimeout(50*time.Millisecond))
	c := newTestClient(t, srv)
	if err := c.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := q.RegistryStats().InUse; got != 1 {
		t.Fatalf("InUse before reap = %d", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for q.RegistryStats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reaped := srv.Snapshot().Server.SessionsReaped; reaped != 1 {
		t.Errorf("SessionsReaped = %d, want 1", reaped)
	}
	if err := c.Enqueue([]byte("y")); err == nil {
		t.Error("enqueue on reaped session succeeded")
	}
}

// TestBusyBackpressure drives the window mechanism directly over a raw
// connection: the fabric is prefilled with large values, the "client"
// pipelines many dequeues without reading a single reply, so the batch
// worker blocks writing values into full socket buffers, the window fills,
// and the read loop must answer the overflow with BUSY.
func TestBusyBackpressure(t *testing.T) {
	const (
		values    = 300
		valueSize = 32 << 10
	)
	srv, q := newTestServer(t, 1, nil, WithWindow(2))
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, valueSize)
	for i := 0; i < values; i++ {
		if err := h.Enqueue(big); err != nil {
			t.Fatal(err)
		}
	}
	h.Release()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	for i := 0; i < values; i++ {
		if err := writeFrame(bw, uint64(i+1), OpDequeue, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Let the worker run into the full socket buffers before draining.
	time.Sleep(100 * time.Millisecond)

	br := bufio.NewReader(conn)
	ok, busy := 0, 0
	for i := 0; i < values; i++ {
		f, err := readFrame(br, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		switch f.kind {
		case StatusOK:
			if len(f.payload) != valueSize {
				t.Fatalf("reply %d: %d-byte value", i, len(f.payload))
			}
			ok++
		case StatusBusy:
			busy++
		default:
			t.Fatalf("reply %d: status 0x%02x", i, f.kind)
		}
	}
	if busy == 0 {
		t.Error("window overflow produced no BUSY replies")
	}
	if ok+busy != values {
		t.Errorf("ok=%d busy=%d, want sum %d", ok, busy, values)
	}
	// BUSY rejections must not have touched the fabric: exactly the OK'd
	// dequeues are gone.
	if got := q.Len(); got != values-ok {
		t.Errorf("fabric len = %d, want %d", got, values-ok)
	}
	if snap := srv.Snapshot(); snap.Server.Busy != int64(busy) {
		t.Errorf("stats busy = %d, replies said %d", snap.Server.Busy, busy)
	}
}

// TestBatching verifies pipelined requests are answered in fewer flushes
// than ops: the ops-per-batch stat must exceed 1 when a burst is written
// in one flush.
func TestBatching(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithWindow(64))
	c := newTestClient(t, srv)
	const burst = 32
	done := make(chan *call, burst)
	for i := 0; i < burst; i++ {
		if _, err := c.start(OpEnqueue, []byte{byte(i)}, done, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < burst; i++ {
		cl := <-done
		if cl.err != nil || cl.f.kind != StatusOK {
			t.Fatalf("burst reply %d: err=%v kind=0x%02x", i, cl.err, cl.f.kind)
		}
	}
	st := srv.Snapshot().Server
	if st.Batches >= burst {
		t.Errorf("batches = %d for %d pipelined ops: no coalescing", st.Batches, burst)
	}
	if st.OpsPerBatch <= 1 {
		t.Errorf("OpsPerBatch = %.2f, want > 1", st.OpsPerBatch)
	}
}

func TestStatszHandler(t *testing.T) {
	srv, _ := newTestServer(t, 2, nil)
	c := newTestClient(t, srv)
	if err := c.Enqueue([]byte("x")); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.StatszHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("statsz JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if snap.Server.Enqueues != 1 || snap.Fabric.Shards != 2 || snap.Fabric.Len != 1 {
		t.Errorf("statsz snapshot = %+v", snap)
	}
}

func TestWireFrameValidation(t *testing.T) {
	// Length below the id+kind header.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(3))
	buf.Write([]byte{1, 2, 3})
	if _, err := readFrame(bufio.NewReader(&buf), DefaultMaxFrame); !errors.Is(err, ErrBadFrame) {
		t.Errorf("short frame error = %v, want ErrBadFrame", err)
	}
	// Length above the cap.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(1<<30))
	buf.Write(make([]byte, 64))
	if _, err := readFrame(bufio.NewReader(&buf), DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame error = %v, want ErrFrameTooLarge", err)
	}
	// Round trip, payload and no payload.
	buf.Reset()
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, 42, OpEnqueue, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(w, 43, OpDequeue, nil); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	f, err := readFrame(r, DefaultMaxFrame)
	if err != nil || f.id != 42 || f.kind != OpEnqueue || string(f.payload) != "hello" {
		t.Errorf("frame 1 = (%+v, %v)", f, err)
	}
	f, err = readFrame(r, DefaultMaxFrame)
	if err != nil || f.id != 43 || f.kind != OpDequeue || f.payload != nil {
		t.Errorf("frame 2 = (%+v, %v)", f, err)
	}
}

func TestUnknownOpcode(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, 7, 0x7F, nil); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	f, err := readFrame(bufio.NewReader(conn), DefaultMaxFrame)
	if err != nil || f.id != 7 || f.kind != StatusErr {
		t.Fatalf("unknown opcode reply = (%+v, %v), want StatusErr", f, err)
	}
}

func TestServerCloseReleasesLeases(t *testing.T) {
	q, err := shard.New[[]byte](1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve("127.0.0.1:0", q)
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for i := 0; i < 5; i++ {
		c, err := Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
		if err := c.Enqueue([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := q.RegistryStats().InUse; got != 0 {
		t.Errorf("InUse after server close = %d, want 0", got)
	}
	st := q.RegistryStats()
	if st.Acquires != 5 || st.Releases != 5 {
		t.Errorf("lease churn after close = %+v", st)
	}
	for _, c := range clients {
		c.Close()
	}
}

func TestClientFrameCap(t *testing.T) {
	srv, _ := newTestServer(t, 1, nil, WithMaxFrame(1<<16))
	c, err := DialMaxFrame(srv.Addr().String(), 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// An oversized value is rejected locally, before it can kill the
	// connection server-side...
	if err := c.Enqueue(make([]byte, 1<<16)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized Enqueue = %v, want ErrFrameTooLarge", err)
	}
	// ...and the connection is still healthy afterwards.
	if err := c.Enqueue(make([]byte, 1024)); err != nil {
		t.Fatalf("Enqueue after rejected oversize: %v", err)
	}
	if _, err := DialMaxFrame(srv.Addr().String(), 3); err == nil {
		t.Error("sub-header frame cap accepted")
	}
}
