package server

// Regression tests for the pooled network memory system (pool.go): a
// recycled ingress buffer must never leak one frame's payload bytes into
// a value delivered for another. The enqueue path's correctness contract
// is copy-at-admit — decodeBatchPooled values alias the pooled read
// buffer, so the executor must copy each value out before the buffer is
// recycled. If that copy ever regresses to aliasing, the bytes sitting
// in the fabric get overwritten by whatever next frame lands in the same
// size-classed buffer, and the corruption surfaces here.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/shard"
)

// patternValue builds a size-byte value whose content is a deterministic
// function of (round, idx), so any cross-frame byte leak changes it.
func patternValue(round, idx, size int) []byte {
	v := make([]byte, size)
	for i := range v {
		v[i] = byte(round*31 + idx*7 + i)
	}
	return v
}

// TestPooledIngressNoCrossContamination interleaves enqueue frames that
// land in the same pool size class — each later frame reusing the buffer
// the earlier one released — then dequeues everything and verifies each
// value byte-for-byte. Sizes span the pool's size classes (small, mid,
// and a class large enough that a batch frame spills past 64 KiB), and
// both the single-op and batch decode paths are exercised; the batch
// path is the one with aliasing history (payload[:n:n] subslicing).
// Run under -race this also catches a recycled buffer still referenced
// by an in-flight delivery.
func TestPooledIngressNoCrossContamination(t *testing.T) {
	const m, rounds = 8, 12
	for _, size := range []int{16, 200, 3000, 9000} {
		for _, batch := range []bool{false, true} {
			name := fmt.Sprintf("size%d_batch%v", size, batch)
			t.Run(name, func(t *testing.T) {
				q, err := shard.New[[]byte](2)
				if err != nil {
					t.Fatal(err)
				}
				srv, err := Serve("127.0.0.1:0", q, WithNetPooling(true))
				if err != nil {
					t.Fatal(err)
				}
				defer srv.Close()
				c, err := Dial(srv.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				for round := 0; round < rounds; round++ {
					// First frame: the values under test.
					want := make([][]byte, m)
					for i := range want {
						want[i] = patternValue(round, i, size)
					}
					// Second frame: same shape, so it lands in the same
					// size class and — with the values of the first frame
					// still queued — reuses its recycled buffer. Its fill
					// is the complement pattern, so a leak is unambiguous.
					poison := make([][]byte, m)
					for i := range poison {
						p := patternValue(round, i, size)
						for j := range p {
							p[j] = ^p[j]
						}
						poison[i] = p
					}
					if batch {
						if err := c.EnqueueBatch(want); err != nil {
							t.Fatal(err)
						}
						if err := c.EnqueueBatch(poison); err != nil {
							t.Fatal(err)
						}
					} else {
						for _, v := range want {
							if err := c.Enqueue(v); err != nil {
								t.Fatal(err)
							}
						}
						for _, v := range poison {
							if err := c.Enqueue(v); err != nil {
								t.Fatal(err)
							}
						}
					}
					var got [][]byte
					for len(got) < 2*m {
						more, err := c.DequeueBatch(2*m - len(got))
						if err != nil {
							t.Fatal(err)
						}
						if len(more) == 0 {
							t.Fatalf("queue ran dry at %d of %d values", len(got), 2*m)
						}
						got = append(got, more...)
					}
					for i, g := range got {
						exp := want
						j := i
						if i >= m {
							exp, j = poison, i-m
						}
						if !bytes.Equal(g, exp[j]) {
							t.Fatalf("round %d value %d: delivered bytes diverge from enqueued (len %d vs %d): recycled ingress buffer leaked into a queued value", round, i, len(g), len(exp[j]))
						}
					}
				}
				if n, err := c.Len(); err != nil || n != 0 {
					t.Fatalf("queue not drained: len=%d err=%v", n, err)
				}
			})
		}
	}
}

// TestPooledStashOwnsBytes pins the other buffer-lifetime edge: values
// parked in a session's dequeue stash (delivered past the frame cap, or
// returned by a torn-down session) must own their bytes, not alias a
// reply or ingress buffer that has since been recycled. A tiny max-frame
// server forces every multi-value delivery through the stash; hammering
// it with fresh poison frames in between must not corrupt stashed values.
func TestPooledStashOwnsBytes(t *testing.T) {
	q, err := shard.New[[]byte](1)
	if err != nil {
		t.Fatal(err)
	}
	// Frames cap at 256 bytes: a DequeueBatch of 100-byte values can ship
	// at most two per reply, so the rest of each fabric pull is stashed.
	srv, err := Serve("127.0.0.1:0", q, WithNetPooling(true), WithMaxFrame(256))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialMaxFrame(srv.Addr().String(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n, size = 24, 100
	want := make([][]byte, n)
	for i := range want {
		want[i] = patternValue(1, i, size)
		if err := c.Enqueue(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := make([][]byte, 0, n)
	poisons := 0
	for len(got) < n {
		vals, err := c.DequeueBatch(n - len(got))
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) == 0 {
			t.Fatalf("queue ran dry at %d of %d values", len(got), n)
		}
		got = append(got, vals...)
		// Between pulls — while the remainder of the last fabric pull sits
		// in the session stash — churn the ingress pool with same-class
		// poison traffic. FIFO puts it behind the wanted values, so the
		// pulls above never see it; it only recycles buffers.
		if err := c.Enqueue(patternValue(99, len(got), size)); err != nil {
			t.Fatal(err)
		}
		poisons++
	}
	for i, g := range got {
		if !bytes.Equal(g, want[i]) {
			t.Fatalf("value %d: stashed delivery corrupted by pool churn", i)
		}
	}
	for i := 0; i < poisons; i++ {
		if _, ok, err := c.Dequeue(); err != nil || !ok {
			t.Fatalf("draining poison %d: ok=%v err=%v", i, ok, err)
		}
	}
	if n, err := c.Len(); err != nil || n != 0 {
		t.Fatalf("queue not drained: len=%d err=%v", n, err)
	}
}
