package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// HTTP introspection endpoints. StatszHandler (server.go) serves the full
// JSON Snapshot; the handlers here add the operational surface around it:
// liveness (/healthz), process/build identity (/varz), Prometheus
// exposition (/metricsz), and the control-plane event trace (/tracez).
// Commands mount them all on one mux — see cmd/queued.

// HealthzHandler reports liveness: 200 with a tiny JSON body carrying the
// server's uptime. It deliberately reads no namespace or fabric state, so
// it stays cheap and cannot be wedged by the thing it is probing.
func (srv *Server) HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.3f}\n",
			time.Since(srv.start).Seconds())
	})
}

// VarzHandler reports process and build identity plus the server's
// configured options as JSON: what binary is this, when did it start, and
// what knobs is it running with. extra carries command-level settings
// (flag values, listen addresses) the server type cannot know; nil is
// fine.
func (srv *Server) VarzHandler(extra map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{
			"go_version":     runtime.Version(),
			"pid":            os.Getpid(),
			"start_time":     srv.start.Format(time.RFC3339Nano),
			"uptime_seconds": time.Since(srv.start).Seconds(),
			"options": map[string]any{
				"window":         srv.opts.window,
				"batch_max":      srv.opts.batchMax,
				"max_frame":      srv.opts.maxFrame,
				"max_queues":     srv.opts.maxQueues,
				"min_shards":     srv.opts.minShards,
				"max_shards":     srv.opts.maxShards,
				"low_watermark":  srv.opts.lowWatermark,
				"high_watermark": srv.opts.highWatermark,
				"autoscale_ms":   float64(srv.opts.autoscale) / float64(time.Millisecond),
				"observability":  srv.opts.obs,
			},
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			doc["module"] = bi.Main.Path
			doc["module_version"] = bi.Main.Version
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" {
					doc["vcs_revision"] = s.Value
				}
			}
		}
		if len(extra) > 0 {
			doc["flags"] = extra
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

// TracezHandler dumps the control-plane event ring as JSON: every resize,
// autoscaler decision (with the watermark inputs it decided on), queue and
// session lifecycle transition the ring still holds, in sequence order.
// dropped counts events already overwritten by the ring's wraparound.
// With observability off the dump is empty but well-formed.
func (srv *Server) TracezHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := srv.trace.Events()
		if events == nil {
			events = []obs.Event{}
		}
		recorded := srv.trace.Recorded()
		dropped := recorded - int64(len(events))
		if dropped < 0 {
			dropped = 0
		}
		doc := map[string]any{
			"recorded": recorded,
			"capacity": srv.trace.Capacity(),
			"dropped":  dropped,
			"events":   events,
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

// MetricszHandler serves the Prometheus text exposition (format 0.0.4):
// service counters, per-queue gauges, and — when observability is on —
// per-(queue, op) latency summaries in seconds. Metric names are
// prefixed queued_.
func (srv *Server) MetricszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := srv.Snapshot()
		st := snap.Server

		obs.WriteMetricHeader(w, "queued_uptime_seconds", "Seconds since the server started.", "gauge")
		obs.WriteCounter(w, "queued_uptime_seconds", "", time.Since(srv.start).Seconds())

		obs.WriteMetricHeader(w, "queued_sessions_open", "Live client sessions.", "gauge")
		obs.WriteCounter(w, "queued_sessions_open", "", st.SessionsOpen)
		obs.WriteMetricHeader(w, "queued_sessions_total", "Sessions accepted since start.", "counter")
		obs.WriteCounter(w, "queued_sessions_total", "", st.SessionsTotal)
		obs.WriteMetricHeader(w, "queued_sessions_denied_total", "Connections refused for want of a handle lease.", "counter")
		obs.WriteCounter(w, "queued_sessions_denied_total", "", st.SessionsDenied)
		obs.WriteMetricHeader(w, "queued_sessions_reaped_total", "Sessions closed by the idle reaper.", "counter")
		obs.WriteCounter(w, "queued_sessions_reaped_total", "", st.SessionsReaped)

		obs.WriteMetricHeader(w, "queued_requests_total", "Request frames parsed off sockets.", "counter")
		obs.WriteCounter(w, "queued_requests_total", "", st.Requests)
		obs.WriteMetricHeader(w, "queued_busy_total", "Requests answered BUSY (window full).", "counter")
		obs.WriteCounter(w, "queued_busy_total", "", st.Busy)

		obs.WriteMetricHeader(w, "queued_ops_total", "Queue operations acknowledged, by class.", "counter")
		obs.WriteCounter(w, "queued_ops_total", `op="enqueue"`, st.Enqueues)
		obs.WriteCounter(w, "queued_ops_total", `op="dequeue"`, st.Dequeues)
		obs.WriteCounter(w, "queued_ops_total", `op="null_dequeue"`, st.EmptyDequeues)

		obs.WriteMetricHeader(w, "queued_queues_open", "Live queues in the namespace (default included).", "gauge")
		obs.WriteCounter(w, "queued_queues_open", "", st.QueuesOpen)
		obs.WriteMetricHeader(w, "queued_queues_opened_total", "Named queues created by OPEN.", "counter")
		obs.WriteCounter(w, "queued_queues_opened_total", "", st.QueuesOpened)
		obs.WriteMetricHeader(w, "queued_queues_deleted_total", "Named queues removed by DELETE.", "counter")
		obs.WriteCounter(w, "queued_queues_deleted_total", "", st.QueuesDeleted)
		obs.WriteMetricHeader(w, "queued_queues_expired_total", "Named queues torn down by the idle reaper.", "counter")
		obs.WriteCounter(w, "queued_queues_expired_total", "", st.QueuesExpired)

		obs.WriteMetricHeader(w, "queued_resizes_total", "Per-queue fabric resizes, by initiator and direction.", "counter")
		obs.WriteCounter(w, "queued_resizes_total", `initiator="autoscaler",direction="grow"`, st.AutoscaleGrows)
		obs.WriteCounter(w, "queued_resizes_total", `initiator="autoscaler",direction="shrink"`, st.AutoscaleShrinks)
		obs.WriteCounter(w, "queued_resizes_total", `initiator="wire",direction="any"`, st.WireResizes)

		obs.WriteMetricHeader(w, "queued_queue_len", "Fabric backlog estimate per queue.", "gauge")
		for _, q := range snap.Queues {
			obs.WriteCounter(w, "queued_queue_len", queueLabel(q.Name), q.Len)
		}
		obs.WriteMetricHeader(w, "queued_queue_shards", "Current shard count per queue.", "gauge")
		for _, q := range snap.Queues {
			obs.WriteCounter(w, "queued_queue_shards", queueLabel(q.Name), q.Shards)
		}
		obs.WriteMetricHeader(w, "queued_queue_epoch", "Topology epoch per queue.", "gauge")
		for _, q := range snap.Queues {
			obs.WriteCounter(w, "queued_queue_epoch", queueLabel(q.Name), q.Epoch)
		}

		if snap.Obs != nil {
			obs.WriteMetricHeader(w, "queued_trace_events_total", "Control-plane events recorded in the trace ring.", "counter")
			obs.WriteCounter(w, "queued_trace_events_total", "", snap.Obs.TraceRecorded)

			obs.WriteMetricHeader(w, "queued_spans_total", "Traced request spans captured by the exemplar reservoir.", "counter")
			obs.WriteCounter(w, "queued_spans_total", "", snap.Obs.Spans)

			obs.WriteMetricHeader(w, "queued_stage_latency_seconds",
				"Per-stage latency of traced requests (wait: read to admit; fabric: the queue op; reply: fabric end to reply write; flush: reply write to socket flush; server: read to flush).", "summary")
			for st := obs.Stage(0); st < obs.NumStages; st++ {
				if s, ok := snap.Obs.StageLat[st.String()]; ok {
					obs.WriteSummary(w, "queued_stage_latency_seconds",
						fmt.Sprintf(`stage="%s"`, st), s)
				}
			}

			obs.WriteMetricHeader(w, "queued_op_latency_seconds",
				"In-server request latency (read to reply), per queue and op class.", "summary")
			for _, q := range snap.Queues {
				for _, col := range []struct {
					op string
					s  *obs.LatencySummary
				}{
					{"enqueue", q.EnqueueLat},
					{"dequeue", q.DequeueLat},
					{"batch", q.BatchLat},
					{"null_dequeue", q.NullDequeueLat},
				} {
					if col.s == nil {
						continue
					}
					labels := fmt.Sprintf(`queue="%s",op="%s"`, obs.EscapeLabel(q.Name), col.op)
					obs.WriteSummary(w, "queued_op_latency_seconds", labels, *col.s)
				}
			}
		}
	})
}

// queueLabel renders the shared per-queue label set.
func queueLabel(name string) string {
	return fmt.Sprintf(`queue="%s"`, obs.EscapeLabel(name))
}

// SpanzHandler dumps the request-trace exemplar reservoir as JSON: the
// slowest traced spans the server has seen (slowest first — the exemplars
// worth explaining) and the most recent ones (sequence order — what a
// typical traced request looks like right now), each decomposed into
// per-stage millisecond durations. offered counts spans ever captured;
// with observability off the dump is empty but well-formed.
func (srv *Server) SpanzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recent, slow := srv.spans.Snapshot()
		views := func(spans []obs.Span) []obs.SpanView {
			out := make([]obs.SpanView, len(spans))
			for i := range spans {
				out[i] = spans[i].View()
			}
			return out
		}
		doc := map[string]any{
			"offered":         srv.spans.Offered(),
			"recent_capacity": srv.spans.RecentCapacity(),
			"slow_capacity":   srv.spans.SlowCapacity(),
			"slow":            views(slow),
			"recent":          views(recent),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}
