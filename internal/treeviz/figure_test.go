package treeviz_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/treeviz"
)

// TestFigure1Reproduction rebuilds the exact mid-execution tree of Figures 1
// and 2 of the paper using the deterministic scheduling hooks, then checks:
//
//   - the root linearization matches the caption of Figure 1:
//     Enq(a) Enq(e) Deq2 | Enq(b) Deq4 Deq5 | Enq(d) Enq(f) Enq(h) Deq1 |
//     Enq(c) Deq3 | Enq(g)
//   - the implicit fields (sumenq, sumdeq, size) match Figure 2;
//   - every dequeue's computed response equals the value a sequential replay
//     of the linearization yields.
//
// Process/op layout from Figure 2's leaf row (processes numbered 0..3 here,
// 1..4 in the paper):
//
//	P0: Enq(a) Enq(b) Deq1 Enq(c)
//	P1: Deq2  Enq(d) Deq3
//	P2: Enq(e) Deq4  Enq(f) Enq(g)
//	P3: Deq5  Enq(h) Deq6   (Deq6 still propagating)
func TestFigure1Reproduction(t *testing.T) {
	q, err := core.New[string](4)
	if err != nil {
		t.Fatal(err)
	}
	h := make([]*core.Handle[string], 4)
	for i := range h {
		h[i] = q.MustHandle(i)
	}
	refresh := func(path string) {
		t.Helper()
		ok, err := q.StepRefresh(h[0], path)
		if err != nil || !ok {
			t.Fatalf("StepRefresh(%q) = (%v, %v)", path, ok, err)
		}
	}

	deqIdx := map[string]int64{} // paper label -> leaf block index
	// Root block 1: Enq(a) Enq(e) Deq2.
	h[0].StepEnqueue("a")
	deqIdx["Deq2"] = h[1].StepDequeue()
	refresh("L")
	h[2].StepEnqueue("e")
	refresh("R")
	refresh("")
	// Root block 2: Enq(b) Deq4 Deq5.
	h[0].StepEnqueue("b")
	refresh("L")
	deqIdx["Deq4"] = h[2].StepDequeue()
	deqIdx["Deq5"] = h[3].StepDequeue()
	refresh("R")
	refresh("")
	// Root block 3: Enq(d) Enq(f) Enq(h) Deq1.
	deqIdx["Deq1"] = h[0].StepDequeue()
	h[1].StepEnqueue("d")
	refresh("L")
	h[2].StepEnqueue("f")
	h[3].StepEnqueue("h")
	refresh("R")
	refresh("")
	// Root block 4: Enq(c) Deq3 (two left-child blocks merged by one root
	// Refresh, as Figure 2's left-node sums (4,2) then (4,3) show).
	h[0].StepEnqueue("c")
	refresh("L")
	deqIdx["Deq3"] = h[1].StepDequeue()
	refresh("L")
	refresh("")
	// Root block 5: Enq(g).
	h[2].StepEnqueue("g")
	refresh("R")
	refresh("")
	// Deq6 is appended but not propagated.
	deqIdx["Deq6"] = h[3].StepDequeue()

	snap := q.Snapshot()

	// Name dequeues with the paper's labels.
	labelOf := func(op treeviz.Op) string {
		if op.IsEnqueue {
			return fmt.Sprintf("Enq(%v)", op.Element)
		}
		for name, idx := range deqIdx {
			leaf := int(name[len(name)-1]-'0') - 1 // Deq2 -> paper process 2 -> leaf 1
			switch name {
			case "Deq1":
				leaf = 0
			case "Deq2", "Deq3":
				leaf = 1
			case "Deq4":
				leaf = 2
			case "Deq5", "Deq6":
				leaf = 3
			}
			if op.LeafID == leaf && op.LeafIndex == idx {
				return name
			}
		}
		return treeviz.DefaultLabeler(op)
	}

	lin, err := treeviz.RootLinearization(snap)
	if err != nil {
		t.Fatal(err)
	}
	got := treeviz.FormatLinearization(lin, labelOf)
	want := "Enq(a) Enq(e) Deq2 | Enq(b) Deq4 Deq5 | Enq(d) Enq(f) Enq(h) Deq1 | Enq(c) Deq3 | Enq(g)"
	if got != want {
		t.Fatalf("linearization mismatch:\n got  %s\n want %s", got, want)
	}

	// Figure 2 field check: (sumenq, sumdeq) per block and root sizes.
	fields := map[string][][3]int64{ // path -> per block (sumenq, sumdeq, size)
		"":  {{0, 0, 0}, {2, 1, 1}, {3, 3, 0}, {6, 4, 2}, {7, 5, 2}, {8, 5, 3}},
		"L": {{0, 0, 0}, {1, 1, 0}, {2, 1, 0}, {3, 2, 0}, {4, 2, 0}, {4, 3, 0}},
		"R": {{0, 0, 0}, {1, 0, 0}, {1, 2, 0}, {3, 2, 0}, {4, 2, 0}},
	}
	for _, n := range snap.Nodes {
		want, ok := fields[n.Path]
		if !ok {
			continue
		}
		if len(n.Blocks) != len(want) {
			t.Fatalf("node %q has %d blocks, want %d", n.Path, len(n.Blocks), len(want))
		}
		for i, blk := range n.Blocks {
			if blk.SumEnq != want[i][0] || blk.SumDeq != want[i][1] {
				t.Errorf("node %q block %d sums = (%d,%d), want (%d,%d)",
					n.Path, i, blk.SumEnq, blk.SumDeq, want[i][0], want[i][1])
			}
			if n.IsRoot && blk.Size != want[i][2] {
				t.Errorf("root block %d size = %d, want %d", i, blk.Size, want[i][2])
			}
		}
	}

	// Responses from a sequential replay of the caption's linearization:
	// Deq2->a, Deq4->e, Deq5->b, Deq1->d, Deq3->f.
	wantResp := map[string]string{"Deq1": "d", "Deq2": "a", "Deq3": "f", "Deq4": "e", "Deq5": "b"}
	owners := map[string]*core.Handle[string]{
		"Deq1": h[0], "Deq2": h[1], "Deq3": h[1], "Deq4": h[2], "Deq5": h[3],
	}
	for name, want := range wantResp {
		v, ok := owners[name].StepFinishDequeue(deqIdx[name])
		if !ok || v != want {
			t.Errorf("%s returned (%q, %v), want %q", name, v, ok, want)
		}
	}

	// Finally, pin the rendered Figure 1 view.
	render := treeviz.Render(snap, labelOf)
	wantRender := strings.Join([]string{
		"root   [.] [E:Enq(a),Enq(e) D:Deq2] [E:Enq(b) D:Deq4,Deq5] [E:Enq(d),Enq(f),Enq(h) D:Deq1] [E:Enq(c) D:Deq3] [E:Enq(g) D:-]",
		"L      [.] [E:Enq(a) D:Deq2] [E:Enq(b) D:-] [E:Enq(d) D:Deq1] [E:Enq(c) D:-] [E:- D:Deq3]",
		"R      [.] [E:Enq(e) D:-] [E:- D:Deq4,Deq5] [E:Enq(f),Enq(h) D:-] [E:Enq(g) D:-]",
		"P0     [.] [E:Enq(a) D:-] [E:Enq(b) D:-] [E:- D:Deq1] [E:Enq(c) D:-]",
		"P1     [.] [E:- D:Deq2] [E:Enq(d) D:-] [E:- D:Deq3]",
		"P2     [.] [E:Enq(e) D:-] [E:- D:Deq4] [E:Enq(f) D:-] [E:Enq(g) D:-]",
		"P3     [.] [E:- D:Deq5] [E:Enq(h) D:-] [E:- D:Deq6]",
		"",
	}, "\n")
	if render != wantRender {
		t.Errorf("rendered tree mismatch:\n--- got ---\n%s--- want ---\n%s", render, wantRender)
	}
}

// TestRenderFieldsSmoke exercises the Figure 2 numeric view on a small
// sequential run.
func TestRenderFieldsSmoke(t *testing.T) {
	q, _ := core.New[int](2)
	h := q.MustHandle(0)
	h.Enqueue(10)
	h.Enqueue(20)
	if _, ok := h.Dequeue(); !ok {
		t.Fatal("dequeue failed")
	}
	out := treeviz.RenderFields(q.Snapshot())
	for _, want := range []string{"root", "P0", "sumenq=", "size="} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderFields output missing %q:\n%s", want, out)
		}
	}
}

// TestBlockOpsLeaf checks leaf-level expansion directly.
func TestBlockOpsLeaf(t *testing.T) {
	q, _ := core.New[string](2)
	h := q.MustHandle(0)
	h.Enqueue("x")
	snap := q.Snapshot()
	var leafPath string
	for _, n := range snap.Nodes {
		if n.IsLeaf && n.LeafID == 0 {
			leafPath = n.Path
		}
	}
	enqs, deqs, err := treeviz.BlockOps(snap, leafPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(enqs) != 1 || len(deqs) != 0 || enqs[0].Element != "x" {
		t.Fatalf("BlockOps = (%v, %v)", enqs, deqs)
	}
}
