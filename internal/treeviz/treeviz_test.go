package treeviz_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/treeviz"
)

func buildSnapshot(t *testing.T) core.TreeSnapshot {
	t.Helper()
	q, err := core.New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	h.Enqueue(1)
	h.Enqueue(2)
	h.Dequeue()
	return q.Snapshot()
}

func TestBlockOpsErrors(t *testing.T) {
	snap := buildSnapshot(t)
	if _, _, err := treeviz.BlockOps(snap, "ZZ", 1); err == nil {
		t.Error("unknown path accepted")
	}
	if _, _, err := treeviz.BlockOps(snap, "", 999); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, _, err := treeviz.BlockOps(snap, "", -1); err == nil {
		t.Error("negative block accepted")
	}
}

func TestBlockOpsDummyIsEmpty(t *testing.T) {
	snap := buildSnapshot(t)
	e, d, err := treeviz.BlockOps(snap, "", 0)
	if err != nil || len(e) != 0 || len(d) != 0 {
		t.Fatalf("dummy block expansion = (%v, %v, %v)", e, d, err)
	}
}

func TestRootLinearizationConsistency(t *testing.T) {
	snap := buildSnapshot(t)
	lin, err := treeviz.RootLinearization(snap)
	if err != nil {
		t.Fatal(err)
	}
	var enqs, deqs int
	for _, rb := range lin {
		enqs += len(rb.Enqueues)
		deqs += len(rb.Dequeues)
	}
	if enqs != 2 || deqs != 1 {
		t.Fatalf("linearization has %d enqueues, %d dequeues", enqs, deqs)
	}
	s := treeviz.FormatLinearization(lin, nil)
	if !strings.Contains(s, "Enq(1)") || !strings.Contains(s, "Deq@P0#") {
		t.Fatalf("formatted linearization %q missing ops", s)
	}
}

func TestRootLinearizationMissingRoot(t *testing.T) {
	if _, err := treeviz.RootLinearization(core.TreeSnapshot{}); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestDefaultLabeler(t *testing.T) {
	enq := treeviz.Op{IsEnqueue: true, Element: 7}
	deq := treeviz.Op{LeafID: 3, LeafIndex: 2}
	if got := treeviz.DefaultLabeler(enq); got != "Enq(7)" {
		t.Errorf("enqueue label %q", got)
	}
	if got := treeviz.DefaultLabeler(deq); got != "Deq@P3#2" {
		t.Errorf("dequeue label %q", got)
	}
}

func TestRenderIncludesAllNodes(t *testing.T) {
	snap := buildSnapshot(t)
	out := treeviz.Render(snap, nil)
	for _, want := range []string{"root", "P0", "P1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != len(snap.Nodes) {
		t.Errorf("Render has %d lines for %d nodes", lines, len(snap.Nodes))
	}
}

// TestLinearizationAfterConcurrentRun validates the snapshot/expansion path
// end to end on a quiesced concurrent run: the reconstructed linearization
// must contain every operation exactly once, with per-process operations in
// invocation order (Corollary 6 and Lemma 15, observed through the public
// snapshot API).
func TestLinearizationAfterConcurrentRun(t *testing.T) {
	const procs = 4
	const opsPerProc = 400
	q, err := core.New[int](procs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.MustHandle(p)
			rng := rand.New(rand.NewSource(int64(p)))
			for s := 0; s < opsPerProc; s++ {
				if rng.Intn(2) == 0 {
					h.Enqueue(p*1_000_000 + s)
				} else {
					h.Dequeue()
				}
			}
		}(p)
	}
	wg.Wait()

	lin, err := treeviz.RootLinearization(q.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	type ref struct {
		leaf int
		idx  int64
	}
	seen := map[ref]bool{}
	lastIdx := map[int]int64{}
	count := 0
	check := func(op treeviz.Op) {
		r := ref{op.LeafID, op.LeafIndex}
		if seen[r] {
			t.Fatalf("operation %v appears twice in linearization", r)
		}
		seen[r] = true
		if op.LeafIndex <= lastIdx[op.LeafID] {
			t.Fatalf("per-process order violated at %v", r)
		}
		lastIdx[op.LeafID] = op.LeafIndex
		count++
	}
	for _, rb := range lin {
		for _, op := range rb.Enqueues {
			check(op)
		}
		for _, op := range rb.Dequeues {
			check(op)
		}
	}
	if count != procs*opsPerProc {
		t.Fatalf("linearization has %d operations, want %d", count, procs*opsPerProc)
	}
}
