// Package treeviz reconstructs and renders ordering-tree states.
//
// The queue stores operation sequences implicitly (prefix sums and child
// indices; Figure 2 of the paper); this package expands that implicit
// representation back into the explicit per-block enqueue and dequeue
// sequences of Figure 1 and renders both views as text. The expansion is
// exactly the recursion of equation (3.1), so the golden tests that compare
// a rendered tree against the paper's figures also validate the block
// representation end to end.
package treeviz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Op identifies one operation found in a leaf block.
type Op struct {
	IsEnqueue bool
	Element   any   // enqueued value, nil for dequeues
	LeafID    int   // owning process
	LeafIndex int64 // block index within the owner's leaf
}

// Labeler renders an Op as a short string. DefaultLabeler shows Enq(v) and
// Deq@P<leaf>#<idx>.
type Labeler func(Op) string

// DefaultLabeler is the fallback Op rendering.
func DefaultLabeler(op Op) string {
	if op.IsEnqueue {
		return fmt.Sprintf("Enq(%v)", op.Element)
	}
	return fmt.Sprintf("Deq@P%d#%d", op.LeafID, op.LeafIndex)
}

// nodeIndex provides path lookup over a snapshot.
type nodeIndex map[string]*core.NodeSnapshot

func indexNodes(s *core.TreeSnapshot) nodeIndex {
	idx := make(nodeIndex, len(s.Nodes))
	for i := range s.Nodes {
		idx[s.Nodes[i].Path] = &s.Nodes[i]
	}
	return idx
}

func (idx nodeIndex) block(path string, b int64) (*core.BlockSnapshot, error) {
	n, ok := idx[path]
	if !ok {
		return nil, fmt.Errorf("treeviz: no node at path %q", path)
	}
	if b < 0 || b >= int64(len(n.Blocks)) {
		return nil, fmt.Errorf("treeviz: node %q has no block %d", path, b)
	}
	return &n.Blocks[b], nil
}

// BlockOps expands block b of the node at path into its enqueue and dequeue
// sequences E(B) and D(B), following equation (3.1).
func BlockOps(s core.TreeSnapshot, path string, b int64) (enqs, deqs []Op, err error) {
	return indexNodes(&s).expand(path, b)
}

func (idx nodeIndex) expand(path string, b int64) (enqs, deqs []Op, err error) {
	n, ok := idx[path]
	if !ok {
		return nil, nil, fmt.Errorf("treeviz: no node at path %q", path)
	}
	blk, err := idx.block(path, b)
	if err != nil {
		return nil, nil, err
	}
	if b == 0 {
		return nil, nil, nil // dummy block
	}
	if n.IsLeaf {
		op := Op{LeafID: n.LeafID, LeafIndex: b}
		if blk.Kind == core.KindEnqueue {
			op.IsEnqueue = true
			op.Element = blk.Element
			return []Op{op}, nil, nil
		}
		return nil, []Op{op}, nil
	}
	prev, err := idx.block(path, b-1)
	if err != nil {
		return nil, nil, err
	}
	// Direct subblocks per (3.3): left child prev.EndLeft+1..blk.EndLeft,
	// then right child prev.EndRight+1..blk.EndRight.
	for _, side := range []struct {
		child    string
		from, to int64
	}{
		{path + "L", prev.EndLeft + 1, blk.EndLeft},
		{path + "R", prev.EndRight + 1, blk.EndRight},
	} {
		for i := side.from; i <= side.to; i++ {
			e, d, err := idx.expand(side.child, i)
			if err != nil {
				return nil, nil, err
			}
			enqs = append(enqs, e...)
			deqs = append(deqs, d...)
		}
	}
	return enqs, deqs, nil
}

// RootBlock is one root block's expanded operation sequences.
type RootBlock struct {
	Index    int64
	Enqueues []Op
	Dequeues []Op
}

// RootLinearization expands every root block, yielding the linearization
// E(B1) D(B1) E(B2) D(B2) ... of equation (3.2).
func RootLinearization(s core.TreeSnapshot) ([]RootBlock, error) {
	idx := indexNodes(&s)
	rootNode, ok := idx[""]
	if !ok {
		return nil, fmt.Errorf("treeviz: snapshot has no root")
	}
	var out []RootBlock
	for b := int64(1); b < int64(len(rootNode.Blocks)); b++ {
		e, d, err := idx.expand("", b)
		if err != nil {
			return nil, err
		}
		out = append(out, RootBlock{Index: b, Enqueues: e, Dequeues: d})
	}
	return out, nil
}

// FormatLinearization renders a linearization like the paper's caption:
// operations separated by spaces, root blocks separated by " | ".
func FormatLinearization(blocks []RootBlock, label Labeler) string {
	if label == nil {
		label = DefaultLabeler
	}
	parts := make([]string, 0, len(blocks))
	for _, rb := range blocks {
		var ops []string
		for _, op := range rb.Enqueues {
			ops = append(ops, label(op))
		}
		for _, op := range rb.Dequeues {
			ops = append(ops, label(op))
		}
		parts = append(parts, strings.Join(ops, " "))
	}
	return strings.Join(parts, " | ")
}

// Render draws the whole tree, one line per node in breadth-first order,
// expanding each block into its operation sequences (the Figure 1 view).
func Render(s core.TreeSnapshot, label Labeler) string {
	if label == nil {
		label = DefaultLabeler
	}
	idx := indexNodes(&s)
	paths := sortedPaths(s)
	var sb strings.Builder
	for _, path := range paths {
		n := idx[path]
		fmt.Fprintf(&sb, "%-6s", nodeName(n))
		for b := int64(0); b < int64(len(n.Blocks)); b++ {
			if b == 0 {
				sb.WriteString(" [.]")
				continue
			}
			e, d, err := idx.expand(path, b)
			if err != nil {
				fmt.Fprintf(&sb, " [err:%v]", err)
				continue
			}
			sb.WriteString(" [")
			sb.WriteString(formatOps("E", e, label))
			sb.WriteString(" ")
			sb.WriteString(formatOps("D", d, label))
			sb.WriteString("]")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// RenderFields draws the implicit representation (the Figure 2 view): the
// numeric fields of every block.
func RenderFields(s core.TreeSnapshot) string {
	idx := indexNodes(&s)
	paths := sortedPaths(s)
	var sb strings.Builder
	for _, path := range paths {
		n := idx[path]
		fmt.Fprintf(&sb, "%-6s head=%d\n", nodeName(n), n.Head)
		for _, blk := range n.Blocks {
			switch {
			case n.IsLeaf:
				el := "-"
				if blk.Kind == core.KindEnqueue {
					el = fmt.Sprintf("%v", blk.Element)
				}
				fmt.Fprintf(&sb, "  #%d sumenq=%d sumdeq=%d element=%s super=%d\n",
					blk.Index, blk.SumEnq, blk.SumDeq, el, blk.Super)
			case n.IsRoot:
				fmt.Fprintf(&sb, "  #%d sumenq=%d sumdeq=%d endleft=%d endright=%d size=%d\n",
					blk.Index, blk.SumEnq, blk.SumDeq, blk.EndLeft, blk.EndRight, blk.Size)
			default:
				fmt.Fprintf(&sb, "  #%d sumenq=%d sumdeq=%d endleft=%d endright=%d super=%d\n",
					blk.Index, blk.SumEnq, blk.SumDeq, blk.EndLeft, blk.EndRight, blk.Super)
			}
		}
	}
	return sb.String()
}

func formatOps(tag string, ops []Op, label Labeler) string {
	if len(ops) == 0 {
		return tag + ":-"
	}
	parts := make([]string, len(ops))
	for i, op := range ops {
		parts[i] = label(op)
	}
	return tag + ":" + strings.Join(parts, ",")
}

func nodeName(n *core.NodeSnapshot) string {
	switch {
	case n.IsRoot:
		return "root"
	case n.IsLeaf:
		return fmt.Sprintf("P%d", n.LeafID)
	default:
		return n.Path
	}
}

// sortedPaths orders nodes root first, then by depth and left-to-right.
func sortedPaths(s core.TreeSnapshot) []string {
	paths := make([]string, 0, len(s.Nodes))
	for i := range s.Nodes {
		paths = append(paths, s.Nodes[i].Path)
	}
	sort.Slice(paths, func(i, j int) bool {
		if len(paths[i]) != len(paths[j]) {
			return len(paths[i]) < len(paths[j])
		}
		return paths[i] < paths[j]
	})
	return paths
}
