package obs

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketGeometry checks the log-linear bucket math: every sample maps
// into a bucket whose upper bound admits it, bounds are monotonic, and
// the quantization error stays within one sub-bucket width.
func TestBucketGeometry(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %d, not above previous %d", i, u, prev)
		}
		prev = u
	}
	for _, v := range []int64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 12345,
		1e6, 1e9, 1e12, 1<<62 + 12345} {
		i := bucketIndex(v)
		u := bucketUpper(i)
		if i < numBuckets-1 && u < v {
			t.Errorf("value %d landed in bucket %d with upper %d < value", v, i, u)
		}
		if i > 0 && bucketUpper(i-1) >= v {
			t.Errorf("value %d landed in bucket %d but fits bucket %d (upper %d)",
				v, i, i-1, bucketUpper(i-1))
		}
		// Relative quantization error: bounded by one sub-bucket width.
		if v >= minorCount && i < numBuckets-1 {
			if err := float64(u-v) / float64(v); err > 1.0/minorCount {
				t.Errorf("value %d: quantization error %.3f exceeds %.3f", v, err, 1.0/minorCount)
			}
		}
	}
}

// TestHistogramConcurrentRecordMerge hammers one histogram from many
// goroutines on distinct (and colliding) stripes and checks that the
// merged accumulator conserves every sample and its sum exactly. Run
// under -race this also proves recording is data-race free.
func TestHistogramConcurrentRecordMerge(t *testing.T) {
	const goroutines = 16
	const perG = 5000
	var h Histogram
	var wg sync.WaitGroup
	var wantSum int64
	sums := make([]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var sum int64
			for i := 0; i < perG; i++ {
				v := rng.Int63n(1e9)
				h.Record(g, v)
				sum += v
			}
			sums[g] = sum
		}(g)
	}
	wg.Wait()
	for _, s := range sums {
		wantSum += s
	}
	var a Accum
	h.CollectInto(&a)
	if a.count != goroutines*perG {
		t.Fatalf("merged count = %d, want %d", a.count, goroutines*perG)
	}
	if a.sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", a.sum, wantSum)
	}
	var inBuckets int64
	for _, c := range a.counts {
		inBuckets += c
	}
	if inBuckets != goroutines*perG {
		t.Fatalf("bucket total = %d, want %d", inBuckets, goroutines*perG)
	}
	s := a.Summary()
	if s.P50Ms <= 0 || s.P50Ms > s.P99Ms || s.P99Ms > s.MaxMs {
		t.Fatalf("implausible percentile ladder: %+v", s)
	}
}

// TestSummaryPercentiles records a known distribution and checks the
// percentile ladder against exact values, within quantization error.
func TestSummaryPercentiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Record(0, v*int64(time.Microsecond))
	}
	var a Accum
	h.CollectInto(&a)
	s := a.Summary()
	check := func(name string, got, wantMs float64) {
		t.Helper()
		if got < wantMs || got > wantMs*(1+2.0/minorCount) {
			t.Errorf("%s = %.4f ms, want within [%v, %v]", name, got, wantMs, wantMs*(1+2.0/minorCount))
		}
	}
	check("p50", s.P50Ms, 0.5)
	check("p90", s.P90Ms, 0.9)
	check("p99", s.P99Ms, 0.99)
	check("p999", s.P999Ms, 0.999)
	check("max", s.MaxMs, 1.0)
	if s.Count != 1000 {
		t.Errorf("count = %d, want 1000", s.Count)
	}
}

// TestRingWraparound overfills a small ring and checks that the survivors
// are exactly the newest events, in sequence order.
func TestRingWraparound(t *testing.T) {
	const capacity, total = 8, 21
	r := NewRing(capacity)
	for i := 0; i < total; i++ {
		r.Add("tick", "q", map[string]any{"i": i})
	}
	if got := r.Recorded(); got != total {
		t.Fatalf("Recorded() = %d, want %d", got, total)
	}
	evs := r.Events()
	if len(evs) != capacity {
		t.Fatalf("ring holds %d events, want %d", len(evs), capacity)
	}
	for i, ev := range evs {
		want := uint64(total - capacity + i)
		if ev.Seq != want {
			t.Errorf("event %d has seq %d, want %d (oldest survivors overwritten first)", i, ev.Seq, want)
		}
		if ev.Type != "tick" || ev.Queue != "q" {
			t.Errorf("event %d = %+v, fields mangled", i, ev)
		}
	}
}

// TestRingConcurrentAdd wraps the ring from many goroutines; under -race
// this proves Add/Events are race-free, and the dump must stay sorted and
// duplicate-free.
func TestRingConcurrentAdd(t *testing.T) {
	r := NewRing(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add("churn", fmt.Sprintf("q%d", g), nil)
				if i%50 == 0 {
					r.Events()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Recorded(); got != 1600 {
		t.Fatalf("Recorded() = %d, want 1600", got)
	}
	evs := r.Events()
	seen := make(map[uint64]bool)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: seq %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

// TestNilRingIsNoop checks the disabled-tracing path: a nil ring accepts
// every call.
func TestNilRingIsNoop(t *testing.T) {
	var r *Ring
	r.Add("x", "", nil)
	if r.Events() != nil || r.Recorded() != 0 || r.Capacity() != 0 {
		t.Fatal("nil ring must behave as empty")
	}
}

// TestLatencySummaryJSONRoundTrip checks the stable field names and exact
// round-tripping of the summary encoding consumed by /statsz readers.
func TestLatencySummaryJSONRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(i, int64(i)*int64(time.Millisecond))
	}
	var a Accum
	h.CollectInto(&a)
	s := a.Summary()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back LatencySummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("summary did not survive the round trip:\n got %+v\nwant %+v", back, s)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"count", "sum_ms", "p50_ms", "p90_ms", "p99_ms", "p999_ms", "max_ms"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("summary JSON missing %q", key)
		}
	}
}

// TestEventJSONRoundTrip checks the /tracez event encoding.
func TestEventJSONRoundTrip(t *testing.T) {
	r := NewRing(4)
	r.Add("autoscale_grow", "jobs", map[string]any{"k": 2, "target": 4, "rate": 12345.6})
	data, err := json.Marshal(r.Events())
	if err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Type != "autoscale_grow" || back[0].Queue != "jobs" {
		t.Fatalf("event did not survive the round trip: %+v", back)
	}
	if back[0].Data["target"].(float64) != 4 {
		t.Fatalf("event data mangled: %+v", back[0].Data)
	}
}
