package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Request tracing: a Span is the server-side record of one traced request
// frame's life, stamped at each stage boundary by the service layer. The
// client opts a frame into tracing on the wire (a flag bit plus its own
// send timestamp); the server stamps the stages below with its own clock
// and both keeps the span here (the exemplar reservoir, served by /spanz)
// and ships the stamps back in the reply so the client can close the span
// with its receive time. Stage durations are always differences within
// one clock — client-to-client or server-to-server — so the decomposition
// is immune to clock skew between the two hosts.

// Stage names one interval of a traced request's in-server life. The
// service layer stamps the boundaries; StageNs derives the durations.
type Stage int

// Stages of a traced request frame. NumStages sizes per-stage histogram
// arrays.
const (
	// StageWait is socket read to batcher admit: time spent queued in the
	// session's bounded in-flight window before a batch pass picked the
	// frame up.
	StageWait Stage = iota
	// StageFabric is the queue operation itself: the fabric call (stash
	// service included) that moves the frame's values.
	StageFabric
	// StageReply is fabric completion to the reply frame being written
	// into the session's buffered writer.
	StageReply
	// StageFlush is reply write to the batch pass's single socket flush
	// landing (the frame shares its flush with the rest of its window).
	StageFlush
	// StageServer is the whole in-server interval, read to flush.
	StageServer
	NumStages
)

// String returns the stable lower-case name used in JSON fields and
// /metricsz label values.
func (s Stage) String() string {
	switch s {
	case StageWait:
		return "wait"
	case StageFabric:
		return "fabric"
	case StageReply:
		return "reply"
	case StageFlush:
		return "flush"
	case StageServer:
		return "server"
	default:
		return "unknown"
	}
}

// Span is one traced request frame's stage record. Timestamps are
// server-clock unix nanoseconds; a zero Flush means the span was captured
// before its flush stamp (it never is, once published to a Reservoir).
// ClientSend is the client's own send stamp (client clock), carried in
// the traced frame — useful for identifying the request, not for
// cross-clock arithmetic.
type Span struct {
	Seq     uint64 // assigned by the reservoir at Offer
	Queue   string
	Op      string // latency class, an Op.String() value
	Session uint64
	ReqID   uint64 // wire frame id, matching the client's pipeline
	Ops     int    // values moved by the frame (batch frames move many)

	ClientSend int64 // client-clock unix ns from the traced frame

	Read        int64 // read loop pulled the frame off the socket
	Admit       int64 // batch worker admitted the frame's window
	FabricStart int64 // queue operation began
	FabricEnd   int64 // queue operation returned
	ReplyWrite  int64 // reply frame written to the session buffer
	Flush       int64 // the window's socket flush returned
}

// StageNs returns the duration of one stage in nanoseconds. Stages whose
// closing stamp is missing (a span inspected before flush) report 0, as
// does any stamping anomaly that would go negative — stage durations are
// durations, never corrections.
func (sp *Span) StageNs(st Stage) int64 {
	var d int64
	switch st {
	case StageWait:
		d = sp.Admit - sp.Read
	case StageFabric:
		d = sp.FabricEnd - sp.FabricStart
	case StageReply:
		d = sp.ReplyWrite - sp.FabricEnd
	case StageFlush:
		if sp.Flush != 0 {
			d = sp.Flush - sp.ReplyWrite
		}
	case StageServer:
		if sp.Flush != 0 {
			d = sp.Flush - sp.Read
		} else {
			d = sp.ReplyWrite - sp.Read
		}
	}
	if d < 0 {
		return 0
	}
	return d
}

// SpanView is the stable JSON encoding of a span served by /spanz: stage
// durations in milliseconds next to the identifying metadata.
type SpanView struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"` // the read stamp, server clock
	Queue    string    `json:"queue"`
	Op       string    `json:"op"`
	Session  uint64    `json:"session"`
	ReqID    uint64    `json:"req_id"`
	Ops      int       `json:"ops"`
	WaitMs   float64   `json:"wait_ms"`
	FabricMs float64   `json:"fabric_ms"`
	ReplyMs  float64   `json:"reply_ms"`
	FlushMs  float64   `json:"flush_ms"`
	ServerMs float64   `json:"server_ms"`

	ClientSendUnixNs int64 `json:"client_send_unix_ns,omitempty"`
}

// View renders the span for /spanz.
func (sp *Span) View() SpanView {
	return SpanView{
		Seq:              sp.Seq,
		Time:             time.Unix(0, sp.Read),
		Queue:            sp.Queue,
		Op:               sp.Op,
		Session:          sp.Session,
		ReqID:            sp.ReqID,
		Ops:              sp.Ops,
		WaitMs:           float64(sp.StageNs(StageWait)) / nsPerMs,
		FabricMs:         float64(sp.StageNs(StageFabric)) / nsPerMs,
		ReplyMs:          float64(sp.StageNs(StageReply)) / nsPerMs,
		FlushMs:          float64(sp.StageNs(StageFlush)) / nsPerMs,
		ServerMs:         float64(sp.StageNs(StageServer)) / nsPerMs,
		ClientSendUnixNs: sp.ClientSend,
	}
}

// StageHists is one set of per-stage latency histograms, fed by traced
// frames only (untraced traffic pays no stage stamping).
type StageHists struct {
	h [NumStages]Histogram
}

// NewStageHists returns a zeroed per-stage histogram set.
func NewStageHists() *StageHists { return &StageHists{} }

// Record adds one duration sample to the stage's histogram; stripe is the
// caller's affinity hint (see OpHists.Record).
func (s *StageHists) Record(st Stage, stripe int, d time.Duration) {
	s.h[st].Record(stripe, int64(d))
}

// RecordSpan records every stage of a completed span.
func (s *StageHists) RecordSpan(stripe int, sp *Span) {
	if s == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		s.h[st].Record(stripe, sp.StageNs(st))
	}
}

// Summary collects and summarizes one stage's histogram.
func (s *StageHists) Summary(st Stage) LatencySummary {
	var a Accum
	s.h[st].CollectInto(&a)
	return a.Summary()
}

// Reservoir is a bounded, lock-free exemplar store for completed spans,
// biased toward slow requests: a ring of the most recent spans (coverage —
// what does a typical traced request look like right now) plus a slot
// table holding the slowest spans seen (the exemplars worth explaining).
// Writers publish with atomic pointer stores and a bounded number of CAS
// attempts, so offering a span never blocks the batch worker that
// produced it; a span that loses its CAS race is simply dropped — the
// reservoir answers "show me slow exemplars", not "count every span".
type Reservoir struct {
	recent []atomic.Pointer[Span]
	slow   []atomic.Pointer[Span]
	seq    atomic.Uint64 // spans offered == next sequence number
}

// NewReservoir returns a reservoir keeping the last recentN spans and the
// slowN slowest (each floored at 1).
func NewReservoir(recentN, slowN int) *Reservoir {
	if recentN < 1 {
		recentN = 1
	}
	if slowN < 1 {
		slowN = 1
	}
	return &Reservoir{
		recent: make([]atomic.Pointer[Span], recentN),
		slow:   make([]atomic.Pointer[Span], slowN),
	}
}

// Offer publishes a completed span: it always lands in the recent ring
// and displaces the slow table's fastest occupant if it is slower. A nil
// reservoir (tracing disabled) is a no-op, so call sites need no guard.
// The span is retained; callers must not mutate it afterwards.
func (r *Reservoir) Offer(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	sp.Seq = r.seq.Add(1) - 1
	r.recent[sp.Seq%uint64(len(r.recent))].Store(sp)

	d := sp.StageNs(StageServer)
	// A bounded number of admission attempts: find the current minimum
	// (empty slots count as minimal) and CAS it out if we are slower. A
	// lost race means a concurrent writer changed the table; one retry
	// keeps admission near-exact without unbounded spinning.
	for attempt := 0; attempt < 2; attempt++ {
		minIdx, minDur := -1, int64(-1)
		var minSpan *Span
		for i := range r.slow {
			cur := r.slow[i].Load()
			if cur == nil {
				minIdx, minDur, minSpan = i, -1, nil
				break
			}
			if cd := cur.StageNs(StageServer); minIdx == -1 || cd < minDur {
				minIdx, minDur, minSpan = i, cd, cur
			}
		}
		if minIdx == -1 || d <= minDur {
			return
		}
		if r.slow[minIdx].CompareAndSwap(minSpan, sp) {
			return
		}
	}
}

// Offered returns how many spans have ever been offered.
func (r *Reservoir) Offered() int64 {
	if r == nil {
		return 0
	}
	return int64(r.seq.Load())
}

// RecentCapacity returns the recent ring's size; SlowCapacity the slow
// table's.
func (r *Reservoir) RecentCapacity() int {
	if r == nil {
		return 0
	}
	return len(r.recent)
}

// SlowCapacity returns the slow table's size.
func (r *Reservoir) SlowCapacity() int {
	if r == nil {
		return 0
	}
	return len(r.slow)
}

// Snapshot returns the reservoir's current contents: the recent ring in
// sequence order (oldest first) and the slow table sorted slowest first.
// Each slot read is atomic, so every returned span is complete; as with
// the trace ring, a concurrent Offer may land between slot reads.
func (r *Reservoir) Snapshot() (recent, slow []Span) {
	if r == nil {
		return nil, nil
	}
	for i := range r.recent {
		if sp := r.recent[i].Load(); sp != nil {
			recent = append(recent, *sp)
		}
	}
	sort.Slice(recent, func(i, j int) bool { return recent[i].Seq < recent[j].Seq })
	for i := range r.slow {
		if sp := r.slow[i].Load(); sp != nil {
			slow = append(slow, *sp)
		}
	}
	sort.Slice(slow, func(i, j int) bool {
		return slow[i].StageNs(StageServer) > slow[j].StageNs(StageServer)
	})
	return recent, slow
}
