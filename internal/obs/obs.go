// Package obs is the server-side observability substrate: low-overhead
// latency histograms for the service hot path and a bounded ring of
// structured control-plane events for after-the-fact diagnosis.
//
// Two constraints shape the package. First, recording must be cheap
// enough to leave on in production — the T15 experiment budgets under 3%
// throughput cost — so histograms are lock-free, log-bucketed, and
// striped across cache-line-separated shards keyed by the recording
// session, and the hot path never allocates. Second, everything must be
// mergeable and snapshot-able while recording continues: snapshots walk
// the atomic buckets without stopping writers, accepting the usual
// monotonic-counter skew instead of a lock.
//
// The service layer owns the mapping from its structure onto these
// primitives: one OpHists (four histograms: enqueue, dequeue, batch,
// null-dequeue) per queue, one Ring per server. See internal/server for
// the endpoints (/metricsz, /tracez) that expose them.
package obs

import "time"

// Op names the per-queue latency class a sample is recorded under. The
// service layer maps request frames onto these: single-op enqueue and
// dequeue frames (coalesced or not) to OpEnqueue/OpDequeue, native batch
// frames to OpBatch, and dequeues of any flavor that found the queue
// empty to OpNullDequeue.
type Op int

// Latency classes. NumOps sizes per-queue histogram arrays.
const (
	OpEnqueue Op = iota
	OpDequeue
	OpBatch
	OpNullDequeue
	NumOps
)

// String returns the stable lower-case name used in JSON fields and
// /metricsz label values.
func (o Op) String() string {
	switch o {
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpBatch:
		return "batch"
	case OpNullDequeue:
		return "null_dequeue"
	default:
		return "unknown"
	}
}

// OpHists is one queue's latency histograms, one per Op class.
type OpHists struct {
	h [NumOps]Histogram
}

// NewOpHists returns a zeroed per-queue histogram set.
func NewOpHists() *OpHists { return &OpHists{} }

// Record adds one duration sample to the op's histogram. stripe is the
// caller's affinity hint (the service layer passes a per-session index)
// spreading concurrent recorders across cache lines.
func (q *OpHists) Record(op Op, stripe int, d time.Duration) {
	q.h[op].Record(stripe, int64(d))
}

// Hist returns the op's histogram (for collection and merging).
func (q *OpHists) Hist(op Op) *Histogram { return &q.h[op] }

// Summary collects and summarizes the op's histogram.
func (q *OpHists) Summary(op Op) LatencySummary {
	var a Accum
	q.h[op].CollectInto(&a)
	return a.Summary()
}
