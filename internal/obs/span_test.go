package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// testSpan builds a span whose server stage lasts serverNs, with the
// interior stamps spread deterministically inside it.
func testSpan(serverNs int64) *Span {
	base := int64(1e15)
	return &Span{
		Queue: "q", Op: "enqueue", Session: 1, ReqID: 7, Ops: 1,
		Read:        base,
		Admit:       base + serverNs/5,
		FabricStart: base + serverNs/5,
		FabricEnd:   base + 3*serverNs/5,
		ReplyWrite:  base + 4*serverNs/5,
		Flush:       base + serverNs,
	}
}

// TestSpanStageDurations checks StageNs against hand-computed stamps,
// including the negative-clamp and missing-flush rules.
func TestSpanStageDurations(t *testing.T) {
	sp := &Span{
		Read:        1000,
		Admit:       1400,
		FabricStart: 1450,
		FabricEnd:   1800,
		ReplyWrite:  1900,
		Flush:       2000,
	}
	for _, tc := range []struct {
		st   Stage
		want int64
	}{
		{StageWait, 400}, {StageFabric, 350}, {StageReply, 100},
		{StageFlush, 100}, {StageServer, 1000},
	} {
		if got := sp.StageNs(tc.st); got != tc.want {
			t.Errorf("StageNs(%s) = %d, want %d", tc.st, got, tc.want)
		}
	}

	// Unflushed span: flush stage reports 0, server stage falls back to
	// the reply-write boundary.
	sp.Flush = 0
	if got := sp.StageNs(StageFlush); got != 0 {
		t.Errorf("unflushed StageNs(flush) = %d, want 0", got)
	}
	if got := sp.StageNs(StageServer); got != 900 {
		t.Errorf("unflushed StageNs(server) = %d, want 900", got)
	}

	// A stamping anomaly that would go negative clamps to 0.
	sp.Admit = sp.Read - 50
	if got := sp.StageNs(StageWait); got != 0 {
		t.Errorf("negative wait clamped to %d, want 0", got)
	}
}

// TestSpanViewMs checks the /spanz millisecond rendering.
func TestSpanViewMs(t *testing.T) {
	sp := testSpan(10 * int64(time.Millisecond))
	v := sp.View()
	if v.WaitMs != 2 || v.FabricMs != 4 || v.ReplyMs != 2 || v.FlushMs != 2 || v.ServerMs != 10 {
		t.Fatalf("view durations wrong: %+v", v)
	}
	if v.Queue != "q" || v.Op != "enqueue" || v.ReqID != 7 {
		t.Fatalf("view metadata mangled: %+v", v)
	}
}

// TestReservoirSlowBias offers a stream of fast spans with a few slow
// outliers and checks that the slow table keeps exactly the outliers,
// slowest first, while the recent ring keeps the newest spans in order.
func TestReservoirSlowBias(t *testing.T) {
	r := NewReservoir(4, 3)
	slowDurs := map[int]int64{10: 900, 25: 700, 40: 800, 55: 950}
	for i := 0; i < 64; i++ {
		d := int64(i%7 + 1) // fast background traffic, 1..7 ns
		if s, ok := slowDurs[i]; ok {
			d = s
		}
		r.Offer(testSpan(d * int64(time.Microsecond)))
	}
	if got := r.Offered(); got != 64 {
		t.Fatalf("Offered() = %d, want 64", got)
	}
	recent, slow := r.Snapshot()
	if len(recent) != 4 {
		t.Fatalf("recent ring holds %d spans, want 4", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq != recent[i-1].Seq+1 {
			t.Fatalf("recent ring out of order: %d after %d", recent[i].Seq, recent[i-1].Seq)
		}
	}
	if recent[len(recent)-1].Seq != 63 {
		t.Fatalf("recent ring's newest seq = %d, want 63", recent[len(recent)-1].Seq)
	}
	if len(slow) != 3 {
		t.Fatalf("slow table holds %d spans, want 3", len(slow))
	}
	// The three slowest of the four outliers, slowest first.
	wantUs := []int64{950, 900, 800}
	for i, sp := range slow {
		if got := sp.StageNs(StageServer); got != wantUs[i]*int64(time.Microsecond) {
			t.Fatalf("slow[%d] server stage = %dns, want %dus (table must keep the slowest, slowest first)",
				i, got, wantUs[i])
		}
	}
}

// TestReservoirConcurrentOffer hammers one reservoir from many goroutines
// with interleaved snapshots; under -race this proves Offer/Snapshot are
// race-free, and the admitted invariants must hold: every snapshotted
// span complete, recent ring strictly ordered, slow table sorted.
func TestReservoirConcurrentOffer(t *testing.T) {
	r := NewReservoir(32, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Offer(testSpan(int64(g*500+i+1) * 100))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Offered(); got != 4000 {
		t.Fatalf("Offered() = %d, want 4000", got)
	}
	recent, slow := r.Snapshot()
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq <= recent[i-1].Seq {
			t.Fatalf("recent ring out of order: seq %d after %d", recent[i].Seq, recent[i-1].Seq)
		}
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].StageNs(StageServer) > slow[i-1].StageNs(StageServer) {
			t.Fatalf("slow table not sorted slowest-first at %d", i)
		}
	}
	for _, sp := range append(recent, slow...) {
		if sp.Flush == 0 || sp.Read == 0 {
			t.Fatalf("snapshot returned a torn/incomplete span: %+v", sp)
		}
	}
}

// TestNilReservoirIsNoop checks the tracing-disabled path: a nil
// reservoir accepts every call, so service call sites need no guards.
func TestNilReservoirIsNoop(t *testing.T) {
	var r *Reservoir
	r.Offer(testSpan(100))
	recent, slow := r.Snapshot()
	if recent != nil || slow != nil || r.Offered() != 0 ||
		r.RecentCapacity() != 0 || r.SlowCapacity() != 0 {
		t.Fatal("nil reservoir must behave as empty")
	}
}

// TestStageHistsRecordSpan records a span and checks every stage's
// histogram saw exactly its duration (within quantization).
func TestStageHistsRecordSpan(t *testing.T) {
	h := NewStageHists()
	sp := testSpan(10 * int64(time.Millisecond))
	h.RecordSpan(3, sp)
	for st := Stage(0); st < NumStages; st++ {
		s := h.Summary(st)
		if s.Count != 1 {
			t.Fatalf("stage %s count = %d, want 1", st, s.Count)
		}
		wantMs := float64(sp.StageNs(st)) / 1e6
		if s.MaxMs < wantMs || s.MaxMs > wantMs*(1+2.0/minorCount) {
			t.Fatalf("stage %s max = %.3fms, want ~%.3fms", st, s.MaxMs, wantMs)
		}
	}
	// Nil set: no-op, call sites need no guard.
	var nilH *StageHists
	nilH.RecordSpan(0, sp)
}

// TestRecordClampsNonPositive checks the degenerate-duration guard: zero
// and negative samples land in bucket 0 and never corrupt count or sum.
func TestRecordClampsNonPositive(t *testing.T) {
	var h Histogram
	h.Record(0, 0)
	h.Record(1, -5)
	h.Record(2, -1<<62)
	var a Accum
	h.CollectInto(&a)
	if a.count != 3 {
		t.Fatalf("count = %d, want 3", a.count)
	}
	if a.sum != 0 {
		t.Fatalf("sum = %d, want 0 (negative samples must clamp, not subtract)", a.sum)
	}
	if a.counts[0] != 3 {
		t.Fatalf("bucket 0 holds %d samples, want all 3", a.counts[0])
	}
	s := a.Summary()
	if s.P50Ms != 0 || s.MaxMs != 0 {
		t.Fatalf("summary of clamped samples must be all-zero, got %+v", s)
	}
}

// TestBucketOctaveBoundaries walks the power-of-two octave edges: for
// each k, the samples 2^k-1, 2^k, and 2^k+1 must map to monotonically
// non-decreasing buckets whose bounds admit them — the off-by-one
// territory of the log-linear index arithmetic.
func TestBucketOctaveBoundaries(t *testing.T) {
	for k := uint(1); k < 62; k++ {
		edge := int64(1) << k
		samples := []int64{edge - 1, edge, edge + 1}
		prev := -1
		for _, v := range samples {
			i := bucketIndex(v)
			if i < prev {
				t.Fatalf("bucketIndex not monotone at octave 2^%d: index(%d) = %d after %d", k, v, i, prev)
			}
			prev = i
			if i < numBuckets-1 && bucketUpper(i) < v {
				t.Fatalf("octave 2^%d: value %d in bucket %d whose upper %d cannot admit it",
					k, v, i, bucketUpper(i))
			}
			if i > 0 && bucketUpper(i-1) >= v {
				t.Fatalf("octave 2^%d: value %d in bucket %d but fits bucket %d",
					k, v, i, i-1)
			}
		}
	}
}

// TestEscapeLabel checks the Prometheus label escaping rules one by one
// and composed: backslash first (it must not re-escape the escapes),
// double quote, and newline.
func TestEscapeLabel(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`quo"te`, `quo\"te`},
		{"new\nline", `new\nline`},
		{`all"three` + "\n" + `of\them`, `all\"three\nof\\them`},
		{`\`, `\\`},
		{"", ""},
	} {
		if got := EscapeLabel(tc.in); got != tc.want {
			t.Errorf("EscapeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// The escaped form must contain no raw newline or unescaped quote —
	// the properties a Prometheus text-format parser depends on.
	hostile := "q\"ueue\nwith\\everything"
	esc := EscapeLabel(hostile)
	if strings.ContainsRune(esc, '\n') {
		t.Errorf("escaped label still contains a raw newline: %q", esc)
	}
}
