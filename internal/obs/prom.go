package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text-format (version 0.0.4) rendering helpers. The service
// layer composes these into its /metricsz exposition; they live here so
// the escaping and summary-layout rules sit next to the histogram they
// expose.

// EscapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func EscapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteMetricHeader writes the # HELP / # TYPE preamble for a metric.
func WriteMetricHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteCounter writes one counter (or gauge) sample line. labels is the
// pre-rendered label set without braces ("" for none).
func WriteCounter(w io.Writer, name, labels string, v any) {
	if labels == "" {
		fmt.Fprintf(w, "%s %v\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %v\n", name, labels, v)
}

// WriteSummary renders a LatencySummary as a Prometheus summary metric in
// seconds: quantile-labelled samples plus _sum and _count. labels is the
// pre-rendered shared label set without braces ("" for none).
func WriteSummary(w io.Writer, name, labels string, s LatencySummary) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, q := range []struct {
		q  string
		ms float64
	}{{"0.5", s.P50Ms}, {"0.9", s.P90Ms}, {"0.99", s.P99Ms}, {"0.999", s.P999Ms}} {
		fmt.Fprintf(w, "%s{%s%squantile=\"%s\"} %g\n", name, labels, sep, q.q, q.ms/1e3)
	}
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, s.SumMs/1e3, name, s.Count)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, s.SumMs/1e3, name, labels, s.Count)
}
