package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram geometry: log-linear buckets in the HDR style. Values (int64
// nanoseconds) below minorCount land in exact unit buckets; above, each
// power-of-two octave is split into minorCount linear sub-buckets, so the
// relative quantization error is bounded by 1/minorCount (~12.5%) at any
// magnitude. majorGroups octaves cover 8 ns ... 2^42 ns (~73 min);
// larger samples clamp into the last bucket.
const (
	minorBits   = 3
	minorCount  = 1 << minorBits
	majorGroups = 40
	numBuckets  = (majorGroups + 1) * minorCount

	// NumStripes is the contention-spreading factor: concurrent recorders
	// hash (by session) onto independent copies of the bucket array and
	// snapshots merge them. Power of two so stripe selection is a mask.
	NumStripes = 8

	stripeMask = NumStripes - 1
)

// histStripe is one recorder lane: an independent bucket array plus
// count/sum, updated only with atomic adds so recording is lock-free and
// wait-free. The trailing pad keeps the next stripe's hot first buckets
// off this stripe's last cache line.
type histStripe struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	_      [64]byte
}

// Histogram is a lock-free, mergeable, log-bucketed latency histogram.
// The zero value is ready to use. Record and CollectInto may run
// concurrently; a concurrent snapshot sees each sample's bucket, count,
// and sum independently (the usual monotonic skew), never torn values.
type Histogram struct {
	stripes [NumStripes]histStripe
}

// Record adds one sample of v nanoseconds (negative samples clamp to 0).
// stripe may be any int; it is masked onto the stripe array.
func (h *Histogram) Record(stripe int, v int64) {
	s := &h.stripes[stripe&stripeMask]
	if v < 0 {
		v = 0
	}
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// bucketIndex maps a non-negative sample to its bucket.
func bucketIndex(v int64) int {
	if v < minorCount {
		return int(v)
	}
	major := bits.Len64(uint64(v)) - 1 // floor(log2 v) >= minorBits
	idx := (major-minorBits+1)<<minorBits + int((v>>(major-minorBits))&(minorCount-1))
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the largest sample value a bucket admits, the value
// snapshots report for percentiles (conservative: a reported percentile
// is >= the true one, within the quantization bound).
func bucketUpper(i int) int64 {
	if i < minorCount {
		return int64(i)
	}
	g := i >> minorBits // octave group, >= 1
	m := int64(i & (minorCount - 1))
	major := g + minorBits - 1
	width := int64(1) << (major - minorBits)
	return int64(1)<<major + (m+1)*width - 1
}

// Accum is a plain (single-goroutine) accumulator that histograms are
// collected and merged into: collect several queues' histograms into one
// Accum for an aggregate view, then Summary it.
type Accum struct {
	counts [numBuckets]int64
	count  int64
	sum    int64
}

// CollectInto merges the histogram's current contents into a. Recording
// may continue concurrently; the collected view is a consistent-enough
// snapshot for monitoring (bucket totals may trail count by in-flight
// samples).
func (h *Histogram) CollectInto(a *Accum) {
	for s := range h.stripes {
		st := &h.stripes[s]
		for i := range st.counts {
			a.counts[i] += st.counts[i].Load()
		}
		a.count += st.count.Load()
		a.sum += st.sum.Load()
	}
}

// LatencySummary is the stable JSON encoding of one histogram's snapshot:
// sample count, total, and the percentile ladder, all in milliseconds.
// MaxMs is the upper bound of the highest occupied bucket (within the
// quantization error of the true maximum).
type LatencySummary struct {
	Count  int64   `json:"count"`
	SumMs  float64 `json:"sum_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

const nsPerMs = 1e6

// Summary derives the percentile ladder from the accumulated buckets by
// nearest-rank over the cumulative counts.
func (a *Accum) Summary() LatencySummary {
	s := LatencySummary{Count: a.count, SumMs: float64(a.sum) / nsPerMs}
	// The bucket array is authoritative for ranks; count can trail it when
	// collected mid-record, so rank against the buckets' own total.
	var total int64
	for _, c := range a.counts {
		total += c
	}
	if total == 0 {
		return s
	}
	ranks := [4]int64{
		(total*50 + 99) / 100,
		(total*90 + 99) / 100,
		(total*99 + 99) / 100,
		(total*999 + 999) / 1000,
	}
	out := [4]*float64{&s.P50Ms, &s.P90Ms, &s.P99Ms, &s.P999Ms}
	var cum int64
	next := 0
	for i, c := range a.counts {
		if c == 0 {
			continue
		}
		cum += c
		for next < len(ranks) && cum >= ranks[next] {
			*out[next] = float64(bucketUpper(i)) / nsPerMs
			next++
		}
		s.MaxMs = float64(bucketUpper(i)) / nsPerMs
	}
	return s
}
