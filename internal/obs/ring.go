package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Event is one structured control-plane occurrence: a resize, an
// autoscaler decision (with the watermark inputs it decided on), a
// session or queue lifecycle transition, a sampled backpressure burst.
// The encoding is the stable JSON served by /tracez.
type Event struct {
	Seq   uint64         `json:"seq"`
	Time  time.Time      `json:"time"`
	Type  string         `json:"type"`
	Queue string         `json:"queue,omitempty"`
	Data  map[string]any `json:"data,omitempty"`
}

// Ring is a bounded, lock-free ring of control-plane events: writers
// reserve a slot with one atomic add and publish the event with one
// atomic pointer store, so tracing never blocks the path that emits the
// event. When the ring wraps, the oldest events are overwritten — the
// ring answers "what did the control plane do recently", not "ever".
//
// Control-plane events are rare next to data operations; hot sources
// (BUSY replies, autoscaler hold decisions) are sampled by their emitters
// before they reach the ring.
type Ring struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64 // next sequence number == events recorded
}

// NewRing returns a ring holding the last n events (n is floored at 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n)}
}

// Add records one event. A nil ring (tracing disabled) is a no-op, so
// call sites need no guard. data is retained; pass a fresh map.
func (r *Ring) Add(typ, queue string, data map[string]any) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1) - 1
	ev := &Event{Seq: seq, Time: time.Now(), Type: typ, Queue: queue, Data: data}
	r.slots[seq%uint64(len(r.slots))].Store(ev)
}

// Recorded returns how many events have ever been added.
func (r *Ring) Recorded() int64 {
	if r == nil {
		return 0
	}
	return int64(r.seq.Load())
}

// Capacity returns the ring size.
func (r *Ring) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Events snapshots the ring's current contents in sequence order. A
// concurrent Add may overwrite a slot mid-walk; each slot read is atomic,
// so the result is always a set of complete events, sorted by Seq.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
