// Package shard implements a sharded queue fabric: k independent wait-free
// FIFO queues (the paper's unbounded queue from package core, or the
// space-bounded variant from package bounded) behind a single frontend that
// multiplies root bandwidth by the shard count.
//
// The Naderibeni-Ruppert queue funnels all p processes through one tournament
// tree, so a single root CAS location bounds total throughput no matter how
// large p grows. The fabric trades global FIFO order for scalability: each
// element is FIFO-ordered relative to the other elements of its shard, but
// elements of different shards may be dequeued out of their enqueue order.
// Because every handle routes all of its enqueues to a single home shard,
// per-producer order is still preserved for the lifetime of a lease.
//
// Dequeues use d-random-choice guided by a lock-free nonempty-shard bitmap:
// a dequeuer samples up to d set bits, takes the candidate with the largest
// estimated backlog, and falls back to a deterministic full sweep before
// reporting the fabric empty. Every sub-operation is wait-free and the sweep
// is bounded by k, so fabric operations are wait-free with O(d + k)
// sub-operations in the worst case and O(1) in the common case.
//
// Unlike the paper's model — a fixed set of p processes, each statically
// bound to handle i — the fabric leases its fixed handle slots to arbitrary
// goroutines through a dynamic registry:
//
//	q, err := shard.New[string](8)              // 8 shards
//	h, err := q.Acquire()                       // lease a handle slot
//	defer h.Release()                           // recycle it
//	h.Enqueue("job")
//	v, ok := h.Dequeue()
//
// The registry is a CAS-claimed free list, so Acquire and Release are
// lock-free and safe to call from any goroutine at any time.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Backend selects the per-shard queue implementation.
type Backend string

// Supported backends.
const (
	// BackendCore uses the unbounded-space queue (paper Sections 3-5).
	BackendCore Backend = "core"
	// BackendBounded uses the space-bounded queue (paper Section 6).
	BackendBounded Backend = "bounded"
)

// Errors reported by the fabric.
var (
	ErrBadShards     = errors.New("shard: shard count must be at least 1")
	ErrBadHandles    = errors.New("shard: max handle count must be at least 1")
	ErrBadChoices    = errors.New("shard: dequeue choice count must be at least 1")
	ErrBadBackend    = errors.New("shard: unknown backend")
	ErrNoFreeHandles = errors.New("shard: all handle slots are leased")
	ErrClosed        = errors.New("shard: queue is closed")
)

// subHandle is the per-shard handle surface the fabric needs; both
// core.Handle and bounded.Handle satisfy it. The batch methods install one
// multi-op leaf block per call, which is what lets the fabric route a whole
// client batch through a single O(log p) propagation pass.
type subHandle[T any] interface {
	Enqueue(v T)
	EnqueueBatch(vs []T)
	Dequeue() (T, bool)
	DequeueBatch(n int) ([]T, int)
	SetCounter(c *metrics.Counter)
}

// subQueue is the per-shard queue surface the fabric needs.
type subQueue[T any] interface {
	Len() int
	handle(i int) (subHandle[T], error)
}

type coreShard[T any] struct{ q *core.Queue[T] }

func (s coreShard[T]) Len() int { return s.q.Len() }
func (s coreShard[T]) handle(i int) (subHandle[T], error) {
	return s.q.Handle(i)
}

type boundedShard[T any] struct{ q *bounded.Queue[T] }

func (s boundedShard[T]) Len() int { return s.q.Len() }
func (s boundedShard[T]) handle(i int) (subHandle[T], error) {
	return s.q.Handle(i)
}

// shardState is one shard plus its routing metadata. The shard's backlog is
// read straight from the underlying queue's root (Len is O(1) and exact as
// of the last root propagation), so the fabric adds no per-operation atomic
// of its own: enqueue/dequeue tallies are buffered per handle and folded in
// on Release.
type shardState[T any] struct {
	q        subQueue[T]
	enqueues atomic.Int64
	dequeues atomic.Int64
	// Pad to a multiple of the cache line so neighbouring shards' tallies
	// never false-share: cross-shard independence is the whole point of
	// the fabric.
	_ [128 - (8*2+16)%128]byte
}

// len returns the shard's backlog as of its queue's last root propagation.
func (s *shardState[T]) len() int { return s.q.Len() }

// Option configures New.
type Option func(*config)

type config struct {
	backend       Backend
	maxHandles    int
	maxHandlesSet bool
	choices       int
	gcInterval    int64
	perShard      bool
}

// WithBackend selects the per-shard queue implementation (default
// BackendCore).
func WithBackend(b Backend) Option {
	return func(c *config) { c.backend = b }
}

// WithMaxHandles sets the number of leasable handle slots (default
// max(16, 4*GOMAXPROCS)). Each slot owns one handle in every shard.
func WithMaxHandles(n int) Option {
	return func(c *config) { c.maxHandles, c.maxHandlesSet = n, true }
}

// WithDequeueChoices sets d, the number of nonempty shards a dequeue samples
// before committing to the fullest (default 2).
func WithDequeueChoices(d int) Option {
	return func(c *config) { c.choices = d }
}

// WithGCInterval forwards a garbage-collection interval to BackendBounded
// shards; it is ignored by BackendCore.
func WithGCInterval(g int64) Option {
	return func(c *config) { c.gcInterval = g }
}

// WithShardMetrics attaches a fresh metrics.Counter per shard to every
// leased handle and folds the counts into per-shard totals when the handle
// is released, so ShardSummaries can report the paper's cost model per
// shard. Handle.SetCounter overrides this for a given lease.
func WithShardMetrics() Option {
	return func(c *config) { c.perShard = true }
}

// Queue is a sharded queue fabric. It is safe for concurrent use; operate on
// it through handles leased with Acquire.
type Queue[T any] struct {
	shards []shardState[T]
	bitmap bitmap
	reg    registry
	cfg    config
	closed atomic.Bool
	// nextHome rotates home-shard assignment across leases. Deriving homes
	// from slot numbers would skew routing: the registry free list is LIFO,
	// so sequential short-lived leases would all reuse one slot — and one
	// shard.
	nextHome atomic.Uint64

	// mu guards the per-shard counter totals that released handles merge
	// into (only when WithShardMetrics is set). Release is cold path.
	mu            sync.Mutex
	shardCounters []*metrics.Counter
}

// New creates a fabric of shards independent queues. Each of the
// cfg.maxHandles handle slots owns one sub-handle in every shard.
func New[T any](shards int, opts ...Option) (*Queue[T], error) {
	cfg := config{
		backend: BackendCore,
		choices: 2,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.maxHandlesSet {
		cfg.maxHandles = 4 * runtime.GOMAXPROCS(0)
		if cfg.maxHandles < 16 {
			cfg.maxHandles = 16
		}
	}
	if shards < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadShards, shards)
	}
	if cfg.maxHandles < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadHandles, cfg.maxHandles)
	}
	if cfg.choices < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadChoices, cfg.choices)
	}
	q := &Queue[T]{
		shards:        make([]shardState[T], shards),
		cfg:           cfg,
		shardCounters: make([]*metrics.Counter, shards),
	}
	for j := range q.shards {
		sub, err := newSubQueue[T](cfg)
		if err != nil {
			return nil, err
		}
		q.shards[j].q = sub
		q.shardCounters[j] = &metrics.Counter{}
	}
	q.bitmap.init(shards)
	q.reg.init(cfg.maxHandles)
	return q, nil
}

func newSubQueue[T any](cfg config) (subQueue[T], error) {
	switch cfg.backend {
	case BackendCore:
		cq, err := core.New[T](cfg.maxHandles)
		if err != nil {
			return nil, err
		}
		return coreShard[T]{q: cq}, nil
	case BackendBounded:
		var opts []bounded.Option
		if cfg.gcInterval > 0 {
			opts = append(opts, bounded.WithGCInterval(cfg.gcInterval))
		}
		bq, err := bounded.New[T](cfg.maxHandles, opts...)
		if err != nil {
			return nil, err
		}
		return boundedShard[T]{q: bq}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrBadBackend, cfg.backend)
	}
}

// Shards returns the shard count k.
func (q *Queue[T]) Shards() int { return len(q.shards) }

// MaxHandles returns the number of leasable handle slots.
func (q *Queue[T]) MaxHandles() int { return q.cfg.maxHandles }

// Backend returns the per-shard queue implementation in use.
func (q *Queue[T]) Backend() Backend { return q.cfg.backend }

// Acquire leases a handle slot to the calling goroutine. The returned handle
// must be used by one goroutine at a time and returned with Release; until
// then the slot is unavailable to other callers. Acquire is lock-free and
// returns ErrNoFreeHandles when every slot is leased.
func (q *Queue[T]) Acquire() (*Handle[T], error) {
	slot, ok := q.reg.acquire()
	if !ok {
		return nil, ErrNoFreeHandles
	}
	h := &Handle[T]{
		q:    q,
		slot: slot,
		home: int((q.nextHome.Add(1) - 1) % uint64(len(q.shards))),
		rng:  rngSeed(slot),
		sub:  make([]subHandle[T], len(q.shards)),
		deqs: make([]int64, len(q.shards)),
	}
	for j := range q.shards {
		sh, err := q.shards[j].q.handle(slot)
		if err != nil {
			// Slots are always < maxHandles, so this is unreachable; recycle
			// the slot rather than leak it if an invariant ever breaks.
			q.reg.release(slot)
			return nil, err
		}
		h.sub[j] = sh
	}
	if q.cfg.perShard {
		h.counters = make([]*metrics.Counter, len(q.shards))
		for j := range h.counters {
			h.counters[j] = &metrics.Counter{}
			h.sub[j].SetCounter(h.counters[j])
		}
	} else {
		// Sub-handles are recycled across leases; clear any counter left
		// behind by the previous lessee.
		for j := range h.sub {
			h.sub[j].SetCounter(nil)
		}
	}
	return h, nil
}

// Close marks the fabric closed: subsequent Enqueues return ErrClosed while
// Dequeue and Drain keep working, so consumers can drain the backlog.
// Enqueues that began before Close completed may still be admitted. Close is
// idempotent.
func (q *Queue[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// Len returns the fabric's total backlog estimate: the sum of the per-shard
// root sizes. Like the underlying queues' Len, each addend was exact at
// some recent moment but may lag concurrent operations.
func (q *Queue[T]) Len() int {
	total := 0
	for j := range q.shards {
		total += q.shards[j].len()
	}
	return total
}

// ShardStat is a point-in-time view of one shard's traffic. The JSON field
// names are a stable encoding consumed by the service layer's /statsz
// endpoint; renaming them is a wire-format change.
type ShardStat struct {
	Shard    int   `json:"shard"`
	Len      int   `json:"len"`      // backlog as of the shard's last root propagation
	Enqueues int64 `json:"enqueues"` // completed enqueues routed to this shard
	Dequeues int64 `json:"dequeues"` // successful dequeues served by this shard
}

// ShardStats returns per-shard routing statistics, one entry per shard. Len
// is live; the Enqueues/Dequeues tallies are folded in when a lease is
// Released (keeping them off the per-operation hot path), so live handles'
// traffic is not yet included.
func (q *Queue[T]) ShardStats() []ShardStat {
	out := make([]ShardStat, len(q.shards))
	for j := range q.shards {
		out[j] = ShardStat{
			Shard:    j,
			Len:      q.shards[j].len(),
			Enqueues: q.shards[j].enqueues.Load(),
			Dequeues: q.shards[j].dequeues.Load(),
		}
	}
	return out
}

// ShardSummaries returns the paper's cost-model summary per shard,
// aggregated from handles that have been Released (live handles' counters
// cannot be read safely). It returns meaningful data only when the fabric
// was built WithShardMetrics.
func (q *Queue[T]) ShardSummaries() []metrics.Summary {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]metrics.Summary, len(q.shards))
	for j, c := range q.shardCounters {
		out[j] = metrics.Summarize(c)
	}
	return out
}

// RegistryStats is a point-in-time view of handle-lease churn through the
// dynamic registry. Like ShardStat, its JSON encoding is stable.
type RegistryStats struct {
	Capacity int   `json:"capacity"` // total leasable slots
	InUse    int   `json:"in_use"`   // slots currently leased (approximate under churn)
	Acquires int64 `json:"acquires"` // completed Acquire calls over the fabric's lifetime
	Releases int64 `json:"releases"` // completed Release calls
	Failures int64 `json:"failures"` // Acquire calls that found no free slot
}

// RegistryStats returns lease-churn statistics for the handle registry.
// InUse is derived from a free-list walk and is only exact while no
// Acquire/Release is in flight; the churn tallies are always exact.
func (q *Queue[T]) RegistryStats() RegistryStats {
	return RegistryStats{
		Capacity: q.cfg.maxHandles,
		InUse:    q.cfg.maxHandles - q.reg.free(),
		Acquires: q.reg.acquires.Load(),
		Releases: q.reg.releases.Load(),
		Failures: q.reg.failures.Load(),
	}
}

// Snapshot is a stable JSON-encodable view of the whole fabric: identity,
// aggregate backlog, per-shard routing traffic, lease churn, and (when the
// fabric was built WithShardMetrics) per-shard cost-model summaries.
type Snapshot struct {
	Backend    Backend           `json:"backend"`
	Shards     int               `json:"shards"`
	MaxHandles int               `json:"max_handles"`
	Closed     bool              `json:"closed"`
	Len        int               `json:"len"`
	ShardStats []ShardStat       `json:"shard_stats"`
	Registry   RegistryStats     `json:"registry"`
	Summaries  []metrics.Summary `json:"summaries,omitempty"`
}

// Snapshot captures the fabric's current statistics. Cost-model summaries
// are included only when the fabric was built WithShardMetrics (they are
// all-zero otherwise and would only bloat the encoding).
func (q *Queue[T]) Snapshot() Snapshot {
	s := Snapshot{
		Backend:    q.cfg.backend,
		Shards:     len(q.shards),
		MaxHandles: q.cfg.maxHandles,
		Closed:     q.closed.Load(),
		Len:        q.Len(),
		ShardStats: q.ShardStats(),
		Registry:   q.RegistryStats(),
	}
	if q.cfg.perShard {
		s.Summaries = q.ShardSummaries()
	}
	return s
}

// mergeShardCounters folds a released handle's per-shard counters into the
// fabric totals.
func (q *Queue[T]) mergeShardCounters(counters []*metrics.Counter) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for j, c := range counters {
		q.shardCounters[j].Merge(c)
	}
}
