// Package shard implements a sharded queue fabric: k independent wait-free
// FIFO queues (the paper's unbounded queue from package core, or the
// space-bounded variant from package bounded) behind a single frontend that
// multiplies root bandwidth by the shard count.
//
// The Naderibeni-Ruppert queue funnels all p processes through one tournament
// tree, so a single root CAS location bounds total throughput no matter how
// large p grows. The fabric trades global FIFO order for scalability: each
// element is FIFO-ordered relative to the other elements of its shard, but
// elements of different shards may be dequeued out of their enqueue order.
// Because every handle routes all of its enqueues to a single home shard,
// per-producer order is still preserved for the lifetime of a lease.
//
// When the fabric has k >= 2 shards, an enqueue whose home shard is empty
// may additionally be *eliminated*: handed directly to a concurrent
// dequeuer through a per-shard exchange slot without touching the ordering
// tree at all (see exchange.go). The pair linearizes at the hand-off, which
// is legal under exactly the relaxed cross-shard order above and never
// reorders one producer's elements; WithPairing(false) restores strict
// tree-only routing.
//
// Dequeues use d-random-choice guided by a lock-free nonempty-shard bitmap:
// a dequeuer samples up to d set bits, takes the candidate with the largest
// estimated backlog, and falls back to a deterministic full sweep before
// reporting the fabric empty. Every sub-operation is wait-free and the sweep
// is bounded by k, so fabric operations are wait-free with O(d + k)
// sub-operations in the worst case and O(1) in the common case.
//
// Unlike the paper's model — a fixed set of p processes, each statically
// bound to handle i — the fabric leases its fixed handle slots to arbitrary
// goroutines through a dynamic registry:
//
//	q, err := shard.New[string](8)              // 8 shards
//	h, err := q.Acquire()                       // lease a handle slot
//	defer h.Release()                           // recycle it
//	h.Enqueue("job")
//	v, ok := h.Dequeue()
//
// The registry is a CAS-claimed free list, so Acquire and Release are
// lock-free and safe to call from any goroutine at any time.
//
// # Elasticity
//
// The shard set itself is not fixed either: it lives behind an immutable,
// epoch-numbered topology reached through one atomic pointer, and Resize
// installs a successor epoch while operations continue. A grow appends
// fresh shards (nothing moves); a shrink retires the suffix, re-homes the
// producers that lived there under the deterministic home-mod-k rule, and
// drains the retired shards' residual elements into the survivors in their
// shard-FIFO order — exact conservation, per-producer FIFO intact across
// the epoch boundary. Exactly two operations can block, both only while a
// shrink's migration is in flight: the first enqueue of a re-homed
// producer (waiting for its old shard's drain so its old elements stay
// ahead of its new ones), and a dequeue whose sweep found nothing
// (waiting for the drain rather than falsely certifying an occupied
// fabric empty). Everything else stays wait-free through the swap.
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Backend selects the per-shard queue implementation.
type Backend string

// Supported backends.
const (
	// BackendCore uses the unbounded-space queue (paper Sections 3-5).
	BackendCore Backend = "core"
	// BackendBounded uses the space-bounded queue (paper Section 6).
	BackendBounded Backend = "bounded"
)

// Errors reported by the fabric.
var (
	ErrBadShards     = errors.New("shard: shard count must be at least 1")
	ErrBadHandles    = errors.New("shard: max handle count must be at least 1")
	ErrBadChoices    = errors.New("shard: dequeue choice count must be at least 1")
	ErrBadBackend    = errors.New("shard: unknown backend")
	ErrNoFreeHandles = errors.New("shard: all handle slots are leased")
	ErrClosed        = errors.New("shard: queue is closed")
)

// subHandle is the per-shard handle surface the fabric needs; both
// core.Handle and bounded.Handle satisfy it. The batch methods install one
// multi-op leaf block per call, which is what lets the fabric route a whole
// client batch through a single O(log p) propagation pass.
type subHandle[T any] interface {
	Enqueue(v T)
	EnqueueBatch(vs []T)
	Dequeue() (T, bool)
	DequeueBatch(n int) ([]T, int)
	DequeueBatchAppend(dst []T, n int) ([]T, int)
	SetCounter(c *metrics.Counter)
}

// subQueue is the per-shard queue surface the fabric needs.
type subQueue[T any] interface {
	Len() int
	handle(i int) (subHandle[T], error)
}

type coreShard[T any] struct{ q *core.Queue[T] }

func (s coreShard[T]) Len() int { return s.q.Len() }
func (s coreShard[T]) handle(i int) (subHandle[T], error) {
	return s.q.Handle(i)
}

type boundedShard[T any] struct{ q *bounded.Queue[T] }

func (s boundedShard[T]) Len() int { return s.q.Len() }
func (s boundedShard[T]) handle(i int) (subHandle[T], error) {
	return s.q.Handle(i)
}

// shardState is one shard plus its routing metadata. Shards are held by
// pointer inside topologies, so a shard that survives a Resize keeps its
// identity (and its tallies) across epochs. The shard's backlog is read
// straight from the underlying queue's root (Len is O(1) and exact as of
// the last root propagation), so the fabric adds no per-operation atomic of
// its own: enqueue/dequeue tallies are buffered per handle and folded in on
// Release or on an epoch refresh.
type shardState[T any] struct {
	q        subQueue[T]
	counter  *metrics.Counter // cost-model totals folded in under Queue.mu (WithShardMetrics)
	enqueues atomic.Int64
	dequeues atomic.Int64
	// mergedInto points at the shard that inherited this shard's recorded
	// history when a shrink retired it (nil while the shard is live). Late
	// folds from handles that collected tallies against a retired shard
	// follow the chain, so lifetime totals survive any resize schedule.
	mergedInto atomic.Pointer[shardState[T]]
	// pairs counts enqueue/dequeue pairs eliminated at this shard's
	// exchange slots without touching the ordering tree.
	pairs atomic.Int64
	// Pad to a multiple of the cache line so neighbouring shards' tallies
	// never false-share: cross-shard independence is the whole point of
	// the fabric.
	_ [128 - (16+8+8*2+8+8)%128]byte
	// exch is the shard's elimination slot array; each slot is itself
	// cache-line padded (exchange.go), so it rides after the pad.
	exch [pairSlots]pairSlot[T]
}

// len returns the shard's backlog as of its queue's last root propagation.
func (s *shardState[T]) len() int { return s.q.Len() }

// sink follows the merged-into chain to the state that currently owns
// this shard's accumulated history: itself while live, its migration
// destination (transitively) once retired. The chain is time-ordered —
// a retired shard always merges into a survivor of a strictly newer
// epoch — so it is acyclic and short.
func (s *shardState[T]) sink() *shardState[T] {
	for {
		next := s.mergedInto.Load()
		if next == nil {
			return s
		}
		s = next
	}
}

// Option configures New.
type Option func(*config)

type config struct {
	backend       Backend
	maxHandles    int
	maxHandlesSet bool
	choices       int
	gcInterval    int64
	perShard      bool
	pairing       bool
}

// WithBackend selects the per-shard queue implementation (default
// BackendCore).
func WithBackend(b Backend) Option {
	return func(c *config) { c.backend = b }
}

// WithMaxHandles sets the number of leasable handle slots (default
// max(16, 4*GOMAXPROCS)). Each slot owns one handle in every shard.
func WithMaxHandles(n int) Option {
	return func(c *config) { c.maxHandles, c.maxHandlesSet = n, true }
}

// WithDequeueChoices sets d, the number of nonempty shards a dequeue samples
// before committing to the fullest (default 2).
func WithDequeueChoices(d int) Option {
	return func(c *config) { c.choices = d }
}

// WithGCInterval forwards a garbage-collection interval to BackendBounded
// shards; it is ignored by BackendCore.
func WithGCInterval(g int64) Option {
	return func(c *config) { c.gcInterval = g }
}

// WithShardMetrics attaches a fresh metrics.Counter per shard to every
// leased handle and folds the counts into per-shard totals when the handle
// is released, so ShardSummaries can report the paper's cost model per
// shard. Handle.SetCounter overrides this for a given lease.
func WithShardMetrics() Option {
	return func(c *config) { c.perShard = true }
}

// WithPairing enables or disables the enqueue/dequeue elimination fast path
// (exchange.go); it defaults to enabled. Elimination linearizes a matched
// pair at the hand-off instant, which respects per-producer FIFO and the
// fabric's documented relaxed cross-shard order, but not a strict global
// FIFO over all shards — callers that certify the fabric against a strict
// sequential queue model (or need exact cross-producer order at k >= 2)
// should disable it. With k = 1 pairing never engages regardless.
func WithPairing(enabled bool) Option {
	return func(c *config) { c.pairing = enabled }
}

// Queue is a sharded queue fabric. It is safe for concurrent use; operate on
// it through handles leased with Acquire. The shard set is elastic: Resize
// installs a new epoch-numbered topology while operations continue.
type Queue[T any] struct {
	topo   atomic.Pointer[topology[T]]
	reg    registry
	cfg    config
	closed atomic.Bool
	// nextHome rotates home-shard assignment across leases. Deriving homes
	// from slot numbers would skew routing: the registry free list is LIFO,
	// so sequential short-lived leases would all reuse one slot — and one
	// shard.
	nextHome atomic.Uint64

	// homes is the per-slot persistent home shard. Handles read it every
	// operation (through effHome); Resize rewrites entries under the
	// deterministic home-mod-k rule when a shrink retires their shard, so a
	// slot's home survives any number of epochs without per-handle history.
	homes []padInt64

	// slotEpochs is the per-slot published operation epoch Resize's grace
	// period waits on (see topology.go).
	slotEpochs []slotEpoch

	// resizeMu serializes Resize calls; the data plane never takes it.
	resizeMu sync.Mutex

	grows    atomic.Int64 // Resize calls that added shards
	shrinks  atomic.Int64 // Resize calls that removed shards
	migrated atomic.Int64 // elements drained from retired shards

	// mu guards the per-shard counter totals that released handles merge
	// into (only when WithShardMetrics is set). Release is cold path.
	mu sync.Mutex
}

// New creates a fabric of shards independent queues. Each of the
// cfg.maxHandles handle slots owns one sub-handle in every shard.
func New[T any](shards int, opts ...Option) (*Queue[T], error) {
	cfg := config{
		backend: BackendCore,
		choices: 2,
		pairing: true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.maxHandlesSet {
		cfg.maxHandles = 4 * runtime.GOMAXPROCS(0)
		if cfg.maxHandles < 16 {
			cfg.maxHandles = 16
		}
	}
	if shards < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadShards, shards)
	}
	if cfg.maxHandles < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadHandles, cfg.maxHandles)
	}
	if cfg.choices < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadChoices, cfg.choices)
	}
	q := &Queue[T]{
		cfg:        cfg,
		homes:      make([]padInt64, cfg.maxHandles),
		slotEpochs: make([]slotEpoch, cfg.maxHandles),
	}
	t := &topology[T]{
		epoch:          1,
		shards:         make([]*shardState[T], shards),
		migrationsDone: make(chan struct{}),
	}
	close(t.migrationsDone) // nothing to migrate in the first epoch
	for j := range t.shards {
		sub, err := newSubQueue[T](cfg)
		if err != nil {
			return nil, err
		}
		t.shards[j] = &shardState[T]{q: sub, counter: &metrics.Counter{}}
	}
	t.bitmap.init(shards)
	q.topo.Store(t)
	q.reg.init(cfg.maxHandles)
	return q, nil
}

// newSubQueue builds one shard's backing queue with one handle slot beyond
// the leasable ones, reserved for the fabric's own maintenance operations
// (migration drains during Resize).
func newSubQueue[T any](cfg config) (subQueue[T], error) {
	switch cfg.backend {
	case BackendCore:
		cq, err := core.New[T](cfg.maxHandles + 1)
		if err != nil {
			return nil, err
		}
		return coreShard[T]{q: cq}, nil
	case BackendBounded:
		var opts []bounded.Option
		if cfg.gcInterval > 0 {
			opts = append(opts, bounded.WithGCInterval(cfg.gcInterval))
		}
		bq, err := bounded.New[T](cfg.maxHandles+1, opts...)
		if err != nil {
			return nil, err
		}
		return boundedShard[T]{q: bq}, nil
	default:
		return nil, fmt.Errorf("%w %q", ErrBadBackend, cfg.backend)
	}
}

// Shards returns the current shard count k. It can change across Resize
// calls; read it as a point-in-time value.
func (q *Queue[T]) Shards() int { return len(q.topo.Load().shards) }

// MaxHandles returns the number of leasable handle slots.
func (q *Queue[T]) MaxHandles() int { return q.cfg.maxHandles }

// Backend returns the per-shard queue implementation in use.
func (q *Queue[T]) Backend() Backend { return q.cfg.backend }

// Acquire leases a handle slot to the calling goroutine. The returned handle
// must be used by one goroutine at a time and returned with Release; until
// then the slot is unavailable to other callers. Acquire is lock-free and
// returns ErrNoFreeHandles when every slot is leased.
func (q *Queue[T]) Acquire() (*Handle[T], error) {
	slot, ok := q.reg.acquire()
	if !ok {
		return nil, ErrNoFreeHandles
	}
	base := q.nextHome.Add(1) - 1
	// Publish-then-recheck, mirroring Handle.enter: if a Resize installs a
	// new topology between computing the home and storing it, the store
	// could land after that Resize's home-rewrite pass and leave a home
	// out of range for the shrunk shard set (canonical again only by
	// accident). Rechecking the pointer guarantees the stored home is
	// in range for the topology that is current when it lands — either
	// the rewrite saw our store and clamped it, or we recompute against
	// the new topology ourselves.
	var t *topology[T]
	var home int
	for {
		t = q.topo.Load()
		home = int(base % uint64(len(t.shards)))
		q.homes[slot].v.Store(int64(home))
		if q.topo.Load() == t {
			break
		}
	}
	h := &Handle[T]{
		q:         q,
		slot:      slot,
		rng:       rngSeed(slot),
		lastHome:  home,
		pairEvery: 1,
	}
	h.refresh(t)
	return h, nil
}

// Close marks the fabric closed: subsequent Enqueues return ErrClosed while
// Dequeue and Drain keep working, so consumers can drain the backlog.
// Enqueues that began before Close completed may still be admitted. Close is
// idempotent. It serializes with Resize (waiting out an in-flight
// migration, which is bounded by the retired backlog), so once Close
// returns, no further topology change can move elements underneath the
// consumers' drain.
func (q *Queue[T]) Close() {
	q.resizeMu.Lock()
	q.closed.Store(true)
	q.resizeMu.Unlock()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed.Load() }

// Len returns the fabric's total backlog estimate: the sum of the per-shard
// root sizes, including any retired shards still awaiting migration (their
// elements are owed to the survivors). Like the underlying queues' Len,
// each addend was exact at some recent moment but may lag concurrent
// operations.
func (q *Queue[T]) Len() int {
	t := q.topo.Load()
	total := 0
	for _, s := range t.shards {
		total += s.len()
	}
	if retired := t.retired.Load(); retired != nil { // migration in flight
		for _, s := range *retired {
			total += s.len()
		}
	}
	return total
}

// ShardStat is a point-in-time view of one shard's traffic. The JSON field
// names are a stable encoding consumed by the service layer's /statsz
// endpoint; renaming them is a wire-format change.
type ShardStat struct {
	Shard    int   `json:"shard"`
	Len      int   `json:"len"`      // backlog as of the shard's last root propagation
	Enqueues int64 `json:"enqueues"` // completed enqueues routed to this shard (migrations included)
	Dequeues int64 `json:"dequeues"` // successful dequeues served by this shard (migrations included)
	Pairs    int64 `json:"pairs"`    // enqueue/dequeue pairs eliminated at the exchange slots
}

// ShardStats returns per-shard routing statistics, one entry per current
// shard. Len is live; the Enqueues/Dequeues tallies are folded in when a
// lease is Released or refreshed onto a new epoch (keeping them off the
// per-operation hot path), so live handles' traffic is not yet included.
// Migration drains tally as dequeues on the retired shard and enqueues on
// the destination, keeping each shard's enqueues-dequeues == len audit
// exact across resizes.
func (q *Queue[T]) ShardStats() []ShardStat {
	t := q.topo.Load()
	out := make([]ShardStat, len(t.shards))
	for j, s := range t.shards {
		out[j] = ShardStat{
			Shard:    j,
			Len:      s.len(),
			Enqueues: s.enqueues.Load(),
			Dequeues: s.dequeues.Load(),
			Pairs:    s.pairs.Load(),
		}
	}
	return out
}

// ShardSummaries returns the paper's cost-model summary per current shard,
// aggregated from handles that have been Released (live handles' counters
// cannot be read safely). A shard retired by a shrink bequeaths its
// accumulated summary to its migration destination, so the fabric-wide
// totals survive any resize schedule. It returns meaningful data only
// when the fabric was built WithShardMetrics.
func (q *Queue[T]) ShardSummaries() []metrics.Summary {
	t := q.topo.Load()
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]metrics.Summary, len(t.shards))
	for j, s := range t.shards {
		out[j] = metrics.Summarize(s.counter)
	}
	return out
}

// RegistryStats is a point-in-time view of handle-lease churn through the
// dynamic registry. Like ShardStat, its JSON encoding is stable.
type RegistryStats struct {
	Capacity int   `json:"capacity"` // total leasable slots
	InUse    int   `json:"in_use"`   // slots currently leased (approximate under churn)
	Acquires int64 `json:"acquires"` // completed Acquire calls over the fabric's lifetime
	Releases int64 `json:"releases"` // completed Release calls
	Failures int64 `json:"failures"` // Acquire calls that found no free slot
}

// RegistryStats returns lease-churn statistics for the handle registry.
// InUse is derived from a free-list walk and is only exact while no
// Acquire/Release is in flight; the churn tallies are always exact.
func (q *Queue[T]) RegistryStats() RegistryStats {
	return RegistryStats{
		Capacity: q.cfg.maxHandles,
		InUse:    q.cfg.maxHandles - q.reg.free(),
		Acquires: q.reg.acquires.Load(),
		Releases: q.reg.releases.Load(),
		Failures: q.reg.failures.Load(),
	}
}

// Snapshot is a stable JSON-encodable view of the whole fabric: identity,
// topology epoch and resize history, aggregate backlog, per-shard routing
// traffic, lease churn, and (when the fabric was built WithShardMetrics)
// per-shard cost-model summaries.
type Snapshot struct {
	Backend    Backend           `json:"backend"`
	Shards     int               `json:"shards"` // current k (elastic; see Resize)
	MaxHandles int               `json:"max_handles"`
	Closed     bool              `json:"closed"`
	Len        int               `json:"len"`
	Resize     ResizeStats       `json:"resize"` // epoch and grow/shrink/migration counters
	ShardStats []ShardStat       `json:"shard_stats"`
	Registry   RegistryStats     `json:"registry"`
	Summaries  []metrics.Summary `json:"summaries,omitempty"`
}

// Snapshot captures the fabric's current statistics. Cost-model summaries
// are included only when the fabric was built WithShardMetrics (they are
// all-zero otherwise and would only bloat the encoding).
func (q *Queue[T]) Snapshot() Snapshot {
	s := Snapshot{
		Backend:    q.cfg.backend,
		Shards:     q.Shards(),
		MaxHandles: q.cfg.maxHandles,
		Closed:     q.closed.Load(),
		Len:        q.Len(),
		Resize:     q.ResizeStats(),
		ShardStats: q.ShardStats(),
		Registry:   q.RegistryStats(),
	}
	if q.cfg.perShard {
		s.Summaries = q.ShardSummaries()
	}
	return s
}

// mergeShardCounters folds a handle's per-shard counters into the given
// shard states' totals (the states of the topology the counters were
// collected against). A state retired since the counters were collected
// forwards to its migration destination, so no recorded cost-model work
// is dropped by a shrink.
func (q *Queue[T]) mergeShardCounters(states []*shardState[T], counters []*metrics.Counter) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for j, c := range counters {
		states[j].sink().counter.Merge(c)
	}
}
