package shard

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoubleReleaseNoop: a second Release is a defined no-op — teardown
// paths may release defensively — and must not corrupt the registry free
// list (the slot goes back exactly once).
func TestDoubleReleaseNoop(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // must not panic
	h.Release() // and stays idempotent
	if got := q.reg.free(); got != 2 {
		t.Errorf("free slots after double release = %d, want 2 (slot pushed twice?)", got)
	}
	st := q.RegistryStats()
	if st.Releases != 1 {
		t.Errorf("Releases = %d, want 1 (double release must not count)", st.Releases)
	}
	// The slot must still round-trip cleanly through the registry.
	h2, err := q.Acquire()
	if err != nil {
		t.Fatalf("Acquire after double release: %v", err)
	}
	h2.Release()
}

func TestResizeValidation(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Resize(0); !errors.Is(err, ErrBadShards) {
		t.Errorf("Resize(0) = %v, want ErrBadShards", err)
	}
	if err := q.Resize(2); err != nil {
		t.Errorf("same-size Resize = %v, want nil", err)
	}
	if got := q.Epoch(); got != 1 {
		t.Errorf("epoch after no-op Resize = %d, want 1", got)
	}
	q.Close()
	if err := q.Resize(4); !errors.Is(err, ErrClosed) {
		t.Errorf("Resize on closed fabric = %v, want ErrClosed", err)
	}
}

// TestResizeGrowShrinkConservation: a quiescent grow then shrink moves
// every element exactly once and bumps the epoch/resize counters.
func TestResizeGrowShrinkConservation(t *testing.T) {
	q, err := New[int](4, WithMaxHandles(8))
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle[int], 4)
	for i := range handles {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	const per = 200
	for i, h := range handles {
		for s := 0; s < per; s++ {
			if err := h.Enqueue(i*1_000_000 + s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := q.Resize(8); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if got := q.Shards(); got != 8 {
		t.Fatalf("Shards after grow = %d, want 8", got)
	}
	if err := q.Resize(2); err != nil {
		t.Fatalf("shrink: %v", err)
	}
	if got := q.Shards(); got != 2 {
		t.Fatalf("Shards after shrink = %d, want 2", got)
	}
	rs := q.ResizeStats()
	if rs.Epoch != 3 || rs.Grows != 1 || rs.Shrinks != 1 {
		t.Errorf("ResizeStats = %+v, want epoch 3, 1 grow, 1 shrink", rs)
	}
	if rs.Migrated == 0 {
		t.Errorf("shrink from 4 occupied shards migrated 0 elements")
	}
	if got := q.Len(); got != 4*per {
		t.Fatalf("Len after resizes = %d, want %d", got, 4*per)
	}
	// Per-producer FIFO must have survived both epochs.
	lastSeq := map[int]int{}
	seen := map[int]bool{}
	n := handles[0].Drain(func(v int) {
		prod, seq := v/1_000_000, v%1_000_000
		if prev, ok := lastSeq[prod]; ok && seq < prev {
			t.Errorf("producer %d out of order: %d after %d", prod, seq, prev)
		}
		lastSeq[prod] = seq
		if seen[v] {
			t.Errorf("value %d dequeued twice", v)
		}
		seen[v] = true
	})
	if n != 4*per {
		t.Fatalf("drained %d values, want %d", n, 4*per)
	}
	for _, h := range handles {
		h.Release()
	}
	// Shard audit must stay exact across migration: enqueues - dequeues ==
	// len (== 0 after the full drain) on every surviving shard.
	for _, st := range q.ShardStats() {
		if st.Enqueues-st.Dequeues != int64(st.Len) {
			t.Errorf("shard %d audit broken: enq %d - deq %d != len %d",
				st.Shard, st.Enqueues, st.Dequeues, st.Len)
		}
	}
}

// TestResizeRehomeFIFO drives one producer whose home shard is repeatedly
// retired and re-created while a consumer checks that the producer's
// elements arrive in order: the migration drain plus the re-homed
// producer's enqueue barrier must keep per-producer FIFO across every
// epoch boundary.
func TestResizeRehomeFIFO(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(4))
	if err != nil {
		t.Fatal(err)
	}
	// Second lease homes at shard 1 (round-robin), the shard every shrink
	// to k=1 retires.
	h0, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	prod, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if prod.Home() != 1 {
		t.Fatalf("second lease homed at %d, want 1", prod.Home())
	}
	h0.Release()

	const total = 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // resizer: 2 -> 1 -> 2 -> ... while the stream flows
		defer wg.Done()
		k := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := q.Resize(k); err != nil {
				t.Errorf("Resize(%d): %v", k, err)
				return
			}
			k = 3 - k // alternate 1, 2
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for s := 0; s < total; s++ {
			if err := prod.Enqueue(s); err != nil {
				t.Errorf("Enqueue(%d): %v", s, err)
				return
			}
		}
	}()

	cons, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for next < total {
		v, ok := cons.Dequeue()
		if !ok {
			continue // empty or mid-migration; elements are still owed
		}
		if v != next {
			t.Fatalf("dequeued %d, want %d (per-producer FIFO broken across resize)", v, next)
		}
		next++
	}
	close(stop)
	wg.Wait()
	prod.Release()
	cons.Release()
}

// TestResizeChurnConservation runs producers and consumers through 100
// concurrent resizes over a pseudo-random shard schedule and asserts exact
// conservation: every enqueued value is dequeued exactly once, nothing is
// lost in a migration and nothing is duplicated. Run with -race.
func TestResizeChurnConservation(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 5000
		resizes   = 100
	)
	q, err := New[int](3, WithMaxHandles(producers+consumers+1))
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg       sync.WaitGroup
		consumed sync.Map
		got      atomic.Int64
		dups     atomic.Int64
	)
	for p := 0; p < producers; p++ {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, h *Handle[int]) {
			defer wg.Done()
			defer h.Release()
			for s := 0; s < perProd; s++ {
				if s%7 == 3 { // mix batch and single enqueues
					end := min(s+3, perProd)
					vs := make([]int, 0, end-s)
					for ; s < end; s++ {
						vs = append(vs, p*1_000_000+s)
					}
					s--
					if err := h.EnqueueBatch(vs); err != nil {
						t.Errorf("EnqueueBatch: %v", err)
						return
					}
					continue
				}
				if err := h.Enqueue(p*1_000_000 + s); err != nil {
					t.Errorf("Enqueue: %v", err)
					return
				}
			}
		}(p, h)
	}
	record := func(v int) {
		if _, dup := consumed.LoadOrStore(v, true); dup {
			dups.Add(1)
		}
		got.Add(1)
	}
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(h *Handle[int]) {
			defer wg.Done()
			defer h.Release()
			for {
				vs, n := h.DequeueBatch(4)
				for _, v := range vs {
					record(v)
				}
				if n == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
			}
		}(h)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < resizes; i++ {
		if err := q.Resize(1 + rng.Intn(8)); err != nil {
			t.Fatalf("resize %d: %v", i, err)
		}
	}
	// Let consumers finish accounting for everything the producers put in.
	deadline := time.Now().Add(30 * time.Second)
	for got.Load() < producers*perProd && dups.Load() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	if d := dups.Load(); d != 0 {
		t.Fatalf("%d values dequeued more than once across %d resizes", d, resizes)
	}
	if g := got.Load(); g != producers*perProd {
		t.Fatalf("consumed %d values, want %d (lost %d)", g, producers*perProd, producers*perProd-g)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after full consumption", q.Len())
	}
	rs := q.ResizeStats()
	if rs.Epoch < resizes/2 { // some schedule entries repeat the current k
		t.Errorf("epoch %d suspiciously low after %d resize calls", rs.Epoch, resizes)
	}
}

// TestResizeSetCounterNilSurvivesRefresh: a lease's explicit
// SetCounter(nil) on a WithShardMetrics fabric must keep accounting
// disabled across an epoch refresh, not be silently replaced by fresh
// per-shard counters.
func TestResizeSetCounterNilSurvivesRefresh(t *testing.T) {
	q, err := New[int](1, WithMaxHandles(2), WithShardMetrics())
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h.SetCounter(nil) // explicitly disable accounting for this lease
	if err := q.Resize(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		h.Enqueue(i)
	}
	h.Drain(nil)
	h.Release()
	for j, s := range q.ShardSummaries() {
		if s.Ops != 0 {
			t.Errorf("shard %d: %d ops tallied after SetCounter(nil), want 0", j, s.Ops)
		}
	}
}

// TestResizeShardSummariesSurviveShrink: cost-model work and traffic
// tallies recorded against shards a shrink retires must be inherited by
// the migration destination, not silently dropped with the retired
// states — fabric-wide totals are the whole point of WithShardMetrics.
func TestResizeShardSummariesSurviveShrink(t *testing.T) {
	q, err := New[int](4, WithMaxHandles(4), WithShardMetrics())
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle[int], 4) // homes 0..3 round-robin
	for i := range handles {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	const per = 100
	for _, h := range handles {
		for s := 0; s < per; s++ {
			h.Enqueue(s)
		}
	}
	for _, h := range handles {
		h.Release() // folds tallies + counters into the k=4 states
	}
	var opsBefore int64
	for _, s := range q.ShardSummaries() {
		opsBefore += s.Ops
	}
	if opsBefore != 4*per {
		t.Fatalf("ops before shrink = %d, want %d", opsBefore, 4*per)
	}
	if err := q.Resize(1); err != nil {
		t.Fatal(err)
	}
	var opsAfter, enqAfter int64
	for _, s := range q.ShardSummaries() {
		opsAfter += s.Ops
	}
	for _, st := range q.ShardStats() {
		enqAfter += st.Enqueues
	}
	if opsAfter != opsBefore {
		t.Errorf("ops after shrink = %d, want %d (retired shards' summaries dropped)", opsAfter, opsBefore)
	}
	// Original enqueues plus one migration enqueue per element moved into
	// shard 0 from the three retired shards.
	wantEnq := int64(4*per) + q.ResizeStats().Migrated
	if enqAfter != wantEnq {
		t.Errorf("enqueue tallies after shrink = %d, want %d", enqAfter, wantEnq)
	}
}

// TestResizeSnapshotJSONRoundTrip pins the fabric Snapshot's new
// epoch/resize fields to their stable JSON encoding.
func TestResizeSnapshotJSONRoundTrip(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(4))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Enqueue(i)
	}
	if err := q.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := q.Resize(1); err != nil {
		t.Fatal(err)
	}
	h.Release()
	snap := q.Snapshot()
	if snap.Resize.Epoch != 3 || snap.Resize.Grows != 1 || snap.Resize.Shrinks != 1 {
		t.Fatalf("Snapshot.Resize = %+v, want epoch 3 / 1 grow / 1 shrink", snap.Resize)
	}
	if snap.Shards != 1 {
		t.Fatalf("Snapshot.Shards = %d, want 1", snap.Shards)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"epoch":3`, `"grows":1`, `"shrinks":1`, `"migrated":`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("snapshot JSON missing %s: %s", key, data)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("snapshot did not round-trip:\n got %+v\nwant %+v", back, snap)
	}
}
