package shard

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolChurnAcquireRelease hammers lease churn concurrently with queue
// traffic: every goroutine repeatedly Acquires a handle, pushes a burst of
// operations through it (exercising the per-sub-handle spare stacks and the
// shared block arenas across lease boundaries — sub-handles are recycled
// to the next lessee of the slot, spares and all), and Releases. Run under
// -race this is the arena's aliasing test: a block recycled by one lease
// and reused by the next must never be reachable from two owners at once.
// The final conservation check catches any value lost or duplicated by a
// mis-recycled block.
func TestPoolChurnAcquireRelease(t *testing.T) {
	for _, backend := range []Backend{BackendCore, BackendBounded} {
		t.Run(string(backend), func(t *testing.T) {
			q, err := New[int](4, WithBackend(backend), WithMaxHandles(8))
			if err != nil {
				t.Fatal(err)
			}
			const (
				goroutines = 6
				leases     = 40
				burst      = 50
			)
			var enqueued, dequeued atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for l := 0; l < leases; l++ {
						h, err := q.Acquire()
						if err != nil {
							// All 8 slots leased by the other goroutines;
							// churn on and retry next round.
							continue
						}
						for i := 0; i < burst; i++ {
							if err := h.Enqueue(g*1000000 + l*1000 + i); err != nil {
								t.Error(err)
								break
							}
							enqueued.Add(1)
							if i%2 == 0 {
								if _, ok := h.Dequeue(); ok {
									dequeued.Add(1)
								}
							}
						}
						h.Release()
					}
				}(g)
			}
			wg.Wait()
			h, err := q.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			defer h.Release()
			drained := int64(h.Drain(nil))
			if got, want := dequeued.Load()+drained, enqueued.Load(); got != want {
				t.Fatalf("conservation: consumed %d of %d enqueued values", got, want)
			}
			if q.Len() != 0 {
				t.Fatalf("Len = %d after full drain", q.Len())
			}
		})
	}
}
