package shard

import (
	"math/bits"
	"sync/atomic"
)

// bitmap is a lock-free nonempty-shard index: bit j is set while shard j is
// believed to hold elements. Enqueuers set the bit after their enqueue
// completes; a dequeuer that observes a shard empty clears the bit and then
// re-sets it if the shard's root says elements raced in. Because an enqueue
// propagates to the root before its bitmap set, the clear-then-recheck
// never strands a completed enqueue with its bit clear — either the
// dequeuer's root read sees the element, or the enqueuer's own set lands
// after the clear.
//
// The bitmap is advisory: dequeue correctness never depends on it, because
// Dequeue falls back to a full shard sweep before reporting empty.
//
// Each 64-shard word is padded to its own pair of cache lines: the words
// are the most write-shared atomics in the fabric (every enqueue may set,
// every dequeue may clear), and with k <= a few hundred shards the padding
// costs a few KB to remove all cross-word false sharing.
type bitmap struct {
	words []padUint64
	n     int
}

// padUint64 is an atomic word alone on two cache lines.
type padUint64 struct {
	v atomic.Uint64
	_ [120]byte
}

// padInt64 is the int64 counterpart (used by the registry free list and the
// home directory).
type padInt64 struct {
	v atomic.Int64
	_ [120]byte
}

func (b *bitmap) init(n int) {
	b.n = n
	b.words = make([]padUint64, (n+63)/64)
}

// set marks shard j nonempty.
func (b *bitmap) set(j int) {
	w := &b.words[j>>6].v
	mask := uint64(1) << (uint(j) & 63)
	if w.Load()&mask == 0 { // skip the RMW when already set (common case)
		w.Or(mask)
	}
}

// clear marks shard j empty.
func (b *bitmap) clear(j int) {
	b.words[j>>6].v.And(^(uint64(1) << (uint(j) & 63)))
}

// isSet reports whether shard j is marked nonempty.
func (b *bitmap) isSet(j int) bool {
	return b.words[j>>6].v.Load()&(uint64(1)<<(uint(j)&63)) != 0
}

// randomSet returns a uniformly-started cyclic probe: the first set bit at
// or after a random position, or -1 if no bit was observed set. One pass
// over the words, O(k/64) loads.
func (b *bitmap) randomSet(rng *uint64) int {
	if b.n == 0 {
		return -1
	}
	start := int(xorshift(rng) % uint64(b.n))
	sw, sb := start>>6, uint(start)&63
	nw := len(b.words)
	for i := 0; i < nw; i++ {
		wi := (sw + i) % nw
		w := b.words[wi].v.Load()
		if i == 0 {
			w &= ^uint64(0) << sb // ignore bits before the start position
		}
		for w != 0 {
			j := wi<<6 + bits.TrailingZeros64(w)
			if j < b.n {
				return j
			}
			w &= w - 1
		}
	}
	// Wrap: bits before the start position in the start word.
	w := b.words[sw].v.Load() & ((uint64(1) << sb) - 1)
	if w != 0 {
		j := sw<<6 + bits.TrailingZeros64(w)
		if j < b.n {
			return j
		}
	}
	return -1
}

// xorshift advances a xorshift64* PRNG state; each handle owns one state, so
// no synchronization is needed.
func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x * 0x2545F4914F6CDD1D
}

// rngSeed derives a nonzero, well-mixed PRNG seed from a slot number
// (splitmix64 finalizer).
func rngSeed(slot int) uint64 {
	z := uint64(slot) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
