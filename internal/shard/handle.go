package shard

import "repro/internal/metrics"

// Handle is a leased capability to operate on the fabric. A handle may be
// used by one goroutine at a time and owns one sub-handle in every shard:
// enqueues are routed to the handle's home shard (preserving per-producer
// order), dequeues roam the fabric via d-random-choice.
type Handle[T any] struct {
	q        *Queue[T]
	slot     int
	home     int
	rng      uint64
	sub      []subHandle[T]
	enq      int64              // home-shard enqueue tally, folded in on Release
	deqs     []int64            // per-shard successful-dequeue tally
	counters []*metrics.Counter // per-shard, only with WithShardMetrics
	released bool
}

// Slot returns the registry slot this handle leases (useful in logs).
func (h *Handle[T]) Slot() int { return h.slot }

// Home returns the shard this handle routes enqueues to. Homes are assigned
// round-robin across leases so concurrent producers spread over the shards.
func (h *Handle[T]) Home() int { return h.home }

// SetCounter attaches a single step/CAS counter aggregating across every
// shard this handle touches (nil disables accounting). It overrides the
// per-shard counters installed by WithShardMetrics for this lease.
func (h *Handle[T]) SetCounter(c *metrics.Counter) {
	h.counters = nil
	for j := range h.sub {
		h.sub[j].SetCounter(c)
	}
}

// Enqueue appends v to the handle's home shard. It returns ErrClosed once
// the fabric is closed; an enqueue that began before Close completed may
// still be admitted.
func (h *Handle[T]) Enqueue(v T) error {
	h.check()
	if h.q.closed.Load() {
		return ErrClosed
	}
	j := h.home
	h.sub[j].Enqueue(v)
	h.enq++
	// The element is at the root before Enqueue returns (propagation
	// completes first), so setting the bit here serializes after a root
	// state that a concurrent clear-then-recheck in dequeueFrom will see.
	h.q.bitmap.set(j)
	return nil
}

// EnqueueBatch appends all of vs to the handle's home shard as one multi-op
// leaf block: the whole batch rides a single sub-call and a single
// propagation pass, and because it targets one shard in one block, the
// batch's elements stay contiguous in that shard's FIFO order — per-producer
// order is preserved exactly as for single enqueues. It returns ErrClosed
// once the fabric is closed (the batch is then not enqueued at all; batches
// are all-or-nothing).
func (h *Handle[T]) EnqueueBatch(vs []T) error {
	h.check()
	if len(vs) == 0 {
		return nil
	}
	if h.q.closed.Load() {
		return ErrClosed
	}
	j := h.home
	h.sub[j].EnqueueBatch(vs)
	h.enq += int64(len(vs))
	// As for Enqueue: the elements are at the shard's root before the bit is
	// set, so clear-then-recheck in dequeueFrom cannot strand them.
	h.q.bitmap.set(j)
	return nil
}

// Dequeue removes an element from some nonempty shard: it samples up to d
// shards from the nonempty bitmap, takes the fullest, and falls back to a
// deterministic sweep of all shards before reporting ok == false. The
// returned element is the head of its shard, so FIFO order holds per shard
// (and per producer) but not across shards.
func (h *Handle[T]) Dequeue() (T, bool) {
	h.check()
	q := h.q
	// Locality fast path: the home shard first. Producers-turned-consumers
	// (and symmetric workloads like pairs) find their own elements there
	// without touching other shards' cache lines.
	if q.bitmap.isSet(h.home) {
		if v, ok := h.dequeueFrom(h.home); ok {
			return v, true
		}
	}
	// Guided attempts: d-random-choice over the nonempty bitmap.
	for attempt := 0; attempt < 2; attempt++ {
		j := h.pickShard()
		if j < 0 {
			break
		}
		if v, ok := h.dequeueFrom(j); ok {
			return v, true
		}
	}
	// Certification sweep: every shard, starting at home so concurrent
	// dequeuers spread out. Each sub-dequeue is wait-free, so the whole
	// operation is wait-free with at most k extra sub-operations.
	for i := 0; i < len(q.shards); i++ {
		j := h.home + i
		if j >= len(q.shards) {
			j -= len(q.shards)
		}
		if v, ok := h.dequeueFrom(j); ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// DequeueBatch removes up to n elements from the fabric, returning them
// with their count (len of the result). It first drains the home shard
// (locality fast path), then refills via d-random-choice over the nonempty
// bitmap, and finally certifies emptiness with a deterministic sweep of all
// shards — the same three phases as Dequeue, but each phase issues one
// multi-op sub-dequeue for everything still missing instead of one
// sub-operation per element. Values pulled from the same shard are
// contiguous and FIFO-ordered; values of different shards may interleave in
// any order, exactly as for single dequeues. A count below n certifies that
// every shard was observed empty after the batch's last successful pull.
func (h *Handle[T]) DequeueBatch(n int) ([]T, int) {
	h.check()
	if n <= 0 {
		return nil, 0
	}
	q := h.q
	var out []T
	if q.bitmap.isSet(h.home) {
		out = h.batchFrom(h.home, n, out)
	}
	for attempt := 0; attempt < 2 && len(out) < n; attempt++ {
		j := h.pickShard()
		if j < 0 {
			break
		}
		out = h.batchFrom(j, n, out)
	}
	for i := 0; i < len(q.shards) && len(out) < n; i++ {
		j := h.home + i
		if j >= len(q.shards) {
			j -= len(q.shards)
		}
		out = h.batchFrom(j, n, out)
	}
	return out, len(out)
}

// batchFrom issues one multi-op sub-dequeue on shard j for everything out
// still lacks, appending the values and maintaining the nonempty bitmap.
// The bitmap update is batch-aware: a shard that filled the whole request
// may well have more elements, so only a short pull (the shard certified
// empty mid-batch) triggers the clear-then-recheck.
func (h *Handle[T]) batchFrom(j, n int, out []T) []T {
	want := n - len(out)
	vs, got := h.sub[j].DequeueBatch(want)
	if got > 0 {
		h.deqs[j] += int64(got)
		out = append(out, vs...)
	}
	if got < want {
		h.q.bitmap.clear(j)
		if h.q.shards[j].len() > 0 {
			h.q.bitmap.set(j)
		}
	}
	return out
}

// pickShard samples up to d set bits from the nonempty bitmap and returns
// the candidate with the largest backlog estimate, or -1 when no bit was
// observed set.
func (h *Handle[T]) pickShard() int {
	best := -1
	var bestSize int64 = -1
	for t := 0; t < h.q.cfg.choices; t++ {
		j := h.q.bitmap.randomSet(&h.rng)
		if j < 0 {
			break
		}
		if sz := int64(h.q.shards[j].len()); sz > bestSize {
			best, bestSize = j, sz
		}
	}
	return best
}

// dequeueFrom attempts one sub-dequeue on shard j, maintaining the size
// estimate and the nonempty bitmap.
func (h *Handle[T]) dequeueFrom(j int) (T, bool) {
	s := &h.q.shards[j]
	if v, ok := h.sub[j].Dequeue(); ok {
		h.deqs[j]++
		return v, true
	}
	// Observed empty: clear the bit, then re-set it if elements raced in
	// between the failed dequeue and the clear (an enqueue reaches the
	// root before its bitmap set — see Enqueue — so either this len read
	// sees it, or the enqueuer's own set lands after the clear).
	h.q.bitmap.clear(j)
	if s.len() > 0 {
		h.q.bitmap.set(j)
	}
	var zero T
	return zero, false
}

// Drain dequeues until the fabric certifies empty, calling fn for each
// element, and returns the number drained. On a closed fabric with no other
// consumers running, Drain leaves the fabric empty; with concurrent
// consumers it simply stops once a full sweep finds nothing.
func (h *Handle[T]) Drain(fn func(T)) int {
	n := 0
	for {
		v, ok := h.Dequeue()
		if !ok {
			return n
		}
		if fn != nil {
			fn(v)
		}
		n++
	}
}

// Release returns the handle's slot to the registry so another goroutine
// can lease it, and (under WithShardMetrics) folds the lease's per-shard
// counters into the fabric totals. The handle must not be used afterwards;
// Release panics on double release.
func (h *Handle[T]) Release() {
	h.check()
	h.released = true
	if h.enq != 0 {
		h.q.shards[h.home].enqueues.Add(h.enq)
	}
	for j := range h.deqs {
		if h.deqs[j] != 0 {
			h.q.shards[j].dequeues.Add(h.deqs[j])
		}
	}
	if h.counters != nil {
		h.q.mergeShardCounters(h.counters)
		h.counters = nil
	}
	h.q.reg.release(h.slot)
}

// check panics on use-after-Release — always a caller bug, and one that
// would otherwise silently corrupt another goroutine's lease.
func (h *Handle[T]) check() {
	if h.released {
		panic("shard: handle used after Release")
	}
}
