package shard

import "repro/internal/metrics"

// Handle is a leased capability to operate on the fabric. A handle may be
// used by one goroutine at a time; per operation it loads the current
// topology once and works against that snapshot, deriving (and caching)
// one sub-handle per shard of the epoch. Enqueues are routed to the
// handle's home shard (preserving per-producer order even across Resize —
// see syncHome), dequeues roam the fabric via d-random-choice.
//
// The epoch cache pins the topology of the handle's last operation — for
// a handle that sits idle across a shrink, that includes the retired
// shards' queues — until the next operation refreshes it or Release
// drops it. Release handles you are not going to use; the service layer
// does this by reaping idle sessions.
type Handle[T any] struct {
	q    *Queue[T]
	slot int
	rng  uint64

	// Epoch-scoped caches, rebuilt by refresh when the topology changes.
	// topo is the last topology this handle derived sub-handles for; sub
	// and deqs are indexed by that topology's shard indices.
	topo *topology[T]
	sub  []subHandle[T]
	deqs []int64 // per-shard successful-dequeue tally, folded on refresh/Release

	enq      int64 // home-shard enqueue tally
	lastHome int   // home shard of the last enqueue path, for re-home detection

	// Elimination backoff (exchange.go): a park is attempted only every
	// pairEvery-th eligible enqueue; pairEvery doubles up to pairEveryMax
	// when a park goes unmatched and resets to 1 on a hit, so workloads
	// where elimination never pays stop paying for it almost entirely.
	pairTick  uint32
	pairEvery uint32

	counters   []*metrics.Counter // per-shard, only with WithShardMetrics
	counter    *metrics.Counter   // user-set aggregate counter (SetCounter), applied across refreshes
	counterSet bool               // SetCounter was called — its value (nil included) outlives refreshes
	released   bool
}

// Slot returns the registry slot this handle leases (useful in logs).
func (h *Handle[T]) Slot() int { return h.slot }

// Home returns the shard this handle currently routes enqueues to. Homes
// are assigned round-robin across leases so concurrent producers spread
// over the shards; a shrink that retires a handle's home re-homes it to
// home mod k.
func (h *Handle[T]) Home() int {
	return h.q.effHome(h.slot, h.q.topo.Load())
}

// SetCounter attaches a single step/CAS counter aggregating across every
// shard this handle touches (nil disables accounting). It overrides the
// per-shard counters installed by WithShardMetrics for this lease.
func (h *Handle[T]) SetCounter(c *metrics.Counter) {
	h.counters = nil
	h.counter = c
	h.counterSet = true // an explicit nil must survive epoch refreshes too
	for j := range h.sub {
		h.sub[j].SetCounter(c)
	}
}

// enter begins one fabric operation: it loads the current topology and
// publishes its epoch in the handle's slot, with a recheck so a Resize
// racing the publication can rely on "no slot still publishes the old
// epoch" meaning "no operation still touches the old epoch's shard view".
// Callers must pair it with exit.
func (h *Handle[T]) enter() *topology[T] {
	for {
		t := h.q.topo.Load()
		h.q.slotEpochs[h.slot].v.Store(t.epoch)
		if h.q.topo.Load() == t {
			if h.topo != t {
				h.refresh(t)
			}
			return t
		}
	}
}

// exit ends the operation begun by enter.
func (h *Handle[T]) exit() { h.q.slotEpochs[h.slot].v.Store(0) }

// refresh re-targets the handle at topology t: it folds the tallies (and
// any per-shard counters) collected against the previous topology into
// that topology's shard states, then rebuilds the sub-handle cache.
// Because topologies are prefix-stable, sub-handles of surviving shards
// are reused; only the new suffix derives fresh ones.
func (h *Handle[T]) refresh(t *topology[T]) {
	if h.topo != nil {
		h.fold()
	}
	old := h.sub
	var oldT *topology[T] = h.topo
	h.topo = t
	h.sub = make([]subHandle[T], len(t.shards))
	h.deqs = make([]int64, len(t.shards))
	for j := range t.shards {
		if oldT != nil && j < len(old) && j < len(oldT.shards) && oldT.shards[j] == t.shards[j] {
			h.sub[j] = old[j]
			continue
		}
		sh, err := t.shards[j].q.handle(h.slot)
		if err != nil {
			// Slots are always < maxHandles+1, so this is unreachable.
			panic("shard: " + err.Error())
		}
		// Sub-handles are recycled across leases; clear (or set) whatever
		// counter the previous lessee left behind.
		sh.SetCounter(h.counter)
		h.sub[j] = sh
	}
	if !h.counterSet && h.q.cfg.perShard {
		h.counters = make([]*metrics.Counter, len(t.shards))
		for j := range h.counters {
			h.counters[j] = &metrics.Counter{}
			h.sub[j].SetCounter(h.counters[j])
		}
	}
}

// fold flushes the handle's buffered tallies into its cached topology's
// shard states. The states keep their identity even if the topology has
// since been superseded, and a state retired in the meantime forwards to
// its migration destination (sink), so folding into a stale epoch never
// loses recorded traffic.
func (h *Handle[T]) fold() {
	if h.enq != 0 {
		h.topo.shards[h.lastHome%len(h.topo.shards)].sink().enqueues.Add(h.enq)
		h.enq = 0
	}
	for j := range h.deqs {
		if h.deqs[j] != 0 {
			h.topo.shards[j].sink().dequeues.Add(h.deqs[j])
			h.deqs[j] = 0
		}
	}
	if h.counters != nil {
		h.q.mergeShardCounters(h.topo.shards, h.counters)
		h.counters = nil
	}
}

// syncHome resolves the handle's home shard under topology t, and — when a
// shrink has re-homed this handle since its last enqueue — blocks until
// the topology's migration drains complete, so the handle's residual
// elements reach the new home shard before the element about to be
// enqueued. This wait is the enqueue path's only blocking point (the
// other is Dequeue's empty-certification wait), it arises only on the
// first enqueue after a re-homing, and the Resize that owns the drain
// never waits on new-epoch operations, so it cannot deadlock.
//
// ok == false means the observed home change was written by a resize
// NEWER than snapshot t (the homes rewrite runs after the new topology's
// install, so reading the new home forces a topology re-load to observe
// the successor): acting on it here would enqueue into the old epoch's
// shard ahead of the pending migration and skip the barrier. The caller
// must restart the operation, which re-enters on the current topology.
func (h *Handle[T]) syncHome(t *topology[T]) (home int, ok bool) {
	home = h.q.effHome(h.slot, t)
	if home != h.lastHome {
		if h.q.topo.Load() != t {
			return 0, false
		}
		// The rewrite belongs to t's own install (or an older, fully
		// migrated one), so t.migrationsDone is the barrier that orders
		// this handle's residual elements ahead of its next enqueue.
		<-t.migrationsDone
		h.lastHome = home
	}
	return home, true
}

// Enqueue appends v to the handle's home shard. It returns ErrClosed once
// the fabric is closed; an enqueue that began before Close completed may
// still be admitted.
func (h *Handle[T]) Enqueue(v T) error {
	h.check()
	if h.q.closed.Load() {
		return ErrClosed
	}
	for {
		t := h.enter()
		j, ok := h.syncHome(t)
		if !ok {
			h.exit() // re-homed by a newer epoch: restart against it
			continue
		}
		// Elimination fast path: with the home shard empty, every prior
		// element of this producer is already consumed, so handing v
		// straight to a concurrent dequeuer preserves per-producer FIFO
		// (exchange.go). The emptiness check is part of the correctness
		// gate, not a heuristic, so it sits inside the backoff window.
		if h.q.cfg.pairing && len(t.shards) >= 2 {
			h.pairTick++
			if h.pairTick >= h.pairEvery {
				h.pairTick = 0
				if t.shards[j].len() == 0 && h.tryPair(t, j, v) {
					h.pairEvery = 1
					h.enq++ // the taker tallies the matching dequeue
					// No bitmap set: the element never reached the tree.
					h.exit()
					return nil
				}
				if h.pairEvery < pairEveryMax {
					h.pairEvery *= 2
				}
			}
		}
		h.sub[j].Enqueue(v)
		h.enq++
		// The element is at the root before Enqueue returns (propagation
		// completes first), so setting the bit here serializes after a root
		// state that a concurrent clear-then-recheck in dequeueFrom will see.
		t.bitmap.set(j)
		h.exit()
		return nil
	}
}

// EnqueueBatch appends all of vs to the handle's home shard as one multi-op
// leaf block: the whole batch rides a single sub-call and a single
// propagation pass, and because it targets one shard in one block, the
// batch's elements stay contiguous in that shard's FIFO order — per-producer
// order is preserved exactly as for single enqueues. It returns ErrClosed
// once the fabric is closed (the batch is then not enqueued at all; batches
// are all-or-nothing).
func (h *Handle[T]) EnqueueBatch(vs []T) error {
	h.check()
	if len(vs) == 0 {
		return nil
	}
	if h.q.closed.Load() {
		return ErrClosed
	}
	for {
		t := h.enter()
		j, ok := h.syncHome(t)
		if !ok {
			h.exit() // re-homed by a newer epoch: restart against it
			continue
		}
		h.sub[j].EnqueueBatch(vs)
		h.enq += int64(len(vs))
		// As for Enqueue: the elements are at the shard's root before the bit
		// is set, so clear-then-recheck in dequeueFrom cannot strand them.
		t.bitmap.set(j)
		h.exit()
		return nil
	}
}

// Dequeue removes an element from some nonempty shard: it samples up to d
// shards from the nonempty bitmap, takes the fullest, and falls back to a
// deterministic sweep of all shards before reporting ok == false. The
// returned element is the head of its shard, so FIFO order holds per shard
// (and per producer) but not across shards.
//
// ok == false is a true emptiness verdict even across a Resize: if a
// shrink migration is still draining retired shards when the sweep comes
// up empty, Dequeue waits for the drain to complete (elements in flight
// are owed to the survivors) and sweeps again. That wait — bounded by the
// retired backlog, outside the epoch-publication window — is the dequeue
// path's only blocking point (the enqueue path's is syncHome's re-home
// barrier) and arises only mid-shrink on an otherwise empty fabric.
func (h *Handle[T]) Dequeue() (T, bool) {
	h.check()
	for {
		t := h.enter()
		// Sample the migration state BEFORE sweeping: a drain that
		// completes mid-sweep may land its elements in survivor shards the
		// sweep has already passed, so only a sweep that started with no
		// migration pending may certify emptiness.
		migrating := t.retired.Load() != nil
		v, ok := h.dequeueSweep(t)
		h.exit()
		if ok || !migrating {
			return v, ok
		}
		<-t.migrationsDone
	}
}

// dequeueSweep runs Dequeue's three phases against one topology snapshot.
func (h *Handle[T]) dequeueSweep(t *topology[T]) (T, bool) {
	home := h.q.effHome(h.slot, t)
	// Parked hand-offs first: a parker is spinning right now waiting for
	// exactly this probe, so claiming one is both the cheapest dequeue the
	// fabric has and the only way the parker's fast path succeeds.
	if h.q.cfg.pairing && len(t.shards) >= 2 {
		if v, ok := h.takeParked(t, home); ok {
			return v, true
		}
	}
	// Locality fast path: the home shard first. Producers-turned-consumers
	// (and symmetric workloads like pairs) find their own elements there
	// without touching other shards' cache lines.
	if t.bitmap.isSet(home) {
		if v, ok := h.dequeueFrom(t, home); ok {
			return v, true
		}
	}
	// Guided attempts: d-random-choice over the nonempty bitmap.
	for attempt := 0; attempt < 2; attempt++ {
		j := h.pickShard(t)
		if j < 0 {
			break
		}
		if v, ok := h.dequeueFrom(t, j); ok {
			return v, true
		}
	}
	// Certification sweep: every shard, starting at home so concurrent
	// dequeuers spread out. Each sub-dequeue is wait-free, so the whole
	// operation is wait-free with at most k extra sub-operations.
	for i := 0; i < len(t.shards); i++ {
		j := home + i
		if j >= len(t.shards) {
			j -= len(t.shards)
		}
		if v, ok := h.dequeueFrom(t, j); ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

// DequeueBatch removes up to n elements from the fabric, returning them
// with their count (len of the result). It first drains the home shard
// (locality fast path), then refills via d-random-choice over the nonempty
// bitmap, and finally certifies emptiness with a deterministic sweep of all
// shards — the same three phases as Dequeue, but each phase issues one
// multi-op sub-dequeue for everything still missing instead of one
// sub-operation per element. Values pulled from the same shard are
// contiguous and FIFO-ordered; values of different shards may interleave in
// any order, exactly as for single dequeues. A count below n certifies that
// every shard was observed empty after the batch's last successful pull —
// like Dequeue, the certification waits out any in-flight shrink migration
// rather than overlooking elements still being drained.
func (h *Handle[T]) DequeueBatch(n int) ([]T, int) {
	return h.DequeueBatchAppend(nil, n)
}

// DequeueBatchAppend is DequeueBatch appending into dst: up to n dequeued
// elements are appended and the (possibly grown) slice is returned with
// the count actually pulled. Callers that dequeue in a loop (the server's
// reply path) reuse one scratch slice across calls instead of paying a
// fresh result allocation per batch. The appended elements are the
// caller's; certification semantics match DequeueBatch exactly.
func (h *Handle[T]) DequeueBatchAppend(dst []T, n int) ([]T, int) {
	h.check()
	if n <= 0 {
		return dst, 0
	}
	base := len(dst)
	target := base + n
	out := dst
	for {
		t := h.enter()
		migrating := t.retired.Load() != nil // sampled pre-sweep, as in Dequeue
		out = h.batchSweep(t, target, out)
		h.exit()
		if len(out) >= target || !migrating {
			return out, len(out) - base
		}
		<-t.migrationsDone
	}
}

// batchSweep runs DequeueBatch's three phases against one topology
// snapshot, appending to out until len(out) reaches the absolute target n.
func (h *Handle[T]) batchSweep(t *topology[T], n int, out []T) []T {
	home := h.q.effHome(h.slot, t)
	if t.bitmap.isSet(home) {
		out = h.batchFrom(t, home, n, out)
	}
	for attempt := 0; attempt < 2 && len(out) < n; attempt++ {
		j := h.pickShard(t)
		if j < 0 {
			break
		}
		out = h.batchFrom(t, j, n, out)
	}
	for i := 0; i < len(t.shards) && len(out) < n; i++ {
		j := home + i
		if j >= len(t.shards) {
			j -= len(t.shards)
		}
		out = h.batchFrom(t, j, n, out)
	}
	return out
}

// batchFrom issues one multi-op sub-dequeue on shard j for everything out
// still lacks, appending the values and maintaining the nonempty bitmap.
// The bitmap update is batch-aware: a shard that filled the whole request
// may well have more elements, so only a short pull (the shard certified
// empty mid-batch) triggers the clear-then-recheck.
func (h *Handle[T]) batchFrom(t *topology[T], j, n int, out []T) []T {
	want := n - len(out)
	out, got := h.sub[j].DequeueBatchAppend(out, want)
	if got > 0 {
		h.deqs[j] += int64(got)
	}
	if got < want {
		// Top up from parked hand-offs before certifying the shard empty;
		// takeParked tallies each claim itself.
		if h.q.cfg.pairing && len(t.shards) >= 2 {
			for len(out) < n {
				v, ok := h.takeParked(t, j)
				if !ok {
					break
				}
				out = append(out, v)
			}
		}
		t.bitmap.clear(j)
		if t.shards[j].len() > 0 {
			t.bitmap.set(j)
		}
	}
	return out
}

// pickShard samples up to d set bits from the nonempty bitmap and returns
// the candidate with the largest backlog estimate, or -1 when no bit was
// observed set.
func (h *Handle[T]) pickShard(t *topology[T]) int {
	best := -1
	var bestSize int64 = -1
	for i := 0; i < h.q.cfg.choices; i++ {
		j := t.bitmap.randomSet(&h.rng)
		if j < 0 {
			break
		}
		if sz := int64(t.shards[j].len()); sz > bestSize {
			best, bestSize = j, sz
		}
	}
	return best
}

// dequeueFrom attempts one sub-dequeue on shard j, maintaining the size
// estimate and the nonempty bitmap.
func (h *Handle[T]) dequeueFrom(t *topology[T], j int) (T, bool) {
	if v, ok := h.sub[j].Dequeue(); ok {
		h.deqs[j]++
		return v, true
	}
	// The tree is empty, but an enqueuer may be parked at the exchange
	// slots — exactly the regime elimination targets.
	if h.q.cfg.pairing && len(t.shards) >= 2 {
		if v, ok := h.takeParked(t, j); ok {
			return v, true
		}
	}
	// Observed empty: clear the bit, then re-set it if elements raced in
	// between the failed dequeue and the clear (an enqueue reaches the
	// root before its bitmap set — see Enqueue — so either this len read
	// sees it, or the enqueuer's own set lands after the clear).
	t.bitmap.clear(j)
	if t.shards[j].len() > 0 {
		t.bitmap.set(j)
	}
	var zero T
	return zero, false
}

// Drain dequeues until the fabric certifies empty, calling fn for each
// element, and returns the number drained. On a closed fabric with no other
// consumers running, Drain leaves the fabric empty; with concurrent
// consumers it simply stops once a full sweep finds nothing.
func (h *Handle[T]) Drain(fn func(T)) int {
	n := 0
	for {
		v, ok := h.Dequeue()
		if !ok {
			return n
		}
		if fn != nil {
			fn(v)
		}
		n++
	}
}

// Release returns the handle's slot to the registry so another goroutine
// can lease it, and (under WithShardMetrics) folds the lease's per-shard
// tallies and counters into the fabric totals. The handle must not be used
// afterwards (other methods panic); Release itself is idempotent — a
// second Release is a defined no-op, so teardown paths may release
// defensively.
func (h *Handle[T]) Release() {
	if h.released {
		return
	}
	h.released = true
	h.fold()
	// Drop the epoch cache so a parked-but-released handle cannot pin a
	// superseded topology (and its retired shards' queues) alive.
	h.topo = nil
	h.sub = nil
	h.deqs = nil
	h.q.reg.release(h.slot)
}

// check panics on use-after-Release — always a caller bug, and one that
// would otherwise silently corrupt another goroutine's lease.
func (h *Handle[T]) check() {
	if h.released {
		panic("shard: handle used after Release")
	}
}
