package shard

import "sync/atomic"

// registry is the dynamic handle registry: a lock-free Treiber-style free
// list over the fixed slot array [0, n). Acquire pops a free slot index and
// Release pushes one back, so arbitrary goroutines can lease and recycle the
// paper's statically numbered handles.
//
// The list head packs (tag, slot+1) into one uint64; the tag is bumped on
// every successful CAS so a slot that is popped, recycled and pushed again
// cannot make a stale head value win its CAS (the ABA problem). next[i]
// holds the slot index below i on the free list, or -1 at the bottom.
//
// The registry also tallies lease churn (acquires, releases, failed
// acquires) so service layers that lease a handle per connection can report
// registry pressure. The tallies are monotonic atomics off the CAS loop's
// retry path: they count completed operations, not attempts.
type registry struct {
	head atomic.Uint64
	// next entries are cache-line padded: under handle churn (a lease per
	// connection) adjacent slots' free-list links are written by unrelated
	// goroutines back to back.
	next []padInt64

	acquires atomic.Int64
	releases atomic.Int64
	failures atomic.Int64
}

const regTagShift = 32

func regPack(tag uint64, slot int64) uint64 {
	return tag<<regTagShift | uint64(uint32(slot+1))
}

func regSlot(head uint64) int64 {
	return int64(uint32(head)) - 1
}

// init makes every slot in [0, n) available, with slot 0 on top so the first
// Acquires get the lowest indices.
func (r *registry) init(n int) {
	r.next = make([]padInt64, n)
	if n == 0 {
		r.head.Store(regPack(0, -1)) // empty sentinel, not slot 0
		return
	}
	for i := 0; i < n; i++ {
		r.next[i].v.Store(int64(i + 1))
	}
	r.next[n-1].v.Store(-1)
	r.head.Store(regPack(0, 0))
}

// acquire pops a free slot. ok is false when every slot is leased.
func (r *registry) acquire() (slot int, ok bool) {
	for {
		h := r.head.Load()
		s := regSlot(h)
		if s < 0 {
			r.failures.Add(1)
			return 0, false
		}
		// next[s] is stable while s is on the free list: only the releaser
		// wrote it, and nobody rewrites it until s is popped and re-pushed —
		// which the tag CAS below detects.
		nxt := r.next[s].v.Load()
		if r.head.CompareAndSwap(h, regPack(h>>regTagShift+1, nxt)) {
			r.acquires.Add(1)
			return int(s), true
		}
	}
}

// release pushes slot back onto the free list. The caller must own the lease
// (acquired and not yet released); releasing a free slot corrupts the list.
func (r *registry) release(slot int) {
	for {
		h := r.head.Load()
		r.next[slot].v.Store(regSlot(h))
		if r.head.CompareAndSwap(h, regPack(h>>regTagShift+1, int64(slot))) {
			r.releases.Add(1)
			return
		}
	}
}

// free counts currently unleased slots. It is a diagnostic: the count is
// only exact while no Acquire/Release is in flight.
func (r *registry) free() int {
	n := 0
	for s := regSlot(r.head.Load()); s >= 0; s = r.next[s].v.Load() {
		n++
		if n > len(r.next) { // torn read during concurrent mutation
			break
		}
	}
	return n
}
