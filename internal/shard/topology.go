package shard

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/metrics"
)

// topology is one immutable epoch of the fabric's shard set. The Queue
// holds exactly one live topology behind an atomic pointer; every fabric
// operation loads it once and works against that snapshot, so an operation
// never observes a half-installed shard set. Resize installs a successor
// (epoch+1) rather than mutating the current one.
//
// Shard identity is positional and prefix-stable: a grow appends fresh
// shards after the survivors, a shrink truncates the suffix, so
// shards[j] of epoch e+1 is the same *shardState as shards[j] of epoch e
// for every j < min(k_old, k_new). Handles exploit this to reuse their
// per-shard sub-handles across a refresh instead of re-deriving all of
// them.
type topology[T any] struct {
	// epoch numbers topologies from 1 (0 is the "idle" sentinel published
	// by handles between operations, see Queue.slotEpochs).
	epoch uint64

	// shards is the live shard set; its length is the fabric's current k.
	shards []*shardState[T]

	// bitmap is this epoch's nonempty-shard index, sized to len(shards).
	// Each epoch owns its own bitmap: a stale handle setting a bit on a
	// superseded epoch's bitmap is harmless because dequeue correctness
	// never depends on the bitmap (there is always a full-sweep fallback).
	bitmap bitmap

	// retired holds the shards a shrink removed from service, until their
	// residual elements are migrated into the survivors. They are invisible
	// to dequeues of this epoch — only the migration drain (which runs
	// after the grace period, so it has exclusive access) touches them;
	// Len reads them so the backlog owed to the survivors stays counted.
	// The pointer is cleared once the drain completes, so a topology that
	// stays current for a long time (the scaled-down steady state) does
	// not pin the retired shards' memory.
	retired atomic.Pointer[[]*shardState[T]]

	// migrationsDone is closed once every retired shard has been drained
	// into its destination (immediately at install when there is nothing to
	// migrate). A producer whose home moved blocks its next enqueue on this
	// channel, so its residual elements reach the new home shard before any
	// of its new ones — the ordering that keeps per-producer FIFO intact
	// across epochs.
	migrationsDone chan struct{}
}

// slotEpoch is one handle slot's published operation epoch, padded so
// concurrent publishers never false-share. A slot publishes the epoch of
// the topology its current operation runs against and republishes 0 when
// the operation completes; Resize's grace wait spins until no slot still
// publishes the superseded epoch.
type slotEpoch struct {
	v atomic.Uint64
	_ [120]byte
}

// effHome maps a slot's persistent home to an index of topology t. The
// persistent value is always canonical for the latest topology (Resize
// rewrites it under the mod rule below before it migrates); the mod here
// only covers the instant between installing a shrunk topology and
// rewriting the homes, and it yields exactly the value the rewrite will
// store — so a handle racing that window computes the same home either
// way.
func (q *Queue[T]) effHome(slot int, t *topology[T]) int {
	return int(q.homes[slot].v.Load()) % len(t.shards)
}

// maintSlot is the sub-queue handle slot reserved for the fabric's own
// maintenance operations (migration drains). Sub-queues are built with one
// slot beyond cfg.maxHandles so maintenance never competes with leases.
func (q *Queue[T]) maintSlot() int { return q.cfg.maxHandles }

// ResizeStats counts topology changes over the fabric's lifetime. The JSON
// field names are a stable encoding consumed by the service layer's
// /statsz endpoint.
type ResizeStats struct {
	Epoch    uint64 `json:"epoch"`    // current topology epoch (1 = as built)
	Grows    int64  `json:"grows"`    // completed Resize calls that added shards
	Shrinks  int64  `json:"shrinks"`  // completed Resize calls that removed shards
	Migrated int64  `json:"migrated"` // elements drained from retired shards into survivors
}

// Epoch returns the current topology epoch. It starts at 1 and increments
// with every effective Resize.
func (q *Queue[T]) Epoch() uint64 { return q.topo.Load().epoch }

// ResizeStats returns the fabric's topology-change counters.
func (q *Queue[T]) ResizeStats() ResizeStats {
	return ResizeStats{
		Epoch:    q.topo.Load().epoch,
		Grows:    q.grows.Load(),
		Shrinks:  q.shrinks.Load(),
		Migrated: q.migrated.Load(),
	}
}

// Resize changes the fabric's shard count to k while operations continue.
//
// A grow appends fresh shards; nothing moves, existing producers keep
// their home shards (so per-producer FIFO is trivially preserved) and new
// leases spread over the wider set. A shrink retires the suffix
// [k, k_old): producers homed there are re-homed deterministically to
// home mod k, and the retired shards' residual elements are drained — in
// their shard-FIFO order — into that same destination, so conservation is
// exact and a re-homed producer's old elements land in its new home shard
// before any of its new ones (the producer's next enqueue blocks until
// the drain completes, as does a dequeue that would otherwise certify the
// fabric empty mid-drain; all other operations stay non-blocking).
//
// Resize serializes with other Resize calls, returns once migration is
// complete, and is a no-op when k equals the current shard count. It
// fails on a closed fabric: Close hands the backlog to the consumers, and
// moving elements underneath a drain would serve nobody.
func (q *Queue[T]) Resize(k int) error {
	if k < 1 {
		return fmt.Errorf("%w (got %d)", ErrBadShards, k)
	}
	q.resizeMu.Lock()
	defer q.resizeMu.Unlock()
	if q.closed.Load() {
		return ErrClosed
	}
	old := q.topo.Load()
	kOld := len(old.shards)
	if k == kOld {
		return nil
	}

	nt := &topology[T]{
		epoch:          old.epoch + 1,
		migrationsDone: make(chan struct{}),
	}
	var retired []*shardState[T]
	if k > kOld {
		// Build the new shards before installing anything, so a backend
		// failure leaves the old topology fully intact.
		fresh := make([]*shardState[T], 0, k-kOld)
		for j := kOld; j < k; j++ {
			sub, err := newSubQueue[T](q.cfg)
			if err != nil {
				return err
			}
			fresh = append(fresh, &shardState[T]{q: sub, counter: &metrics.Counter{}})
		}
		nt.shards = append(append(make([]*shardState[T], 0, k), old.shards...), fresh...)
	} else {
		nt.shards = old.shards[:k:k]
		retired = old.shards[k:]
		nt.retired.Store(&retired)
	}
	nt.bitmap.init(k)
	for j, s := range nt.shards {
		if s.len() > 0 {
			nt.bitmap.set(j)
		}
	}

	// Install the new epoch first, then re-home: a handle that loads the
	// new topology before its home is rewritten computes the same
	// destination via the effHome mod rule, while a handle still on the old
	// topology may keep enqueueing into a retired shard — the drain below
	// starts only after the grace period, so those stragglers are captured
	// in order.
	q.topo.Store(nt)
	if k < kOld {
		for i := range q.homes {
			if h := q.homes[i].v.Load(); h >= int64(k) {
				q.homes[i].v.Store(h % int64(k))
			}
		}
	}

	// Grace period: wait until no operation still runs against the old
	// epoch. Afterwards the retired shards are unreachable by every handle
	// (the new topology does not list them), so the drain below observes a
	// sealed FIFO stream and "drained empty" is a final verdict.
	q.awaitEpochRetired(old.epoch)

	var moved int64
	for i, s := range retired {
		oldIdx := k + i
		dst := nt.shards[oldIdx%k]
		moved += q.drainInto(s, nt, oldIdx%k)
		// The destination inherits the retired shard's recorded history —
		// traffic tallies and cost-model counters — and the merged-into
		// pointer routes any tallies still buffered in live handles there
		// too, so lifetime totals survive the shrink. (A fold that resolved
		// its sink just before this store may still land on the retired
		// state; that sliver is bounded by one in-flight fold per handle.)
		s.mergedInto.Store(dst)
		dst.enqueues.Add(s.enqueues.Swap(0))
		dst.dequeues.Add(s.dequeues.Swap(0))
		q.mu.Lock()
		dst.counter.Merge(s.counter)
		q.mu.Unlock()
	}
	// The retired shards are empty now; unpin them so their queues (whole
	// block histories, for the core backend) can be collected even if this
	// topology stays current indefinitely.
	nt.retired.Store(nil)
	close(nt.migrationsDone)

	// Re-sync the bitmap: enqueues that completed on the old epoch set only
	// the old bitmap. Correctness never depends on this (dequeues fall back
	// to a full sweep), it just keeps d-random-choice well guided.
	for j, s := range nt.shards {
		if s.len() > 0 {
			nt.bitmap.set(j)
		}
	}

	if k > kOld {
		q.grows.Add(1)
	} else {
		q.shrinks.Add(1)
		q.migrated.Add(moved)
	}
	return nil
}

// awaitEpochRetired spins until no handle slot publishes epoch e anymore.
// Publication follows a publish-then-recheck protocol (see Handle.enter),
// so once this returns, any operation that transiently published e has
// re-read the topology, seen the new epoch, and republished — it never
// touched a shard under e. Operations are wait-free and short, so the spin
// is brief; Resize itself is not (and need not be) wait-free.
func (q *Queue[T]) awaitEpochRetired(e uint64) {
	for i := range q.slotEpochs {
		for q.slotEpochs[i].v.Load() == e {
			runtime.Gosched()
		}
	}
}

// drainInto migrates every residual element of retired shard src into
// nt.shards[dst], preserving the src stream's FIFO order, and returns the
// element count. It runs with exclusive access to src (post grace period)
// through the reserved maintenance slot, in bounded batches so one giant
// backlog does not allocate a giant slice. The moved elements are tallied
// as dequeues on src and enqueues on dst, keeping each shard's
// enqueues-dequeues == len audit exact.
func (q *Queue[T]) drainInto(src *shardState[T], nt *topology[T], dst int) int64 {
	srcH, err := src.q.handle(q.maintSlot())
	if err != nil {
		panic(fmt.Sprintf("shard: maintenance handle on retired shard: %v", err))
	}
	dstH, err := nt.shards[dst].q.handle(q.maintSlot())
	if err != nil {
		panic(fmt.Sprintf("shard: maintenance handle on shard %d: %v", dst, err))
	}
	const chunk = 256
	var moved int64
	for {
		vs, got := srcH.DequeueBatch(chunk)
		if got == 0 {
			return moved
		}
		dstH.EnqueueBatch(vs)
		nt.bitmap.set(dst)
		src.dequeues.Add(int64(got))
		nt.shards[dst].enqueues.Add(int64(got))
		moved += int64(got)
	}
}
