package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestChurnConservation is the registry + fabric stress test: more
// goroutines than handle slots churn Acquire/Release while enqueueing and
// dequeueing, and at the end the books must balance exactly — every value
// enqueued is dequeued exactly once (by a worker or the final drain), with
// no duplicates, no phantoms, and zero residual.
//
// Run with -race: the test is specifically shaped to catch slot-lease races
// (two goroutines briefly sharing a sub-handle would be a data race on the
// underlying queue's per-process leaf).
func TestChurnConservation(t *testing.T) {
	backends(t, func(t *testing.T, backend Backend) {
		const (
			slots      = 8
			shards     = 4
			opsPerG    = 2000
			leaseOps   = 64 // Release/re-Acquire every leaseOps operations
			goroutines = 24 // 3x oversubscribed vs slots
		)
		q, err := New[int64](shards, WithBackend(backend), WithMaxHandles(slots))
		if err != nil {
			t.Fatal(err)
		}
		var enqTotal, deqTotal, enqSum, deqSum atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				acquire := func() *Handle[int64] {
					for {
						h, err := q.Acquire()
						if err == nil {
							return h
						}
						runtime.Gosched() // all slots leased; wait for churn
					}
				}
				h := acquire()
				rng := rngSeed(g + 1000)
				next := int64(0)
				for op := 0; op < opsPerG; op++ {
					if op%leaseOps == leaseOps-1 {
						h.Release()
						h = acquire()
					}
					if xorshift(&rng)%2 == 0 {
						v := int64(g)<<32 | next
						next++
						if err := h.Enqueue(v); err != nil {
							t.Errorf("goroutine %d: Enqueue: %v", g, err)
							break
						}
						enqTotal.Add(1)
						enqSum.Add(v)
					} else if v, ok := h.Dequeue(); ok {
						deqTotal.Add(1)
						deqSum.Add(v)
					}
				}
				h.Release()
			}(g)
		}
		wg.Wait()

		// Residual check: Len must match the outstanding count, and a final
		// drain must account for every remaining value.
		outstanding := enqTotal.Load() - deqTotal.Load()
		if got := int64(q.Len()); got != outstanding {
			t.Errorf("Len = %d, want %d outstanding", got, outstanding)
		}
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int64]bool)
		drained := int64(h.Drain(func(v int64) {
			if seen[v] {
				t.Errorf("value %d drained twice", v)
			}
			seen[v] = true
			deqSum.Add(v)
		}))
		h.Release() // fold the drain's tallies in before the cross-check
		if drained != outstanding {
			t.Errorf("drained %d values, want %d", drained, outstanding)
		}
		if got, want := deqSum.Load(), enqSum.Load(); got != want {
			t.Errorf("sum of dequeued values = %d, want %d (phantom or lost value)", got, want)
		}
		if got := q.Len(); got != 0 {
			t.Errorf("Len after full drain = %d, want 0", got)
		}

		// Cross-check against per-shard accounting.
		var shardEnq, shardDeq int64
		for _, st := range q.ShardStats() {
			shardEnq += st.Enqueues
			shardDeq += st.Dequeues
		}
		if shardEnq != enqTotal.Load() {
			t.Errorf("shard enqueue total = %d, want %d", shardEnq, enqTotal.Load())
		}
		if shardDeq != deqTotal.Load()+drained {
			t.Errorf("shard dequeue total = %d, want %d", shardDeq, deqTotal.Load()+drained)
		}
	})
}

// TestConcurrentAcquireRelease hammers the registry alone: every lease must
// be exclusive (no two live handles share a slot) and no slot may leak.
func TestConcurrentAcquireRelease(t *testing.T) {
	const slots = 16
	q, err := New[int](2, WithMaxHandles(slots))
	if err != nil {
		t.Fatal(err)
	}
	var owners [slots]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h, err := q.Acquire()
				if err != nil {
					runtime.Gosched()
					continue
				}
				if !owners[h.Slot()].CompareAndSwap(0, int32(g)+1) {
					t.Errorf("slot %d double-leased", h.Slot())
				}
				owners[h.Slot()].Store(0)
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	if got := q.reg.free(); got != slots {
		t.Errorf("free slots after churn = %d, want %d (leak or corruption)", got, slots)
	}
}
