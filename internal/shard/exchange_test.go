package shard

import (
	"sync"
	"testing"
)

func totalPairs[T any](q *Queue[T]) int64 {
	var sum int64
	for _, s := range q.ShardStats() {
		sum += s.Pairs
	}
	return sum
}

// TestExchangeWithdraw checks the no-taker path deterministically: a park
// with nobody probing must withdraw cleanly, leave the slot empty, and
// report no hand-off.
func TestExchangeWithdraw(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	topo := q.topo.Load()
	if h.tryPair(topo, 0, 7) {
		t.Fatal("tryPair reported a hand-off with no taker running")
	}
	for i := range topo.shards[0].exch {
		if topo.shards[0].exch[i].p.Load() != nil {
			t.Fatalf("slot %d still occupied after withdrawal", i)
		}
	}
	if got := totalPairs(q); got != 0 {
		t.Fatalf("pairs = %d after a withdrawn park, want 0", got)
	}
}

// TestExchangeClaim checks the taker path deterministically: a parked value
// staged in a slot is claimed by a dequeue (with empty trees everywhere),
// tallied as a pair, and the slot is released.
func TestExchangeClaim(t *testing.T) {
	q, err := New[int](2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	topo := q.topo.Load()
	for j := range topo.shards {
		topo.shards[j].exch[1].p.Store(&parked[int]{v: 40 + j})
	}
	seen := map[int]bool{}
	for range topo.shards {
		v, ok := h.Dequeue()
		if !ok {
			t.Fatal("Dequeue missed a parked value")
		}
		seen[v] = true
	}
	if !seen[40] || !seen[41] {
		t.Fatalf("claimed values = %v, want {40, 41}", seen)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("Dequeue returned a value from an empty fabric")
	}
	if got := totalPairs(q); got != 2 {
		t.Fatalf("pairs = %d, want 2", got)
	}
}

// TestPairingFires runs a hand-off-shaped workload — consumers spinning on
// an empty fabric while producers trickle values in — and checks that (a)
// elimination actually fires, (b) every value still arrives exactly once,
// and (c) the folded enqueue/dequeue tallies balance, i.e. eliminated pairs
// are counted on both sides.
func TestPairingFires(t *testing.T) {
	const (
		producers = 2
		consumers = 2
		perProd   = 3000
	)
	q, err := New[uint64](2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]int, producers*perProd)
	var consumed sync.WaitGroup
	consumed.Add(producers * perProd)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := q.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			done := make(chan struct{})
			go func() { consumed.Wait(); close(done) }()
			for {
				select {
				case <-done:
					return
				default:
				}
				if v, ok := h.Dequeue(); ok {
					mu.Lock()
					seen[v]++
					mu.Unlock()
					consumed.Done()
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h, err := q.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			for i := 0; i < perProd; i++ {
				if err := h.Enqueue(uint64(p)<<32 | uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if len(seen) != producers*perProd {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), producers*perProd)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x consumed %d times", v, n)
		}
	}
	var enqs, deqs int64
	for _, s := range q.ShardStats() {
		enqs += s.Enqueues
		deqs += s.Dequeues
	}
	if enqs != deqs || enqs != int64(producers*perProd) {
		t.Fatalf("tally imbalance: enqueues %d, dequeues %d, want both %d",
			enqs, deqs, producers*perProd)
	}
	if pairs := totalPairs(q); pairs == 0 {
		t.Fatal("no pairs eliminated under a hand-off workload")
	} else {
		t.Logf("eliminated %d of %d pairs", pairs, producers*perProd)
	}
}

// TestPairingPerProducerOrder checks the legality claim directly: with
// pairing enabled, each producer's values are still consumed in its own
// enqueue order, even when some of them bypass the tree entirely.
func TestPairingPerProducerOrder(t *testing.T) {
	const (
		producers = 3
		perProd   = 2000
	)
	q, err := New[uint64](2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	lastSeq := make([]int64, producers)
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	var consumed sync.WaitGroup
	consumed.Add(producers * perProd)
	wg.Add(1)
	go func() {
		defer wg.Done()
		h, err := q.Acquire()
		if err != nil {
			t.Error(err)
			return
		}
		defer h.Release()
		done := make(chan struct{})
		go func() { consumed.Wait(); close(done) }()
		for {
			select {
			case <-done:
				return
			default:
			}
			if v, ok := h.Dequeue(); ok {
				p, seq := int(v>>32), int64(v&0xffffffff)
				mu.Lock()
				if seq <= lastSeq[p] {
					t.Errorf("producer %d: seq %d after %d", p, seq, lastSeq[p])
				}
				lastSeq[p] = seq
				mu.Unlock()
				consumed.Done()
			}
		}
	}()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h, err := q.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			for i := 0; i < perProd; i++ {
				if err := h.Enqueue(uint64(p)<<32 | uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, last := range lastSeq {
		if last != perProd-1 {
			t.Errorf("producer %d: last consumed seq %d, want %d", p, last, perProd-1)
		}
	}
}

// TestWithPairingDisabled checks the opt-out: no parks, no pairs, exchange
// slots never touched.
func TestWithPairingDisabled(t *testing.T) {
	q, err := New[int](2, WithPairing(false))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := q.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			for i := 0; i < 2000; i++ {
				if err := h.Enqueue(i); err != nil {
					t.Error(err)
					return
				}
				if _, ok := h.Dequeue(); !ok {
					// Another goroutine may have taken it; that's fine.
					continue
				}
			}
		}()
	}
	wg.Wait()
	if got := totalPairs(q); got != 0 {
		t.Fatalf("pairs = %d with pairing disabled, want 0", got)
	}
	topo := q.topo.Load()
	for j := range topo.shards {
		for i := range topo.shards[j].exch {
			if topo.shards[j].exch[i].p.Load() != nil {
				t.Fatalf("shard %d slot %d occupied with pairing disabled", j, i)
			}
		}
	}
}
