package shard

// Batch-path tests for the fabric: home-shard routing of whole batches,
// d-random-choice refill across shards, certified-empty semantics, and
// conservation under concurrent lease churn.

import (
	"math/rand"
	"sync"
	"testing"
)

func TestBatchRoundTripSingleShard(t *testing.T) {
	for _, backend := range []Backend{BackendCore, BackendBounded} {
		t.Run(string(backend), func(t *testing.T) {
			q, err := New[int](1, WithBackend(backend), WithMaxHandles(4), WithGCInterval(8))
			if err != nil {
				t.Fatal(err)
			}
			h, err := q.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			defer h.Release()
			if err := h.EnqueueBatch([]int{1, 2, 3, 4, 5}); err != nil {
				t.Fatal(err)
			}
			if err := h.Enqueue(6); err != nil {
				t.Fatal(err)
			}
			vs, n := h.DequeueBatch(10)
			if n != 6 {
				t.Fatalf("DequeueBatch(10) count = %d, want 6", n)
			}
			for i, v := range vs {
				if v != i+1 {
					t.Fatalf("vs[%d] = %d, want %d (single-shard FIFO)", i, v, i+1)
				}
			}
			if vs, n := h.DequeueBatch(3); n != 0 || len(vs) != 0 {
				t.Fatalf("DequeueBatch on empty = (%v,%d)", vs, n)
			}
		})
	}
}

// TestBatchSpansShards enqueues through many handles (spreading homes over
// the shards) and drains everything with batch dequeues from one handle:
// the refill path must cross shards until the fabric certifies empty.
func TestBatchSpansShards(t *testing.T) {
	const shards, producers, per = 4, 8, 32
	q, err := New[int](shards, WithMaxHandles(producers+1))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < producers; p++ {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		es := make([]int, per)
		for i := range es {
			es[i] = p*1000 + i
		}
		if err := h.EnqueueBatch(es); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	seen := map[int]bool{}
	lastSeq := map[int]int{} // producer -> last sequence seen
	for {
		vs, n := h.DequeueBatch(13)
		if n == 0 {
			break
		}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("value %d dequeued twice", v)
			}
			seen[v] = true
			p, seq := v/1000, v%1000
			if prev, ok := lastSeq[p]; ok && seq < prev {
				t.Fatalf("producer %d out of order: %d after %d", p, seq, prev)
			}
			lastSeq[p] = seq
		}
	}
	if len(seen) != producers*per {
		t.Fatalf("drained %d values, want %d", len(seen), producers*per)
	}
}

func TestBatchClosedFabric(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if err := h.EnqueueBatch([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if err := h.EnqueueBatch([]int{3, 4}); err != ErrClosed {
		t.Fatalf("EnqueueBatch after Close = %v, want ErrClosed", err)
	}
	if err := h.EnqueueBatch(nil); err != nil {
		t.Fatalf("empty EnqueueBatch after Close = %v, want nil (no-op)", err)
	}
	// Draining a closed fabric still works.
	if vs, n := h.DequeueBatch(4); n != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("drain after Close = (%v,%d)", vs, n)
	}
}

// TestBatchChurnConservation runs mixed batch/single traffic through
// short-lived leases on a multi-shard fabric and checks exact conservation
// plus per-producer FIFO. Runs under -race in CI.
func TestBatchChurnConservation(t *testing.T) {
	const workers, leases, perLease = 6, 5, 60
	q, err := New[int64](3, WithMaxHandles(4)) // fewer slots than workers: Acquire contention
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	enqueued := make(map[int64]bool)
	got := make(map[int64]int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for lease := 0; lease < leases; lease++ {
				var h *Handle[int64]
				for {
					var err error
					if h, err = q.Acquire(); err == nil {
						break
					}
				}
				var mine, seen []int64
				enq := int64(0)
				for enq < perLease {
					m := 1 + rng.Intn(7)
					if rng.Intn(2) == 0 {
						es := make([]int64, 0, m)
						for i := 0; i < m && enq < perLease; i++ {
							es = append(es, int64(w)<<40|int64(lease)<<20|enq)
							enq++
						}
						if err := h.EnqueueBatch(es); err != nil {
							t.Errorf("EnqueueBatch: %v", err)
							break
						}
						mine = append(mine, es...)
					} else {
						vs, _ := h.DequeueBatch(m)
						seen = append(seen, vs...)
					}
				}
				h.Release()
				mu.Lock()
				for _, v := range mine {
					enqueued[v] = true
				}
				for _, v := range seen {
					got[v]++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for {
		vs, n := h.DequeueBatch(64)
		if n == 0 {
			break
		}
		for _, v := range vs {
			got[v]++
		}
	}
	h.Release() // folds the drain's dequeue tallies into the shard stats
	for v, n := range got {
		if n != 1 {
			t.Errorf("value %#x dequeued %d times", v, n)
		}
		if !enqueued[v] {
			t.Errorf("phantom value %#x", v)
		}
	}
	if len(got) != len(enqueued) {
		t.Errorf("recovered %d values, enqueued %d", len(got), len(enqueued))
	}
	stats := q.ShardStats()
	var enq, deq int64
	for _, s := range stats {
		enq += s.Enqueues
		deq += s.Dequeues
	}
	if want := int64(len(enqueued)); enq != want || deq != want {
		t.Errorf("shard tallies enq=%d deq=%d, want %d each", enq, deq, want)
	}
}
