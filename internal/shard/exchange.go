package shard

// Enqueue/dequeue elimination. A FIFO enqueue and a concurrent dequeue on
// an *empty* queue annihilate: handing the value straight across is
// linearizable (order both at the hand-off instant). The fabric already
// relaxes cross-shard ordering, so the only order that must survive is
// per-producer FIFO — and an enqueuer parks only while its home shard is
// empty, which (because every completed enqueue of this producer is
// contained in the home root's prefix, and the root size counts that whole
// prefix) implies all of its previous elements are already consumed. The
// pair is therefore indistinguishable from "enqueue; immediate dequeue" at
// the hand-off, for every producer individually.
//
// Mechanics: each shard carries a small array of exchange slots. An
// enqueuer publishes a freshly allocated, immutable parked node with one
// CAS, spins briefly, yields once (essential on a single P: the matching
// dequeuer cannot run otherwise), and then withdraws with a second CAS.
// A dequeuer claims a parked node with one CAS. The withdraw-CAS and the
// claim-CAS race on the same (slot, node) pair, so exactly one side wins:
// claimed means the enqueue is complete without touching the tree;
// withdrawn means the enqueuer falls back to the normal tree append. The
// value is read only after a successful claim, and the node is never
// mutated after publication, so there is no data race; node reclamation is
// the Go GC's job, which also kills ABA — a stale claim-CAS can only
// compare against a node address that is still reachable, hence still the
// same logical node, never a recycled one.
//
// Wait-freedom is untouched: the fast path is two CASes and a bounded spin
// in front of the wait-free tree path, never a retry loop around it.
//
// Resize safety: parks happen between Handle.enter and Handle.exit, inside
// the published-epoch window the resize grace period waits on, and every
// park resolves (taken or withdrawn) before the enqueue returns. A retired
// shard can therefore never hold a parked value when its drain runs.
//
// A per-handle backoff (pairEvery, doubling up to pairEveryMax on each
// withdrawal, reset on each hit) keeps the fast path's cost near zero for
// workloads where elimination never matches, e.g. a persistently backlogged
// shard.

import (
	"runtime"
	"sync/atomic"
)

const (
	// pairSlots is the exchange-slot count per shard: enough that a few
	// concurrent producers on one shard don't collide on a single slot,
	// small enough that the dequeuer's probe stays O(1).
	pairSlots = 4

	// pairSpins bounds the owner's busy-wait before it yields and
	// withdraws. Parks only happen when the shard looks empty, so a taker
	// is either already probing or a scheduling quantum away.
	pairSpins = 64

	// pairEveryMax caps the elimination backoff: at worst one park attempt
	// per 64 empty-shard enqueues.
	pairEveryMax = 64
)

// parked is one parked enqueue value. It is immutable from the moment its
// address is published in a slot; claimers read v only after winning the
// claim CAS.
type parked[T any] struct{ v T }

// pairSlot is a single exchange slot, alone on two cache lines: slots are
// pure ping-pong lines between one producer and one consumer, and packing
// them would false-share the pongs.
type pairSlot[T any] struct {
	p atomic.Pointer[parked[T]]
	_ [120]byte
}

// tryPair attempts to eliminate the enqueue of e against a concurrent
// dequeuer at home's exchange slots. It reports whether the value was
// handed off (the enqueue is complete); false means no hand-off happened
// and the caller must take the tree path. The shard's pairs tally is
// bumped by the taker, so conservation audits see the pair exactly once.
func (h *Handle[T]) tryPair(t *topology[T], home int, e T) bool {
	s := t.shards[home]
	slot := &s.exch[int(xorshift(&h.rng))&(pairSlots-1)]
	n := &parked[T]{v: e}
	if !slot.p.CompareAndSwap(nil, n) {
		return false // slot occupied; don't stack parks
	}
	for i := 0; i < pairSpins; i++ {
		if slot.p.Load() != n {
			return true // claimed mid-spin
		}
	}
	// Let a dequeuer run; on GOMAXPROCS=1 this yield is the only way a
	// taker can appear at all.
	runtime.Gosched()
	if slot.p.CompareAndSwap(n, nil) {
		return false // withdrawn; the value was never visible to a claim winner
	}
	return true // a taker won the race: hand-off complete
}

// takeParked probes shard j's exchange slots for a parked value. On a hit
// it owns the value exclusively (claim CAS) and tallies both the dequeue
// (the parker tallied the matching enqueue on its side, so the shard's
// enqueues-dequeues == len audit stays exact) and the eliminated pair.
func (h *Handle[T]) takeParked(t *topology[T], j int) (T, bool) {
	s := t.shards[j]
	for i := range s.exch {
		if n := s.exch[i].p.Load(); n != nil {
			if s.exch[i].p.CompareAndSwap(n, nil) {
				h.deqs[j]++
				s.pairs.Add(1)
				return n.v, true
			}
		}
	}
	var zero T
	return zero, false
}
