package shard

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0); !errors.Is(err, ErrBadShards) {
		t.Errorf("New(0) error = %v, want ErrBadShards", err)
	}
	if _, err := New[int](2, WithMaxHandles(-1)); !errors.Is(err, ErrBadHandles) {
		t.Errorf("WithMaxHandles(-1) error = %v, want ErrBadHandles", err)
	}
	if _, err := New[int](2, WithDequeueChoices(0)); !errors.Is(err, ErrBadChoices) {
		t.Errorf("WithDequeueChoices(0) error = %v, want ErrBadChoices", err)
	}
	if _, err := New[int](2, WithBackend("nope")); !errors.Is(err, ErrBadBackend) {
		t.Errorf("WithBackend(nope) error = %v, want ErrBadBackend", err)
	}
}

func backends(t *testing.T, fn func(t *testing.T, b Backend)) {
	for _, b := range []Backend{BackendCore, BackendBounded} {
		t.Run(string(b), func(t *testing.T) { fn(t, b) })
	}
}

// A single-shard fabric is a plain FIFO queue: cross-shard relaxation
// vanishes at k=1, so strict order must hold.
func TestSingleShardFIFO(t *testing.T) {
	backends(t, func(t *testing.T, b Backend) {
		q, err := New[int](1, WithBackend(b), WithMaxHandles(4))
		if err != nil {
			t.Fatal(err)
		}
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
		const n = 1000
		for i := 0; i < n; i++ {
			if err := h.Enqueue(i); err != nil {
				t.Fatal(err)
			}
		}
		if got := q.Len(); got != n {
			t.Errorf("Len = %d, want %d", got, n)
		}
		for i := 0; i < n; i++ {
			v, ok := h.Dequeue()
			if !ok || v != i {
				t.Fatalf("Dequeue #%d = (%d, %v), want (%d, true)", i, v, ok, i)
			}
		}
		if v, ok := h.Dequeue(); ok {
			t.Errorf("Dequeue on empty fabric = (%d, true)", v)
		}
	})
}

// Per-shard FIFO: with one producer per shard, each producer's elements must
// come out in order even though dequeues interleave shards arbitrarily.
func TestPerShardFIFO(t *testing.T) {
	const k = 4
	const perProducer = 500
	q, err := New[[2]int](k, WithMaxHandles(k))
	if err != nil {
		t.Fatal(err)
	}
	producers := make([]*Handle[[2]int], k)
	for i := range producers {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		producers[i] = h
	}
	for s := 0; s < perProducer; s++ {
		for i, h := range producers {
			if err := h.Enqueue([2]int{i, s}); err != nil {
				t.Fatal(err)
			}
		}
	}
	lastSeq := map[int]int{}
	got := producers[0].Drain(func(v [2]int) {
		producer, seq := v[0], v[1]
		if last, seen := lastSeq[producer]; seen && seq <= last {
			t.Fatalf("producer %d: seq %d dequeued after %d", producer, seq, last)
		}
		lastSeq[producer] = seq
	})
	if got != k*perProducer {
		t.Errorf("drained %d elements, want %d", got, k*perProducer)
	}
	for _, h := range producers {
		h.Release()
	}
}

func TestCloseAndDrain(t *testing.T) {
	q, err := New[int](4, WithMaxHandles(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	for i := 0; i < 100; i++ {
		if err := h.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Closed() {
		t.Error("Closed() = true before Close")
	}
	q.Close()
	q.Close() // idempotent
	if !q.Closed() {
		t.Error("Closed() = false after Close")
	}
	if err := h.Enqueue(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Enqueue after Close = %v, want ErrClosed", err)
	}
	sum := 0
	if n := h.Drain(func(v int) { sum += v }); n != 100 {
		t.Errorf("Drain = %d elements, want 100", n)
	}
	if want := 99 * 100 / 2; sum != want {
		t.Errorf("drained sum = %d, want %d", sum, want)
	}
	if got := q.Len(); got != 0 {
		t.Errorf("Len after drain = %d, want 0", got)
	}
}

func TestRegistryExhaustionAndRecycle(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := q.MaxHandles(); got != 3 {
		t.Fatalf("MaxHandles = %d, want 3", got)
	}
	handles := make([]*Handle[int], 3)
	seen := map[int]bool{}
	for i := range handles {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		if seen[h.Slot()] {
			t.Fatalf("slot %d leased twice", h.Slot())
		}
		seen[h.Slot()] = true
		handles[i] = h
	}
	if _, err := q.Acquire(); !errors.Is(err, ErrNoFreeHandles) {
		t.Fatalf("Acquire on exhausted registry = %v, want ErrNoFreeHandles", err)
	}
	handles[1].Release()
	h, err := q.Acquire()
	if err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	if h.Slot() != handles[1].Slot() {
		t.Errorf("recycled slot = %d, want %d", h.Slot(), handles[1].Slot())
	}
	h.Release()
	handles[0].Release()
	handles[2].Release()
	if got := q.reg.free(); got != 3 {
		t.Errorf("free slots = %d, want 3", got)
	}
}

func TestUseAfterReleasePanics(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	defer func() {
		if recover() == nil {
			t.Error("use after Release did not panic")
		}
	}()
	h.Enqueue(1)
}

func TestShardStatsAndRouting(t *testing.T) {
	const k = 4
	q, err := New[int](k, WithMaxHandles(k))
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle[int], k)
	homes := map[int]bool{}
	for i := range handles {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		homes[h.Home()] = true
	}
	// Round-robin assignment: k sequential leases cover all k shards.
	if len(homes) != k {
		t.Errorf("%d leases cover %d homes, want %d", k, len(homes), k)
	}
	for i, h := range handles {
		for s := 0; s < (i+1)*10; s++ {
			if err := h.Enqueue(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Enqueue/dequeue tallies are folded in on Release.
	for _, st := range q.ShardStats() {
		if st.Enqueues != 0 {
			t.Errorf("shard %d: Enqueues = %d before any Release", st.Shard, st.Enqueues)
		}
	}
	for _, h := range handles {
		h.Release()
	}
	stats := q.ShardStats()
	if len(stats) != k {
		t.Fatalf("ShardStats len = %d, want %d", len(stats), k)
	}
	total := 0
	for _, st := range stats {
		if st.Len != int(st.Enqueues) {
			t.Errorf("shard %d: Len %d != Enqueues %d before any dequeue",
				st.Shard, st.Len, st.Enqueues)
		}
		total += st.Len
	}
	if want := 10 + 20 + 30 + 40; total != want {
		t.Errorf("total backlog = %d, want %d", total, want)
	}
}

func TestShardMetrics(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(2), WithShardMetrics())
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := h.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	h.Drain(nil)
	// Live handles have not merged yet.
	for _, s := range q.ShardSummaries() {
		if s.Ops != 0 {
			t.Errorf("ShardSummaries before Release: ops = %d, want 0", s.Ops)
		}
	}
	h.Release()
	sums := q.ShardSummaries()
	var ops int64
	for _, s := range sums {
		ops += s.TotalEnqs + s.TotalDeqs
	}
	// 50 enqueues and 50 successful dequeues, attributed to their shards.
	if ops != 100 {
		t.Errorf("merged enq+deq ops = %d, want 100", ops)
	}
	home := sums[h.Home()]
	if home.TotalEnqs != 50 {
		t.Errorf("home shard enqueues = %d, want 50", home.TotalEnqs)
	}
	if home.StepsPerOp <= 0 {
		t.Errorf("home shard steps/op = %v, want > 0", home.StepsPerOp)
	}
}

func TestBoundedBackendWithGC(t *testing.T) {
	q, err := New[int](2, WithBackend(BackendBounded), WithGCInterval(16), WithMaxHandles(2))
	if err != nil {
		t.Fatal(err)
	}
	if q.Backend() != BackendBounded {
		t.Fatalf("Backend = %q, want bounded", q.Backend())
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	for round := 0; round < 20; round++ {
		for i := 0; i < 64; i++ {
			if err := h.Enqueue(round*64 + i); err != nil {
				t.Fatal(err)
			}
		}
		if n := h.Drain(nil); n != 64 {
			t.Fatalf("round %d: drained %d, want 64", round, n)
		}
	}
}

func TestBitmap(t *testing.T) {
	var b bitmap
	b.init(130) // 3 words, last one partial
	rng := rngSeed(7)
	if got := b.randomSet(&rng); got != -1 {
		t.Errorf("randomSet on empty bitmap = %d, want -1", got)
	}
	for _, j := range []int{0, 63, 64, 129} {
		b.set(j)
		if !b.isSet(j) {
			t.Errorf("bit %d not set", j)
		}
	}
	found := map[int]bool{}
	for i := 0; i < 2000; i++ {
		j := b.randomSet(&rng)
		if j < 0 {
			t.Fatal("randomSet = -1 with bits set")
		}
		if !b.isSet(j) {
			t.Fatalf("randomSet returned clear bit %d", j)
		}
		found[j] = true
	}
	if len(found) != 4 {
		t.Errorf("randomSet reached %d of 4 set bits: %v", len(found), found)
	}
	for _, j := range []int{0, 63, 64, 129} {
		b.clear(j)
		if b.isSet(j) {
			t.Errorf("bit %d still set after clear", j)
		}
	}
	if got := b.randomSet(&rng); got != -1 {
		t.Errorf("randomSet after clearing all = %d, want -1", got)
	}
}

func TestRegistryPacking(t *testing.T) {
	var r registry
	r.init(1)
	s, ok := r.acquire()
	if !ok || s != 0 {
		t.Fatalf("acquire = (%d, %v), want (0, true)", s, ok)
	}
	if _, ok := r.acquire(); ok {
		t.Fatal("second acquire on 1-slot registry succeeded")
	}
	r.release(0)
	if got := r.free(); got != 1 {
		t.Fatalf("free = %d, want 1", got)
	}
}

func TestRegistryStatsChurn(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(3))
	if err != nil {
		t.Fatal(err)
	}
	st := q.RegistryStats()
	if st.Capacity != 3 || st.InUse != 0 || st.Acquires != 0 || st.Releases != 0 || st.Failures != 0 {
		t.Fatalf("fresh registry stats = %+v", st)
	}
	var hs []*Handle[int]
	for i := 0; i < 3; i++ {
		h, err := q.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if _, err := q.Acquire(); !errors.Is(err, ErrNoFreeHandles) {
		t.Fatalf("Acquire on full registry = %v", err)
	}
	st = q.RegistryStats()
	if st.InUse != 3 || st.Acquires != 3 || st.Releases != 0 || st.Failures != 1 {
		t.Fatalf("full registry stats = %+v", st)
	}
	for _, h := range hs {
		h.Release()
	}
	st = q.RegistryStats()
	if st.InUse != 0 || st.Acquires != 3 || st.Releases != 3 || st.Failures != 1 {
		t.Fatalf("drained registry stats = %+v", st)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	q, err := New[int](2, WithMaxHandles(4), WithShardMetrics())
	if err != nil {
		t.Fatal(err)
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := h.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("dequeue failed")
		}
	}
	h.Release()

	want := q.Snapshot()
	if want.Shards != 2 || want.MaxHandles != 4 || want.Len != 6 {
		t.Fatalf("snapshot identity = %+v", want)
	}
	if len(want.Summaries) != 2 {
		t.Fatalf("WithShardMetrics snapshot has %d summaries, want 2", len(want.Summaries))
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, key := range []string{"backend", "shards", "max_handles", "closed", "len",
		"shard_stats", "registry", "capacity", "in_use", "acquires", "releases",
		"failures", "enqueues", "dequeues", "summaries"} {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("encoding missing key %q: %s", key, data)
		}
	}
	var got Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed snapshot:\n got %+v\nwant %+v", got, want)
	}

	// Without WithShardMetrics the all-zero summaries must be elided.
	q2, err := New[int](1)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(q2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data2), "summaries") {
		t.Errorf("metrics-less snapshot should omit summaries: %s", data2)
	}
}
