package shard

// PR 5 x PR 8 interaction: the elimination fast path (WithPairing exchange
// slots) running against live Resize topology swaps. A parked value lives
// in a topology-owned exchange slot; a resize that retires that topology
// must not strand or duplicate it, and per-producer FIFO claims must keep
// holding across the swap. This is the conformance test for that pairing x
// resize seam: a hand-off-shaped workload with grow -> shrink cycles
// underneath, checked for exact conservation, meant to run under -race.

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPairingResizeChurnConservation(t *testing.T) {
	const (
		producers = 2
		consumers = 2
		perProd   = 4000
		total     = producers * perProd
	)
	// Pairing is on by default; spell it out so the test keeps pinning the
	// interaction even if the default ever flips.
	q, err := New[uint64](2, WithPairing(true), WithMaxHandles(producers+consumers+1))
	if err != nil {
		t.Fatal(err)
	}

	var consumed atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	seen := make(map[uint64]int, total)

	// Resizer: grow -> shrink cycles across the whole run. Stops once the
	// consumers have drained everything so the cycle count adapts to
	// machine speed instead of being a fixed race against the workload.
	stopResize := make(chan struct{})
	var cycles int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ks := []int{4, 1, 2}; ; {
			for _, k := range ks {
				select {
				case <-stopResize:
					return
				default:
				}
				if err := q.Resize(k); err != nil {
					t.Errorf("Resize(%d): %v", k, err)
					return
				}
				cycles++
			}
		}
	}()

	var consWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consWG.Add(1)
		go func() {
			defer consWG.Done()
			h, err := q.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			for consumed.Load() < total {
				if v, ok := h.Dequeue(); ok {
					mu.Lock()
					seen[v]++
					mu.Unlock()
					consumed.Add(1)
				}
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h, err := q.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			for i := 0; i < perProd; i++ {
				if err := h.Enqueue(uint64(p)<<32 | uint64(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}

	consWG.Wait()
	close(stopResize)
	wg.Wait()

	// Exact conservation: every value exactly once, nothing left behind.
	if len(seen) != total {
		t.Fatalf("consumed %d distinct values, want %d", len(seen), total)
	}
	lastPerProducer := make(map[uint64]int64)
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x consumed %d times", v, n)
		}
		p := v >> 32
		if idx := int64(v & 0xFFFFFFFF); idx > lastPerProducer[p] {
			lastPerProducer[p] = idx
		}
	}
	h, err := q.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := h.Dequeue(); ok {
		t.Fatalf("fabric still held %#x after full drain", v)
	}
	h.Release()

	// The folded tallies must balance. They count migrations too (a value
	// drained out of a retiring topology tallies a dequeue on the old shard
	// and an enqueue on the new one), so under resize churn both sides read
	// total+migrations — but they must read the SAME number: a one-sided
	// excess is a lost or duplicated hand-off.
	var enqs, deqs int64
	for _, s := range q.ShardStats() {
		enqs += s.Enqueues
		deqs += s.Dequeues
	}
	if enqs != deqs {
		t.Fatalf("tally imbalance: enqueues %d, dequeues %d", enqs, deqs)
	}
	if enqs < total {
		t.Fatalf("tallies %d below workload total %d", enqs, total)
	}

	if cycles < 3 {
		t.Logf("only %d resize steps completed; conservation still checked", cycles)
	}
	if pairs := totalPairs(q); pairs > 0 {
		t.Logf("eliminated %d pairs across %d resize steps", pairs, cycles)
	} else {
		// Elimination firing depends on timing under resize churn; its
		// absence is not a conservation bug, but log it so a rotted fast
		// path is visible in -v output. TestPairingFires asserts firing
		// under a stable topology.
		t.Log("no pairs eliminated this run (timing-dependent under resize churn)")
	}
}
