// Package vector implements the wait-free vector sketched in Section 7 of
// the paper: a shared append-only sequence with three operations,
//
//	Append(e) - add e to the end of the sequence,
//	Get(i)    - read the i-th element of the sequence,
//	Index(r)  - return the current position of a previously appended element,
//
// all with polylogarithmic step complexity. It is the queue's ordering-tree
// machinery specialized to enqueues: blocks carry only the enqueue prefix
// sum, Get is the queue's GetEnqueue path (task T4), and Index is the
// queue's IndexDequeue path (task T2) adapted to count enqueues.
package vector

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/infarray"
	"repro/internal/metrics"
)

// ErrBadProcs reports an invalid process count passed to New.
var ErrBadProcs = errors.New("vector: process count must be at least 1")

// block is one entry of a node's blocks array: the queue's block type
// without dequeue bookkeeping.
type block[T any] struct {
	sumEnq   int64 // appends in this node's blocks[1..index] (Invariant 7)
	endLeft  int64 // last direct subblock in the left child
	endRight int64 // last direct subblock in the right child
	element  T     // appended value (leaf blocks)
	super    atomic.Int64
}

func (b *block[T]) end(dir int) int64 {
	if dir == dirLeft {
		return b.endLeft
	}
	return b.endRight
}

const (
	dirLeft = iota + 1
	dirRight
)

type node[T any] struct {
	left, right, parent *node[T]
	blocks              *infarray.Array[block[T]]
	head                atomic.Int64
	leafID              int
}

func (n *node[T]) isLeaf() bool { return n.left == nil }
func (n *node[T]) isRoot() bool { return n.parent == nil }

func (n *node[T]) childDir() int {
	if n.parent.left == n {
		return dirLeft
	}
	return dirRight
}

func (n *node[T]) sibling() *node[T] {
	if n.parent.left == n {
		return n.parent.right
	}
	return n.parent.left
}

func newNode[T any]() *node[T] {
	n := &node[T]{blocks: infarray.New[block[T]](), leafID: -1}
	n.blocks.Store(0, &block[T]{})
	n.head.Store(1)
	return n
}

// Vector is a linearizable wait-free append-only sequence for a fixed set of
// processes.
type Vector[T any] struct {
	root    *node[T]
	leaves  []*node[T]
	handles []Handle[T]
	procs   int
}

// Handle is one process's access point; at most one goroutine may use a
// handle at a time.
type Handle[T any] struct {
	vec     *Vector[T]
	leaf    *node[T]
	counter *metrics.Counter
}

// Ref identifies an appended element so its position can be queried later
// with Index.
type Ref struct {
	leafID int
	idx    int64
}

// New creates a vector for up to procs processes.
func New[T any](procs int) (*Vector[T], error) {
	if procs < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadProcs, procs)
	}
	numLeaves := 1
	for numLeaves < procs || numLeaves < 2 {
		numLeaves *= 2
	}
	level := make([]*node[T], 0, numLeaves)
	for i := 0; i < numLeaves; i++ {
		leaf := newNode[T]()
		leaf.leafID = i
		level = append(level, leaf)
	}
	leaves := level
	for len(level) > 1 {
		next := make([]*node[T], 0, len(level)/2)
		for i := 0; i < len(level); i += 2 {
			parent := newNode[T]()
			parent.left, parent.right = level[i], level[i+1]
			level[i].parent, level[i+1].parent = parent, parent
			next = append(next, parent)
		}
		level = next
	}
	v := &Vector[T]{root: level[0], leaves: leaves, procs: procs}
	v.handles = make([]Handle[T], procs)
	for i := 0; i < procs; i++ {
		v.handles[i] = Handle[T]{vec: v, leaf: leaves[i]}
	}
	return v, nil
}

// Procs returns the process count the vector was built for.
func (v *Vector[T]) Procs() int { return v.procs }

// Handle returns the handle for process i.
func (v *Vector[T]) Handle(i int) (*Handle[T], error) {
	if i < 0 || i >= v.procs {
		return nil, fmt.Errorf("vector: handle index %d out of range [0,%d)", i, v.procs)
	}
	return &v.handles[i], nil
}

// MustHandle is Handle for statically valid indices.
func (v *Vector[T]) MustHandle(i int) *Handle[T] {
	h, err := v.Handle(i)
	if err != nil {
		panic(err)
	}
	return h
}

// Len returns the number of elements that have been appended and propagated:
// every Append that returned is counted.
func (v *Vector[T]) Len() int64 {
	h := v.root.head.Load()
	return v.root.blocks.Get(h - 1).sumEnq
}

// SetCounter attaches a step counter to the handle (nil disables).
func (h *Handle[T]) SetCounter(c *metrics.Counter) { h.counter = c }

// Append adds e to the end of the sequence and returns a Ref for later
// Index queries. O(log p) steps.
func (h *Handle[T]) Append(e T) Ref {
	h.counter.BeginOp()
	leaf := h.leaf
	hd := h.readHead(leaf)
	prev := h.readBlock(leaf, hd-1)
	b := &block[T]{element: e, sumEnq: prev.sumEnq + 1}
	h.counter.Write()
	leaf.blocks.Store(hd, b)
	h.advance(leaf, hd)
	h.propagate(leaf.parent)
	h.counter.EndOp(metrics.OpEnqueue)
	return Ref{leafID: leaf.leafID, idx: hd}
}

// Get returns the i-th element of the sequence (0-based). ok is false if
// fewer than i+1 elements have been appended.
func (h *Handle[T]) Get(i int64) (T, bool) {
	h.counter.BeginOp()
	defer h.counter.EndOp(metrics.OpDequeue)
	var zero T
	if i < 0 {
		return zero, false
	}
	rank := i + 1
	root := h.vec.root
	hd := h.readHead(root)
	lastIdx := hd - 1
	if h.readBlock(root, lastIdx).sumEnq < rank {
		// Re-check one slot further: a block may be installed at head
		// before head advances.
		if nb := root.blocks.Get(hd); nb != nil && nb.sumEnq >= rank {
			h.counter.Read(1)
			lastIdx = hd
		} else {
			return zero, false
		}
	}
	// Binary search the root for the block containing the rank-th append.
	lo, hi := int64(0), lastIdx
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if h.readBlock(root, mid).sumEnq >= rank {
			hi = mid
		} else {
			lo = mid
		}
	}
	inner := rank - h.readBlock(root, hi-1).sumEnq
	return h.getAppend(root, hi, inner), true
}

// Index returns the current 0-based position in the sequence of the element
// appended as r. O(log p) steps.
func (h *Handle[T]) Index(r Ref) (int64, error) {
	if r.leafID < 0 || r.leafID >= len(h.vec.leaves) || r.idx < 1 {
		return 0, fmt.Errorf("vector: invalid ref %+v", r)
	}
	h.counter.BeginOp()
	defer h.counter.EndOp(metrics.OpDequeue)
	v := h.vec.leaves[r.leafID]
	b := r.idx
	i := int64(1)
	for !v.isRoot() {
		dir := v.childDir()
		blk := h.readBlock(v, b)
		sup := h.readSuper(blk)
		supBlk := h.readBlock(v.parent, sup)
		if b > supBlk.end(dir) {
			sup++
			supBlk = h.readBlock(v.parent, sup)
		}
		prevSup := h.readBlock(v.parent, sup-1)
		i += h.readBlock(v, b-1).sumEnq - h.readBlock(v, prevSup.end(dir)).sumEnq
		if dir == dirRight {
			sib := v.sibling()
			i += h.readBlock(sib, supBlk.endLeft).sumEnq -
				h.readBlock(sib, prevSup.endLeft).sumEnq
		}
		v, b = v.parent, sup
	}
	return h.readBlock(v, b-1).sumEnq + i - 1, nil
}

// getAppend walks down from node v's block b to the leaf storing the i-th
// append of that block (the queue's GetEnqueue).
func (h *Handle[T]) getAppend(v *node[T], b, i int64) T {
	for !v.isLeaf() {
		blkB := h.readBlock(v, b)
		prevB := h.readBlock(v, b-1)
		sumLeft := h.readBlock(v.left, blkB.endLeft).sumEnq
		prevLeft := h.readBlock(v.left, prevB.endLeft).sumEnq

		var (
			child        *node[T]
			prevChild    int64
			loIdx, hiIdx int64
		)
		if i <= sumLeft-prevLeft {
			child, prevChild = v.left, prevLeft
			loIdx, hiIdx = prevB.endLeft+1, blkB.endLeft
		} else {
			i -= sumLeft - prevLeft
			child = v.right
			prevChild = h.readBlock(v.right, prevB.endRight).sumEnq
			loIdx, hiIdx = prevB.endRight+1, blkB.endRight
		}
		target := i + prevChild
		lo, hi := loIdx-1, hiIdx
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if h.readBlock(child, mid).sumEnq >= target {
				hi = mid
			} else {
				lo = mid
			}
		}
		i -= h.readBlock(child, hi-1).sumEnq - prevChild
		v, b = child, hi
	}
	return h.readBlock(v, b).element
}

// propagate, refresh, createBlock and advance mirror the queue's write path
// (Figure 4) with dequeue bookkeeping removed.

func (h *Handle[T]) propagate(v *node[T]) {
	for v != nil {
		if !h.refresh(v) {
			h.refresh(v)
		}
		v = v.parent
	}
}

func (h *Handle[T]) refresh(v *node[T]) bool {
	hd := h.readHead(v)
	for _, child := range [2]*node[T]{v.left, v.right} {
		childHead := h.readHead(child)
		h.counter.Read(1)
		if child.blocks.Get(childHead) != nil {
			h.advance(child, childHead)
		}
	}
	b := h.createBlock(v, hd)
	if b == nil {
		return true
	}
	ok := v.blocks.CompareAndSwap(hd, nil, b)
	h.counter.CAS(ok)
	h.advance(v, hd)
	return ok
}

func (h *Handle[T]) createBlock(v *node[T], i int64) *block[T] {
	b := &block[T]{
		endLeft:  h.readHead(v.left) - 1,
		endRight: h.readHead(v.right) - 1,
	}
	b.sumEnq = h.readBlock(v.left, b.endLeft).sumEnq +
		h.readBlock(v.right, b.endRight).sumEnq
	prev := h.readBlock(v, i-1)
	if b.sumEnq == prev.sumEnq {
		return nil
	}
	return b
}

func (h *Handle[T]) advance(v *node[T], hd int64) {
	if !v.isRoot() {
		parentHead := h.readHead(v.parent)
		b := h.readBlock(v, hd)
		ok := b.super.CompareAndSwap(0, parentHead)
		h.counter.CAS(ok)
	}
	ok := v.head.CompareAndSwap(hd, hd+1)
	h.counter.CAS(ok)
}

func (h *Handle[T]) readHead(v *node[T]) int64 {
	h.counter.Read(1)
	return v.head.Load()
}

func (h *Handle[T]) readBlock(v *node[T], i int64) *block[T] {
	h.counter.Read(1)
	return v.blocks.Get(i)
}

func (h *Handle[T]) readSuper(b *block[T]) int64 {
	h.counter.Read(1)
	return b.super.Load()
}

// height is exported for tests via export_test.
func (v *Vector[T]) height() int {
	return bits.Len(uint(len(v.leaves) - 1))
}
