package vector

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestNewValidation(t *testing.T) {
	if _, err := New[int](0); err == nil {
		t.Error("New(0) succeeded")
	}
	v, err := New[int](3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Procs() != 3 {
		t.Errorf("Procs = %d", v.Procs())
	}
	if _, err := v.Handle(3); err == nil {
		t.Error("Handle(3) succeeded")
	}
}

func TestAppendGetSequential(t *testing.T) {
	v, _ := New[string](2)
	h := v.MustHandle(0)
	var refs []Ref
	for i := 0; i < 100; i++ {
		refs = append(refs, h.Append(fmt.Sprintf("v%d", i)))
	}
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	for i := int64(0); i < 100; i++ {
		got, ok := h.Get(i)
		if !ok || got != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = (%q, %v)", i, got, ok)
		}
	}
	if _, ok := h.Get(100); ok {
		t.Error("Get past end succeeded")
	}
	if _, ok := h.Get(-1); ok {
		t.Error("Get(-1) succeeded")
	}
	for i, r := range refs {
		pos, err := h.Index(r)
		if err != nil || pos != int64(i) {
			t.Fatalf("Index(ref %d) = (%d, %v)", i, pos, err)
		}
	}
}

func TestIndexInvalidRef(t *testing.T) {
	v, _ := New[int](2)
	h := v.MustHandle(0)
	if _, err := h.Index(Ref{leafID: -1, idx: 1}); err == nil {
		t.Error("invalid leafID accepted")
	}
	if _, err := h.Index(Ref{leafID: 0, idx: 0}); err == nil {
		t.Error("idx 0 accepted")
	}
}

func TestInterleavedAppendsTwoHandles(t *testing.T) {
	v, _ := New[int](2)
	a, b := v.MustHandle(0), v.MustHandle(1)
	var refs []Ref
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			refs = append(refs, a.Append(i))
		} else {
			refs = append(refs, b.Append(i))
		}
	}
	// Sequential execution: positions must match append order.
	for i, r := range refs {
		pos, err := a.Index(r)
		if err != nil || pos != int64(i) {
			t.Fatalf("Index(%d) = (%d, %v)", i, pos, err)
		}
		got, ok := a.Get(int64(i))
		if !ok || got != i {
			t.Fatalf("Get(%d) = (%d, %v)", i, got, ok)
		}
	}
}

func TestConcurrentAppends(t *testing.T) {
	const procs = 8
	const perProc = 500
	v, _ := New[int64](procs)
	refs := make([][]Ref, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := v.MustHandle(p)
			for s := int64(0); s < perProc; s++ {
				refs[p] = append(refs[p], h.Append(int64(p)*1_000_000+s))
			}
		}(p)
	}
	wg.Wait()

	if v.Len() != procs*perProc {
		t.Fatalf("Len = %d, want %d", v.Len(), procs*perProc)
	}
	h := v.MustHandle(0)

	// The sequence contains every appended value exactly once.
	seen := make(map[int64]bool)
	for i := int64(0); i < procs*perProc; i++ {
		val, ok := h.Get(i)
		if !ok {
			t.Fatalf("Get(%d) missing", i)
		}
		if seen[val] {
			t.Fatalf("value %d at two positions", val)
		}
		seen[val] = true
	}

	// Per-process order is preserved and Index agrees with Get.
	for p := 0; p < procs; p++ {
		lastPos := int64(-1)
		for s, r := range refs[p] {
			pos, err := h.Index(r)
			if err != nil {
				t.Fatalf("Index(proc %d ref %d): %v", p, s, err)
			}
			if pos <= lastPos {
				t.Fatalf("proc %d: ref %d at position %d not after %d", p, s, pos, lastPos)
			}
			lastPos = pos
			val, ok := h.Get(pos)
			if !ok || val != int64(p)*1_000_000+int64(s) {
				t.Fatalf("Get(Index(ref)) = (%d, %v), want %d", val, ok, int64(p)*1_000_000+int64(s))
			}
		}
	}
}

func TestConcurrentReadersDuringAppends(t *testing.T) {
	const procs = 4
	v, _ := New[int64](procs)
	var appenders sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < procs-1; p++ {
		appenders.Add(1)
		go func(p int) {
			defer appenders.Done()
			h := v.MustHandle(p)
			for s := int64(0); s < 2000; s++ {
				h.Append(int64(p)<<32 + s)
			}
		}(p)
	}
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		h := v.MustHandle(procs - 1)
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := v.Len()
			if n == 0 {
				continue
			}
			i := rng.Int63n(n)
			if _, ok := h.Get(i); !ok {
				t.Errorf("Get(%d) failed with Len=%d", i, n)
				return
			}
		}
	}()
	appenders.Wait()
	close(stop)
	reader.Wait()
}

func TestHeight(t *testing.T) {
	for _, c := range []struct{ procs, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}} {
		v, _ := New[int](c.procs)
		if got := v.height(); got != c.want {
			t.Errorf("height(%d procs) = %d, want %d", c.procs, got, c.want)
		}
	}
}

func TestVectorStepComplexityBound(t *testing.T) {
	// Guardrail from the Section 7 claim: Append and Index are O(log p),
	// Get is O(log p + log n). With this implementation's constants, no
	// operation should exceed 25*(lg p + 1) + 4*lg(n) + 30 steps.
	for _, procs := range []int{2, 8, 32} {
		v, err := New[int64](procs)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		worst := make([]int64, procs)
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := v.MustHandle(p)
				c := &metrics.Counter{}
				h.SetCounter(c)
				var refs []Ref
				for s := int64(0); s < 200; s++ {
					refs = append(refs, h.Append(int64(p)<<32|s))
				}
				for i, r := range refs {
					if _, err := h.Index(r); err != nil {
						t.Errorf("Index: %v", err)
						return
					}
					if _, ok := h.Get(int64(i)); !ok {
						t.Errorf("Get(%d) failed", i)
						return
					}
				}
				worst[p] = c.MaxOpSteps
			}(p)
		}
		wg.Wait()
		lg := int64(1)
		for 1<<lg < procs {
			lg++
		}
		n := int64(procs * 200)
		lgN := int64(1)
		for 1<<lgN < n {
			lgN++
		}
		bound := 25*(lg+1) + 4*lgN + 30
		for p, w := range worst {
			if w > bound {
				t.Errorf("procs=%d handle %d: worst op %d steps exceeds %d", procs, p, w, bound)
			}
		}
	}
}
