package harness

// Ablation experiments: disable one design decision at a time and measure
// what it bought (DESIGN.md, experiments A1-A3).

import (
	"fmt"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/queues"
)

// coreVariant adapts a core.Queue[int64] built with ablation options.
type coreVariant struct {
	q    *core.Queue[int64]
	name string
}

func (v coreVariant) Name() string { return v.name }
func (v coreVariant) Procs() int   { return v.q.Procs() }

func (v coreVariant) Handle(i int) (queues.Handle, error) {
	h, err := v.q.Handle(i)
	if err != nil {
		return nil, err
	}
	return coreVariantHandle{h}, nil
}

type coreVariantHandle struct {
	h *core.Handle[int64]
}

func (h coreVariantHandle) Enqueue(v int64)               { h.h.Enqueue(v) }
func (h coreVariantHandle) Dequeue() (int64, bool)        { return h.h.Dequeue() }
func (h coreVariantHandle) SetCounter(c *metrics.Counter) { h.h.SetCounter(c) }

// ExpAblationSearch (A1, Lemma 20): the doubling search keeps a dequeue's
// root search at O(log q) even after the root has accumulated a long block
// history; a plain binary search over the whole history grows with the
// total operation count.
func ExpAblationSearch(p, queueSize int, agingRounds []int, opsPerRound int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "A1",
		Title: fmt.Sprintf("Ablation: doubling search vs plain binary search (p=%d, q≈%d)", p, queueSize),
		Columns: []string{"total ops so far", "doubling steps/op", "plain steps/op",
			"plain/doubling"},
		Notes: []string{
			"Queue size is held constant while the root history grows; only the plain-search variant's cost climbs with history length (Lemma 20 ablation).",
		},
	}
	build := func(opts ...core.Option) (*core.Queue[int64], error) {
		q, err := core.New[int64](p, opts...)
		if err != nil {
			return nil, err
		}
		h, err := q.Handle(0)
		if err != nil {
			return nil, err
		}
		for i := 0; i < queueSize; i++ {
			h.Enqueue(int64(-i - 1))
		}
		return q, nil
	}
	doubling, err := build()
	if err != nil {
		return nil, err
	}
	plain, err := build(core.WithPlainRootSearch())
	if err != nil {
		return nil, err
	}
	totalOps := 0
	for _, rounds := range agingRounds {
		var lastDoubling, lastPlain float64
		for _, variant := range []struct {
			q    *core.Queue[int64]
			dest *float64
		}{{doubling, &lastDoubling}, {plain, &lastPlain}} {
			wrapped := coreVariant{q: variant.q, name: "variant"}
			// Age the root history, then measure a fresh window.
			if _, err := RunPairs(wrapped, p, rounds*opsPerRound, seed); err != nil {
				return nil, err
			}
			res, err := RunPairs(wrapped, p, opsPerRound, seed+1)
			if err != nil {
				return nil, err
			}
			*variant.dest = res.Summary.StepsPerOp
		}
		totalOps += (rounds + 1) * opsPerRound * p
		ratio := 0.0
		if lastDoubling > 0 {
			ratio = lastPlain / lastDoubling
		}
		t.AddRow(totalOps, lastDoubling, lastPlain, ratio)
	}
	return t, nil
}

// ExpAblationRefresh (A2, Lemma 10): double-Refresh vs naive
// retry-until-success propagation. The spinning variant stays linearizable
// but is only lock-free; under contention it issues more CAS attempts and
// has no per-operation step bound.
func ExpAblationRefresh(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   "Ablation: double-Refresh vs spin-until-success propagation",
		Columns: []string{"p", "double steps/op", "double cas/op", "spin steps/op", "spin cas/op", "spin worst op"},
		Notes: []string{
			"The spinning variant loses the wait-freedom bound: its worst operation can retry arbitrarily under contention.",
		},
	}
	for _, p := range ps {
		var rows [2]metrics.Summary
		for k, opts := range [][]core.Option{nil, {core.WithSpinningRefresh()}} {
			q, err := core.New[int64](p, opts...)
			if err != nil {
				return nil, err
			}
			res, err := RunPairs(coreVariant{q: q, name: "variant"}, p, opsPerProc, seed)
			if err != nil {
				return nil, err
			}
			rows[k] = res.Summary
		}
		t.AddRow(p, rows[0].StepsPerOp, rows[0].CASPerOp,
			rows[1].StepsPerOp, rows[1].CASPerOp, rows[1].MaxOpSteps)
	}
	return t, nil
}

// ExpAblationGC (A3, Section 6): sensitivity of the bounded queue to the GC
// interval G. Small G wastes steps on constant collection; large G wastes
// space. The paper's G = p^2 ceil(log2 p) balances the two so GC adds O(1)
// amortized tree operations per op.
func ExpAblationGC(p int, gs []int64, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Ablation: GC interval G (p=%d, pairs workload)", p),
		Columns: []string{"G", "steps/op", "live blocks after run", "max node blocks"},
	}
	for _, g := range gs {
		q, err := bounded.New[int64](p, bounded.WithGCInterval(g))
		if err != nil {
			return nil, err
		}
		wrapped := boundedVariant{q}
		res, err := RunPairs(wrapped, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		counts := q.BlockCounts()
		var total, maxNode int64
		for _, c := range counts {
			total += c
			if c > maxNode {
				maxNode = c
			}
		}
		t.AddRow(g, res.Summary.StepsPerOp, total, maxNode)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("paper default for p=%d: G=%d", p,
		func() int64 { q, _ := bounded.New[int64](p); return q.GCInterval() }()))
	return t, nil
}

// boundedVariant adapts a bounded.Queue[int64] with custom options.
type boundedVariant struct {
	q *bounded.Queue[int64]
}

func (v boundedVariant) Name() string { return "nr-bounded-variant" }
func (v boundedVariant) Procs() int   { return v.q.Procs() }

func (v boundedVariant) Handle(i int) (queues.Handle, error) {
	h, err := v.q.Handle(i)
	if err != nil {
		return nil, err
	}
	return boundedVariantHandle{h}, nil
}

type boundedVariantHandle struct {
	h *bounded.Handle[int64]
}

func (h boundedVariantHandle) Enqueue(v int64)               { h.h.Enqueue(v) }
func (h boundedVariantHandle) Dequeue() (int64, bool)        { return h.h.Dequeue() }
func (h boundedVariantHandle) SetCounter(c *metrics.Counter) { h.h.SetCounter(c) }
