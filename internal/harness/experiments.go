package harness

// Experiment drivers, one per reproduced table/figure (DESIGN.md Section 2).
// Each returns a Table whose shape mirrors the paper's analytical claim it
// validates. The same functions back cmd/benchqueue and the repository-level
// benchmarks.

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/queues"
	"repro/internal/stats"
)

// DefaultFactories returns every queue implementation under comparison.
func DefaultFactories() []queues.Factory {
	return []queues.Factory{
		{Name: "nr-queue", New: queues.NewNR},
		{Name: "nr-bounded", New: queues.NewBounded},
		{Name: "ms-queue", New: func(p int) (queues.Queue, error) { return newAdapter(p, "ms") }},
		{Name: "faa-seg", New: func(p int) (queues.Queue, error) { return newAdapter(p, "faa") }},
		{Name: "kp-queue", New: func(p int) (queues.Queue, error) { return newAdapter(p, "kp") }},
		{Name: "two-lock", New: func(p int) (queues.Queue, error) { return newAdapter(p, "twolock") }},
		{Name: "mutex", New: func(p int) (queues.Queue, error) { return newAdapter(p, "mutex") }},
	}
}

// ExpCASBound (T1, Proposition 19): worst-case CAS instructions per
// operation. The paper guarantees <= 5 ceil(log2 p) + O(1) CAS per operation
// for the NR-queue, while the MS-queue's CAS count per operation is
// unbounded in the worst case and Theta(p) amortized under contention.
func ExpCASBound(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "T1",
		Title: "CAS instructions per operation (pairs workload)",
		Columns: []string{"p", "bound 5ceil(lg p)+2",
			"nr avg", "nr max1op", "nrB avg", "ms avg", "ms max1op", "faa avg"},
		Notes: []string{
			"nr max1op counts every CAS of the single worst operation; Proposition 19 bounds it by 5*ceil(log2 p) plus the append's constant work.",
			"ms-queue CAS/op grows with contention (CAS retry problem); nr stays logarithmic.",
		},
	}
	for _, p := range ps {
		nr, err := measureCAS(queues.Factory{Name: "nr", New: queues.NewNR}, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		nrb, err := measureCAS(queues.Factory{Name: "nrb", New: queues.NewBounded}, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		ms, err := measureCAS(queues.Factory{Name: "ms", New: func(p int) (queues.Queue, error) { return newAdapter(p, "ms") }}, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		faa, err := measureCAS(queues.Factory{Name: "faa", New: func(p int) (queues.Queue, error) { return newAdapter(p, "faa") }}, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		bound := 5*ceilLog2(p) + 2
		t.AddRow(p, bound, nr.avg, nr.maxOp, nrb.avg, ms.avg, ms.maxOp, faa.avg)
	}
	return t, nil
}

type casStats struct {
	avg   float64
	maxOp int64
}

func measureCAS(f queues.Factory, procs, opsPerProc int, seed int64) (casStats, error) {
	q, err := f.New(procs)
	if err != nil {
		return casStats{}, err
	}
	res, err := RunPairs(q, procs, opsPerProc, seed)
	if err != nil {
		return casStats{}, err
	}
	return casStats{avg: res.Summary.CASPerOp, maxOp: maxCASOneOp(res)}, nil
}

// maxCASOneOp approximates the worst single operation's CAS count: CAS
// attempts dominate MaxOpSteps only for retry-based queues, so we report the
// per-handle ratio ceiling.
func maxCASOneOp(res Result) int64 {
	var worst int64
	for _, c := range res.Counters {
		if c.TotalOps() == 0 {
			continue
		}
		// Upper bound on any single op's CAS count for this handle.
		perOp := (c.CASAttempts + c.TotalOps() - 1) / c.TotalOps()
		if c.MaxOpSteps < perOp {
			perOp = c.MaxOpSteps
		}
		if perOp > worst {
			worst = perOp
		}
	}
	return worst
}

// ExpEnqueueSteps (T2, Theorem 22): enqueue steps grow as O(log p); doubling
// p should add roughly a constant number of steps.
func ExpEnqueueSteps(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "Enqueue steps per operation vs p (enqueue-only workload)",
		Columns: []string{"p", "steps/op", "delta vs prev", "steps / log2(p)"},
	}
	var xs, ys []float64
	prev := 0.0
	for _, p := range ps {
		q, err := queues.NewNR(p)
		if err != nil {
			return nil, err
		}
		res, err := RunEnqueueOnly(q, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		steps := res.Summary.StepsPerOp
		perLog := steps / float64(ceilLog2(p)+1)
		delta := steps - prev
		if prev == 0 {
			t.AddRow(p, steps, "-", perLog)
		} else {
			t.AddRow(p, steps, delta, perLog)
		}
		prev = steps
		xs = append(xs, float64(p))
		ys = append(ys, steps)
	}
	addFitNote(t, xs, ys)
	return t, nil
}

// ExpDequeueStepsVsP (T3a, Theorem 22): dequeue steps vs p at a fixed queue
// size.
func ExpDequeueStepsVsP(ps []int, prefill, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "T3a",
		Title:   fmt.Sprintf("Dequeue steps per operation vs p (pairs workload, q≈%d)", prefill),
		Columns: []string{"p", "steps/op", "delta vs prev", "steps / log2^2(p)"},
	}
	var xs, ys []float64
	prev := 0.0
	for _, p := range ps {
		q, err := queues.NewNR(p)
		if err != nil {
			return nil, err
		}
		if err := Prefill(q, prefill); err != nil {
			return nil, err
		}
		res, err := RunPairs(q, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		steps := res.Summary.StepsPerOp
		l := float64(ceilLog2(p) + 1)
		delta := steps - prev
		if prev == 0 {
			t.AddRow(p, steps, "-", steps/(l*l))
		} else {
			t.AddRow(p, steps, delta, steps/(l*l))
		}
		prev = steps
		xs = append(xs, float64(p))
		ys = append(ys, steps)
	}
	addFitNote(t, xs, ys)
	return t, nil
}

// ExpDequeueStepsVsQ (T3b, Theorem 22): dequeue steps vs queue size at fixed
// p; the log q term comes from the root's doubling search (Lemma 20).
func ExpDequeueStepsVsQ(p int, prefills []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "T3b",
		Title:   fmt.Sprintf("Dequeue steps per operation vs queue size (p=%d)", p),
		Columns: []string{"q", "steps/op", "delta vs prev"},
	}
	var xs, ys []float64
	prev := 0.0
	for _, prefill := range prefills {
		q, err := queues.NewNR(p)
		if err != nil {
			return nil, err
		}
		if err := Prefill(q, prefill); err != nil {
			return nil, err
		}
		res, err := RunPairs(q, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		steps := res.Summary.StepsPerOp
		if prev == 0 {
			t.AddRow(prefill, steps, "-")
		} else {
			t.AddRow(prefill, steps, steps-prev)
		}
		prev = steps
		xs = append(xs, float64(prefill))
		ys = append(ys, steps)
	}
	if fit, err := stats.FitAgainst(xs, ys, stats.Log2); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fit steps = %.1f + %.2f*log2(q), R^2=%.3f (paper: O(log^2 p + log q))",
			fit.Intercept, fit.Slope, fit.R2))
	}
	return t, nil
}

// ExpRetryProblem (T4, Sections 1-2): amortized steps per operation across
// implementations as p grows. The MS-queue family grows linearly (CAS retry
// problem); the NR-queue grows polylogarithmically. The table's last column
// shows the crossover: the ratio ms/nr rises above 1 as p grows.
func ExpRetryProblem(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "T4",
		Title:   "Amortized steps per operation (pairs workload): CAS retry problem",
		Columns: []string{"p", "nr", "nr-bounded", "ms", "faa", "kp", "two-lock", "ms/nr"},
		Notes: []string{
			"Paper: ms-queue is Theta(p) amortized in worst-case executions; nr-queue is O(log^2 p).",
			"Steps = shared-memory reads + CAS + writes, per the paper's cost model.",
		},
	}
	for _, p := range ps {
		row := []any{p}
		var nrSteps, msSteps float64
		for _, f := range []struct {
			name string
			mk   func(int) (queues.Queue, error)
		}{
			{"nr", queues.NewNR},
			{"nrb", queues.NewBounded},
			{"ms", func(p int) (queues.Queue, error) { return newAdapter(p, "ms") }},
			{"faa", func(p int) (queues.Queue, error) { return newAdapter(p, "faa") }},
			{"kp", func(p int) (queues.Queue, error) { return newAdapter(p, "kp") }},
			{"twolock", func(p int) (queues.Queue, error) { return newAdapter(p, "twolock") }},
		} {
			q, err := f.mk(p)
			if err != nil {
				return nil, err
			}
			res, err := RunPairs(q, p, opsPerProc, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Summary.StepsPerOp)
			switch f.name {
			case "nr":
				nrSteps = res.Summary.StepsPerOp
			case "ms":
				msSteps = res.Summary.StepsPerOp
			}
		}
		ratio := 0.0
		if nrSteps > 0 {
			ratio = msSteps / nrSteps
		}
		row = append(row, ratio)
		t.AddRow(row...)
	}
	return t, nil
}

// ExpSpaceBound (T5, Theorem 31): live blocks in the bounded queue stay
// O(q_max + p^2 log p) per node regardless of the total operation count.
func ExpSpaceBound(p int, qmax, rounds int) (*Table, error) {
	t := &Table{
		ID:    "T5",
		Title: fmt.Sprintf("Bounded-space queue: live blocks over time (p=%d, q_max=%d)", p, qmax),
		Columns: []string{"ops so far", "total live blocks", "max node blocks",
			"bound 2q+4p+G+1", "unbounded total blocks"},
	}
	raw, err := queues.NewBounded(p)
	if err != nil {
		return nil, err
	}
	bq, ok := raw.(interface{ Unwrap() *bounded.Queue[int64] })
	if !ok {
		return nil, fmt.Errorf("harness: bounded adapter does not expose Unwrap")
	}
	inner := bq.Unwrap()
	h, err := raw.Handle(0)
	if err != nil {
		return nil, err
	}
	g := inner.GCInterval()
	bound := int64(2*qmax+4*p) + g + 1
	unboundedQ, err := core.New[int64](p)
	if err != nil {
		return nil, err
	}
	uh, err := unboundedQ.Handle(0)
	if err != nil {
		return nil, err
	}
	ops := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < qmax; i++ {
			h.Enqueue(int64(r*qmax + i))
			uh.Enqueue(int64(r*qmax + i))
		}
		for i := 0; i < qmax; i++ {
			h.Dequeue()
			uh.Dequeue()
		}
		ops += 2 * qmax
		if r == 0 || (r+1)%(rounds/8+1) == 0 || r == rounds-1 {
			counts := inner.BlockCounts()
			var total, maxNode int64
			for _, c := range counts {
				total += c
				if c > maxNode {
					maxNode = c
				}
			}
			t.AddRow(ops, total, maxNode, bound, unboundedQ.BlocksInstalled())
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("G = %d; per-node bound from Lemma 29/Corollary 30 is 2q_max+4p+1 plus up to G un-collected recent blocks.", g),
		"Without GC the leaf alone would hold one block per operation (last column would grow without bound).")
	return t, nil
}

// ExpBoundedSteps (T6, Theorem 32): amortized steps of the bounded queue,
// including GC work, grow as O(log p log(p+q)).
func ExpBoundedSteps(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "T6",
		Title:   "Bounded queue amortized steps per operation vs p (pairs workload)",
		Columns: []string{"p", "steps/op", "steps / (lg p * lg p)", "unbounded steps/op"},
	}
	for _, p := range ps {
		bq, err := queues.NewBounded(p)
		if err != nil {
			return nil, err
		}
		bres, err := RunPairs(bq, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		uq, err := queues.NewNR(p)
		if err != nil {
			return nil, err
		}
		ures, err := RunPairs(uq, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		l := float64(ceilLog2(p) + 1)
		t.AddRow(p, bres.Summary.StepsPerOp, bres.Summary.StepsPerOp/(l*l), ures.Summary.StepsPerOp)
	}
	t.Notes = append(t.Notes, "Theorem 32: O(log p log(p+q)) amortized; with q=O(p) the normalized column should flatten.")
	return t, nil
}

// ExpThroughput (T7): wall-clock throughput comparison. The paper predicts
// its queue loses to the MS-queue at low contention (higher constant work)
// — the reproduction should show that honestly.
func ExpThroughput(ps []int, opsPerProc int, seed int64) (*Table, error) {
	factories := DefaultFactories()
	cols := []string{"p"}
	for _, f := range factories {
		cols = append(cols, f.Name+" Mop/s")
	}
	t := &Table{
		ID:      "T7",
		Title:   "Throughput (pairs workload), million ops/sec",
		Columns: cols,
		Notes: []string{
			"The paper optimizes worst-case steps, not throughput; MS/FAA queues are expected to win here (Section 7).",
		},
	}
	for _, p := range ps {
		row := []any{p}
		for _, f := range factories {
			q, err := f.New(p)
			if err != nil {
				return nil, err
			}
			res, err := RunPairs(q, p, opsPerProc, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, res.ThroughputOps()/1e6)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ExpWaitFree (T8, Corollary 23): worst single-operation step count under
// stalled processes. Wait-freedom bounds every operation individually; the
// lock-based baselines cannot bound it, and the MS-queue's worst operation
// degrades with contention.
func ExpWaitFree(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:      "T8",
		Title:   "Worst single-operation steps with 1/4 of processes stalling",
		Columns: []string{"p", "nr max", "nr avg", "ms max", "ms avg"},
		Notes: []string{
			"Theorem 22 bounds the nr-queue's worst operation by O(log^2 p + log q); the ms-queue's worst operation grows with contention.",
		},
	}
	for _, p := range ps {
		stalled := p / 4
		if stalled == 0 && p > 1 {
			stalled = 1
		}
		nrQ, err := queues.NewNR(p)
		if err != nil {
			return nil, err
		}
		nr, err := RunWithStalls(nrQ, p, opsPerProc, stalled, 50*time.Microsecond, seed)
		if err != nil {
			return nil, err
		}
		msQ, err := newAdapter(p, "ms")
		if err != nil {
			return nil, err
		}
		ms, err := RunWithStalls(msQ, p, opsPerProc, stalled, 50*time.Microsecond, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(p, nr.Summary.MaxOpSteps, nr.Summary.StepsPerOp,
			ms.Summary.MaxOpSteps, ms.Summary.StepsPerOp)
	}
	return t, nil
}

// addFitNote annotates a table with the best-fitting growth shape.
func addFitNote(t *Table, xs, ys []float64) {
	best, fits, err := stats.BestBasis(xs, ys)
	if err != nil {
		return
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"best-fit growth: %s (R^2=%.3f; linear R^2=%.3f)",
		best, fits[best].R2, fits["x"].R2))
}

func ceilLog2(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}
