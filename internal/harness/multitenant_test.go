package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestExpMultiTenantSmoke runs a tiny T13 sweep in-process: both rows
// must conserve per queue and produce sane fairness numbers.
func TestExpMultiTenantSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a server and paces real time")
	}
	tab, results, err := ExpMultiTenantResults([]int{1, 2}, MultiTenantConfig{
		Shards: 2,
		Load: server.LoadConfig{
			Rate:         2000,
			Duration:     300 * time.Millisecond,
			Producers:    1,
			Consumers:    1,
			DrainTimeout: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "T13" {
		t.Fatalf("table ID = %q, want T13", tab.ID)
	}
	if len(tab.Rows) != 2 || len(results) != 2 {
		t.Fatalf("rows = %d, result sets = %d, want 2/2", len(tab.Rows), len(results))
	}
	if len(results[1]) != 2 {
		t.Fatalf("tenants=2 row has %d results, want 2", len(results[1]))
	}
	for i, row := range results {
		for j, res := range row {
			if !res.Conserved() {
				t.Errorf("row %d tenant %d: lost=%d dup=%d", i, j, res.Lost, res.Dup)
			}
			if res.Foreign != 0 {
				t.Errorf("row %d tenant %d: %d foreign values crossed queues", i, j, res.Foreign)
			}
			if res.Acked == 0 {
				t.Errorf("row %d tenant %d: nothing acknowledged", i, j)
			}
		}
	}
	for _, note := range tab.Notes {
		if strings.Contains(note, "VIOLATION") {
			t.Errorf("table notes report a violation: %s", note)
		}
	}
}
