package harness

import (
	"fmt"

	"repro/internal/baseline/faaqueue"
	"repro/internal/baseline/kpqueue"
	"repro/internal/baseline/msqueue"
	"repro/internal/baseline/mutexqueue"
	"repro/internal/baseline/twolock"
	"repro/internal/queues"
)

// newAdapter constructs a baseline queue by short name.
func newAdapter(procs int, kind string) (queues.Queue, error) {
	switch kind {
	case "ms":
		return msqueue.New(procs)
	case "faa":
		return faaqueue.New(procs)
	case "kp":
		return kpqueue.New(procs)
	case "twolock":
		return twolock.New(procs)
	case "mutex":
		return mutexqueue.New(procs)
	default:
		return nil, fmt.Errorf("harness: unknown baseline %q", kind)
	}
}

// FactoryByName returns the registered factory with the given name.
func FactoryByName(name string) (queues.Factory, error) {
	for _, f := range DefaultFactories() {
		if f.Name == name {
			return f, nil
		}
	}
	return queues.Factory{}, fmt.Errorf("harness: no queue factory named %q", name)
}
