package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/stats"
)

// Table is a printable experiment result: the harness's equivalent of one of
// the paper's tables or figure series.
type Table struct {
	ID      string // experiment id from DESIGN.md (T1..T9, F1)
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// EnvCols names the columns whose values depend on the machine the
	// experiment ran on (throughput, latency, speedup). Compare mode in
	// portable mode skips them so a CI runner can be gated against a
	// baseline recorded elsewhere.
	EnvCols []string
	// Variance parallels Rows when the table was produced by RunSeeded:
	// Variance[r][c] aggregates the numeric cell (r,c) across seeds, nil
	// for non-numeric cells. Nil entirely for single-run tables.
	Variance [][]*stats.Agg
	// Manifest records how the table was produced (seeds, environment,
	// commit, preconditions) when it came from RunSeeded.
	Manifest *Manifest
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// TableJSON is the on-disk schema of a BENCH_<ID>.json table, the format
// the perf-trajectory tooling consumes. Single-run tables carry only the
// id/title/columns/rows/notes core; tables from the multi-seed runner add
// env_columns, a variance block parallel to rows (null for non-numeric
// cells), and the run manifest.
type TableJSON struct {
	ID       string         `json:"id"`
	Title    string         `json:"title"`
	Columns  []string       `json:"columns"`
	Rows     [][]string     `json:"rows"`
	Notes    []string       `json:"notes,omitempty"`
	EnvCols  []string       `json:"env_columns,omitempty"`
	Variance [][]*stats.Agg `json:"variance,omitempty"`
	Manifest *Manifest      `json:"manifest,omitempty"`
}

// WriteTableJSON writes t as dir/BENCH_<ID>.json, creating dir (and any
// missing parents) first, and returns the written path.
func WriteTableJSON(dir string, t *Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(TableJSON{
		ID:       t.ID,
		Title:    t.Title,
		Columns:  t.Columns,
		Rows:     t.Rows,
		Notes:    t.Notes,
		EnvCols:  t.EnvCols,
		Variance: t.Variance,
		Manifest: t.Manifest,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadTableJSON loads a BENCH_<ID>.json previously written by
// WriteTableJSON. Pre-variance files (no variance/manifest blocks) load
// fine with those fields nil.
func ReadTableJSON(path string) (*TableJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t TableJSON
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.ID == "" {
		return nil, fmt.Errorf("%s: not a BENCH table (missing id)", path)
	}
	return &t, nil
}

// String renders the table with aligned columns. Tables with a variance
// block append a +/-stddev line per row so seed spread is visible in the
// terminal rendering too, not only in the JSON.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	measure := func(row []string) {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range t.Rows {
		measure(row)
	}
	spreads := make([][]string, len(t.Rows))
	if t.Variance != nil {
		for r := range t.Rows {
			if r >= len(t.Variance) {
				break
			}
			spread := make([]string, len(t.Rows[r]))
			any := false
			for c := range t.Rows[r] {
				if c < len(t.Variance[r]) && t.Variance[r][c] != nil && t.Variance[r][c].N > 1 {
					spread[c] = fmt.Sprintf("±%.2f", t.Variance[r][c].Stddev)
					any = true
				}
			}
			if any {
				spreads[r] = spread
				measure(spread)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for r, row := range t.Rows {
		writeRow(row)
		if spreads[r] != nil {
			writeRow(spreads[r])
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	if t.Manifest != nil {
		fmt.Fprintf(&sb, "manifest: %s\n", t.Manifest.Summary())
	}
	return sb.String()
}
