package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a printable experiment result: the harness's equivalent of one of
// the paper's tables or figure series.
type Table struct {
	ID      string // experiment id from DESIGN.md (T1..T9, F1)
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// TableJSON is the on-disk schema of a BENCH_<ID>.json table, the format
// the perf-trajectory tooling consumes.
type TableJSON struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// WriteTableJSON writes t as dir/BENCH_<ID>.json, creating dir (and any
// missing parents) first, and returns the written path.
func WriteTableJSON(dir string, t *Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(TableJSON{
		ID:      t.ID,
		Title:   t.Title,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
