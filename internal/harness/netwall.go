package harness

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

// NetWallConfig parameterizes ExpNetMemWall.
type NetWallConfig struct {
	Shards  int
	Backend shard.Backend

	// Window is the driver's burst size and the server's in-flight window
	// (they are set equal so the burst-synchronous driver can never draw a
	// BUSY). Zero means 64.
	Window int
	// Rounds is the measured enqueue+dequeue round count per cell; each
	// round answers 2*Window frames. Zero means 16.
	Rounds int
	// ValueSize is the enqueued payload size. Zero means 128.
	ValueSize int
	// Seed offsets the conservation key space; the workload itself is
	// deterministic, so distinct seeds isolate environment noise.
	Seed int64
	// RequireRatios makes the experiment fail unless the pooled arm beats
	// the legacy arm by the PR's acceptance floors — allocs/frame ratio
	// >= 5 at the smallest batch size and B/frame ratio >= 10 at the
	// largest (untraced rows). The CI smoke gate.
	RequireRatios bool
}

func (cfg *NetWallConfig) setDefaults() {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Backend == "" {
		cfg.Backend = shard.BackendCore
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 16
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 128
	}
	if cfg.ValueSize < 8 {
		cfg.ValueSize = 8 // room for the conservation key
	}
}

// ExpNetMemWall (T18) measures the network hot path's server-side memory
// cost per frame, before and after the pooled-frame overhaul, in one
// process and one run: for each batch size m and trace arm, a legacy
// server (WithNetPooling(false) — fresh ingress buffers, allocating reply
// encoders, per-reply scratch) and a pooled server (the default) serve an
// identical burst-synchronous workload from a zero-allocation raw-wire
// driver, and the rows report heap allocations and bytes per frame
// (process-wide runtime.MemStats deltas over the server's own frame
// counter) plus frames per socket flush. The driver speaks the wire
// format directly from preencoded request buffers — no Client, no
// per-frame encode — because MemStats is process-wide: any driver
// allocation would be charged to the server under measurement.
//
// Every cell is conservation-checked exactly: the driver XORs and counts
// the keys it enqueues and dequeues, requires both to match after the
// final drain, and requires the server to certify empty afterwards.
func ExpNetMemWall(batchSizes []int, cfg NetWallConfig) (*Table, error) {
	cfg.setDefaults()
	if len(batchSizes) == 0 {
		return nil, fmt.Errorf("netwall: no batch sizes")
	}
	t := &Table{
		ID: "T18",
		Title: fmt.Sprintf("Network memory wall: server-side allocs per frame, legacy vs pooled hot path (%s backend, %d shards, %dB values, window %d)",
			cfg.Backend, cfg.Shards, cfg.ValueSize, cfg.Window),
		Columns: []string{"m", "traced",
			"legacy allocs/frame", "pooled allocs/frame", "allocs ratio",
			"legacy B/frame", "pooled B/frame", "B ratio",
			"legacy frames/flush", "pooled frames/flush"},
		// The allocation profile is structural and gates across machines;
		// frames-per-flush depends on how the scheduler interleaves the
		// reader and the batch worker, so it is environment-bound.
		EnvCols: []string{"legacy frames/flush", "pooled frames/flush"},
		Notes: []string{
			"legacy = WithNetPooling(false): per-frame ingress allocation, aliasing batch decode semantics replaced by copies, allocating reply encoders, egress scratch released every flush — the pre-overhaul cost model in the same binary.",
			"pooled = the default hot path: size-classed pooled ingress buffers recycled per window, copy-at-admit enqueue payloads, per-session reusable reply scratch flushed in one sized write.",
			"allocs/frame and B/frame = process-wide heap-allocation deltas (runtime.MemStats) divided by the server's answered-frame counter delta; the driver is a raw-wire zero-allocation loop, so the delta is the server's.",
			"frames/flush = answered frames per batch pass (one socket flush each, modulo mid-window spills).",
			fmt.Sprintf("workload per cell: %d warmup + %d measured rounds; each round bursts %d enqueue frames of m values then %d dequeue frames of m values, conservation XOR-checked exactly, final poll must certify empty.",
				netWarmup(cfg.Rounds), cfg.Rounds, cfg.Window, cfg.Window),
			"traced rows set the wire trace flag on every frame against an observability-on server: every reply carries the 40-byte span block and the span pipeline runs at full sampling.",
		},
	}
	for _, m := range batchSizes {
		for _, traced := range []bool{false, true} {
			legacy, err := measureNetArm(m, traced, false, cfg)
			if err != nil {
				return nil, fmt.Errorf("netwall m=%d traced=%v legacy: %w", m, traced, err)
			}
			pooled, err := measureNetArm(m, traced, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("netwall m=%d traced=%v pooled: %w", m, traced, err)
			}
			allocsRatio := ratioOf(legacy.allocsPerFrame, pooled.allocsPerFrame)
			bRatio := ratioOf(legacy.bytesPerFrame, pooled.bytesPerFrame)
			tr := "off"
			if traced {
				tr = "on"
			}
			t.AddRow(m, tr,
				legacy.allocsPerFrame, pooled.allocsPerFrame, allocsRatio,
				legacy.bytesPerFrame, pooled.bytesPerFrame, bRatio,
				legacy.framesPerFlush, pooled.framesPerFlush)
			if cfg.RequireRatios && !traced {
				if m == batchSizes[0] && allocsRatio < 5 {
					return nil, fmt.Errorf("netwall: allocs/frame ratio %.2f at m=%d below the 5x gate (legacy %.2f, pooled %.2f)",
						allocsRatio, m, legacy.allocsPerFrame, pooled.allocsPerFrame)
				}
				if m == batchSizes[len(batchSizes)-1] && bRatio < 10 {
					return nil, fmt.Errorf("netwall: B/frame ratio %.2f at m=%d below the 10x gate (legacy %.1f, pooled %.1f)",
						bRatio, m, legacy.bytesPerFrame, pooled.bytesPerFrame)
				}
			}
		}
	}
	return t, nil
}

func netWarmup(rounds int) int { return rounds/4 + 2 }

func ratioOf(legacy, pooled float64) float64 {
	if pooled <= 0 {
		return 0
	}
	return legacy / pooled
}

// netArm is one (m, traced, pooling) cell's measurement.
type netArm struct {
	allocsPerFrame float64
	bytesPerFrame  float64
	framesPerFlush float64
}

// measureNetArm starts a fresh server for one arm, runs the warmup and
// measured rounds, and reads the per-frame allocation profile off the
// MemStats and Snapshot deltas.
func measureNetArm(m int, traced, pooled bool, cfg NetWallConfig) (netArm, error) {
	var out netArm
	q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend))
	if err != nil {
		return out, err
	}
	srv, err := server.Serve("127.0.0.1:0", q,
		server.WithNetPooling(pooled),
		server.WithObservability(true),
		server.WithWindow(cfg.Window),
		server.WithBatchMax(cfg.Window))
	if err != nil {
		return out, err
	}
	defer srv.Close()
	d, err := newNetDriver(srv.Addr().String(), m, traced, cfg)
	if err != nil {
		return out, err
	}
	defer d.close()

	for i := 0; i < netWarmup(cfg.Rounds); i++ {
		if err := d.round(); err != nil {
			return out, fmt.Errorf("warmup round %d: %w", i, err)
		}
	}

	// Order matters: the Snapshot before the window is taken ahead of the
	// first ReadMemStats, the one after behind the second, so neither
	// snapshot's own allocations land inside the measured delta (no
	// traffic flows between a snapshot and its adjacent ReadMemStats).
	runtime.GC()
	s0 := srv.Snapshot().Server
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < cfg.Rounds; i++ {
		if err := d.round(); err != nil {
			return out, fmt.Errorf("measured round %d: %w", i, err)
		}
	}
	runtime.ReadMemStats(&m1)
	s1 := srv.Snapshot().Server

	if err := d.assertEmpty(); err != nil {
		return out, err
	}
	if d.cntEnq != d.cntDeq || d.xorEnq != d.xorDeq {
		return out, fmt.Errorf("conservation violated: enqueued %d (xor %x) dequeued %d (xor %x)",
			d.cntEnq, d.xorEnq, d.cntDeq, d.xorDeq)
	}

	frames := s1.Frames - s0.Frames
	if frames <= 0 {
		return out, fmt.Errorf("server answered no frames in the measured window")
	}
	out.allocsPerFrame = float64(m1.Mallocs-m0.Mallocs) / float64(frames)
	out.bytesPerFrame = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(frames)
	if flushes := s1.Batches - s0.Batches; flushes > 0 {
		out.framesPerFlush = float64(frames) / float64(flushes)
	}
	return out, nil
}

// netDriver is the zero-allocation raw-wire load loop: request bursts are
// encoded once up front, per-round mutation happens in place (conservation
// keys, trace stamps), and replies are parsed from a fixed read buffer.
type netDriver struct {
	conn net.Conn
	sc   frameScanner

	m      int
	window int
	traced bool

	enqReq    []byte // one burst of window enqueue frames
	deqReq    []byte // one burst of window dequeue frames
	keyOffs   []int  // offsets of each value's 8-byte key within enqReq
	enqStamps []int  // trace-stamp offsets within enqReq
	deqStamps []int  // trace-stamp offsets within deqReq
	emptyReq  []byte // one untraced single-dequeue frame (drain check)

	key            uint64
	xorEnq, xorDeq uint64
	cntEnq, cntDeq int64
}

func newNetDriver(addr string, m int, traced bool, cfg NetWallConfig) (*netDriver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &netDriver{
		conn:   conn,
		m:      m,
		window: cfg.Window,
		traced: traced,
		key:    uint64(cfg.Seed) << 32,
	}
	d.sc = frameScanner{conn: conn, buf: make([]byte, 64<<10)}
	maxReply := 4 + 9 + 40 + 4 + m*(4+cfg.ValueSize)
	if maxReply > len(d.sc.buf) {
		return nil, fmt.Errorf("netwall: m=%d x %dB reply (%dB) exceeds the driver's %dB read buffer",
			m, cfg.ValueSize, maxReply, len(d.sc.buf))
	}

	// Preencode the enqueue burst. Frame ids repeat across bursts — the
	// driver is burst-synchronous on one connection and the server replies
	// in order, so ids only need to be unique within a burst. AppendWireFrame
	// copies its parts, so one value buffer and one length word serve every
	// slot; conservation keys are patched in place per round.
	value := make([]byte, cfg.ValueSize)
	stamp := make([]byte, 8)
	var cnt, lenw [4]byte
	binary.BigEndian.PutUint32(cnt[:], uint32(m))
	binary.BigEndian.PutUint32(lenw[:], uint32(cfg.ValueSize))
	for i := 0; i < cfg.Window; i++ {
		op := server.OpEnqueue
		if m > 1 {
			op = server.OpEnqueueBatch
		}
		parts := make([][]byte, 0, 2+2*m)
		if traced {
			op |= server.OpTraceFlag
			parts = append(parts, stamp)
		}
		if m > 1 {
			parts = append(parts, cnt[:])
			for j := 0; j < m; j++ {
				parts = append(parts, lenw[:], value)
			}
		} else {
			parts = append(parts, value)
		}
		frameStart := len(d.enqReq)
		d.enqReq = server.AppendWireFrame(d.enqReq, uint64(i+1), op, parts...)
		// Locate the stamp and each value's key inside the just-encoded
		// frame: header, then stamp, then (for batches) count word and
		// length-prefixed values.
		p := frameStart + 4 + 9
		if traced {
			d.enqStamps = append(d.enqStamps, p)
			p += 8
		}
		if m > 1 {
			p += 4 // count word
			for j := 0; j < m; j++ {
				p += 4 // length word
				d.keyOffs = append(d.keyOffs, p)
				p += cfg.ValueSize
			}
		} else {
			d.keyOffs = append(d.keyOffs, p)
		}
	}

	// Preencode the dequeue burst.
	var req [4]byte
	binary.BigEndian.PutUint32(req[:], uint32(m))
	for i := 0; i < cfg.Window; i++ {
		op := server.OpDequeue
		var payload []byte
		if m > 1 {
			op = server.OpDequeueBatch
			payload = req[:]
		}
		id := uint64(i + 1)
		if traced {
			op |= server.OpTraceFlag
			stampAt := len(d.deqReq) + 4 + 9
			d.deqStamps = append(d.deqStamps, stampAt)
			if payload != nil {
				d.deqReq = server.AppendWireFrame(d.deqReq, id, op, make([]byte, 8), payload)
			} else {
				d.deqReq = server.AppendWireFrame(d.deqReq, id, op, make([]byte, 8))
			}
		} else if payload != nil {
			d.deqReq = server.AppendWireFrame(d.deqReq, id, op, payload)
		} else {
			d.deqReq = server.AppendWireFrame(d.deqReq, id, op)
		}
	}
	d.emptyReq = server.AppendWireFrame(nil, 1, server.OpDequeue)
	return d, nil
}

func (d *netDriver) close() { d.conn.Close() }

// round sends one enqueue burst and one dequeue burst, reading every reply
// synchronously. Backlog math keeps the two in lockstep: a burst enqueues
// window*m values, all acknowledged before the dequeue burst starts, and
// the dequeue burst asks for exactly window*m.
func (d *netDriver) round() error {
	for _, off := range d.keyOffs {
		d.key++
		binary.BigEndian.PutUint64(d.enqReq[off:], d.key)
		d.xorEnq ^= d.key
		d.cntEnq++
	}
	if d.traced {
		now := uint64(time.Now().UnixNano())
		for _, off := range d.enqStamps {
			binary.BigEndian.PutUint64(d.enqReq[off:], now)
		}
	}
	if _, err := d.conn.Write(d.enqReq); err != nil {
		return err
	}
	for i := 0; i < d.window; i++ {
		_, kind, _, err := d.sc.frame()
		if err != nil {
			return err
		}
		if kind&^server.OpTraceFlag != server.StatusOK {
			return fmt.Errorf("enqueue reply %d: status 0x%02x", i, kind)
		}
	}

	if d.traced {
		now := uint64(time.Now().UnixNano())
		for _, off := range d.deqStamps {
			binary.BigEndian.PutUint64(d.deqReq[off:], now)
		}
	}
	if _, err := d.conn.Write(d.deqReq); err != nil {
		return err
	}
	for i := 0; i < d.window; i++ {
		_, kind, payload, err := d.sc.frame()
		if err != nil {
			return err
		}
		if kind&server.OpTraceFlag != 0 {
			if len(payload) < 40 {
				return fmt.Errorf("dequeue reply %d: %d bytes below span block", i, len(payload))
			}
			kind &^= server.OpTraceFlag
			payload = payload[40:]
		}
		switch kind {
		case server.StatusOK:
			if d.m == 1 {
				if len(payload) < 8 {
					return fmt.Errorf("dequeue reply %d: %d-byte value below key size", i, len(payload))
				}
				d.xorDeq ^= binary.BigEndian.Uint64(payload)
				d.cntDeq++
				continue
			}
			if len(payload) < 4 {
				return fmt.Errorf("dequeue reply %d: truncated batch", i)
			}
			count := binary.BigEndian.Uint32(payload)
			payload = payload[4:]
			for j := uint32(0); j < count; j++ {
				if len(payload) < 4 {
					return fmt.Errorf("dequeue reply %d: truncated batch entry %d", i, j)
				}
				n := int(binary.BigEndian.Uint32(payload))
				payload = payload[4:]
				if n > len(payload) || n < 8 {
					return fmt.Errorf("dequeue reply %d: bad entry length %d", i, n)
				}
				d.xorDeq ^= binary.BigEndian.Uint64(payload)
				d.cntDeq++
				payload = payload[n:]
			}
		case server.StatusEmpty:
			// Tolerated per frame; the cell-level conservation check
			// catches any value that never came back.
		default:
			return fmt.Errorf("dequeue reply %d: status 0x%02x", i, kind)
		}
	}
	return nil
}

// assertEmpty verifies the backlog is fully drained: one plain dequeue
// must certify empty.
func (d *netDriver) assertEmpty() error {
	if _, err := d.conn.Write(d.emptyReq); err != nil {
		return err
	}
	_, kind, _, err := d.sc.frame()
	if err != nil {
		return err
	}
	if kind != server.StatusEmpty {
		return fmt.Errorf("drain check: status 0x%02x, want empty", kind)
	}
	return nil
}

// frameScanner reads wire frames from a connection through one fixed
// buffer: no per-frame allocation, payloads alias the buffer until the
// next call.
type frameScanner struct {
	conn net.Conn
	buf  []byte
	r, w int
}

// fill ensures at least need unread bytes are buffered, compacting first.
func (s *frameScanner) fill(need int) error {
	if s.w-s.r >= need {
		return nil
	}
	if s.r > 0 {
		copy(s.buf, s.buf[s.r:s.w])
		s.w -= s.r
		s.r = 0
	}
	if need > len(s.buf) {
		return fmt.Errorf("netwall: %d-byte frame exceeds the %d-byte scan buffer", need, len(s.buf))
	}
	for s.w-s.r < need {
		n, err := s.conn.Read(s.buf[s.w:])
		if err != nil {
			return err
		}
		s.w += n
	}
	return nil
}

// frame reads one frame; the payload aliases the scan buffer and is valid
// only until the next call.
func (s *frameScanner) frame() (id uint64, kind byte, payload []byte, err error) {
	if err = s.fill(4); err != nil {
		return
	}
	n := int(binary.BigEndian.Uint32(s.buf[s.r:]))
	if n < 9 {
		err = fmt.Errorf("netwall: frame length %d below header", n)
		return
	}
	if err = s.fill(4 + n); err != nil {
		return
	}
	body := s.buf[s.r+4 : s.r+4+n]
	s.r += 4 + n
	id = binary.BigEndian.Uint64(body)
	kind = body[8]
	payload = body[9:]
	return
}
