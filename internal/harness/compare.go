package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// ErrRegression is wrapped by Compare's error when at least one metric
// fell outside its tolerance band; callers exit nonzero on it.
var ErrRegression = fmt.Errorf("harness: metric outside tolerance band")

// CompareEntry is the verdict for one (row, column) cell of a baseline
// comparison.
type CompareEntry struct {
	Row      int     `json:"row"`
	RowLabel string  `json:"row_label"` // first cell of the row, for humans
	Column   string  `json:"column"`
	Baseline float64 `json:"baseline"` // baseline mean
	CV       float64 `json:"cv"`       // baseline coefficient of variation
	Current  float64 `json:"current"`  // freshly measured mean
	Band     float64 `json:"band"`     // relative tolerance actually applied
	Delta    float64 `json:"delta"`    // relative delta vs baseline mean (0 for zero-mean cells)
	Status   string  `json:"status"`   // "ok", "regression", or "skipped-env"
}

// CompareReport is the full result of checking a fresh run against a
// committed baseline; it is printed and written as COMPARE_<ID>.json so CI
// can archive it as an artifact.
type CompareReport struct {
	ID          string         `json:"id"`
	Tolerance   float64        `json:"tolerance"`
	Portable    bool           `json:"portable"`
	Baseline    *Manifest      `json:"baseline_manifest,omitempty"`
	Current     *Manifest      `json:"current_manifest,omitempty"`
	Entries     []CompareEntry `json:"entries"`
	Checked     int            `json:"checked"`
	Regressions int            `json:"regressions"`
	SkippedEnv  int            `json:"skipped_env"`
}

// Compare checks a freshly produced table against a committed baseline.
// Every numeric baseline cell (one with a variance aggregate) is checked
// two-sided against the matching current cell with a relative band of
// tolerance + 2*cv(baseline); zero-mean baselines degrade to the absolute
// |current| <= 2*stddev rule, so a lost/dup baseline of exactly 0 demands
// exactly 0. In portable mode, columns the baseline declared
// environment-dependent (throughput, latency, speedup) are skipped so the
// check is meaningful across machines. Returns the report and a non-nil
// error wrapping ErrRegression if any cell fails.
func Compare(baseline *TableJSON, current *Table, tolerance float64, portable bool) (*CompareReport, error) {
	if baseline.ID != current.ID {
		return nil, fmt.Errorf("harness: comparing %s against baseline %s", current.ID, baseline.ID)
	}
	if baseline.Variance == nil {
		return nil, fmt.Errorf("harness: baseline %s has no variance block; regenerate it with -seeds >= 2 before gating on it", baseline.ID)
	}
	if len(baseline.Columns) != len(current.Columns) {
		return nil, fmt.Errorf("harness: %s: column count changed (baseline %d, current %d); re-emit the baseline", baseline.ID, len(baseline.Columns), len(current.Columns))
	}
	if len(baseline.Rows) != len(current.Rows) {
		return nil, fmt.Errorf("harness: %s: row count changed (baseline %d, current %d); run parameters must match the baseline manifest", baseline.ID, len(baseline.Rows), len(current.Rows))
	}
	env := make(map[string]bool, len(baseline.EnvCols))
	for _, c := range baseline.EnvCols {
		env[c] = true
	}
	rep := &CompareReport{
		ID:        baseline.ID,
		Tolerance: tolerance,
		Portable:  portable,
		Baseline:  baseline.Manifest,
		Current:   current.Manifest,
	}
	for r := range baseline.Rows {
		if r >= len(baseline.Variance) {
			break
		}
		label := ""
		if len(baseline.Rows[r]) > 0 {
			label = baseline.Rows[r][0]
		}
		for c, agg := range baseline.Variance[r] {
			if agg == nil || c >= len(current.Columns) {
				continue
			}
			col := baseline.Columns[c]
			entry := CompareEntry{
				Row: r, RowLabel: label, Column: col,
				Baseline: agg.Mean, CV: agg.CV, Band: agg.Band(tolerance),
			}
			if portable && env[col] {
				entry.Status = "skipped-env"
				rep.SkippedEnv++
				rep.Entries = append(rep.Entries, entry)
				continue
			}
			cur, ok := currentCell(current, r, c)
			if !ok {
				return nil, fmt.Errorf("harness: %s: cell (%s, %s) is numeric in the baseline but %q now", baseline.ID, label, col, current.Rows[r][c])
			}
			entry.Current = cur
			if agg.Mean != 0 {
				entry.Delta = (cur - agg.Mean) / agg.Mean
			}
			if agg.WithinBand(cur, tolerance) {
				entry.Status = "ok"
			} else {
				entry.Status = "regression"
				rep.Regressions++
			}
			rep.Checked++
			rep.Entries = append(rep.Entries, entry)
		}
	}
	if rep.Regressions > 0 {
		return rep, fmt.Errorf("%w: %s: %d of %d checked metrics", ErrRegression, baseline.ID, rep.Regressions, rep.Checked)
	}
	return rep, nil
}

// currentCell extracts the numeric value of cell (r,c) from the fresh run,
// preferring the across-seed mean from its variance block over re-parsing
// the formatted string.
func currentCell(t *Table, r, c int) (float64, bool) {
	if t.Variance != nil && r < len(t.Variance) && c < len(t.Variance[r]) && t.Variance[r][c] != nil {
		return t.Variance[r][c].Mean, true
	}
	if r >= len(t.Rows) || c >= len(t.Rows[r]) {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Rows[r][c], 64)
	return v, err == nil
}

// String renders the report as an aligned verdict table.
func (r *CompareReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== compare %s: tolerance %.0f%%", r.ID, r.Tolerance*100)
	if r.Portable {
		sb.WriteString(", portable (env-dependent columns skipped)")
	}
	sb.WriteString(" ===\n")
	rows := [][]string{{"row", "column", "baseline", "current", "delta", "band", "status"}}
	for _, e := range r.Entries {
		if e.Status == "skipped-env" {
			rows = append(rows, []string{e.RowLabel, e.Column, trim(e.Baseline), "-", "-", "-", e.Status})
			continue
		}
		rows = append(rows, []string{
			e.RowLabel, e.Column, trim(e.Baseline), trim(e.Current),
			fmt.Sprintf("%+.1f%%", e.Delta*100), fmt.Sprintf("±%.1f%%", e.Band*100), e.Status,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, row := range rows {
		for j, cell := range row {
			if j > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[j], cell)
		}
		sb.WriteString("\n")
		if i == 0 {
			for j, w := range widths {
				if j > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteString("\n")
		}
	}
	fmt.Fprintf(&sb, "checked %d metrics, %d regressions, %d env-dependent skipped\n",
		r.Checked, r.Regressions, r.SkippedEnv)
	return sb.String()
}

func trim(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// WriteCompareJSON writes the report as dir/COMPARE_<ID>.json (the CI
// artifact), creating dir first, and returns the written path.
func WriteCompareJSON(dir string, r *CompareReport) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "COMPARE_"+r.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
