package harness

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

func TestExpServiceLatencyTiny(t *testing.T) {
	rates := []int{800, 2000}
	table, results, err := ExpServiceLatencyResults(rates, ServiceConfig{
		Shards:  2,
		Backend: shard.BackendCore,
		Load: server.LoadConfig{
			Duration:     150 * time.Millisecond,
			Producers:    1,
			Consumers:    1,
			Window:       8,
			DrainTimeout: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "T11" {
		t.Errorf("table ID = %q", table.ID)
	}
	if len(table.Rows) != len(rates) || len(results) != len(rates) {
		t.Fatalf("%d rows / %d results for %d rates", len(table.Rows), len(results), len(rates))
	}
	for i, res := range results {
		if !res.Conserved() {
			t.Errorf("rate %d: lost=%d dup=%d", rates[i], res.Lost, res.Dup)
		}
		if res.Acked == 0 {
			t.Errorf("rate %d: no load acknowledged", rates[i])
		}
		if got := table.Rows[i][0]; got != strconv.Itoa(rates[i]) {
			t.Errorf("row %d rate column = %q", i, got)
		}
	}
	if table.String() == "" {
		t.Error("empty rendering")
	}

	if _, _, err := ExpServiceLatencyResults(nil, ServiceConfig{}); err == nil {
		t.Error("empty rate sweep accepted")
	}
}
