package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/queues"
)

func TestTableString(t *testing.T) {
	tbl := &Table{
		ID:      "TX",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("long-cell", 3)
	out := tbl.String()
	for _, want := range []string{"TX", "demo", "a note", "long-cell", "2.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPairsCountsOps(t *testing.T) {
	q, err := queues.NewNR(4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPairs(q, 4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Ops != 4*100 {
		t.Fatalf("Ops = %d, want 400", res.Summary.Ops)
	}
	if res.Summary.TotalEnqs != 200 {
		t.Fatalf("enqueues = %d, want 200", res.Summary.TotalEnqs)
	}
	if res.Summary.StepsPerOp <= 0 {
		t.Fatal("no steps recorded")
	}
	if res.ThroughputOps() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunParallelValidation(t *testing.T) {
	q, _ := queues.NewNR(2)
	if _, err := RunPairs(q, 5, 10, 1); err == nil {
		t.Error("procs > queue procs accepted")
	}
	if _, err := RunPairs(q, 0, 10, 1); err == nil {
		t.Error("procs = 0 accepted")
	}
}

func TestPrefillSetsQueueSize(t *testing.T) {
	q, _ := queues.NewNR(2)
	if err := Prefill(q, 50); err != nil {
		t.Fatal(err)
	}
	h, _ := q.Handle(0)
	seen := 0
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		seen++
	}
	if seen != 50 {
		t.Fatalf("drained %d values after Prefill(50)", seen)
	}
}

func TestRunEnqueueOnlyAndDequeueOnly(t *testing.T) {
	q, _ := queues.NewNR(3)
	res, err := RunEnqueueOnly(q, 3, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalEnqs != 120 || res.Summary.TotalDeqs != 0 {
		t.Fatalf("enqueue-only mix: %+v", res.Summary)
	}
	res, err = RunDequeueOnly(q, 3, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalDeqs != 120 {
		t.Fatalf("dequeue-only: %d non-null dequeues, want 120", res.Summary.TotalDeqs)
	}
}

func TestRunMixedRespectsFraction(t *testing.T) {
	q, _ := queues.NewNR(2)
	res, err := RunMixed(q, 2, 2000, 0.75, 1)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Summary.TotalEnqs) / float64(res.Summary.Ops)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("enqueue fraction = %.2f, want ~0.75", frac)
	}
}

func TestRunWithStallsValidation(t *testing.T) {
	q, _ := queues.NewNR(2)
	if _, err := RunWithStalls(q, 2, 10, 2, time.Microsecond, 1); err == nil {
		t.Error("stalled == procs accepted")
	}
}

func TestExperimentsSmoke(t *testing.T) {
	// Tiny parameters: these are correctness smoke tests for the drivers,
	// not measurements.
	ps := []int{2, 4}
	if tbl, err := ExpCASBound(ps, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpCASBound: %v", err)
	}
	if tbl, err := ExpEnqueueSteps(ps, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpEnqueueSteps: %v", err)
	}
	if tbl, err := ExpDequeueStepsVsP(ps, 64, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpDequeueStepsVsP: %v", err)
	}
	if tbl, err := ExpDequeueStepsVsQ(2, []int{16, 256}, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpDequeueStepsVsQ: %v", err)
	}
	if tbl, err := ExpRetryProblem(ps, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpRetryProblem: %v", err)
	}
	if tbl, err := ExpAdversarial(ps, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpAdversarial: %v", err)
	}
	if tbl, err := ExpSpaceBound(2, 8, 64); err != nil || len(tbl.Rows) == 0 {
		t.Errorf("ExpSpaceBound: %v", err)
	}
	if tbl, err := ExpBoundedSteps(ps, 200, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpBoundedSteps: %v", err)
	}
	if tbl, err := ExpThroughput([]int{2}, 200, 1); err != nil || len(tbl.Rows) != 1 {
		t.Errorf("ExpThroughput: %v", err)
	}
	if tbl, err := ExpWaitFree([]int{2}, 200, 1); err != nil || len(tbl.Rows) != 1 {
		t.Errorf("ExpWaitFree: %v", err)
	}
}

func TestDefaultFactoriesConstruct(t *testing.T) {
	for _, f := range DefaultFactories() {
		q, err := f.New(3)
		if err != nil {
			t.Errorf("%s: %v", f.Name, err)
			continue
		}
		if q.Procs() != 3 {
			t.Errorf("%s: Procs = %d", f.Name, q.Procs())
		}
		h, err := q.Handle(0)
		if err != nil {
			t.Errorf("%s: Handle: %v", f.Name, err)
			continue
		}
		h.Enqueue(1)
		if v, ok := h.Dequeue(); !ok || v != 1 {
			t.Errorf("%s: round trip = (%d, %v)", f.Name, v, ok)
		}
	}
}

func TestNewAdapterUnknown(t *testing.T) {
	if _, err := newAdapter(2, "nope"); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestAblationExperimentsSmoke(t *testing.T) {
	if tbl, err := ExpAblationSearch(2, 8, []int{0, 2}, 100, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpAblationSearch: %v", err)
	}
	if tbl, err := ExpAblationRefresh([]int{2, 4}, 150, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpAblationRefresh: %v", err)
	}
	if tbl, err := ExpAblationGC(2, []int64{4, 64}, 150, 1); err != nil || len(tbl.Rows) != 2 {
		t.Errorf("ExpAblationGC: %v", err)
	}
}
