package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// ExpBatchAmortization (T12): the batch-native operation path amortizes the
// ordering tree across a batch. A single-op workload pays one leaf block
// plus up to one block per tree level for every operation; an m-op batch
// pays the same once for m operations, so blocks installed per operation —
// the direct count of propagation work and root-CAS bandwidth — must fall
// roughly as 1/m toward the helping-dedup floor, with steps/op and CAS/op
// following. Every cell also verifies exact conservation (each enqueued
// value dequeued exactly once; lost and dup must be 0).
// The seed is a repetition label only: the batch workload itself is
// deterministic, so across-seed variance isolates pure scheduler noise.
func ExpBatchAmortization(ms []int, procs, opsPerProc int, seed int64) (*Table, error) {
	_ = seed
	t := &Table{
		ID: "T12",
		Title: fmt.Sprintf("Batch amortization vs batch size m (p=%d, %d ops/proc, pairs workload)",
			procs, opsPerProc),
		Columns: []string{"m", "blocks/op", "steps/op", "cas/op", "Mops/s", "lost", "dup"},
		// Wall-clock throughput is machine-dependent; the structural
		// counters (blocks, steps, CAS per op) and the conservation
		// columns are comparable across machines at matching GOMAXPROCS.
		EnvCols: []string{"Mops/s"},
		Notes: []string{
			"blocks/op = tree blocks installed / completed operations: the propagation work and root-CAS bandwidth paid per op.",
			"One m-op batch installs one leaf block and propagates once, so blocks/op falls toward 1/m x the single-op cost (helping dedups the rest).",
			"conservation requires lost = dup = 0 at every m.",
		},
	}
	prev := -1.0
	decreasing := true
	for _, m := range ms {
		if m < 1 {
			return nil, fmt.Errorf("harness: batch size %d must be positive", m)
		}
		r, err := runBatchPairs(procs, opsPerProc, m)
		if err != nil {
			return nil, err
		}
		t.AddRow(m, r.blocksPerOp, r.stepsPerOp, r.casPerOp, r.mops, r.lost, r.dup)
		if r.lost != 0 || r.dup != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("CONSERVATION VIOLATION at m=%d: lost=%d dup=%d", m, r.lost, r.dup))
		}
		if prev >= 0 && r.blocksPerOp >= prev {
			decreasing = false
		}
		prev = r.blocksPerOp
	}
	if decreasing && len(ms) > 1 {
		t.Notes = append(t.Notes, "blocks/op strictly decreasing across the m sweep: amortization confirmed.")
	}
	return t, nil
}

type batchRun struct {
	blocksPerOp float64
	stepsPerOp  float64
	casPerOp    float64
	mops        float64
	lost        int64
	dup         int64
}

// runBatchPairs drives p concurrent handles through a pairs workload in
// batches of m (enqueue a batch, dequeue a batch) on a fresh unbounded
// queue, then drains the residue and checks conservation.
func runBatchPairs(procs, opsPerProc, m int) (batchRun, error) {
	q, err := core.New[int64](procs)
	if err != nil {
		return batchRun{}, err
	}
	counters := make([]*metrics.Counter, procs)
	got := make([][]int64, procs)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < procs; p++ {
		h := q.MustHandle(p)
		counters[p] = &metrics.Counter{}
		h.SetCounter(counters[p])
		wg.Add(1)
		go func(p int, h *core.Handle[int64]) {
			defer wg.Done()
			for enq := 0; enq < opsPerProc; {
				k := m
				if left := opsPerProc - enq; k > left {
					k = left
				}
				es := make([]int64, k)
				for i := range es {
					es[i] = int64(p)*1_000_000_000 + int64(enq+i)
				}
				h.EnqueueBatch(es)
				enq += k
				vs, _ := h.DequeueBatch(k)
				got[p] = append(got[p], vs...)
			}
		}(p, h)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Drain the residue (still counted: its blocks and steps are part of
	// delivering the workload's values).
	h := q.MustHandle(0)
	for {
		vs, n := h.DequeueBatch(m)
		if n == 0 {
			break
		}
		got[0] = append(got[0], vs...)
	}

	var r batchRun
	seen := make(map[int64]int64, procs*opsPerProc)
	for _, vs := range got {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, n := range seen {
		if n > 1 {
			r.dup += n - 1
		}
	}
	r.lost = int64(procs*opsPerProc) - int64(len(seen))

	sum := metrics.Summarize(counters...)
	if sum.Ops > 0 {
		r.blocksPerOp = float64(q.BlocksInstalled()) / float64(sum.Ops)
	}
	r.stepsPerOp = sum.StepsPerOp
	r.casPerOp = sum.CASPerOp
	if elapsed > 0 {
		// Throughput counts the timed phase's completed operations (one
		// dequeue attempt per enqueue), not the untimed drain.
		r.mops = float64(2*procs*opsPerProc) / elapsed.Seconds() / 1e6
	}
	return r, nil
}
