package harness

import (
	"repro/internal/advsched"
	"repro/internal/queues"
)

// ExpAdversarial (T4b, Sections 1-2): the CAS retry problem under the exact
// worst-case schedule rather than whatever the machine's scheduler happens
// to produce. p simulated processes enqueue concurrently on the MS-queue; a
// deterministic adversary releases one poised CAS at a time, so every
// success invalidates the other processes' attempts: Theta(p) amortized
// steps per operation. The NR-queue's cost is schedule-independent: its
// worst observed single-operation step count under concurrent execution is
// reported next to its O(log p) CAS budget (Proposition 19), and the ratio
// column shows the separation growing with p.
func ExpAdversarial(ps []int, opsPerProc int, seed int64) (*Table, error) {
	t := &Table{
		ID:    "T4b",
		Title: "Worst-case schedules: MS-queue under CAS-storm adversary vs NR-queue",
		Columns: []string{"p", "ms storm steps/op", "faa fast steps/op", "faa slow steps/op",
			"nr worst-op steps", "nr cas bound 5lg(p)+2", "ms/nr ratio"},
		Notes: []string{
			"ms storm steps/op: total steps of p concurrent enqueues under the deterministic CAS-storm adversary, divided by p (Theta(p)).",
			"nr worst-op steps: maximum steps of any single operation in a concurrent run — wait-freedom bounds this for every schedule (Theorem 22).",
			"faa columns: same storm on the fetch&add segment queue; the fast path (huge segments) is immune, the slow path (segment transitions) re-exposes the retry problem (Section 2).",
		},
	}
	for _, p := range ps {
		// Simulated adversarial MS-queue enqueues.
		q := advsched.NewMSQueue()
		machines := make([]advsched.Machine, p)
		var total int
		rounds := opsPerProc
		if rounds > 64 {
			rounds = 64 // each round is a full p-process storm
		}
		for r := 0; r < rounds; r++ {
			for i := range machines {
				machines[i] = advsched.NewMSEnqueue(q, int64(r*p+i))
			}
			total += advsched.StormRun(machines)
		}
		msPerOp := float64(total) / float64(p*rounds)

		// FAA queue under the same storm: fast path (large segments) is
		// immune, slow path (segment per op) re-exposes the retry problem.
		faaFast := faaStormPerOp(p, rounds, 1<<20)
		faaSlow := faaStormPerOp(p, rounds, 1)

		nrQ, err := queues.NewNR(p)
		if err != nil {
			return nil, err
		}
		res, err := RunPairs(nrQ, p, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		nrWorst := float64(res.Summary.MaxOpSteps)
		ratio := 0.0
		if nrWorst > 0 {
			ratio = msPerOp / nrWorst
		}
		t.AddRow(p, msPerOp, faaFast, faaSlow, res.Summary.MaxOpSteps, 5*ceilLog2(p)+2, ratio)
	}
	return t, nil
}

// faaStormPerOp runs rounds of p concurrent FAA enqueues under the storm
// adversary and returns amortized steps per operation.
func faaStormPerOp(p, rounds, segSize int) float64 {
	total := 0
	for r := 0; r < rounds; r++ {
		q := advsched.NewFAAQueue(segSize)
		machines := make([]advsched.Machine, p)
		for i := range machines {
			machines[i] = advsched.NewFAAEnqueue(q, int64(r*p+i))
		}
		total += advsched.StormRun(machines)
	}
	return float64(total) / float64(p*rounds)
}
