package harness

import (
	"fmt"
	"runtime"

	"repro/internal/queues"
	"repro/internal/shard"
)

// MemWallConfig parameterizes ExpMemWall.
type MemWallConfig struct {
	// Backend selects the per-shard queue implementation for the fabric
	// columns (the nr baseline column is always the unsharded core queue).
	Backend shard.Backend
	// RequirePairs makes ExpMemWall fail if the hand-off workload
	// eliminated zero enqueue/dequeue pairs at the largest shard count —
	// the CI smoke gate that keeps the elimination path from silently
	// rotting into dead code.
	RequirePairs bool
	// Seed is the experiment seed; trial seeds derive from it so a run is
	// reproducible from one number. Zero means seed 1 (the historical
	// default).
	Seed int64
}

// ExpMemWall (T17) re-measures the T10 sharded-scaling sweep after the
// memory-system overhaul, adding the allocation dimension: ops/s, heap
// allocations and bytes per operation for the nr baseline and the fabric
// across shard counts, plus the fraction of operations served by the
// elimination fast path. T10's table (bench_results/BENCH_T10.json) is the
// frozen "before"; this experiment is the "after".
func ExpMemWall(gs, shardCounts []int, opsPerProc int, cfg MemWallConfig) (*Table, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	kMax := shardCounts[len(shardCounts)-1]
	cols := []string{"g", "nr Mops/s", "nr allocs/op"}
	for _, k := range shardCounts {
		cols = append(cols, fmt.Sprintf("k=%d", k))
	}
	cols = append(cols,
		fmt.Sprintf("k=%d allocs/op", kMax),
		fmt.Sprintf("k=%d B/op", kMax),
		"pair %",
		"handoff pair %",
		fmt.Sprintf("speedup k=%d", kMax),
	)
	envCols := []string{"nr Mops/s", "pair %", "handoff pair %", fmt.Sprintf("speedup k=%d", kMax)}
	for _, k := range shardCounts {
		envCols = append(envCols, fmt.Sprintf("k=%d", k))
	}
	t := &Table{
		ID:      "T17",
		Title:   fmt.Sprintf("Memory-wall rerun of T10: throughput and allocation profile (%s backend, pairs workload)", cfg.Backend),
		Columns: cols,
		// Throughput, speedup, and elimination hit rates depend on the
		// machine; the allocation profile columns stay checkable across
		// machines (run the gate with matching GOMAXPROCS).
		EnvCols: envCols,
		Notes: []string{
			"Mops/s = completed operations per second / 1e6, best of 3 trials; allocs/op and B/op are heap-allocation deltas (runtime.MemStats) over the whole run divided by completed operations, minimum over the trials.",
			"pair % = operations served by the enqueue/dequeue elimination path at k=" + fmt.Sprint(kMax) + " under the pairs workload; handoff pair % = the same under a 50/50 mixed workload that keeps the backlog near zero.",
			"Before/after comparison: BENCH_T10.json rows measured the same workload before block recycling, tree flattening, false-sharing padding, and elimination.",
			"speedup = fabric at the largest shard count over the single nr-queue at the same goroutine count.",
		},
	}
	for _, g := range gs {
		g := g
		base, err := measureAlloc(func() (queues.Queue, error) { return queues.NewNR(g) }, g, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		row := []any{g, base.mops, base.allocsPerOp}
		var last allocMeasurement
		for _, k := range shardCounts {
			k := k
			m, err := measureAlloc(func() (queues.Queue, error) {
				return queues.NewSharded(g, k, cfg.Backend)
			}, g, opsPerProc, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, m.mops)
			last = m
		}
		handoff, err := measureHandoffPairs(g, kMax, opsPerProc, cfg.Backend, seed)
		if err != nil {
			return nil, err
		}
		if cfg.RequirePairs && handoff.pairPct == 0 {
			return nil, fmt.Errorf("memwall: elimination never fired at g=%d k=%d under the hand-off workload", g, kMax)
		}
		speedup := 0.0
		if base.mops > 0 {
			speedup = last.mops / base.mops
		}
		row = append(row, last.allocsPerOp, last.bytesPerOp, last.pairPct, handoff.pairPct, speedup)
		t.AddRow(row...)
	}
	return t, nil
}

// allocMeasurement is one cell group of the T17 table.
type allocMeasurement struct {
	mops        float64 // best-of-trials throughput, millions of ops/s
	allocsPerOp float64 // min-of-trials heap allocations per operation
	bytesPerOp  float64 // min-of-trials heap bytes per operation
	pairPct     float64 // eliminated operations as % of all, best-throughput trial
}

// measureAlloc runs the pairs workload three times on fresh queues and
// reports the best throughput alongside the minimum per-op allocation
// profile: throughput tables compare capability, and the minimum strips
// one-off warm-up allocations (arena slabs, goroutine stacks) that a longer
// run amortizes away anyway.
func measureAlloc(mk func() (queues.Queue, error), procs, opsPerProc int, seed int64) (allocMeasurement, error) {
	out := allocMeasurement{allocsPerOp: -1, bytesPerOp: -1}
	for trial := 0; trial < 3; trial++ {
		q, err := mk()
		if err != nil {
			return out, err
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		res, err := RunPairs(q, procs, opsPerProc, seed*8+int64(trial))
		if err != nil {
			return out, err
		}
		runtime.ReadMemStats(&m1)
		ops := float64(res.Summary.Ops)
		if ops == 0 {
			continue
		}
		allocs := float64(m1.Mallocs-m0.Mallocs) / ops
		bytes := float64(m1.TotalAlloc-m0.TotalAlloc) / ops
		if tp := res.ThroughputOps(); tp > out.mops*1e6 {
			out.mops = tp / 1e6
			out.pairPct = pairPercent(q, res.Summary.Ops)
		}
		if out.allocsPerOp < 0 || allocs < out.allocsPerOp {
			out.allocsPerOp = allocs
		}
		if out.bytesPerOp < 0 || bytes < out.bytesPerOp {
			out.bytesPerOp = bytes
		}
	}
	return out, nil
}

// measureHandoffPairs runs the 50/50 mixed workload — random enqueue or
// dequeue per step, backlog a random walk around zero — which is the regime
// the elimination path targets: dequeuers keep probing an empty fabric
// while enqueuers keep finding an empty home shard.
func measureHandoffPairs(procs, k, opsPerProc int, backend shard.Backend, seed int64) (allocMeasurement, error) {
	var out allocMeasurement
	q, err := queues.NewSharded(procs, k, backend)
	if err != nil {
		return out, err
	}
	res, err := RunMixed(q, procs, opsPerProc, 0.5, seed)
	if err != nil {
		return out, err
	}
	out.mops = res.ThroughputOps() / 1e6
	out.pairPct = pairPercent(q, res.Summary.Ops)
	return out, nil
}

// pairPercent reads the fabric's eliminated-pair tally (live atomics, no
// fold needed) and converts it to a percentage of completed operations;
// each pair accounts for two operations. Non-fabric queues report 0.
func pairPercent(q queues.Queue, ops int64) float64 {
	u, ok := q.(interface{ Unwrap() *shard.Queue[int64] })
	if !ok || ops == 0 {
		return 0
	}
	var pairs int64
	for _, s := range u.Unwrap().ShardStats() {
		pairs += s.Pairs
	}
	return 100 * float64(2*pairs) / float64(ops)
}
