package harness

import (
	"fmt"

	"repro/internal/queues"
	"repro/internal/shard"
)

// ExpShardedScaling (T10): wall-clock enqueue+dequeue throughput of the
// sharded fabric versus shard count, against the single nr-queue baseline.
// A single tournament tree serializes all g goroutines through one root, so
// the baseline plateaus as g grows; the fabric's k roots should lift the
// plateau roughly k-fold until memory bandwidth interferes.
func ExpShardedScaling(gs, shardCounts []int, opsPerProc int, backend shard.Backend, seed int64) (*Table, error) {
	cols := []string{"g", "nr Mops/s"}
	for _, k := range shardCounts {
		cols = append(cols, fmt.Sprintf("k=%d", k))
	}
	kMax := shardCounts[len(shardCounts)-1]
	cols = append(cols, fmt.Sprintf("speedup k=%d", kMax))
	t := &Table{
		ID:      "T10",
		Title:   fmt.Sprintf("Sharded fabric throughput vs shard count (%s backend, pairs workload)", backend),
		Columns: cols,
		// Every measured column is wall-clock throughput, so all of them
		// depend on the machine; portable compare mode skips them.
		EnvCols: cols[1:],
		Notes: []string{
			"Mops/s = completed operations per second / 1e6; pairs workload (alternating enqueue/dequeue per goroutine).",
			"speedup = fabric at the largest shard count over the single nr-queue at the same goroutine count.",
			"Per-shard FIFO and wait-freedom are preserved; cross-shard order is relaxed.",
		},
	}
	for _, g := range gs {
		base, err := measureThroughput(func() (queues.Queue, error) { return queues.NewNR(g) }, g, opsPerProc, seed)
		if err != nil {
			return nil, err
		}
		row := []any{g, base / 1e6}
		var last float64
		for _, k := range shardCounts {
			k := k
			tp, err := measureThroughput(func() (queues.Queue, error) {
				return queues.NewSharded(g, k, backend)
			}, g, opsPerProc, seed)
			if err != nil {
				return nil, err
			}
			row = append(row, tp/1e6)
			last = tp
		}
		speedup := 0.0
		if base > 0 {
			speedup = last / base
		}
		row = append(row, speedup)
		t.AddRow(row...)
	}
	return t, nil
}

// measureThroughput reports the best of three trials on a fresh queue each
// time: throughput tables compare capability, and the max is far less noisy
// than a single run on a shared machine.
func measureThroughput(mk func() (queues.Queue, error), procs, opsPerProc int, seed int64) (float64, error) {
	best := 0.0
	for trial := 0; trial < 3; trial++ {
		q, err := mk()
		if err != nil {
			return 0, err
		}
		// Trial seeds derive from the experiment seed so a whole
		// measurement is reproducible from one number.
		res, err := RunPairs(q, procs, opsPerProc, seed*8+int64(trial))
		if err != nil {
			return 0, err
		}
		if tp := res.ThroughputOps(); tp > best {
			best = tp
		}
	}
	return best, nil
}

// ShardCountsUpTo returns the doubling sequence 1, 2, 4, ..., kMax (kMax is
// included even when not a power of two).
func ShardCountsUpTo(kMax int) []int {
	var ks []int
	for k := 1; k < kMax; k *= 2 {
		ks = append(ks, k)
	}
	return append(ks, kMax)
}
