package harness

import (
	"strconv"
	"testing"
	"time"

	"repro/internal/server"
)

// TestExpElasticScalingSmoke runs a miniature T14 ramp in-process: the
// high phases must grow the fabric, the low phase must shrink it, and
// every phase must conserve exactly.
func TestExpElasticScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic scaling smoke needs real time to ramp")
	}
	table, results, err := ExpElasticScalingResults([]int{3000, 150, 3000}, ElasticConfig{
		Shards:        1,
		MaxShards:     4,
		Interval:      25 * time.Millisecond,
		LowWatermark:  200,
		HighWatermark: 800,
		Load: server.LoadConfig{
			Duration:     400 * time.Millisecond,
			Producers:    2,
			Consumers:    2,
			DrainTimeout: 5 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(table.Rows))
	}
	for i, res := range results {
		if !res.Conserved() {
			t.Errorf("phase %d: lost=%d dup=%d", i, res.Lost, res.Dup)
		}
	}
	// Column 5/6 are cumulative grows/shrinks; the ramp must have forced
	// at least one of each by its final row.
	last := table.Rows[len(table.Rows)-1]
	grows, _ := strconv.Atoi(last[5])
	shrinks, _ := strconv.Atoi(last[6])
	if grows < 1 || shrinks < 1 {
		t.Errorf("ramp recorded %d grows / %d shrinks, want >= 1 each\n%s", grows, shrinks, table.String())
	}
}

func TestExpElasticScalingValidation(t *testing.T) {
	if _, err := ExpElasticScaling(nil, ElasticConfig{}); err == nil {
		t.Error("ExpElasticScaling accepted an empty ramp")
	}
}
