package harness

// Workload runners: spawn one goroutine per handle, synchronize the start
// with a barrier so contention is maximal (the paper's worst-case
// executions are adversarial schedules; a simultaneous start is the closest
// portable approximation), and collect per-handle step counters.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/queues"
)

// Result is the outcome of one workload run.
type Result struct {
	Counters []*metrics.Counter
	Elapsed  time.Duration
	Summary  metrics.Summary
}

// summarize fills in the aggregate view.
func newResult(counters []*metrics.Counter, elapsed time.Duration) Result {
	return Result{
		Counters: counters,
		Elapsed:  elapsed,
		Summary:  metrics.Summarize(counters...),
	}
}

// ThroughputOps returns completed operations per second.
func (r Result) ThroughputOps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Summary.Ops) / r.Elapsed.Seconds()
}

// Prefill enqueues n distinct values through handle 0 before a measured run.
// Prefill values are negative so they never collide with workload values.
func Prefill(q queues.Queue, n int) error {
	if n == 0 {
		return nil
	}
	h, err := q.Handle(0)
	if err != nil {
		return err
	}
	for i := 1; i <= n; i++ {
		h.Enqueue(int64(-i))
	}
	return nil
}

// runParallel starts one goroutine per handle, each executing body(proc,
// handle, rng) after a common start barrier, and returns per-handle
// counters and the wall-clock time of the parallel phase.
func runParallel(q queues.Queue, procs int, seed int64,
	body func(proc int, h queues.Handle, rng *rand.Rand)) (Result, error) {
	if procs < 1 || procs > q.Procs() {
		return Result{}, fmt.Errorf("harness: procs %d out of range [1,%d]", procs, q.Procs())
	}
	counters := make([]*metrics.Counter, procs)
	handles := make([]queues.Handle, procs)
	for i := 0; i < procs; i++ {
		h, err := q.Handle(i)
		if err != nil {
			return Result{}, err
		}
		counters[i] = &metrics.Counter{}
		h.SetCounter(counters[i])
		handles[i] = h
	}
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(procs)
	for i := 0; i < procs; i++ {
		go func(i int) {
			defer done.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			start.Wait()
			body(i, handles[i], rng)
		}(i)
	}
	begin := time.Now()
	start.Done()
	done.Wait()
	elapsed := time.Since(begin)
	return newResult(counters, elapsed), nil
}

// RunPairs runs the symmetric pairs workload: every process alternates
// enqueue and dequeue opsPerProc/2 times each. The queue size stays within
// ±procs of its prefill level, making this the standard workload for
// step-complexity measurements at a controlled queue size.
func RunPairs(q queues.Queue, procs, opsPerProc int, seed int64) (Result, error) {
	return runParallel(q, procs, seed, func(proc int, h queues.Handle, _ *rand.Rand) {
		base := int64(proc) << 32
		for s := 0; s < opsPerProc/2; s++ {
			h.Enqueue(base + int64(s))
			h.Dequeue()
		}
	})
}

// RunEnqueueOnly runs opsPerProc enqueues on every process.
func RunEnqueueOnly(q queues.Queue, procs, opsPerProc int, seed int64) (Result, error) {
	return runParallel(q, procs, seed, func(proc int, h queues.Handle, _ *rand.Rand) {
		base := int64(proc) << 32
		for s := 0; s < opsPerProc; s++ {
			h.Enqueue(base + int64(s))
		}
	})
}

// RunDequeueOnly runs opsPerProc dequeues on every process (the queue should
// be prefilled).
func RunDequeueOnly(q queues.Queue, procs, opsPerProc int, seed int64) (Result, error) {
	return runParallel(q, procs, seed, func(proc int, h queues.Handle, _ *rand.Rand) {
		for s := 0; s < opsPerProc; s++ {
			h.Dequeue()
		}
	})
}

// RunMixed runs a randomized workload where each operation is an enqueue
// with probability enqFrac.
func RunMixed(q queues.Queue, procs, opsPerProc int, enqFrac float64, seed int64) (Result, error) {
	return runParallel(q, procs, seed, func(proc int, h queues.Handle, rng *rand.Rand) {
		base := int64(proc) << 32
		next := int64(0)
		for s := 0; s < opsPerProc; s++ {
			if rng.Float64() < enqFrac {
				h.Enqueue(base + next)
				next++
			} else {
				h.Dequeue()
			}
		}
	})
}

// RunWithStalls runs the pairs workload while stall of the processes
// repeatedly stop for pauseEvery operations, modelling slow or preempted
// processes. Wait-freedom predicts the remaining processes' per-operation
// step counts are unaffected.
func RunWithStalls(q queues.Queue, procs, opsPerProc, stalled int, pause time.Duration, seed int64) (Result, error) {
	if stalled >= procs {
		return Result{}, fmt.Errorf("harness: stalled %d must be < procs %d", stalled, procs)
	}
	return runParallel(q, procs, seed, func(proc int, h queues.Handle, _ *rand.Rand) {
		base := int64(proc) << 32
		slow := proc < stalled
		for s := 0; s < opsPerProc/2; s++ {
			h.Enqueue(base + int64(s))
			if slow && s%8 == 0 {
				time.Sleep(pause)
			}
			h.Dequeue()
		}
	})
}
