package harness

import (
	"fmt"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ServiceConfig shapes the T11 service-latency experiment.
type ServiceConfig struct {
	// Target address of a running queue service. Empty means: start an
	// in-process server over a fresh fabric (Shards/Backend below) on a
	// loopback ephemeral port for the duration of the experiment.
	Addr    string
	Shards  int
	Backend shard.Backend

	// Per-rate open-loop run shape; Rate is overridden per row.
	Load server.LoadConfig
}

// ExpServiceLatency (T11): end-to-end latency of the network queue service
// under an open-loop load sweep. For each offered rate, producers pace
// pipelined enqueues over the wire while consumers drain, and the row
// reports the achieved throughput, enqueue-ack and enqueue-to-dequeue
// latency percentiles, backpressure rejections, and the conservation
// verdict (every acknowledged value dequeued exactly once). Latencies are
// measured from each op's *scheduled* send time, so queueing delay under
// overload is charged to the service, not silently omitted.
func ExpServiceLatency(rates []int, cfg ServiceConfig) (*Table, error) {
	t, _, err := ExpServiceLatencyResults(rates, cfg)
	return t, err
}

// ExpServiceLatencyResults is ExpServiceLatency, additionally returning
// the per-rate load results so callers (cmd/qload) can act on raw counts —
// e.g. exit nonzero when conservation failed.
func ExpServiceLatencyResults(rates []int, cfg ServiceConfig) (*Table, []*server.LoadResult, error) {
	if len(rates) == 0 {
		return nil, nil, fmt.Errorf("harness: no offered rates")
	}
	addr := cfg.Addr
	if addr == "" {
		if cfg.Shards <= 0 {
			cfg.Shards = 4
		}
		if cfg.Backend == "" {
			cfg.Backend = shard.BackendCore
		}
		q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend))
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.Serve("127.0.0.1:0", q)
		if err != nil {
			return nil, nil, err
		}
		defer srv.Close()
		addr = srv.Addr().String()
	}
	if cfg.Load.Duration <= 0 {
		cfg.Load.Duration = time.Second
	}

	t := &Table{
		ID: "T11",
		Title: fmt.Sprintf("Service end-to-end latency vs offered rate (open loop, %dB values, %d prod / %d cons conns)",
			max(cfg.Load.ValueSize, server.MinValueSize), max(cfg.Load.Producers, 2), max(cfg.Load.Consumers, 2)),
		Columns: []string{"rate/s", "achieved/s", "enq p50 ms", "enq p99 ms",
			"e2e p50 ms", "e2e p99 ms", "busy", "lost", "dup"},
		Notes: []string{
			"open loop: latencies measured from each op's scheduled send time (coordinated-omission free).",
			"enq = enqueue ack round trip; e2e = scheduled enqueue to consumer dequeue.",
			"busy = enqueues rejected by the server's bounded in-flight window.",
			"conservation requires lost = dup = 0 at every rate.",
		},
	}
	results := make([]*server.LoadResult, 0, len(rates))
	for _, rate := range rates {
		load := cfg.Load
		load.Rate = rate
		res, err := server.RunLoad(addr, load)
		if err != nil {
			return nil, nil, fmt.Errorf("rate %d: %w", rate, err)
		}
		results = append(results, res)
		t.AddRow(rate, res.AchievedRate(),
			stats.Percentile(res.EnqLatMs, 50), stats.Percentile(res.EnqLatMs, 99),
			stats.Percentile(res.E2ELatMs, 50), stats.Percentile(res.E2ELatMs, 99),
			res.Busy, res.Lost, res.Dup)
		if !res.Conserved() {
			t.Notes = append(t.Notes,
				fmt.Sprintf("CONSERVATION VIOLATION at rate %d: lost=%d dup=%d", rate, res.Lost, res.Dup))
		}
	}
	return t, results, nil
}
