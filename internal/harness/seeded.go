package harness

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// DefaultSeeds are the fixed seeds the multi-seed runner uses, following
// the hypothesis-experiment convention of reusing the same small seed set
// everywhere so any single run can be reproduced by name.
var DefaultSeeds = []int64{42, 123, 456}

// Seeds returns n seeds: the default triple first, then deterministic
// extras (1000, 1001, ...) for larger sweeps.
func Seeds(n int) []int64 {
	if n < 1 {
		n = 1
	}
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if i < len(DefaultSeeds) {
			out = append(out, DefaultSeeds[i])
		} else {
			out = append(out, int64(1000+i-len(DefaultSeeds)))
		}
	}
	return out
}

// Manifest records everything needed to judge whether two runs of the same
// experiment are comparable: the seeds, the toolchain and machine, the
// commit, any precondition violations observed before measuring, and the
// experiment parameters (which compare mode uses to re-run the experiment
// exactly as the baseline did).
type Manifest struct {
	Seeds         []int64        `json:"seeds"`
	GoVersion     string         `json:"go_version"`
	GOOS          string         `json:"goos"`
	GOARCH        string         `json:"goarch"`
	NumCPU        int            `json:"num_cpu"`
	GOMAXPROCS    int            `json:"gomaxprocs"`
	Race          bool           `json:"race"`
	Commit        string         `json:"commit"`
	Preconditions []string       `json:"preconditions,omitempty"`
	Params        map[string]any `json:"params,omitempty"`
}

// Summary renders the manifest as one human-readable line for table output.
func (m *Manifest) Summary() string {
	var sb strings.Builder
	seeds := make([]string, len(m.Seeds))
	for i, s := range m.Seeds {
		seeds[i] = strconv.FormatInt(s, 10)
	}
	fmt.Fprintf(&sb, "seeds=%s %s %s/%s cpus=%d gomaxprocs=%d commit=%s",
		strings.Join(seeds, ","), m.GoVersion, m.GOOS, m.GOARCH,
		m.NumCPU, m.GOMAXPROCS, m.Commit)
	if m.Race {
		sb.WriteString(" race=on")
	}
	if len(m.Preconditions) > 0 {
		fmt.Fprintf(&sb, " preconditions=[%s]", strings.Join(m.Preconditions, "; "))
	}
	return sb.String()
}

// NewManifest captures the current environment plus the given seeds and
// experiment parameters, running the precondition checks as a side effect.
func NewManifest(seeds []int64, params map[string]any) *Manifest {
	return &Manifest{
		Seeds:         append([]int64(nil), seeds...),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Race:          RaceEnabled,
		Commit:        buildCommit(),
		Preconditions: CheckPreconditions(),
		Params:        params,
	}
}

// buildCommit returns the VCS revision baked into the binary by the Go
// toolchain, or "unknown" outside a stamped build (go test, go run from a
// dirty tree on older toolchains, ...).
func buildCommit() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty && rev != "unknown" {
		rev += "-dirty"
	}
	return rev
}

// CheckPreconditions inspects the environment for conditions that make a
// measurement untrustworthy and returns one human-readable violation per
// problem (empty slice when clean). Violations are recorded in the run
// manifest and printed, not fatal: CI boxes legitimately violate some of
// them, and the variance columns plus tolerance bands absorb the noise —
// but a reader of the JSON must be able to see the run was compromised.
func CheckPreconditions() []string {
	var out []string
	if p, n := runtime.GOMAXPROCS(0), runtime.NumCPU(); p < n {
		out = append(out, fmt.Sprintf("GOMAXPROCS=%d below NumCPU=%d: parallel speedup rows will be capped", p, n))
	}
	if RaceEnabled {
		out = append(out, "race detector enabled: timings are not comparable to non-race builds")
	}
	if load, ok := loadAvg1(); ok {
		if busy := float64(runtime.NumCPU()) * 0.5; load > busy {
			out = append(out, fmt.Sprintf("1-min loadavg %.2f above %.1f (half of %d CPUs): machine not idle", load, busy, runtime.NumCPU()))
		}
	}
	return out
}

// loadAvg1 reads the 1-minute load average on Linux; ok=false elsewhere or
// on any read/parse failure (preconditions degrade gracefully off-Linux).
func loadAvg1() (float64, bool) {
	data, err := os.ReadFile("/proc/loadavg")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// RunSeeded executes a single-table experiment once per seed and merges the
// results: numeric cells become the across-seed mean with a stats.Agg
// recorded in the table's variance block; non-numeric cells must agree
// across seeds or the merged cell shows the disagreement explicitly. The
// merged table carries a Manifest built from seeds and params.
func RunSeeded(seeds []int64, params map[string]any, exp func(seed int64) (*Table, error)) (*Table, error) {
	tables, err := RunSeededTables(seeds, params, func(seed int64) ([]*Table, error) {
		t, err := exp(seed)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	})
	if err != nil {
		return nil, err
	}
	return tables[0], nil
}

// RunSeededTables is RunSeeded for experiments that emit several tables per
// run (e.g. -exp deqsteps): each table position is merged independently.
func RunSeededTables(seeds []int64, params map[string]any, exp func(seed int64) ([]*Table, error)) ([]*Table, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("harness: RunSeeded needs at least one seed")
	}
	manifest := NewManifest(seeds, params)
	runs := make([][]*Table, len(seeds))
	for i, seed := range seeds {
		ts, err := exp(seed)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		if len(ts) == 0 {
			return nil, fmt.Errorf("seed %d: experiment produced no tables", seed)
		}
		if i > 0 && len(ts) != len(runs[0]) {
			return nil, fmt.Errorf("seed %d: produced %d tables, seed %d produced %d", seed, len(ts), seeds[0], len(runs[0]))
		}
		runs[i] = ts
	}
	merged := make([]*Table, len(runs[0]))
	for pos := range runs[0] {
		perSeed := make([]*Table, len(runs))
		for i := range runs {
			perSeed[i] = runs[i][pos]
		}
		m, err := mergeSeedTables(perSeed)
		if err != nil {
			return nil, err
		}
		m.Manifest = manifest
		merged[pos] = m
	}
	return merged, nil
}

// mergeSeedTables folds per-seed copies of the same table into one: shape
// (id, columns, row count) must match; numeric cells are averaged with a
// variance aggregate, identical strings pass through, and diverging
// non-numeric cells are joined with "|" so conservation notes and similar
// qualitative outputs are never silently averaged away.
func mergeSeedTables(ts []*Table) (*Table, error) {
	base := ts[0]
	for _, t := range ts[1:] {
		if t.ID != base.ID {
			return nil, fmt.Errorf("harness: seed runs produced different tables (%s vs %s)", base.ID, t.ID)
		}
		if len(t.Columns) != len(base.Columns) {
			return nil, fmt.Errorf("harness: %s: column count differs across seeds (%d vs %d)", base.ID, len(t.Columns), len(base.Columns))
		}
		if len(t.Rows) != len(base.Rows) {
			return nil, fmt.Errorf("harness: %s: row count differs across seeds (%d vs %d): the varied dimension must be fixed across seeds", base.ID, len(t.Rows), len(base.Rows))
		}
	}
	out := &Table{
		ID:      base.ID,
		Title:   base.Title,
		Columns: append([]string(nil), base.Columns...),
		EnvCols: append([]string(nil), base.EnvCols...),
	}
	out.Rows = make([][]string, len(base.Rows))
	out.Variance = make([][]*stats.Agg, len(base.Rows))
	for r := range base.Rows {
		ncols := len(base.Rows[r])
		out.Rows[r] = make([]string, ncols)
		out.Variance[r] = make([]*stats.Agg, ncols)
		for c := 0; c < ncols; c++ {
			cells := make([]string, len(ts))
			vals := make([]float64, len(ts))
			numeric := true
			for i, t := range ts {
				if r >= len(t.Rows) || c >= len(t.Rows[r]) {
					return nil, fmt.Errorf("harness: %s: ragged rows across seeds at (%d,%d)", base.ID, r, c)
				}
				cells[i] = t.Rows[r][c]
				v, err := strconv.ParseFloat(cells[i], 64)
				if err != nil {
					numeric = false
				}
				vals[i] = v
			}
			if numeric {
				agg := stats.Aggregate(vals)
				out.Variance[r][c] = &agg
				out.Rows[r][c] = formatLike(cells[0], agg.Mean)
			} else if allEqual(cells) {
				out.Rows[r][c] = cells[0]
			} else {
				out.Rows[r][c] = strings.Join(dedupe(cells), "|")
			}
		}
	}
	// Union of notes across seeds, first-appearance order: fit notes from
	// the first run come through, and a conservation violation from any
	// seed survives the merge.
	seen := make(map[string]bool)
	for _, t := range ts {
		for _, n := range t.Notes {
			if !seen[n] {
				seen[n] = true
				out.Notes = append(out.Notes, n)
			}
		}
	}
	return out, nil
}

// formatLike renders v in the style of sample: integer cells stay integral
// when the mean is integral, everything else uses the table's standard two
// decimals.
func formatLike(sample string, v float64) string {
	if !strings.ContainsAny(sample, ".eE") && v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

func allEqual(xs []string) bool {
	for _, x := range xs[1:] {
		if x != xs[0] {
			return false
		}
	}
	return true
}

func dedupe(xs []string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
