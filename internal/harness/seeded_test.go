package harness

import (
	"fmt"
	"path/filepath"
	"testing"
)

func TestSeeds(t *testing.T) {
	got := Seeds(5)
	want := []int64{42, 123, 456, 1000, 1001}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds(5) = %v, want %v", got, want)
		}
	}
	if one := Seeds(0); len(one) != 1 || one[0] != 42 {
		t.Errorf("Seeds(0) = %v, want [42]", one)
	}
}

// fakeExp builds a deterministic per-seed table: one numeric column whose
// value depends on the seed, one constant numeric column, one string
// column, and a per-seed note.
func fakeExp(seed int64) (*Table, error) {
	t := &Table{
		ID:      "TX",
		Title:   "fake",
		Columns: []string{"p", "metric", "flat", "label"},
		EnvCols: []string{"metric"},
		Notes:   []string{"shared note", fmt.Sprintf("seed-specific %d", seed)},
	}
	t.AddRow(4, float64(seed), 7.5, "ok")
	return t, nil
}

func TestRunSeededMergesVariance(t *testing.T) {
	merged, err := RunSeeded([]int64{10, 20, 30}, map[string]any{"exp": "fake"}, fakeExp)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Rows) != 1 || len(merged.Variance) != 1 {
		t.Fatalf("rows/variance = %d/%d, want 1/1", len(merged.Rows), len(merged.Variance))
	}
	row, v := merged.Rows[0], merged.Variance[0]
	if row[0] != "4" {
		t.Errorf("integer cell mean = %q, want 4", row[0])
	}
	if row[1] != "20.00" {
		t.Errorf("metric mean cell = %q, want 20.00", row[1])
	}
	if v[1] == nil || v[1].Mean != 20 || v[1].Min != 10 || v[1].Max != 30 || v[1].N != 3 {
		t.Errorf("metric agg = %+v", v[1])
	}
	if v[1].Stddev == 0 || v[1].CV == 0 {
		t.Errorf("metric agg should record spread, got %+v", v[1])
	}
	if v[2] == nil || v[2].Stddev != 0 || v[2].Mean != 7.5 {
		t.Errorf("flat agg = %+v", v[2])
	}
	if row[3] != "ok" || v[3] != nil {
		t.Errorf("string cell = %q (agg %v), want ok/nil", row[3], v[3])
	}
	if len(merged.EnvCols) != 1 || merged.EnvCols[0] != "metric" {
		t.Errorf("EnvCols = %v", merged.EnvCols)
	}
	// Notes: union across seeds, shared note once.
	wantNotes := map[string]bool{
		"shared note": true, "seed-specific 10": true,
		"seed-specific 20": true, "seed-specific 30": true,
	}
	if len(merged.Notes) != len(wantNotes) {
		t.Errorf("notes = %v", merged.Notes)
	}
	m := merged.Manifest
	if m == nil {
		t.Fatal("merged table has no manifest")
	}
	if len(m.Seeds) != 3 || m.Seeds[0] != 10 {
		t.Errorf("manifest seeds = %v", m.Seeds)
	}
	if m.GoVersion == "" || m.NumCPU < 1 || m.GOMAXPROCS < 1 || m.Commit == "" {
		t.Errorf("manifest env incomplete: %+v", m)
	}
	if m.Params["exp"] != "fake" {
		t.Errorf("manifest params = %v", m.Params)
	}
}

func TestRunSeededShapeMismatch(t *testing.T) {
	calls := 0
	_, err := RunSeeded([]int64{1, 2}, nil, func(seed int64) (*Table, error) {
		calls++
		tbl := &Table{ID: "TY", Columns: []string{"a"}}
		for i := 0; i < calls; i++ {
			tbl.AddRow(i)
		}
		return tbl, nil
	})
	if err == nil {
		t.Fatal("row-count mismatch across seeds must fail the merge")
	}
}

func TestSeededTableJSONRoundTrip(t *testing.T) {
	merged, err := RunSeeded([]int64{10, 20, 30}, map[string]any{"exp": "fake"}, fakeExp)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := WriteTableJSON(dir, merged)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_TX.json" {
		t.Errorf("path = %s", path)
	}
	back, err := ReadTableJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "TX" || back.Manifest == nil || back.Variance == nil {
		t.Fatalf("round trip lost blocks: %+v", back)
	}
	if back.Variance[0][1].Mean != 20 {
		t.Errorf("variance mean = %v, want 20", back.Variance[0][1].Mean)
	}
	if got := back.Manifest.Seeds; len(got) != 3 || got[2] != 30 {
		t.Errorf("manifest seeds = %v", got)
	}
	if len(back.EnvCols) != 1 || back.EnvCols[0] != "metric" {
		t.Errorf("env columns = %v", back.EnvCols)
	}
}

func TestReadTableJSONLegacy(t *testing.T) {
	// Pre-variance files (no variance/manifest) must still load.
	dir := t.TempDir()
	legacy := &Table{ID: "TL", Title: "legacy", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	path, err := WriteTableJSON(dir, legacy)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadTableJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Variance != nil || back.Manifest != nil {
		t.Errorf("legacy table grew blocks: %+v", back)
	}
}

func TestCheckPreconditionsReportsStrings(t *testing.T) {
	// Environment-dependent, so only sanity-check the shape: no empty
	// violation strings, and the race flag matches the build.
	for _, v := range CheckPreconditions() {
		if v == "" {
			t.Error("empty precondition violation")
		}
	}
	m := NewManifest([]int64{1}, nil)
	if m.Race != RaceEnabled {
		t.Errorf("manifest race = %v, build race = %v", m.Race, RaceEnabled)
	}
}
