package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// MultiTenantConfig shapes the T13 multi-tenant isolation experiment.
type MultiTenantConfig struct {
	// Target address of a running queue service. Empty means: start an
	// in-process server (Shards/Backend/MaxQueues below) on a loopback
	// ephemeral port for the duration of the experiment.
	Addr      string
	Shards    int
	Backend   shard.Backend
	MaxQueues int

	// Load is the per-row run shape. Load.Rate is the AGGREGATE offered
	// enqueue rate across all tenants of a row (default 8000 ops/s); each
	// of a row's N tenants is offered Rate/N, so rows are comparable at
	// equal total load. Load.Queue is ignored — tenants get generated
	// names.
	Load server.LoadConfig

	// QueuePrefix namespaces the generated queue names (default "t13") so
	// repeated sweeps against a long-lived server do not collide.
	QueuePrefix string
}

// ExpMultiTenant (T13): per-queue throughput isolation and fairness as
// the tenant count grows. For each tenant count N, N independent
// open-loop runs execute concurrently against one server, each targeting
// its own named queue at 1/N of the aggregate offered rate. Per queue,
// the run verifies exact conservation (every acknowledged value dequeued
// exactly once, from that queue only — a value crossing queues would
// surface as Foreign in one run and Lost in another). The row reports the
// slowest and fastest tenant's achieved rate, their ratio (fairness), and
// the worst end-to-end p99. With ideal isolation, min/s stays near
// (aggregate achieved at N=1)/N: naming queues multiplies tenants without
// starving any of them, because each named queue is its own fabric and
// sessions lease handles per (connection, queue).
func ExpMultiTenant(tenants []int, cfg MultiTenantConfig) (*Table, error) {
	t, _, err := ExpMultiTenantResults(tenants, cfg)
	return t, err
}

// ExpMultiTenantResults is ExpMultiTenant, additionally returning each
// row's per-tenant load results so callers (cmd/qload) can act on raw
// counts — e.g. exit nonzero when any tenant's conservation failed.
func ExpMultiTenantResults(tenants []int, cfg MultiTenantConfig) (*Table, [][]*server.LoadResult, error) {
	if len(tenants) == 0 {
		return nil, nil, fmt.Errorf("harness: no tenant counts")
	}
	maxTenants, sumTenants := 0, 0
	for _, n := range tenants {
		if n < 1 {
			return nil, nil, fmt.Errorf("harness: tenant count %d must be positive", n)
		}
		if n > maxTenants {
			maxTenants = n
		}
		sumTenants += n
	}
	if cfg.Load.Rate <= 0 {
		cfg.Load.Rate = 8000
	}
	if cfg.Load.Duration <= 0 {
		cfg.Load.Duration = time.Second
	}
	if cfg.QueuePrefix == "" {
		cfg.QueuePrefix = "t13"
	}
	addr := cfg.Addr
	if addr == "" {
		if cfg.Shards <= 0 {
			cfg.Shards = 4
		}
		if cfg.Backend == "" {
			cfg.Backend = shard.BackendCore
		}
		// Rows get distinct queue names and the idle timeout far exceeds a
		// run, so queues accumulate across the sweep: the cap must cover
		// the sum of all rows' tenants, not just the widest row.
		if cfg.MaxQueues < sumTenants {
			cfg.MaxQueues = sumTenants + 8
		}
		// Every connection leases a default-queue handle at accept, and the
		// widest row opens (producers + consumers) connections per tenant —
		// size the registry for that, or the sweep refuses its own sessions.
		prod, cons := cfg.Load.Producers, cfg.Load.Consumers
		if prod <= 0 {
			prod = 2
		}
		if cons <= 0 {
			cons = 2
		}
		handles := max(maxTenants*(prod+cons)+8, 16)
		q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend),
			shard.WithMaxHandles(handles))
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.Serve("127.0.0.1:0", q, server.WithMaxQueues(cfg.MaxQueues))
		if err != nil {
			return nil, nil, err
		}
		defer srv.Close()
		addr = srv.Addr().String()
	}

	t := &Table{
		ID: "T13",
		Title: fmt.Sprintf("Multi-tenant isolation: per-queue throughput vs tenant count (aggregate %d ops/s, %s)",
			cfg.Load.Rate, cfg.Load.Duration),
		Columns: []string{"tenants", "rate/q", "agg achieved/s", "min q/s", "max q/s",
			"fair", "e2e p99 ms", "busy", "lost", "dup"},
		Notes: []string{
			"each tenant is one named queue (its own sharded fabric) driven by an independent open-loop run at rate/q = aggregate/N.",
			"fair = slowest tenant's achieved rate / fastest tenant's (1.00 = perfectly even).",
			"e2e p99 = the worst tenant's p99 (scheduled enqueue to consumer dequeue, coordinated-omission free).",
			"per-queue conservation requires lost = dup = 0 at every tenant count.",
		},
	}
	var baseline float64 // aggregate achieved at the smallest tenant count
	all := make([][]*server.LoadResult, 0, len(tenants))
	for _, n := range tenants {
		results := make([]*server.LoadResult, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			load := cfg.Load
			load.Rate = max(cfg.Load.Rate/n, 1)
			load.Queue = fmt.Sprintf("%s-n%d-q%d", cfg.QueuePrefix, n, i)
			wg.Add(1)
			go func(i int, load server.LoadConfig) {
				defer wg.Done()
				results[i], errs[i] = server.RunLoad(addr, load)
			}(i, load)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return nil, nil, fmt.Errorf("tenants=%d queue %d: %w", n, i, err)
			}
		}
		all = append(all, results)

		var agg, minQ, maxQ, worstP99 float64
		var busy, lost, dup, foreign int64
		for i, res := range results {
			r := res.AchievedRate()
			agg += r
			if i == 0 || r < minQ {
				minQ = r
			}
			if r > maxQ {
				maxQ = r
			}
			if p := stats.Percentile(res.E2ELatMs, 99); p > worstP99 {
				worstP99 = p
			}
			busy += res.Busy
			lost += res.Lost
			dup += res.Dup
			foreign += res.Foreign
		}
		fair := 0.0
		if maxQ > 0 {
			fair = minQ / maxQ
		}
		t.AddRow(n, cfg.Load.Rate/n, agg, minQ, maxQ, fair, worstP99, busy, lost, dup)
		if baseline == 0 {
			baseline = agg
		} else if baseline > 0 && n > 0 {
			share := baseline / float64(n)
			if share > 0 {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"N=%d: slowest tenant achieved %.2fx of its fair share of the N=%d aggregate (%.0f/s of %.0f/s).",
					n, minQ/share, tenants[0], minQ, share))
			}
		}
		if lost != 0 || dup != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"CONSERVATION VIOLATION at tenants=%d: lost=%d dup=%d", n, lost, dup))
		}
		if foreign != 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"tenants=%d: %d foreign values observed (cross-queue leakage or leftover backlog)", n, foreign))
		}
	}
	return t, all, nil
}
