//go:build !race

package harness

// RaceEnabled reports whether the binary was built with the race detector.
const RaceEnabled = false
