package harness

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

// cmpBaseline builds a committed-baseline TableJSON with one row:
// columns p (exact int), metric (mean 100, cv 5%), zero (exactly 0),
// tput (env-dependent, mean 50).
func cmpBaseline() *TableJSON {
	agg := func(mean, sd float64) *stats.Agg {
		cv := 0.0
		if mean != 0 {
			cv = sd / mean
		}
		return &stats.Agg{Mean: mean, Stddev: sd, Min: mean - sd, Max: mean + sd, CV: cv, N: 3}
	}
	return &TableJSON{
		ID:      "TZ",
		Columns: []string{"p", "metric", "zero", "tput"},
		Rows:    [][]string{{"8", "100.00", "0", "50.00"}},
		EnvCols: []string{"tput"},
		Variance: [][]*stats.Agg{{
			agg(8, 0), agg(100, 5), agg(0, 0), agg(50, 1),
		}},
		Manifest: &Manifest{Seeds: []int64{42, 123, 456}},
	}
}

// cmpCurrent builds a fresh-run table with the given cell values.
func cmpCurrent(metric, zero, tput float64) *Table {
	t := &Table{ID: "TZ", Columns: []string{"p", "metric", "zero", "tput"}}
	t.AddRow(8, metric, zero, tput)
	return t
}

func TestCompareWithinBand(t *testing.T) {
	// metric band = 0.15 + 2*0.05 = 25%; 120 is inside.
	rep, err := Compare(cmpBaseline(), cmpCurrent(120, 0, 52), 0.15, false)
	if err != nil {
		t.Fatalf("Compare: %v\n%s", err, rep.String())
	}
	if rep.Regressions != 0 || rep.Checked != 4 {
		t.Errorf("report = %+v", rep)
	}
}

func TestCompareRegressionExceedsBand(t *testing.T) {
	// 130 is a 30% drift, outside the 25% band.
	rep, err := Compare(cmpBaseline(), cmpCurrent(130, 0, 50), 0.15, false)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression", err)
	}
	if rep.Regressions != 1 {
		t.Errorf("regressions = %d, want 1", rep.Regressions)
	}
	var found bool
	for _, e := range rep.Entries {
		if e.Column == "metric" && e.Status == "regression" {
			found = true
		}
	}
	if !found {
		t.Errorf("metric not flagged: %+v", rep.Entries)
	}
}

func TestCompareTwoSided(t *testing.T) {
	// Improvements beyond the band also fail: a 2x "speedup" on a
	// structural metric usually means the experiment changed, not the code
	// got better, and the baseline must be re-emitted consciously.
	if _, err := Compare(cmpBaseline(), cmpCurrent(60, 0, 50), 0.15, false); !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression for -40%% drift", err)
	}
}

func TestCompareZeroMeanExact(t *testing.T) {
	// The zero column was exactly 0 across seeds (stddev 0): any nonzero
	// current value — one lost element — must fail regardless of tolerance.
	if _, err := Compare(cmpBaseline(), cmpCurrent(100, 1, 50), 10.0, false); !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression for nonzero lost count", err)
	}
}

func TestComparePortableSkipsEnvColumns(t *testing.T) {
	// tput drifted 4x, but it is declared env-dependent: portable mode
	// skips it, non-portable flags it.
	rep, err := Compare(cmpBaseline(), cmpCurrent(100, 0, 200), 0.15, true)
	if err != nil {
		t.Fatalf("portable Compare: %v\n%s", err, rep.String())
	}
	if rep.SkippedEnv != 1 {
		t.Errorf("skipped = %d, want 1", rep.SkippedEnv)
	}
	if _, err := Compare(cmpBaseline(), cmpCurrent(100, 0, 200), 0.15, false); !errors.Is(err, ErrRegression) {
		t.Fatalf("non-portable err = %v, want ErrRegression", err)
	}
}

func TestCompareRejectsShapeDrift(t *testing.T) {
	b := cmpBaseline()
	cur := &Table{ID: "TZ", Columns: []string{"p", "metric", "zero", "tput"}}
	cur.AddRow(8, 100.0, 0, 50.0)
	cur.AddRow(16, 100.0, 0, 50.0)
	if _, err := Compare(b, cur, 0.15, false); err == nil {
		t.Error("row-count drift must error, not silently compare a prefix")
	}
	wrongID := cmpCurrent(100, 0, 50)
	wrongID.ID = "TQ"
	if _, err := Compare(b, wrongID, 0.15, false); err == nil {
		t.Error("table id mismatch must error")
	}
	noVar := cmpBaseline()
	noVar.Variance = nil
	if _, err := Compare(noVar, cmpCurrent(100, 0, 50), 0.15, false); err == nil {
		t.Error("single-run baseline without variance must be rejected")
	}
}

func TestCompareReportArtifact(t *testing.T) {
	rep, err := Compare(cmpBaseline(), cmpCurrent(110, 0, 51), 0.15, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := WriteCompareJSON(dir, rep)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "COMPARE_TZ.json" {
		t.Errorf("path = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"status": "ok"`, `"tolerance": 0.15`, `"column": "metric"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("artifact missing %s:\n%s", want, data)
		}
	}
	if s := rep.String(); !strings.Contains(s, "checked 4 metrics") {
		t.Errorf("report rendering:\n%s", s)
	}
}
