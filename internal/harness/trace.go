package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// TraceConfig shapes the T16 stage-decomposition experiment.
type TraceConfig struct {
	Shards  int // fabric shard count (default 4)
	Backend shard.Backend

	// TraceEvery samples every Nth enqueue frame per producer (default 16
	// — dense enough for stable per-stage percentiles, sparse enough that
	// the tracing itself does not distort the load under measurement).
	TraceEvery int

	// OverheadRepeats is how many interleaved (tracing idle, obs off)
	// pairs re-measure the tracing-disabled CPU cost per op, T15-style
	// (default 5).
	OverheadRepeats int

	// Load is the per-run shape; Rate is overridden per load point.
	Load server.LoadConfig
}

// ExpTraceDecomposition (T16): where does p99 live? Each load point
// drives the standard open-loop load with every TraceEvery-th enqueue
// frame traced end to end: the client stamps its send time into the
// frame, the server returns per-stage timestamps (socket read, batcher
// admit, fabric call start/end, reply write), and the client closes the
// span at receive. The table decomposes the same scheduled-send-to-ack
// latency the T11/T15 client percentiles report into sched (client
// pacing + window wait), wait (server read to batcher admit), fabric
// (the queue operation), reply (fabric end to reply write), and net
// (everything outside the server's read-to-reply window: network both
// ways, the server's socket flush, the client's read path) — per-stage
// p50/p99 at low, mid, and saturation load.
//
// Two validations ride along: recon % compares the traced samples' mean
// end-to-end latency against the whole population's (the traced subset
// must be representative — within 10% — for the decomposition to explain
// the aggregate percentiles), and a T15-style interleaved CPU
// re-measurement checks that with tracing idle (no traced frames) the
// tracing code paths cost nothing measurable against an
// observability-off server — the same < 3% budget T15 set.
func ExpTraceDecomposition(rates []int, cfg TraceConfig) (*Table, error) {
	t, _, err := ExpTraceDecompositionResults(rates, cfg)
	return t, err
}

// ExpTraceDecompositionResults is ExpTraceDecomposition, additionally
// returning the per-load-point load results so callers can check
// conservation and inspect raw samples.
func ExpTraceDecompositionResults(rates []int, cfg TraceConfig) (*Table, []*server.LoadResult, error) {
	if len(rates) == 0 {
		return nil, nil, fmt.Errorf("harness: no rates")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Backend == "" {
		cfg.Backend = shard.BackendCore
	}
	if cfg.TraceEvery <= 0 {
		cfg.TraceEvery = 16
	}
	if cfg.OverheadRepeats <= 0 {
		cfg.OverheadRepeats = 5
	}
	if cfg.Load.Duration <= 0 {
		cfg.Load.Duration = 2 * time.Second
	}

	t := &Table{
		ID: "T16",
		Title: fmt.Sprintf("Request-trace stage decomposition: where does p99 live? (%d shards, %s, %s per point, every %dth enqueue frame traced)",
			cfg.Shards, cfg.Backend, cfg.Load.Duration, cfg.TraceEvery),
		Columns: []string{"rate/s", "achieved/s", "traced",
			"enq p50 ms", "enq p99 ms",
			"sched p50", "sched p99", "wait p50", "wait p99",
			"fabric p50", "fabric p99", "reply p50", "reply p99",
			"net p50", "net p99", "recon %", "lost", "dup"},
		Notes: []string{
			"each traced enqueue frame decomposes the same scheduled-send-to-ack metric the enq percentiles report: total = sched (client pacing + in-flight window wait) + rtt, and rtt = wait (server socket read to batcher admit) + fabric (queue op) + reply (fabric end to reply write) + net (network both ways + server socket flush + client read path).",
			"stage durations are clock-skew-free: client columns subtract client-clock stamps, server columns subtract server-clock stamps shipped back in the traced reply, and net is the difference of the two intervals.",
			"recon % = traced samples' mean end-to-end latency / all enqueues' mean end-to-end latency x 100; 100% means the traced cross-section is representative, so the stage sums explain the aggregate latency (acceptance band 90..110%).",
			"stage sums are exact by construction per sample (total = sched + wait + fabric + reply + net, modulo sub-0.01ms stamp truncation); recon % is the non-trivial check that the sampled decomposition carries over to the population.",
			"conservation (lost = dup = 0) is checked at every load point.",
		},
	}

	var results []*server.LoadResult
	for _, rate := range rates {
		res, snap, err := runTracePoint(rate, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("rate %d: %w", rate, err)
		}
		results = append(results, res)
		if !res.Conserved() {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"CONSERVATION VIOLATION at rate %d: lost=%d dup=%d", rate, res.Lost, res.Dup))
		}
		if snap.Obs == nil || snap.Obs.Spans == 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"NO SERVER SPANS at rate %d: the reservoir captured nothing", rate))
		}
		sched, wait, fabric, reply, net, total := traceColumns(res.Traces)
		recon := 0.0
		if m := stats.Mean(res.EnqLatMs); m > 0 {
			recon = stats.Mean(total) / m * 100
		}
		t.AddRow(rate, res.AchievedRate(), len(res.Traces),
			stats.Percentile(res.EnqLatMs, 50), stats.Percentile(res.EnqLatMs, 99),
			stats.Percentile(sched, 50), stats.Percentile(sched, 99),
			stats.Percentile(wait, 50), stats.Percentile(wait, 99),
			stats.Percentile(fabric, 50), stats.Percentile(fabric, 99),
			stats.Percentile(reply, 50), stats.Percentile(reply, 99),
			stats.Percentile(net, 50), stats.Percentile(net, 99),
			recon, res.Lost, res.Dup)
	}

	// Tracing-disabled overhead: with no traced frames in flight the only
	// new hot-path work is one branch per decoded frame, so an obs-on
	// server with tracing idle must still clear T15's < 3% CPU budget
	// against an obs-off server. Same instrument as T15: CPU per request
	// frame at a fixed achievable rate, interleaved pairs, median delta.
	midRate := rates[len(rates)/2]
	overhead, err := traceIdleOverhead(midRate, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("overhead re-measurement: %w", err)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"tracing-disabled overhead re-measured at rate %d: %+.2f%% CPU per request frame (obs on + tracing idle vs obs off, median of %d interleaved pairs, GC paused; T15 budget < 3%%).",
		midRate, overhead, cfg.OverheadRepeats))
	return t, results, nil
}

// runTracePoint measures one load point: an in-process obs-on server
// under the traced open-loop load.
func runTracePoint(rate int, cfg TraceConfig) (*server.LoadResult, server.Snapshot, error) {
	q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend))
	if err != nil {
		return nil, server.Snapshot{}, err
	}
	srv, err := server.Serve("127.0.0.1:0", q, server.WithObservability(true))
	if err != nil {
		return nil, server.Snapshot{}, err
	}
	defer srv.Close()
	load := cfg.Load
	load.Rate = rate
	load.TraceEvery = cfg.TraceEvery
	res, err := server.RunLoad(srv.Addr().String(), load)
	if err != nil {
		return nil, server.Snapshot{}, err
	}
	return res, srv.Snapshot(), nil
}

// traceColumns splits the samples into per-stage series (ms).
func traceColumns(samples []server.TraceSample) (sched, wait, fabric, reply, net, total []float64) {
	for _, s := range samples {
		sched = append(sched, s.SchedMs)
		wait = append(wait, s.WaitMs)
		fabric = append(fabric, s.FabricMs)
		reply = append(reply, s.ReplyMs)
		net = append(net, s.NetMs)
		total = append(total, s.TotalMs)
	}
	return
}

// traceIdleOverhead re-runs the T15 pairwise CPU comparison with the
// tracing code paths compiled in but idle (TraceEvery = 0): obs on vs obs
// off, interleaved with alternating order, median of per-pair deltas.
func traceIdleOverhead(rate int, cfg TraceConfig) (float64, error) {
	run := func(obsOn bool) (float64, error) {
		q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend))
		if err != nil {
			return 0, err
		}
		srv, err := server.Serve("127.0.0.1:0", q, server.WithObservability(obsOn))
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		load := cfg.Load
		load.Rate = rate
		load.TraceEvery = 0
		runtime.GC()
		gcPct := debug.SetGCPercent(-1)
		cpu0 := cpuSeconds()
		_, err = server.RunLoad(srv.Addr().String(), load)
		cpu := cpuSeconds() - cpu0
		debug.SetGCPercent(gcPct)
		if err != nil {
			return 0, err
		}
		snap := srv.Snapshot()
		if snap.Server.Requests == 0 {
			return 0, fmt.Errorf("no requests served")
		}
		return cpu / float64(snap.Server.Requests) * 1e6, nil
	}
	var overheads []float64
	for r := 0; r < cfg.OverheadRepeats; r++ {
		var offCPU, onCPU float64
		var err error
		if r%2 == 0 {
			offCPU, err = run(false)
			if err == nil {
				onCPU, err = run(true)
			}
		} else {
			onCPU, err = run(true)
			if err == nil {
				offCPU, err = run(false)
			}
		}
		if err != nil {
			return 0, err
		}
		if offCPU > 0 {
			overheads = append(overheads, (onCPU-offCPU)/offCPU*100)
		}
	}
	return median(overheads), nil
}
