package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ObsConfig shapes the T15 observability-overhead experiment.
type ObsConfig struct {
	Shards  int // fabric shard count (default 4)
	Backend shard.Backend

	// Repeats is how many times each (rate, obs on/off) cell is measured.
	// The two arms are interleaved with alternating order and the reported
	// overhead is the median of per-repeat pairwise deltas, so machine
	// drift between repeats cancels instead of landing in the comparison.
	// Default 7.
	Repeats int

	// Load is the per-run shape; Rate is overridden per phase.
	Load server.LoadConfig
}

// ExpObsOverhead (T15): the cost of the observability layer. Each phase
// drives the same open-loop load against a server with observability off
// and against an identical server with it on (per-op latency histograms
// recorded on every frame, the control-plane trace ring armed), repeated
// and interleaved.
//
// The primary overhead instrument is CPU time per operation, not
// saturated throughput: on shared hardware the saturated capacity of the
// service swings far more between runs (A/A pairs differ by ±7% and
// worse) than the effect being measured, while CPU-per-op at a fixed
// achievable rate compares identical work and is stable to ~1%. Both
// arms serve the same offered rate; the histograms' atomic bucket
// updates, the frame timestamps, and the trace ring show up as extra CPU
// per op. The design budget is under 3%. The throughput columns document
// that the paced rates were actually served by both arms; the server-side
// percentile columns show the payoff — the latency view only the obs-on
// server can report.
func ExpObsOverhead(rates []int, cfg ObsConfig) (*Table, error) {
	t, _, err := ExpObsOverheadResults(rates, cfg)
	return t, err
}

// ExpObsOverheadResults is ExpObsOverhead, additionally returning the
// obs-on runs' load results so callers can check conservation.
func ExpObsOverheadResults(rates []int, cfg ObsConfig) (*Table, []*server.LoadResult, error) {
	if len(rates) == 0 {
		return nil, nil, fmt.Errorf("harness: no rates")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Backend == "" {
		cfg.Backend = shard.BackendCore
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 7
	}
	if cfg.Load.Duration <= 0 {
		cfg.Load.Duration = 2 * time.Second
	}

	t := &Table{
		ID: "T15",
		Title: fmt.Sprintf("Observability overhead: obs-on vs obs-off servers (%d shards, %s, %s per run, median of %d)",
			cfg.Shards, cfg.Backend, cfg.Load.Duration, cfg.Repeats),
		Columns: []string{"rate/s", "off achieved/s", "on achieved/s",
			"off cpu us/op", "on cpu us/op", "cpu overhead %",
			"client p50 ms", "client p99 ms", "server p50 ms", "server p99 ms", "lost", "dup"},
		Notes: []string{
			"cpu us/op is process CPU time (user+sys) over the run divided by request frames served (enqueues, dequeues including empty polls, batches); server and load generator share the process in both arms, so the pairwise delta isolates the observability layer.",
			"cpu overhead % is the median of per-repeat pairwise deltas (on - off) / off; the design budget is < 3%.",
			"the overhead instrument is CPU per op at a fixed achievable rate, not saturated throughput: saturated capacity on shared hardware drifts more between runs (A/A pairs differ by ±7% and worse) than the effect under measurement.",
			"achieved columns are medians of repeated runs, off/on interleaved with alternating order; both arms must serve the offered rate for the CPU comparison to be like for like.",
			"client percentiles are the obs-on runs' enqueue ack latency measured by the open-loop generator (scheduled send to ack).",
			"server percentiles are the same runs' enqueue latency measured by the server itself (frame read to reply), from the histograms the overhead pays for; the gap between the two views is client-side scheduling plus network round trip.",
			"GC is paused during each measured run (collection cycles landing inside one 2s window and not another would be noise; recording is allocation-free so GC load is identical in both arms).",
			"conservation (lost = dup = 0) is checked on the obs-on arm.",
		},
	}

	// run measures one (rate, obs) cell once: the load result, the CPU
	// microseconds the process spent per request frame served, and — for
	// the obs-on arm — the server's own view of its latency. The
	// denominator is the server's request counter, not acked ops: the
	// consumers poll, so empty dequeues are real served frames that pay
	// the per-frame observability cost and must be priced in.
	run := func(rate int, obsOn bool) (*server.LoadResult, float64, *server.ObsStats, error) {
		q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend))
		if err != nil {
			return nil, 0, nil, err
		}
		srv, err := server.Serve("127.0.0.1:0", q, server.WithObservability(obsOn))
		if err != nil {
			return nil, 0, nil, err
		}
		defer srv.Close()
		load := cfg.Load
		load.Rate = rate
		// Histogram recording and the trace ring are allocation-free, so
		// both arms generate identical GC load; whether a collection cycle
		// happens to land inside a 2s run is pure noise in the CPU
		// comparison. Collect beforehand and pause GC for the measured
		// interval (a run allocates tens of MB — safely resident).
		runtime.GC()
		gcPct := debug.SetGCPercent(-1)
		cpu0 := cpuSeconds()
		res, err := server.RunLoad(srv.Addr().String(), load)
		cpu := cpuSeconds() - cpu0
		debug.SetGCPercent(gcPct)
		if err != nil {
			return nil, 0, nil, err
		}
		snap := srv.Snapshot()
		cpuPerOpUs := 0.0
		if snap.Server.Requests > 0 {
			cpuPerOpUs = cpu / float64(snap.Server.Requests) * 1e6
		}
		return res, cpuPerOpUs, snap.Obs, nil
	}

	var onResults []*server.LoadResult
	for _, rate := range rates {
		var offRates, onRates, offCPUs, onCPUs, overheads []float64
		var best *server.LoadResult
		var bestObs *server.ObsStats
		for r := 0; r < cfg.Repeats; r++ {
			// Alternate which arm runs first so warmup and slow drift debit
			// both arms evenly across the repeats.
			var offRes, onRes *server.LoadResult
			var offCPU, onCPU float64
			var onObs *server.ObsStats
			var err error
			if r%2 == 0 {
				offRes, offCPU, _, err = run(rate, false)
				if err == nil {
					onRes, onCPU, onObs, err = run(rate, true)
				}
			} else {
				onRes, onCPU, onObs, err = run(rate, true)
				if err == nil {
					offRes, offCPU, _, err = run(rate, false)
				}
			}
			if err != nil {
				return nil, nil, fmt.Errorf("rate %d repeat %d: %w", rate, r, err)
			}
			offRates = append(offRates, offRes.AchievedRate())
			onRates = append(onRates, onRes.AchievedRate())
			offCPUs = append(offCPUs, offCPU)
			onCPUs = append(onCPUs, onCPU)
			if offCPU > 0 {
				overheads = append(overheads, (onCPU-offCPU)/offCPU*100)
			}
			// Keep the obs-on run nearest the arm's running median as the
			// cell's representative for latency and conservation columns.
			if best == nil || abs(onRes.AchievedRate()-median(onRates)) < abs(best.AchievedRate()-median(onRates)) {
				best, bestObs = onRes, onObs
			}
			if !onRes.Conserved() {
				t.Notes = append(t.Notes, fmt.Sprintf(
					"CONSERVATION VIOLATION at rate %d repeat %d: lost=%d dup=%d",
					rate, r, onRes.Lost, onRes.Dup))
			}
		}
		onResults = append(onResults, best)
		var srvP50, srvP99 float64
		if bestObs != nil {
			srvP50, srvP99 = bestObs.EnqueueLat.P50Ms, bestObs.EnqueueLat.P99Ms
		}
		t.AddRow(rate, median(offRates), median(onRates),
			median(offCPUs), median(onCPUs), median(overheads),
			stats.Percentile(best.EnqLatMs, 50), stats.Percentile(best.EnqLatMs, 99),
			srvP50, srvP99, best.Lost, best.Dup)
	}
	return t, onResults, nil
}

// cpuSeconds reads the process's cumulative CPU time (user + system).
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Nano()+ru.Stime.Nano()) / 1e9
}

// median returns the middle value of xs (mean of the middle two when even).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
