package harness

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/stats"
)

// ElasticConfig shapes the T14 elastic-scaling experiment.
type ElasticConfig struct {
	// Target address of a running queue service whose autoscaler is
	// enabled. Empty means: start an in-process server (fields below) on a
	// loopback ephemeral port for the duration of the experiment.
	Addr    string
	Shards  int // initial shard count (default 1, so the first phase must grow)
	Backend shard.Backend

	// Autoscaler envelope for the in-process server (ignored with Addr).
	MinShards, MaxShards        int           // default 1..8
	Interval                    time.Duration // autoscale tick (default 50ms)
	LowWatermark, HighWatermark float64       // served ops/s per shard (default 300 / 1500)

	// Load is the per-phase run shape; Rate is overridden per phase.
	Load server.LoadConfig
}

// ExpElasticScaling (T14): throughput and conservation across a load ramp
// that forces the per-queue autoscaler through grow -> shrink -> grow
// transitions. Each phase is one open-loop run at its offered rate against
// the server's default queue; between and during phases the autoscaler
// resizes the queue's fabric from its served rate, occupancy, and
// null-dequeue signals. Each row reports the phase's achieved rate, the
// shard count and topology epoch at phase end, the cumulative
// grow/shrink/migration counters, the end-to-end p99, and the phase's
// exact-conservation verdict — a migration that lost or duplicated an
// element would surface directly in the lost/dup columns.
func ExpElasticScaling(rates []int, cfg ElasticConfig) (*Table, error) {
	t, _, err := ExpElasticScalingResults(rates, cfg)
	return t, err
}

// ExpElasticScalingResults is ExpElasticScaling, additionally returning
// the per-phase load results so callers (cmd/qload) can act on raw counts
// — e.g. exit nonzero when any phase's conservation failed.
func ExpElasticScalingResults(rates []int, cfg ElasticConfig) (*Table, []*server.LoadResult, error) {
	if len(rates) == 0 {
		return nil, nil, fmt.Errorf("harness: no ramp rates")
	}
	addr := cfg.Addr
	if addr == "" {
		if cfg.Shards <= 0 {
			cfg.Shards = 1
		}
		if cfg.Backend == "" {
			cfg.Backend = shard.BackendCore
		}
		if cfg.MinShards <= 0 {
			cfg.MinShards = 1
		}
		if cfg.MaxShards <= 0 {
			cfg.MaxShards = 8
		}
		if cfg.Interval <= 0 {
			cfg.Interval = 50 * time.Millisecond
		}
		if cfg.HighWatermark <= 0 {
			cfg.HighWatermark = 1500
		}
		if cfg.LowWatermark <= 0 {
			cfg.LowWatermark = 300
		}
		q, err := shard.New[[]byte](cfg.Shards, shard.WithBackend(cfg.Backend))
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.Serve("127.0.0.1:0", q,
			server.WithAutoscale(cfg.Interval),
			server.WithShardBounds(cfg.MinShards, cfg.MaxShards),
			server.WithAutoscaleWatermarks(cfg.LowWatermark, cfg.HighWatermark))
		if err != nil {
			return nil, nil, err
		}
		defer srv.Close()
		addr = srv.Addr().String()
	}
	if cfg.Load.Duration <= 0 {
		cfg.Load.Duration = time.Second
	}

	// One long-lived client observes the autoscaler between phases.
	observer, err := server.Dial(addr)
	if err != nil {
		return nil, nil, err
	}
	defer observer.Close()
	observe := func() (server.Snapshot, error) {
		var snap server.Snapshot
		data, err := observer.Stats()
		if err != nil {
			return snap, err
		}
		return snap, json.Unmarshal(data, &snap)
	}
	start, err := observe()
	if err != nil {
		return nil, nil, err
	}

	t := &Table{
		ID: "T14",
		Title: fmt.Sprintf("Elastic scaling: autoscaler tracking a load ramp (%s per phase, default queue, start k=%d)",
			cfg.Load.Duration, start.Fabric.Shards),
		Columns: []string{"phase", "rate/s", "achieved/s", "shards", "epoch",
			"grows", "shrinks", "migrated", "e2e p99 ms", "busy", "lost", "dup"},
		Notes: []string{
			"each phase is one open-loop run; the autoscaler resizes the queue's fabric live from served ops/s, occupancy, and null-dequeue rate.",
			"shards/epoch are the fabric's state at phase end; grows/shrinks/migrated are cumulative across the ramp.",
			"migrated counts elements drained from retired shards into survivors by shrink migrations.",
			"conservation requires lost = dup = 0 in every phase — a migration dropping or duplicating an element would land here.",
		},
	}
	results := make([]*server.LoadResult, 0, len(rates))
	prevGrows, prevShrinks := start.Fabric.Resize.Grows, start.Fabric.Resize.Shrinks
	for i, rate := range rates {
		load := cfg.Load
		load.Rate = rate
		res, err := server.RunLoad(addr, load)
		if err != nil {
			return nil, nil, fmt.Errorf("phase %d (rate %d): %w", i, rate, err)
		}
		results = append(results, res)
		snap, err := observe()
		if err != nil {
			return nil, nil, fmt.Errorf("phase %d stats: %w", i, err)
		}
		rs := snap.Fabric.Resize
		t.AddRow(i, rate, res.AchievedRate(), snap.Fabric.Shards, rs.Epoch,
			rs.Grows, rs.Shrinks, rs.Migrated,
			stats.Percentile(res.E2ELatMs, 99), res.Busy, res.Lost, res.Dup)
		if !res.Conserved() {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"CONSERVATION VIOLATION in phase %d: lost=%d dup=%d", i, res.Lost, res.Dup))
		}
		if rs.Grows == prevGrows && rs.Shrinks == prevShrinks {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"phase %d: no resize transitions — widen the ramp or lower the watermarks if a transition was expected", i))
		}
		prevGrows, prevShrinks = rs.Grows, rs.Shrinks
	}
	return t, results, nil
}
