//go:build race

package harness

// RaceEnabled reports whether the binary was built with the race detector,
// one of the build-tag preconditions the multi-seed runner records: race
// timings are 5-20x off and must never be compared against non-race
// baselines.
const RaceEnabled = true
