package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilCounterIsSafe(t *testing.T) {
	var c *Counter
	c.Read(5)
	c.CAS(true)
	c.Write()
	c.BeginOp()
	c.EndOp(OpEnqueue)
	// No panic is the assertion.
}

func TestPerOpAccounting(t *testing.T) {
	c := &Counter{}
	c.BeginOp()
	c.Read(3)
	c.CAS(true)
	c.EndOp(OpEnqueue)

	c.BeginOp()
	c.Read(10)
	c.CAS(false)
	c.CAS(true)
	c.Write()
	c.EndOp(OpDequeue)

	if c.TotalOps() != 2 {
		t.Errorf("TotalOps = %d", c.TotalOps())
	}
	if c.TotalSteps() != 4+13 {
		t.Errorf("TotalSteps = %d, want 17", c.TotalSteps())
	}
	if c.MaxOpSteps != 13 {
		t.Errorf("MaxOpSteps = %d, want 13", c.MaxOpSteps)
	}
	if c.Enqueues != 1 || c.Dequeues != 1 || c.NullDeqs != 0 {
		t.Errorf("op mix = (%d, %d, %d)", c.Enqueues, c.Dequeues, c.NullDeqs)
	}
	if c.CASFailures != 1 || c.CASAttempts != 3 {
		t.Errorf("CAS = %d/%d", c.CASFailures, c.CASAttempts)
	}
}

func TestStepsOutsideOpsNotAttributed(t *testing.T) {
	c := &Counter{}
	c.Read(100) // outside any operation
	c.BeginOp()
	c.Read(1)
	c.EndOp(OpNullDequeue)
	if c.TotalSteps() != 1 {
		t.Errorf("TotalSteps = %d, want 1", c.TotalSteps())
	}
	if c.Reads != 101 {
		t.Errorf("Reads = %d, want 101", c.Reads)
	}
}

func TestMergeAndSummarize(t *testing.T) {
	a := &Counter{}
	a.BeginOp()
	a.Read(4)
	a.CAS(true)
	a.EndOp(OpEnqueue)

	b := &Counter{}
	b.BeginOp()
	b.Read(9)
	b.CAS(false)
	b.EndOp(OpDequeue)

	s := Summarize(a, b)
	if s.Ops != 2 {
		t.Errorf("Ops = %d", s.Ops)
	}
	if s.StepsPerOp != 7.5 {
		t.Errorf("StepsPerOp = %v, want 7.5", s.StepsPerOp)
	}
	if s.CASPerOp != 1 {
		t.Errorf("CASPerOp = %v", s.CASPerOp)
	}
	if s.CASFailRate != 0.5 {
		t.Errorf("CASFailRate = %v", s.CASFailRate)
	}
	if s.MaxOpSteps != 10 {
		t.Errorf("MaxOpSteps = %d", s.MaxOpSteps)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize()
	if s.Ops != 0 || s.StepsPerOp != 0 || s.CASFailRate != 0 {
		t.Errorf("zero summary = %+v", s)
	}
}

func TestMergeNil(t *testing.T) {
	c := &Counter{Reads: 5}
	c.Merge(nil)
	if c.Reads != 5 {
		t.Errorf("Merge(nil) changed counter: %+v", c)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := &Counter{}
	c.BeginOp()
	c.Read(12)
	c.CAS(true)
	c.CAS(false)
	c.Write()
	c.EndOp(OpEnqueue)
	c.BeginOp()
	c.Read(3)
	c.EndOp(OpNullDequeue)

	want := c.Snapshot()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// The encoding is a stable contract (served by /statsz): every field
	// must appear under its documented name.
	for _, key := range []string{"ops", "steps_per_op", "cas_per_op", "cas_fail_rate",
		"max_op_steps", "total_reads", "total_cas", "total_writes",
		"total_enqueues", "total_dequeues", "total_null_dequeues"} {
		if !strings.Contains(string(data), `"`+key+`"`) {
			t.Errorf("encoding missing key %q: %s", key, data)
		}
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got != want {
		t.Errorf("round trip changed summary:\n got %+v\nwant %+v", got, want)
	}
}
