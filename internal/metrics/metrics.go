// Package metrics implements the paper's cost model: step complexity measured
// in shared-memory operations (reads and CAS instructions), accounted per
// queue operation.
//
// Counters are plain (non-atomic) fields because each Counter belongs to a
// single handle — the paper's "process" — and is only ever updated by that
// handle's goroutine. Aggregation across handles happens after the workload's
// goroutines have been joined, so no synchronization is needed beyond the
// join itself.
package metrics

import "fmt"

// Counter accumulates shared-memory operation counts for one handle.
type Counter struct {
	// Reads counts loads of shared variables (block fields, head fields,
	// array slots, tree-node fields).
	Reads int64
	// CASAttempts counts every CAS instruction issued.
	CASAttempts int64
	// CASFailures counts CAS instructions that did not take effect.
	CASFailures int64
	// Writes counts plain shared-memory stores (e.g. a leaf append).
	Writes int64

	// Ops counts completed queue operations, split by kind, so callers can
	// compute per-operation costs.
	Enqueues     int64
	Dequeues     int64
	NullDeqs     int64
	MaxOpSteps   int64 // worst single-operation step count observed
	totalSteps   int64 // steps attributed to finished operations
	opStartSteps int64 // steps snapshot at the start of the current op

	// Pad to 128 bytes: harnesses allocate one Counter per goroutine in a
	// single slice, and without padding the per-op field bumps of adjacent
	// goroutines' counters false-share cache lines, perturbing the very
	// costs being measured. 10 int64 fields = 80 bytes.
	_ [128 - 80]byte
}

// Read records n shared reads.
func (c *Counter) Read(n int64) {
	if c == nil {
		return
	}
	c.Reads += n
}

// CAS records a CAS attempt and its outcome.
func (c *Counter) CAS(success bool) {
	if c == nil {
		return
	}
	c.CASAttempts++
	if !success {
		c.CASFailures++
	}
}

// Write records a plain shared store.
func (c *Counter) Write() {
	if c == nil {
		return
	}
	c.Writes++
}

// steps is the running total of shared-memory operations.
func (c *Counter) steps() int64 {
	return c.Reads + c.CASAttempts + c.Writes
}

// BeginOp marks the start of a queue operation for per-op accounting.
func (c *Counter) BeginOp() {
	if c == nil {
		return
	}
	c.opStartSteps = c.steps()
}

// OpKind identifies the operation being finished for per-op accounting.
type OpKind int

// Operation kinds. They start at 1 so the zero value is invalid.
const (
	OpEnqueue OpKind = iota + 1
	OpDequeue
	OpNullDequeue
)

// EndOp closes out the operation opened by the matching BeginOp.
func (c *Counter) EndOp(kind OpKind) {
	switch kind {
	case OpEnqueue:
		c.EndBatch(1, 0, 0)
	case OpDequeue:
		c.EndBatch(0, 1, 0)
	case OpNullDequeue:
		c.EndBatch(0, 0, 1)
	}
}

// EndBatch closes out a batch of operations opened by one BeginOp: enqs
// enqueues, deqs successful dequeues, nulls null dequeues. The batch's
// combined step count feeds MaxOpSteps as a single unit, because the batch
// really is one propagation pass — per-op averages (StepsPerOp, CASPerOp)
// then show the amortization directly.
func (c *Counter) EndBatch(enqs, deqs, nulls int64) {
	if c == nil {
		return
	}
	opSteps := c.steps() - c.opStartSteps
	c.totalSteps += opSteps
	if opSteps > c.MaxOpSteps {
		c.MaxOpSteps = opSteps
	}
	c.Enqueues += enqs
	c.Dequeues += deqs
	c.NullDeqs += nulls
}

// TotalOps returns the number of completed operations.
func (c *Counter) TotalOps() int64 {
	return c.Enqueues + c.Dequeues + c.NullDeqs
}

// TotalSteps returns steps attributed to completed operations.
func (c *Counter) TotalSteps() int64 { return c.totalSteps }

// Merge adds other's counts into c. Call only after the goroutine owning
// other has been joined.
func (c *Counter) Merge(other *Counter) {
	if other == nil {
		return
	}
	c.Reads += other.Reads
	c.CASAttempts += other.CASAttempts
	c.CASFailures += other.CASFailures
	c.Writes += other.Writes
	c.Enqueues += other.Enqueues
	c.Dequeues += other.Dequeues
	c.NullDeqs += other.NullDeqs
	c.totalSteps += other.totalSteps
	if other.MaxOpSteps > c.MaxOpSteps {
		c.MaxOpSteps = other.MaxOpSteps
	}
}

// Summary is an aggregate view over one or more counters. The JSON field
// names are a stable encoding consumed by the service layer's /statsz
// endpoint and the bench tooling; renaming them is a wire-format change.
type Summary struct {
	Ops          int64   `json:"ops"`
	StepsPerOp   float64 `json:"steps_per_op"`
	CASPerOp     float64 `json:"cas_per_op"`
	CASFailRate  float64 `json:"cas_fail_rate"`
	MaxOpSteps   int64   `json:"max_op_steps"`
	TotalReads   int64   `json:"total_reads"`
	TotalCAS     int64   `json:"total_cas"`
	TotalWrites  int64   `json:"total_writes"`
	TotalEnqs    int64   `json:"total_enqueues"`
	TotalDeqs    int64   `json:"total_dequeues"`
	TotalNullDeq int64   `json:"total_null_dequeues"`
}

// Summarize merges counters and derives per-operation averages.
func Summarize(counters ...*Counter) Summary {
	var m Counter
	for _, c := range counters {
		m.Merge(c)
	}
	s := Summary{
		Ops:          m.TotalOps(),
		MaxOpSteps:   m.MaxOpSteps,
		TotalReads:   m.Reads,
		TotalCAS:     m.CASAttempts,
		TotalWrites:  m.Writes,
		TotalEnqs:    m.Enqueues,
		TotalDeqs:    m.Dequeues,
		TotalNullDeq: m.NullDeqs,
	}
	if s.Ops > 0 {
		s.StepsPerOp = float64(m.totalSteps) / float64(s.Ops)
		s.CASPerOp = float64(m.CASAttempts) / float64(s.Ops)
	}
	if m.CASAttempts > 0 {
		s.CASFailRate = float64(m.CASFailures) / float64(m.CASAttempts)
	}
	return s
}

// Snapshot derives the counter's summary view, the stable JSON-encodable
// form served by the queue service's /statsz endpoint. Call it only from
// the goroutine owning the counter (or after that goroutine is joined).
func (c *Counter) Snapshot() Summary { return Summarize(c) }

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("ops=%d steps/op=%.1f cas/op=%.2f casFail=%.1f%% maxOpSteps=%d",
		s.Ops, s.StepsPerOp, s.CASPerOp, 100*s.CASFailRate, s.MaxOpSteps)
}
