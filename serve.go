package repro

import (
	"time"

	"repro/internal/server"
)

// QueueServer is a TCP queue service fronting a ShardedQueue[[]byte]: each
// accepted connection leases one fabric handle for its lifetime (returned
// when the connection closes or is idle-reaped), pipelined requests are
// coalesced into batched fabric passes, and overload is answered with
// explicit BUSY replies through a bounded in-flight window. See package
// internal/server for the wire protocol.
type QueueServer = server.Server

// QueueClient speaks the queue service's wire protocol over one TCP
// connection; it is safe for concurrent use, pipelining concurrent
// requests. One client holds one server-side handle lease, so a client's
// enqueues preserve FIFO order among themselves.
type QueueClient = server.Client

// ServeOption configures Serve.
type ServeOption = server.Option

// ServerSnapshot is the stable JSON document served by the /statsz
// handler and QueueClient.Stats.
type ServerSnapshot = server.Snapshot

// Client-visible service errors.
var (
	// ErrServerBusy reports an operation rejected by the server's bounded
	// in-flight window; drain pending replies and retry.
	ErrServerBusy = server.ErrBusy
	// ErrServerQueueClosed reports an enqueue against a closed fabric.
	ErrServerQueueClosed = server.ErrClosedQueue
)

// WithServeWindow sets the per-connection in-flight request window
// (default 64); requests beyond it get BUSY replies.
func WithServeWindow(w int) ServeOption { return server.WithWindow(w) }

// WithServeBatchMax caps the requests executed per batched fabric pass
// (default: the window size).
func WithServeBatchMax(n int) ServeOption { return server.WithBatchMax(n) }

// WithServeIdleTimeout sets how long an idle session keeps its handle
// lease before being reaped (default 2m; 0 disables reaping).
func WithServeIdleTimeout(d time.Duration) ServeOption { return server.WithIdleTimeout(d) }

// WithServeMaxFrame bounds a request frame's size, and so an enqueued
// value's size (default 1 MiB).
func WithServeMaxFrame(n int) ServeOption { return server.WithMaxFrame(n) }

// Serve listens on addr and serves q over the queue service's wire
// protocol until the returned server is Closed. Pass "127.0.0.1:0" to
// bind an ephemeral loopback port (resolved via QueueServer.Addr).
func Serve(addr string, q *ShardedQueue[[]byte], opts ...ServeOption) (*QueueServer, error) {
	return server.Serve(addr, q, opts...)
}

// Dial connects a QueueClient to a queue service at addr.
func Dial(addr string) (*QueueClient, error) {
	return server.Dial(addr)
}

// DialMaxFrame is Dial with an explicit frame-size cap; match it to a
// server configured with a non-default WithServeMaxFrame.
func DialMaxFrame(addr string, maxFrame int) (*QueueClient, error) {
	return server.DialMaxFrame(addr, maxFrame)
}
