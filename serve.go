package repro

import (
	"time"

	"repro/internal/server"
)

// QueueServer is a TCP queue service fronting a namespace of sharded
// fabrics: the default ShardedQueue[[]byte] it was started with (queue 0)
// plus any named queues clients open — each named queue its own fabric,
// created on first use and torn down when idle and empty. Each accepted
// connection leases fabric handles per (connection, queue) — the default
// queue's at accept, named queues' on first use, all returned when the
// connection closes or is idle-reaped — pipelined requests are coalesced
// into batched fabric passes per queue, and overload is answered with
// explicit BUSY replies through a bounded in-flight window. See package
// internal/server for the wire protocol.
type QueueServer = server.Server

// QueueClient speaks the queue service's wire protocol over one TCP
// connection; it is safe for concurrent use, pipelining concurrent
// requests. Unqualified operations target the server's default queue;
// Open binds named queues on the same connection. One client holds one
// server-side handle lease per queue it touches, so a client's enqueues
// into any one queue preserve FIFO order among themselves.
type QueueClient = server.Client

// NamedRemoteQueue is a client-side binding to one named queue on a
// QueueServer, obtained with QueueClient.Open; it shares the parent
// client's connection and pipelines with it.
type NamedRemoteQueue = server.NamedQueue

// ServerQueueStat is the per-queue entry of ServerSnapshot.Queues.
type ServerQueueStat = server.QueueStat

// ServeOption configures Serve.
type ServeOption = server.Option

// ServerSnapshot is the stable JSON document served by the /statsz
// handler and QueueClient.Stats.
type ServerSnapshot = server.Snapshot

// Client-visible service errors.
var (
	// ErrServerBusy reports an operation rejected by the server's bounded
	// in-flight window; drain pending replies and retry.
	ErrServerBusy = server.ErrBusy
	// ErrServerQueueClosed reports an enqueue against a closed fabric.
	ErrServerQueueClosed = server.ErrClosedQueue
)

// WithServeWindow sets the per-connection in-flight request window
// (default 64); requests beyond it get BUSY replies.
func WithServeWindow(w int) ServeOption { return server.WithWindow(w) }

// WithServeBatchMax caps the requests executed per batched fabric pass
// (default: the window size).
func WithServeBatchMax(n int) ServeOption { return server.WithBatchMax(n) }

// WithServeIdleTimeout sets how long an idle session keeps its handle
// lease before being reaped (default 2m; 0 disables reaping).
func WithServeIdleTimeout(d time.Duration) ServeOption { return server.WithIdleTimeout(d) }

// WithServeMaxFrame bounds a request frame's size, and so an enqueued
// value's size (default 1 MiB).
func WithServeMaxFrame(n int) ServeOption { return server.WithMaxFrame(n) }

// WithServeMaxQueues caps how many named queues the server holds at once
// (default 64; the default queue is not counted).
func WithServeMaxQueues(n int) ServeOption { return server.WithMaxQueues(n) }

// WithServeQueueIdleTimeout sets how long a named queue may sit with no
// bound session and no backlog before its fabric is torn down (default
// 5m; 0 disables teardown).
func WithServeQueueIdleTimeout(d time.Duration) ServeOption {
	return server.WithQueueIdleTimeout(d)
}

// WithAutoscale starts the server's per-queue shard autoscaler with the
// given tick interval (0, the default, disables it). Every tick, each
// queue's fabric is resized live — retired shards' residues migrated with
// exact conservation, per-producer FIFO preserved across the epoch swap —
// from its served ops/sec, occupancy, and null-dequeue rate, within the
// WithShardBounds envelope.
func WithAutoscale(interval time.Duration) ServeOption { return server.WithAutoscale(interval) }

// WithShardBounds bounds the per-queue shard count that the autoscaler
// and wire-level manual resizes (QueueClient.Resize,
// NamedRemoteQueue.Resize) will apply (defaults 1 and 16).
func WithShardBounds(min, max int) ServeOption { return server.WithShardBounds(min, max) }

// WithObservability toggles the server's observability layer (default
// on): per-(queue, op) latency histograms — each request frame's
// read-to-reply in-server latency, classed as enqueue, dequeue, batch, or
// null-dequeue — plus a bounded ring of control-plane trace events
// (resizes, autoscaler decisions with their watermark inputs, session and
// queue lifecycle), and the request-tracing machinery: trace-flagged
// frames get per-stage timestamps, a span in the slow-biased exemplar
// reservoir (/spanz), and per-stage latency histograms. The data surfaces
// through ServerSnapshot's obs block and per-queue latency summaries, and
// through the server's /metricsz (Prometheus text), /tracez, and /spanz
// (JSON) HTTP handlers. Recording is lock-free and allocation-free on the
// hot path for untraced frames; the measured budget (experiments T15,
// T16) is under 3% CPU cost per operation. Off, snapshots revert to the
// pre-observability JSON shape and traced frames are answered plain.
func WithObservability(on bool) ServeOption { return server.WithObservability(on) }

// WithServeNetPooling toggles the server's network memory system
// (default on): size-classed pooled ingress buffers recycled once each
// frame's batch pass completes, enqueue payloads copied out of the wire
// buffer at admit time, per-session reusable reply-encode scratch, and
// one sized socket write per coalesced reply window. Off, the server
// reverts to the pre-overhaul cost model — a fresh buffer per frame and
// allocating reply encoders — which exists for A/B measurement
// (experiment T18) and as an escape hatch; correctness is identical.
func WithServeNetPooling(on bool) ServeOption { return server.WithNetPooling(on) }

// ServerObsStats is the server-wide observability block of a
// ServerSnapshot: trace-ring occupancy plus aggregate latency summaries
// per operation class and per traced-request stage. Present only when the
// server runs with WithObservability(true) (the default).
type ServerObsStats = server.ObsStats

// RequestTrace is the client-side, clock-skew-free stage decomposition of
// one traced operation (QueueClient.EnqueueTraced, DequeueTraced, and the
// NamedRemoteQueue equivalents): the round trip on the client's clock,
// the wait / fabric / reply stages on the server's clock as stamped into
// the traced reply, and the network remainder as the difference of the
// two intervals.
type RequestTrace = server.TraceStages

// Serve listens on addr and serves q over the queue service's wire
// protocol until the returned server is Closed. Pass "127.0.0.1:0" to
// bind an ephemeral loopback port (resolved via QueueServer.Addr).
func Serve(addr string, q *ShardedQueue[[]byte], opts ...ServeOption) (*QueueServer, error) {
	return server.Serve(addr, q, opts...)
}

// Dial connects a QueueClient to a queue service at addr.
func Dial(addr string) (*QueueClient, error) {
	return server.Dial(addr)
}

// DialMaxFrame is Dial with an explicit frame-size cap; match it to a
// server configured with a non-default WithServeMaxFrame.
func DialMaxFrame(addr string, maxFrame int) (*QueueClient, error) {
	return server.DialMaxFrame(addr, maxFrame)
}
