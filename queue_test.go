package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// TestPublicQueueAPI exercises the façade exactly as the README shows it.
func TestPublicQueueAPI(t *testing.T) {
	q, err := repro.NewQueue[string](4)
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(0)
	h.Enqueue("hello")
	h.Enqueue("world")
	if v, ok := h.Dequeue(); !ok || v != "hello" {
		t.Fatalf("Dequeue = (%q, %v)", v, ok)
	}
	if got := q.Len(); got != 1 {
		t.Fatalf("Len = %d", got)
	}
	if v, ok := h.Dequeue(); !ok || v != "world" {
		t.Fatalf("Dequeue = (%q, %v)", v, ok)
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("Dequeue on empty queue succeeded")
	}
}

func TestPublicBoundedQueueAPI(t *testing.T) {
	q, err := repro.NewBoundedQueue[int](2, repro.WithGCInterval(8))
	if err != nil {
		t.Fatal(err)
	}
	h := q.MustHandle(1)
	for i := 0; i < 100; i++ {
		h.Enqueue(i)
	}
	for i := 0; i < 100; i++ {
		if v, ok := h.Dequeue(); !ok || v != i {
			t.Fatalf("Dequeue %d = (%d, %v)", i, v, ok)
		}
	}
	if q.TotalBlocks() <= 0 {
		t.Fatal("TotalBlocks not positive")
	}
	if q.GCInterval() != 8 {
		t.Fatalf("GCInterval = %d", q.GCInterval())
	}
}

func TestPublicVectorAPI(t *testing.T) {
	v, err := repro.NewVector[string](2)
	if err != nil {
		t.Fatal(err)
	}
	h := v.MustHandle(0)
	r1 := h.Append("a")
	r2 := h.Append("b")
	if got, ok := h.Get(0); !ok || got != "a" {
		t.Fatalf("Get(0) = (%q, %v)", got, ok)
	}
	p1, err := h.Index(r1)
	if err != nil || p1 != 0 {
		t.Fatalf("Index(r1) = (%d, %v)", p1, err)
	}
	p2, err := h.Index(r2)
	if err != nil || p2 != 1 {
		t.Fatalf("Index(r2) = (%d, %v)", p2, err)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
}

// TestPublicAPIConcurrent is the README's usage pattern under concurrency:
// one handle per goroutine, no external synchronization.
func TestPublicAPIConcurrent(t *testing.T) {
	const workers = 4
	q, err := repro.NewQueue[int](workers)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var got sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.MustHandle(w)
			for s := 0; s < 1000; s++ {
				h.Enqueue(w*1_000_000 + s)
				if v, ok := h.Dequeue(); ok {
					if _, dup := got.LoadOrStore(v, w); dup {
						t.Errorf("value %d dequeued twice", v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	h := q.MustHandle(0)
	for {
		v, ok := h.Dequeue()
		if !ok {
			break
		}
		if _, dup := got.LoadOrStore(v, -1); dup {
			t.Fatalf("value %d dequeued twice", v)
		}
	}
	count := 0
	got.Range(func(_, _ any) bool { count++; return true })
	if count != workers*1000 {
		t.Fatalf("received %d values, want %d", count, workers*1000)
	}
}
