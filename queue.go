// Package repro is a from-scratch Go implementation of the wait-free FIFO
// queue with polylogarithmic step complexity by Naderibeni and Ruppert
// (PODC 2023, arXiv:2305.07229), together with its bounded-space variant,
// the vector extension from the paper's Section 7, the baseline queues the
// paper compares against, and a benchmark harness that reproduces the
// paper's analytical claims empirically.
//
// # Quick start
//
//	q, err := repro.NewQueue[string](numWorkers)
//	if err != nil { ... }
//	// one handle per goroutine:
//	h := q.MustHandle(workerID)
//	h.Enqueue("job")
//	v, ok := h.Dequeue() // ok == false: queue was empty
//
// Every Enqueue completes in O(log p) shared-memory steps and every Dequeue
// in O(log^2 p + log q) steps regardless of scheduling (p = number of
// handles, q = queue length), using only single-word CAS. The queue is
// linearizable and wait-free.
//
// The operation path is batch-native: a handle can install many operations
// in one leaf block, paying the ordering-tree walk once per batch instead
// of once per operation (the paper's blocks carry operation sets; the batch
// API exposes that capacity):
//
//	h.EnqueueBatch([]string{"a", "b", "c"}) // one block, one propagation
//	vs, n := h.DequeueBatch(8)              // up to 8 elements, ditto
//
// Batch elements linearize consecutively and interleave with single
// operations in FIFO order; a short DequeueBatch count means the queue was
// empty when the batch's remaining dequeues took effect. The same methods
// exist on BoundedHandle, ShardedHandle (whole batch to the home shard,
// preserving per-producer order), and the service client (native
// ENQ_BATCH/DEQ_BATCH wire frames; see Serve below). Experiment T12 in
// EXPERIMENTS.md quantifies the amortization.
//
// NewBoundedQueue builds the space-bounded variant (Section 6 of the
// paper), which garbage-collects blocks that are no longer needed and keeps
// memory polynomial in p and the maximum queue length while retaining
// O(log p log(p+q)) amortized steps per operation.
//
// NewVector builds the append-only sequence from the paper's Section 7.
//
// NewShardedQueue builds the sharded queue fabric: k independent queues
// behind one frontend, trading cross-shard FIFO order for k-fold root
// bandwidth, with handle slots leased dynamically to goroutines via
// Acquire/Release instead of the paper's static numbering:
//
//	q, err := repro.NewShardedQueue[string](8)
//	h, err := q.Acquire()
//	defer h.Release()
//	h.Enqueue("job")
//	v, ok := h.Dequeue()
//
// The fabric is elastic: its shard set lives behind an epoch-numbered
// immutable topology, and q.Resize(k) installs a new epoch while
// operations continue — a shrink drains retired shards' residual elements
// into the survivors with exact conservation and per-producer FIFO
// preserved across the boundary. Experiment T14 measures the service
// layer's autoscaler (see WithAutoscale) driving Resize from live load:
//
//	err = q.Resize(16)       // double up under load ...
//	err = q.Resize(4)        // ... and retire shards when it fades
//
// Serve exposes a byte-valued fabric over TCP as the default queue of a
// multi-tenant namespace — each client connection leases fabric handles
// per (connection, queue), pipelined requests are batched into single
// fabric passes, and overload is answered with explicit BUSY replies
// instead of unbounded buffering:
//
//	q, err := repro.NewShardedQueue[[]byte](8)
//	srv, err := repro.Serve("127.0.0.1:0", q)
//	defer srv.Close()
//	c, err := repro.Dial(srv.Addr().String())
//	defer c.Close()
//	err = c.Enqueue([]byte("job"))
//	v, ok, err := c.Dequeue() // ok == false: queue was empty
//
// Named queues multiply tenants on one server without weakening any
// per-queue guarantee: QueueClient.Open creates a queue on first use —
// each named queue is its own sharded fabric, torn down again when idle
// and empty — and returns a binding whose operations pipeline on the
// same connection:
//
//	jobs, err := c.Open("jobs")
//	err = jobs.Enqueue([]byte("render"))
//	v2, ok, err := jobs.Dequeue()
//	err = c.Delete("jobs") // explicit teardown; stale ids then fail loudly
//
// (cmd/queued serves a standalone instance; cmd/qload load-tests it,
// including a multi-tenant sweep mode.)
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduction results.
package repro

import (
	"repro/internal/bounded"
	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/vector"
)

// Queue is the unbounded-space wait-free queue (paper Sections 3-5).
type Queue[T any] = core.Queue[T]

// Handle is a process's access point to a Queue; use one per goroutine.
type Handle[T any] = core.Handle[T]

// NewQueue creates a wait-free queue for up to procs concurrent processes.
func NewQueue[T any](procs int) (*Queue[T], error) {
	return core.New[T](procs)
}

// BoundedQueue is the space-bounded wait-free queue (paper Section 6).
type BoundedQueue[T any] = bounded.Queue[T]

// BoundedHandle is a process's access point to a BoundedQueue.
type BoundedHandle[T any] = bounded.Handle[T]

// BoundedOption configures NewBoundedQueue.
type BoundedOption = bounded.Option

// WithGCInterval overrides the garbage-collection interval G (default:
// the paper's p^2 ceil(log2 p)).
func WithGCInterval(g int64) BoundedOption {
	return bounded.WithGCInterval(g)
}

// NewBoundedQueue creates a space-bounded wait-free queue for up to procs
// concurrent processes.
func NewBoundedQueue[T any](procs int, opts ...BoundedOption) (*BoundedQueue[T], error) {
	return bounded.New[T](procs, opts...)
}

// Vector is the wait-free append-only sequence (paper Section 7).
type Vector[T any] = vector.Vector[T]

// VectorHandle is a process's access point to a Vector.
type VectorHandle[T any] = vector.Handle[T]

// VectorRef identifies an appended element for Index queries.
type VectorRef = vector.Ref

// NewVector creates a wait-free vector for up to procs concurrent
// processes.
func NewVector[T any](procs int) (*Vector[T], error) {
	return vector.New[T](procs)
}

// ShardedQueue is a fabric of independent wait-free queues with relaxed
// cross-shard FIFO order and dynamically leased handles (see package
// internal/shard for the full semantics).
type ShardedQueue[T any] = shard.Queue[T]

// ShardedHandle is a leased access point to a ShardedQueue; obtain one with
// Acquire and return it with Release.
type ShardedHandle[T any] = shard.Handle[T]

// ShardedOption configures NewShardedQueue.
type ShardedOption = shard.Option

// ShardBackend selects the per-shard queue implementation.
type ShardBackend = shard.Backend

// Per-shard backends: the unbounded-space queue (Sections 3-5) or the
// space-bounded variant (Section 6).
const (
	ShardBackendCore    ShardBackend = shard.BackendCore
	ShardBackendBounded ShardBackend = shard.BackendBounded
)

// ErrQueueClosed is returned by ShardedHandle.Enqueue after Close.
var ErrQueueClosed = shard.ErrClosed

// ErrNoFreeHandles is returned by ShardedQueue.Acquire when every handle
// slot is leased.
var ErrNoFreeHandles = shard.ErrNoFreeHandles

// WithShardBackend selects the per-shard queue implementation (default
// ShardBackendCore).
func WithShardBackend(b ShardBackend) ShardedOption { return shard.WithBackend(b) }

// WithShardMaxHandles sets the number of leasable handle slots (default
// max(16, 4*GOMAXPROCS)).
func WithShardMaxHandles(n int) ShardedOption { return shard.WithMaxHandles(n) }

// WithShardDequeueChoices sets d, the number of nonempty shards a dequeue
// samples before committing to the fullest (default 2).
func WithShardDequeueChoices(d int) ShardedOption { return shard.WithDequeueChoices(d) }

// WithShardGCInterval forwards a GC interval to ShardBackendBounded shards.
func WithShardGCInterval(g int64) ShardedOption { return shard.WithGCInterval(g) }

// WithShardMetrics enables per-shard cost-model accounting, reported by
// ShardedQueue.ShardSummaries.
func WithShardMetrics() ShardedOption { return shard.WithShardMetrics() }

// NewShardedQueue creates a sharded queue fabric with the given shard count.
func NewShardedQueue[T any](shards int, opts ...ShardedOption) (*ShardedQueue[T], error) {
	return shard.New[T](shards, opts...)
}
