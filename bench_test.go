// Benchmarks, one per reproduced table (DESIGN.md Section 2; results
// recorded in EXPERIMENTS.md). Custom metrics carry the paper's cost model:
// steps/op counts shared-memory operations, cas/op counts CAS instructions,
// maxop-steps is the worst single operation observed.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/harness"
	"repro/internal/queues"
	"repro/internal/shard"
)

var sweepPs = []int{2, 8, 32}

// benchWorkload runs a harness workload sized by b.N and reports the paper's
// cost-model metrics alongside wall-clock time.
func benchWorkload(b *testing.B, mk func(int) (queues.Queue, error), p int,
	run func(q queues.Queue, procs, opsPerProc int) (harness.Result, error)) {
	b.Helper()
	q, err := mk(p)
	if err != nil {
		b.Fatal(err)
	}
	opsPerProc := b.N/p + 1
	b.ResetTimer()
	res, err := run(q, p, opsPerProc)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.Summary.StepsPerOp, "steps/op")
	b.ReportMetric(res.Summary.CASPerOp, "cas/op")
	b.ReportMetric(float64(res.Summary.MaxOpSteps), "maxop-steps")
}

func pairs(q queues.Queue, procs, opsPerProc int) (harness.Result, error) {
	return harness.RunPairs(q, procs, opsPerProc, 1)
}

// msFactory resolves the MS-queue factory from the registry.
func msFactory(b *testing.B) func(int) (queues.Queue, error) {
	b.Helper()
	f, err := harness.FactoryByName("ms-queue")
	if err != nil {
		b.Fatal(err)
	}
	return f.New
}

// BenchmarkTable1CASBound (T1, Proposition 19): CAS per operation for the
// NR-queue vs the MS-queue across contention levels.
func BenchmarkTable1CASBound(b *testing.B) {
	impls := []struct {
		name string
		mk   func(int) (queues.Queue, error)
	}{
		{"nr", queues.NewNR},
		{"nr-bounded", queues.NewBounded},
		{"ms", msFactory(b)},
	}
	for _, impl := range impls {
		for _, p := range sweepPs {
			b.Run(fmt.Sprintf("%s/p=%d", impl.name, p), func(b *testing.B) {
				benchWorkload(b, impl.mk, p, pairs)
			})
		}
	}
}

// BenchmarkTable2EnqueueSteps (T2, Theorem 22): enqueue steps vs p.
func BenchmarkTable2EnqueueSteps(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchWorkload(b, queues.NewNR, p,
				func(q queues.Queue, procs, ops int) (harness.Result, error) {
					return harness.RunEnqueueOnly(q, procs, ops, 1)
				})
		})
	}
}

// BenchmarkTable3DequeueSteps (T3, Theorem 22): dequeue steps vs p at fixed
// queue size, and vs queue size at fixed p.
func BenchmarkTable3DequeueSteps(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("vsP/p=%d", p), func(b *testing.B) {
			benchWorkload(b, func(procs int) (queues.Queue, error) {
				q, err := queues.NewNR(procs)
				if err != nil {
					return nil, err
				}
				return q, harness.Prefill(q, 1024)
			}, p, pairs)
		})
	}
	for _, q0 := range []int{16, 1024, 65536} {
		b.Run(fmt.Sprintf("vsQ/q=%d", q0), func(b *testing.B) {
			benchWorkload(b, func(procs int) (queues.Queue, error) {
				q, err := queues.NewNR(procs)
				if err != nil {
					return nil, err
				}
				return q, harness.Prefill(q, q0)
			}, 8, pairs)
		})
	}
}

// BenchmarkTable4RetryProblem (T4): amortized steps per op across all
// implementations — the CAS retry problem makes the baselines grow with p.
func BenchmarkTable4RetryProblem(b *testing.B) {
	for _, f := range harness.DefaultFactories() {
		for _, p := range sweepPs {
			b.Run(fmt.Sprintf("%s/p=%d", f.Name, p), func(b *testing.B) {
				benchWorkload(b, f.New, p, pairs)
			})
		}
	}
}

// BenchmarkTable5SpaceBound (T5, Theorem 31): live blocks stay bounded as
// operations accumulate in the bounded-space queue.
func BenchmarkTable5SpaceBound(b *testing.B) {
	q, err := repro.NewBoundedQueue[int64](8)
	if err != nil {
		b.Fatal(err)
	}
	h := q.MustHandle(0)
	const qmax = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Enqueue(int64(i))
		if i%qmax == qmax-1 {
			for j := 0; j < qmax; j++ {
				h.Dequeue()
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(q.TotalBlocks()), "live-blocks")
	b.ReportMetric(float64(q.GCInterval()), "G")
}

// BenchmarkTable6BoundedSteps (T6, Theorem 32): amortized steps of the
// bounded queue including GC phases.
func BenchmarkTable6BoundedSteps(b *testing.B) {
	for _, p := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchWorkload(b, queues.NewBounded, p, pairs)
		})
	}
}

// BenchmarkTable7Throughput (T7): raw wall-clock throughput comparison; the
// ns/op column is the headline number here.
func BenchmarkTable7Throughput(b *testing.B) {
	for _, f := range harness.DefaultFactories() {
		for _, p := range sweepPs {
			b.Run(fmt.Sprintf("%s/p=%d", f.Name, p), func(b *testing.B) {
				benchWorkload(b, f.New, p, pairs)
			})
		}
	}
}

// BenchmarkTable8WaitFree (T8, Corollary 23): worst single-operation step
// count while a quarter of the processes keep stalling.
func BenchmarkTable8WaitFree(b *testing.B) {
	impls := []struct {
		name string
		mk   func(int) (queues.Queue, error)
	}{
		{"nr", queues.NewNR},
		{"ms", msFactory(b)},
	}
	for _, impl := range impls {
		for _, p := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/p=%d", impl.name, p), func(b *testing.B) {
				benchWorkload(b, impl.mk, p,
					func(q queues.Queue, procs, ops int) (harness.Result, error) {
						return harness.RunWithStalls(q, procs, ops, procs/4, 0, 1)
					})
			})
		}
	}
}

// BenchmarkTable9Vector (T9, Section 7): per-operation cost of the vector's
// three operations.
func BenchmarkTable9Vector(b *testing.B) {
	b.Run("Append", func(b *testing.B) {
		v, err := repro.NewVector[int64](4)
		if err != nil {
			b.Fatal(err)
		}
		h := v.MustHandle(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Append(int64(i))
		}
	})
	b.Run("Get", func(b *testing.B) {
		v, err := repro.NewVector[int64](4)
		if err != nil {
			b.Fatal(err)
		}
		h := v.MustHandle(0)
		const n = 1 << 16
		for i := int64(0); i < n; i++ {
			h.Append(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := h.Get(int64(i) & (n - 1)); !ok {
				b.Fatal("Get failed")
			}
		}
	})
	b.Run("Index", func(b *testing.B) {
		v, err := repro.NewVector[int64](4)
		if err != nil {
			b.Fatal(err)
		}
		h := v.MustHandle(0)
		const n = 1 << 12
		refs := make([]repro.VectorRef, n)
		for i := int64(0); i < n; i++ {
			refs[i] = h.Append(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := h.Index(refs[i&(n-1)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable10Sharded (T10): enqueue+dequeue throughput of the sharded
// fabric vs shard count. The single tournament tree (k=1) serializes all
// goroutines through one root; k roots should lift throughput with k.
func BenchmarkTable10Sharded(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		for _, p := range []int{8, 32} {
			b.Run(fmt.Sprintf("k=%d/p=%d", k, p), func(b *testing.B) {
				benchWorkload(b, func(procs int) (queues.Queue, error) {
					return queues.NewSharded(procs, k, shard.BackendCore)
				}, p, pairs)
			})
		}
	}
	// Bounded backend reference point at the largest shard count.
	b.Run("bounded/k=8/p=32", func(b *testing.B) {
		benchWorkload(b, func(procs int) (queues.Queue, error) {
			return queues.NewSharded(procs, 8, shard.BackendBounded)
		}, 32, pairs)
	})
}

// allocImpls are the implementations whose hot paths run through the block
// arenas (internal/core pool.go, internal/bounded pool.go) and the flattened
// ordering tree — the subjects of the T17 memory-wall experiment.
func allocImpls() []struct {
	name string
	mk   func(int) (queues.Queue, error)
} {
	return []struct {
		name string
		mk   func(int) (queues.Queue, error)
	}{
		{"nr", queues.NewNR},
		{"nr-bounded", queues.NewBounded},
		{"sharded-4(core)", func(p int) (queues.Queue, error) {
			return queues.NewSharded(p, 4, shard.BackendCore)
		}},
	}
}

// BenchmarkEnqueueDequeue (T17): single-handle enqueue+dequeue pairs with
// allocation reporting. Run with -benchmem; the allocs/op column is the
// regression gate the TestAllocs tests enforce (near-zero on the recycled
// core path, pbst path copies only on the bounded path).
func BenchmarkEnqueueDequeue(b *testing.B) {
	for _, impl := range allocImpls() {
		b.Run(impl.name, func(b *testing.B) {
			q, err := impl.mk(2)
			if err != nil {
				b.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				b.Fatal(err)
			}
			// Warm the arenas so steady-state recycling, not cold-start
			// slab carving, is what gets measured.
			for i := 0; i < 512; i++ {
				h.Enqueue(int64(i))
				h.Dequeue()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Enqueue(int64(i))
				h.Dequeue()
			}
		})
	}
}

// BenchmarkEnqueueDequeueBatch (T17): the batch variant — m operations per
// multi-op block, so fixed per-block allocations amortize across the batch.
func BenchmarkEnqueueDequeueBatch(b *testing.B) {
	const m = 8
	vs := make([]int64, m)
	for _, impl := range allocImpls() {
		b.Run(impl.name, func(b *testing.B) {
			q, err := impl.mk(2)
			if err != nil {
				b.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				b.Fatal(err)
			}
			bh, ok := h.(queues.BatchHandle)
			if !ok {
				b.Skipf("%s: no batch surface", impl.name)
			}
			for i := 0; i < 64; i++ {
				bh.EnqueueBatch(vs)
				bh.DequeueBatch(m)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += m {
				bh.EnqueueBatch(vs)
				bh.DequeueBatch(m)
			}
		})
	}
}

// BenchmarkMicroOps: classic single-threaded per-op costs for every
// implementation (the paper's Section 7 remark that its queue costs more
// than the MS-queue in the uncontended case).
func BenchmarkMicroOps(b *testing.B) {
	for _, f := range harness.DefaultFactories() {
		b.Run(f.Name+"/EnqDeq", func(b *testing.B) {
			q, err := f.New(1)
			if err != nil {
				b.Fatal(err)
			}
			h, err := q.Handle(0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Enqueue(int64(i))
				h.Dequeue()
			}
		})
	}
}
