package main

import "testing"

func TestParseRates(t *testing.T) {
	got, err := parseRates("1000, 4000,16000")
	if err != nil || len(got) != 3 || got[0] != 1000 || got[1] != 4000 || got[2] != 16000 {
		t.Fatalf("parseRates = (%v, %v)", got, err)
	}
	for _, bad := range []string{"", "x", "1000,,4000", "0", "-5", "1000,0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) succeeded", bad)
		}
	}
}
