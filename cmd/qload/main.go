// Command qload drives a queued instance with open-loop load and reports
// end-to-end latency percentiles per offered rate (experiment T11), per-
// queue throughput isolation as the tenant count grows (multi-tenant
// sweep mode, experiment T13), or the autoscaler's tracking of a phased
// load ramp (ramp mode, experiment T14).
//
// The generator is open-loop: enqueue send times follow the target rate
// regardless of how fast the service responds, and every latency is
// measured from the op's scheduled send time, so overload shows up as
// queueing delay in the percentiles instead of silently throttling the
// offered load. Producers pipeline enqueues within a bounded window;
// consumers drain concurrently; after the producing phase the run verifies
// exact conservation — every acknowledged value dequeued exactly once,
// per queue — and qload exits 1 if any value was lost or duplicated.
//
// Usage:
//
//	queued -addr 127.0.0.1:7474 &
//	qload -addr 127.0.0.1:7474 -rates 1000,4000,16000 -duration 2s
//	qload -addr 127.0.0.1:7474 -rates 8000 -producers 4 -consumers 4 \
//	      -value-size 256 -burst 16 -json bench_results
//	qload -addr 127.0.0.1:7474 -rates 20000 -batch 16   # native batch frames
//	qload -addr 127.0.0.1:7474 -rates 8000 -queue jobs  # one named queue
//	qload -addr 127.0.0.1:7474 -rates 16000 -tenants 1,2,4 -json bench_results
//	qload -addr 127.0.0.1:7474 -ramp 16000,500,16000     # T14 (autoscaling queued)
//	qload -addr 127.0.0.1:7474 -rates 8000 -scrape       # + server-side percentiles
//	qload -addr 127.0.0.1:7474 -rates 8000 -trace 16     # + stage decomposition
//
// -queue runs the T11 sweep against one named queue instead of the
// default queue. -tenants switches to the T13 sweep: for each tenant
// count N, N concurrent open-loop runs each drive their own named queue
// at 1/N of the single -rates value, so rows compare at equal aggregate
// offered load; conservation is checked per queue. -ramp switches to the
// T14 elastic-scaling ramp: the comma-separated phase rates run back to
// back against the default queue of a queued started with
// -autoscale-interval, and each phase reports the fabric's shard count,
// topology epoch, and cumulative resize counters alongside throughput
// and conservation.
//
// -scrape (sweep mode only) fetches the server's own latency histograms
// after the sweep and prints the server-side per-queue percentiles next
// to the client-side table: the client view measures scheduled-send to
// ack, the server view frame read to reply, so the two agree within the
// network round trip plus client scheduling delay.
//
// -trace N (sweep mode only) traces every Nth enqueue frame end to end:
// the client stamps its send time into the frame, the server (run it with
// observability on, the default) ships back per-stage timestamps in the
// reply, and qload prints a stage-decomposition table per rate under the
// client table — where each rate's latency actually goes: client
// scheduling, server batcher wait, the fabric op, reply assembly, or the
// network. The same spans land in the server's /spanz reservoir and
// /metricsz stage histograms for the server-side view.
//
// -json emits bench_results/BENCH_T11.json (BENCH_T13.json in tenant
// mode, BENCH_T14.json in ramp mode) in the same schema as
// cmd/benchqueue's tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	var (
		addr      = flag.String("addr", "", "queued address to drive (required)")
		ratesFlag = flag.String("rates", "1000,4000,16000", "comma-separated offered enqueue rates, ops/s")
		duration  = flag.Duration("duration", 2*time.Second, "producing phase length per rate")
		producers = flag.Int("producers", 2, "producer connections")
		consumers = flag.Int("consumers", 2, "consumer connections")
		valueSize = flag.Int("value-size", 64, fmt.Sprintf("value payload bytes (min %d: key + timestamp + run nonce)", server.MinValueSize))
		burst     = flag.Int("burst", 1, "frames per scheduling tick per producer; raises burstiness at the same average rate")
		batch     = flag.Int("batch", 1, "values per wire frame; >1 uses the native ENQ_BATCH/DEQ_BATCH opcodes end to end")
		window    = flag.Int("window", 32, "max in-flight enqueues per producer connection")
		drain     = flag.Duration("drain", 10*time.Second, "max wait for consumers to finish after producers stop")
		queue     = flag.String("queue", "", "drive this named queue instead of the default queue")
		tenants   = flag.String("tenants", "", "comma-separated tenant counts: run the T13 multi-queue sweep at the single -rates value as aggregate load")
		ramp      = flag.String("ramp", "", "comma-separated phase rates: run the T14 elastic-scaling ramp (phases run back to back against an autoscaling queued)")
		jsonDir   = flag.String("json", "", "write the result table as BENCH_T11.json (BENCH_T13.json with -tenants, BENCH_T14.json with -ramp) into this directory")
		scrape    = flag.Bool("scrape", false, "after the sweep, snapshot the server's own latency histograms and print the server-side percentiles next to the client-side table")
		trace     = flag.Int("trace", 0, "trace every Nth enqueue frame and print a per-stage latency decomposition per rate (0 disables; needs a server with observability on)")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "qload: -addr is required (start cmd/queued first)")
		os.Exit(2)
	}
	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(2)
	}
	load := server.LoadConfig{
		Duration:     *duration,
		Producers:    *producers,
		Consumers:    *consumers,
		ValueSize:    *valueSize,
		Burst:        *burst,
		Batch:        *batch,
		Window:       *window,
		DrainTimeout: *drain,
		Queue:        *queue,
		TraceEvery:   *trace,
	}
	if *ramp != "" {
		if *trace > 0 {
			fmt.Fprintln(os.Stderr, "qload: -trace works in sweep mode only; drop -ramp")
			os.Exit(2)
		}
		runRamp(*addr, *ramp, *tenants, load, *jsonDir)
		return
	}
	if *tenants != "" {
		if *trace > 0 {
			fmt.Fprintln(os.Stderr, "qload: -trace works in sweep mode only; drop -tenants")
			os.Exit(2)
		}
		runTenantSweep(*addr, *tenants, rates, load, *jsonDir)
		return
	}
	table, results, err := harness.ExpServiceLatencyResults(rates, harness.ServiceConfig{Addr: *addr, Load: load})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())

	violated := false
	for i, res := range results {
		fmt.Printf("rate %6d: offered=%d acked=%d busy=%d errors=%d consumed=%d foreign=%d lost=%d dup=%d\n",
			rates[i], res.Offered, res.Acked, res.Busy, res.Errors,
			res.Consumed, res.Foreign, res.Lost, res.Dup)
		violated = violated || !res.Conserved()
	}
	if *trace > 0 {
		printTraceTable(rates, results, *trace)
	}
	if *scrape {
		if err := scrapeServerView(*addr, *queue); err != nil {
			fmt.Fprintln(os.Stderr, "qload: -scrape:", err)
			os.Exit(1)
		}
	}
	if *jsonDir != "" {
		path, err := harness.WriteTableJSON(*jsonDir, table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qload:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "qload: wrote", path)
	}
	if violated {
		fmt.Fprintln(os.Stderr, "qload: CONSERVATION VIOLATION (values lost or duplicated)")
		os.Exit(1)
	}
}

// runRamp executes the T14 elastic-scaling ramp against a running queued
// (start it with -autoscale-interval so the ramp has an autoscaler to
// exercise) and exits 1 if any phase lost or duplicated a value.
func runRamp(addr, rampFlag, tenantsFlag string, load server.LoadConfig, jsonDir string) {
	phases, err := parseRates(rampFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload: -ramp:", err)
		os.Exit(2)
	}
	if tenantsFlag != "" {
		fmt.Fprintln(os.Stderr, "qload: -ramp conflicts with -tenants")
		os.Exit(2)
	}
	if load.Queue != "" {
		fmt.Fprintln(os.Stderr, "qload: -ramp drives the default queue; drop -queue")
		os.Exit(2)
	}
	table, results, err := harness.ExpElasticScalingResults(phases, harness.ElasticConfig{Addr: addr, Load: load})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())

	violated := false
	for i, res := range results {
		fmt.Printf("phase %2d (rate %6d): offered=%d acked=%d busy=%d errors=%d consumed=%d lost=%d dup=%d\n",
			i, phases[i], res.Offered, res.Acked, res.Busy, res.Errors, res.Consumed, res.Lost, res.Dup)
		violated = violated || !res.Conserved()
	}
	if jsonDir != "" {
		path, err := harness.WriteTableJSON(jsonDir, table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qload:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "qload: wrote", path)
	}
	if violated {
		fmt.Fprintln(os.Stderr, "qload: CONSERVATION VIOLATION (values lost or duplicated)")
		os.Exit(1)
	}
}

// runTenantSweep executes the T13 multi-tenant experiment against a
// running queued and exits 1 if any tenant at any count lost or
// duplicated a value.
func runTenantSweep(addr, tenantsFlag string, rates []int, load server.LoadConfig, jsonDir string) {
	counts, err := parseRates(tenantsFlag) // same grammar: positive ints
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload: -tenants:", err)
		os.Exit(2)
	}
	if len(rates) != 1 {
		fmt.Fprintln(os.Stderr, "qload: -tenants needs exactly one -rates value (the aggregate offered rate)")
		os.Exit(2)
	}
	if load.Queue != "" {
		fmt.Fprintln(os.Stderr, "qload: -queue conflicts with -tenants (tenant queues are named automatically)")
		os.Exit(2)
	}
	load.Rate = rates[0]
	table, results, err := harness.ExpMultiTenantResults(counts, harness.MultiTenantConfig{Addr: addr, Load: load})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())

	violated := false
	for i, row := range results {
		for j, res := range row {
			if !res.Conserved() {
				fmt.Fprintf(os.Stderr, "qload: tenants=%d queue %d: lost=%d dup=%d\n",
					counts[i], j, res.Lost, res.Dup)
				violated = true
			}
		}
	}
	if jsonDir != "" {
		path, err := harness.WriteTableJSON(jsonDir, table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qload:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "qload: wrote", path)
	}
	if violated {
		fmt.Fprintln(os.Stderr, "qload: CONSERVATION VIOLATION (values lost or duplicated)")
		os.Exit(1)
	}
}

// printTraceTable prints the per-stage latency decomposition of the traced
// enqueue frames, one row per rate: where each rate's end-to-end latency
// goes. sched is client pacing plus in-flight window wait (client clock);
// wait, fabric, and reply are the server's own stamps shipped back in the
// traced replies; net is the RTT minus the server's read-to-reply window
// (network both ways, server socket flush, client read path); total is the
// same scheduled-send-to-ack metric as the enq columns above, so the rows
// reconcile directly against the client table. srv-sampled counts traces
// the server actually stamped — 0 means it runs with -obs=false.
func printTraceTable(rates []int, results []*server.LoadResult, every int) {
	fmt.Printf("\nrequest-trace stage decomposition (every %dth enqueue frame traced; p50/p99 ms):\n", every)
	fmt.Printf("%8s %8s %11s  %-13s %-13s %-13s %-13s %-13s %-13s\n",
		"rate", "traced", "srv-sampled", "sched", "wait", "fabric", "reply", "net", "total")
	for i, res := range results {
		var sched, wait, fabric, reply, net, total []float64
		sampled := 0
		for _, s := range res.Traces {
			sched = append(sched, s.SchedMs)
			total = append(total, s.TotalMs)
			if !s.ServerSampled {
				continue
			}
			sampled++
			wait = append(wait, s.WaitMs)
			fabric = append(fabric, s.FabricMs)
			reply = append(reply, s.ReplyMs)
			net = append(net, s.NetMs)
		}
		pp := func(v []float64) string {
			return fmt.Sprintf("%5.2f/%6.2f", stats.Percentile(v, 50), stats.Percentile(v, 99))
		}
		fmt.Printf("%8d %8d %11d  %-13s %-13s %-13s %-13s %-13s %-13s\n",
			rates[i], len(res.Traces), sampled,
			pp(sched), pp(wait), pp(fabric), pp(reply), pp(net), pp(total))
	}
	fmt.Println("slow exemplars with the same decomposition are on the server's /spanz; aggregate stage histograms on /metricsz (queued_stage_latency_seconds).")
}

// scrapeServerView fetches the server's Snapshot over the wire and prints
// the per-queue latency percentiles the server itself measured — the view
// its observability layer recorded while the sweep above was hammering it.
// The client-side table measures scheduled-send to ack; the server-side
// view measures frame read to reply, so the two should agree within the
// network round trip plus client scheduling delay. queue narrows the
// print to one named queue ("" prints all).
func scrapeServerView(addr, queue string) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	raw, err := c.Stats()
	if err != nil {
		return err
	}
	var snap server.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return err
	}
	if snap.Obs == nil {
		return fmt.Errorf("server reports no observability data (started with -obs=false?)")
	}
	fmt.Println("\nserver-side latency (frame read to reply, measured by the server's histograms):")
	fmt.Printf("%-16s %-13s %10s %10s %10s %10s\n", "queue", "op", "count", "p50 ms", "p99 ms", "max ms")
	for _, qs := range snap.Queues {
		if queue != "" && qs.Name != queue {
			continue
		}
		for _, col := range []struct {
			op string
			s  *obs.LatencySummary
		}{
			{"enqueue", qs.EnqueueLat},
			{"dequeue", qs.DequeueLat},
			{"batch", qs.BatchLat},
			{"null_dequeue", qs.NullDequeueLat},
		} {
			if col.s == nil {
				continue
			}
			fmt.Printf("%-16s %-13s %10d %10.3f %10.3f %10.3f\n",
				qs.Name, col.op, col.s.Count, col.s.P50Ms, col.s.P99Ms, col.s.MaxMs)
		}
	}
	fmt.Println("compare with the client-side table above: client latency = server latency + network round trip + client scheduling delay.")
	return nil
}

// parseRates parses a comma-separated list of positive integers (-rates,
// -tenants).
func parseRates(s string) ([]int, error) {
	out := make([]int, 0, 4)
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid value %q", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}
