// Command qload drives a queued instance with open-loop load and reports
// end-to-end latency percentiles per offered rate (experiment T11).
//
// The generator is open-loop: enqueue send times follow the target rate
// regardless of how fast the service responds, and every latency is
// measured from the op's scheduled send time, so overload shows up as
// queueing delay in the percentiles instead of silently throttling the
// offered load. Producers pipeline enqueues within a bounded window;
// consumers drain concurrently; after the producing phase the run verifies
// exact conservation — every acknowledged value dequeued exactly once —
// and qload exits 1 if any value was lost or duplicated.
//
// Usage:
//
//	queued -addr 127.0.0.1:7474 &
//	qload -addr 127.0.0.1:7474 -rates 1000,4000,16000 -duration 2s
//	qload -addr 127.0.0.1:7474 -rates 8000 -producers 4 -consumers 4 \
//	      -value-size 256 -burst 16 -json bench_results
//	qload -addr 127.0.0.1:7474 -rates 20000 -batch 16   # native batch frames
//
// -json emits bench_results/BENCH_T11.json in the same schema as
// cmd/benchqueue's tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "queued address to drive (required)")
		ratesFlag = flag.String("rates", "1000,4000,16000", "comma-separated offered enqueue rates, ops/s")
		duration  = flag.Duration("duration", 2*time.Second, "producing phase length per rate")
		producers = flag.Int("producers", 2, "producer connections")
		consumers = flag.Int("consumers", 2, "consumer connections")
		valueSize = flag.Int("value-size", 64, fmt.Sprintf("value payload bytes (min %d: key + timestamp + run nonce)", server.MinValueSize))
		burst     = flag.Int("burst", 1, "frames per scheduling tick per producer; raises burstiness at the same average rate")
		batch     = flag.Int("batch", 1, "values per wire frame; >1 uses the native ENQ_BATCH/DEQ_BATCH opcodes end to end")
		window    = flag.Int("window", 32, "max in-flight enqueues per producer connection")
		drain     = flag.Duration("drain", 10*time.Second, "max wait for consumers to finish after producers stop")
		jsonDir   = flag.String("json", "", "write the T11 table as BENCH_T11.json into this directory")
	)
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "qload: -addr is required (start cmd/queued first)")
		os.Exit(2)
	}
	rates, err := parseRates(*ratesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(2)
	}
	cfg := harness.ServiceConfig{
		Addr: *addr,
		Load: server.LoadConfig{
			Duration:     *duration,
			Producers:    *producers,
			Consumers:    *consumers,
			ValueSize:    *valueSize,
			Burst:        *burst,
			Batch:        *batch,
			Window:       *window,
			DrainTimeout: *drain,
		},
	}
	table, results, err := harness.ExpServiceLatencyResults(rates, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qload:", err)
		os.Exit(1)
	}
	fmt.Println(table.String())

	violated := false
	for i, res := range results {
		fmt.Printf("rate %6d: offered=%d acked=%d busy=%d errors=%d consumed=%d foreign=%d lost=%d dup=%d\n",
			rates[i], res.Offered, res.Acked, res.Busy, res.Errors,
			res.Consumed, res.Foreign, res.Lost, res.Dup)
		violated = violated || !res.Conserved()
	}
	if *jsonDir != "" {
		path, err := harness.WriteTableJSON(*jsonDir, table)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qload:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "qload: wrote", path)
	}
	if violated {
		fmt.Fprintln(os.Stderr, "qload: CONSERVATION VIOLATION (values lost or duplicated)")
		os.Exit(1)
	}
}

// parseRates parses the -rates list.
func parseRates(s string) ([]int, error) {
	out := make([]int, 0, 4)
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid rate %q", part)
		}
		if n < 1 {
			return nil, fmt.Errorf("rate %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}
